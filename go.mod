module dlfs

go 1.22
