package dlfs

// Benchmark harness: one benchmark per figure of the paper's evaluation
// (§IV). Each benchmark regenerates its figure through internal/figures
// and prints the table once, so
//
//	go test -bench=Fig -benchtime=1x
//
// reproduces the whole evaluation. Headline series are also reported as
// benchmark metrics so regressions show up in benchstat diffs.

import (
	"fmt"
	"strconv"
	"sync"
	"testing"

	"dlfs/internal/figures"
	"dlfs/internal/metrics"
)

// benchScale trades precision for time; 1x scale regenerates the figures
// at full measurement volume. Override with -benchscale via env if needed.
const benchScale = 1.0

var printOnce sync.Map

func emit(b *testing.B, tab *metrics.Table) {
	if _, done := printOnce.LoadOrStore(tab.Title, true); !done {
		fmt.Printf("\n%s\n", tab.String())
	}
}

func cellOf(tab *metrics.Table, row int, col string) float64 {
	for i, h := range tab.Header() {
		if h == col {
			v, err := strconv.ParseFloat(tab.Rows()[row][i], 64)
			if err != nil {
				return 0
			}
			return v
		}
	}
	return 0
}

// BenchmarkFig1SampleSizeCDF regenerates Fig 1 (dataset size CDFs).
func BenchmarkFig1SampleSizeCDF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab := figures.Fig1(benchScale)
		emit(b, tab)
	}
}

// BenchmarkFig6SingleNodeThroughput regenerates Fig 6 (single-node random
// read throughput, four systems × seven sample sizes).
func BenchmarkFig6SingleNodeThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab := figures.Fig6(benchScale)
		emit(b, tab)
		b.ReportMetric(cellOf(tab, 0, "dlfs"), "dlfs-512B-samples/s")
		b.ReportMetric(cellOf(tab, 0, "ext4-base"), "ext4-512B-samples/s")
	}
}

// BenchmarkFig7aCoreSaturation regenerates Fig 7a (cores needed to
// saturate the SSD).
func BenchmarkFig7aCoreSaturation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab := figures.Fig7a(benchScale)
		emit(b, tab)
		b.ReportMetric(cellOf(tab, 0, "dlfs-128K"), "dlfs-1core-GB/s")
	}
}

// BenchmarkFig7bComputeOverlap regenerates Fig 7b (compute hidden in the
// poll loop).
func BenchmarkFig7bComputeOverlap(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab := figures.Fig7b(benchScale)
		emit(b, tab)
	}
}

// BenchmarkFig8SixteenNodeThroughput regenerates Fig 8 (aggregate
// throughput over 16 nodes vs sample size).
func BenchmarkFig8SixteenNodeThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab := figures.Fig8(benchScale)
		emit(b, tab)
		b.ReportMetric(cellOf(tab, 0, "dlfs")/cellOf(tab, 0, "ext4"), "dlfs/ext4-512B-x")
	}
}

// BenchmarkFig9Scalability regenerates Fig 9 (scalability, 2–16 nodes).
func BenchmarkFig9Scalability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab := figures.Fig9(benchScale)
		emit(b, tab)
		b.ReportMetric(cellOf(tab, 3, "dlfs-512B")/cellOf(tab, 0, "dlfs-512B"), "dlfs-512B-scaling-x")
	}
}

// BenchmarkFig10LookupTime regenerates Fig 10 (sample lookup time for 1M
// samples).
func BenchmarkFig10LookupTime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab := figures.Fig10(benchScale)
		emit(b, tab)
		b.ReportMetric(cellOf(tab, 0, "ext4-open")/cellOf(tab, 0, "dlfs"), "ext4/dlfs-lookup-x")
	}
}

// BenchmarkFig11Disaggregation regenerates Fig 11 (effective throughput
// on disaggregated devices vs the analytic ideal).
func BenchmarkFig11Disaggregation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab := figures.Fig11(benchScale)
		emit(b, tab)
		b.ReportMetric(100*cellOf(tab, 0, "dlfs-1c")/cellOf(tab, 0, "nvme-1c-ideal"), "dlfs-1c-%of-ideal")
	}
}

// BenchmarkFig12TFImport regenerates Fig 12 (TensorFlow import throughput
// on the three file systems).
func BenchmarkFig12TFImport(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab := figures.Fig12(benchScale)
		emit(b, tab)
	}
}

// BenchmarkFig13TrainingAccuracy regenerates Fig 13 (training accuracy:
// Full_Rand vs DLFS-determined order).
func BenchmarkFig13TrainingAccuracy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab := figures.Fig13(benchScale)
		emit(b, tab)
		last := tab.NumRows() - 1
		b.ReportMetric(cellOf(tab, last, "Full_Rand")-cellOf(tab, last, "DLFS"), "accuracy-gap")
	}
}

// BenchmarkEpochThroughputAblation compares DLFS configurations head to
// head — full batching, sample-level only, and the synchronous base path —
// the ablation DESIGN.md calls out for the batching design choices.
func BenchmarkEpochThroughputAblation(b *testing.B) {
	for _, mode := range []string{"chunk-batched", "sample-level", "sync-base"} {
		b.Run(mode, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.ReportMetric(figures.AblationPoint(mode, benchScale), "samples/s")
			}
		})
	}
}

// BenchmarkLivePathEpoch measures the real-concurrency TCP path in wall
// time: mount over localhost targets, drain one chunk-batched epoch.
// Unlike the figure benchmarks this one reports genuine wall-clock
// throughput of this machine's loopback stack.
func BenchmarkLivePathEpoch(b *testing.B) {
	const targets, samples, size = 3, 2000, 8 << 10
	addrs := make([]string, targets)
	for i := range addrs {
		tgt, err := StartTarget("127.0.0.1:0", 1<<30, 64)
		if err != nil {
			b.Fatal(err)
		}
		defer tgt.Close() //nolint:errcheck
		addrs[i] = tgt.Addr
	}
	ds := GenerateDataset(DatasetConfig{Label: "bench-live", Seed: 77, NumSamples: samples, Dist: FixedDist(size)})
	fs, err := MountLive(addrs, ds, LiveConfig{ChunkSize: 64 << 10, Prefetchers: 6})
	if err != nil {
		b.Fatal(err)
	}
	defer fs.Close() //nolint:errcheck
	b.SetBytes(int64(samples) * size)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ep, err := fs.Sequence(int64(i))
		if err != nil {
			b.Fatal(err)
		}
		items, err := ep.Drain()
		if err != nil {
			b.Fatal(err)
		}
		if len(items) != samples {
			b.Fatalf("delivered %d of %d", len(items), samples)
		}
	}
	b.ReportMetric(float64(samples)*float64(b.N)/b.Elapsed().Seconds(), "samples/s")
}

// BenchmarkDirectoryLookup measures raw directory lookups (Go wall time,
// not simulated): the per-sample metadata cost the design minimises.
func BenchmarkDirectoryLookup(b *testing.B) {
	sim := NewSimulation(4)
	defer sim.Close()
	ds := GenerateDataset(DatasetConfig{Label: "bench-dir", Seed: 78, NumSamples: 100_000, Dist: FixedDist(64)})
	fss, err := sim.MountAll(ds, DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	dir := fss[0].Directory()
	keys := make([]uint64, ds.Len())
	for i := range keys {
		keys[i] = ds.Samples[i].Key()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, ok := dir.Lookup(keys[i%len(keys)]); !ok {
			b.Fatal("lost key")
		}
	}
}
