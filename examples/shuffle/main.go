// Shuffle-accuracy (Fig 13 flavour): train the same network on the same
// data under three sample orders — application-driven full randomisation,
// the DLFS chunk-randomised order, and no shuffling at all — and print the
// per-epoch validation accuracy of each.
//
//	go run ./examples/shuffle
package main

import (
	"fmt"
	"log"

	"dlfs/internal/dnn"
)

func main() {
	const (
		n      = 2500
		epochs = 60
	)
	data := dnn.SyntheticClusters(17, n, 16, 10, 0.6)
	cut := n * 4 / 5
	train := &dnn.Data{X: data.X[:cut], Y: data.Y[:cut], Classes: data.Classes}
	val := &dnn.Data{X: data.X[cut:], Y: data.Y[cut:], Classes: data.Classes}
	fmt.Printf("task: %d-class, %d train / %d val examples\n", data.Classes, train.Len(), val.Len())

	// The DLFS order comes from the real chunk planner over a synthetic
	// on-device layout of the training samples.
	sizes := make([]int, train.Len())
	for i := range sizes {
		sizes[i] = 600 + (i*97)%2400
	}
	dlfsOrder, err := dnn.NewDLFSOrder(23, sizes, 4, 8192)
	if err != nil {
		log.Fatal(err)
	}

	cfg := dnn.TrainConfig{Epochs: epochs, BatchSize: 32, LR: 0.05, Hidden: 32, Seed: 5}
	curves := map[string][]float64{
		"Full_Rand":  dnn.Train(train, val, dnn.FullRand{Seed: 99}, cfg),
		"DLFS":       dnn.Train(train, val, dlfsOrder, cfg),
		"no-shuffle": dnn.Train(train, val, dnn.FixedOrder{}, cfg),
	}

	fmt.Printf("%-6s  %-10s  %-10s  %-10s\n", "epoch", "Full_Rand", "DLFS", "no-shuffle")
	for ep := 4; ep < epochs; ep += 5 {
		fmt.Printf("%-6d  %-10.3f  %-10.3f  %-10.3f\n",
			ep+1, curves["Full_Rand"][ep], curves["DLFS"][ep], curves["no-shuffle"][ep])
	}
	f := curves["Full_Rand"][epochs-1]
	d := curves["DLFS"][epochs-1]
	fmt.Printf("\nfinal accuracy: Full_Rand %.3f vs DLFS %.3f (gap %+.3f)\n", f, d, d-f)
	if gap := f - d; gap > 0.05 || gap < -0.05 {
		log.Fatal("FAILED: DLFS-determined order changed the training outcome")
	}
	fmt.Println("OK: DLFS-determined randomisation matches full shuffling, as the paper reports")
}
