// Batched formats: mount the dataset as TFRecord-style containers
// (MountContainers), exercise per-sample random access *inside* the
// containers, whole-file access to a container, and the stage-in saving
// over per-file staging from the backend parallel file system.
//
//	go run ./examples/batched
package main

import (
	"fmt"
	"log"

	"dlfs/internal/cluster"
	"dlfs/internal/core"
	"dlfs/internal/dataset"
	"dlfs/internal/pfs"
	"dlfs/internal/sim"
)

func main() {
	const nodes, samples, perContainer = 4, 2000, 250
	ds := dataset.Generate(dataset.Config{
		Label: "batched", Seed: 12, NumSamples: samples, Dist: dataset.IMDBDist(),
	})

	mount := func(containers bool) (took sim.Time, fss []*core.FS, opens int64) {
		e := sim.NewEngine()
		job := cluster.NewJob(e, nodes, cluster.DefaultNodeSpec())
		backend := pfs.New(e, pfs.DefaultSpec())
		cfg := core.Config{StageIn: backend}
		fss = make([]*core.FS, nodes)
		for i := 0; i < nodes; i++ {
			i := i
			e.Go(fmt.Sprintf("mount%d", i), func(p *sim.Proc) {
				var err error
				if containers {
					fss[i], err = core.MountContainers(p, job, i, ds, perContainer, cfg)
				} else {
					fss[i], err = core.Mount(p, job, i, ds, cfg)
				}
				if err != nil {
					log.Fatal(err)
				}
			})
		}
		t := e.RunAll()
		o, _ := backend.Stats()
		return t, fss, o
	}

	tFiles, _, opensFiles := mount(false)
	tPacked, fss, opensPacked := mount(true)
	fmt.Printf("stage-in, one file per sample:  %v (%d PFS opens)\n", tFiles, opensFiles)
	fmt.Printf("stage-in, packed containers:    %v (%d PFS opens, %.0fx faster)\n",
		tPacked, opensPacked, float64(tFiles)/float64(tPacked))

	// Random access to samples inside containers still works, verified.
	e := fss[0].Node().Job().Engine()
	verified := 0
	e.Go("reader", func(p *sim.Proc) {
		for i := 0; i < samples; i += 97 {
			buf := make([]byte, ds.Samples[i].Size)
			if _, err := fss[0].ReadSample(p, i, buf); err != nil {
				log.Fatal(err)
			}
			if dataset.ChecksumBytes(buf) == ds.Checksum(i) {
				verified++
			}
		}
		// File-oriented access to a whole container (§III-B1's "entry
		// taken by the batched file").
		name := fmt.Sprintf("%s/node0/part-00000.rec", ds.Label)
		buf := make([]byte, 8<<20)
		n, err := fss[0].ReadWholeFile(p, name, buf)
		if err != nil {
			log.Fatal(err)
		}
		recs, err := dataset.Scan(buf[:n])
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("container %s: %d bytes, %d records rescanned\n", name, n, len(recs))
	})
	e.RunAll()
	fmt.Printf("random in-container sample reads verified: %d\n", verified)
	fmt.Println("OK")
}
