// Quickstart: mount DLFS on a simulated 4-node job, run one epoch of
// dlfs_sequence/dlfs_bread on every node, and verify each delivered
// sample byte-for-byte against the dataset generator.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"dlfs"
)

func main() {
	const nodes = 4
	sim := dlfs.NewSimulation(nodes)

	// A small ImageNet-like dataset: many smallish files, one class label
	// per sample.
	ds := dlfs.GenerateDataset(dlfs.DatasetConfig{
		Label:      "quickstart",
		Seed:       42,
		NumSamples: 800,
		Dist:       dlfs.IMDBDist(),
	})
	fmt.Printf("dataset: %d samples, %d classes\n", ds.Len(), ds.NumClasses)

	// Collective mount: each node uploads its shard to its NVMe device,
	// then the sample directory is allgathered to every node.
	fss, err := sim.MountAll(ds, dlfs.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mounted on %d nodes; directory holds %d entries (%d bytes/replica)\n",
		nodes, fss[0].Directory().NumSamples(), fss[0].Directory().MemoryBytes())

	// Every node trains on its share of the globally shuffled epoch.
	delivered := make([]int, nodes)
	verified := make([]int, nodes)
	for i := 1; i < nodes; i++ {
		i := i
		sim.Go(fmt.Sprintf("trainer%d", i), func(p *dlfs.Proc) {
			runEpoch(p, fss[i], ds, &delivered[i], &verified[i])
		})
	}
	elapsed := sim.Run(func(p *dlfs.Proc) {
		runEpoch(p, fss[0], ds, &delivered[0], &verified[0])
	})

	total, good := 0, 0
	for i := 0; i < nodes; i++ {
		total += delivered[i]
		good += verified[i]
	}
	fmt.Printf("epoch complete: %d/%d samples delivered, %d verified, virtual time %v\n",
		total, ds.Len(), good, elapsed)
	st := fss[0].Stats()
	fmt.Printf("node 0 stats: %d SPDK commands for %d samples (chunk batching), %d poll iterations\n",
		st.Commands, st.SamplesRead, st.PollIters)
	if total != ds.Len() || good != total {
		log.Fatal("quickstart failed: missing or corrupt samples")
	}
	fmt.Println("OK")
}

func runEpoch(p *dlfs.Proc, fs *dlfs.FS, ds *dlfs.Dataset, delivered, verified *int) {
	epoch := fs.Sequence(7)
	for {
		batch, ok := epoch.NextBatch(p)
		if !ok {
			return
		}
		for _, item := range batch {
			*delivered++
			if dlfs.ChecksumBytes(item.Data) == ds.Checksum(item.Index) {
				*verified++
			}
		}
	}
}
