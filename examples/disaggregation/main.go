// Disaggregation (live path): start real TCP block targets on localhost —
// the NVMe-oF pool — mount DLFS across them, and feed mini-batches to a
// toy training loop while measuring actual wall-clock import throughput.
//
//	go run ./examples/disaggregation
package main

import (
	"fmt"
	"log"
	"time"

	"dlfs"
)

func main() {
	const (
		targets    = 3
		numSamples = 2000
		sampleSize = 8 << 10
	)

	// The disaggregated storage pool: one TCP target per "storage node".
	addrs := make([]string, targets)
	handles := make([]*dlfs.BlockTarget, targets)
	for i := range addrs {
		tgt, err := dlfs.StartTarget("127.0.0.1:0", 1<<30, 64)
		if err != nil {
			log.Fatal(err)
		}
		defer tgt.Close() //nolint:errcheck
		addrs[i] = tgt.Addr
		handles[i] = tgt
		fmt.Printf("NVMe-oF target %d listening on %s\n", i, tgt.Addr)
	}

	ds := dlfs.GenerateDataset(dlfs.DatasetConfig{
		Label: "disagg", Seed: 3, NumSamples: numSamples, Dist: dlfs.FixedDist(sampleSize),
	})

	// dlfs_mount over sockets: upload shards, build the directory.
	start := time.Now()
	fs, err := dlfs.MountLive(addrs, ds, dlfs.LiveConfig{ChunkSize: 64 << 10, Prefetchers: 6})
	if err != nil {
		log.Fatal(err)
	}
	defer fs.Close() //nolint:errcheck
	fmt.Printf("mounted %d samples across %d targets in %.2fs\n",
		ds.Len(), targets, time.Since(start).Seconds())

	// Training loop: dlfs_sequence + dlfs_bread feeding a fake gradient
	// step. The prefetch pipeline keeps the sockets busy under compute.
	epoch, err := fs.Sequence(time.Now().UnixNano())
	if err != nil {
		log.Fatal(err)
	}
	start = time.Now()
	samples, corrupt, steps := 0, 0, 0
	var gradient float64
	for {
		batch, ok, err := epoch.NextBatch()
		if err != nil {
			log.Fatal(err)
		}
		for _, item := range batch {
			if dlfs.ChecksumBytes(item.Data) != ds.Checksum(item.Index) {
				corrupt++
			}
			// "Train": fold the bytes into a number so the compiler keeps
			// the data path honest.
			for _, b := range item.Data[:64] {
				gradient += float64(b) * 1e-9
			}
			samples++
		}
		steps++
		if !ok {
			break
		}
	}
	elapsed := time.Since(start)
	fmt.Printf("epoch: %d samples in %d steps, %.3fs wall (%.0f samples/s), gradient %.3f\n",
		samples, steps, elapsed.Seconds(), float64(samples)/elapsed.Seconds(), gradient)
	for i, tgt := range handles {
		cmds, bytes := tgt.Served()
		fmt.Printf("target %d served %d commands, %d MiB\n", i, cmds, bytes>>20)
	}
	if corrupt > 0 || samples != numSamples {
		log.Fatalf("FAILED: %d corrupt, %d/%d delivered", corrupt, samples, numSamples)
	}
	fmt.Println("OK")
}
