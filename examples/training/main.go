// Training-at-scale (simulated): a 16-node distributed training job
// importing an ImageNet-like dataset, with per-iteration computation
// overlapped against DLFS's poll loop — the scenario motivating Fig 7b —
// and a head-to-head against the kernel-Ext4 baseline on the same job.
//
//	go run ./examples/training
package main

import (
	"fmt"
	"log"

	"dlfs"
	"dlfs/internal/ext4sim"
	"dlfs/internal/sim"
	"dlfs/internal/workload"
)

const (
	nodes      = 16
	numSamples = 4800
	compute    = 500 * 1000 // 0.5 ms of forward/backward per batch
)

func main() {
	ds := dlfs.GenerateDataset(dlfs.DatasetConfig{
		Label: "train16", Seed: 8, NumSamples: numSamples, Dist: dlfs.ImageNetDist(),
	})
	fmt.Printf("dataset: %d samples, %.1f MiB\n", ds.Len(), float64(ds.TotalBytes())/(1<<20))

	dlfsTime := runDLFS(ds)
	ext4Time := runExt4(ds)
	fmt.Printf("\nepoch time, 16 nodes: DLFS %v vs Ext4 %v (%.2fx)\n",
		dlfsTime, ext4Time, float64(ext4Time)/float64(dlfsTime))
}

func runDLFS(ds *dlfs.Dataset) sim.Time {
	simu := dlfs.NewSimulation(nodes)
	cfg := dlfs.DefaultConfig()
	cfg.OverlapCompute = compute // hide the model's compute in the poll loop
	fss, err := simu.MountAll(ds, cfg)
	if err != nil {
		log.Fatal(err)
	}
	delivered := 0
	for i := 1; i < nodes; i++ {
		i := i
		simu.Go(fmt.Sprintf("trainer%d", i), func(p *dlfs.Proc) {
			delivered += len(fss[i].Sequence(1).DrainAll(p))
		})
	}
	t := simu.Run(func(p *dlfs.Proc) {
		delivered += len(fss[0].Sequence(1).DrainAll(p))
	})
	fmt.Printf("DLFS:  %d samples, virtual %v, node-0 issued %d SPDK commands\n",
		delivered, t, fss[0].Stats().Commands)
	if delivered != ds.Len() {
		log.Fatalf("DLFS delivered %d of %d", delivered, ds.Len())
	}
	return t
}

func runExt4(ds *dlfs.Dataset) sim.Time {
	e := sim.NewEngine()
	job := workload.NewJob(e, nodes, 20, false)
	fss, shards, err := workload.Ext4PerNode(e, job, ds, ext4sim.Config{})
	if err != nil {
		log.Fatal(err)
	}
	delivered := 0
	for i := 0; i < nodes; i++ {
		i := i
		e.Go(fmt.Sprintf("trainer%d", i), func(p *sim.Proc) {
			buf := make([]byte, 4<<20)
			cpu := job.Node(i).CPU
			order := workload.RandomOrder(int64(i), shards[i], len(shards[i]))
			for k, idx := range order {
				sz := ds.Samples[idx].Size
				if _, err := fss[i].ReadFile(p, cpu, ds.Samples[idx].Name, buf[:sz]); err != nil {
					log.Fatal(err)
				}
				delivered++
				if (k+1)%2 == 0 { // same per-batch compute, every 2 samples/node ≈ batch 32
					job.Node(i).Compute(p, compute)
				}
			}
		})
	}
	t := e.RunAll()
	fmt.Printf("Ext4:  %d samples, virtual %v\n", delivered, t)
	return t
}
