package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"dlfs/internal/blockdev"
	"dlfs/internal/dataset"
	"dlfs/internal/live"
	"dlfs/internal/metrics"
	"dlfs/internal/nvmetcp"
)

// The live bench measures the real TCP data path end to end: in-process
// targets, a live mount with stage histograms and clairvoyant
// cross-epoch prefetch on, one warmup (cold) epoch, then measured warm
// epochs whose throughput trajectory, per-stage latency quantiles
// (client and server), allocator pressure, and cold-vs-warm poll p50
// land in a machine-readable JSON report (BENCH_7.json in CI).

// histJSON is one latency distribution in the report, seconds-valued
// like the /metrics exposition.
type histJSON struct {
	Count      int64   `json:"count"`
	P50Seconds float64 `json:"p50_seconds"`
	P90Seconds float64 `json:"p90_seconds"`
	P99Seconds float64 `json:"p99_seconds"`
	MaxSeconds float64 `json:"max_seconds"`
	MeanSec    float64 `json:"mean_seconds"`
	SumSeconds float64 `json:"sum_seconds"`
}

func toHistJSON(h metrics.HistSnapshot) histJSON {
	return histJSON{
		Count:      h.Count,
		P50Seconds: h.P50().Seconds(),
		P90Seconds: h.P90().Seconds(),
		P99Seconds: h.P99().Seconds(),
		MaxSeconds: (time.Duration(h.Max)).Seconds(),
		MeanSec:    h.Mean().Seconds(),
		SumSeconds: float64(h.Sum) / 1e9,
	}
}

type epochJSON struct {
	Epoch            int     `json:"epoch"`
	Seconds          float64 `json:"seconds"`
	Samples          int     `json:"samples"`
	SamplesPerSec    float64 `json:"samples_per_sec"`
	BytesPerSec      float64 `json:"bytes_per_sec"`
	PollP50Seconds   float64 `json:"poll_p50_seconds"`
	WireReads        int64   `json:"wire_reads"`
	WireBytes        int64   `json:"wire_bytes"` // schema 3: payload bytes this epoch pulled over the wire
	PrefetchHitUnits int64   `json:"prefetch_hit_units"`
}

type liveReport struct {
	Bench  string `json:"bench"`
	Schema int    `json:"schema_version"`
	Config struct {
		Targets             int     `json:"targets"`
		Samples             int     `json:"samples"`
		SampleBytes         int     `json:"sample_bytes"`
		ChunkBytes          int     `json:"chunk_bytes"`
		WarmupEpochs        int     `json:"warmup_epochs"`
		Epochs              int     `json:"epochs"`
		Scale               float64 `json:"scale"`
		CrossEpochPrefetch  bool    `json:"cross_epoch_prefetch"`
		PrefetchBudgetBytes int64   `json:"prefetch_budget_bytes"`
	} `json:"config"`
	Epochs     []epochJSON `json:"epochs"`
	Throughput struct {
		SamplesPerSec float64 `json:"samples_per_sec"`
		BytesPerSec   float64 `json:"bytes_per_sec"`
	} `json:"throughput"`
	Alloc struct {
		AllocsPerSample float64 `json:"allocs_per_sample"`
		BytesPerSample  float64 `json:"bytes_per_sample"`
		TotalAllocs     uint64  `json:"total_allocs"`
		TotalBytes      uint64  `json:"total_bytes"`
	} `json:"alloc"`
	ClientStages map[string]histJSON `json:"client_stages"`
	ServerStages map[string]histJSON `json:"server_stages"`
	Pipeline     struct {
		WireReads      int64   `json:"wire_reads"`
		WireSegments   int64   `json:"wire_segments"`
		WireBytes      int64   `json:"wire_bytes"`
		CoalescedUnits int64   `json:"coalesced_units"`
		PoolHitRate    float64 `json:"pool_hit_rate"`
	} `json:"pipeline"`
	// Prefetch is the clairvoyant cross-epoch story in two numbers: the
	// cold epoch pays the wire (its poll p50), warm epochs open with the
	// lookahead store full and a poll p50 at or near zero.
	Prefetch struct {
		ColdPollP50Seconds float64 `json:"cold_poll_p50_seconds"`
		WarmPollP50Seconds float64 `json:"warm_poll_p50_seconds"`
		PrefetchedUnits    int64   `json:"prefetched_units"`
		PrefetchHitUnits   int64   `json:"prefetch_hit_units"`
		Evictions          int64   `json:"evictions"`
		Coverage           float64 `json:"coverage"`
	} `json:"prefetch"`
}

// runLiveBench runs the live epoch benchmark and writes the JSON report
// to out ("-" writes to stdout).
func runLiveBench(out string, scale float64) error {
	const nTargets = 2
	samples := int(2000 * scale)
	if samples < 100 {
		samples = 100
	}
	const sampleBytes = 16 << 10
	const chunkBytes = 64 << 10
	const warmup, epochs = 1, 3

	addrs := make([]string, nTargets)
	targets := make([]*nvmetcp.Target, nTargets)
	for i := range addrs {
		tgt := nvmetcp.NewTargetConfig(blockdev.New(1<<30), nvmetcp.Config{StageHistograms: true})
		addr, err := tgt.Listen("127.0.0.1:0")
		if err != nil {
			return err
		}
		defer tgt.Close() //nolint:errcheck
		targets[i], addrs[i] = tgt, addr
	}
	ds := dataset.Generate(dataset.Config{Label: "bench", Seed: 11, NumSamples: samples, Dist: dataset.Fixed(sampleBytes)})
	// Budget the lookahead store for the whole dataset so warm epochs can
	// open fully resident — the bench is sized to show the ceiling.
	budget := int64(samples)*sampleBytes + (1 << 20)
	fs, err := live.Mount(addrs, ds, live.Config{
		ChunkSize:           chunkBytes,
		StageHistograms:     true,
		CrossEpochPrefetch:  true,
		PrefetchBudgetBytes: budget,
	})
	if err != nil {
		return err
	}
	defer fs.Close() //nolint:errcheck

	// Consume the epoch the way a training loop does — batch by batch,
	// recycling every payload. Dropping items on the floor (Drain without
	// RecycleItems) starves the buffer pool and reports a bogus
	// pool_hit_rate of zero.
	runEpoch := func(seed int64) (int, time.Duration, error) {
		ep, err := fs.Sequence(seed)
		if err != nil {
			return 0, 0, err
		}
		start := time.Now()
		n := 0
		for {
			items, ok, err := ep.NextBatch()
			n += len(items)
			fs.RecycleItems(items)
			if err != nil || !ok {
				return n, time.Since(start), err
			}
		}
	}
	// measuredEpoch wraps runEpoch with windowed pipeline deltas, then
	// lets the background prefetch round finish outside the timed window
	// so every epoch boundary is deterministic.
	measuredEpoch := func(label int, seed int64) (epochJSON, error) {
		before := fs.Stats().Pipeline
		n, elapsed, err := runEpoch(seed)
		if err != nil {
			return epochJSON{}, err
		}
		after := fs.Stats().Pipeline
		sec := elapsed.Seconds()
		ej := epochJSON{
			Epoch:            label,
			Seconds:          sec,
			Samples:          n,
			SamplesPerSec:    float64(n) / sec,
			BytesPerSec:      float64(n) * sampleBytes / sec,
			PollP50Seconds:   after.Stages.Poll.Sub(before.Stages.Poll).P50().Seconds(),
			WireReads:        after.WireReads - before.WireReads,
			WireBytes:        after.WireBytes - before.WireBytes,
			PrefetchHitUnits: after.PrefetchHitUnits - before.PrefetchHitUnits,
		}
		fs.WaitPrefetch()
		return ej, nil
	}

	var rep liveReport
	rep.Bench = "live-epoch"
	rep.Schema = 3
	rep.Config.Targets = nTargets
	rep.Config.Samples = samples
	rep.Config.SampleBytes = sampleBytes
	rep.Config.ChunkBytes = chunkBytes
	rep.Config.WarmupEpochs = warmup
	rep.Config.Epochs = epochs
	rep.Config.Scale = scale
	rep.Config.CrossEpochPrefetch = true
	rep.Config.PrefetchBudgetBytes = budget

	// The warmup epoch runs with an empty lookahead store: it is the cold
	// epoch the prefetch section compares warm epochs against.
	for w := 0; w < warmup; w++ {
		ej, err := measuredEpoch(-(w + 1), int64(100+w))
		if err != nil {
			return err
		}
		if w == 0 {
			rep.Prefetch.ColdPollP50Seconds = ej.PollP50Seconds
		}
	}

	var m0, m1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m0)
	var totalSamples int
	var totalSeconds float64
	for e := 0; e < epochs; e++ {
		ej, err := measuredEpoch(e+1, int64(200+e))
		if err != nil {
			return err
		}
		rep.Epochs = append(rep.Epochs, ej)
		totalSamples += ej.Samples
		totalSeconds += ej.Seconds
		rep.Prefetch.WarmPollP50Seconds = ej.PollP50Seconds
	}
	runtime.ReadMemStats(&m1)

	rep.Throughput.SamplesPerSec = float64(totalSamples) / totalSeconds
	rep.Throughput.BytesPerSec = float64(totalSamples) * sampleBytes / totalSeconds
	rep.Alloc.TotalAllocs = m1.Mallocs - m0.Mallocs
	rep.Alloc.TotalBytes = m1.TotalAlloc - m0.TotalAlloc
	rep.Alloc.AllocsPerSample = float64(rep.Alloc.TotalAllocs) / float64(totalSamples)
	rep.Alloc.BytesPerSample = float64(rep.Alloc.TotalBytes) / float64(totalSamples)

	pipe := fs.Stats().Pipeline
	if pipe.Stages == nil {
		return fmt.Errorf("dlfsbench: stage histograms missing from pipeline snapshot")
	}
	rep.ClientStages = map[string]histJSON{
		"prep": toHistJSON(pipe.Stages.Prep),
		"post": toHistJSON(pipe.Stages.Post),
		"poll": toHistJSON(pipe.Stages.Poll),
		"copy": toHistJSON(pipe.Stages.Copy),
	}
	var srvStages *metrics.ServerHistSnapshot
	for _, tgt := range targets {
		srvStages = srvStages.Merge(tgt.ServerStats().Stages)
	}
	if srvStages == nil {
		return fmt.Errorf("dlfsbench: stage histograms missing from server snapshots")
	}
	rep.ServerStages = map[string]histJSON{
		"qwait":   toHistJSON(srvStages.QueueWait),
		"service": toHistJSON(srvStages.Service),
		"flush":   toHistJSON(srvStages.Flush),
	}
	rep.Pipeline.WireReads = pipe.WireReads
	rep.Pipeline.WireSegments = pipe.WireSegments
	rep.Pipeline.WireBytes = pipe.WireBytes
	rep.Pipeline.CoalescedUnits = pipe.CoalescedUnits
	if hm := pipe.PoolHits + pipe.PoolMisses; hm > 0 {
		rep.Pipeline.PoolHitRate = float64(pipe.PoolHits) / float64(hm)
	}
	rep.Prefetch.PrefetchedUnits = pipe.PrefetchedUnits
	rep.Prefetch.PrefetchHitUnits = pipe.PrefetchHitUnits
	rep.Prefetch.Evictions = pipe.PrefetchEvictions
	rep.Prefetch.Coverage = pipe.PrefetchCoverage()

	buf, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if out == "-" {
		_, err = os.Stdout.Write(buf)
		return err
	}
	if err := os.WriteFile(out, buf, 0o644); err != nil {
		return err
	}
	fmt.Printf("dlfsbench: live epoch bench: %d samples x %d epochs, %.0f samples/s (%s/s); poll p50 cold %.1fus -> warm %.1fus, prefetch coverage %.0f%%; wrote %s\n",
		samples, epochs, rep.Throughput.SamplesPerSec,
		metrics.HumanBytes(int64(rep.Throughput.BytesPerSec)),
		rep.Prefetch.ColdPollP50Seconds*1e6, rep.Prefetch.WarmPollP50Seconds*1e6,
		100*rep.Prefetch.Coverage, out)
	return nil
}
