package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"dlfs/internal/blockdev"
	"dlfs/internal/dataset"
	"dlfs/internal/live"
	"dlfs/internal/metrics"
	"dlfs/internal/nvmetcp"
)

// The live bench measures the real TCP data path end to end: in-process
// targets, a live mount with stage histograms on, one warmup epoch, then
// measured epochs whose throughput trajectory, per-stage latency
// quantiles (client and server) and allocator pressure land in a
// machine-readable JSON report (BENCH_5.json in CI).

// histJSON is one latency distribution in the report, seconds-valued
// like the /metrics exposition.
type histJSON struct {
	Count      int64   `json:"count"`
	P50Seconds float64 `json:"p50_seconds"`
	P90Seconds float64 `json:"p90_seconds"`
	P99Seconds float64 `json:"p99_seconds"`
	MaxSeconds float64 `json:"max_seconds"`
	MeanSec    float64 `json:"mean_seconds"`
	SumSeconds float64 `json:"sum_seconds"`
}

func toHistJSON(h metrics.HistSnapshot) histJSON {
	return histJSON{
		Count:      h.Count,
		P50Seconds: h.P50().Seconds(),
		P90Seconds: h.P90().Seconds(),
		P99Seconds: h.P99().Seconds(),
		MaxSeconds: (time.Duration(h.Max)).Seconds(),
		MeanSec:    h.Mean().Seconds(),
		SumSeconds: float64(h.Sum) / 1e9,
	}
}

type epochJSON struct {
	Epoch         int     `json:"epoch"`
	Seconds       float64 `json:"seconds"`
	Samples       int     `json:"samples"`
	SamplesPerSec float64 `json:"samples_per_sec"`
	BytesPerSec   float64 `json:"bytes_per_sec"`
}

type liveReport struct {
	Bench  string `json:"bench"`
	Schema int    `json:"schema_version"`
	Config struct {
		Targets      int     `json:"targets"`
		Samples      int     `json:"samples"`
		SampleBytes  int     `json:"sample_bytes"`
		ChunkBytes   int     `json:"chunk_bytes"`
		WarmupEpochs int     `json:"warmup_epochs"`
		Epochs       int     `json:"epochs"`
		Scale        float64 `json:"scale"`
	} `json:"config"`
	Epochs     []epochJSON `json:"epochs"`
	Throughput struct {
		SamplesPerSec float64 `json:"samples_per_sec"`
		BytesPerSec   float64 `json:"bytes_per_sec"`
	} `json:"throughput"`
	Alloc struct {
		AllocsPerSample float64 `json:"allocs_per_sample"`
		BytesPerSample  float64 `json:"bytes_per_sample"`
		TotalAllocs     uint64  `json:"total_allocs"`
		TotalBytes      uint64  `json:"total_bytes"`
	} `json:"alloc"`
	ClientStages map[string]histJSON `json:"client_stages"`
	ServerStages map[string]histJSON `json:"server_stages"`
	Pipeline     struct {
		WireReads      int64   `json:"wire_reads"`
		WireSegments   int64   `json:"wire_segments"`
		WireBytes      int64   `json:"wire_bytes"`
		CoalescedUnits int64   `json:"coalesced_units"`
		PoolHitRate    float64 `json:"pool_hit_rate"`
	} `json:"pipeline"`
}

// runLiveBench runs the live epoch benchmark and writes the JSON report
// to out ("-" writes to stdout).
func runLiveBench(out string, scale float64) error {
	const nTargets = 2
	samples := int(2000 * scale)
	if samples < 100 {
		samples = 100
	}
	const sampleBytes = 16 << 10
	const chunkBytes = 64 << 10
	const warmup, epochs = 1, 3

	addrs := make([]string, nTargets)
	targets := make([]*nvmetcp.Target, nTargets)
	for i := range addrs {
		tgt := nvmetcp.NewTargetConfig(blockdev.New(1<<30), nvmetcp.Config{StageHistograms: true})
		addr, err := tgt.Listen("127.0.0.1:0")
		if err != nil {
			return err
		}
		defer tgt.Close() //nolint:errcheck
		targets[i], addrs[i] = tgt, addr
	}
	ds := dataset.Generate(dataset.Config{Label: "bench", Seed: 11, NumSamples: samples, Dist: dataset.Fixed(sampleBytes)})
	fs, err := live.Mount(addrs, ds, live.Config{ChunkSize: chunkBytes, StageHistograms: true})
	if err != nil {
		return err
	}
	defer fs.Close() //nolint:errcheck

	runEpoch := func(seed int64) (int, time.Duration, error) {
		ep, err := fs.Sequence(seed)
		if err != nil {
			return 0, 0, err
		}
		start := time.Now()
		items, err := ep.Drain()
		return len(items), time.Since(start), err
	}
	for w := 0; w < warmup; w++ {
		if _, _, err := runEpoch(int64(100 + w)); err != nil {
			return err
		}
	}

	var rep liveReport
	rep.Bench = "live-epoch"
	rep.Schema = 1
	rep.Config.Targets = nTargets
	rep.Config.Samples = samples
	rep.Config.SampleBytes = sampleBytes
	rep.Config.ChunkBytes = chunkBytes
	rep.Config.WarmupEpochs = warmup
	rep.Config.Epochs = epochs
	rep.Config.Scale = scale

	var m0, m1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m0)
	var totalSamples int
	var totalSeconds float64
	for e := 0; e < epochs; e++ {
		n, elapsed, err := runEpoch(int64(200 + e))
		if err != nil {
			return err
		}
		sec := elapsed.Seconds()
		rep.Epochs = append(rep.Epochs, epochJSON{
			Epoch:         e + 1,
			Seconds:       sec,
			Samples:       n,
			SamplesPerSec: float64(n) / sec,
			BytesPerSec:   float64(n) * sampleBytes / sec,
		})
		totalSamples += n
		totalSeconds += sec
	}
	runtime.ReadMemStats(&m1)

	rep.Throughput.SamplesPerSec = float64(totalSamples) / totalSeconds
	rep.Throughput.BytesPerSec = float64(totalSamples) * sampleBytes / totalSeconds
	rep.Alloc.TotalAllocs = m1.Mallocs - m0.Mallocs
	rep.Alloc.TotalBytes = m1.TotalAlloc - m0.TotalAlloc
	rep.Alloc.AllocsPerSample = float64(rep.Alloc.TotalAllocs) / float64(totalSamples)
	rep.Alloc.BytesPerSample = float64(rep.Alloc.TotalBytes) / float64(totalSamples)

	pipe := fs.Stats().Pipeline
	if pipe.Stages == nil {
		return fmt.Errorf("dlfsbench: stage histograms missing from pipeline snapshot")
	}
	rep.ClientStages = map[string]histJSON{
		"prep": toHistJSON(pipe.Stages.Prep),
		"post": toHistJSON(pipe.Stages.Post),
		"poll": toHistJSON(pipe.Stages.Poll),
		"copy": toHistJSON(pipe.Stages.Copy),
	}
	var srvStages *metrics.ServerHistSnapshot
	for _, tgt := range targets {
		srvStages = srvStages.Merge(tgt.ServerStats().Stages)
	}
	if srvStages == nil {
		return fmt.Errorf("dlfsbench: stage histograms missing from server snapshots")
	}
	rep.ServerStages = map[string]histJSON{
		"qwait":   toHistJSON(srvStages.QueueWait),
		"service": toHistJSON(srvStages.Service),
		"flush":   toHistJSON(srvStages.Flush),
	}
	rep.Pipeline.WireReads = pipe.WireReads
	rep.Pipeline.WireSegments = pipe.WireSegments
	rep.Pipeline.WireBytes = pipe.WireBytes
	rep.Pipeline.CoalescedUnits = pipe.CoalescedUnits
	if hm := pipe.PoolHits + pipe.PoolMisses; hm > 0 {
		rep.Pipeline.PoolHitRate = float64(pipe.PoolHits) / float64(hm)
	}

	buf, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if out == "-" {
		_, err = os.Stdout.Write(buf)
		return err
	}
	if err := os.WriteFile(out, buf, 0o644); err != nil {
		return err
	}
	fmt.Printf("dlfsbench: live epoch bench: %d samples x %d epochs, %.0f samples/s (%s/s); wrote %s\n",
		samples, epochs, rep.Throughput.SamplesPerSec,
		metrics.HumanBytes(int64(rep.Throughput.BytesPerSec)), out)
	return nil
}
