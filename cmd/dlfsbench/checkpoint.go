package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"time"

	"dlfs/internal/blockdev"
	"dlfs/internal/dataset"
	"dlfs/internal/live"
	"dlfs/internal/metrics"
	"dlfs/internal/nvmetcp"
)

// The checkpoint bench measures the write half of the training I/O
// story on the same 2-target wire the read benches use. After warmup,
// it alternates measurement rounds — one epoch drain through the read
// path, one sharded checkpoint save through the gathered-write
// pipeline (opWriteVec batches, per-target opFlush barriers, manifest
// commit) — and gates on the ratio of the two median rates.
// Interleaving matters: the box the bench runs on is time-shared, and
// phases measured minutes apart sample different contention; adjacent
// rounds see the same machine. The gate is twofold: checkpoint ingest
// must sustain at least MinRatio of the read-path GB/s, and the
// post-save read-back must be byte-exact — either failure exits
// non-zero.

// ckptMinRatio is the acceptance floor for ckpt/read throughput.
const ckptMinRatio = 0.8

type ckptReport struct {
	Bench  string `json:"bench"`
	Schema int    `json:"schema_version"`
	Config struct {
		Targets     int     `json:"targets"`
		Samples     int     `json:"samples"`
		SampleBytes int     `json:"sample_bytes"`
		StateBytes  int     `json:"state_bytes"`
		ShardBytes  int     `json:"shard_bytes"`
		SegsPerCmd  int     `json:"segs_per_cmd"`
		DataCRC     bool    `json:"data_crc"`
		WarmupSaves int     `json:"warmup_saves"`
		Rounds      int     `json:"rounds"`
		Scale       float64 `json:"scale"`
		MinRatio    float64 `json:"min_ratio"`
	} `json:"config"`
	Read struct {
		Seconds     float64 `json:"seconds"`
		BytesPerSec float64 `json:"bytes_per_sec"`
	} `json:"read"`
	Ckpt struct {
		Seconds     float64  `json:"seconds"`
		BytesPerSec float64  `json:"bytes_per_sec"`
		WriteCmds   int64    `json:"write_cmds"`
		WriteSegs   int64    `json:"write_segs"`
		Flushes     int64    `json:"flushes"`
		Downgrades  int64    `json:"downgrades"`
		WriteHist   histJSON `json:"write_hist"`
	} `json:"ckpt"`
	Server struct {
		WriteBytes     int64   `json:"write_bytes"`
		VecWriteCmds   int64   `json:"vec_write_cmds"`
		VecWriteSegs   int64   `json:"vec_write_segs"`
		AdoptedExtents int64   `json:"adopted_extents"`
		FlushCmds      int64   `json:"flush_cmds"`
		CowClones      int64   `json:"cow_clones"`
		FlushWaitSec   float64 `json:"flush_wait_seconds"`
	} `json:"server"`
	Ratio    float64 `json:"ckpt_to_read_ratio"`
	RatioOK  bool    `json:"ratio_ok"`
	Verified bool    `json:"read_back_verified"`
}

// medianDur returns the median of ds (ds is reordered in place).
func medianDur(ds []time.Duration) time.Duration {
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	return ds[len(ds)/2]
}

// runCkptBench runs the checkpoint-ingest benchmark and writes the JSON
// report to out ("-" writes to stdout). It returns an error — and the
// caller exits non-zero — when the read-back diverges or the ingest
// rate falls under the ratio floor.
func runCkptBench(out string, scale float64) error {
	const nTargets = 2
	samples := int(4000 * scale)
	if samples < 100 {
		samples = 100
	}
	const sampleBytes = 16 << 10
	stateBytes := int(float64(128<<20) * scale)
	if stateBytes < 8<<20 {
		stateBytes = 8 << 20
	}
	const shardBytes = 1 << 20
	const segsPerCmd = 16
	// Warmup saves touch both double-buffer slots, so the measured
	// rounds run against a warm extent map and a primed buffer pool;
	// the first measured rounds still trend down as TCP windows open,
	// which the median absorbs.
	const warmupSaves, rounds = 2, 5

	addrs := make([]string, nTargets)
	targets := make([]*nvmetcp.Target, nTargets)
	stores := make([]*blockdev.Store, nTargets)
	for i := range addrs {
		stores[i] = blockdev.New(1 << 30)
		tgt := nvmetcp.NewTargetConfig(stores[i], nvmetcp.Config{StageHistograms: true})
		addr, err := tgt.Listen("127.0.0.1:0")
		if err != nil {
			return err
		}
		defer tgt.Close() //nolint:errcheck
		targets[i], addrs[i] = tgt, addr
	}
	ds := dataset.Generate(dataset.Config{Label: "ckptbench", Seed: 17, NumSamples: samples, Dist: dataset.Fixed(sampleBytes)})
	// The sample cache is capped far under the dataset so the measured
	// epochs stream from the targets: the baseline is the wire read
	// path, not client cache hits.
	fs, err := live.Mount(addrs, ds, live.Config{StageHistograms: true, CacheBytes: 2 << 20})
	if err != nil {
		return err
	}
	defer fs.Close() //nolint:errcheck

	var rep ckptReport
	rep.Bench = "checkpoint-ingest"
	rep.Schema = 1
	rep.Config.Targets = nTargets
	rep.Config.Samples = samples
	rep.Config.SampleBytes = sampleBytes
	rep.Config.StateBytes = stateBytes
	rep.Config.ShardBytes = shardBytes
	rep.Config.SegsPerCmd = segsPerCmd
	rep.Config.DataCRC = false
	rep.Config.WarmupSaves = warmupSaves
	rep.Config.Rounds = rounds
	rep.Config.Scale = scale
	rep.Config.MinRatio = ckptMinRatio

	runEpoch := func(seed int64) (time.Duration, error) {
		ep, err := fs.Sequence(seed)
		if err != nil {
			return 0, err
		}
		start := time.Now()
		for {
			items, ok, err := ep.NextBatch()
			fs.RecycleItems(items)
			if err != nil {
				return 0, err
			}
			if !ok {
				return time.Since(start), nil
			}
		}
	}

	// NoDataCRC: the gate compares the write pipeline against the read
	// pipeline, and the read path checksums nothing — a whole-state CRC
	// pass on every save would bill the comparison for an integrity
	// feature the baseline does not carry. Crash consistency stays
	// structural (invalidate-first commit), and the bench's own
	// read-back check below still verifies every byte.
	ck, err := fs.Checkpointer(live.CheckpointConfig{
		ShardBytes:      shardBytes,
		SegsPerCmd:      segsPerCmd,
		RankRegionBytes: int64(stateBytes)*2 + (16 << 20),
		NoDataCRC:       true,
	})
	if err != nil {
		return err
	}
	state := make([]byte, stateBytes)
	rng := rand.New(rand.NewSource(23)) //nolint:gosec // bench data, not crypto
	rng.Read(state)                     //nolint:errcheck

	// Warmup: one epoch drain, then saves into both slots.
	if _, err := runEpoch(100); err != nil {
		return err
	}
	step := uint64(0)
	for w := 0; w < warmupSaves; w++ {
		step++
		if err := ck.Save(step, state); err != nil {
			return fmt.Errorf("warmup save %d: %w", step, err)
		}
	}

	// Measurement rounds: epoch drain, then save, back to back.
	before := fs.Stats().Pipeline
	epochDurs := make([]time.Duration, 0, rounds)
	saveDurs := make([]time.Duration, 0, rounds)
	for r := 0; r < rounds; r++ {
		d, err := runEpoch(200 + int64(r))
		if err != nil {
			return err
		}
		epochDurs = append(epochDurs, d)
		step++
		// Each save writes distinct bytes so read-back cannot pass on
		// stale slot contents.
		state[r] ^= 0xA5
		t0 := time.Now()
		if err := ck.Save(step, state); err != nil {
			return fmt.Errorf("measured save %d: %w", step, err)
		}
		saveDurs = append(saveDurs, time.Since(t0))
	}
	after := fs.Stats().Pipeline

	var readTotal, ckptTotal time.Duration
	for _, d := range epochDurs {
		readTotal += d
	}
	for _, d := range saveDurs {
		ckptTotal += d
	}
	rep.Read.Seconds = readTotal.Seconds()
	rep.Read.BytesPerSec = float64(samples) * sampleBytes / medianDur(epochDurs).Seconds()
	rep.Ckpt.Seconds = ckptTotal.Seconds()
	rep.Ckpt.BytesPerSec = float64(stateBytes) / medianDur(saveDurs).Seconds()
	rep.Ckpt.WriteCmds = after.CkptWriteCmds - before.CkptWriteCmds
	rep.Ckpt.WriteSegs = after.CkptWriteSegs - before.CkptWriteSegs
	rep.Ckpt.Flushes = after.CkptFlushes - before.CkptFlushes
	rep.Ckpt.Downgrades = after.CkptDowngrades
	if after.Stages != nil {
		rep.Ckpt.WriteHist = toHistJSON(after.Stages.Ckpt)
	}

	// Byte-exact read-back of the newest committed checkpoint.
	got, gotStep, err := ck.Load()
	if err != nil {
		return fmt.Errorf("read-back: %w", err)
	}
	rep.Verified = gotStep == step && bytes.Equal(got, state)
	fs.Recycle(got)

	for i, tgt := range targets {
		ss := tgt.ServerStats()
		rep.Server.WriteBytes += ss.WriteBytes
		rep.Server.VecWriteCmds += ss.VecWriteCmds
		rep.Server.VecWriteSegs += ss.VecWriteSegs
		rep.Server.AdoptedExtents += ss.AdoptedExtents
		rep.Server.FlushCmds += ss.FlushCmds
		rep.Server.FlushWaitSec += float64(ss.FlushWaitNanos) / 1e9
		rep.Server.CowClones += stores[i].CowClones()
	}
	rep.Ratio = rep.Ckpt.BytesPerSec / rep.Read.BytesPerSec
	rep.RatioOK = rep.Ratio >= ckptMinRatio

	buf, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if out == "-" {
		if _, err := os.Stdout.Write(buf); err != nil {
			return err
		}
	} else if err := os.WriteFile(out, buf, 0o644); err != nil {
		return err
	}
	fmt.Printf("dlfsbench: checkpoint bench: read %s/s, ckpt %s/s (%.2fx, floor %.1fx), %d cmds / %d segs / %d flushes / %d adopted, read-back %s; wrote %s\n",
		metrics.HumanBytes(int64(rep.Read.BytesPerSec)),
		metrics.HumanBytes(int64(rep.Ckpt.BytesPerSec)),
		rep.Ratio, ckptMinRatio,
		rep.Ckpt.WriteCmds, rep.Ckpt.WriteSegs, rep.Ckpt.Flushes, rep.Server.AdoptedExtents,
		map[bool]string{true: "verified", false: "DIVERGED"}[rep.Verified], out)
	if !rep.Verified {
		return fmt.Errorf("checkpoint read-back diverged from the saved state")
	}
	if !rep.RatioOK {
		return fmt.Errorf("checkpoint ingest %.2fx of read throughput, below the %.1fx floor",
			rep.Ratio, ckptMinRatio)
	}
	return nil
}
