// Command dlfsbench regenerates the paper's evaluation: every figure of
// §IV plus the ablation studies, printed as tables whose rows mirror the
// series the paper plots.
//
// Usage:
//
//	dlfsbench                  # all figures at full scale
//	dlfsbench -fig 6           # one figure
//	dlfsbench -fig 7a -scale 0.25
//	dlfsbench -fig ablation    # design-choice ablations
//	dlfsbench -live -json BENCH_7.json
//	                           # live TCP epoch bench: throughput
//	                           # trajectory, stage quantiles, and
//	                           # cold-vs-warm prefetch poll p50 as JSON
//	dlfsbench -peers -json BENCH_PEERS.json
//	                           # multi-rank cooperative peer cache bench:
//	                           # per-rank origin wire bytes with the
//	                           # cache off vs on
//	dlfsbench -offload -json BENCH_8.json
//	                           # near-data assembly bench: cold-epoch wire
//	                           # bytes and throughput, opReadVec baseline
//	                           # vs server assembly on an edge-heavy layout
//	dlfsbench -tenants -json BENCH_TENANTS.json
//	                           # multi-tenant isolation bench: a paced
//	                           # victim's queue-wait p99 solo vs under a
//	                           # greedy quota-capped co-tenant; fails if
//	                           # contention inflates it past the bound
//	dlfsbench -checkpoint -json BENCH_CKPT.json
//	                           # checkpoint-ingest bench: sharded saves
//	                           # through the gathered-write pipeline vs
//	                           # the read-path baseline; fails below the
//	                           # ratio floor or on read-back divergence
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"dlfs/internal/figures"
	"dlfs/internal/metrics"
)

type figure struct {
	name string
	desc string
	fn   func(float64) *metrics.Table
}

var all = []figure{
	{"1", "sample size distributions (ImageNet, IMDB)", figures.Fig1},
	{"6", "single-node random-read throughput", figures.Fig6},
	{"7a", "cores needed to saturate the SSD", figures.Fig7a},
	{"7b", "compute overlapped with the poll loop", figures.Fig7b},
	{"8", "aggregated throughput over 16 nodes", figures.Fig8},
	{"9", "scalability across 2-16 nodes", figures.Fig9},
	{"10", "sample lookup time for 1M samples", figures.Fig10},
	{"11", "effectiveness on disaggregated devices", figures.Fig11},
	{"12", "TensorFlow import throughput", figures.Fig12},
	{"13", "training accuracy vs sample order", figures.Fig13},
}

var ablations = []figure{
	{"ablation-batching", "batching optimisations, one at a time", figures.AblationBatching},
	{"ablation-chunk", "chunk size sweep", figures.AblationChunkSize},
	{"ablation-qd", "queue depth sweep", figures.AblationQueueDepth},
	{"ablation-copy", "copy-thread pool sweep", figures.AblationCopyThreads},
	{"ablation-pattern", "sequential vs random access (§II-B motivation)", figures.AblationAccessPattern},
	{"ablation-stagein", "PFS stage-in: per-file vs containers", figures.AblationStageIn},
	{"stages", "Fig 4 pipeline stage CPU breakdown", figures.StageBreakdown},
	{"mount", "directory build + allgather time vs nodes (§III-B2)", figures.MountTime},
	{"sensitivity", "throughput sensitivity to model parameters", figures.Sensitivity},
	{"capacity", "DeepIO memory-preload vs DLFS by dataset/RAM ratio (§V)", figures.MemoryCapacity},
}

func main() {
	figFlag := flag.String("fig", "all", "figure to run: 1,6,7a,7b,8,9,10,11,12,13, ablation, or all")
	scale := flag.Float64("scale", 1.0, "measurement volume scale (smaller = faster, noisier)")
	list := flag.Bool("list", false, "list available figures and exit")
	liveBench := flag.Bool("live", false, "run the live TCP epoch bench instead of the figures")
	peerBench := flag.Bool("peers", false, "run the multi-rank peer-cache wire bench instead of the figures")
	offloadBench := flag.Bool("offload", false, "run the near-data sample-assembly wire bench instead of the figures")
	tenantBench := flag.Bool("tenants", false, "run the multi-tenant isolation bench instead of the figures")
	ckptBench := flag.Bool("checkpoint", false, "run the checkpoint-ingest write-path bench instead of the figures")
	jsonOut := flag.String("json", "", "bench JSON report path (- for stdout; default BENCH_7.json / BENCH_PEERS.json / BENCH_8.json / BENCH_TENANTS.json / BENCH_CKPT.json)")
	flag.Parse()

	if *liveBench {
		out := *jsonOut
		if out == "" {
			out = "BENCH_7.json"
		}
		if err := runLiveBench(out, *scale); err != nil {
			fmt.Fprintln(os.Stderr, "dlfsbench:", err)
			os.Exit(1)
		}
		return
	}
	if *peerBench {
		out := *jsonOut
		if out == "" {
			out = "BENCH_PEERS.json"
		}
		if err := runPeerBench(out, *scale); err != nil {
			fmt.Fprintln(os.Stderr, "dlfsbench:", err)
			os.Exit(1)
		}
		return
	}
	if *offloadBench {
		out := *jsonOut
		if out == "" {
			out = "BENCH_8.json"
		}
		if err := runOffloadBench(out, *scale); err != nil {
			fmt.Fprintln(os.Stderr, "dlfsbench:", err)
			os.Exit(1)
		}
		return
	}
	if *tenantBench {
		out := *jsonOut
		if out == "" {
			out = "BENCH_TENANTS.json"
		}
		if err := runTenantBench(out, *scale); err != nil {
			fmt.Fprintln(os.Stderr, "dlfsbench:", err)
			os.Exit(1)
		}
		return
	}
	if *ckptBench {
		out := *jsonOut
		if out == "" {
			out = "BENCH_CKPT.json"
		}
		if err := runCkptBench(out, *scale); err != nil {
			fmt.Fprintln(os.Stderr, "dlfsbench:", err)
			os.Exit(1)
		}
		return
	}

	if *list {
		for _, f := range append(append([]figure{}, all...), ablations...) {
			fmt.Printf("  %-18s %s\n", f.name, f.desc)
		}
		return
	}

	var selected []figure
	switch strings.ToLower(*figFlag) {
	case "all":
		selected = append(selected, all...)
		selected = append(selected, ablations...)
	case "ablation", "ablations":
		selected = ablations
	default:
		for _, f := range append(append([]figure{}, all...), ablations...) {
			if f.name == *figFlag {
				selected = []figure{f}
			}
		}
		if selected == nil {
			fmt.Fprintf(os.Stderr, "dlfsbench: unknown figure %q (use -list)\n", *figFlag)
			os.Exit(2)
		}
	}

	for _, f := range selected {
		start := time.Now()
		tab := f.fn(*scale)
		fmt.Printf("%s\n", tab)
		fmt.Printf("(fig %s: %s — generated in %.1fs at scale %.2f)\n\n",
			f.name, f.desc, time.Since(start).Seconds(), *scale)
	}
}
