package main

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"dlfs/internal/blockdev"
	"dlfs/internal/dataset"
	"dlfs/internal/live"
	"dlfs/internal/metrics"
	"dlfs/internal/nvmetcp"
)

// The offload bench measures what near-data sample assembly buys on the
// storage wire: an edge-heavy layout (40 KiB samples on 64 KiB chunks,
// so every other sample straddles a chunk boundary and the vectored
// chunk path overfetches padding) drained cold through three mounts —
// the opReadVec baseline, server assembly with no transform, and server
// assembly with crc32c end-to-end verification. With assembly on, the
// response payload is exactly the samples' bytes: the JSON report
// (BENCH_8.json in CI) records per-mode wire bytes per cold epoch,
// throughput, and the wire-byte reduction against the baseline.

type offloadModeJSON struct {
	Mode          string  `json:"mode"`
	Transform     string  `json:"transform"`
	Epochs        int     `json:"epochs"`
	Samples       int     `json:"samples_per_epoch"`
	Seconds       float64 `json:"seconds"`
	SamplesPerSec float64 `json:"samples_per_sec"`
	// WireBytesPerEpoch is the per-cold-epoch payload byte count pulled
	// over the wire (identical every epoch; the runner verifies that).
	WireBytesPerEpoch   int64 `json:"wire_bytes_per_epoch"`
	SampleBytesPerEpoch int64 `json:"sample_bytes_per_epoch"`
	OffloadCmds         int64 `json:"offload_cmds"`
	OffloadSamples      int64 `json:"offload_samples"`
	OffloadSavedBytes   int64 `json:"offload_saved_bytes"`
	// WireExact reports whether every cold epoch moved exactly the
	// delivered samples' bytes — the tentpole invariant for the
	// no-transform assembly mode.
	WireExact bool `json:"wire_bytes_exact"`
}

type offloadReport struct {
	Bench  string `json:"bench"`
	Schema int    `json:"schema_version"`
	Config struct {
		Targets     int     `json:"targets"`
		Samples     int     `json:"samples"`
		SampleBytes int     `json:"sample_bytes"`
		ChunkBytes  int     `json:"chunk_bytes"`
		Epochs      int     `json:"epochs"`
		Scale       float64 `json:"scale"`
	} `json:"config"`
	Modes []offloadModeJSON `json:"modes"`
	// WireReductionPct is the percentage of baseline wire traffic the
	// no-transform assembly mode eliminated.
	WireReductionPct float64 `json:"wire_reduction_pct"`
	// ThroughputRatio is assembly-none cold samples/s over baseline.
	ThroughputRatio float64 `json:"throughput_ratio"`
}

// runOffloadMode mounts a fresh target set, drains epochs cold epochs
// (distinct seeds, no cross-epoch prefetch), verifies every checksum,
// and returns the mode's wire accounting.
func runOffloadMode(ds *dataset.Dataset, mode string, xform int, serverAssembly bool, chunkBytes, epochs int) (offloadModeJSON, error) {
	const nTargets = 2
	addrs := make([]string, nTargets)
	for i := range addrs {
		tgt := nvmetcp.NewTarget(blockdev.New(1<<30), 64)
		addr, err := tgt.Listen("127.0.0.1:0")
		if err != nil {
			return offloadModeJSON{}, err
		}
		defer tgt.Close() //nolint:errcheck
		addrs[i] = addr
	}
	fs, err := live.Mount(addrs, ds, live.Config{
		ChunkSize:         chunkBytes,
		ServerAssembly:    serverAssembly,
		AssemblyTransform: xform,
	})
	if err != nil {
		return offloadModeJSON{}, err
	}
	defer fs.Close() //nolint:errcheck

	mj := offloadModeJSON{
		Mode:      mode,
		Transform: nvmetcp.TransformName(byte(xform)),
		Epochs:    epochs,
		Samples:   ds.Len(),
		WireExact: true,
	}
	var elapsed time.Duration
	for e := 0; e < epochs; e++ {
		before := fs.Stats().Pipeline
		ep, err := fs.Sequence(int64(300 + e))
		if err != nil {
			return offloadModeJSON{}, err
		}
		start := time.Now()
		var sampleBytes int64
		n := 0
		for {
			items, ok, err := ep.NextBatch()
			if err != nil {
				return offloadModeJSON{}, err
			}
			for _, it := range items {
				if dataset.ChecksumBytes(it.Data) != ds.Checksum(it.Index) {
					return offloadModeJSON{}, fmt.Errorf("mode %s epoch %d: checksum mismatch on sample %d", mode, e, it.Index)
				}
				sampleBytes += int64(len(it.Data))
			}
			n += len(items)
			fs.RecycleItems(items)
			if !ok {
				break
			}
		}
		elapsed += time.Since(start)
		after := fs.Stats().Pipeline
		wire := after.WireBytes - before.WireBytes
		if e == 0 {
			mj.WireBytesPerEpoch = wire
			mj.SampleBytesPerEpoch = sampleBytes
		} else if wire != mj.WireBytesPerEpoch {
			return offloadModeJSON{}, fmt.Errorf("mode %s: wire bytes drifted across cold epochs: %d then %d", mode, mj.WireBytesPerEpoch, wire)
		}
		if wire != sampleBytes {
			mj.WireExact = false
		}
		if n != ds.Len() {
			return offloadModeJSON{}, fmt.Errorf("mode %s epoch %d: %d/%d samples delivered", mode, e, n, ds.Len())
		}
	}
	pl := fs.Stats().Pipeline
	mj.Seconds = elapsed.Seconds()
	mj.SamplesPerSec = float64(epochs*ds.Len()) / elapsed.Seconds()
	mj.OffloadCmds = pl.OffloadCmds
	mj.OffloadSamples = pl.OffloadSamples
	mj.OffloadSavedBytes = pl.OffloadSavedBytes
	return mj, nil
}

// runOffloadBench runs the three modes and writes the JSON report to
// out ("-" writes to stdout).
func runOffloadBench(out string, scale float64) error {
	// 40 KiB samples on 64 KiB chunks: the fetch plan alternates whole
	// chunks with edge reads, so the chunk path moves 104 KiB per 80 KiB
	// of delivered data — the padding server assembly eliminates.
	const sampleBytes = 40 << 10
	const chunkBytes = 64 << 10
	const epochs = 2
	samples := int(600 * scale)
	if samples < 64 {
		samples = 64
	}
	ds := dataset.Generate(dataset.Config{Label: "offload", Seed: 23, NumSamples: samples, Dist: dataset.Fixed(sampleBytes)})

	var rep offloadReport
	rep.Bench = "offload-wire"
	rep.Schema = 1
	rep.Config.Targets = 2
	rep.Config.Samples = samples
	rep.Config.SampleBytes = sampleBytes
	rep.Config.ChunkBytes = chunkBytes
	rep.Config.Epochs = epochs
	rep.Config.Scale = scale

	modes := []struct {
		name     string
		assembly bool
		xform    int
	}{
		{"readvec-baseline", false, int(nvmetcp.TransformNone)},
		{"assembly-none", true, int(nvmetcp.TransformNone)},
		{"assembly-crc32c", true, int(nvmetcp.TransformCRC32C)},
	}
	for _, m := range modes {
		mj, err := runOffloadMode(ds, m.name, m.xform, m.assembly, chunkBytes, epochs)
		if err != nil {
			return fmt.Errorf("mode %s: %w", m.name, err)
		}
		rep.Modes = append(rep.Modes, mj)
	}
	base, none := rep.Modes[0], rep.Modes[1]
	if base.WireBytesPerEpoch > 0 {
		rep.WireReductionPct = 100 * float64(base.WireBytesPerEpoch-none.WireBytesPerEpoch) / float64(base.WireBytesPerEpoch)
	}
	if base.SamplesPerSec > 0 {
		rep.ThroughputRatio = none.SamplesPerSec / base.SamplesPerSec
	}

	buf, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if out == "-" {
		_, err = os.Stdout.Write(buf)
		return err
	}
	if err := os.WriteFile(out, buf, 0o644); err != nil {
		return err
	}
	fmt.Printf("dlfsbench: offload wire bench: %d samples x %d cold epochs; wire %s -> %s per epoch (%.1f%% less), throughput x%.2f; wrote %s\n",
		samples, epochs,
		metrics.HumanBytes(base.WireBytesPerEpoch), metrics.HumanBytes(none.WireBytesPerEpoch),
		rep.WireReductionPct, rep.ThroughputRatio, out)
	return nil
}
