package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"time"

	"dlfs/internal/blockdev"
	"dlfs/internal/coord"
	"dlfs/internal/dataset"
	"dlfs/internal/live"
	"dlfs/internal/metrics"
	"dlfs/internal/nvmetcp"
)

// The peer bench measures what the cooperative sample cache buys on the
// storage wire: an in-process cluster of world ranks where every rank
// reads the full dataset through ReadSample, run twice — once with the
// peer cache off (every rank pays origin for everything) and once with
// it on (each sample crosses the storage wire once cluster-wide, every
// other copy rides the peer fabric). The JSON report (BENCH_PEERS.json
// in CI) carries per-rank origin bytes for both phases plus the
// reduction factor.

type peerRankJSON struct {
	Rank          int   `json:"rank"`
	OriginReads   int64 `json:"origin_reads"`
	OriginBytes   int64 `json:"origin_bytes"`
	PeerHits      int64 `json:"peer_hits"`
	PeerBytes     int64 `json:"peer_bytes"`
	PeerFallbacks int64 `json:"peer_fallbacks"`
	PeerServed    int64 `json:"peer_served"`
	CacheHits     int64 `json:"cache_hits"`
}

type peerPhaseJSON struct {
	PeerCache        bool           `json:"peer_cache"`
	Seconds          float64        `json:"seconds"`
	Ranks            []peerRankJSON `json:"ranks"`
	TotalOriginBytes int64          `json:"total_origin_bytes"`
	TotalPeerBytes   int64          `json:"total_peer_bytes"`
}

type peerReport struct {
	Bench  string `json:"bench"`
	Schema int    `json:"schema_version"`
	Config struct {
		World        int     `json:"world"`
		Samples      int     `json:"samples"`
		SampleBytes  int     `json:"sample_bytes"`
		DatasetBytes int64   `json:"dataset_bytes"`
		Scale        float64 `json:"scale"`
	} `json:"config"`
	Baseline peerPhaseJSON `json:"baseline"`
	Peer     peerPhaseJSON `json:"peer"`
	// OriginReduction is baseline total origin bytes over peer-phase
	// total origin bytes: ~world when the cooperative cache holds.
	OriginReduction float64 `json:"origin_reduction"`
}

// runPeerPhase stands up targets + coordinator, mounts world ranks, has
// every rank read the whole dataset through ReadSample, and returns the
// per-rank pipeline counters.
func runPeerPhase(world int, ds *dataset.Dataset, peerCache bool) (peerPhaseJSON, error) {
	addrs := make([]string, world)
	for i := range addrs {
		tgt := nvmetcp.NewTarget(blockdev.New(1<<30), 64)
		addr, err := tgt.Listen("127.0.0.1:0")
		if err != nil {
			return peerPhaseJSON{}, err
		}
		defer tgt.Close() //nolint:errcheck
		addrs[i] = addr
	}
	srv := coord.NewServer(world, coord.ServerOptions{})
	caddr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		return peerPhaseJSON{}, err
	}
	defer srv.Close() //nolint:errcheck

	cfg := live.Config{
		ChunkSize:      16 << 10,
		ReadCacheBytes: ds.TotalBytes() + (4 << 20), // owners keep their shard resident
		PeerCache:      peerCache,
	}
	type out struct {
		pl  metrics.PipelineSnapshot
		err error
	}
	outs := make([]out, world)
	var wg sync.WaitGroup
	// Ranks must keep their peer service up until every rank has finished
	// reading, or a fast rank's Close would look like a dead peer to the
	// slow ones; readers blocks Close until all scans are done.
	var readers sync.WaitGroup
	readers.Add(world)
	start := time.Now()
	for r := 0; r < world; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			lfs, err := live.MountCluster(caddr, r, world, addrs, ds, cfg)
			if err != nil {
				outs[r].err = err
				readers.Done()
				return
			}
			defer lfs.Close()    //nolint:errcheck
			defer readers.Wait() // hold the mount open for the other ranks
			defer readers.Done()
			// Rotate each rank's scan start so the ranks don't race each
			// other to the same sample in lockstep: the first rank to
			// reach a sample seeds its owner's cache, the others hit it.
			for k := 0; k < ds.Len(); k++ {
				i := (k + r*ds.Len()/world) % ds.Len()
				buf, err := lfs.ReadSample(i)
				if err != nil {
					outs[r].err = fmt.Errorf("rank %d sample %d: %w", r, i, err)
					return
				}
				if dataset.ChecksumBytes(buf) != ds.Checksum(i) {
					outs[r].err = fmt.Errorf("rank %d sample %d: checksum mismatch", r, i)
					return
				}
				lfs.Recycle(buf)
			}
			outs[r].pl = lfs.Stats().Pipeline
		}(r)
	}
	wg.Wait()

	phase := peerPhaseJSON{PeerCache: peerCache, Seconds: time.Since(start).Seconds()}
	for r := range outs {
		if outs[r].err != nil {
			return peerPhaseJSON{}, outs[r].err
		}
		pl := outs[r].pl
		phase.Ranks = append(phase.Ranks, peerRankJSON{
			Rank:          r,
			OriginReads:   pl.OriginReads,
			OriginBytes:   pl.OriginBytes,
			PeerHits:      pl.PeerHits,
			PeerBytes:     pl.PeerBytes,
			PeerFallbacks: pl.PeerFallbacks,
			PeerServed:    pl.PeerServed,
			CacheHits:     pl.CacheHits,
		})
		phase.TotalOriginBytes += pl.OriginBytes
		phase.TotalPeerBytes += pl.PeerBytes
	}
	return phase, nil
}

// runPeerBench runs both phases and writes the JSON report to out ("-"
// writes to stdout).
func runPeerBench(out string, scale float64) error {
	const world = 3
	const sampleBytes = 16 << 10
	samples := int(1200 * scale)
	if samples < 120 {
		samples = 120
	}
	ds := dataset.Generate(dataset.Config{Label: "peers", Seed: 17, NumSamples: samples, Dist: dataset.Fixed(sampleBytes)})

	var rep peerReport
	rep.Bench = "peer-wire"
	rep.Schema = 1
	rep.Config.World = world
	rep.Config.Samples = samples
	rep.Config.SampleBytes = sampleBytes
	rep.Config.DatasetBytes = ds.TotalBytes()
	rep.Config.Scale = scale

	var err error
	if rep.Baseline, err = runPeerPhase(world, ds, false); err != nil {
		return fmt.Errorf("baseline phase: %w", err)
	}
	if rep.Peer, err = runPeerPhase(world, ds, true); err != nil {
		return fmt.Errorf("peer phase: %w", err)
	}
	if rep.Peer.TotalOriginBytes > 0 {
		rep.OriginReduction = float64(rep.Baseline.TotalOriginBytes) / float64(rep.Peer.TotalOriginBytes)
	}

	buf, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if out == "-" {
		_, err = os.Stdout.Write(buf)
		return err
	}
	if err := os.WriteFile(out, buf, 0o644); err != nil {
		return err
	}
	fmt.Printf("dlfsbench: peer wire bench: %d ranks x %d samples; origin bytes %s -> %s (%.2fx reduction), peer fabric %s; wrote %s\n",
		world, samples,
		metrics.HumanBytes(rep.Baseline.TotalOriginBytes), metrics.HumanBytes(rep.Peer.TotalOriginBytes),
		rep.OriginReduction, metrics.HumanBytes(rep.Peer.TotalPeerBytes), out)
	return nil
}
