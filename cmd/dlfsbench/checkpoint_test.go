package main

import (
	"encoding/json"
	"os"
	"testing"
)

// TestCommittedCkptBenchReport asserts the acceptance numbers of the
// committed BENCH_CKPT.json: checkpoint ingest on the 2-target config
// sustained at least the MinRatio fraction of the read-path rate, the
// post-save read-back verified byte-exact, the saves really rode the
// gathered write pipeline (opWriteVec commands with multiple segments,
// flush barriers, extent adoption on the targets) and never downgraded
// to the per-extent legacy path.
func TestCommittedCkptBenchReport(t *testing.T) {
	raw, err := os.ReadFile("../../BENCH_CKPT.json")
	if err != nil {
		t.Fatalf("committed bench report missing: %v", err)
	}
	var rep ckptReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("BENCH_CKPT.json does not parse: %v", err)
	}
	if rep.Bench != "checkpoint-ingest" || rep.Schema != 1 {
		t.Fatalf("report identity: bench=%q schema=%d", rep.Bench, rep.Schema)
	}
	if rep.Config.Targets != 2 {
		t.Fatalf("acceptance config is 2 targets, report has %d", rep.Config.Targets)
	}
	if !rep.Verified {
		t.Fatal("committed report records a diverged read-back")
	}
	if !rep.RatioOK {
		t.Fatalf("committed report below the floor: %.3fx < %.1fx", rep.Ratio, rep.Config.MinRatio)
	}
	// The gate must be the documented formula, not a stale hand edit.
	if rep.Read.BytesPerSec <= 0 || rep.Ckpt.BytesPerSec <= 0 {
		t.Fatalf("throughputs not positive: read %.0f ckpt %.0f", rep.Read.BytesPerSec, rep.Ckpt.BytesPerSec)
	}
	wantRatio := rep.Ckpt.BytesPerSec / rep.Read.BytesPerSec
	if diff := rep.Ratio - wantRatio; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("ratio %.6f inconsistent with ckpt/read = %.6f", rep.Ratio, wantRatio)
	}
	if rep.Ratio < rep.Config.MinRatio {
		t.Fatalf("ratio %.3f below floor %.1f yet ratio_ok=true", rep.Ratio, rep.Config.MinRatio)
	}
	// The measured saves must have been real gathered-pipeline traffic.
	if rep.Ckpt.WriteCmds == 0 || rep.Ckpt.WriteSegs <= rep.Ckpt.WriteCmds {
		t.Fatalf("gathered accounting off: %d cmds / %d segs", rep.Ckpt.WriteCmds, rep.Ckpt.WriteSegs)
	}
	if rep.Ckpt.Flushes == 0 {
		t.Fatal("no durability barriers recorded")
	}
	if rep.Ckpt.Downgrades != 0 {
		t.Fatalf("saves downgraded to the legacy path %d times on a current-protocol target", rep.Ckpt.Downgrades)
	}
	// Server side: vectored ingest landed the bytes, and extent-aligned
	// shards landed zero-copy via buffer adoption.
	if rep.Server.WriteBytes == 0 || rep.Server.VecWriteCmds == 0 || rep.Server.VecWriteSegs == 0 {
		t.Fatalf("server write counters empty: %+v", rep.Server)
	}
	if rep.Server.AdoptedExtents == 0 {
		t.Fatal("no extents adopted: the zero-copy ingest path did not engage")
	}
	if rep.Server.FlushCmds == 0 {
		t.Fatal("no opFlush commands reached the targets")
	}
}
