package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sync"
	"time"

	"dlfs/internal/blockdev"
	"dlfs/internal/metrics"
	"dlfs/internal/nvmetcp"
)

// The tenant bench measures what the target's deficit-round-robin
// scheduler and per-tenant quotas buy a well-behaved tenant: a paced
// victim issues small reads while a greedy co-tenant pipelines large
// reads as fast as the target's quota lets it. The isolation signal is
// the victim's server-side queue-wait p99 — under the old single FIFO
// the victim's commands would park behind the greedy backlog; under
// per-tenant queues they wait only behind the victim's own (empty)
// queue plus at most one DRR interleave per worker. The JSON report
// (BENCH_TENANTS.json in CI) records the victim's p99 solo and under
// contention; the run fails unless the contended p99 stays within
// Bound x solo (with a small absolute floor to absorb scheduling
// noise), so a regression back toward FIFO behaviour fails the gate.

type tenantScenarioJSON struct {
	Scenario        string  `json:"scenario"`
	VictimCmds      int64   `json:"victim_cmds"`
	VictimQwaitP50  float64 `json:"victim_qwait_p50_ms"`
	VictimQwaitP99  float64 `json:"victim_qwait_p99_ms"`
	VictimThrottled int64   `json:"victim_throttled"`
	GreedyCmds      int64   `json:"greedy_cmds"`
	GreedyBytes     int64   `json:"greedy_bytes"`
	GreedyThrottled int64   `json:"greedy_throttled"`
}

type tenantLegacyJSON struct {
	Cmds          int64 `json:"cmds"`
	VerifyOK      bool  `json:"verify_ok"`
	TenantRejects int64 `json:"tenant_rejects"`
}

type tenantReport struct {
	Bench  string `json:"bench"`
	Schema int    `json:"schema_version"`
	Config struct {
		Workers           int     `json:"workers"`
		VictimReadBytes   int     `json:"victim_read_bytes"`
		GreedyReadBytes   int     `json:"greedy_read_bytes"`
		PacedReads        int     `json:"paced_reads"`
		PaceMicros        int     `json:"pace_micros"`
		TenantBytesPerSec int64   `json:"tenant_bytes_per_sec"`
		Bound             float64 `json:"bound"`
		FloorMs           float64 `json:"floor_ms"`
		Scale             float64 `json:"scale"`
	} `json:"config"`
	Solo      tenantScenarioJSON `json:"solo"`
	Contended tenantScenarioJSON `json:"contended"`
	Legacy    tenantLegacyJSON   `json:"legacy"`
	// P99Ratio is contended victim qwait p99 over solo; BoundMs is the
	// ceiling the contended p99 was held to: max(Bound x solo, FloorMs).
	P99Ratio float64 `json:"p99_ratio"`
	BoundMs  float64 `json:"bound_ms"`
	Isolated bool    `json:"isolated"`
}

// Bench geometry. The greedy tenant's pipelined megabyte reads would
// move multiple GiB/s from a memory-backed store; the byte quota caps
// it far below that so admission control, not the NIC, is what the
// victim is protected by.
const (
	tenantVictimID   = 1
	tenantGreedyID   = 2
	tenantWorkers    = 2
	victimReadBytes  = 64 << 10
	greedyReadBytes  = 1 << 20
	greedyWindow     = 16
	greedyConns      = 2
	tenantQuotaBPS   = 128 << 20
	tenantPaceMicros = 2000
	tenantBound      = 2.0
	tenantFloorMs    = 2.0
	tenantStoreBytes = 1 << 28
)

// newTenantTarget starts one quota-enforcing multi-tenant target.
func newTenantTarget() (*nvmetcp.Target, string, error) {
	tgt := nvmetcp.NewTargetConfig(blockdev.New(tenantStoreBytes), nvmetcp.Config{
		Depth:             64,
		Workers:           tenantWorkers,
		MaxTenants:        4,
		TenantBytesPerSec: tenantQuotaBPS,
		StageHistograms:   true,
	})
	addr, err := tgt.Listen("127.0.0.1:0")
	if err != nil {
		return nil, "", err
	}
	return tgt, addr, nil
}

// victimLoop issues pacedReads synchronous small reads, one per pace
// tick — the well-behaved tenant whose latency the scheduler protects.
// Its rate (64 KiB / 2 ms = 32 MiB/s) sits far under the byte quota,
// so any throttle it sees is a bug worth surfacing in the report.
func victimLoop(in *nvmetcp.Initiator, pacedReads int, pace time.Duration) (cmds, throttled int64, err error) {
	buf := make([]byte, victimReadBytes)
	tick := time.NewTicker(pace)
	defer tick.Stop()
	off := int64(0)
	for i := 0; i < pacedReads; i++ {
		<-tick.C
		_, rerr := in.ReadAt(buf, off)
		var te *nvmetcp.ThrottledError
		switch {
		case rerr == nil:
			cmds++
		case errors.As(rerr, &te):
			throttled++
			time.Sleep(te.RetryAfter)
		default:
			return cmds, throttled, rerr
		}
		off += victimReadBytes
		if off+victimReadBytes > tenantStoreBytes {
			off = 0
		}
	}
	return cmds, throttled, nil
}

// greedyLoop pipelines windows of large reads until stop closes,
// behaving like a compliant but saturating client: throttles are
// counted and waited out per the target's retry-after hint.
func greedyLoop(in *nvmetcp.Initiator, stop <-chan struct{}, cmds, bytes, throttled *int64, mu *sync.Mutex) {
	bufs := make([][]byte, greedyWindow)
	for i := range bufs {
		bufs[i] = make([]byte, greedyReadBytes)
	}
	off := int64(0)
	for {
		select {
		case <-stop:
			return
		default:
		}
		pds := make([]*nvmetcp.Pending, 0, greedyWindow)
		for i := 0; i < greedyWindow; i++ {
			pd, err := in.ReadAsync(bufs[i], off)
			off += greedyReadBytes
			if off+greedyReadBytes > tenantStoreBytes {
				off = 0
			}
			if err != nil {
				// Depth pressure on this connection: drain what is
				// already on the wire and come back.
				break
			}
			pds = append(pds, pd)
		}
		var wait time.Duration
		for _, pd := range pds {
			n, err := pd.Wait()
			var te *nvmetcp.ThrottledError
			switch {
			case err == nil:
				mu.Lock()
				*cmds++
				*bytes += int64(n)
				mu.Unlock()
			case errors.As(err, &te):
				mu.Lock()
				*throttled++
				mu.Unlock()
				if te.RetryAfter > wait {
					wait = te.RetryAfter
				}
			default:
				return
			}
		}
		if wait > 0 {
			time.Sleep(wait)
		}
	}
}

// victimQwait extracts the victim tenant's server-side queue-wait
// quantiles from the target's per-tenant accounting.
func victimQwait(tgt *nvmetcp.Target) (p50, p99 time.Duration, cmds int64, err error) {
	for _, ts := range tgt.TenantStats() {
		if ts.ID != tenantVictimID {
			continue
		}
		if ts.Server.Stages == nil {
			return 0, 0, 0, fmt.Errorf("tenant %d has no stage histograms", tenantVictimID)
		}
		return ts.Server.Stages.QueueWait.P50(), ts.Server.Stages.QueueWait.P99(), ts.Cmds, nil
	}
	return 0, 0, 0, fmt.Errorf("tenant %d served no commands", tenantVictimID)
}

// runTenantScenario runs the victim against a fresh target, with or
// without the greedy co-tenant.
func runTenantScenario(name string, pacedReads int, contended bool) (tenantScenarioJSON, error) {
	sj := tenantScenarioJSON{Scenario: name}
	tgt, addr, err := newTenantTarget()
	if err != nil {
		return sj, err
	}
	defer tgt.Close() //nolint:errcheck

	victim, err := nvmetcp.ConnectOptions(addr, nvmetcp.Options{Tenant: tenantVictimID})
	if err != nil {
		return sj, err
	}
	defer victim.Close() //nolint:errcheck

	stop := make(chan struct{})
	var wg sync.WaitGroup
	if contended {
		var mu sync.Mutex
		for c := 0; c < greedyConns; c++ {
			in, err := nvmetcp.ConnectOptions(addr, nvmetcp.Options{Tenant: tenantGreedyID})
			if err != nil {
				close(stop)
				return sj, err
			}
			defer in.Close() //nolint:errcheck
			wg.Add(1)
			go func() {
				defer wg.Done()
				greedyLoop(in, stop, &sj.GreedyCmds, &sj.GreedyBytes, &sj.GreedyThrottled, &mu)
			}()
		}
		// Let the greedy pipelines fill before the victim starts, so
		// the victim's whole run sees a loaded target.
		time.Sleep(50 * time.Millisecond)
	}
	_, throttled, err := victimLoop(victim, pacedReads, tenantPaceMicros*time.Microsecond)
	close(stop)
	wg.Wait()
	if err != nil {
		return sj, fmt.Errorf("victim: %w", err)
	}
	sj.VictimThrottled = throttled
	p50, p99, cmds, err := victimQwait(tgt)
	if err != nil {
		return sj, err
	}
	sj.VictimCmds = cmds
	sj.VictimQwaitP50 = float64(p50) / 1e6
	sj.VictimQwaitP99 = float64(p99) / 1e6
	return sj, nil
}

// runTenantLegacy drives a default-options client (tenant 0 on the
// wire, exactly what every pre-tenant initiator sends) through a
// write/read/verify pass against the same multi-tenant target config:
// legacy clients must keep working unchanged, with zero tenant rejects.
func runTenantLegacy(pacedReads int) (tenantLegacyJSON, error) {
	lj := tenantLegacyJSON{VerifyOK: true}
	tgt, addr, err := newTenantTarget()
	if err != nil {
		return lj, err
	}
	defer tgt.Close() //nolint:errcheck
	in, err := nvmetcp.Connect(addr)
	if err != nil {
		return lj, err
	}
	defer in.Close() //nolint:errcheck

	wbuf := make([]byte, victimReadBytes)
	rbuf := make([]byte, victimReadBytes)
	for i := 0; i < pacedReads/4; i++ {
		for j := range wbuf {
			wbuf[j] = byte(i + j)
		}
		off := int64(i) * victimReadBytes
		if _, err := in.WriteAt(wbuf, off); err != nil {
			return lj, err
		}
		if _, err := in.ReadAt(rbuf, off); err != nil {
			return lj, err
		}
		lj.Cmds += 2
		for j := range rbuf {
			if rbuf[j] != wbuf[j] {
				lj.VerifyOK = false
				return lj, fmt.Errorf("legacy verify: byte %d mismatch at offset %d", j, off)
			}
		}
	}
	lj.TenantRejects = tgt.TenantRejects()
	if lj.TenantRejects != 0 {
		return lj, fmt.Errorf("legacy client saw %d tenant rejects", lj.TenantRejects)
	}
	return lj, nil
}

// runTenantBench runs the three scenarios, enforces the isolation
// bound, and writes the JSON report to out ("-" writes to stdout). A
// violated bound is an error: the bench is the CI gate.
func runTenantBench(out string, scale float64) error {
	pacedReads := int(300 * scale)
	if pacedReads < 50 {
		pacedReads = 50
	}

	var rep tenantReport
	rep.Bench = "tenant-isolation"
	rep.Schema = 1
	rep.Config.Workers = tenantWorkers
	rep.Config.VictimReadBytes = victimReadBytes
	rep.Config.GreedyReadBytes = greedyReadBytes
	rep.Config.PacedReads = pacedReads
	rep.Config.PaceMicros = tenantPaceMicros
	rep.Config.TenantBytesPerSec = tenantQuotaBPS
	rep.Config.Bound = tenantBound
	rep.Config.FloorMs = tenantFloorMs
	rep.Config.Scale = scale

	var err error
	if rep.Solo, err = runTenantScenario("solo-victim", pacedReads, false); err != nil {
		return fmt.Errorf("solo: %w", err)
	}
	if rep.Contended, err = runTenantScenario("contended-quotas", pacedReads, true); err != nil {
		return fmt.Errorf("contended: %w", err)
	}
	if rep.Legacy, err = runTenantLegacy(pacedReads); err != nil {
		return fmt.Errorf("legacy: %w", err)
	}

	rep.BoundMs = tenantBound * rep.Solo.VictimQwaitP99
	if rep.BoundMs < tenantFloorMs {
		rep.BoundMs = tenantFloorMs
	}
	if rep.Solo.VictimQwaitP99 > 0 {
		rep.P99Ratio = rep.Contended.VictimQwaitP99 / rep.Solo.VictimQwaitP99
	}
	rep.Isolated = rep.Contended.VictimQwaitP99 <= rep.BoundMs

	buf, merr := json.MarshalIndent(&rep, "", "  ")
	if merr != nil {
		return merr
	}
	buf = append(buf, '\n')
	if out == "-" {
		if _, err := os.Stdout.Write(buf); err != nil {
			return err
		}
	} else if err := os.WriteFile(out, buf, 0o644); err != nil {
		return err
	}
	fmt.Printf("dlfsbench: tenant isolation: victim qwait p99 %.3fms solo -> %.3fms contended (bound %.3fms), greedy %s throttled %d times; wrote %s\n",
		rep.Solo.VictimQwaitP99, rep.Contended.VictimQwaitP99, rep.BoundMs,
		metrics.HumanBytes(rep.Contended.GreedyBytes), rep.Contended.GreedyThrottled, out)
	if !rep.Isolated {
		return fmt.Errorf("isolation bound violated: contended victim qwait p99 %.3fms > %.3fms (%.1fx solo, bound %.1fx with %.1fms floor)",
			rep.Contended.VictimQwaitP99, rep.BoundMs, rep.P99Ratio, tenantBound, tenantFloorMs)
	}
	return nil
}
