package main

import (
	"encoding/json"
	"os"
	"testing"

	"dlfs/internal/dataset"
)

// TestCommittedOffloadBenchReport asserts the acceptance numbers of the
// committed BENCH_8.json: server assembly must move exactly the
// delivered samples' bytes per cold epoch (no padding, no edge
// overfetch), cut at least 20% of the baseline wire traffic on the
// edge-heavy layout, and never cost throughput.
func TestCommittedOffloadBenchReport(t *testing.T) {
	raw, err := os.ReadFile("../../BENCH_8.json")
	if err != nil {
		t.Fatalf("committed bench report missing: %v", err)
	}
	var rep offloadReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("BENCH_8.json does not parse: %v", err)
	}
	if rep.Bench != "offload-wire" || rep.Schema != 1 {
		t.Fatalf("report identity: bench=%q schema=%d", rep.Bench, rep.Schema)
	}
	if len(rep.Modes) != 3 {
		t.Fatalf("want 3 modes, got %d", len(rep.Modes))
	}
	byName := map[string]offloadModeJSON{}
	for _, m := range rep.Modes {
		byName[m.Mode] = m
	}
	base, okB := byName["readvec-baseline"]
	none, okN := byName["assembly-none"]
	crc, okC := byName["assembly-crc32c"]
	if !okB || !okN || !okC {
		t.Fatalf("missing modes in %v", rep.Modes)
	}

	// Tentpole invariant: with no transform, the wire carries exactly the
	// samples — byte for byte, every cold epoch.
	if !none.WireExact || none.WireBytesPerEpoch != none.SampleBytesPerEpoch {
		t.Fatalf("assembly-none not wire-exact: wire=%d samples=%d exact=%v",
			none.WireBytesPerEpoch, none.SampleBytesPerEpoch, none.WireExact)
	}
	if base.WireBytesPerEpoch <= none.WireBytesPerEpoch {
		t.Fatalf("baseline wire %d not above assembly wire %d", base.WireBytesPerEpoch, none.WireBytesPerEpoch)
	}
	if rep.WireReductionPct < 20 {
		t.Fatalf("wire reduction %.2f%%, acceptance floor is 20%%", rep.WireReductionPct)
	}
	if rep.ThroughputRatio < 1.0 {
		t.Fatalf("offload cost throughput: ratio %.3f < 1.0", rep.ThroughputRatio)
	}
	if none.OffloadCmds == 0 || none.OffloadSamples == 0 {
		t.Fatalf("assembly mode recorded no offload commands: %+v", none)
	}
	// The crc32c mode pays exactly 4 trailer bytes per record and nothing
	// else over the exact mode.
	if got, want := crc.WireBytesPerEpoch-none.WireBytesPerEpoch, int64(4*crc.Samples); got != want {
		t.Fatalf("crc32c wire overhead %d bytes/epoch, want %d (4/record)", got, want)
	}
	if base.OffloadCmds != 0 || base.OffloadSavedBytes != 0 {
		t.Fatalf("baseline mode recorded offload activity: %+v", base)
	}
}

// TestOffloadModeWireExactFresh reruns a miniature assembly-none mode
// in-process (not from the committed report): the byte-exactness
// invariant must hold on a fresh measurement, not just the archived
// one. Throughput is deliberately not asserted here — tiny runs on
// loaded CI machines are noise.
func TestOffloadModeWireExactFresh(t *testing.T) {
	ds := dataset.Generate(dataset.Config{Label: "offload", Seed: 23, NumSamples: 64, Dist: dataset.Fixed(40 << 10)})
	mj, err := runOffloadMode(ds, "assembly-none", 0, true, 64<<10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !mj.WireExact || mj.WireBytesPerEpoch != mj.SampleBytesPerEpoch {
		t.Fatalf("fresh assembly-none run not wire-exact: %+v", mj)
	}
	if mj.WireBytesPerEpoch != int64(ds.Len())*(40<<10) {
		t.Fatalf("wire %d, want %d", mj.WireBytesPerEpoch, ds.Len()*(40<<10))
	}
	if mj.OffloadCmds == 0 || mj.OffloadSamples != int64(ds.Len()) {
		t.Fatalf("offload counters off: %+v", mj)
	}

	base, err := runOffloadMode(ds, "readvec-baseline", 0, false, 64<<10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if base.WireBytesPerEpoch <= mj.WireBytesPerEpoch {
		t.Fatalf("fresh baseline wire %d not above assembly wire %d",
			base.WireBytesPerEpoch, mj.WireBytesPerEpoch)
	}
}
