package main

import (
	"encoding/json"
	"os"
	"testing"
)

// TestCommittedTenantBenchReport asserts the acceptance numbers of the
// committed BENCH_TENANTS.json: with quotas on, the well-behaved
// victim's queue-wait p99 under a greedy co-tenant stayed within the
// configured bound of its solo p99 (or the absolute noise floor), the
// quota actually bit the greedy tenant, the victim was never throttled,
// and the legacy tenant-0 client ran verified and unrejected.
func TestCommittedTenantBenchReport(t *testing.T) {
	raw, err := os.ReadFile("../../BENCH_TENANTS.json")
	if err != nil {
		t.Fatalf("committed bench report missing: %v", err)
	}
	var rep tenantReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("BENCH_TENANTS.json does not parse: %v", err)
	}
	if rep.Bench != "tenant-isolation" || rep.Schema != 1 {
		t.Fatalf("report identity: bench=%q schema=%d", rep.Bench, rep.Schema)
	}
	if !rep.Isolated {
		t.Fatalf("committed report records an isolation violation: contended p99 %.3fms > bound %.3fms",
			rep.Contended.VictimQwaitP99, rep.BoundMs)
	}
	// The gate must be the documented formula, not a stale hand edit.
	want := rep.Config.Bound * rep.Solo.VictimQwaitP99
	if want < rep.Config.FloorMs {
		want = rep.Config.FloorMs
	}
	if rep.BoundMs != want {
		t.Fatalf("bound_ms %.6f inconsistent with max(%.1f x solo, floor %.1f) = %.6f",
			rep.BoundMs, rep.Config.Bound, rep.Config.FloorMs, want)
	}
	if rep.Contended.VictimQwaitP99 > rep.BoundMs {
		t.Fatalf("contended victim p99 %.3fms above bound %.3fms yet isolated=true",
			rep.Contended.VictimQwaitP99, rep.BoundMs)
	}
	// The contended scenario must have been a real fight: the greedy
	// tenant moved traffic and the quota rejected some of it.
	if rep.Contended.GreedyCmds == 0 || rep.Contended.GreedyBytes == 0 {
		t.Fatalf("greedy tenant served nothing: %+v", rep.Contended)
	}
	if rep.Contended.GreedyThrottled == 0 {
		t.Fatalf("quota never throttled the greedy tenant: %+v", rep.Contended)
	}
	// A paced victim under quota must never be throttled itself.
	if rep.Solo.VictimThrottled != 0 || rep.Contended.VictimThrottled != 0 {
		t.Fatalf("victim was throttled: solo=%d contended=%d",
			rep.Solo.VictimThrottled, rep.Contended.VictimThrottled)
	}
	if rep.Solo.VictimCmds == 0 || rep.Contended.VictimCmds == 0 {
		t.Fatalf("victim served nothing: solo=%d contended=%d",
			rep.Solo.VictimCmds, rep.Contended.VictimCmds)
	}
	// Legacy tenant-0 clients: verified data, zero tenant rejects.
	if !rep.Legacy.VerifyOK || rep.Legacy.Cmds == 0 || rep.Legacy.TenantRejects != 0 {
		t.Fatalf("legacy scenario: %+v", rep.Legacy)
	}
}
