// Command dlfsctl inspects and exercises DLFS interactively:
//
//	dlfsctl info -nodes 8 -n 100000        # mount in simulation, print directory stats
//	dlfsctl smoke -targets 3 -n 500        # live path: spin up local TCP targets,
//	                                       # mount, read an epoch, verify checksums
//	dlfsctl lookup -nodes 4 -n 100000 -name <sample>  # decode one directory entry
//	dlfsctl trace -nodes 2 -n 2000 -out trace.json    # record a pipeline trace
//	                                                  # (open in chrome://tracing)
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"time"

	"dlfs/internal/chaos"
	"dlfs/internal/core"
	"dlfs/internal/dataset"
	"dlfs/internal/live"
	"dlfs/internal/metrics"
	"dlfs/internal/sim"
	"dlfs/internal/workload"

	"dlfs/internal/blockdev"
	"dlfs/internal/nvmetcp"
	"dlfs/internal/trace"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd, args := os.Args[1], os.Args[2:]
	switch cmd {
	case "info":
		cmdInfo(args)
	case "smoke":
		cmdSmoke(args)
	case "lookup":
		cmdLookup(args)
	case "trace":
		cmdTrace(args)
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: dlfsctl {info|smoke|lookup|trace} [flags]")
	os.Exit(2)
}

func mountSim(nodes, n int, sizeDist string) ([]*core.FS, *dataset.Dataset) {
	var d dataset.SizeDist
	switch sizeDist {
	case "imagenet":
		d = dataset.ImageNetDist()
	case "imdb":
		d = dataset.IMDBDist()
	default:
		d = dataset.Fixed(128 << 10)
	}
	ds := dataset.Generate(dataset.Config{Label: "ctl", Seed: 1, NumSamples: n, Dist: d})
	e := sim.NewEngine()
	job := workload.NewJob(e, nodes, 20, false)
	fss, err := workload.MountDLFS(e, job, ds, core.Config{})
	if err != nil {
		fatal(err)
	}
	return fss, ds
}

func cmdInfo(args []string) {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	nodes := fs.Int("nodes", 4, "cluster nodes")
	n := fs.Int("n", 10000, "samples")
	dist := fs.String("dist", "imdb", "size distribution")
	fs.Parse(args) //nolint:errcheck

	fss, ds := mountSim(*nodes, *n, *dist)
	dir := fss[0].Directory()
	tab := metrics.NewTable("DLFS in-memory sample directory", "node", "entries", "serialized")
	for nid := 0; nid < dir.NumNodes(); nid++ {
		p := dir.Partition(uint16(nid))
		tab.AddRow(nid, p.Len(), metrics.HumanBytes(int64(p.Len()*16)))
	}
	fmt.Println(tab)
	fmt.Printf("samples: %d   dataset: %s   directory memory: %s per replica\n",
		ds.Len(), metrics.HumanBytes(ds.TotalBytes()), metrics.HumanBytes(dir.MemoryBytes()))
	fmt.Printf("replica fingerprint: %#x (identical on all %d nodes)\n", dir.Fingerprint(), *nodes)
}

func cmdLookup(args []string) {
	fs := flag.NewFlagSet("lookup", flag.ExitOnError)
	nodes := fs.Int("nodes", 4, "cluster nodes")
	n := fs.Int("n", 10000, "samples")
	idx := fs.Int("i", 0, "sample index to resolve")
	fs.Parse(args) //nolint:errcheck

	fss, ds := mountSim(*nodes, *n, "imdb")
	if *idx < 0 || *idx >= ds.Len() {
		fatal(fmt.Errorf("index %d out of range", *idx))
	}
	s := ds.Samples[*idx]
	e, _, depth, ok := fss[0].Directory().LookupName(s.Name, fmt.Sprintf("class%d", s.Class))
	if !ok {
		fatal(fmt.Errorf("sample %q not found", s.Name))
	}
	fmt.Printf("name:   %s\nkey:    %#x\nentry:  %s\ndepth:  %d tree nodes\n", s.Name, s.Key(), e, depth)
}

func cmdSmoke(args []string) {
	fs := flag.NewFlagSet("smoke", flag.ExitOnError)
	targets := fs.Int("targets", 3, "local TCP targets to start")
	n := fs.Int("n", 500, "samples")
	size := fs.Int("size", 4096, "sample size")
	qps := fs.Int("qps", 0, "queue pairs per target (0 takes the default)")
	nocoalesce := fs.Bool("no-coalesce", false, "disable request coalescing (one wire read per chunk)")
	nopool := fs.Bool("no-pool", false, "disable the sample buffer pool")
	chaosSeed := fs.Int64("chaos-seed", 0, "chaos fault schedule seed (0 disables the chaos proxies)")
	dropProb := fs.Float64("chaos-drop", 0.002, "per-segment connection-kill probability under chaos")
	delayProb := fs.Float64("chaos-delay-prob", 0.05, "per-segment delay probability under chaos")
	delay := fs.Duration("chaos-delay", time.Millisecond, "injected per-segment delay under chaos")
	dead := fs.Int("dead", -1, "blackhole this target index after mount (degraded-mode demo)")
	fs.Parse(args) //nolint:errcheck

	addrs := make([]string, *targets)
	proxies := make([]*chaos.Proxy, *targets)
	tgts := make([]*nvmetcp.Target, *targets)
	for i := range addrs {
		tgt := nvmetcp.NewTarget(blockdev.New(1<<30), 64)
		addr, err := tgt.Listen("127.0.0.1:0")
		if err != nil {
			fatal(err)
		}
		defer tgt.Close() //nolint:errcheck
		tgts[i] = tgt
		if *chaosSeed != 0 || *dead == i {
			cfg := chaos.Config{}
			if *chaosSeed != 0 {
				cfg = chaos.Config{
					Seed:      *chaosSeed + int64(i),
					DropProb:  *dropProb,
					DelayProb: *delayProb,
					Delay:     *delay,
				}
			}
			p := chaos.NewProxy(addr, cfg)
			paddr, err := p.Listen("127.0.0.1:0")
			if err != nil {
				fatal(err)
			}
			defer p.Close() //nolint:errcheck
			proxies[i] = p
			addr = paddr
		}
		addrs[i] = addr
		fmt.Printf("target %d: %s\n", i, addr)
	}
	ds := dataset.Generate(dataset.Config{Label: "smoke", Seed: 2, NumSamples: *n, Dist: dataset.Fixed(*size)})
	cfg := live.Config{QueuePairs: *qps, NoCoalesce: *nocoalesce, NoBufferPool: *nopool}
	if *dead >= 0 {
		// A blackholed target never answers; keep the deadlines and the
		// retry ladder short so the breaker trips quickly, and let the
		// epoch complete on the surviving targets.
		cfg.AllowDegraded = true
		cfg.RequestTimeout = 250 * time.Millisecond
		cfg.DialTimeout = 250 * time.Millisecond
		cfg.MaxRetries = 2
		cfg.BreakerThreshold = 2
	}
	start := time.Now()
	lfs, err := live.Mount(addrs, ds, cfg)
	if err != nil {
		fatal(err)
	}
	defer lfs.Close() //nolint:errcheck
	fmt.Printf("mounted %d samples (%s) in %.2fs\n", ds.Len(),
		metrics.HumanBytes(ds.TotalBytes()), time.Since(start).Seconds())
	if *dead >= 0 {
		if *dead >= *targets {
			fatal(fmt.Errorf("-dead %d out of range (%d targets)", *dead, *targets))
		}
		proxies[*dead].SetBlackhole(true)
		fmt.Printf("target %d: blackholed\n", *dead)
	}

	ep, err := lfs.Sequence(time.Now().UnixNano())
	if err != nil {
		fatal(err)
	}
	start = time.Now()
	items, err := ep.Drain()
	var derr *live.DegradedError
	if errors.As(err, &derr) {
		fmt.Printf("epoch degraded: %d samples skipped on targets %v\n", derr.Samples, derr.Nodes)
	} else if err != nil {
		fatal(err)
	}
	elapsed := time.Since(start)
	bad := 0
	for _, it := range items {
		if dataset.ChecksumBytes(it.Data) != ds.Checksum(it.Index) {
			bad++
		}
	}
	fmt.Printf("epoch: %d samples in %.3fs (%s), %d checksum failures\n",
		len(items), elapsed.Seconds(),
		metrics.HumanRate(float64(len(items))/elapsed.Seconds()), bad)
	st := lfs.Stats()
	fmt.Printf("pipeline (%d QPs/target, %d cache shards): %s\n", st.QueuePairs, st.CacheShards, st.Pipeline)
	fmt.Printf("resilience: %s\n", st.Resilience)
	for i, th := range st.Targets {
		fmt.Printf("target %d: breaker %s (consecutive fails %d)\n", i, th.State, th.ConsecFails)
	}
	// Server-side mirror of the client pipeline counters: opcode mix and
	// the RPQ/SCQ engine figures per target.
	for i, tgt := range tgts {
		reads, writes, vecReads, vecSegs := tgt.OpStats()
		_, malformed, aborted := tgt.ConnStats()
		line := fmt.Sprintf("reads=%d writes=%d vec-reads=%d", reads, writes, vecReads)
		if vecReads > 0 {
			line += fmt.Sprintf(" (%.1f segs/cmd)", float64(vecSegs)/float64(vecReads))
		}
		if malformed+aborted > 0 {
			line += fmt.Sprintf(" malformed=%d aborted=%d", malformed, aborted)
		}
		fmt.Printf("target %d server: %s\n", i, line)
		fmt.Printf("target %d engine: %s\n", i, tgt.ServerStats())
	}
	if bad > 0 {
		os.Exit(1)
	}
}

func cmdTrace(args []string) {
	fs := flag.NewFlagSet("trace", flag.ExitOnError)
	nodes := fs.Int("nodes", 2, "cluster nodes")
	n := fs.Int("n", 2000, "samples")
	size := fs.Int("size", 16<<10, "sample size")
	out := fs.String("out", "trace.json", "Chrome trace-event output file")
	fs.Parse(args) //nolint:errcheck

	rec := trace.New(0)
	e := sim.NewEngine()
	job := workload.NewJob(e, *nodes, 20, false)
	ds := dataset.Generate(dataset.Config{Label: "trace", Seed: 4, NumSamples: *n, Dist: dataset.Fixed(*size)})
	fss, err := workload.MountDLFS(e, job, ds, core.Config{Trace: rec})
	if err != nil {
		fatal(err)
	}
	res := workload.RunDLFSEpoch(e, fss, 1)
	sum := rec.Summarize()
	fmt.Printf("epoch: %d samples in %v virtual (%s)\n", res.Samples, res.Elapsed, metrics.HumanRate(res.PerSec()))
	fmt.Printf("trace: %d events; fetch latency p50=%v p99=%v max=%v; mean residency %v\n",
		rec.Len(), sum.FetchP50, sum.FetchP99, sum.FetchMax, sum.UnitsResident)
	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	defer f.Close() //nolint:errcheck
	if err := rec.WriteChromeJSON(f); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s (open in chrome://tracing or ui.perfetto.dev)\n", *out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dlfsctl:", err)
	os.Exit(1)
}
