// Command dlfsctl inspects and exercises DLFS interactively:
//
//	dlfsctl info -nodes 8 -n 100000        # mount in simulation, print directory stats
//	dlfsctl smoke -targets 3 -n 500        # live path: spin up local TCP targets,
//	                                       # mount, read an epoch, verify checksums
//	dlfsctl smoke -targets 2 -write        # checkpoint ingest: sharded save through
//	                                       # the write path, flush, verified read-back
//	dlfsctl cluster -ranks 3 -n 600        # multi-node live mount: in-process job of
//	                                       # N ranks over a TCP coordinator + targets
//	dlfsctl cluster -rank 1 -world 3 -coord host:4430 -targets a:4420,b:4420,c:4420
//	                                       # one rank of a real multi-process job
//	dlfsctl lookup -nodes 4 -n 100000 -name <sample>  # decode one directory entry
//	dlfsctl trace -nodes 2 -n 2000 -out trace.json    # record a pipeline trace
//	                                                  # (open in chrome://tracing)
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"
	"sync"
	"time"

	"dlfs/internal/chaos"
	"dlfs/internal/coord"
	"dlfs/internal/core"
	"dlfs/internal/dataset"
	"dlfs/internal/live"
	"dlfs/internal/metrics"
	"dlfs/internal/sim"
	"dlfs/internal/workload"

	"dlfs/internal/blockdev"
	"dlfs/internal/nvmetcp"
	"dlfs/internal/trace"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd, args := os.Args[1], os.Args[2:]
	switch cmd {
	case "info":
		cmdInfo(args)
	case "smoke":
		cmdSmoke(args)
	case "cluster":
		cmdCluster(args)
	case "lookup":
		cmdLookup(args)
	case "trace":
		cmdTrace(args)
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: dlfsctl {info|smoke|cluster|lookup|trace} [flags]")
	os.Exit(2)
}

func mountSim(nodes, n int, sizeDist string) ([]*core.FS, *dataset.Dataset) {
	var d dataset.SizeDist
	switch sizeDist {
	case "imagenet":
		d = dataset.ImageNetDist()
	case "imdb":
		d = dataset.IMDBDist()
	default:
		d = dataset.Fixed(128 << 10)
	}
	ds := dataset.Generate(dataset.Config{Label: "ctl", Seed: 1, NumSamples: n, Dist: d})
	e := sim.NewEngine()
	job := workload.NewJob(e, nodes, 20, false)
	fss, err := workload.MountDLFS(e, job, ds, core.Config{})
	if err != nil {
		fatal(err)
	}
	return fss, ds
}

func cmdInfo(args []string) {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	nodes := fs.Int("nodes", 4, "cluster nodes")
	n := fs.Int("n", 10000, "samples")
	dist := fs.String("dist", "imdb", "size distribution")
	fs.Parse(args) //nolint:errcheck

	fss, ds := mountSim(*nodes, *n, *dist)
	dir := fss[0].Directory()
	tab := metrics.NewTable("DLFS in-memory sample directory", "node", "entries", "serialized")
	for nid := 0; nid < dir.NumNodes(); nid++ {
		p := dir.Partition(uint16(nid))
		tab.AddRow(nid, p.Len(), metrics.HumanBytes(int64(p.Len()*16)))
	}
	fmt.Println(tab)
	fmt.Printf("samples: %d   dataset: %s   directory memory: %s per replica\n",
		ds.Len(), metrics.HumanBytes(ds.TotalBytes()), metrics.HumanBytes(dir.MemoryBytes()))
	fmt.Printf("replica fingerprint: %#x (identical on all %d nodes)\n", dir.Fingerprint(), *nodes)
}

func cmdLookup(args []string) {
	fs := flag.NewFlagSet("lookup", flag.ExitOnError)
	nodes := fs.Int("nodes", 4, "cluster nodes")
	n := fs.Int("n", 10000, "samples")
	idx := fs.Int("i", 0, "sample index to resolve")
	fs.Parse(args) //nolint:errcheck

	fss, ds := mountSim(*nodes, *n, "imdb")
	if *idx < 0 || *idx >= ds.Len() {
		fatal(fmt.Errorf("index %d out of range", *idx))
	}
	s := ds.Samples[*idx]
	e, _, depth, ok := fss[0].Directory().LookupName(s.Name, fmt.Sprintf("class%d", s.Class))
	if !ok {
		fatal(fmt.Errorf("sample %q not found", s.Name))
	}
	fmt.Printf("name:   %s\nkey:    %#x\nentry:  %s\ndepth:  %d tree nodes\n", s.Name, s.Key(), e, depth)
}

func cmdSmoke(args []string) {
	fs := flag.NewFlagSet("smoke", flag.ExitOnError)
	targets := fs.Int("targets", 3, "local TCP targets to start")
	n := fs.Int("n", 500, "samples")
	size := fs.Int("size", 4096, "sample size")
	qps := fs.Int("qps", 0, "queue pairs per target (0 takes the default)")
	nocoalesce := fs.Bool("no-coalesce", false, "disable request coalescing (one wire read per chunk)")
	nopool := fs.Bool("no-pool", false, "disable the sample buffer pool")
	serverAssembly := fs.Bool("server-assembly", false, "offload sample extraction to the targets (opReadSamples)")
	tenant := fs.Int("tenant", 0, "tenant id stamped on every command (0 = legacy tenant)")
	assemblyXform := fs.Int("assembly-transform", 0, "server-side transform ID (0 none, 1 crc32c-verify, 3 stride-subsample)")
	chaosSeed := fs.Int64("chaos-seed", 0, "chaos fault schedule seed (0 disables the chaos proxies)")
	dropProb := fs.Float64("chaos-drop", 0.002, "per-segment connection-kill probability under chaos")
	delayProb := fs.Float64("chaos-delay-prob", 0.05, "per-segment delay probability under chaos")
	delay := fs.Duration("chaos-delay", time.Millisecond, "injected per-segment delay under chaos")
	dead := fs.Int("dead", -1, "blackhole this target index after mount (degraded-mode demo)")
	write := fs.Bool("write", false, "exercise the checkpoint write path after the epoch: sharded save, durability barrier, verified read-back")
	ckptBytes := fs.Int("ckpt-bytes", 8<<20, "checkpoint state size for -write")
	fs.Parse(args) //nolint:errcheck

	addrs := make([]string, *targets)
	proxies := make([]*chaos.Proxy, *targets)
	tgts := make([]*nvmetcp.Target, *targets)
	for i := range addrs {
		tgt := nvmetcp.NewTargetConfig(blockdev.New(1<<30), nvmetcp.Config{
			Depth: 64, MaxTenants: *tenant + 1, StageHistograms: true,
		})
		addr, err := tgt.Listen("127.0.0.1:0")
		if err != nil {
			fatal(err)
		}
		defer tgt.Close() //nolint:errcheck
		tgts[i] = tgt
		if *chaosSeed != 0 || *dead == i {
			cfg := chaos.Config{}
			if *chaosSeed != 0 {
				cfg = chaos.Config{
					Seed:      *chaosSeed + int64(i),
					DropProb:  *dropProb,
					DelayProb: *delayProb,
					Delay:     *delay,
				}
			}
			p := chaos.NewProxy(addr, cfg)
			paddr, err := p.Listen("127.0.0.1:0")
			if err != nil {
				fatal(err)
			}
			defer p.Close() //nolint:errcheck
			proxies[i] = p
			addr = paddr
		}
		addrs[i] = addr
		fmt.Printf("target %d: %s\n", i, addr)
	}
	ds := dataset.Generate(dataset.Config{Label: "smoke", Seed: 2, NumSamples: *n, Dist: dataset.Fixed(*size)})
	cfg := live.Config{
		QueuePairs: *qps, NoCoalesce: *nocoalesce, NoBufferPool: *nopool, StageHistograms: true,
		ServerAssembly: *serverAssembly, AssemblyTransform: *assemblyXform, Tenant: *tenant,
	}
	if *dead >= 0 {
		// A blackholed target never answers; keep the deadlines and the
		// retry ladder short so the breaker trips quickly, and let the
		// epoch complete on the surviving targets.
		cfg.AllowDegraded = true
		cfg.RequestTimeout = 250 * time.Millisecond
		cfg.DialTimeout = 250 * time.Millisecond
		cfg.MaxRetries = 2
		cfg.BreakerThreshold = 2
	}
	start := time.Now()
	lfs, err := live.Mount(addrs, ds, cfg)
	if err != nil {
		fatal(err)
	}
	defer lfs.Close() //nolint:errcheck
	fmt.Printf("mounted %d samples (%s) in %.2fs\n", ds.Len(),
		metrics.HumanBytes(ds.TotalBytes()), time.Since(start).Seconds())
	if *dead >= 0 {
		if *dead >= *targets {
			fatal(fmt.Errorf("-dead %d out of range (%d targets)", *dead, *targets))
		}
		proxies[*dead].SetBlackhole(true)
		fmt.Printf("target %d: blackholed\n", *dead)
	}

	ep, err := lfs.Sequence(time.Now().UnixNano())
	if err != nil {
		fatal(err)
	}
	start = time.Now()
	items, err := ep.Drain()
	var derr *live.DegradedError
	if errors.As(err, &derr) {
		fmt.Printf("epoch degraded: %d samples skipped on targets %v\n", derr.Samples, derr.Nodes)
	} else if err != nil {
		fatal(err)
	}
	elapsed := time.Since(start)
	bad := 0
	for _, it := range items {
		if dataset.ChecksumBytes(it.Data) != ds.Checksum(it.Index) {
			bad++
		}
	}
	fmt.Printf("epoch: %d samples in %.3fs (%s), %d checksum failures\n",
		len(items), elapsed.Seconds(),
		metrics.HumanRate(float64(len(items))/elapsed.Seconds()), bad)
	if *write {
		ck, err := lfs.Checkpointer(live.CheckpointConfig{})
		if err != nil {
			fatal(err)
		}
		state := make([]byte, *ckptBytes)
		for i := range state {
			state[i] = byte(i*2654435761 + 17)
		}
		start = time.Now()
		if err := ck.Save(1, state); err != nil {
			fatal(fmt.Errorf("checkpoint save: %w", err))
		}
		saveSecs := time.Since(start).Seconds()
		got, step, err := ck.Load()
		if err != nil {
			fatal(fmt.Errorf("checkpoint read-back: %w", err))
		}
		verified := step == 1 && string(got) == string(state)
		lfs.Recycle(got)
		if !verified {
			fmt.Fprintln(os.Stderr, "dlfsctl: checkpoint read-back diverged from saved state")
			os.Exit(1)
		}
		fmt.Printf("checkpoint: %s saved + flushed in %.3fs (%s/s), read-back verified\n",
			metrics.HumanBytes(int64(len(state))), saveSecs,
			metrics.HumanBytes(int64(float64(len(state))/saveSecs)))
	}
	st := lfs.Stats()
	fmt.Printf("pipeline (%d QPs/target, %d cache shards): %s\n", st.QueuePairs, st.CacheShards, st.Pipeline)
	if hs := st.Pipeline.Stages; hs != nil {
		for _, sh := range []struct {
			name string
			h    metrics.HistSnapshot
		}{{"prep", hs.Prep}, {"post", hs.Post}, {"poll", hs.Poll}, {"copy", hs.Copy}} {
			fmt.Printf("stage %-5s %s\n", sh.name+":", sh.h)
		}
	}
	fmt.Printf("resilience: %s\n", st.Resilience)
	for i, th := range st.Targets {
		fmt.Printf("target %d: breaker %s (consecutive fails %d)\n", i, th.State, th.ConsecFails)
	}
	// Server-side mirror of the client pipeline counters: opcode mix and
	// the RPQ/SCQ engine figures per target.
	for i, tgt := range tgts {
		reads, writes, vecReads, vecSegs := tgt.OpStats()
		_, malformed, aborted := tgt.ConnStats()
		line := fmt.Sprintf("reads=%d writes=%d vec-reads=%d", reads, writes, vecReads)
		if vecReads > 0 {
			line += fmt.Sprintf(" (%.1f segs/cmd)", float64(vecSegs)/float64(vecReads))
		}
		if malformed+aborted > 0 {
			line += fmt.Sprintf(" malformed=%d aborted=%d", malformed, aborted)
		}
		fmt.Printf("target %d server: %s\n", i, line)
		ss := tgt.ServerStats()
		fmt.Printf("target %d engine: %s\n", i, ss)
		if ss.Stages != nil {
			fmt.Printf("target %d qwait:   %s\n", i, ss.Stages.QueueWait)
			fmt.Printf("target %d service: %s\n", i, ss.Stages.Service)
			fmt.Printf("target %d flush:   %s\n", i, ss.Stages.Flush)
		}
		// Per-tenant scheduler accounting: the queue-wait quantiles are
		// the isolation signal — each tenant waits only behind its own
		// backlog plus the DRR interleave.
		for _, tst := range tgt.TenantStats() {
			tline := fmt.Sprintf("target %d tenant %d: cmds=%d bytes=%s throttled=%d",
				i, tst.ID, tst.Cmds, metrics.HumanBytes(tst.Bytes), tst.Throttled)
			if tst.Server.Stages != nil {
				tline += fmt.Sprintf(" qwait p50=%s p99=%s",
					tst.Server.Stages.QueueWait.P50(), tst.Server.Stages.QueueWait.P99())
			}
			fmt.Println(tline)
		}
	}
	if bad > 0 {
		os.Exit(1)
	}
}

// cmdCluster exercises the multi-node live mount. With -ranks N it runs
// a whole job in-process: N TCP targets, a TCP coordinator, and N ranks
// mounting concurrently, then one sliced epoch whose union is verified
// exactly-once by checksum; add -replicas 3 to put a Raft-backed
// coordinator replica set under the job and print the elected leader,
// term, and placement epoch in the summary. With
// -rank/-world/-coord/-targets it runs a single rank of a real
// multi-process job (start targets with dlfsd, host the coordinator with
// dlfsd -coord or -host-coord here on rank 0; -coord-peers joins a
// dlfsd -coord-peers replica set instead).
func cmdCluster(args []string) {
	fs := flag.NewFlagSet("cluster", flag.ExitOnError)
	ranks := fs.Int("ranks", 0, "in-process mode: run this many ranks locally (0 = distributed mode)")
	replicas := fs.Int("replicas", 0, "host this many Raft coordinator replicas instead of one classic coordinator (in-process mode)")
	rank := fs.Int("rank", 0, "distributed mode: this process's rank")
	world := fs.Int("world", 0, "distributed mode: job size")
	coordAddr := fs.String("coord", "", "distributed mode: coordinator address")
	coordPeers := fs.String("coord-peers", "", "distributed mode: comma-separated coordinator replica addresses (replaces -coord)")
	hostCoord := fs.Bool("host-coord", false, "distributed mode: host the coordinator at -coord (usually on rank 0)")
	targetList := fs.String("targets", "", "distributed mode: comma-separated target addresses, one per rank")
	n := fs.Int("n", 600, "samples")
	size := fs.Int("size", 4096, "sample size")
	seed := fs.Int64("seed", 1, "epoch sequence seed (must match on every rank)")
	peerCache := fs.Bool("peer-cache", false, "host the cooperative peer sample cache on every rank and run a full ReadSample pass to exercise it")
	fs.Parse(args) //nolint:errcheck

	cfg := live.Config{StageHistograms: true, PeerCache: *peerCache}
	ds := dataset.Generate(dataset.Config{Label: "cluster", Seed: 3, NumSamples: *n, Dist: dataset.Fixed(*size)})
	if *ranks > 0 {
		runClusterInProcess(*ranks, *replicas, ds, *seed, cfg)
		return
	}
	if (*coordAddr == "" && *coordPeers == "") || *world <= 0 || *targetList == "" {
		fatal(errors.New("cluster: distributed mode needs -rank, -world, -coord (or -coord-peers) and -targets (or use -ranks for in-process)"))
	}
	addrs := strings.Split(*targetList, ",")
	if *hostCoord {
		srv := coord.NewServer(*world, coord.ServerOptions{})
		if _, err := srv.Listen(*coordAddr); err != nil {
			fatal(err)
		}
		defer srv.Close() //nolint:errcheck
	}
	mount := func() (*live.FS, error) {
		if *coordPeers != "" {
			peers := strings.Split(*coordPeers, ",")
			return live.MountClusterPeers(peers, *rank, *world, addrs, ds, cfg)
		}
		return live.MountCluster(*coordAddr, *rank, *world, addrs, ds, cfg)
	}
	if err := runClusterRank(mount, *rank, *world, ds, *seed, *peerCache); err != nil {
		fatal(err)
	}
}

// readSamplePass reads the whole dataset through ReadSample (checksummed)
// — the path the cooperative peer cache accelerates.
func readSamplePass(lfs *live.FS, ds *dataset.Dataset) error {
	for i := 0; i < ds.Len(); i++ {
		buf, err := lfs.ReadSample(i)
		if err != nil {
			return fmt.Errorf("sample %d: %w", i, err)
		}
		ok := dataset.ChecksumBytes(buf) == ds.Checksum(i)
		lfs.Recycle(buf)
		if !ok {
			return fmt.Errorf("sample %d: checksum mismatch", i)
		}
	}
	return nil
}

// printPeerBreakdown prints where one rank's ReadSample bytes came from:
// its own cache, the peer fabric, or the origin targets.
func printPeerBreakdown(prefix string, pl metrics.PipelineSnapshot) {
	fmt.Printf("%s reads: cache hits %d, peer %d (%s), origin %d (%s), fallbacks %d; served peers %d\n",
		prefix, pl.CacheHits, pl.PeerHits, metrics.HumanBytes(pl.PeerBytes),
		pl.OriginReads, metrics.HumanBytes(pl.OriginBytes), pl.PeerFallbacks, pl.PeerServed)
}

// runClusterRank mounts one rank, consumes its epoch slice, verifies
// checksums, and prints the rank's mount and pipeline stats. Against a
// replicated coordinator it also prints the control-plane view.
func runClusterRank(mount func() (*live.FS, error), rank, world int, ds *dataset.Dataset, seed int64, peerCache bool) error {
	start := time.Now()
	lfs, err := mount()
	if err != nil {
		return err
	}
	defer lfs.Close() //nolint:errcheck
	ms := lfs.MountStats()
	fmt.Printf("rank %d/%d: mounted, directory %#x, %s\n",
		rank, world, lfs.Directory().Fingerprint(), ms)
	printMountPhases(fmt.Sprintf("rank %d", rank), ms)
	ep, err := lfs.ClusterSequence(seed)
	if err != nil {
		return err
	}
	items, err := ep.Drain()
	if err != nil {
		return err
	}
	bad := 0
	for _, it := range items {
		if dataset.ChecksumBytes(it.Data) != ds.Checksum(it.Index) {
			bad++
		}
	}
	fmt.Printf("rank %d/%d: epoch slice %d/%d samples in %.3fs, %d checksum failures\n",
		rank, world, len(items), ds.Len(), time.Since(start).Seconds(), bad)
	if peerCache {
		fmt.Printf("rank %d/%d: peer cache at %s, full ReadSample pass...\n", rank, world, lfs.PeerAddr())
		if err := readSamplePass(lfs, ds); err != nil {
			return err
		}
		printPeerBreakdown(fmt.Sprintf("rank %d/%d", rank, world), lfs.Stats().Pipeline)
	}
	if cc, ok := lfs.Coordinator().(*coord.ClusterClient); ok {
		if st, err := cc.Status(); err == nil {
			fmt.Printf("rank %d/%d: control plane: leader %s, term %d, placement epoch %d, members %v\n",
				rank, world, st.Leader, st.Term, st.Epoch, st.Members)
		}
	}
	if bad > 0 {
		return fmt.Errorf("rank %d: %d checksum failures", rank, bad)
	}
	return nil
}

// runClusterInProcess stands up targets + coordinator (a Raft replica
// set when replicas > 0) and runs every rank as a goroutine — the
// single-machine smoke of the multi-node path. With cfg.PeerCache on,
// every rank follows the epoch with a full ReadSample pass so the
// cooperative cache traffic shows up in the per-rank breakdown.
func runClusterInProcess(world, replicas int, ds *dataset.Dataset, seed int64, cfg live.Config) {
	addrs := make([]string, world)
	for i := range addrs {
		tgt := nvmetcp.NewTarget(blockdev.New(1<<30), 64)
		addr, err := tgt.Listen("127.0.0.1:0")
		if err != nil {
			fatal(err)
		}
		defer tgt.Close() //nolint:errcheck
		addrs[i] = addr
		fmt.Printf("target %d: %s\n", i, addr)
	}
	var caddr string
	var peers []string
	if replicas > 0 {
		srvs, set, err := coord.StartReplicaSet(replicas, world, coord.ReplicatedOptions{})
		if err != nil {
			fatal(err)
		}
		defer func() {
			for _, s := range srvs {
				s.Close() //nolint:errcheck
			}
		}()
		peers = set
		fmt.Printf("coordinator replicas: %v (world %d)\n", peers, world)
	} else {
		srv := coord.NewServer(world, coord.ServerOptions{})
		var err error
		caddr, err = srv.Listen("127.0.0.1:0")
		if err != nil {
			fatal(err)
		}
		defer srv.Close() //nolint:errcheck
		fmt.Printf("coordinator: %s (world %d)\n", caddr, world)
	}

	type rankOut struct {
		items []live.Item
		ms    metrics.MountSnapshot
		pl    metrics.PipelineSnapshot
		fp    uint64
		err   error
	}
	outs := make([]rankOut, world)
	var wg sync.WaitGroup
	// With the peer cache on, a rank that finishes early must keep its
	// peer service up until every rank is done reading.
	var readers sync.WaitGroup
	readers.Add(world)
	start := time.Now()
	for r := 0; r < world; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			var lfs *live.FS
			var err error
			if peers != nil {
				lfs, err = live.MountClusterPeers(peers, r, world, addrs, ds, cfg)
			} else {
				lfs, err = live.MountCluster(caddr, r, world, addrs, ds, cfg)
			}
			if err != nil {
				outs[r].err = err
				readers.Done()
				return
			}
			defer lfs.Close()    //nolint:errcheck
			defer readers.Wait() // hold the peer service open for the others
			defer readers.Done()
			outs[r].fp = lfs.Directory().Fingerprint()
			outs[r].ms = lfs.MountStats()
			ep, err := lfs.ClusterSequence(seed)
			if err != nil {
				outs[r].err = err
				return
			}
			outs[r].items, outs[r].err = ep.Drain()
			if outs[r].err == nil && cfg.PeerCache {
				outs[r].err = readSamplePass(lfs, ds)
			}
			outs[r].pl = lfs.Stats().Pipeline
		}(r)
	}
	wg.Wait()
	elapsed := time.Since(start)

	union := make(map[int]int)
	bad := 0
	for r := range outs {
		if outs[r].err != nil {
			fatal(fmt.Errorf("rank %d: %w", r, outs[r].err))
		}
		if outs[r].fp != outs[0].fp {
			fatal(fmt.Errorf("rank %d fingerprint %#x != rank 0 %#x", r, outs[r].fp, outs[0].fp))
		}
		for _, it := range outs[r].items {
			union[it.Index]++
			if dataset.ChecksumBytes(it.Data) != ds.Checksum(it.Index) {
				bad++
			}
		}
		fmt.Printf("rank %d: %d samples, mount: %s\n", r, len(outs[r].items), outs[r].ms)
		if cfg.PeerCache {
			printPeerBreakdown(fmt.Sprintf("rank %d", r), outs[r].pl)
		}
	}
	printMountPhases("rank 0", outs[0].ms)
	dups := 0
	for _, c := range union {
		if c != 1 {
			dups++
		}
	}
	fmt.Printf("cluster: %d ranks, directory %#x on all, %d/%d samples exactly-once in %.3fs (%s), %d dups, %d checksum failures\n",
		world, outs[0].fp, len(union), ds.Len(), elapsed.Seconds(),
		metrics.HumanRate(float64(ds.Len())/elapsed.Seconds()), dups, bad)
	if peers != nil {
		printed := false
		for _, p := range peers {
			if st, err := coord.FetchStatus(p, 2*time.Second); err == nil {
				fmt.Printf("control plane: leader %s, term %d, placement epoch %d, members %v\n",
					st.Leader, st.Term, st.Epoch, st.Members)
				printed = true
				break
			}
		}
		if !printed {
			fatal(errors.New("cluster: no coordinator replica answered a status probe"))
		}
	}
	if bad > 0 || dups > 0 || len(union) != ds.Len() {
		os.Exit(1)
	}
}

// printMountPhases prints the per-phase mount latency quantiles when the
// mount ran with stage histograms enabled.
func printMountPhases(prefix string, ms metrics.MountSnapshot) {
	if ms.Phases == nil {
		return
	}
	for _, ph := range []struct {
		name string
		h    metrics.HistSnapshot
	}{
		{"index", ms.Phases.Index}, {"serialize", ms.Phases.Serialize},
		{"allgather", ms.Phases.Allgather}, {"assemble", ms.Phases.Assemble},
		{"barrier", ms.Phases.Barrier},
	} {
		fmt.Printf("%s phase %-10s %s\n", prefix, ph.name+":", ph.h)
	}
}

func cmdTrace(args []string) {
	fs := flag.NewFlagSet("trace", flag.ExitOnError)
	nodes := fs.Int("nodes", 2, "cluster nodes")
	n := fs.Int("n", 2000, "samples")
	size := fs.Int("size", 16<<10, "sample size")
	out := fs.String("out", "trace.json", "Chrome trace-event output file")
	fs.Parse(args) //nolint:errcheck

	rec := trace.New(0)
	e := sim.NewEngine()
	job := workload.NewJob(e, *nodes, 20, false)
	ds := dataset.Generate(dataset.Config{Label: "trace", Seed: 4, NumSamples: *n, Dist: dataset.Fixed(*size)})
	fss, err := workload.MountDLFS(e, job, ds, core.Config{Trace: rec})
	if err != nil {
		fatal(err)
	}
	res := workload.RunDLFSEpoch(e, fss, 1)
	sum := rec.Summarize()
	fmt.Printf("epoch: %d samples in %v virtual (%s)\n", res.Samples, res.Elapsed, metrics.HumanRate(res.PerSec()))
	fmt.Printf("trace: %d events; fetch latency p50=%v p99=%v max=%v; mean residency %v\n",
		rec.Len(), sum.FetchP50, sum.FetchP99, sum.FetchMax, sum.UnitsResident)
	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	defer f.Close() //nolint:errcheck
	if err := rec.WriteChromeJSON(f); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s (open in chrome://tracing or ui.perfetto.dev)\n", *out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dlfsctl:", err)
	os.Exit(1)
}
