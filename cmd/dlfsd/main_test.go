package main

import "testing"

func TestParseBytes(t *testing.T) {
	cases := map[string]int64{
		"512":     512,
		"4KiB":    4 << 10,
		"4kb":     4 << 10,
		"1MiB":    1 << 20,
		"2GiB":    2 << 30,
		"3g":      3 << 30,
		" 8 MiB ": 8 << 20,
	}
	for in, want := range cases {
		got, err := parseBytes(in)
		if err != nil || got != want {
			t.Errorf("parseBytes(%q) = %d, %v; want %d", in, got, err, want)
		}
	}
	for _, bad := range []string{"", "abc", "-1", "0", "12Q"} {
		if _, err := parseBytes(bad); err == nil {
			t.Errorf("parseBytes(%q) accepted", bad)
		}
	}
}
