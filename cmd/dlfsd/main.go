// Command dlfsd runs a standalone NVMe-oF-style TCP block target — the
// storage-node daemon of the live disaggregation path. Start one per
// storage node, then point clients (dlfsctl smoke with explicit targets,
// or code using dlfs.MountLive) at the printed addresses.
//
//	dlfsd -listen 127.0.0.1:4420 -capacity 4GiB -depth 64 -workers 4 -queue 256
//
// Multiple jobs can share one node under tenant isolation: each client
// mounts with a tenant id, the target schedules tenants with deficit
// round robin, and optional per-tenant quotas throttle a greedy job
// instead of letting it crowd out the others:
//
//	dlfsd -listen 127.0.0.1:4420 -max-tenants 4 \
//	      -tenant-bps 268435456 -tenant-iops 20000
//
// For a multi-node job one storage node additionally hosts the mount
// coordinator (the barrier/allgather control plane of live.MountCluster):
//
//	dlfsd -listen 127.0.0.1:4420 -coord 127.0.0.1:4430 -coord-world 3
//
// For a fault-tolerant control plane run three such nodes, each hosting
// one replica of a Raft-backed coordinator set; any replica can be
// dialed, and the set survives the leader dying mid-job:
//
//	dlfsd -listen 127.0.0.1:4420 -coord 127.0.0.1:4430 \
//	      -coord-peers 127.0.0.1:4430,127.0.0.1:4431,127.0.0.1:4432 -coord-world 3
//
// Ranks that mount with live.Config.PeerCache additionally exchange
// their cooperative-cache (DLPC) service addresses through the hosted
// coordinator — one extra allgather on the mount path, no dlfsd flags
// needed; the daemon only ever sees the once-per-cluster origin reads.
//
// The daemon serves until interrupted, printing a stats line every
// -stats interval. The line reports the opcode mix, connection health
// and the RPQ/SCQ engine's per-stage figures, e.g.:
//
//	dlfsd: served 16896 commands, 528 MiB, reads=512 writes=384 vec-reads=16000 (6.1 segs/cmd), conns accepted=6 malformed=0 aborted=0
//	dlfsd: engine: qwait=1.2s service=840ms flush=2.1s writevs=2112 batch=8.0 cmds/flush zero-copy=526 MiB staged=1.5 MiB (99% zero-copy) restaged=0
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"dlfs/internal/blockdev"
	"dlfs/internal/coord"
	"dlfs/internal/metrics"
	"dlfs/internal/nvmetcp"
	"dlfs/internal/obs"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:4420", "address to serve on")
	capacity := flag.String("capacity", "1GiB", "exported capacity (supports KiB/MiB/GiB suffixes)")
	depth := flag.Int("depth", 64, "per-connection queue depth")
	workers := flag.Int("workers", 0, "RPQ worker pool size (0 takes the default)")
	queue := flag.Int("queue", 0, "request-posting queue depth (0 takes the default)")
	noZeroCopy := flag.Bool("no-zero-copy", false, "stage read payloads instead of serving store views")
	maxTenants := flag.Int("max-tenants", 0, "tenant ids accepted, 0..n-1 (0 takes the default)")
	tenantQueue := flag.Int("tenant-queue", 0, "per-tenant scheduler queue depth (0 takes the default, <0 unbounded)")
	tenantBPS := flag.Int64("tenant-bps", 0, "per-tenant payload byte quota per second (<=0 disables)")
	tenantIOPS := flag.Int64("tenant-iops", 0, "per-tenant command quota per second (<=0 disables)")
	stats := flag.Duration("stats", 10*time.Second, "stats print interval (0 disables)")
	coordAddr := flag.String("coord", "", "also host the multi-node mount coordinator on this address")
	coordWorld := flag.Int("coord-world", 0, "job size the coordinator waits for (required with -coord)")
	coordPeers := flag.String("coord-peers", "", "comma-separated replica addresses of a replicated coordinator set; -coord names this replica's own entry")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics, /healthz and /trace.json on this address (enables stage histograms)")
	flag.Parse()

	capBytes, err := parseBytes(*capacity)
	if err != nil {
		fatal(err)
	}
	var coordSrv *coord.Server
	var replSrv *coord.ReplicatedServer
	var raftMetrics *metrics.Consensus
	if *coordPeers != "" && *coordAddr == "" {
		fatal(fmt.Errorf("dlfsd: -coord-peers needs -coord naming this replica's own address"))
	}
	if *coordAddr != "" {
		if *coordWorld <= 0 {
			fatal(fmt.Errorf("dlfsd: -coord %s needs -coord-world > 0", *coordAddr))
		}
		if *coordPeers != "" {
			// Replicated control plane: this process is one replica of a
			// Raft set; clients discover the leader through any of them.
			peers := strings.Split(*coordPeers, ",")
			for i := range peers {
				peers[i] = strings.TrimSpace(peers[i])
			}
			self := false
			for _, p := range peers {
				if p == *coordAddr {
					self = true
					break
				}
			}
			if !self {
				fatal(fmt.Errorf("dlfsd: -coord %s is not in -coord-peers %s", *coordAddr, *coordPeers))
			}
			raftMetrics = &metrics.Consensus{}
			var err error
			replSrv, err = coord.ListenReplicated(*coordWorld, *coordAddr, peers, coord.ReplicatedOptions{
				Metrics: raftMetrics,
			})
			if err != nil {
				fatal(err)
			}
			defer replSrv.Close() //nolint:errcheck
			fmt.Printf("dlfsd: coordinator replica %s of set %v for a %d-rank job\n",
				*coordAddr, peers, *coordWorld)
		} else {
			coordSrv = coord.NewServer(*coordWorld, coord.ServerOptions{})
			caddr, err := coordSrv.Listen(*coordAddr)
			if err != nil {
				fatal(err)
			}
			defer coordSrv.Close() //nolint:errcheck
			fmt.Printf("dlfsd: coordinating a %d-rank job on %s\n", *coordWorld, caddr)
		}
	}
	cfg := nvmetcp.Config{
		Depth: *depth, Workers: *workers, QueueDepth: *queue, NoZeroCopy: *noZeroCopy,
		MaxTenants: *maxTenants, TenantQueueDepth: *tenantQueue,
		TenantBytesPerSec: *tenantBPS, TenantIOPS: *tenantIOPS,
		StageHistograms: *metricsAddr != "",
	}
	tgt := nvmetcp.NewTargetConfig(blockdev.New(capBytes), cfg)
	addr, err := tgt.Listen(*listen)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("dlfsd: serving %s (%d bytes) on %s, queue depth %d\n",
		metrics.HumanBytes(capBytes), capBytes, addr, *depth)
	if *metricsAddr != "" {
		h := obs.NewHandler()
		h.Register(obs.TargetCollector(addr, tgt))
		if raftMetrics != nil {
			h.Register(obs.ConsensusCollector(*coordAddr, raftMetrics.Snapshot))
		}
		msrv, err := obs.Serve(*metricsAddr, h)
		if err != nil {
			fatal(err)
		}
		defer msrv.Close() //nolint:errcheck
		fmt.Printf("dlfsd: metrics on http://%s/metrics\n", msrv.Addr)
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)

	var ticker *time.Ticker
	var tick <-chan time.Time
	if *stats > 0 {
		ticker = time.NewTicker(*stats)
		tick = ticker.C
		defer ticker.Stop()
	}
	for {
		select {
		case <-tick:
			fmt.Printf("dlfsd: %s\n", statsLine(tgt))
		case sig := <-stop:
			fmt.Printf("dlfsd: %v, shutting down\n", sig)
			if coordSrv != nil {
				if err := coordSrv.Close(); err != nil {
					fatal(err)
				}
			}
			if replSrv != nil {
				if err := replSrv.Close(); err != nil {
					fatal(err)
				}
			}
			if err := tgt.Close(); err != nil {
				fatal(err)
			}
			fmt.Printf("dlfsd: final: %s\n", statsLine(tgt))
			return
		}
	}
}

// statsLine renders the serving counters — opcode mix with the
// vectored-read coalescing factor, connection health, and the RPQ/SCQ
// engine's per-stage figures.
func statsLine(tgt *nvmetcp.Target) string {
	cmds, bytes := tgt.Served()
	accepted, malformed, aborted := tgt.ConnStats()
	reads, writes, vecReads, vecSegs := tgt.OpStats()
	line := fmt.Sprintf("served %d commands, %s, reads=%d writes=%d vec-reads=%d",
		cmds, metrics.HumanBytes(bytes), reads, writes, vecReads)
	if vecReads > 0 {
		line += fmt.Sprintf(" (%.1f segs/cmd)", float64(vecSegs)/float64(vecReads))
	}
	ss := tgt.ServerStats()
	if ss.VecWriteCmds > 0 {
		line += fmt.Sprintf(" vec-writes=%d (%.1f segs/cmd)",
			ss.VecWriteCmds, float64(ss.VecWriteSegs)/float64(ss.VecWriteCmds))
	}
	if ss.FlushCmds > 0 {
		line += fmt.Sprintf(" flushes=%d", ss.FlushCmds)
	}
	line += fmt.Sprintf(", conns accepted=%d malformed=%d aborted=%d", accepted, malformed, aborted)
	line += fmt.Sprintf("\ndlfsd: engine: %s", ss)
	tstats := tgt.TenantStats()
	// Tenant 0 alone with no throttles is the single-tenant steady
	// state — not worth a line per tick.
	if !(len(tstats) == 1 && tstats[0].ID == 0 && tstats[0].Throttled == 0) {
		for _, ts := range tstats {
			line += fmt.Sprintf("\ndlfsd: tenant %d: cmds=%d bytes=%s throttled=%d queued=%d qwait=%s",
				ts.ID, ts.Cmds, metrics.HumanBytes(ts.Bytes), ts.Throttled, ts.Queued,
				time.Duration(ts.Server.QueueWaitNanos))
		}
	}
	if rej := tgt.TenantRejects(); rej > 0 {
		line += fmt.Sprintf("\ndlfsd: tenant rejects=%d (malformed or unprovisioned ids)", rej)
	}
	return line
}

// parseBytes parses "512", "4KiB", "1MiB", "2GiB" (also accepts KB/MB/GB
// as binary for convenience).
func parseBytes(s string) (int64, error) {
	s = strings.TrimSpace(s)
	mult := int64(1)
	lower := strings.ToLower(s)
	for _, suf := range []struct {
		tag string
		m   int64
	}{
		{"gib", 1 << 30}, {"gb", 1 << 30}, {"g", 1 << 30},
		{"mib", 1 << 20}, {"mb", 1 << 20}, {"m", 1 << 20},
		{"kib", 1 << 10}, {"kb", 1 << 10}, {"k", 1 << 10},
	} {
		if strings.HasSuffix(lower, suf.tag) {
			mult = suf.m
			s = s[:len(s)-len(suf.tag)]
			break
		}
	}
	v, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
	if err != nil || v <= 0 {
		return 0, fmt.Errorf("dlfsd: bad size %q", s)
	}
	return v * mult, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
