// Command dlfsgen generates synthetic dataset artifacts: a manifest of
// sample names/sizes/classes (JSON), optional TFRecord-style batched
// container files, and the size-CDF table behind Fig 1.
//
// Usage:
//
//	dlfsgen -dist imagenet -n 10000 -out manifest.json
//	dlfsgen -dist imdb -n 50000 -cdf
//	dlfsgen -dist fixed -size 4096 -n 1000 -container parts/ -per 250
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"dlfs/internal/dataset"
	"dlfs/internal/metrics"
)

func main() {
	dist := flag.String("dist", "imagenet", "size distribution: imagenet, imdb, fixed")
	size := flag.Int("size", 128<<10, "sample size for -dist fixed")
	n := flag.Int("n", 10000, "number of samples")
	seed := flag.Int64("seed", 1, "generator seed")
	label := flag.String("label", "dataset", "dataset label (prefixes sample names)")
	classes := flag.Int("classes", 10, "number of classes")
	out := flag.String("out", "", "write the manifest as JSON to this file ('-' for stdout)")
	cdf := flag.Bool("cdf", false, "print the size CDF (Fig 1 style)")
	container := flag.String("container", "", "write TFRecord-style container files into this directory")
	per := flag.Int("per", 1000, "samples per container file")
	flag.Parse()

	var d dataset.SizeDist
	switch *dist {
	case "imagenet":
		d = dataset.ImageNetDist()
	case "imdb":
		d = dataset.IMDBDist()
	case "fixed":
		d = dataset.Fixed(*size)
	default:
		fmt.Fprintf(os.Stderr, "dlfsgen: unknown distribution %q\n", *dist)
		os.Exit(2)
	}

	ds := dataset.Generate(dataset.Config{
		Label: *label, Seed: *seed, NumSamples: *n, NumClasses: *classes, Dist: d,
	})
	fmt.Printf("generated %d samples, %s total, mean %s (dist=%s seed=%d)\n",
		ds.Len(), metrics.HumanBytes(ds.TotalBytes()),
		metrics.HumanBytes(int64(ds.MeanSize())), d.Name(), *seed)

	if *cdf {
		tab := metrics.NewTable("Sample size CDF", "percentile", "size")
		for _, pt := range ds.SizeCDF([]float64{10, 25, 50, 75, 90, 95, 99}) {
			tab.AddRow(fmt.Sprintf("p%.0f", pt.Percentile), metrics.HumanBytes(int64(pt.SizeBytes)))
		}
		fmt.Println(tab)
	}

	if *out != "" {
		blob, err := json.MarshalIndent(struct {
			Label   string
			Seed    int64
			Samples []dataset.Sample
		}{ds.Label, ds.Seed, ds.Samples}, "", "  ")
		if err != nil {
			fatal(err)
		}
		if *out == "-" {
			os.Stdout.Write(blob) //nolint:errcheck
			fmt.Println()
		} else if err := os.WriteFile(*out, blob, 0o644); err != nil {
			fatal(err)
		} else {
			fmt.Printf("manifest: %s (%d bytes)\n", *out, len(blob))
		}
	}

	if *container != "" {
		if err := os.MkdirAll(*container, 0o755); err != nil {
			fatal(err)
		}
		part := 0
		for lo := 0; lo < ds.Len(); lo += *per {
			hi := lo + *per
			if hi > ds.Len() {
				hi = ds.Len()
			}
			indices := make([]int, 0, hi-lo)
			for i := lo; i < hi; i++ {
				indices = append(indices, i)
			}
			c := dataset.BuildContainer(ds, fmt.Sprintf("part-%05d", part), indices)
			path := filepath.Join(*container, c.Name+".rec")
			if err := os.WriteFile(path, c.Data, 0o644); err != nil {
				fatal(err)
			}
			part++
		}
		fmt.Printf("containers: %d files under %s\n", part, *container)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dlfsgen:", err)
	os.Exit(1)
}
