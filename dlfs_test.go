package dlfs

import (
	"testing"
)

// TestPublicAPISimulatedPath drives the public API end to end: build a
// simulation, mount, run an epoch, verify every delivered sample.
func TestPublicAPISimulatedPath(t *testing.T) {
	sim := NewSimulation(4)
	ds := GenerateDataset(DatasetConfig{Label: "pub", Seed: 42, NumSamples: 400, Dist: IMDBDist()})
	fss, err := sim.MountAll(ds, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	delivered := make(chan int, 4)
	for i := 1; i < 4; i++ {
		i := i
		sim.Go("client", func(p *Proc) {
			items := fss[i].Sequence(7).DrainAll(p)
			for _, it := range items {
				if ChecksumBytes(it.Data) != ds.Checksum(it.Index) {
					t.Errorf("node %d sample %d corrupt", i, it.Index)
				}
			}
			delivered <- len(items)
		})
	}
	sim.Run(func(p *Proc) {
		items := fss[0].Sequence(7).DrainAll(p)
		delivered <- len(items)
	})
	total := 0
	for i := 0; i < 4; i++ {
		total += <-delivered
	}
	if total != 400 {
		t.Fatalf("delivered %d of 400", total)
	}
	if sim.Now() == 0 {
		t.Fatal("no virtual time elapsed")
	}
}

func TestPublicAPIOptaneOption(t *testing.T) {
	sim := NewSimulation(1, WithOptane(), WithCores(4))
	if sim.Job().Node(0).Device.Spec().Name != "optane-480g@node0" {
		t.Fatalf("device: %s", sim.Job().Node(0).Device.Spec().Name)
	}
	if sim.Job().Node(0).CPU.Capacity() != 4 {
		t.Fatal("cores option ignored")
	}
}

func TestPublicAPILivePath(t *testing.T) {
	tgts := make([]*BlockTarget, 2)
	addrs := make([]string, 2)
	for i := range tgts {
		tg, err := StartTarget("127.0.0.1:0", 64<<20, 32)
		if err != nil {
			t.Fatal(err)
		}
		defer tg.Close() //nolint:errcheck
		tgts[i] = tg
		addrs[i] = tg.Addr
	}
	ds := GenerateDataset(DatasetConfig{Label: "pub-live", Seed: 9, NumSamples: 120, Dist: FixedDist(2048)})
	fs, err := MountLive(addrs, ds, LiveConfig{ChunkSize: 8 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close() //nolint:errcheck
	ep, err := fs.Sequence(3)
	if err != nil {
		t.Fatal(err)
	}
	items, err := ep.Drain()
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 120 {
		t.Fatalf("delivered %d", len(items))
	}
	for _, it := range items {
		if ChecksumBytes(it.Data) != ds.Checksum(it.Index) {
			t.Fatalf("sample %d corrupt over live path", it.Index)
		}
	}
	cmds, bytes := tgts[0].Served()
	if cmds == 0 || bytes == 0 {
		t.Fatal("target 0 unused")
	}
}

func TestDistributions(t *testing.T) {
	if FixedDist(512).Name() != "fixed-512B" {
		t.Fatal("fixed dist")
	}
	if ImageNetDist().Name() != "imagenet" || IMDBDist().Name() != "imdb" {
		t.Fatal("calibrated dists")
	}
}
