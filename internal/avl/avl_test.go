package avl

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func mustInvariants(t *testing.T, tr *Tree[int]) {
	t.Helper()
	if ok, why := tr.CheckInvariants(); !ok {
		t.Fatalf("invariants violated: %s", why)
	}
}

func TestInsertGet(t *testing.T) {
	var tr Tree[int]
	for i := 0; i < 100; i++ {
		if !tr.Insert(uint64(i*7%100), i) {
			t.Fatalf("key %d inserted twice", i*7%100)
		}
	}
	if tr.Len() != 100 {
		t.Fatalf("Len = %d", tr.Len())
	}
	mustInvariants(t, &tr)
	for i := 0; i < 100; i++ {
		if _, ok := tr.Get(uint64(i)); !ok {
			t.Fatalf("missing key %d", i)
		}
	}
	if _, ok := tr.Get(1000); ok {
		t.Fatal("found absent key")
	}
}

func TestInsertReplace(t *testing.T) {
	var tr Tree[int]
	tr.Insert(5, 1)
	if tr.Insert(5, 2) {
		t.Fatal("replace reported as new insert")
	}
	v, _ := tr.Get(5)
	if v != 2 || tr.Len() != 1 {
		t.Fatalf("v=%d len=%d", v, tr.Len())
	}
}

func TestDelete(t *testing.T) {
	var tr Tree[int]
	for i := 0; i < 50; i++ {
		tr.Insert(uint64(i), i)
	}
	for i := 0; i < 50; i += 2 {
		if !tr.Delete(uint64(i)) {
			t.Fatalf("delete %d failed", i)
		}
	}
	if tr.Delete(0) {
		t.Fatal("double delete succeeded")
	}
	if tr.Len() != 25 {
		t.Fatalf("Len = %d", tr.Len())
	}
	mustInvariants(t, &tr)
	for i := 0; i < 50; i++ {
		_, ok := tr.Get(uint64(i))
		if (i%2 == 0) == ok {
			t.Fatalf("key %d presence = %v", i, ok)
		}
	}
}

func TestHeightLogarithmic(t *testing.T) {
	var tr Tree[int]
	// Sequential insert is the classic worst case for unbalanced BSTs.
	for i := 0; i < 1<<12; i++ {
		tr.Insert(uint64(i), i)
	}
	// AVL height bound: 1.44*log2(n+2). For 4096 nodes that is < 19.
	if h := tr.Height(); h > 19 {
		t.Fatalf("height %d too large for 4096 nodes", h)
	}
	mustInvariants(t, &tr)
}

func TestMinMaxCeilFloor(t *testing.T) {
	var tr Tree[int]
	for _, k := range []uint64{10, 20, 30, 40} {
		tr.Insert(k, int(k))
	}
	if k, _, _ := tr.Min(); k != 10 {
		t.Fatalf("Min = %d", k)
	}
	if k, _, _ := tr.Max(); k != 40 {
		t.Fatalf("Max = %d", k)
	}
	if k, _, ok := tr.Ceil(25); !ok || k != 30 {
		t.Fatalf("Ceil(25) = %d,%v", k, ok)
	}
	if k, _, ok := tr.Ceil(30); !ok || k != 30 {
		t.Fatalf("Ceil(30) = %d,%v", k, ok)
	}
	if _, _, ok := tr.Ceil(41); ok {
		t.Fatal("Ceil(41) should miss")
	}
	if k, _, ok := tr.Floor(25); !ok || k != 20 {
		t.Fatalf("Floor(25) = %d,%v", k, ok)
	}
	if _, _, ok := tr.Floor(5); ok {
		t.Fatal("Floor(5) should miss")
	}
	var empty Tree[int]
	if _, _, ok := empty.Min(); ok {
		t.Fatal("Min on empty")
	}
	if _, _, ok := empty.Max(); ok {
		t.Fatal("Max on empty")
	}
}

func TestSelectRank(t *testing.T) {
	var tr Tree[int]
	keys := []uint64{50, 10, 70, 30, 90}
	for _, k := range keys {
		tr.Insert(k, 0)
	}
	sorted := []uint64{10, 30, 50, 70, 90}
	for i, want := range sorted {
		k, _, ok := tr.Select(i)
		if !ok || k != want {
			t.Fatalf("Select(%d) = %d,%v want %d", i, k, ok, want)
		}
		if r := tr.Rank(want); r != i {
			t.Fatalf("Rank(%d) = %d, want %d", want, r, i)
		}
	}
	if _, _, ok := tr.Select(-1); ok {
		t.Fatal("Select(-1)")
	}
	if _, _, ok := tr.Select(5); ok {
		t.Fatal("Select(len)")
	}
	if r := tr.Rank(60); r != 3 {
		t.Fatalf("Rank(60) = %d", r)
	}
	if r := tr.Rank(5); r != 0 {
		t.Fatalf("Rank(5) = %d", r)
	}
	if r := tr.Rank(100); r != 5 {
		t.Fatalf("Rank(100) = %d", r)
	}
}

func TestAscendSortedAndEarlyStop(t *testing.T) {
	var tr Tree[int]
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		tr.Insert(rng.Uint64()%10000, i)
	}
	keys := tr.Keys()
	if !sort.SliceIsSorted(keys, func(i, j int) bool { return keys[i] < keys[j] }) {
		t.Fatal("Keys not sorted")
	}
	seen := 0
	tr.Ascend(func(uint64, int) bool {
		seen++
		return seen < 10
	})
	if seen != 10 {
		t.Fatalf("early stop saw %d", seen)
	}
}

func TestGetDepth(t *testing.T) {
	var tr Tree[int]
	for i := 0; i < 1000; i++ {
		tr.Insert(uint64(i), i)
	}
	_, ok, depth := tr.GetDepth(500)
	if !ok || depth < 1 || depth > tr.Height() {
		t.Fatalf("depth = %d, height = %d", depth, tr.Height())
	}
	_, ok, depth = tr.GetDepth(99999)
	if ok || depth > tr.Height() {
		t.Fatalf("miss depth = %d", depth)
	}
}

// Property: after any interleaved sequence of inserts and deletes the tree
// matches a map oracle and all invariants hold.
func TestTreeMatchesOracleProperty(t *testing.T) {
	f := func(ops []uint16, seed int64) bool {
		var tr Tree[int]
		oracle := map[uint64]int{}
		rng := rand.New(rand.NewSource(seed))
		for i, op := range ops {
			key := uint64(op % 512)
			if rng.Intn(3) == 0 {
				delete(oracle, key)
				tr.Delete(key)
			} else {
				oracle[key] = i
				tr.Insert(key, i)
			}
		}
		if ok, _ := tr.CheckInvariants(); !ok {
			return false
		}
		if tr.Len() != len(oracle) {
			return false
		}
		for k, v := range oracle {
			got, ok := tr.Get(k)
			if !ok || got != v {
				return false
			}
		}
		keys := tr.Keys()
		return sort.SliceIsSorted(keys, func(i, j int) bool { return keys[i] < keys[j] })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: Select and Rank are inverse over the stored keys.
func TestSelectRankInverseProperty(t *testing.T) {
	f := func(raw []uint32) bool {
		var tr Tree[int]
		for _, k := range raw {
			tr.Insert(uint64(k), 0)
		}
		for i := 0; i < tr.Len(); i++ {
			k, _, ok := tr.Select(i)
			if !ok || tr.Rank(k) != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkInsert(b *testing.B) {
	var tr Tree[int]
	for i := 0; i < b.N; i++ {
		tr.Insert(uint64(i), i)
	}
}

func BenchmarkGet(b *testing.B) {
	var tr Tree[int]
	for i := 0; i < 1<<20; i++ {
		tr.Insert(uint64(i), i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Get(uint64(i) & (1<<20 - 1))
	}
}
