// Package avl implements a height-balanced AVL search tree keyed by uint64
// with a generic value type. It is the building block of the DLFS
// in-memory sample directory (DESIGN.md §III-B): each storage node owns one
// tree holding the sample entries resident on that node.
//
// The tree supports ordered iteration and rank queries (Select/Rank) in
// O(log n), which the directory uses to pick the i-th sample of a node
// without materialising a slice.
package avl

// Tree is an AVL tree mapping uint64 keys to values of type V. The zero
// value is an empty tree ready for use.
type Tree[V any] struct {
	root *node[V]
	size int
}

type node[V any] struct {
	key         uint64
	val         V
	left, right *node[V]
	height      int8
	count       int // subtree size, for rank queries
}

func height[V any](n *node[V]) int8 {
	if n == nil {
		return 0
	}
	return n.height
}

func count[V any](n *node[V]) int {
	if n == nil {
		return 0
	}
	return n.count
}

func (n *node[V]) update() {
	hl, hr := height(n.left), height(n.right)
	if hl > hr {
		n.height = hl + 1
	} else {
		n.height = hr + 1
	}
	n.count = 1 + count(n.left) + count(n.right)
}

func (n *node[V]) balanceFactor() int { return int(height(n.left)) - int(height(n.right)) }

func rotateRight[V any](y *node[V]) *node[V] {
	x := y.left
	y.left = x.right
	x.right = y
	y.update()
	x.update()
	return x
}

func rotateLeft[V any](x *node[V]) *node[V] {
	y := x.right
	x.right = y.left
	y.left = x
	x.update()
	y.update()
	return y
}

func rebalance[V any](n *node[V]) *node[V] {
	n.update()
	switch bf := n.balanceFactor(); {
	case bf > 1:
		if n.left.balanceFactor() < 0 {
			n.left = rotateLeft(n.left)
		}
		return rotateRight(n)
	case bf < -1:
		if n.right.balanceFactor() > 0 {
			n.right = rotateRight(n.right)
		}
		return rotateLeft(n)
	}
	return n
}

// Len reports the number of keys stored.
func (t *Tree[V]) Len() int { return t.size }

// Height reports the tree height (0 for empty).
func (t *Tree[V]) Height() int { return int(height(t.root)) }

// Insert stores val under key, replacing any existing value. It reports
// whether the key was newly inserted.
func (t *Tree[V]) Insert(key uint64, val V) bool {
	var added bool
	t.root, added = insert(t.root, key, val)
	if added {
		t.size++
	}
	return added
}

func insert[V any](n *node[V], key uint64, val V) (*node[V], bool) {
	if n == nil {
		return &node[V]{key: key, val: val, height: 1, count: 1}, true
	}
	var added bool
	switch {
	case key < n.key:
		n.left, added = insert(n.left, key, val)
	case key > n.key:
		n.right, added = insert(n.right, key, val)
	default:
		n.val = val
		return n, false
	}
	return rebalance(n), added
}

// Get returns the value for key and whether it is present.
func (t *Tree[V]) Get(key uint64) (V, bool) {
	n := t.root
	for n != nil {
		switch {
		case key < n.key:
			n = n.left
		case key > n.key:
			n = n.right
		default:
			return n.val, true
		}
	}
	var zero V
	return zero, false
}

// GetDepth is Get but additionally reports the number of nodes visited,
// which the directory uses to account lookup CPU cost.
func (t *Tree[V]) GetDepth(key uint64) (V, bool, int) {
	n := t.root
	depth := 0
	for n != nil {
		depth++
		switch {
		case key < n.key:
			n = n.left
		case key > n.key:
			n = n.right
		default:
			return n.val, true, depth
		}
	}
	var zero V
	return zero, false, depth
}

// Delete removes key, reporting whether it was present.
func (t *Tree[V]) Delete(key uint64) bool {
	var removed bool
	t.root, removed = remove(t.root, key)
	if removed {
		t.size--
	}
	return removed
}

func remove[V any](n *node[V], key uint64) (*node[V], bool) {
	if n == nil {
		return nil, false
	}
	var removed bool
	switch {
	case key < n.key:
		n.left, removed = remove(n.left, key)
	case key > n.key:
		n.right, removed = remove(n.right, key)
	default:
		removed = true
		if n.left == nil {
			return n.right, true
		}
		if n.right == nil {
			return n.left, true
		}
		// Replace with in-order successor.
		succ := n.right
		for succ.left != nil {
			succ = succ.left
		}
		n.key, n.val = succ.key, succ.val
		n.right, _ = remove(n.right, succ.key)
	}
	if n == nil {
		return nil, removed
	}
	return rebalance(n), removed
}

// Min returns the smallest key and its value; ok is false for an empty
// tree.
func (t *Tree[V]) Min() (key uint64, val V, ok bool) {
	n := t.root
	if n == nil {
		var zero V
		return 0, zero, false
	}
	for n.left != nil {
		n = n.left
	}
	return n.key, n.val, true
}

// Max returns the largest key and its value.
func (t *Tree[V]) Max() (key uint64, val V, ok bool) {
	n := t.root
	if n == nil {
		var zero V
		return 0, zero, false
	}
	for n.right != nil {
		n = n.right
	}
	return n.key, n.val, true
}

// Ceil returns the smallest key >= key.
func (t *Tree[V]) Ceil(key uint64) (k uint64, val V, ok bool) {
	n := t.root
	var best *node[V]
	for n != nil {
		switch {
		case key < n.key:
			best = n
			n = n.left
		case key > n.key:
			n = n.right
		default:
			return n.key, n.val, true
		}
	}
	if best == nil {
		var zero V
		return 0, zero, false
	}
	return best.key, best.val, true
}

// Floor returns the largest key <= key.
func (t *Tree[V]) Floor(key uint64) (k uint64, val V, ok bool) {
	n := t.root
	var best *node[V]
	for n != nil {
		switch {
		case key > n.key:
			best = n
			n = n.right
		case key < n.key:
			n = n.left
		default:
			return n.key, n.val, true
		}
	}
	if best == nil {
		var zero V
		return 0, zero, false
	}
	return best.key, best.val, true
}

// Select returns the i-th smallest key (0-based) in O(log n).
func (t *Tree[V]) Select(i int) (key uint64, val V, ok bool) {
	if i < 0 || i >= t.size {
		var zero V
		return 0, zero, false
	}
	n := t.root
	for {
		l := count(n.left)
		switch {
		case i < l:
			n = n.left
		case i > l:
			i -= l + 1
			n = n.right
		default:
			return n.key, n.val, true
		}
	}
}

// Rank returns the number of keys strictly less than key.
func (t *Tree[V]) Rank(key uint64) int {
	n := t.root
	rank := 0
	for n != nil {
		switch {
		case key < n.key:
			n = n.left
		case key > n.key:
			rank += count(n.left) + 1
			n = n.right
		default:
			return rank + count(n.left)
		}
	}
	return rank
}

// Ascend calls fn for every key/value in increasing key order; fn returning
// false stops the walk.
func (t *Tree[V]) Ascend(fn func(key uint64, val V) bool) {
	ascend(t.root, fn)
}

func ascend[V any](n *node[V], fn func(uint64, V) bool) bool {
	if n == nil {
		return true
	}
	if !ascend(n.left, fn) {
		return false
	}
	if !fn(n.key, n.val) {
		return false
	}
	return ascend(n.right, fn)
}

// Keys returns all keys in increasing order.
func (t *Tree[V]) Keys() []uint64 {
	out := make([]uint64, 0, t.size)
	t.Ascend(func(k uint64, _ V) bool {
		out = append(out, k)
		return true
	})
	return out
}

// CheckInvariants verifies AVL balance, BST order and size bookkeeping,
// returning false with a reason when violated. It is exported for tests
// and for directory self-checks.
func (t *Tree[V]) CheckInvariants() (bool, string) {
	n, ok, why := check(t.root)
	if !ok {
		return false, why
	}
	if n != t.size {
		return false, "size mismatch"
	}
	return true, ""
}

func check[V any](n *node[V]) (int, bool, string) {
	if n == nil {
		return 0, true, ""
	}
	ln, ok, why := check(n.left)
	if !ok {
		return 0, false, why
	}
	rn, ok, why := check(n.right)
	if !ok {
		return 0, false, why
	}
	if n.left != nil && n.left.key >= n.key {
		return 0, false, "BST order violated on left"
	}
	if n.right != nil && n.right.key <= n.key {
		return 0, false, "BST order violated on right"
	}
	bf := n.balanceFactor()
	if bf < -1 || bf > 1 {
		return 0, false, "balance factor out of range"
	}
	hl, hr := height(n.left), height(n.right)
	want := hl
	if hr > hl {
		want = hr
	}
	if n.height != want+1 {
		return 0, false, "stale height"
	}
	if n.count != 1+ln+rn {
		return 0, false, "stale count"
	}
	return 1 + ln + rn, true, ""
}
