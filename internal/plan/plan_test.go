package plan

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSequenceIsPermutation(t *testing.T) {
	s := NewSequence(42, 1000, 32, 4)
	seen := make([]bool, 1000)
	for _, i := range s.Perm() {
		if i < 0 || i >= 1000 || seen[i] {
			t.Fatalf("not a permutation at %d", i)
		}
		seen[i] = true
	}
	if s.Len() != 1000 || s.Seed() != 42 {
		t.Fatal("accessors")
	}
}

func TestSequenceDeterministicAcrossNodes(t *testing.T) {
	a := NewSequence(7, 500, 32, 8)
	b := NewSequence(7, 500, 32, 8)
	for i := range a.Perm() {
		if a.Perm()[i] != b.Perm()[i] {
			t.Fatal("same seed diverged")
		}
	}
	c := NewSequence(8, 500, 32, 8)
	same := true
	for i := range a.Perm() {
		if a.Perm()[i] != c.Perm()[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds identical")
	}
}

func TestBatches(t *testing.T) {
	s := NewSequence(1, 100, 32, 1)
	if s.NumBatches() != 4 { // 32+32+32+4
		t.Fatalf("NumBatches = %d", s.NumBatches())
	}
	if len(s.Batch(0)) != 32 || len(s.Batch(3)) != 4 {
		t.Fatalf("batch sizes %d %d", len(s.Batch(0)), len(s.Batch(3)))
	}
	if s.Batch(4) != nil {
		t.Fatal("batch past end")
	}
	empty := NewSequence(1, 0, 32, 1)
	if empty.NumBatches() != 0 {
		t.Fatal("empty epoch")
	}
}

func TestNodeBatchPartitionsBatch(t *testing.T) {
	s := NewSequence(3, 640, 32, 4)
	for b := 0; b < s.NumBatches(); b++ {
		var union []int
		for node := 0; node < 4; node++ {
			union = append(union, s.NodeBatch(node, b)...)
		}
		batch := s.Batch(b)
		if len(union) != len(batch) {
			t.Fatalf("batch %d: union %d vs batch %d", b, len(union), len(batch))
		}
		for i := range batch {
			if union[i] != batch[i] {
				t.Fatalf("batch %d element %d differs", b, i)
			}
		}
	}
	if s.NodeBatch(-1, 0) != nil || s.NodeBatch(4, 0) != nil {
		t.Fatal("out-of-range node")
	}
}

func TestDefaults(t *testing.T) {
	s := NewSequence(1, 10, 0, 0)
	if s.batchSize != 32 || s.nodes != 1 {
		t.Fatal("defaults not applied")
	}
}

// Property: for any (n, batch, nodes) the node batches partition the
// permutation exactly.
func TestNodeBatchPartitionProperty(t *testing.T) {
	f := func(nRaw uint16, bRaw, nodesRaw uint8, seed int64) bool {
		n := int(nRaw % 2000)
		batch := int(bRaw%63) + 1
		nodes := int(nodesRaw%16) + 1
		s := NewSequence(seed, n, batch, nodes)
		seen := make([]bool, n)
		count := 0
		for b := 0; b < s.NumBatches(); b++ {
			for node := 0; node < nodes; node++ {
				for _, i := range s.NodeBatch(node, b) {
					if seen[i] {
						return false
					}
					seen[i] = true
					count++
				}
			}
		}
		return count == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func makeLayout(sizes []int, nodes int, chunk int64) *Layout {
	return SequentialLayout(sizes, func(i int) int { return i % nodes }, nodes, chunk)
}

func TestSequentialLayoutValid(t *testing.T) {
	sizes := make([]int, 100)
	for i := range sizes {
		sizes[i] = 1000 + i
	}
	l := makeLayout(sizes, 4, 256<<10)
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	// Offsets ascend contiguously per node.
	for _, ps := range l.NodeSamples {
		var off int64
		for _, p := range ps {
			if p.Offset != off {
				t.Fatalf("gap at %d vs %d", p.Offset, off)
			}
			off += int64(p.Len)
		}
	}
}

func TestValidateCatchesBadLayouts(t *testing.T) {
	l := &Layout{ChunkSize: 0, NodeSamples: [][]Placed{{}}}
	if l.Validate() == nil {
		t.Fatal("zero chunk size accepted")
	}
	l = &Layout{ChunkSize: 100, NodeSamples: [][]Placed{{{Sample: 0, Offset: 0, Len: 10}, {Sample: 1, Offset: 5, Len: 10}}}}
	if l.Validate() == nil {
		t.Fatal("overlap accepted")
	}
	l = &Layout{ChunkSize: 100, NodeSamples: [][]Placed{{{Sample: 0, Offset: 0, Len: 0}}}}
	if l.Validate() == nil {
		t.Fatal("zero length accepted")
	}
}

func TestChunkPlanCoversEverySampleOnce(t *testing.T) {
	sizes := make([]int, 500)
	rng := rand.New(rand.NewSource(5))
	for i := range sizes {
		sizes[i] = 100 + rng.Intn(5000)
	}
	l := makeLayout(sizes, 3, 8192)
	cp, err := BuildChunkPlan(l)
	if err != nil {
		t.Fatal(err)
	}
	if cp.NumSamples() != 500 {
		t.Fatalf("plan covers %d of 500", cp.NumSamples())
	}
	seen := make([]bool, 500)
	mark := func(i int) {
		if seen[i] {
			t.Fatalf("sample %d planned twice", i)
		}
		seen[i] = true
	}
	for _, c := range cp.Chunks {
		for _, p := range c.Samples {
			mark(p.Sample)
			// Fully inside the chunk.
			if p.Offset < c.Offset || p.Offset+int64(p.Len) > c.Offset+int64(c.Length) {
				t.Fatalf("sample %d not inside its chunk", p.Sample)
			}
		}
		if c.FirstSample != c.Samples[0].Sample {
			t.Fatalf("FirstSample mismatch on chunk %d", c.Index)
		}
	}
	for _, e := range cp.Edges {
		mark(e.Placed.Sample)
		// Truly straddles a boundary.
		first := e.Placed.Offset / cp.ChunkSize
		last := (e.Placed.Offset + int64(e.Placed.Len) - 1) / cp.ChunkSize
		if first == last {
			t.Fatalf("edge sample %d does not straddle", e.Placed.Sample)
		}
	}
}

func TestChunkPlanBytesFetched(t *testing.T) {
	// 4 samples of 100B in 256B chunks on one node: samples at 0,100,200
	// (200..300 straddles), 300..400 (in chunk 1).
	l := makeLayout([]int{100, 100, 100, 100}, 1, 256)
	cp, err := BuildChunkPlan(l)
	if err != nil {
		t.Fatal(err)
	}
	if len(cp.Edges) != 1 || cp.Edges[0].Placed.Sample != 2 {
		t.Fatalf("edges: %+v", cp.Edges)
	}
	// chunk0 holds samples 0,1; chunk1 holds sample 3.
	if len(cp.Chunks) != 2 {
		t.Fatalf("chunks: %d", len(cp.Chunks))
	}
	want := int64(256 + 256 + 100)
	if cp.BytesFetched() != want {
		t.Fatalf("BytesFetched = %d, want %d", cp.BytesFetched(), want)
	}
}

func TestEmissionOrderIsPermutation(t *testing.T) {
	sizes := make([]int, 300)
	rng := rand.New(rand.NewSource(9))
	for i := range sizes {
		sizes[i] = 50 + rng.Intn(3000)
	}
	l := makeLayout(sizes, 2, 4096)
	cp, _ := BuildChunkPlan(l)
	order := cp.EmissionOrder(77)
	if len(order) != 300 {
		t.Fatalf("order len %d", len(order))
	}
	seen := make([]bool, 300)
	for _, i := range order {
		if seen[i] {
			t.Fatalf("sample %d emitted twice", i)
		}
		seen[i] = true
	}
	// Deterministic per seed, different across seeds.
	again := cp.EmissionOrder(77)
	for i := range order {
		if order[i] != again[i] {
			t.Fatal("same seed diverged")
		}
	}
	other := cp.EmissionOrder(78)
	same := true
	for i := range order {
		if order[i] != other[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds identical")
	}
}

func TestEmissionOrderIsShuffled(t *testing.T) {
	// The emitted order must not be the identity (that would mean no
	// randomisation at all): count fixed points, expect few.
	sizes := make([]int, 1000)
	for i := range sizes {
		sizes[i] = 100
	}
	l := makeLayout(sizes, 4, 1000)
	cp, _ := BuildChunkPlan(l)
	order := cp.EmissionOrder(1)
	fixed := 0
	for i, s := range order {
		if i == s {
			fixed++
		}
	}
	if fixed > 100 {
		t.Fatalf("%d fixed points in 1000: insufficient shuffling", fixed)
	}
}

// Property: any layout's chunk plan covers each sample exactly once and
// the emission order is a permutation of the planned samples.
func TestChunkPlanCoverageProperty(t *testing.T) {
	f := func(sizesRaw []uint16, nodesRaw uint8, seed int64) bool {
		if len(sizesRaw) == 0 {
			return true
		}
		nodes := int(nodesRaw%4) + 1
		sizes := make([]int, len(sizesRaw))
		for i, s := range sizesRaw {
			sizes[i] = int(s%4000) + 1
		}
		l := makeLayout(sizes, nodes, 2048)
		cp, err := BuildChunkPlan(l)
		if err != nil {
			return false
		}
		if cp.NumSamples() != len(sizes) {
			return false
		}
		order := cp.EmissionOrder(seed)
		seen := make([]bool, len(sizes))
		for _, i := range order {
			if i < 0 || i >= len(sizes) || seen[i] {
				return false
			}
			seen[i] = true
		}
		return len(order) == len(sizes)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestChunkCommandReduction(t *testing.T) {
	// The headline of chunk batching: the number of device commands for an
	// epoch of small samples drops by ~chunkSize/sampleSize.
	sizes := make([]int, 10000)
	for i := range sizes {
		sizes[i] = 512
	}
	l := makeLayout(sizes, 1, 256<<10)
	cp, _ := BuildChunkPlan(l)
	commands := len(cp.Chunks) + len(cp.Edges)
	if commands > 10000/400 {
		t.Fatalf("%d commands for 10000 512B samples; batching ineffective", commands)
	}
}
