// Package plan holds the pure planning logic behind DLFS's opportunistic
// batching optimisations (paper §III-D), shared by the simulated and live
// file systems and by the training-accuracy experiment:
//
//   - Sample-level batching: a seeded global random sample sequence that
//     every node generates identically (no coordination traffic), cut into
//     mini-batches with a per-node slice of each batch.
//   - Chunk-level batching: the dataset, as laid out on each device, is
//     cut into fixed-size data chunks; samples that straddle a chunk
//     boundary become edge samples. A chunk access list and an edge-sample
//     access list drive the reads, and the emission order interleaves
//     random chunk cursors exactly as the paper's copy threads do.
package plan

import (
	"fmt"
	"math/rand"
)

// Sequence is the seeded global sample order for sample-level batching.
type Sequence struct {
	seed      int64
	perm      []int
	batchSize int
	nodes     int
}

// NewSequence builds the global permutation of numSamples sample indices
// for the given seed, to be consumed in mini-batches of batchSize split
// across nodes. Every node calling this with the same arguments gets the
// identical sequence — the point of dlfs_sequence.
func NewSequence(seed int64, numSamples, batchSize, nodes int) *Sequence {
	if batchSize <= 0 {
		batchSize = 32
	}
	if nodes <= 0 {
		nodes = 1
	}
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(numSamples)
	return &Sequence{seed: seed, perm: perm, batchSize: batchSize, nodes: nodes}
}

// Seed returns the generating seed.
func (s *Sequence) Seed() int64 { return s.seed }

// Len returns the number of samples in the epoch.
func (s *Sequence) Len() int { return len(s.perm) }

// Perm returns the full global order (do not mutate).
func (s *Sequence) Perm() []int { return s.perm }

// NumBatches returns the number of mini-batches in the epoch (the final
// one may be short).
func (s *Sequence) NumBatches() int {
	if len(s.perm) == 0 {
		return 0
	}
	return (len(s.perm) + s.batchSize - 1) / s.batchSize
}

// Batch returns global mini-batch b.
func (s *Sequence) Batch(b int) []int {
	lo := b * s.batchSize
	if lo >= len(s.perm) {
		return nil
	}
	hi := lo + s.batchSize
	if hi > len(s.perm) {
		hi = len(s.perm)
	}
	return s.perm[lo:hi]
}

// NodeBatch returns the portion of mini-batch b that node reads: an equal
// contiguous slice of the batch ("every node only reads its assigned
// portion on the list for the current mini-batch").
func (s *Sequence) NodeBatch(node, b int) []int {
	batch := s.Batch(b)
	n := len(batch)
	if n == 0 || node < 0 || node >= s.nodes {
		return nil
	}
	lo := n * node / s.nodes
	hi := n * (node + 1) / s.nodes
	return batch[lo:hi]
}

// Placed records where one sample landed on a device during mount.
type Placed struct {
	Sample int   // dataset sample index
	Offset int64 // byte offset on the owning node's device
	Len    int32
}

// Layout is the physical placement of a dataset across storage nodes:
// NodeSamples[nid] lists that node's samples in ascending device offset.
type Layout struct {
	NodeSamples [][]Placed
	ChunkSize   int64
}

// Validate checks offsets are ascending and non-overlapping per node.
func (l *Layout) Validate() error {
	if l.ChunkSize <= 0 {
		return fmt.Errorf("plan: non-positive chunk size %d", l.ChunkSize)
	}
	for nid, ps := range l.NodeSamples {
		var prevEnd int64
		for i, p := range ps {
			if p.Offset < prevEnd {
				return fmt.Errorf("plan: node %d sample %d overlaps previous (off %d < end %d)", nid, i, p.Offset, prevEnd)
			}
			if p.Len <= 0 {
				return fmt.Errorf("plan: node %d sample %d has length %d", nid, i, p.Len)
			}
			prevEnd = p.Offset + int64(p.Len)
		}
	}
	return nil
}

// Chunk is one entry of the data-chunk access list: a fixed-size device
// region and the samples fully contained in it. FirstSample mirrors the
// paper's "key of the first complete sample in the chunk".
type Chunk struct {
	Node        uint16
	Index       int   // chunk number on that node's device
	Offset      int64 // == Index * ChunkSize
	Length      int32 // chunk size, possibly short for the device tail
	Samples     []Placed
	FirstSample int // dataset index of first complete sample; -1 if none
}

// Edge is one entry of the edge-sample access list: a sample crossing a
// chunk boundary, read individually.
type Edge struct {
	Node   uint16
	Placed Placed
}

// ChunkPlan is the result of cutting a layout into chunks.
type ChunkPlan struct {
	ChunkSize int64
	Chunks    []Chunk // only chunks containing at least one full sample
	Edges     []Edge
}

// NumSamples counts all samples covered (full + edge).
func (cp *ChunkPlan) NumSamples() int {
	n := len(cp.Edges)
	for _, c := range cp.Chunks {
		n += len(c.Samples)
	}
	return n
}

// BytesFetched returns the total bytes the plan reads from devices in one
// epoch: whole chunks plus edge samples — the I/O amplification the
// chunk-batching trade-off accepts in exchange for fewer commands.
func (cp *ChunkPlan) BytesFetched() int64 {
	var total int64
	for _, c := range cp.Chunks {
		total += int64(c.Length)
	}
	for _, e := range cp.Edges {
		total += int64(e.Placed.Len)
	}
	return total
}

// BuildChunkPlan cuts the layout into the chunk and edge access lists.
func BuildChunkPlan(l *Layout) (*ChunkPlan, error) {
	if err := l.Validate(); err != nil {
		return nil, err
	}
	cp := &ChunkPlan{ChunkSize: l.ChunkSize}
	cs := l.ChunkSize
	for nid, ps := range l.NodeSamples {
		var cur *Chunk
		for _, p := range ps {
			first := p.Offset / cs
			last := (p.Offset + int64(p.Len) - 1) / cs
			if first != last {
				cp.Edges = append(cp.Edges, Edge{Node: uint16(nid), Placed: p})
				continue
			}
			if cur == nil || int64(cur.Index) != first {
				if cur != nil {
					cp.Chunks = append(cp.Chunks, *cur)
				}
				end := (first + 1) * cs
				cur = &Chunk{
					Node:        uint16(nid),
					Index:       int(first),
					Offset:      first * cs,
					Length:      int32(end - first*cs),
					FirstSample: p.Sample,
				}
			}
			cur.Samples = append(cur.Samples, p)
		}
		if cur != nil {
			cp.Chunks = append(cp.Chunks, *cur)
		}
	}
	return cp, nil
}

// EmissionOrder reproduces the copy threads' random selection (§III-D2,
// Fig 5b): cursors over every chunk's sample list and over the edge list
// advance as a random non-empty cursor is picked each step. The result is
// a cover of every planned sample exactly once — DLFS-determined
// randomness rather than application-determined.
func (cp *ChunkPlan) EmissionOrder(seed int64) []int {
	rng := rand.New(rand.NewSource(seed))
	type cursor struct {
		samples []Placed
		next    int
	}
	cursors := make([]*cursor, 0, len(cp.Chunks)+1)
	for i := range cp.Chunks {
		if len(cp.Chunks[i].Samples) > 0 {
			cursors = append(cursors, &cursor{samples: cp.Chunks[i].Samples})
		}
	}
	if len(cp.Edges) > 0 {
		es := make([]Placed, len(cp.Edges))
		for i, e := range cp.Edges {
			es[i] = e.Placed
		}
		cursors = append(cursors, &cursor{samples: es})
	}
	out := make([]int, 0, cp.NumSamples())
	live := len(cursors)
	for live > 0 {
		k := rng.Intn(live)
		c := cursors[k]
		out = append(out, c.samples[c.next].Sample)
		c.next++
		if c.next == len(c.samples) {
			cursors[k] = cursors[live-1]
			live--
		}
	}
	return out
}

// SequentialLayout places each node's samples back to back from offset 0,
// the placement dlfs_mount produces when uploading a shard; shardOf maps
// each sample index to its storage node and sizes gives sample sizes.
func SequentialLayout(sizes []int, nodeOf func(i int) int, nodes int, chunkSize int64) *Layout {
	l := &Layout{NodeSamples: make([][]Placed, nodes), ChunkSize: chunkSize}
	offs := make([]int64, nodes)
	for i, sz := range sizes {
		nid := nodeOf(i)
		l.NodeSamples[nid] = append(l.NodeSamples[nid], Placed{Sample: i, Offset: offs[nid], Len: int32(sz)})
		offs[nid] += int64(sz)
	}
	return l
}
