package ext4sim

import (
	"errors"
	"fmt"
	"testing"

	"dlfs/internal/dataset"
	"dlfs/internal/nvme"
	"dlfs/internal/sim"
)

func newFS(e *sim.Engine, cfg Config) *FS {
	dev := nvme.NewDevice(e, nvme.OptaneSpec())
	return New(e, dev, cfg)
}

func TestReadBackContents(t *testing.T) {
	e := sim.NewEngine()
	fs := newFS(e, Config{})
	cpu := sim.NewServer(e, "cpu", 1)
	ds := dataset.Generate(dataset.Config{Label: "e", Seed: 1, NumSamples: 20, Dist: dataset.IMDBDist()})
	for i := 0; i < ds.Len(); i++ {
		if err := fs.CreateFile(ds.Samples[i].Name, ds.Content(i)); err != nil {
			t.Fatal(err)
		}
	}
	if fs.NumFiles() != 20 {
		t.Fatal("file count")
	}
	e.Go("reader", func(p *sim.Proc) {
		for i := 0; i < ds.Len(); i++ {
			buf := make([]byte, ds.Samples[i].Size)
			n, err := fs.ReadFile(p, cpu, ds.Samples[i].Name, buf)
			if err != nil || n != ds.Samples[i].Size {
				t.Errorf("ReadFile %d: n=%d err=%v", i, n, err)
				return
			}
			if dataset.ChecksumBytes(buf) != ds.Checksum(i) {
				t.Errorf("sample %d corrupt through kernel path", i)
			}
		}
	})
	e.RunAll()
	if e.Now() == 0 {
		t.Fatal("kernel path cost no time")
	}
}

func TestOpenErrors(t *testing.T) {
	e := sim.NewEngine()
	fs := newFS(e, Config{})
	cpu := sim.NewServer(e, "cpu", 1)
	e.Go("r", func(p *sim.Proc) {
		if _, err := fs.Open(p, cpu, "missing"); !errors.Is(err, ErrNotFound) {
			t.Errorf("open missing: %v", err)
		}
	})
	e.RunAll()
	if cpu.InUse() != 0 {
		t.Fatal("core leaked on error path")
	}
}

func TestDoubleCreateFails(t *testing.T) {
	e := sim.NewEngine()
	fs := newFS(e, Config{})
	if err := fs.CreateFile("a", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := fs.CreateFile("a", []byte("y")); err == nil {
		t.Fatal("duplicate create accepted")
	}
}

func TestClosedHandleRejected(t *testing.T) {
	e := sim.NewEngine()
	fs := newFS(e, Config{})
	cpu := sim.NewServer(e, "cpu", 1)
	fs.CreateFile("a", make([]byte, 100)) //nolint:errcheck
	e.Go("r", func(p *sim.Proc) {
		f, err := fs.Open(p, cpu, "a")
		if err != nil {
			t.Error(err)
			return
		}
		if err := fs.Close(p, cpu, f); err != nil {
			t.Error(err)
		}
		if _, err := fs.Read(p, cpu, f, make([]byte, 10), 0); !errors.Is(err, ErrClosed) {
			t.Errorf("read after close: %v", err)
		}
		if err := fs.Close(p, cpu, f); !errors.Is(err, ErrClosed) {
			t.Errorf("double close: %v", err)
		}
	})
	e.RunAll()
}

func TestShortReadAtEOF(t *testing.T) {
	e := sim.NewEngine()
	fs := newFS(e, Config{})
	cpu := sim.NewServer(e, "cpu", 1)
	fs.CreateFile("a", []byte("0123456789")) //nolint:errcheck
	e.Go("r", func(p *sim.Proc) {
		f, _ := fs.Open(p, cpu, "a")
		buf := make([]byte, 20)
		n, err := fs.Read(p, cpu, f, buf, 5)
		if err != nil || n != 5 || string(buf[:n]) != "56789" {
			t.Errorf("short read: n=%d err=%v buf=%q", n, err, buf[:n])
		}
		n, err = fs.Read(p, cpu, f, buf, 100)
		if err != nil || n != 0 {
			t.Errorf("read past EOF: n=%d err=%v", n, err)
		}
	})
	e.RunAll()
}

func TestPageCacheHitsAreFasterAndCounted(t *testing.T) {
	e := sim.NewEngine()
	fs := newFS(e, Config{})
	cpu := sim.NewServer(e, "cpu", 1)
	data := make([]byte, 64<<10)
	fs.CreateFile("a", data) //nolint:errcheck
	var cold, warm sim.Time
	e.Go("r", func(p *sim.Proc) {
		f, _ := fs.Open(p, cpu, "a")
		buf := make([]byte, len(data))
		start := p.Now()
		fs.Read(p, cpu, f, buf, 0) //nolint:errcheck
		cold = p.Now() - start
		start = p.Now()
		fs.Read(p, cpu, f, buf, 0) //nolint:errcheck
		warm = p.Now() - start
	})
	e.RunAll()
	if warm*3 >= cold {
		t.Fatalf("warm read %v not ≫ faster than cold %v", warm, cold)
	}
	_, _, hits, misses, _ := fs.Stats()
	if misses != 16 || hits != 16 {
		t.Fatalf("page hits=%d misses=%d, want 16/16", hits, misses)
	}
}

func TestDropCaches(t *testing.T) {
	e := sim.NewEngine()
	fs := newFS(e, Config{})
	cpu := sim.NewServer(e, "cpu", 1)
	fs.CreateFile("a", make([]byte, 8192)) //nolint:errcheck
	var afterDrop sim.Time
	e.Go("r", func(p *sim.Proc) {
		buf := make([]byte, 8192)
		fs.ReadFile(p, cpu, "a", buf) //nolint:errcheck
		fs.DropCaches()
		start := p.Now()
		fs.ReadFile(p, cpu, "a", buf) //nolint:errcheck
		afterDrop = p.Now() - start
	})
	e.RunAll()
	// After dropping, the read must pay device time again (≥ 10µs).
	if afterDrop < 10_000 {
		t.Fatalf("read after DropCaches took only %v", afterDrop)
	}
}

func TestSmallReadCostEnvelope(t *testing.T) {
	// A cold 512B open+read+close should land in the 25-60µs the kernel
	// path costs on real hardware (two device reads: inode + data).
	e := sim.NewEngine()
	fs := newFS(e, Config{})
	cpu := sim.NewServer(e, "cpu", 1)
	fs.CreateFile("d/s0", make([]byte, 512)) //nolint:errcheck
	var took sim.Time
	e.Go("r", func(p *sim.Proc) {
		buf := make([]byte, 512)
		start := p.Now()
		fs.ReadFile(p, cpu, "d/s0", buf) //nolint:errcheck
		took = p.Now() - start
	})
	e.RunAll()
	if took < 25_000 || took > 60_000 {
		t.Fatalf("cold 512B sample read = %v, want 25-60µs", took)
	}
}

func TestInodeCacheBoundsMisses(t *testing.T) {
	e := sim.NewEngine()
	fs := newFS(e, Config{ICacheEntries: 4})
	cpu := sim.NewServer(e, "cpu", 1)
	for i := 0; i < 8; i++ {
		fs.CreateFile(fmt.Sprintf("f%d", i), make([]byte, 100)) //nolint:errcheck
	}
	e.Go("r", func(p *sim.Proc) {
		buf := make([]byte, 100)
		// Two passes over 8 files with a 4-entry cache: every open misses.
		for pass := 0; pass < 2; pass++ {
			for i := 0; i < 8; i++ {
				fs.ReadFile(p, cpu, fmt.Sprintf("f%d", i), buf) //nolint:errcheck
			}
		}
	})
	e.RunAll()
	_, _, _, _, inodeMisses := fs.Stats()
	if inodeMisses != 16 {
		t.Fatalf("inode misses = %d, want 16 (thrashing)", inodeMisses)
	}
}

func TestMultiThreadScalesUntilDeviceBound(t *testing.T) {
	// Ext4-MC: more threads on more cores raise throughput (Fig 6) until
	// the device saturates.
	run := func(threads int) float64 {
		e := sim.NewEngine()
		fs := newFS(e, Config{PageCacheBytes: 1 << 20}) // tiny cache: stay cold
		const n = 64 << 10
		const files = 200
		for i := 0; i < files; i++ {
			fs.CreateFile(fmt.Sprintf("f%d", i), make([]byte, n)) //nolint:errcheck
		}
		cpu := sim.NewServer(e, "cpu", threads)
		const perThread = 50
		for th := 0; th < threads; th++ {
			th := th
			e.Go("t", func(p *sim.Proc) {
				buf := make([]byte, n)
				for i := 0; i < perThread; i++ {
					fs.ReadFile(p, cpu, fmt.Sprintf("f%d", (th*perThread+i*7)%files), buf) //nolint:errcheck
				}
			})
		}
		e.RunAll()
		return float64(threads*perThread) / (float64(e.Now()) / 1e9)
	}
	one := run(1)
	four := run(4)
	if four < one*1.5 {
		t.Fatalf("4 threads (%.0f/s) not faster than 1 (%.0f/s)", four, one)
	}
}

func TestReadHoldsNoCoreDuringIO(t *testing.T) {
	// While one thread waits on the device, another thread must be able
	// to use the single core: the kernel context-switches on I/O wait.
	e := sim.NewEngine()
	fs := newFS(e, Config{})
	cpu := sim.NewServer(e, "cpu", 1)
	fs.CreateFile("big", make([]byte, 1<<20)) //nolint:errcheck
	var computeDone sim.Time
	e.Go("reader", func(p *sim.Proc) {
		buf := make([]byte, 1<<20)
		fs.ReadFile(p, cpu, "big", buf) //nolint:errcheck
	})
	e.Go("compute", func(p *sim.Proc) {
		p.Sleep(20_000) // let the reader get into its device wait
		cpu.Use(p, 50_000)
		computeDone = p.Now()
	})
	e.RunAll()
	// 1MiB at 2.4GB/s ≈ 440µs of device time; if the reader held the core
	// throughout, compute would finish near 500µs. It should finish well
	// before the read's device phase ends.
	if computeDone > 200_000 {
		t.Fatalf("compute finished at %v: reader hogged the core during I/O", computeDone)
	}
}

func TestReadaheadAcceleratesSequentialReads(t *testing.T) {
	// A 4 MiB file read in 4 KiB slices: sequentially the readahead turns
	// ~1000 device trips into ~30; randomly every slice pays a trip.
	run := func(sequential bool) sim.Time {
		e := sim.NewEngine()
		fs := newFS(e, Config{})
		data := make([]byte, 4<<20)
		fs.CreateFile("big", data) //nolint:errcheck
		cpu := sim.NewServer(e, "cpu", 1)
		e.Go("r", func(p *sim.Proc) {
			f, _ := fs.Open(p, cpu, "big")
			buf := make([]byte, 4096)
			slices := len(data) / 4096
			for i := 0; i < slices; i++ {
				pos := i
				if !sequential {
					pos = (i * 617) % slices // co-prime stride: random-ish
				}
				fs.Read(p, cpu, f, buf, int64(pos)*4096) //nolint:errcheck
			}
		})
		return e.RunAll()
	}
	seq := run(true)
	rnd := run(false)
	if seq*3 >= rnd {
		t.Fatalf("sequential %v not ≪ random %v: readahead ineffective", seq, rnd)
	}
}

func TestReadaheadDoesNotCrossEOF(t *testing.T) {
	e := sim.NewEngine()
	fs := newFS(e, Config{})
	fs.CreateFile("small", make([]byte, 6000)) //nolint:errcheck
	cpu := sim.NewServer(e, "cpu", 1)
	e.Go("r", func(p *sim.Proc) {
		f, _ := fs.Open(p, cpu, "small")
		buf := make([]byte, 4096)
		if _, err := fs.Read(p, cpu, f, buf, 0); err != nil {
			t.Error(err)
		}
		// Sequential follow-up near EOF: readahead must clamp, not fault.
		if n, err := fs.Read(p, cpu, f, buf, 4096); err != nil || n != 6000-4096 {
			t.Errorf("tail read n=%d err=%v", n, err)
		}
	})
	e.RunAll()
}
