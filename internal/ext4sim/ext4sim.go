// Package ext4sim models the kernel-based Ext4-over-NVMe baseline the
// paper compares DLFS against (§IV). It is a cost-accurate caricature of
// the path Fig 2(b) draws: syscall entry/exit, VFS path resolution through
// a dentry cache, inode fetch, extent mapping, page cache, block-layer bio
// submission, device interrupt and context switch on I/O wait, and the
// copy_to_user back into the application buffer.
//
// The point of the model is that every cost is explicit and individually
// justified, so the small-sample penalty the paper measures *emerges* from
// the sum of documented kernel overheads rather than being a fudge
// factor. Data is real: reads return the bytes mkfs stored on the device.
package ext4sim

import (
	"container/list"
	"errors"
	"fmt"

	"dlfs/internal/nvme"
	"dlfs/internal/sim"
)

// Costs is the kernel cost model. All durations are CPU time on the
// calling thread's core unless noted.
type Costs struct {
	Syscall        sim.Duration // one syscall boundary crossing (enter or exit)
	PathComponent  sim.Duration // dcache hash lookup per path component
	DentryMiss     sim.Duration // directory entry search on dcache miss
	InodeCPU       sim.Duration // inode validation/bookkeeping per open
	ExtentMap      sim.Duration // extent tree mapping per read
	PageCacheMgmt  sim.Duration // page allocation + radix insert per missed page
	BioSubmit      sim.Duration // block layer submission per bio
	Interrupt      sim.Duration // completion IRQ + softirq
	ContextSwitch  sim.Duration // schedule out/in around I/O wait (each way)
	CopyBandwidth  int64        // copy_to_user stream bandwidth, bytes/sec
	ReadaheadPages int64        // readahead window on sequential access, in pages
}

// DefaultCosts reflects commonly cited Linux numbers on Haswell-class
// Xeons (the paper's E5-2650 testbed): ~0.6 µs syscall crossings with
// KPTI-era mitigations, sub-µs dcache hits, ~1 µs IRQ handling, ~1.8 µs
// context switches, and ~8 GB/s single-stream copies.
func DefaultCosts() Costs {
	return Costs{
		Syscall:        600,
		PathComponent:  400,
		DentryMiss:     900,
		InodeCPU:       500,
		ExtentMap:      300,
		PageCacheMgmt:  800,
		BioSubmit:      700,
		Interrupt:      1200,
		ContextSwitch:  1800,
		CopyBandwidth:  8_000_000_000,
		ReadaheadPages: 32, // 128 KiB, the Linux default
	}
}

const pageSize = 4096

// inode is an on-"disk" file: one extent, as mkfs lays files out
// contiguously.
type inode struct {
	id     int
	name   string
	offset int64 // extent start on the device
	size   int64
}

// FS is one mounted Ext4 instance over one device.
type FS struct {
	eng   *sim.Engine
	dev   *nvme.Device
	costs Costs

	inodes    map[string]*inode
	nextIno   int
	allocEnd  int64
	icacheCap int
	icache    *lruSet // hot inode set: misses pay a device read
	pageCache *pageCache

	// Stats
	opens, reads, pageHits, pageMisses, inodeMisses int64
}

// Config tunes the instance.
type Config struct {
	Costs          Costs
	ICacheEntries  int   // inode/dentry cache capacity (default 65536)
	PageCacheBytes int64 // page cache capacity (default 1 GiB)
}

// New mounts a fresh file system on dev.
func New(e *sim.Engine, dev *nvme.Device, cfg Config) *FS {
	if cfg.Costs == (Costs{}) {
		cfg.Costs = DefaultCosts()
	}
	if cfg.ICacheEntries <= 0 {
		cfg.ICacheEntries = 65536
	}
	if cfg.PageCacheBytes <= 0 {
		cfg.PageCacheBytes = 1 << 30
	}
	return &FS{
		eng:       e,
		dev:       dev,
		costs:     cfg.Costs,
		inodes:    make(map[string]*inode),
		icacheCap: cfg.ICacheEntries,
		icache:    newLRUSet(cfg.ICacheEntries),
		pageCache: newPageCache(int(cfg.PageCacheBytes / pageSize)),
	}
}

// Errors.
var (
	ErrNotFound = errors.New("ext4sim: no such file")
	ErrClosed   = errors.New("ext4sim: file closed")
)

// CreateFile lays a file out at mkfs/population time: contiguous extent,
// bytes written straight to the backing store. Population happens before
// the measured window (the paper stages datasets onto burst buffers before
// training), so it costs no virtual time.
func (fs *FS) CreateFile(name string, data []byte) error {
	if _, dup := fs.inodes[name]; dup {
		return fmt.Errorf("ext4sim: file exists: %s", name)
	}
	ino := &inode{id: fs.nextIno, name: name, offset: fs.allocEnd, size: int64(len(data))}
	fs.nextIno++
	// Extents are block aligned.
	fs.allocEnd += (int64(len(data)) + pageSize - 1) / pageSize * pageSize
	if _, err := fs.dev.Store().WriteAt(data, ino.offset); err != nil {
		return err
	}
	fs.inodes[name] = ino
	return nil
}

// NumFiles reports the number of files.
func (fs *FS) NumFiles() int { return len(fs.inodes) }

// File is an open file handle.
type File struct {
	fs      *FS
	ino     *inode
	open    bool
	lastEnd int64 // end offset of the previous read, for readahead detection
}

// Size returns the file size.
func (f *File) Size() int64 { return f.ino.size }

// Open resolves name through the kernel path. cpu is the core the calling
// thread runs on; Open acquires it for the CPU phases.
func (fs *FS) Open(p *sim.Proc, cpu *sim.Server, name string) (*File, error) {
	fs.opens++
	cpu.Acquire(p)
	p.Sleep(fs.costs.Syscall) // enter
	// Path resolution: one dcache lookup per component.
	comps := 1
	for i := 0; i < len(name); i++ {
		if name[i] == '/' {
			comps++
		}
	}
	p.Sleep(sim.Duration(comps) * fs.costs.PathComponent)
	ino, ok := fs.inodes[name]
	if !ok {
		p.Sleep(fs.costs.Syscall) // exit with ENOENT
		cpu.Release()
		return nil, fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	if !fs.icache.touch(ino.id) {
		// Cold inode: the kernel reads the inode block from the device.
		fs.inodeMisses++
		p.Sleep(fs.costs.DentryMiss + fs.costs.BioSubmit)
		fs.blockingDeviceRead(p, cpu, ino.offset, pageSize, nil)
		fs.icache.insert(ino.id)
	}
	p.Sleep(fs.costs.InodeCPU)
	p.Sleep(fs.costs.Syscall) // exit
	cpu.Release()
	return &File{fs: fs, ino: ino, open: true}, nil
}

// blockingDeviceRead performs a device read the kernel way: the thread
// releases its core while the I/O is in flight (context switch out), is
// woken by the completion interrupt, and pays the switch back in. If dst
// is non-nil the bytes land there.
func (fs *FS) blockingDeviceRead(p *sim.Proc, cpu *sim.Server, off int64, n int, dst []byte) {
	p.Sleep(fs.costs.ContextSwitch)
	cpu.Release()
	buf := dst
	if buf == nil {
		buf = make([]byte, n)
	}
	fs.dev.SyncIO(p, &nvme.Command{Op: nvme.OpRead, Offset: off, Buf: buf}) //nolint:errcheck // store range pre-validated by extent map
	cpu.Acquire(p)
	p.Sleep(fs.costs.Interrupt + fs.costs.ContextSwitch)
}

// Read reads len(buf) bytes at off through the kernel path, returning the
// byte count (short at EOF).
func (fs *FS) Read(p *sim.Proc, cpu *sim.Server, f *File, buf []byte, off int64) (int, error) {
	if !f.open {
		return 0, ErrClosed
	}
	fs.reads++
	n := len(buf)
	if off >= f.ino.size {
		return 0, nil
	}
	if off+int64(n) > f.ino.size {
		n = int(f.ino.size - off)
	}
	cpu.Acquire(p)
	p.Sleep(fs.costs.Syscall + fs.costs.ExtentMap)

	// Readahead: a sequential pattern (this read begins where the last
	// one ended) extends the miss window by the readahead pages, so the
	// following sequential reads hit the page cache — the optimisation
	// that makes the kernel stack competitive for large sequential I/O
	// and useless for random samples.
	first := off / pageSize
	last := (off + int64(n) - 1) / pageSize
	sequential := off == f.lastEnd && off > 0
	f.lastEnd = off + int64(n)
	raLast := last
	// The window extends only when the request itself misses — the kernel
	// batches readahead rather than topping the window up page by page.
	requestMisses := false
	for pg := first; pg <= last; pg++ {
		if fs.pageCache.get(f.ino.id, pg) == nil {
			requestMisses = true
			break
		}
	}
	if sequential && requestMisses && fs.costs.ReadaheadPages > 0 {
		raLast = last + fs.costs.ReadaheadPages
		if maxPg := (f.ino.size - 1) / pageSize; raLast > maxPg {
			raLast = maxPg
		}
	}

	// Walk the file's pages, reading missed runs as single bios.
	for pg := first; pg <= raLast; {
		if fs.pageCache.get(f.ino.id, pg) != nil {
			fs.pageHits++
			pg++
			continue
		}
		// Collect the contiguous run of missing pages.
		runStart := pg
		for pg <= raLast && fs.pageCache.get(f.ino.id, pg) == nil {
			pg++
		}
		runPages := pg - runStart
		fs.pageMisses += runPages
		p.Sleep(fs.costs.BioSubmit + sim.Duration(runPages)*fs.costs.PageCacheMgmt)
		devOff := f.ino.offset + runStart*pageSize
		runBytes := runPages * pageSize
		if devOff+runBytes > f.ino.offset+((f.ino.size+pageSize-1)/pageSize)*pageSize {
			runBytes = (f.ino.size+pageSize-1)/pageSize*pageSize - runStart*pageSize
		}
		run := make([]byte, runBytes)
		fs.blockingDeviceRead(p, cpu, devOff, int(runBytes), run)
		for i := int64(0); i < runPages; i++ {
			page := run[i*pageSize : min64((i+1)*pageSize, runBytes)]
			fs.pageCache.put(f.ino.id, runStart+i, page)
		}
	}

	// copy_to_user from the page cache into the application buffer.
	if fs.costs.CopyBandwidth > 0 {
		p.Sleep(sim.Duration(int64(n) * 1e9 / fs.costs.CopyBandwidth))
	}
	for pg, copied := first, 0; pg <= last && copied < n; pg++ {
		page := fs.pageCache.get(f.ino.id, pg)
		if page == nil {
			cpu.Release()
			return copied, fmt.Errorf("ext4sim: page %d evicted mid-read", pg)
		}
		pstart := pg * pageSize
		lo := off + int64(copied) - pstart
		copied += copy(buf[copied:n], page[lo:])
	}
	p.Sleep(fs.costs.Syscall)
	cpu.Release()
	return n, nil
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// Close releases the handle (syscall cost only).
func (fs *FS) Close(p *sim.Proc, cpu *sim.Server, f *File) error {
	if !f.open {
		return ErrClosed
	}
	f.open = false
	cpu.Use(p, 2*fs.costs.Syscall)
	return nil
}

// ReadFile is open+read-all+close, the per-sample pattern DL loaders use.
func (fs *FS) ReadFile(p *sim.Proc, cpu *sim.Server, name string, buf []byte) (int, error) {
	f, err := fs.Open(p, cpu, name)
	if err != nil {
		return 0, err
	}
	n, err := fs.Read(p, cpu, f, buf[:min64(int64(len(buf)), f.Size())], 0)
	if cerr := fs.Close(p, cpu, f); err == nil {
		err = cerr
	}
	return n, err
}

// Stats reports operation counters.
func (fs *FS) Stats() (opens, reads, pageHits, pageMisses, inodeMisses int64) {
	return fs.opens, fs.reads, fs.pageHits, fs.pageMisses, fs.inodeMisses
}

// DropCaches empties the page and inode caches (echo 3 >
// /proc/sys/vm/drop_caches), which the cold-read benchmarks do between
// trials.
func (fs *FS) DropCaches() {
	fs.icache = newLRUSet(fs.icacheCap)
	fs.pageCache = newPageCache(fs.pageCache.capacity)
}

// lruSet is a bounded LRU membership set (inode numbers).
type lruSet struct {
	capacity int
	ll       *list.List
	items    map[int]*list.Element
}

func newLRUSet(capacity int) *lruSet {
	return &lruSet{capacity: capacity, ll: list.New(), items: make(map[int]*list.Element)}
}

// touch reports membership and refreshes recency.
func (s *lruSet) touch(id int) bool {
	if el, ok := s.items[id]; ok {
		s.ll.MoveToFront(el)
		return true
	}
	return false
}

func (s *lruSet) insert(id int) {
	if s.touch(id) {
		return
	}
	if s.ll.Len() >= s.capacity {
		oldest := s.ll.Back()
		s.ll.Remove(oldest)
		delete(s.items, oldest.Value.(int))
	}
	s.items[id] = s.ll.PushFront(id)
}

type pageKey struct {
	ino int
	pg  int64
}

// pageCache is a bounded LRU of real 4K pages.
type pageCache struct {
	capacity int
	ll       *list.List
	items    map[pageKey]*list.Element
}

type pageEntry struct {
	key  pageKey
	data []byte
}

func newPageCache(capacity int) *pageCache {
	if capacity < 1 {
		capacity = 1
	}
	return &pageCache{capacity: capacity, ll: list.New(), items: make(map[pageKey]*list.Element)}
}

func (c *pageCache) get(ino int, pg int64) []byte {
	if el, ok := c.items[pageKey{ino, pg}]; ok {
		c.ll.MoveToFront(el)
		return el.Value.(*pageEntry).data
	}
	return nil
}

func (c *pageCache) put(ino int, pg int64, data []byte) {
	key := pageKey{ino, pg}
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*pageEntry).data = data
		return
	}
	if c.ll.Len() >= c.capacity {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*pageEntry).key)
	}
	c.items[key] = c.ll.PushFront(&pageEntry{key: key, data: data})
}
