// Package bufpool provides pooled byte buffers for the live data path.
// The paper's pipeline never allocates per command: payloads land in
// pre-registered huge-page chunks and transient frames are recycled. This
// pool reproduces that discipline for the Go transport — buffers are
// handed out from power-of-two size classes backed by sync.Pool, so the
// steady-state hot path performs no heap allocation and generates no
// garbage.
package bufpool

import (
	"math/bits"
	"sync"
	"sync/atomic"
)

const (
	// minClassBits is the smallest pooled class (512 B): anything smaller
	// still rounds up to it, keeping class count low.
	minClassBits = 9
	// maxClassBits is the largest pooled class (4 MiB); larger requests
	// fall through to plain allocation.
	maxClassBits = 22
	numClasses   = maxClassBits - minClassBits + 1
)

// Pool hands out byte slices of at least the requested length from
// power-of-two size classes. The zero value is not usable; call New.
type Pool struct {
	classes [numClasses]sync.Pool
	hits    atomic.Int64
	misses  atomic.Int64
	puts    atomic.Int64
}

// New returns an empty pool. The per-class sync.Pools have no New hook:
// an empty class returns nil from Get, which is how misses are counted.
func New() *Pool {
	return &Pool{}
}

// Shared is the process-wide pool used for transport-internal scratch
// buffers (frame payloads, drain space). Data-path owners that want
// isolated hit-rate accounting create their own Pool.
var Shared = New()

// classFor returns the class index for n, or -1 when n is out of the
// pooled range.
func classFor(n int) int {
	if n <= 0 || n > 1<<maxClassBits {
		return -1
	}
	c := bits.Len(uint(n-1)) - minClassBits
	if c < 0 {
		c = 0
	}
	return c
}

// Get returns a slice of length n. Lengths above the largest class are
// served by plain allocation and are not recycled by Put.
func (p *Pool) Get(n int) []byte {
	c := classFor(n)
	if c < 0 {
		p.misses.Add(1)
		return make([]byte, n)
	}
	if v := p.classes[c].Get(); v != nil {
		p.hits.Add(1)
		b := *(v.(*[]byte))
		return b[:n]
	}
	p.misses.Add(1)
	return make([]byte, 1<<(minClassBits+c))[:n]
}

// Put recycles a buffer previously returned by Get. Buffers whose
// capacity is not an exact pooled class size (foreign slices, oversized
// allocations) are dropped for the GC.
func (p *Pool) Put(b []byte) {
	c := cap(b)
	if c == 0 || c&(c-1) != 0 || c < 1<<minClassBits || c > 1<<maxClassBits {
		return
	}
	b = b[:c]
	p.puts.Add(1)
	p.classes[classFor(c)].Put(&b)
}

// Stats reports pool traffic: hits (Get served from the pool), misses
// (Get that allocated) and puts (buffers recycled).
func (p *Pool) Stats() (hits, misses, puts int64) {
	return p.hits.Load(), p.misses.Load(), p.puts.Load()
}

// HitRate returns hits/(hits+misses), or 0 before any traffic.
func (p *Pool) HitRate() float64 {
	h, m, _ := p.Stats()
	if h+m == 0 {
		return 0
	}
	return float64(h) / float64(h+m)
}
