package bufpool

import (
	"sync"
	"testing"
)

func TestClassRounding(t *testing.T) {
	p := New()
	for _, n := range []int{1, 511, 512, 513, 4096, (4 << 20)} {
		b := p.Get(n)
		if len(b) != n {
			t.Fatalf("Get(%d) len = %d", n, len(b))
		}
		if c := cap(b); c&(c-1) != 0 {
			t.Fatalf("Get(%d) cap %d not a power of two", n, c)
		}
		p.Put(b)
	}
}

func TestRecycleHit(t *testing.T) {
	p := New()
	a := p.Get(1000)
	p.Put(a)
	b := p.Get(900)
	if &a[0] != &b[0] {
		// sync.Pool may drop buffers under GC pressure, but in a quiet
		// unit test the buffer must come back.
		t.Fatal("recycled buffer not reused")
	}
	hits, misses, puts := p.Stats()
	if hits != 1 || misses != 1 || puts != 1 {
		t.Fatalf("stats = %d/%d/%d, want 1/1/1", hits, misses, puts)
	}
	if r := p.HitRate(); r != 0.5 {
		t.Fatalf("hit rate = %v", r)
	}
}

func TestOversizedFallsThrough(t *testing.T) {
	p := New()
	n := (4 << 20) + 1
	b := p.Get(n)
	if len(b) != n {
		t.Fatalf("len %d", len(b))
	}
	p.Put(b) // must be a silent drop
	if _, _, puts := p.Stats(); puts != 0 {
		t.Fatal("oversized buffer was pooled")
	}
}

func TestForeignPutIgnored(t *testing.T) {
	p := New()
	p.Put(make([]byte, 700)) // cap 700 is not a class size
	if _, _, puts := p.Stats(); puts != 0 {
		t.Fatal("foreign slice was pooled")
	}
	if b := p.Get(700); len(b) != 700 {
		t.Fatal("Get after foreign Put broken")
	}
}

func TestConcurrentGetPut(t *testing.T) {
	p := New()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				b := p.Get(512 + (g+i)%4096)
				b[0] = byte(i)
				p.Put(b)
			}
		}(g)
	}
	wg.Wait()
}

func BenchmarkGetPut4K(b *testing.B) {
	p := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf := p.Get(4096)
		p.Put(buf)
	}
}
