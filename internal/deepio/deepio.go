// Package deepio models DeepIO (Zhu et al., MASCOTS'18 — the DLFS
// authors' own prior system) as an extension baseline: training data is
// preloaded into a fixed-size RAM buffer on each node and served from
// memory, with RDMA to reach samples resident on other nodes.
//
// The paper's related work states the property this model exists to
// demonstrate: DeepIO "does not support storage disaggregation for remote
// clients. Its performance is also limited by the total available
// memory." While the dataset fits in aggregate RAM, DeepIO is extremely
// fast; once it does not, every non-resident sample goes back to the
// backend parallel file system on every access — the cliff the
// memory-capacity experiment sweeps across.
package deepio

import (
	"errors"
	"fmt"

	"dlfs/internal/cluster"
	"dlfs/internal/dataset"
	"dlfs/internal/directory"
	"dlfs/internal/pfs"
	"dlfs/internal/sim"
)

// Costs models the in-memory data path.
type Costs struct {
	LookupCPU sim.Duration // in-memory index probe
	MemcpyBW  int64        // local memory copy bandwidth, bytes/sec
	RDMASetup sim.Duration // per remote fetch
}

// DefaultCosts: memory-speed serving.
func DefaultCosts() Costs {
	return Costs{LookupCPU: 100, MemcpyBW: 12_000_000_000, RDMASetup: 1200}
}

// FS is a DeepIO instance: per-node RAM buffers over a job, with a
// backend PFS for the samples that did not fit.
type FS struct {
	job     *cluster.Job
	costs   Costs
	backend *pfs.System
	ds      *dataset.Dataset

	resident   []bool   // per sample: preloaded somewhere?
	ownerOf    []uint16 // owning node for resident samples
	data       [][]byte // resident sample contents (index by sample)
	memUsed    []int64
	hits, miss int64
}

// ErrNotFound reports an unknown sample index.
var ErrNotFound = errors.New("deepio: no such sample")

// Mount preloads the dataset into per-node RAM buffers of memPerNode
// bytes each (hash-sharded, like the other systems), in shard order until
// each node's buffer is full. Samples that do not fit stay only on the
// backend PFS.
func Mount(job *cluster.Job, ds *dataset.Dataset, memPerNode int64, backend *pfs.System, costs Costs) (*FS, error) {
	if costs == (Costs{}) {
		costs = DefaultCosts()
	}
	if memPerNode <= 0 {
		return nil, fmt.Errorf("deepio: non-positive memory budget %d", memPerNode)
	}
	n := job.N()
	fs := &FS{
		job:      job,
		costs:    costs,
		backend:  backend,
		ds:       ds,
		resident: make([]bool, ds.Len()),
		ownerOf:  make([]uint16, ds.Len()),
		data:     make([][]byte, ds.Len()),
		memUsed:  make([]int64, n),
	}
	for i := 0; i < ds.Len(); i++ {
		nid := directory.HomeNode(ds.Samples[i].Key(), n)
		size := int64(ds.Samples[i].Size)
		if fs.memUsed[nid]+size > memPerNode {
			continue // does not fit: stays on the PFS
		}
		fs.memUsed[nid] += size
		fs.resident[i] = true
		fs.ownerOf[i] = nid
		fs.data[i] = ds.Content(i)
	}
	return fs, nil
}

// ResidentFraction reports how much of the dataset fit in memory.
func (fs *FS) ResidentFraction() float64 {
	if fs.ds.Len() == 0 {
		return 0
	}
	count := 0
	for _, r := range fs.resident {
		if r {
			count++
		}
	}
	return float64(count) / float64(fs.ds.Len())
}

// Stats reports memory hits and PFS fallbacks.
func (fs *FS) Stats() (hits, misses int64) { return fs.hits, fs.miss }

// ReadSample reads sample idx from clientNode: memory copy (local or via
// RDMA) when resident, a full backend-PFS read when not.
func (fs *FS) ReadSample(p *sim.Proc, clientNode, idx int, buf []byte) (int, error) {
	if idx < 0 || idx >= fs.ds.Len() {
		return 0, fmt.Errorf("%w: %d", ErrNotFound, idx)
	}
	p.Sleep(fs.costs.LookupCPU)
	size := fs.ds.Samples[idx].Size
	n := size
	if len(buf) < n {
		n = len(buf)
	}
	if fs.resident[idx] {
		fs.hits++
		owner := int(fs.ownerOf[idx])
		if owner != clientNode {
			p.Sleep(fs.costs.RDMASetup)
			fs.job.Network().RDMARead(p, clientNode, owner, int64(n))
		}
		if fs.costs.MemcpyBW > 0 {
			fs.job.Node(clientNode).Compute(p, sim.Duration(int64(n)*1e9/fs.costs.MemcpyBW))
		}
		copy(buf[:n], fs.data[idx])
		return n, nil
	}
	// Memory exhausted for this sample: back to the parallel file system.
	fs.miss++
	if fs.backend != nil {
		fs.backend.ReadFile(p, int64(size))
	}
	if n == size {
		fs.ds.FillContent(idx, buf[:n])
	} else {
		tmp := fs.ds.Content(idx)
		copy(buf[:n], tmp)
	}
	return n, nil
}
