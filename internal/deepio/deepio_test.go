package deepio

import (
	"errors"
	"testing"

	"dlfs/internal/cluster"
	"dlfs/internal/dataset"
	"dlfs/internal/pfs"
	"dlfs/internal/sim"
)

func setup(t *testing.T, n, size int, memPerNode int64) (*FS, *dataset.Dataset, *sim.Engine) {
	t.Helper()
	e := sim.NewEngine()
	job := cluster.NewJob(e, 4, cluster.DefaultNodeSpec())
	backend := pfs.New(e, pfs.DefaultSpec())
	ds := dataset.Generate(dataset.Config{Label: "dio", Seed: 6, NumSamples: n, Dist: dataset.Fixed(size)})
	fs, err := Mount(job, ds, memPerNode, backend, Costs{})
	if err != nil {
		t.Fatal(err)
	}
	return fs, ds, e
}

func TestAllResidentWhenMemorySuffices(t *testing.T) {
	fs, ds, e := setup(t, 100, 1000, 1<<20)
	if fs.ResidentFraction() != 1.0 {
		t.Fatalf("resident %.2f, want 1.0", fs.ResidentFraction())
	}
	e.Go("c", func(p *sim.Proc) {
		buf := make([]byte, 1000)
		for i := 0; i < ds.Len(); i++ {
			if _, err := fs.ReadSample(p, 0, i, buf); err != nil {
				t.Error(err)
				return
			}
			if dataset.ChecksumBytes(buf) != ds.Checksum(i) {
				t.Errorf("sample %d corrupt from memory", i)
			}
		}
	})
	e.RunAll()
	hits, miss := fs.Stats()
	if hits != 100 || miss != 0 {
		t.Fatalf("hits=%d miss=%d", hits, miss)
	}
}

func TestOverflowFallsBackToPFS(t *testing.T) {
	// 100 × 1000B across 4 nodes = ~25KB/node; budget 10KB → ~40% resident.
	fs, ds, e := setup(t, 100, 1000, 10_000)
	rf := fs.ResidentFraction()
	if rf < 0.2 || rf > 0.6 {
		t.Fatalf("resident %.2f, want partial", rf)
	}
	e.Go("c", func(p *sim.Proc) {
		buf := make([]byte, 1000)
		for i := 0; i < ds.Len(); i++ {
			if _, err := fs.ReadSample(p, 1, i, buf); err != nil {
				t.Error(err)
				return
			}
			if dataset.ChecksumBytes(buf) != ds.Checksum(i) {
				t.Errorf("sample %d corrupt via fallback", i)
			}
		}
	})
	total := e.RunAll()
	hits, miss := fs.Stats()
	if miss == 0 || hits == 0 {
		t.Fatalf("hits=%d miss=%d, want both", hits, miss)
	}
	// Misses pay the PFS open cost (~200µs each): the run must be slow.
	if total < sim.Time(miss)*200_000 {
		t.Fatalf("run %v cheaper than the PFS floor for %d misses", total, miss)
	}
}

func TestRemoteResidentUsesFabric(t *testing.T) {
	fs, ds, e := setup(t, 40, 2000, 1<<20)
	var local, remote sim.Time
	e.Go("c", func(p *sim.Proc) {
		buf := make([]byte, 2000)
		// Find one sample on node 0 and one elsewhere.
		liIdx, reIdx := -1, -1
		for i := range fs.resident {
			if fs.ownerOf[i] == 0 && liIdx < 0 {
				liIdx = i
			}
			if fs.ownerOf[i] != 0 && reIdx < 0 {
				reIdx = i
			}
		}
		start := p.Now()
		fs.ReadSample(p, 0, liIdx, buf) //nolint:errcheck
		local = p.Now() - start
		start = p.Now()
		fs.ReadSample(p, 0, reIdx, buf) //nolint:errcheck
		remote = p.Now() - start
		_ = ds
	})
	e.RunAll()
	if remote <= local {
		t.Fatalf("remote read (%v) not slower than local (%v)", remote, local)
	}
}

func TestErrors(t *testing.T) {
	fs, _, e := setup(t, 4, 100, 1<<20)
	e.Go("c", func(p *sim.Proc) {
		if _, err := fs.ReadSample(p, 0, -1, nil); !errors.Is(err, ErrNotFound) {
			t.Errorf("bad index: %v", err)
		}
	})
	e.RunAll()
	job := cluster.NewJob(sim.NewEngine(), 1, cluster.DefaultNodeSpec())
	if _, err := Mount(job, fs.ds, 0, nil, Costs{}); err == nil {
		t.Fatal("zero memory accepted")
	}
}
