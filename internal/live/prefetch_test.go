package live

import (
	"testing"

	"dlfs/internal/dataset"
	"dlfs/internal/metrics"
)

// drainAndVerify consumes a whole epoch and checksums every sample.
func drainAndVerify(t *testing.T, ep *Epoch, ds *dataset.Dataset) int {
	t.Helper()
	items, err := ep.Drain()
	if err != nil {
		t.Fatal(err)
	}
	for _, it := range items {
		if dataset.ChecksumBytes(it.Data) != ds.Checksum(it.Index) {
			t.Fatalf("sample %d corrupt", it.Index)
		}
	}
	return len(items)
}

// TestCrossEpochPrefetchWarmsNextEpoch: with the clairvoyant prefetcher
// on, epoch N's tail fetches epoch N+1's units ahead of time, so the
// second epoch is served from the lookahead store with zero wire reads.
func TestCrossEpochPrefetchWarmsNextEpoch(t *testing.T) {
	addrs := startTargets(t, 2)
	ds := testDS(80, 2000)
	fs, err := Mount(addrs, ds, Config{
		ChunkSize:          8 << 10,
		CacheBytes:         1 << 20,
		CrossEpochPrefetch: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close() //nolint:errcheck

	ep1, err := fs.Sequence(1)
	if err != nil {
		t.Fatal(err)
	}
	if n := drainAndVerify(t, ep1, ds); n != ds.Len() {
		t.Fatalf("epoch 1 delivered %d of %d", n, ds.Len())
	}
	fs.WaitPrefetch()
	cold := fs.Pipeline().Snapshot()
	if cold.PrefetchedUnits == 0 || cold.PrefetchedBytes == 0 {
		t.Fatalf("no lookahead happened: %+v", cold)
	}
	if cold.PrefetchHitUnits != 0 {
		t.Fatalf("store hits before any warm epoch: %d", cold.PrefetchHitUnits)
	}

	// The default prediction is seed+1; epoch 2 must come entirely from
	// the store (world=1: the slice is the full unit set, so even the
	// seed only affects order, not membership).
	ep2, err := fs.Sequence(2)
	if err != nil {
		t.Fatal(err)
	}
	if n := drainAndVerify(t, ep2, ds); n != ds.Len() {
		t.Fatalf("epoch 2 delivered %d of %d", n, ds.Len())
	}
	warm := fs.Pipeline().Snapshot()
	if warm.PrefetchHitUnits == 0 {
		t.Fatal("warm epoch never hit the lookahead store")
	}
	if got := warm.WireReads - cold.WireReads; got != 0 {
		t.Fatalf("warm epoch still issued %d wire reads", got)
	}
	if warm.PrefetchHitBytes != cold.PrefetchedBytes {
		t.Fatalf("hit bytes %d != prefetched bytes %d", warm.PrefetchHitBytes, cold.PrefetchedBytes)
	}
	if cov := warm.PrefetchCoverage(); cov <= 0 {
		t.Fatalf("coverage %f", cov)
	}
}

// TestCrossEpochPrefetchSlices: on a sliced (cluster-shaped) sequence
// the prediction must match the next epoch's slice for the same rank —
// hits only make sense if the shuffle derivation is identical.
func TestCrossEpochPrefetchSlices(t *testing.T) {
	addrs := startTargets(t, 2)
	ds := testDS(120, 1500)
	fs, err := Mount(addrs, ds, Config{
		ChunkSize:          8 << 10,
		CacheBytes:         1 << 20,
		CrossEpochPrefetch: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close() //nolint:errcheck

	ep1, err := fs.SequenceSlice(10, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	drainAndVerify(t, ep1, ds)
	fs.WaitPrefetch()
	before := fs.Pipeline().Snapshot()
	if before.PrefetchedUnits == 0 {
		t.Fatal("no lookahead on the sliced epoch")
	}
	ep2, err := fs.SequenceSlice(11, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	drainAndVerify(t, ep2, ds)
	after := fs.Pipeline().Snapshot()
	if after.PrefetchHitUnits == 0 {
		t.Fatal("sliced warm epoch never hit the store")
	}
	if after.PrefetchHitUnits != before.PrefetchedUnits {
		t.Fatalf("hits %d != prefetched %d (prediction diverged from the real slice)",
			after.PrefetchHitUnits, before.PrefetchedUnits)
	}
}

// TestPrefetchDisabledByNegativeBudget: the canonical -1 budget turns
// the feature off even with CrossEpochPrefetch set.
func TestPrefetchDisabledByNegativeBudget(t *testing.T) {
	addrs := startTargets(t, 1)
	ds := testDS(20, 1000)
	fs, err := Mount(addrs, ds, Config{CrossEpochPrefetch: true, PrefetchBudgetBytes: -7})
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close() //nolint:errcheck
	if fs.prefetch != nil {
		t.Fatal("negative budget must disable the lookahead store")
	}
	ep, err := fs.Sequence(1)
	if err != nil {
		t.Fatal(err)
	}
	drainAndVerify(t, ep, ds)
	fs.WaitPrefetch()
	if got := fs.Pipeline().Snapshot().PrefetchedUnits; got != 0 {
		t.Fatalf("prefetched %d units with the store disabled", got)
	}
}

// TestPrefetchStoreBudget exercises the store in isolation: FIFO
// eviction under pressure, consume-once take semantics, and the
// resident-bytes invariant.
func TestPrefetchStoreBudget(t *testing.T) {
	pipe := &metrics.Pipeline{}
	var freed int
	s := newPrefetchStore(100, pipe, func(b []byte) { freed += len(b) })

	k := func(i int) unitKey { return unitKey{node: 0, offset: int64(i * 100), length: 40} }
	s.put(k(1), pfEntry{data: make([]byte, 40)})
	s.put(k(2), pfEntry{data: make([]byte, 40)})
	if got := s.residentBytes(); got != 80 {
		t.Fatalf("resident %d, want 80", got)
	}
	// Third insert exceeds the budget: the oldest entry is evicted.
	s.put(k(3), pfEntry{data: make([]byte, 40)})
	if got := s.residentBytes(); got != 80 {
		t.Fatalf("resident %d after eviction, want 80", got)
	}
	if pipe.PrefetchEvictions.Load() != 1 || freed != 40 {
		t.Fatalf("evictions=%d freed=%d", pipe.PrefetchEvictions.Load(), freed)
	}
	if _, ok := s.take(k(1)); ok {
		t.Fatal("evicted entry still resident")
	}
	// take consumes: the second take misses, and the bytes are released
	// from the budget.
	if _, ok := s.take(k(2)); !ok {
		t.Fatal("entry 2 missing")
	}
	if _, ok := s.take(k(2)); ok {
		t.Fatal("take must consume the entry")
	}
	if got := s.residentBytes(); got != 40 {
		t.Fatalf("resident %d after takes, want 40", got)
	}
	// A duplicate put keeps the original and frees the newcomer.
	freed = 0
	s.put(k(3), pfEntry{data: make([]byte, 40)})
	if freed != 40 {
		t.Fatal("duplicate put must free the new buffer")
	}
	// An entry larger than the whole budget is refused outright.
	freed = 0
	s.put(unitKey{node: 9}, pfEntry{data: make([]byte, 200)})
	if freed != 200 {
		t.Fatal("over-budget put must free the buffer")
	}
	s.drain()
	if got := s.residentBytes(); got != 0 {
		t.Fatalf("resident %d after drain", got)
	}
}

// TestPoolHitRateWarmEpoch is the BENCH_5 pool_hit_rate:0 regression
// test: a consumer that recycles its batches must see a nonzero pool
// hit rate on the next epoch, and Stats must surface it in the
// pipeline snapshot (the bench reads exactly that field).
func TestPoolHitRateWarmEpoch(t *testing.T) {
	addrs := startTargets(t, 2)
	ds := testDS(60, 2000)
	fs, err := Mount(addrs, ds, Config{ChunkSize: 8 << 10, CacheBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close() //nolint:errcheck

	for _, seed := range []int64{1, 2} {
		ep, err := fs.Sequence(seed)
		if err != nil {
			t.Fatal(err)
		}
		for {
			items, ok, err := ep.NextBatch()
			if err != nil {
				t.Fatal(err)
			}
			for _, it := range items {
				if dataset.ChecksumBytes(it.Data) != ds.Checksum(it.Index) {
					t.Fatalf("sample %d corrupt", it.Index)
				}
			}
			fs.RecycleItems(items)
			if !ok {
				break
			}
		}
	}
	pl := fs.Stats().Pipeline
	if pl.PoolHits == 0 {
		t.Fatalf("warm epoch reports zero pool hits: %+v", pl)
	}
	if rate := pl.PoolHitRate(); rate <= 0 {
		t.Fatalf("pool hit rate %f, want > 0", rate)
	}
}
