package live

import (
	"testing"
	"time"

	"dlfs/internal/dataset"
)

// readAllVerify reads every sample through ReadSample and checksums it.
func readAllVerify(t *testing.T, fs *FS, ds *dataset.Dataset) {
	t.Helper()
	for i := 0; i < ds.Len(); i++ {
		got, err := fs.ReadSample(i)
		if err != nil {
			t.Fatalf("rank %d sample %d: %v", fs.Rank(), i, err)
		}
		if dataset.ChecksumBytes(got) != ds.Checksum(i) {
			t.Fatalf("rank %d sample %d corrupt", fs.Rank(), i)
		}
		fs.Recycle(got)
	}
}

// TestClusterPeerCacheOncePerCluster is the FanStore acceptance test:
// with the cooperative cache on, every rank reads the full dataset
// through ReadSample, yet each sample crosses the storage-target wire
// exactly once cluster-wide — the owner pulls it, everyone else fetches
// it from the owner's cache over the peer fabric.
func TestClusterPeerCacheOncePerCluster(t *testing.T) {
	const world = 3
	addrs := startTargets(t, world)
	caddr := startCoord(t, world)
	ds := testDS(90, 2000)
	cfg := Config{
		ChunkSize:      8 << 10,
		CacheBytes:     1 << 20,
		ReadCacheBytes: 32 << 20, // hold the whole dataset: no evictions
		PeerCache:      true,
	}
	fss := mountCluster(t, caddr, addrs, ds, cfg)

	var total int64
	for i := 0; i < ds.Len(); i++ {
		total += int64(len(ds.Content(i)))
	}

	for _, fs := range fss {
		if fs.Stats().PeerAddr == "" {
			t.Fatalf("rank %d has no peer service address", fs.Rank())
		}
		readAllVerify(t, fs, ds)
	}

	var originBytes, peerHits, peerServed, fallbacks int64
	for _, fs := range fss {
		pl := fs.Stats().Pipeline
		originBytes += pl.OriginBytes
		peerHits += pl.PeerHits
		peerServed += pl.PeerServed
		fallbacks += pl.PeerFallbacks
	}
	if fallbacks != 0 {
		t.Fatalf("healthy cluster recorded %d peer fallbacks", fallbacks)
	}
	// Once per cluster: total origin traffic equals the dataset size, not
	// world× it.
	if originBytes != total {
		t.Fatalf("origin bytes %d, want exactly %d (once per cluster; %d would be once per rank)",
			originBytes, total, total*int64(world))
	}
	// Every non-owned first read was served by a peer.
	wantPeer := int64(ds.Len() * (world - 1))
	if peerHits != wantPeer || peerServed != wantPeer {
		t.Fatalf("peer hits=%d served=%d, want %d", peerHits, peerServed, wantPeer)
	}
	// Per-rank origin traffic shrank to ~1/world of the dataset (exactly
	// its owned shard).
	for _, fs := range fss {
		pl := fs.Stats().Pipeline
		if pl.OriginBytes >= total {
			t.Fatalf("rank %d origin bytes %d did not shrink below the dataset size %d",
				fs.Rank(), pl.OriginBytes, total)
		}
	}
}

// TestChaosPeerKilledMidFetch kills the owning peer midway through a
// stream of remote reads: every read after the kill must still succeed
// from the origin target, typed fallbacks must be counted, and the
// whole degraded stretch must finish within a small multiple of
// PeerFetchTimeout — a dead peer degrades, never stalls.
func TestChaosPeerKilledMidFetch(t *testing.T) {
	const world = 2
	addrs := startTargets(t, world)
	caddr := startCoord(t, world)
	ds := testDS(60, 1500)
	cfg := Config{
		ChunkSize:        8 << 10,
		CacheBytes:       1 << 20,
		ReadCacheBytes:   -1, // no local cache: every read exercises the miss path
		PeerCache:        true,
		PeerFetchTimeout: 300 * time.Millisecond,
	}
	fss := mountCluster(t, caddr, addrs, ds, cfg)
	reader, victim := fss[0], fss[1]

	// Samples owned by the victim rank, as seen from the reader.
	var remote []int
	for i := 0; i < ds.Len(); i++ {
		if int(reader.nodeOf[i]) == victim.Rank() {
			remote = append(remote, i)
		}
	}
	if len(remote) < 8 {
		t.Fatalf("only %d victim-owned samples", len(remote))
	}

	// Warm stretch: the victim serves its samples over the peer fabric.
	for _, i := range remote[:4] {
		buf, err := reader.ReadSample(i)
		if err != nil {
			t.Fatal(err)
		}
		reader.Recycle(buf)
	}
	if hits := reader.Stats().Pipeline.PeerHits; hits != 4 {
		t.Fatalf("warm stretch peer hits %d, want 4", hits)
	}

	// Kill the peer service mid-stream (the victim's targets stay up —
	// it is the cache peer that dies, not the storage node).
	victim.peers.close()

	start := time.Now()
	for _, i := range remote[4:] {
		buf, err := reader.ReadSample(i)
		if err != nil {
			t.Fatalf("read after peer death: %v", err)
		}
		if dataset.ChecksumBytes(buf) != ds.Checksum(i) {
			t.Fatalf("sample %d corrupt after fallback", i)
		}
		reader.Recycle(buf)
	}
	elapsed := time.Since(start)

	pl := reader.Stats().Pipeline
	if pl.PeerFallbacks != int64(len(remote)-4) {
		t.Fatalf("fallbacks %d, want %d", pl.PeerFallbacks, len(remote)-4)
	}
	if pl.OriginReads < pl.PeerFallbacks {
		t.Fatalf("origin reads %d < fallbacks %d: fallbacks must hit origin", pl.OriginReads, pl.PeerFallbacks)
	}
	// Each fallback is bounded by one dial deadline; allow generous
	// headroom for slow CI, but far below "stalled".
	if budget := time.Duration(len(remote)) * 4 * cfg.PeerFetchTimeout; elapsed > budget {
		t.Fatalf("degraded stretch took %v (budget %v)", elapsed, budget)
	}
}

// TestClusterPeerCacheOffByDefault: without the knob no peer service is
// hosted and reads go straight to origin.
func TestClusterPeerCacheOffByDefault(t *testing.T) {
	const world = 2
	addrs := startTargets(t, world)
	caddr := startCoord(t, world)
	ds := testDS(30, 1000)
	fss := mountCluster(t, caddr, addrs, ds, Config{})
	for _, fs := range fss {
		if fs.peers != nil || fs.Stats().PeerAddr != "" {
			t.Fatalf("rank %d hosts a peer service without PeerCache", fs.Rank())
		}
	}
	readAllVerify(t, fss[0], ds)
	pl := fss[0].Stats().Pipeline
	if pl.PeerHits != 0 || pl.PeerFallbacks != 0 {
		t.Fatalf("peer counters moved with the cache off: %+v", pl)
	}
	if pl.OriginReads != int64(ds.Len()) {
		t.Fatalf("origin reads %d, want %d", pl.OriginReads, ds.Len())
	}
}
