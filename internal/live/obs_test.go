package live

import (
	"testing"

	"dlfs/internal/dataset"
	"dlfs/internal/trace"
)

// TestReadSampleHitPathAllocs pins the allocator behaviour of the warm
// hit path: with observability off (the default) a cached ReadSample
// costs at most one allocation, and turning stage histograms on adds
// none — the histogram write is two atomic adds, and the only new work
// is the pair of clock reads.
func TestReadSampleHitPathAllocs(t *testing.T) {
	for _, tc := range []struct {
		name string
		hist bool
		max  float64
	}{
		{"disabled", false, 1},
		{"enabled", true, 1},
	} {
		t.Run(tc.name, func(t *testing.T) {
			addrs := startTargets(t, 1)
			ds := testDS(32, 4<<10)
			fs, err := Mount(addrs, ds, Config{StageHistograms: tc.hist})
			if err != nil {
				t.Fatal(err)
			}
			defer fs.Close() //nolint:errcheck
			for i := 0; i < ds.Len(); i++ {
				got, err := fs.ReadSample(i)
				if err != nil {
					t.Fatal(err)
				}
				fs.Recycle(got)
			}
			i := 0
			allocs := testing.AllocsPerRun(200, func() {
				got, err := fs.ReadSample(i % ds.Len())
				if err != nil {
					t.Fatal(err)
				}
				fs.Recycle(got)
				i++
			})
			if fs.CacheHits() == 0 {
				t.Fatal("measured loop never hit the cache")
			}
			if allocs > tc.max {
				t.Fatalf("hit path: %.1f allocs/op, want <= %.0f", allocs, tc.max)
			}
			if tc.hist {
				st := fs.Stats()
				if st.Pipeline.Stages == nil || st.Pipeline.Stages.Read.Count == 0 {
					t.Fatal("histograms enabled but read stage recorded nothing")
				}
			}
		})
	}
}

// TestLiveWallTracePairing runs a real epoch with the wall recorder
// attached and checks the event stream tells a coherent story: every
// posted fetch unit completes, every emitted sample and freed unit
// references a completed unit, and the per-unit timeline is ordered
// post <= complete <= emit <= free.
func TestLiveWallTracePairing(t *testing.T) {
	addrs := startTargets(t, 2)
	const samples = 150
	ds := testDS(samples, 2000)
	rec := trace.NewWall(1 << 16)
	fs, err := Mount(addrs, ds, Config{ChunkSize: 16 << 10, Trace: rec, StageHistograms: true})
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close() //nolint:errcheck
	ep, err := fs.Sequence(5)
	if err != nil {
		t.Fatal(err)
	}
	items, err := ep.Drain()
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != samples {
		t.Fatalf("delivered %d of %d", len(items), samples)
	}
	for _, it := range items {
		if dataset.ChecksumBytes(it.Data) != ds.Checksum(it.Index) {
			t.Fatalf("sample %d corrupt with tracing on", it.Index)
		}
	}
	if rec.Dropped() != 0 {
		t.Fatalf("%d events dropped under the bound", rec.Dropped())
	}

	type unitTrace struct {
		post, complete, lastEmit, free int64
		posted, completed, freed       bool
		emits                          int
	}
	units := map[int]*unitTrace{}
	get := func(seq int) *unitTrace {
		u := units[seq]
		if u == nil {
			u = &unitTrace{}
			units[seq] = u
		}
		return u
	}
	totalEmits := 0
	for _, ev := range rec.Events() {
		if ev.Nanos < 0 {
			t.Fatalf("negative event offset %d", ev.Nanos)
		}
		u := get(ev.Unit)
		switch ev.Kind {
		case trace.KindPost:
			if u.posted {
				t.Fatalf("unit %d posted twice", ev.Unit)
			}
			u.posted, u.post = true, ev.Nanos
			if ev.Bytes <= 0 {
				t.Fatalf("unit %d posted with %d bytes", ev.Unit, ev.Bytes)
			}
		case trace.KindComplete:
			if u.completed {
				t.Fatalf("unit %d completed twice", ev.Unit)
			}
			u.completed, u.complete = true, ev.Nanos
		case trace.KindEmit:
			u.emits++
			totalEmits++
			if ev.Nanos > u.lastEmit {
				u.lastEmit = ev.Nanos
			}
		case trace.KindFree:
			if u.freed {
				t.Fatalf("unit %d freed twice", ev.Unit)
			}
			u.freed, u.free = true, ev.Nanos
		}
	}
	if len(units) == 0 {
		t.Fatal("no units traced")
	}
	if totalEmits != samples {
		t.Fatalf("traced %d emits for %d samples", totalEmits, samples)
	}
	for seq, u := range units {
		if !u.posted || !u.completed {
			t.Fatalf("unit %d: posted=%v completed=%v", seq, u.posted, u.completed)
		}
		if !u.freed {
			t.Fatalf("unit %d never freed", seq)
		}
		if u.emits == 0 {
			t.Fatalf("unit %d emitted no samples", seq)
		}
		if u.complete < u.post {
			t.Fatalf("unit %d completed at %d before post at %d", seq, u.complete, u.post)
		}
		if u.lastEmit < u.complete {
			t.Fatalf("unit %d emitted at %d before completion at %d", seq, u.lastEmit, u.complete)
		}
		if u.free < u.lastEmit {
			t.Fatalf("unit %d freed at %d before last emit at %d", seq, u.free, u.lastEmit)
		}
	}
	// The summary sees the same pairing.
	sum := rec.Summarize()
	if sum.Counts[trace.KindPost] != len(units) || sum.Counts[trace.KindComplete] != len(units) {
		t.Fatalf("summary counts %v for %d units", sum.Counts, len(units))
	}
	if sum.FetchMax <= 0 {
		t.Fatal("fetch latency not measured")
	}
}
