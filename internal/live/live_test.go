package live

import (
	"errors"
	"sync"
	"testing"

	"dlfs/internal/blockdev"
	"dlfs/internal/dataset"
	"dlfs/internal/nvmetcp"
)

func startTargets(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		tgt := nvmetcp.NewTarget(blockdev.New(256<<20), 32)
		addr, err := tgt.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { tgt.Close() }) //nolint:errcheck
		addrs[i] = addr
	}
	return addrs
}

func testDS(n, size int) *dataset.Dataset {
	return dataset.Generate(dataset.Config{Label: "live", Seed: 23, NumSamples: n, Dist: dataset.Fixed(size)})
}

func TestMountAndReadSample(t *testing.T) {
	addrs := startTargets(t, 3)
	ds := testDS(60, 2000)
	fs, err := Mount(addrs, ds, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close() //nolint:errcheck
	if fs.Directory().NumSamples() != 60 {
		t.Fatal("directory size")
	}
	for i := 0; i < 60; i++ {
		got, err := fs.ReadSample(i)
		if err != nil {
			t.Fatalf("sample %d: %v", i, err)
		}
		if dataset.ChecksumBytes(got) != ds.Checksum(i) {
			t.Fatalf("sample %d corrupt over live TCP path", i)
		}
	}
}

func TestReadByName(t *testing.T) {
	addrs := startTargets(t, 2)
	ds := testDS(10, 512)
	fs, err := Mount(addrs, ds, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close() //nolint:errcheck
	got, err := fs.ReadName(ds.Samples[4].Name, "class"+string(rune('0'+ds.Samples[4].Class)))
	if err != nil {
		t.Fatal(err)
	}
	if dataset.ChecksumBytes(got) != ds.Checksum(4) {
		t.Fatal("corrupt by-name read")
	}
	if _, err := fs.ReadName("missing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing name: %v", err)
	}
	if _, err := fs.ReadSample(-1); !errors.Is(err, ErrNotFound) {
		t.Fatalf("bad index: %v", err)
	}
}

func TestEpochDeliversEverySampleOnce(t *testing.T) {
	addrs := startTargets(t, 3)
	ds := testDS(300, 3000)
	fs, err := Mount(addrs, ds, Config{ChunkSize: 16 << 10, CacheBytes: 2 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close() //nolint:errcheck
	ep, err := fs.Sequence(7)
	if err != nil {
		t.Fatal(err)
	}
	if ep.Total() != 300 {
		t.Fatalf("total %d", ep.Total())
	}
	items, err := ep.Drain()
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 300 {
		t.Fatalf("delivered %d of 300", len(items))
	}
	seen := make([]bool, 300)
	for _, it := range items {
		if seen[it.Index] {
			t.Fatalf("sample %d delivered twice", it.Index)
		}
		seen[it.Index] = true
		if dataset.ChecksumBytes(it.Data) != ds.Checksum(it.Index) {
			t.Fatalf("sample %d corrupt in epoch", it.Index)
		}
	}
}

func TestEpochOrderIsShuffled(t *testing.T) {
	addrs := startTargets(t, 2)
	ds := testDS(400, 600)
	fs, err := Mount(addrs, ds, Config{ChunkSize: 8 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close() //nolint:errcheck
	ep, _ := fs.Sequence(3)
	items, err := ep.Drain()
	if err != nil {
		t.Fatal(err)
	}
	fixed := 0
	for i, it := range items {
		if it.Index == i {
			fixed++
		}
	}
	if fixed > len(items)/5 {
		t.Fatalf("%d/%d fixed points: emission not shuffled", fixed, len(items))
	}
}

func TestBatchSizes(t *testing.T) {
	addrs := startTargets(t, 2)
	ds := testDS(100, 1000)
	fs, err := Mount(addrs, ds, Config{BatchSize: 16, ChunkSize: 8 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close() //nolint:errcheck
	ep, _ := fs.Sequence(1)
	total := 0
	for {
		items, ok, err := ep.NextBatch()
		if err != nil {
			t.Fatal(err)
		}
		if len(items) > 16 {
			t.Fatalf("batch of %d", len(items))
		}
		total += len(items)
		if !ok {
			break
		}
	}
	if total != 100 {
		t.Fatalf("delivered %d", total)
	}
}

func TestMultipleClientsShareTargets(t *testing.T) {
	addrs := startTargets(t, 2)
	ds := testDS(80, 1500)
	var wg sync.WaitGroup
	for c := 0; c < 3; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			fs, err := Mount(addrs, ds, Config{ChunkSize: 8 << 10})
			if err != nil {
				t.Error(err)
				return
			}
			defer fs.Close() //nolint:errcheck
			for i := c; i < 80; i += 3 {
				got, err := fs.ReadSample(i)
				if err != nil || dataset.ChecksumBytes(got) != ds.Checksum(i) {
					t.Errorf("client %d sample %d: err=%v", c, i, err)
					return
				}
			}
		}(c)
	}
	wg.Wait()
}

func TestClosedFS(t *testing.T) {
	addrs := startTargets(t, 1)
	ds := testDS(4, 100)
	fs, err := Mount(addrs, ds, Config{})
	if err != nil {
		t.Fatal(err)
	}
	fs.Close() //nolint:errcheck
	if _, err := fs.ReadSample(0); !errors.Is(err, ErrClosed) {
		t.Fatalf("read after close: %v", err)
	}
	if _, err := fs.Sequence(1); !errors.Is(err, ErrClosed) {
		t.Fatalf("sequence after close: %v", err)
	}
	if err := fs.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

func TestMountFailsOnDeadTarget(t *testing.T) {
	ds := testDS(4, 100)
	if _, err := Mount([]string{"127.0.0.1:1"}, ds, Config{}); err == nil {
		t.Fatal("mount to dead target succeeded")
	}
	if _, err := Mount(nil, ds, Config{}); err == nil {
		t.Fatal("mount with no targets succeeded")
	}
}

func TestTinyCacheStillCompletes(t *testing.T) {
	// Cache of one huge page (8 chunks of 256K): fetchers must block on
	// the arena and recycle chunks as batches drain.
	addrs := startTargets(t, 2)
	ds := testDS(500, 2000)
	fs, err := Mount(addrs, ds, Config{CacheBytes: 1, ChunkSize: 256 << 10, Prefetchers: 4, Window: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close() //nolint:errcheck
	ep, _ := fs.Sequence(9)
	items, err := ep.Drain()
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 500 {
		t.Fatalf("delivered %d of 500", len(items))
	}
}

func TestReadCacheHitsAndVBits(t *testing.T) {
	addrs := startTargets(t, 2)
	ds := testDS(20, 4096)
	fs, err := Mount(addrs, ds, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close() //nolint:errcheck
	a, err := fs.ReadSample(5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := fs.ReadSample(5)
	if err != nil {
		t.Fatal(err)
	}
	if fs.CacheHits() != 1 {
		t.Fatalf("cache hits = %d", fs.CacheHits())
	}
	if dataset.ChecksumBytes(a) != dataset.ChecksumBytes(b) || dataset.ChecksumBytes(a) != ds.Checksum(5) {
		t.Fatal("cached read differs from cold read")
	}
	// Caller mutating a returned buffer must not poison the cache.
	b[0] ^= 0xFF
	c, _ := fs.ReadSample(5)
	if dataset.ChecksumBytes(c) != ds.Checksum(5) {
		t.Fatal("cache poisoned by caller mutation")
	}
	// The V bit tracks residency.
	_, ref, _, ok := fs.Directory().Lookup(ds.Samples[5].Key())
	if !ok || !fs.Directory().At(ref).V() {
		t.Fatal("V bit not set for cached sample")
	}
}

func TestReadCacheEvictsAtBudget(t *testing.T) {
	addrs := startTargets(t, 1)
	ds := testDS(10, 4096)
	// Budget of 2 samples.
	fs, err := Mount(addrs, ds, Config{ReadCacheBytes: 8192})
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close() //nolint:errcheck
	for i := 0; i < 5; i++ {
		if _, err := fs.ReadSample(i); err != nil {
			t.Fatal(err)
		}
	}
	// Sample 0 evicted: V clear; sample 4 resident: V set.
	_, ref0, _, _ := fs.Directory().Lookup(ds.Samples[0].Key())
	_, ref4, _, _ := fs.Directory().Lookup(ds.Samples[4].Key())
	if fs.Directory().At(ref0).V() {
		t.Fatal("evicted sample still marked resident")
	}
	if !fs.Directory().At(ref4).V() {
		t.Fatal("recent sample not marked resident")
	}
	if _, err := fs.ReadSample(0); err != nil {
		t.Fatal(err)
	}
	if fs.CacheHits() != 0 {
		t.Fatalf("unexpected hits: %d", fs.CacheHits())
	}
}

func TestReadCacheDisabled(t *testing.T) {
	addrs := startTargets(t, 1)
	ds := testDS(4, 1024)
	fs, err := Mount(addrs, ds, Config{ReadCacheBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close() //nolint:errcheck
	fs.ReadSample(1) //nolint:errcheck
	fs.ReadSample(1) //nolint:errcheck
	if fs.CacheHits() != 0 {
		t.Fatalf("cache active while disabled: %d hits", fs.CacheHits())
	}
}
