package live

import (
	"errors"
	"sync"
	"testing"
	"time"

	"dlfs/internal/coord"
	"dlfs/internal/dataset"
)

// startCoord spins up a coordinator for world ranks.
func startCoord(t *testing.T, world int) string {
	t.Helper()
	srv := coord.NewServer(world, coord.ServerOptions{})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() }) //nolint:errcheck
	return addr
}

// mountCluster runs MountCluster for every rank concurrently (the
// collectives cannot complete otherwise) and fails the test on any
// error.
func mountCluster(t *testing.T, caddr string, addrs []string, ds *dataset.Dataset, cfg Config) []*FS {
	t.Helper()
	world := len(addrs)
	fss := make([]*FS, world)
	errs := make([]error, world)
	var wg sync.WaitGroup
	for r := 0; r < world; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			fss[r], errs[r] = MountCluster(caddr, r, world, addrs, ds, cfg)
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d mount: %v", r, err)
		}
	}
	for r, fs := range fss {
		fs := fs
		_ = r
		t.Cleanup(func() { fs.Close() }) //nolint:errcheck
	}
	return fss
}

// TestClusterMountThreeRanks is the multi-node acceptance test: three
// ranks mount through the TCP coordinator, each uploading and indexing
// only its shard; after the allgather every rank must hold an identical
// full directory, and the per-rank epoch slices must together consume
// every sample exactly once with content matching the single-node epoch.
func TestClusterMountThreeRanks(t *testing.T) {
	const world = 3
	addrs := startTargets(t, world)
	caddr := startCoord(t, world)
	ds := testDS(240, 3000)
	cfg := Config{ChunkSize: 16 << 10, CacheBytes: 2 << 20}
	fss := mountCluster(t, caddr, addrs, ds, cfg)

	// Identical replicas on every rank.
	fp := fss[0].Directory().Fingerprint()
	for r, fs := range fss {
		if fs.Directory().NumSamples() != ds.Len() {
			t.Fatalf("rank %d directory has %d samples", r, fs.Directory().NumSamples())
		}
		if got := fs.Directory().Fingerprint(); got != fp {
			t.Fatalf("rank %d fingerprint %#x != rank 0 %#x", r, got, fp)
		}
		if fs.Rank() != r || fs.World() != world {
			t.Fatalf("rank %d reports %d/%d", r, fs.Rank(), fs.World())
		}
	}

	// Each rank indexed only its shard, and the shards sum to the whole.
	local := int64(0)
	for r, fs := range fss {
		ms := fs.MountStats()
		if ms.LocalEntries <= 0 || ms.LocalEntries >= int64(ds.Len()) {
			t.Fatalf("rank %d indexed %d entries", r, ms.LocalEntries)
		}
		if ms.TotalEntries != int64(ds.Len()) {
			t.Fatalf("rank %d assembled %d entries", r, ms.TotalEntries)
		}
		if ms.BlobBytesOut != ms.LocalEntries*16 {
			t.Fatalf("rank %d blob bytes %d for %d entries", r, ms.BlobBytesOut, ms.LocalEntries)
		}
		if ms.Barriers != 2 {
			t.Fatalf("rank %d completed %d barriers", r, ms.Barriers)
		}
		local += ms.LocalEntries
	}
	if local != int64(ds.Len()) {
		t.Fatalf("shards sum to %d of %d entries", local, ds.Len())
	}

	// Per-rank slices of one seeded epoch: disjoint, exactly-once, and
	// their union matches the full single-node epoch (same seed) by
	// checksum.
	const seed = 99
	type res struct {
		counts map[int]int
		sums   map[int]uint32
		err    error
		total  int
	}
	results := make([]res, world)
	var wg sync.WaitGroup
	for r, fs := range fss {
		wg.Add(1)
		go func(r int, fs *FS) {
			defer wg.Done()
			ep, err := fs.ClusterSequence(seed)
			if err != nil {
				results[r].err = err
				return
			}
			results[r].total = ep.Total()
			items, err := ep.Drain()
			if err != nil {
				results[r].err = err
				return
			}
			counts := make(map[int]int)
			sums := make(map[int]uint32)
			for _, it := range items {
				counts[it.Index]++
				sums[it.Index] = dataset.ChecksumBytes(it.Data)
			}
			results[r].counts, results[r].sums = counts, sums
		}(r, fs)
	}
	wg.Wait()

	union := make(map[int]int)
	for r := range results {
		if results[r].err != nil {
			t.Fatalf("rank %d epoch: %v", r, results[r].err)
		}
		if len(results[r].counts) == 0 {
			t.Fatalf("rank %d delivered nothing", r)
		}
		if got := 0; true {
			for _, c := range results[r].counts {
				got += c
			}
			if got != results[r].total {
				t.Fatalf("rank %d delivered %d of planned %d", r, got, results[r].total)
			}
		}
		for idx, c := range results[r].counts {
			union[idx] += c
			if sum := results[r].sums[idx]; sum != ds.Checksum(idx) {
				t.Fatalf("rank %d sample %d corrupt", r, idx)
			}
		}
	}
	if len(union) != ds.Len() {
		t.Fatalf("union covers %d of %d samples", len(union), ds.Len())
	}
	for idx, c := range union {
		if c != 1 {
			t.Fatalf("sample %d delivered %d times across ranks", idx, c)
		}
	}
}

// TestSequenceSliceMatchesFullEpoch checks the slice algebra on a
// single-node mount: the union of world slices equals the full epoch's
// sample set, and slices are pairwise disjoint.
func TestSequenceSliceMatchesFullEpoch(t *testing.T) {
	addrs := startTargets(t, 2)
	ds := testDS(150, 2500)
	fs, err := Mount(addrs, ds, Config{ChunkSize: 8 << 10, CacheBytes: 2 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close() //nolint:errcheck

	const seed, world = 7, 3
	seen := make(map[int]int)
	totals := 0
	for r := 0; r < world; r++ {
		ep, err := fs.SequenceSlice(seed, r, world)
		if err != nil {
			t.Fatal(err)
		}
		totals += ep.Total()
		items, err := ep.Drain()
		if err != nil {
			t.Fatal(err)
		}
		fs.RecycleItems(items)
		for _, it := range items {
			seen[it.Index]++
		}
	}
	if totals != ds.Len() {
		t.Fatalf("slice totals sum to %d of %d", totals, ds.Len())
	}
	if len(seen) != ds.Len() {
		t.Fatalf("slices cover %d of %d samples", len(seen), ds.Len())
	}
	for idx, c := range seen {
		if c != 1 {
			t.Fatalf("sample %d appears %d times", idx, c)
		}
	}
	if _, err := fs.SequenceSlice(seed, 3, 3); err == nil {
		t.Fatal("out-of-range rank accepted")
	}
	if _, err := fs.SequenceSlice(seed, 0, 0); err == nil {
		t.Fatal("zero world accepted")
	}
}

// TestClusterMountWorldMismatch checks argument validation.
func TestClusterMountWorldMismatch(t *testing.T) {
	addrs := startTargets(t, 2)
	caddr := startCoord(t, 3)
	ds := testDS(10, 512)
	if _, err := MountCluster(caddr, 0, 3, addrs, ds, Config{}); err == nil {
		t.Fatal("world/targets mismatch accepted")
	}
	if _, err := MountCluster(caddr, 2, 2, addrs, ds, Config{}); err == nil {
		t.Fatal("out-of-range rank accepted")
	}
}

// TestClusterMountPeerClosesEarly: a rank that joins the coordinator
// and then disappears before contributing its partition must not wedge
// the surviving ranks — they get a typed peer-lost error quickly.
func TestClusterMountPeerClosesEarly(t *testing.T) {
	const world = 3
	addrs := startTargets(t, world)
	caddr := startCoord(t, world)
	ds := testDS(60, 1000)
	cfg := Config{CoordWaitTimeout: 10 * time.Second}

	// Rank 2 joins and immediately leaves while ranks 0 and 1 are inside
	// the mount-start barrier.
	ghost, err := coord.Join(caddr, 2, world, coord.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			var fs *FS
			fs, errs[r] = MountCluster(caddr, r, world, addrs, ds, cfg)
			if fs != nil {
				fs.Close() //nolint:errcheck
			}
		}(r)
	}
	time.Sleep(100 * time.Millisecond)
	ghost.Close() //nolint:errcheck

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("survivors wedged after peer departure")
	}
	for r := 0; r < 2; r++ {
		if !errors.Is(errs[r], coord.ErrPeerLost) {
			t.Fatalf("rank %d: want peer-lost, got %v", r, errs[r])
		}
	}
}
