package live

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"dlfs/internal/metrics"
	"dlfs/internal/nvmetcp"
)

// ErrDegraded marks reads refused or skipped because a target's circuit
// breaker is open. Match with errors.Is.
var ErrDegraded = errors.New("live: target degraded")

// DegradedError reports an epoch that completed in degraded mode:
// every sample on a healthy target was delivered and verified, but the
// listed nodes were down and their samples were skipped.
type DegradedError struct {
	Samples int   // samples skipped
	Nodes   []int // target indices that were down
}

func (e *DegradedError) Error() string {
	return fmt.Sprintf("live: epoch degraded: %d samples skipped on targets %v", e.Samples, e.Nodes)
}

// Unwrap lets errors.Is(err, ErrDegraded) match.
func (e *DegradedError) Unwrap() error { return ErrDegraded }

// Breaker states.
const (
	breakerClosed = iota
	breakerOpen
	breakerHalfOpen
)

// breaker is a per-target circuit breaker: after threshold consecutive
// failures it opens and refuses traffic; once the cooldown elapses it
// half-opens to let exactly one probe through, closing again on success
// and re-opening on failure.
type breaker struct {
	threshold int
	cooldown  time.Duration
	counters  *metrics.Resilience

	mu       sync.Mutex
	state    int
	fails    int // consecutive failures
	openedAt time.Time
}

func newBreaker(threshold int, cooldown time.Duration, counters *metrics.Resilience) *breaker {
	return &breaker{threshold: threshold, cooldown: cooldown, counters: counters}
}

// Allow reports whether a request may proceed, transitioning open →
// half-open when the cooldown has elapsed (the caller becomes the
// probe).
func (b *breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if time.Since(b.openedAt) >= b.cooldown {
			b.state = breakerHalfOpen
			b.counters.BreakerProbes.Add(1)
			return true
		}
		return false
	default: // half-open: one probe already in flight
		return false
	}
}

// Success records a completed request, closing the breaker.
func (b *breaker) Success() {
	b.mu.Lock()
	b.fails = 0
	b.state = breakerClosed
	b.mu.Unlock()
}

// Failure records a failed request, tripping the breaker when the
// consecutive-failure threshold is reached or a half-open probe fails.
func (b *breaker) Failure() {
	b.mu.Lock()
	b.fails++
	trip := b.state == breakerHalfOpen || (b.state == breakerClosed && b.fails >= b.threshold)
	if trip {
		b.state = breakerOpen
		b.openedAt = time.Now()
		b.counters.BreakerTrips.Add(1)
	}
	b.mu.Unlock()
}

// StateName renders the state for stats output.
func (b *breaker) StateName() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// target binds one storage node's queue-pair group to its health state.
type target struct {
	addr string
	qp   *nvmetcp.QPGroup
	brk  *breaker

	// noAssembly latches when the target rejects opReadSamples with
	// statusBadOp (an old-opcode build during a rolling upgrade); all
	// later fetches to this target use the vectored chunk path. It is
	// a capability fact, not a health signal — the breaker never sees
	// the downgrade.
	noAssembly atomic.Bool
}

// noteFailure feeds a fetch error into the target's circuit breaker.
// Tenant throttles are exempt: a quota rejection is backpressure from a
// healthy target — like noAssembly, a fact about policy rather than
// health — so it must never accumulate toward opening the breaker and
// cutting a quota-bound tenant off from a working node.
func (tg *target) noteFailure(err error) {
	if errors.Is(err, nvmetcp.ErrThrottled) {
		return
	}
	tg.brk.Failure()
}

// read runs one synchronous read through the breaker.
func (tg *target) read(p []byte, off int64) error {
	if !tg.brk.Allow() {
		return fmt.Errorf("%w: %s circuit open", ErrDegraded, tg.addr)
	}
	if _, err := tg.qp.ReadAt(p, off); err != nil {
		tg.noteFailure(err)
		return err
	}
	tg.brk.Success()
	return nil
}

// TargetHealth is one target's health as reported by Stats.
type TargetHealth struct {
	Addr        string
	State       string // "closed", "open", or "half-open"
	ConsecFails int
}

// Stats is a point-in-time view of the client's resilience and
// pipeline state.
type Stats struct {
	CacheHits   int64
	QueuePairs  int    // connections per target
	CacheShards int    // ReadSample cache shards (0 when disabled)
	PeerAddr    string // this rank's peer-cache service address ("" when off)
	Pipeline    metrics.PipelineSnapshot
	Resilience  metrics.ResilienceSnapshot
	Targets     []TargetHealth
}

// Stats reports resilience counters, per-stage pipeline counters, and
// per-target breaker states.
func (fs *FS) Stats() Stats {
	st := Stats{
		CacheHits:  fs.CacheHits(),
		QueuePairs: fs.cfg.QueuePairs,
		Pipeline:   fs.pipe.Snapshot(),
		Resilience: fs.counters.Snapshot(),
	}
	if fs.scache != nil {
		st.CacheShards = fs.scache.numShards()
	}
	if fs.peers != nil {
		st.PeerAddr = fs.peers.addr
	}
	if fs.pool != nil {
		hits, misses, _ := fs.pool.Stats()
		st.Pipeline.PoolHits, st.Pipeline.PoolMisses = hits, misses
	}
	for _, tg := range fs.targets {
		tg.brk.mu.Lock()
		fails := tg.brk.fails
		tg.brk.mu.Unlock()
		st.Targets = append(st.Targets, TargetHealth{
			Addr:        tg.addr,
			State:       tg.brk.StateName(),
			ConsecFails: fails,
		})
	}
	return st
}

// Counters exposes the shared resilience counter set (for wiring into
// external reporting).
func (fs *FS) Counters() *metrics.Resilience { return fs.counters }

// degradable reports whether a fetch error should downgrade to a skip in
// degraded mode: breaker-open refusals and exhausted retryable transport
// errors qualify; remote semantic errors (bad offsets, corrupt requests)
// still fail the epoch so real bugs cannot hide behind degradation.
func degradable(err error) bool {
	return errors.Is(err, ErrDegraded) || nvmetcp.IsRetryable(err)
}
