package live

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"dlfs/internal/coord"
	"dlfs/internal/dataset"
	"dlfs/internal/directory"
	"dlfs/internal/hugepage"
	"dlfs/internal/metrics"
	"dlfs/internal/plan"
	"dlfs/internal/sample"
)

// ErrFingerprintMismatch marks a multi-node mount whose assembled
// directory replicas disagree after the allgather. Match with errors.Is;
// the concrete error is a *FingerprintError.
var ErrFingerprintMismatch = errors.New("live: directory fingerprint mismatch across ranks")

// FingerprintError identifies which peer's replica diverged.
type FingerprintError struct {
	Rank   int    // the local rank
	Local  uint64 // this rank's assembled fingerprint
	Peer   int    // first disagreeing peer
	Remote uint64 // that peer's fingerprint
}

func (e *FingerprintError) Error() string {
	return fmt.Sprintf("live: rank %d assembled directory %#x but rank %d has %#x",
		e.Rank, e.Local, e.Peer, e.Remote)
}

// Unwrap lets errors.Is(err, ErrFingerprintMismatch) match.
func (e *FingerprintError) Unwrap() error { return ErrFingerprintMismatch }

// Collective names used by the mount protocol; epochs use
// epochGatherPrefix + seed so repeated mounts over one coordinator never
// collide.
const (
	gatherDirectory   = "dlfs/mount/dir"
	gatherFingerprint = "dlfs/mount/fp"
	gatherPeers       = "dlfs/mount/peers"
	barrierMountStart = "dlfs/mount/start"
	barrierMountDone  = "dlfs/mount/done"
)

// MountCluster is the live multi-node dlfs_mount (paper §III-B2): rank
// joins the coordinator at coordAddr, uploads only its hash-shard of the
// dataset to its own target (addrs[rank]), builds the home-node
// directory partition, and exchanges serialized partitions with the
// other world-1 ranks through a TCP allgather. Every rank then assembles
// the full replicated directory with directory.FromBlobs and asserts —
// via a second allgather of the 64-bit fingerprints — that all replicas
// are identical. world must equal len(addrs): one exported target per
// rank.
//
// The returned FS reads from all targets like a single-node Mount, and
// additionally answers ClusterSequence with this rank's disjoint slice
// of the seeded global epoch order. A peer dying mid-mount surfaces as
// an error matching coord.ErrPeerLost on every survivor; replica
// divergence surfaces as ErrFingerprintMismatch.
func MountCluster(coordAddr string, rank, world int, addrs []string, ds *dataset.Dataset, cfg Config) (*FS, error) {
	cfg = cfg.withDefaults()
	if err := validateCluster(rank, world, addrs); err != nil {
		return nil, err
	}
	cl, err := coord.Join(coordAddr, rank, world, coord.Options{
		DialTimeout: cfg.DialTimeout,
		WaitTimeout: cfg.CoordWaitTimeout,
	})
	if err != nil {
		return nil, fmt.Errorf("live: coordinator: %w", err)
	}
	return mountWithSession(cl, rank, world, addrs, ds, cfg)
}

// MountClusterPeers is MountCluster against a replicated coordinator
// set (dlfsd -coord-peers): peers lists every replica, the client
// discovers the Raft leader via redirects, and a leader dying mid-mount
// is survived by re-resolving with backoff and resubmitting the
// interrupted collective instead of aborting the mount.
func MountClusterPeers(peers []string, rank, world int, addrs []string, ds *dataset.Dataset, cfg Config) (*FS, error) {
	cfg = cfg.withDefaults()
	if err := validateCluster(rank, world, addrs); err != nil {
		return nil, err
	}
	cl, err := coord.JoinCluster(peers, rank, world, coord.Options{
		DialTimeout: cfg.DialTimeout,
		WaitTimeout: cfg.CoordWaitTimeout,
	})
	if err != nil {
		return nil, fmt.Errorf("live: coordinator: %w", err)
	}
	return mountWithSession(cl, rank, world, addrs, ds, cfg)
}

func validateCluster(rank, world int, addrs []string) error {
	if world != len(addrs) {
		return fmt.Errorf("live: world %d but %d targets (one target per rank)", world, len(addrs))
	}
	if rank < 0 || rank >= world {
		return fmt.Errorf("live: rank %d out of range for world %d", rank, world)
	}
	return nil
}

// mountWithSession runs the mount protocol over an established
// control-plane session (classic single coordinator or replica set).
func mountWithSession(cl coord.Session, rank, world int, addrs []string, ds *dataset.Dataset, cfg Config) (*FS, error) {
	mm := &metrics.Mount{}
	if cfg.StageHistograms {
		mm.Hist = &metrics.MountHist{}
	}
	fail := func(err error) (*FS, error) {
		cl.Close() //nolint:errcheck
		return nil, err
	}

	counters := &metrics.Resilience{}
	targets, err := dialTargets(addrs, cfg, counters)
	if err != nil {
		return fail(err)
	}
	failTargets := func(err error) (*FS, error) {
		for _, tg := range targets {
			tg.qp.Close() //nolint:errcheck
		}
		return fail(err)
	}
	if err := timedBarrier(cl, barrierMountStart, mm); err != nil {
		return failTargets(fmt.Errorf("live: mount barrier: %w", err))
	}

	// Index phase: walk the dataset in index order. Every rank computes
	// the full deterministic placement (home node and offset of every
	// sample) but uploads and indexes only its own shard — the paper's
	// "each node builds the AVL tree for the samples it stored".
	istart := time.Now()
	n := world
	part := directory.NewPartition(uint16(rank))
	offs := make([]int64, n)
	placed := make([]plan.Placed, ds.Len())
	nodeOf := make([]uint16, ds.Len())
	keyIdx := make(map[uint64]int, ds.Len())
	for i := 0; i < ds.Len(); i++ {
		key := ds.Samples[i].Key()
		if _, dup := keyIdx[key]; dup {
			return failTargets(fmt.Errorf("live: key collision on sample %d", i))
		}
		keyIdx[key] = i
		nid := directory.HomeNode(key, n)
		size := ds.Samples[i].Size
		if nid == uint16(rank) {
			content := ds.Content(i)
			if _, err := targets[nid].qp.WriteAt(content, offs[nid]); err != nil {
				return failTargets(fmt.Errorf("live: rank %d uploading sample %d: %w", rank, i, err))
			}
			e, err := sample.NewEntry(nid, key, offs[nid], int32(size))
			if err != nil {
				return failTargets(err)
			}
			if err := part.Add(e); err != nil {
				return failTargets(err)
			}
			mm.UploadBytes.Add(int64(size))
		}
		placed[i] = plan.Placed{Sample: i, Offset: offs[nid], Len: int32(size)}
		nodeOf[i] = nid
		offs[nid] += int64(size)
	}
	mm.LocalEntries.Store(int64(part.Len()))
	mm.ObserveIndex(time.Since(istart))

	// Serialize + allgather + assemble: the §III-B2 directory exchange,
	// over real sockets instead of the simulated fabric.
	sstart := time.Now()
	blob := part.Serialize()
	mm.BlobBytesOut.Store(int64(len(blob)))
	mm.ObserveSerialize(time.Since(sstart))

	gstart := time.Now()
	blobs, err := cl.Allgather(gatherDirectory, blob)
	if err != nil {
		return failTargets(fmt.Errorf("live: directory allgather: %w", err))
	}
	mm.ObserveAllgather(time.Since(gstart))
	for r, b := range blobs {
		if r != rank {
			mm.BlobBytesIn.Add(int64(len(b)))
		}
	}

	astart := time.Now()
	dir, err := directory.FromBlobs(blobs)
	if err != nil {
		return failTargets(fmt.Errorf("live: assembling directory: %w", err))
	}
	if dir.NumSamples() != ds.Len() {
		return failTargets(fmt.Errorf("live: assembled directory has %d entries, dataset has %d", dir.NumSamples(), ds.Len()))
	}
	// Cross-check the replicated entries against the local deterministic
	// placement: every sample must resolve to the offset this rank
	// computed, or a peer indexed a different dataset.
	for i := 0; i < ds.Len(); i++ {
		e, _, _, ok := dir.Lookup(ds.Samples[i].Key())
		if !ok || e.NID() != nodeOf[i] || e.Offset() != placed[i].Offset || e.Len() != placed[i].Len {
			return failTargets(fmt.Errorf("live: replicated entry for sample %d disagrees with local placement", i))
		}
	}
	mm.TotalEntries.Store(int64(dir.NumSamples()))
	mm.ObserveAssemble(time.Since(astart))

	// Fingerprint assertion: every rank's assembled replica must hash
	// identically. The exchange reuses the allgather, so the check also
	// covers blob corruption that FromBlobs cannot see.
	fp := dir.Fingerprint()
	var fpw [8]byte
	binary.LittleEndian.PutUint64(fpw[:], fp)
	fps, err := cl.Allgather(gatherFingerprint, fpw[:])
	if err != nil {
		return failTargets(fmt.Errorf("live: fingerprint allgather: %w", err))
	}
	for r, b := range fps {
		if len(b) != 8 {
			return failTargets(fmt.Errorf("live: rank %d sent a %d-byte fingerprint", r, len(b)))
		}
		if got := binary.LittleEndian.Uint64(b); got != fp {
			return failTargets(&FingerprintError{Rank: rank, Local: fp, Peer: r, Remote: got})
		}
	}
	if err := timedBarrier(cl, barrierMountDone, mm); err != nil {
		return failTargets(fmt.Errorf("live: mount barrier: %w", err))
	}

	arena, err := hugepage.NewArena(cfg.CacheBytes, cfg.ChunkSize)
	if err != nil {
		return failTargets(err)
	}
	fs := &FS{
		cfg:      cfg,
		ds:       ds,
		dir:      dir,
		targets:  targets,
		counters: counters,
		pipe:     &metrics.Pipeline{},
		arena:    hugepage.NewBlocking(arena),
		placed:   placed,
		nodeOf:   nodeOf,
		keyIdx:   keyIdx,
		rank:     rank,
		world:    world,
		coord:    cl,
		mstats:   mm,
	}
	fs.finishSetup()
	// Cooperative peer cache: host this rank's sample service and learn
	// every peer's address through one more allgather. PeerCache must be
	// set identically on all ranks or the collective wedges until the
	// coordinator wait timeout.
	if cfg.PeerCache && world > 1 {
		if err := fs.startPeerCache(cl); err != nil {
			fs.Close() //nolint:errcheck
			return nil, fmt.Errorf("live: peer cache: %w", err)
		}
	}
	return fs, nil
}

// timedBarrier runs one coordinator barrier, accounting the wait.
func timedBarrier(cl coord.Session, name string, mm *metrics.Mount) error {
	start := time.Now()
	if err := cl.Barrier(name); err != nil {
		return err
	}
	mm.ObserveBarrier(time.Since(start))
	return nil
}

// Rank reports this client's rank (0 for a single-node Mount).
func (fs *FS) Rank() int { return fs.rank }

// World reports the job size (1 for a single-node Mount).
func (fs *FS) World() int { return fs.world }

// Coordinator exposes the control-plane session of a cluster mount (nil
// for a single-node Mount), for job-level barriers between epochs. It is
// a *coord.Client after MountCluster and a *coord.ClusterClient after
// MountClusterPeers.
func (fs *FS) Coordinator() coord.Session { return fs.coord }

// MountStats reports the mount phase counters. Single-node mounts
// return a zero snapshot.
func (fs *FS) MountStats() metrics.MountSnapshot {
	if fs.mstats == nil {
		return metrics.MountSnapshot{}
	}
	return fs.mstats.Snapshot()
}

// ClusterSequence starts this rank's slice of the seeded global epoch:
// every rank builds the identical shuffled unit order from the shared
// seed (the frontend batching insight of §III-D1 — the access sequence
// is known in advance), then consumes only the units congruent to its
// rank, so the job covers each sample exactly once with no coordination
// traffic during the epoch.
func (fs *FS) ClusterSequence(seed int64) (*Epoch, error) {
	return fs.SequenceSlice(seed, fs.rank, fs.world)
}

// SequenceSlice starts rank's 1/world slice of the seeded epoch order.
// Slices for the same seed are disjoint and their union over all ranks
// is exactly the full dataset. rank/world need not match the mount's
// own cluster shape (a single-node FS can dry-run any slice).
func (fs *FS) SequenceSlice(seed int64, rank, world int) (*Epoch, error) {
	if world <= 0 || rank < 0 || rank >= world {
		return nil, fmt.Errorf("live: bad sequence slice %d/%d", rank, world)
	}
	return fs.sequence(seed, rank, world)
}

// EpochUnits reports how many fetch units one epoch's global order
// contains — the granularity at which a mid-epoch cut (SequenceRange,
// ReshardSequence) can be placed. The count depends only on the
// deterministic placement, never on the seed.
func (fs *FS) EpochUnits() (int, error) {
	units, err := fs.buildUnits()
	if err != nil {
		return 0, err
	}
	return len(units), nil
}

// SequenceRange starts rank's 1/world slice of the units [lo, hi) of the
// seeded global order (hi < 0 means the end). Assignment is
// cut-relative: within the range, unit i goes to the rank with
// (i-lo) ≡ rank (mod world). That is exactly the resharding rule of
// DESIGN.md §13: the prefix [0, cut) was consumed under the old
// membership's assignment, the suffix [cut, M) is repartitioned among
// the survivors, and the union still covers every unit exactly once.
func (fs *FS) SequenceRange(seed int64, rank, world, lo, hi int) (*Epoch, error) {
	if world <= 0 || rank < 0 || rank >= world {
		return nil, fmt.Errorf("live: bad sequence slice %d/%d", rank, world)
	}
	if lo < 0 {
		return nil, fmt.Errorf("live: negative sequence cut %d", lo)
	}
	return fs.sequenceRange(seed, rank, world, lo, hi)
}

// ReshardSequence resumes the epoch after an elastic membership change:
// it asks the replicated coordinator for the post-change membership,
// recomputes this rank's position among the sorted survivors, and
// consumes its share of the unconsumed suffix [cut, M) of the seeded
// global order. The mount must have been created with
// MountClusterPeers; cut is the unit index the job agreed to stop the
// old assignment at (normally ClusterStatus.DepartCut).
func (fs *FS) ReshardSequence(seed int64, cut int) (*Epoch, error) {
	cc, ok := fs.coord.(*coord.ClusterClient)
	if !ok {
		return nil, errors.New("live: ReshardSequence needs a replicated coordinator (MountClusterPeers)")
	}
	st, err := cc.Status()
	if err != nil {
		return nil, fmt.Errorf("live: reshard status: %w", err)
	}
	if st.Failed != "" {
		return nil, fmt.Errorf("live: reshard: job poisoned: %s", st.Failed)
	}
	newRank := -1
	for i, r := range st.Members {
		if r == fs.rank {
			newRank = i
			break
		}
	}
	if newRank < 0 {
		return nil, fmt.Errorf("live: rank %d is no longer a member (members %v)", fs.rank, st.Members)
	}
	if cut < 0 {
		cut = int(st.DepartCut)
	}
	return fs.sequenceRange(seed, newRank, len(st.Members), cut, -1)
}
