package live

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"time"

	"dlfs/internal/blockdev"
	"dlfs/internal/chaos"
	"dlfs/internal/nvmetcp"
)

// ckptState builds a deterministic pseudo-random state blob so torn or
// misplaced shards cannot slip past a byte comparison.
func ckptState(seed int64, n int) []byte {
	r := rand.New(rand.NewSource(seed))
	b := make([]byte, n)
	r.Read(b) //nolint:errcheck
	return b
}

func TestCheckpointSaveLoadRoundTrip(t *testing.T) {
	addrs := startTargets(t, 2)
	ds := testDS(40, 2000)
	fs, err := Mount(addrs, ds, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close() //nolint:errcheck

	ck, err := fs.Checkpointer(CheckpointConfig{ShardBytes: 64 << 10, RankRegionBytes: 16 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ck.Load(); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("fresh region Load = %v, want ErrNoCheckpoint", err)
	}

	// Three saves walk both double-buffer slots (0, 1, 0 — saves
	// alternate regardless of step numbering); each Load must return the
	// newest committed state byte-exact.
	for step := uint64(1); step <= 3; step++ {
		state := ckptState(int64(step), 1<<20+12345*int(step))
		if err := ck.Save(step, state); err != nil {
			t.Fatalf("save step %d: %v", step, err)
		}
		got, gotStep, err := ck.Load()
		if err != nil {
			t.Fatalf("load after step %d: %v", step, err)
		}
		if gotStep != step {
			t.Fatalf("loaded step %d, want %d", gotStep, step)
		}
		if !bytes.Equal(got, state) {
			t.Fatalf("step %d state diverged after round trip", step)
		}
		fs.Recycle(got)
	}

	st := fs.Stats()
	if st.Pipeline.CkptSaves != 3 {
		t.Fatalf("CkptSaves = %d, want 3", st.Pipeline.CkptSaves)
	}
	if st.Pipeline.CkptWriteCmds < 3 || st.Pipeline.CkptWriteSegs <= st.Pipeline.CkptWriteCmds {
		t.Fatalf("gathered accounting off: %d cmds / %d segs", st.Pipeline.CkptWriteCmds, st.Pipeline.CkptWriteSegs)
	}
	if st.Pipeline.CkptFlushes < 3 {
		t.Fatalf("CkptFlushes = %d, want >= 3 (data + manifest barriers)", st.Pipeline.CkptFlushes)
	}
	if st.Pipeline.CkptDowngrades != 0 {
		t.Fatalf("downgrades on a current-protocol target: %d", st.Pipeline.CkptDowngrades)
	}
}

// TestCheckpointLegacyTargetDowngrades mounts against targets that
// reject opWriteVec and opFlush (rolling upgrade): saves must still
// succeed through per-extent opWrite, latch the downgrade, and load
// back byte-exact.
func TestCheckpointLegacyTargetDowngrades(t *testing.T) {
	addrs := make([]string, 2)
	for i := range addrs {
		tgt := nvmetcp.NewTargetConfig(blockdev.New(256<<20), nvmetcp.Config{Depth: 32, LegacyOps: true})
		addr, err := tgt.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { tgt.Close() }) //nolint:errcheck
		addrs[i] = addr
	}
	ds := testDS(20, 1500)
	fs, err := Mount(addrs, ds, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close() //nolint:errcheck

	ck, err := fs.Checkpointer(CheckpointConfig{ShardBytes: 32 << 10, RankRegionBytes: 8 << 20})
	if err != nil {
		t.Fatal(err)
	}
	state := ckptState(77, 700<<10)
	if err := ck.Save(1, state); err != nil {
		t.Fatalf("save against legacy targets: %v", err)
	}
	got, step, err := ck.Load()
	if err != nil || step != 1 {
		t.Fatalf("load after legacy save: step %d, %v", step, err)
	}
	if !bytes.Equal(got, state) {
		t.Fatal("legacy-path state diverged")
	}
	fs.Recycle(got)
	if fs.Stats().Pipeline.CkptDowngrades < 1 {
		t.Fatal("no downgrade latched against LegacyOps targets")
	}
	// The latch sticks: a second save goes straight to the plain path
	// and still round-trips.
	state2 := ckptState(78, 900<<10)
	if err := ck.Save(2, state2); err != nil {
		t.Fatalf("second legacy save: %v", err)
	}
	got2, step2, err := ck.Load()
	if err != nil || step2 != 2 {
		t.Fatalf("second legacy load: step %d, %v", step2, err)
	}
	if !bytes.Equal(got2, state2) {
		t.Fatal("second legacy state diverged")
	}
	fs.Recycle(got2)
}

// TestCheckpointDetectsCorruption flips one committed data byte out of
// band and requires Load to refuse the checkpoint rather than hand back
// silently wrong state.
func TestCheckpointDetectsCorruption(t *testing.T) {
	addrs := startTargets(t, 2)
	ds := testDS(10, 1000)
	fs, err := Mount(addrs, ds, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close() //nolint:errcheck

	const base = 128 << 20 // explicit region base makes shard offsets deterministic
	ck, err := fs.Checkpointer(CheckpointConfig{ShardBytes: 64 << 10, BaseOffset: base, RankRegionBytes: 8 << 20})
	if err != nil {
		t.Fatal(err)
	}
	state := ckptState(5, 500<<10)
	if err := ck.Save(1, state); err != nil {
		t.Fatal(err)
	}

	// Shard 0 of step 1 (the first save lands in slot 0) lives on
	// target 0 just past the manifest reserve. Flip a byte through a raw
	// connection.
	in, err := nvmetcp.Connect(addrs[0])
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close() //nolint:errcheck
	off := int64(base) + ckptManifestReserve + 100
	evil := make([]byte, 1)
	if _, err := in.ReadAt(evil, off); err != nil {
		t.Fatal(err)
	}
	evil[0] ^= 0xFF
	if _, err := in.WriteAt(evil, off); err != nil {
		t.Fatal(err)
	}

	if _, _, err := ck.Load(); !errors.Is(err, ErrCheckpointCorrupt) {
		t.Fatalf("Load over flipped byte = %v, want ErrCheckpointCorrupt", err)
	}
}

// TestChaosCheckpointSurvivesTargetKill is the durability acceptance
// case: every live connection to both targets is severed repeatedly
// while a checkpoint save streams. The reconnectors must resubmit the
// idempotent fixed-offset writes, the save must report success only
// once data and manifest are flushed, and a post-kill load must return
// the state byte-exact.
func TestChaosCheckpointSurvivesTargetKill(t *testing.T) {
	addrs, proxies := startChaosTargets(t, 2, func(i int) chaos.Config {
		return chaos.Config{Seed: int64(i) + 40}
	})
	ds := testDS(30, 1500)
	fs, err := Mount(addrs, ds, Config{
		RequestTimeout: 2 * time.Second,
		DialTimeout:    2 * time.Second,
		// The retry budget must outlast the kill burst below: 30
		// attempts backing off to 20 ms span >500 ms of retrying,
		// several times the burst window, so a command severed on
		// every early attempt still lands once the beam stops.
		MaxRetries:       30,
		RetryBaseDelay:   time.Millisecond,
		RetryMaxDelay:    20 * time.Millisecond,
		BreakerThreshold: 1000, // kills are transient; never trip
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close() //nolint:errcheck

	ck, err := fs.Checkpointer(CheckpointConfig{ShardBytes: 32 << 10, RankRegionBytes: 32 << 20})
	if err != nil {
		t.Fatal(err)
	}
	// A committed step-1 checkpoint that the chaos below must not harm.
	prev := ckptState(100, 1<<20)
	if err := ck.Save(1, prev); err != nil {
		t.Fatal(err)
	}

	// Sever connections while the step-2 save streams its ~6 MiB of
	// shards (192 gathered extents across both targets). The killer
	// stops after a fixed kill budget: under the race detector a single
	// reconnect + batch writev can take longer than the 2 ms kill
	// period, and a perpetual beam would then sever every attempt
	// mid-flight until the retry budget exhausts — a test livelock, not
	// a durability failure. A bounded burst still forces dozens of
	// reconnects and idempotent resubmissions.
	state := ckptState(101, 6<<20)
	stop := make(chan struct{})
	killed := make(chan int, 1)
	go func() {
		kills := 0
		for {
			select {
			case <-stop:
				killed <- kills
				return
			case <-time.After(2 * time.Millisecond):
				for _, p := range proxies {
					kills += p.KillActive()
				}
				if kills >= 60 {
					killed <- kills
					return
				}
			}
		}
	}()
	err = ck.Save(2, state)
	close(stop)
	kills := <-killed
	if err != nil {
		t.Fatalf("save under connection kills: %v (after %d kills)", err, kills)
	}
	if kills == 0 {
		t.Skip("save finished before any connection could be killed")
	}

	got, step, err := ck.Load()
	if err != nil {
		t.Fatalf("load after chaos save: %v", err)
	}
	if step != 2 {
		t.Fatalf("loaded step %d, want 2", step)
	}
	if !bytes.Equal(got, state) {
		t.Fatal("post-kill read-back diverged from the saved state")
	}
	fs.Recycle(got)
	if st := fs.Stats(); st.Resilience.Reconnects < 1 {
		t.Fatalf("save survived %d kills with no reconnects recorded: %s", kills, st.Resilience)
	} else {
		t.Logf("killed %d connections mid-save; stats: %s; pipeline: %s", kills, st.Resilience, st.Pipeline)
	}
}

// TestCheckpointNoDataCRC exercises the CRC-less save mode: round
// trips must stay byte-exact, manifests must carry the no-CRC magic,
// and — the structural crash-consistency guarantee — starting a save
// must immediately void the slot it writes into, so a crash mid-save
// can only ever fall back to the other slot's committed checkpoint.
func TestCheckpointNoDataCRC(t *testing.T) {
	addrs := startTargets(t, 2)
	ds := testDS(10, 1000)
	fs, err := Mount(addrs, ds, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close() //nolint:errcheck

	const base = 128 << 20
	ck, err := fs.Checkpointer(CheckpointConfig{
		ShardBytes: 64 << 10, BaseOffset: base, RankRegionBytes: 8 << 20, NoDataCRC: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for step := uint64(1); step <= 2; step++ {
		state := ckptState(int64(step), 600<<10+int(step))
		if err := ck.Save(step, state); err != nil {
			t.Fatalf("save step %d: %v", step, err)
		}
		got, gotStep, err := ck.Load()
		if err != nil || gotStep != step {
			t.Fatalf("load after step %d: step %d, %v", step, gotStep, err)
		}
		if !bytes.Equal(got, state) {
			t.Fatalf("no-CRC state diverged at step %d", step)
		}
		fs.Recycle(got)
	}

	// Both slots should now hold DLCN manifests.
	for s := int64(0); s < 2; s++ {
		m, err := ck.readManifest(base + s*(int64(8<<20)/2))
		if err != nil {
			t.Fatalf("slot %d manifest: %v", s, err)
		}
		if m.hasCRC {
			t.Fatalf("slot %d manifest claims a data CRC under NoDataCRC", s)
		}
	}

	// Invalidate-first: simulate a save torn right after its void-the-
	// manifest prefix by zeroing the newest slot's manifest the way Save
	// does (step 2 landed in slot 1), then scribbling over its data.
	// Load must not trust the torn slot — it falls back to step 1 in the
	// other slot.
	in, err := nvmetcp.Connect(addrs[0])
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close() //nolint:errcheck
	slot1 := int64(base) + int64(8<<20)/2
	if _, err := in.WriteAt(make([]byte, ckptManifestSize), slot1); err != nil {
		t.Fatal(err)
	}
	junk := bytes.Repeat([]byte{0xEE}, 64<<10)
	if _, err := in.WriteAt(junk, slot1+ckptManifestReserve); err != nil {
		t.Fatal(err)
	}
	got, gotStep, err := ck.Load()
	if err != nil {
		t.Fatalf("load after torn slot: %v", err)
	}
	if gotStep != 1 {
		t.Fatalf("load after torn slot returned step %d, want fallback to 1", gotStep)
	}
	if !bytes.Equal(got, ckptState(1, 600<<10+1)) {
		t.Fatal("fallback state diverged")
	}
	fs.Recycle(got)

	// A mixed region still restores: a CRC'd save over slot 1 commits a
	// DLCK manifest next to slot 0's DLCN one, and Load picks the newest.
	ck2, err := fs.Checkpointer(CheckpointConfig{
		ShardBytes: 64 << 10, BaseOffset: base, RankRegionBytes: 8 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	state3 := ckptState(3, 600<<10+3)
	if err := ck2.Save(3, state3); err != nil {
		t.Fatal(err)
	}
	got3, step3, err := ck.Load()
	if err != nil || step3 != 3 {
		t.Fatalf("mixed-mode load: step %d, %v", step3, err)
	}
	if !bytes.Equal(got3, state3) {
		t.Fatal("mixed-mode state diverged")
	}
	fs.Recycle(got3)
	m, err := ck.readManifest(slot1)
	if err != nil {
		t.Fatal(err)
	}
	if !m.hasCRC {
		t.Fatal("CRC'd save did not record a data CRC")
	}
}

// TestCheckpointSameParityStepsAlternateSlots is the regression test
// for the slot-selection bug: slots used to be keyed on step%2, so a
// same-parity cadence — Save(1000), Save(2000), Save(3000), the normal
// every-N-steps pattern — reused one slot for every save, overwriting
// the only previous committed checkpoint before the new manifest
// landed. Saves must alternate slots regardless of step numbering,
// a restarted rank must resume the alternation from the on-target
// manifests, and a corrupted newest slot must make Load fall back to
// the older slot's intact checkpoint instead of failing.
func TestCheckpointSameParityStepsAlternateSlots(t *testing.T) {
	addrs := startTargets(t, 2)
	ds := testDS(10, 1000)
	fs, err := Mount(addrs, ds, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close() //nolint:errcheck

	const base = 128 << 20
	cfg := CheckpointConfig{ShardBytes: 64 << 10, BaseOffset: base, RankRegionBytes: 8 << 20}
	ck, err := fs.Checkpointer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	state2000 := ckptState(2, 500<<10+7)
	if err := ck.Save(1000, ckptState(1, 500<<10)); err != nil {
		t.Fatal(err)
	}
	if err := ck.Save(2000, state2000); err != nil {
		t.Fatal(err)
	}
	m0, err := ck.readManifest(ck.slotBase(0))
	if err != nil {
		t.Fatalf("slot 0 manifest after two even-step saves: %v", err)
	}
	m1, err := ck.readManifest(ck.slotBase(1))
	if err != nil {
		t.Fatalf("slot 1 manifest after two even-step saves: %v", err)
	}
	if m0.step != 1000 || m1.step != 2000 {
		t.Fatalf("slots hold steps %d/%d, want 1000/2000: same-parity saves did not alternate", m0.step, m1.step)
	}

	// A restarted rank (fresh Checkpointer over the same region) must
	// derive the slot from the manifests and replace step 1000 — not
	// reset to a fixed slot and clobber the newest save.
	ck2, err := fs.Checkpointer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := ck2.Save(3000, ckptState(3, 500<<10+9)); err != nil {
		t.Fatal(err)
	}
	m0, err = ck.readManifest(ck.slotBase(0))
	if err != nil {
		t.Fatal(err)
	}
	m1, err = ck.readManifest(ck.slotBase(1))
	if err != nil {
		t.Fatal(err)
	}
	if m0.step != 3000 || m1.step != 2000 {
		t.Fatalf("slots hold steps %d/%d after restart save, want 3000/2000", m0.step, m1.step)
	}

	// Corrupt the newest slot's data out of band: Load must fall back
	// to step 2000 in the other slot, byte-exact, rather than surface
	// ErrCheckpointCorrupt while an intact checkpoint exists.
	in, err := nvmetcp.Connect(addrs[0])
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close() //nolint:errcheck
	off := int64(base) + ckptManifestReserve + 50 // shard 0 of slot 0, target 0
	evil := make([]byte, 1)
	if _, err := in.ReadAt(evil, off); err != nil {
		t.Fatal(err)
	}
	evil[0] ^= 0xFF
	if _, err := in.WriteAt(evil, off); err != nil {
		t.Fatal(err)
	}
	got, step, err := ck.Load()
	if err != nil {
		t.Fatalf("load with corrupt newest slot: %v, want fallback to the intact slot", err)
	}
	if step != 2000 {
		t.Fatalf("fallback load returned step %d, want 2000", step)
	}
	if !bytes.Equal(got, state2000) {
		t.Fatal("fallback state diverged")
	}
	fs.Recycle(got)
}
