package live

import (
	"sync"

	"dlfs/internal/metrics"
)

// Sharding bounds for the ReadSample V-bit cache. The shard count adapts
// to the byte budget so tiny budgets (unit tests, constrained clients)
// degrade to a single shard with exact FIFO-like semantics, while the
// default 8 MiB budget spreads across 16 shards and removes the global
// mutex from the hot path.
const (
	maxCacheShards = 16
	minShardBytes  = 512 << 10
)

// clockEntry is one resident sample in a shard's CLOCK ring.
type clockEntry struct {
	idx  int
	data []byte
	ref  bool
}

// cacheShard is one independently locked slice of the cache: an index
// from sample to ring slot, plus the ring the CLOCK hand sweeps.
type cacheShard struct {
	mu    sync.Mutex
	slots map[int]int // sample index -> ring slot
	ring  []clockEntry
	hand  int
	bytes int64
}

// sampleCache is the sharded ReadSample V-bit cache: power-of-two shards,
// per-shard mutex, CLOCK-style second-chance eviction. It replaces the
// single-mutex map + O(n) FIFO order slice: lookups touch exactly one
// shard and eviction is O(1) amortised per insert.
type sampleCache struct {
	shards   []cacheShard
	mask     uint64
	perShard int64
	pipe     *metrics.Pipeline
	alloc    func(int) []byte
	free     func([]byte)
	resident func(idx int, v bool) // V-bit maintenance callback
}

// newSampleCache builds a cache over budget bytes. Shard budgets sum to
// the total, so the aggregate footprint never exceeds budget no matter
// how concurrent the readers are.
func newSampleCache(budget int64, pipe *metrics.Pipeline, alloc func(int) []byte, free func([]byte), resident func(int, bool)) *sampleCache {
	n := 1
	for n < maxCacheShards && int64(2*n)*minShardBytes <= budget {
		n *= 2
	}
	c := &sampleCache{
		shards:   make([]cacheShard, n),
		mask:     uint64(n - 1),
		perShard: budget / int64(n),
		pipe:     pipe,
		alloc:    alloc,
		free:     free,
		resident: resident,
	}
	for i := range c.shards {
		c.shards[i].slots = make(map[int]int)
	}
	return c
}

// numShards reports the shard count (for stats).
func (c *sampleCache) numShards() int { return len(c.shards) }

// shardFor hashes a sample index to its shard (Fibonacci hashing keeps
// sequential indices spread across shards).
func (c *sampleCache) shardFor(idx int) *cacheShard {
	h := uint64(idx) * 0x9E3779B97F4A7C15
	return &c.shards[(h>>32)&c.mask]
}

// get returns a caller-owned copy of the cached sample, or nil on miss.
// A hit sets the entry's reference bit, giving it a second chance against
// the CLOCK hand.
func (c *sampleCache) get(idx int) []byte {
	sh := c.shardFor(idx)
	sh.mu.Lock()
	slot, ok := sh.slots[idx]
	if !ok {
		sh.mu.Unlock()
		c.pipe.CacheMisses.Add(1)
		return nil
	}
	e := &sh.ring[slot]
	e.ref = true
	out := c.alloc(len(e.data))
	copy(out, e.data)
	sh.mu.Unlock()
	c.pipe.CacheHits.Add(1)
	return out
}

// put inserts a copy of data, evicting via CLOCK until the shard is back
// under budget. Samples larger than a shard's budget are not cached.
func (c *sampleCache) put(idx int, data []byte) {
	if int64(len(data)) > c.perShard {
		return
	}
	sh := c.shardFor(idx)
	sh.mu.Lock()
	if _, dup := sh.slots[idx]; dup {
		sh.mu.Unlock()
		return
	}
	kept := c.alloc(len(data))
	copy(kept, data)
	sh.slots[idx] = len(sh.ring)
	sh.ring = append(sh.ring, clockEntry{idx: idx, data: kept})
	sh.bytes += int64(len(kept))
	c.resident(idx, true)
	for sh.bytes > c.perShard && len(sh.ring) > 0 {
		sh.evictOne(c)
	}
	sh.mu.Unlock()
}

// evictOne advances the CLOCK hand to the next entry without a reference
// bit and evicts it; referenced entries lose their bit and survive one
// more sweep. Called with the shard lock held.
func (sh *cacheShard) evictOne(c *sampleCache) {
	for {
		if sh.hand >= len(sh.ring) {
			sh.hand = 0
		}
		e := &sh.ring[sh.hand]
		if e.ref {
			e.ref = false
			sh.hand++
			continue
		}
		victim := *e
		last := len(sh.ring) - 1
		sh.ring[sh.hand] = sh.ring[last]
		sh.ring = sh.ring[:last]
		delete(sh.slots, victim.idx)
		if sh.hand < len(sh.ring) {
			sh.slots[sh.ring[sh.hand].idx] = sh.hand
		}
		sh.bytes -= int64(len(victim.data))
		c.free(victim.data)
		c.resident(victim.idx, false)
		c.pipe.CacheEvictions.Add(1)
		return
	}
}

// residentBytes sums the shards' footprints — the invariant under test is
// residentBytes() <= budget at every point in time.
func (c *sampleCache) residentBytes() int64 {
	var total int64
	for i := range c.shards {
		c.shards[i].mu.Lock()
		total += c.shards[i].bytes
		c.shards[i].mu.Unlock()
	}
	return total
}
