package live

import (
	"testing"
	"time"

	"dlfs/internal/dataset"
)

// TestConfigWithDefaults pins the knob-resolution semantics: zero means
// "take the default" everywhere; the knobs with a meaningful "off"
// state (RequestTimeout, ReadCacheBytes, CoordWaitTimeout,
// PrefetchBudgetBytes, PeerFetchTimeout) treat any negative value as
// disabled and normalize it to the canonical -1; every other knob
// treats negatives like zero.
func TestConfigWithDefaults(t *testing.T) {
	cases := []struct {
		name  string
		in    Config
		check func(t *testing.T, c Config)
	}{
		{
			name: "zero value takes all defaults",
			in:   Config{},
			check: func(t *testing.T, c Config) {
				if c.ChunkSize != 256<<10 || c.CacheBytes != 64<<20 || c.BatchSize != 32 {
					t.Errorf("cache defaults: %+v", c)
				}
				if c.RequestTimeout != 10*time.Second {
					t.Errorf("RequestTimeout = %v, want 10s", c.RequestTimeout)
				}
				if c.ReadCacheBytes != 8<<20 {
					t.Errorf("ReadCacheBytes = %d, want 8MiB", c.ReadCacheBytes)
				}
				if c.CoordWaitTimeout != 60*time.Second {
					t.Errorf("CoordWaitTimeout = %v, want 60s", c.CoordWaitTimeout)
				}
				if c.PrefetchBudgetBytes != 16<<20 {
					t.Errorf("PrefetchBudgetBytes = %d, want 16MiB", c.PrefetchBudgetBytes)
				}
				if c.PeerCacheListen != "127.0.0.1:0" {
					t.Errorf("PeerCacheListen = %q, want loopback ephemeral", c.PeerCacheListen)
				}
				if c.PeerFetchTimeout != 500*time.Millisecond {
					t.Errorf("PeerFetchTimeout = %v, want 500ms", c.PeerFetchTimeout)
				}
			},
		},
		{
			name: "negative RequestTimeout disables, normalized to -1",
			in:   Config{RequestTimeout: -7 * time.Hour},
			check: func(t *testing.T, c Config) {
				if c.RequestTimeout != -1 {
					t.Errorf("RequestTimeout = %v, want canonical -1", c.RequestTimeout)
				}
			},
		},
		{
			name: "negative ReadCacheBytes disables, normalized to -1",
			in:   Config{ReadCacheBytes: -123456},
			check: func(t *testing.T, c Config) {
				if c.ReadCacheBytes != -1 {
					t.Errorf("ReadCacheBytes = %d, want canonical -1", c.ReadCacheBytes)
				}
			},
		},
		{
			name: "negative CoordWaitTimeout disables, normalized to -1",
			in:   Config{CoordWaitTimeout: -time.Minute},
			check: func(t *testing.T, c Config) {
				if c.CoordWaitTimeout != -1 {
					t.Errorf("CoordWaitTimeout = %v, want canonical -1", c.CoordWaitTimeout)
				}
			},
		},
		{
			name: "negative PrefetchBudgetBytes disables, normalized to -1",
			in:   Config{CrossEpochPrefetch: true, PrefetchBudgetBytes: -64 << 20},
			check: func(t *testing.T, c Config) {
				if c.PrefetchBudgetBytes != -1 {
					t.Errorf("PrefetchBudgetBytes = %d, want canonical -1", c.PrefetchBudgetBytes)
				}
			},
		},
		{
			name: "negative PeerFetchTimeout disables, normalized to -1",
			in:   Config{PeerCache: true, PeerFetchTimeout: -3 * time.Second},
			check: func(t *testing.T, c Config) {
				if c.PeerFetchTimeout != -1 {
					t.Errorf("PeerFetchTimeout = %v, want canonical -1", c.PeerFetchTimeout)
				}
			},
		},
		{
			name: "negative default-only knobs fall back to defaults",
			in:   Config{ChunkSize: -5, CacheBytes: -1, BatchSize: -2, Prefetchers: -3, Window: -4, QueuePairs: -1, CoalesceBytes: -9, DialTimeout: -time.Second, MaxRetries: -1, BreakerThreshold: -1},
			check: func(t *testing.T, c Config) {
				if c.ChunkSize != 256<<10 || c.CacheBytes != 64<<20 || c.BatchSize != 32 ||
					c.Prefetchers != 4 || c.Window != 8 || c.QueuePairs != 2 ||
					c.CoalesceBytes != 1<<20 || c.DialTimeout != 5*time.Second ||
					c.MaxRetries != 4 || c.BreakerThreshold != 3 {
					t.Errorf("negative knobs not defaulted: %+v", c)
				}
			},
		},
		{
			name: "explicit positives pass through",
			in: Config{
				ChunkSize:           4 << 10,
				ReadCacheBytes:      1 << 20,
				RequestTimeout:      3 * time.Second,
				CoordWaitTimeout:    9 * time.Second,
				PrefetchBudgetBytes: 2 << 20,
				PeerCacheListen:     "127.0.0.1:7777",
				PeerFetchTimeout:    250 * time.Millisecond,
			},
			check: func(t *testing.T, c Config) {
				if c.ChunkSize != 4<<10 || c.ReadCacheBytes != 1<<20 ||
					c.RequestTimeout != 3*time.Second || c.CoordWaitTimeout != 9*time.Second {
					t.Errorf("explicit values clobbered: %+v", c)
				}
				if c.PrefetchBudgetBytes != 2<<20 || c.PeerCacheListen != "127.0.0.1:7777" ||
					c.PeerFetchTimeout != 250*time.Millisecond {
					t.Errorf("explicit prefetch/peer values clobbered: %+v", c)
				}
			},
		},
		{
			name: "assembly knobs default and pass through",
			in:   Config{ServerAssembly: true},
			check: func(t *testing.T, c Config) {
				if c.AssemblyTransform != 0 {
					t.Errorf("AssemblyTransform = %d, want 0 (none)", c.AssemblyTransform)
				}
				if c.AssemblySamplesPerCmd != 512 {
					t.Errorf("AssemblySamplesPerCmd = %d, want 512", c.AssemblySamplesPerCmd)
				}
			},
		},
		{
			name: "negative assembly knobs normalize to canonical -1",
			in:   Config{ServerAssembly: true, AssemblyTransform: -42, AssemblySamplesPerCmd: -9000},
			check: func(t *testing.T, c Config) {
				if c.AssemblyTransform != -1 {
					t.Errorf("AssemblyTransform = %d, want canonical -1 (none)", c.AssemblyTransform)
				}
				if c.AssemblySamplesPerCmd != -1 {
					t.Errorf("AssemblySamplesPerCmd = %d, want canonical -1 (protocol max)", c.AssemblySamplesPerCmd)
				}
			},
		},
		{
			name: "explicit assembly values pass through",
			in:   Config{ServerAssembly: true, AssemblyTransform: 1, AssemblySamplesPerCmd: 64},
			check: func(t *testing.T, c Config) {
				if c.AssemblyTransform != 1 || c.AssemblySamplesPerCmd != 64 {
					t.Errorf("explicit assembly values clobbered: %+v", c)
				}
			},
		},
		{
			name: "PrefetchDepth derives from Window",
			in:   Config{Window: 5},
			check: func(t *testing.T, c Config) {
				if c.PrefetchDepth != 10 {
					t.Errorf("PrefetchDepth = %d, want 2*Window", c.PrefetchDepth)
				}
			},
		},
		{
			name: "Tenant defaults to the legacy tenant and negatives normalize to it",
			in:   Config{},
			check: func(t *testing.T, c Config) {
				if c.Tenant != 0 {
					t.Errorf("Tenant = %d, want 0 (legacy tenant)", c.Tenant)
				}
				if n := (Config{Tenant: -3}).withDefaults(); n.Tenant != 0 {
					t.Errorf("negative Tenant = %d, want normalized 0", n.Tenant)
				}
			},
		},
		{
			name: "explicit Tenant passes through",
			in:   Config{Tenant: 5},
			check: func(t *testing.T, c Config) {
				if c.Tenant != 5 {
					t.Errorf("Tenant = %d, want 5", c.Tenant)
				}
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) { tc.check(t, tc.in.withDefaults()) })
	}
}

// TestDisabledReadCacheAndRequestTimeoutMount proves the disabled
// sentinels actually disable: a mount with both negative still serves
// reads, with no sample cache attached.
func TestDisabledReadCacheAndRequestTimeoutMount(t *testing.T) {
	addrs := startTargets(t, 2)
	ds := testDS(20, 1024)
	fs, err := Mount(addrs, ds, Config{ReadCacheBytes: -1, RequestTimeout: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close() //nolint:errcheck
	if fs.scache != nil {
		t.Fatal("sample cache attached despite ReadCacheBytes < 0")
	}
	for i := 0; i < 2; i++ { // repeats must both hit the wire
		got, err := fs.ReadSample(3)
		if err != nil {
			t.Fatal(err)
		}
		if dataset.ChecksumBytes(got) != ds.Checksum(3) {
			t.Fatal("corrupt read")
		}
		fs.Recycle(got)
	}
	if hits := fs.CacheHits(); hits != 0 {
		t.Fatalf("cache hits = %d with cache disabled", hits)
	}
}
