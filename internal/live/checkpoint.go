package live

// Checkpoint ingest: the write-heavy half of the training I/O space.
// A Checkpointer streams one rank's model/optimizer state through the
// same multi-queue nvmetcp pipeline the read path uses — sharded into
// fixed-size extents, gathered into opWriteVec commands striped across
// every target's queue pairs, made durable by per-target opFlush
// barriers, and committed by a manifest record that is written only
// after the data it describes is stable. Ranks double-buffer between
// two slots so a crash mid-save can never destroy the previous
// checkpoint, and a cluster save ends with a coordinator barrier so
// step N's checkpoint is epoch-consistent across ranks.
//
// Commit ordering (the crash-consistency argument):
//
//  1. shard data lands in the slot NOT holding the newest committed
//     checkpoint, via gathered writes. Saves alternate slots no matter
//     what step cadence the caller uses; the first save of a
//     Checkpointer's lifetime derives the slot from the on-target
//     manifests, so a restarted rank resumes the alternation;
//  2. every written target is flushed — opFlush completes only after
//     the target applied this connection's writes and synced;
//  3. the manifest (magic, step, length, CRC of the data) is written
//     and flushed last, as the commit record.
//
// Load verifies the manifest CRC and then the data CRC; a crash at any
// point before step 3 leaves the old manifest in place (possibly over
// torn data, which the data CRC rejects), so Load falls back to the
// other slot — always a complete, byte-exact earlier checkpoint.
//
// With CheckpointConfig.NoDataCRC the data CRC pass is skipped and the
// torn-slot argument becomes structural instead: step 0 voids the
// slot's manifest (zeroed and flushed) before any shard is posted, so
// between step 0 and step 3 the slot carries no commit record at all
// and Load cannot mistake its half-written data for the older
// checkpoint the stale manifest used to describe.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sync"
	"sync/atomic"
	"time"

	"dlfs/internal/nvmetcp"
)

// ErrNoCheckpoint reports that no slot holds a valid committed
// checkpoint (fresh region, or both slots failed verification).
var ErrNoCheckpoint = errors.New("live: no valid checkpoint")

// ErrCheckpointCorrupt reports a committed manifest whose data failed
// the byte-exact read-back check.
var ErrCheckpointCorrupt = errors.New("live: checkpoint data corrupt")

// ckptMagic tags a checkpoint manifest committed with a whole-state
// data CRC ("DLCK", little-endian); ckptMagicNoCRC tags one committed
// without ("DLCN"). Load accepts either, so a job may flip NoDataCRC
// between saves and still restore from whichever slot is newest.
const (
	ckptMagic      = 0x4B434C44
	ckptMagicNoCRC = 0x4E434C44
)

// ckptCRCTable is the polynomial for the manifest's whole-state data
// CRC. Castagnoli rather than IEEE: the data CRC is a full pass over
// the checkpoint on every save, and Castagnoli maps to the dedicated
// CRC32 instruction on amd64/arm64 — several times cheaper than even
// the carry-less-multiply IEEE kernel, which matters when the pass
// shares one core with the socket copies it overlaps. The tiny 36-byte
// header CRC stays IEEE; it is not on any per-byte path.
var ckptCRCTable = crc32.MakeTable(crc32.Castagnoli)

// ckptManifestSize is the encoded manifest record; ckptManifestReserve
// is the region set aside for it at each slot base. It is one store
// extent (1 MiB), so shard data starts extent-aligned and extent-sized
// shards land zero-copy on the target via buffer adoption.
const (
	ckptManifestSize    = 40
	ckptManifestReserve = 1 << 20
)

// CheckpointConfig tunes a Checkpointer. The zero value takes defaults.
type CheckpointConfig struct {
	// ShardBytes is the checkpoint sharding granule: state is split
	// into extents of this size, striped round-robin across targets.
	// Default 1 MiB.
	ShardBytes int

	// SegsPerCmd bounds how many shards one gathered opWriteVec command
	// carries. Default 8 (8 MiB of payload per wire command at the
	// default shard size, well under the frame cap).
	SegsPerCmd int

	// BaseOffset is where the checkpoint region starts on every target.
	// Zero derives it from the mounted dataset's high-water mark,
	// rounded up to the next MiB, so checkpoints never collide with
	// training data.
	BaseOffset int64

	// RankRegionBytes is each rank's region size per target, split into
	// two double-buffered slots. A save needs its total per-target
	// footprint (shards + manifest reserve) to fit one slot. Default
	// 64 MiB.
	RankRegionBytes int64

	// NoDataCRC skips the manifest's whole-state data CRC. The CRC is
	// an extra full pass over the checkpoint on every save and restore;
	// on hosts where the save shares cores with the socket copies it is
	// a measurable slice of the ingest budget. Without it, crash
	// consistency is preserved structurally: Save first invalidates the
	// slot's manifest and flushes, so a crash mid-save can only leave a
	// slot whose commit record is already void — Load falls back to the
	// other slot. What is lost is only detection of silent corruption
	// of data at rest between save and restore.
	NoDataCRC bool
}

func (c CheckpointConfig) withDefaults() CheckpointConfig {
	if c.ShardBytes <= 0 {
		c.ShardBytes = 1 << 20
	}
	if c.SegsPerCmd <= 0 {
		c.SegsPerCmd = 8
	}
	if c.RankRegionBytes <= 0 {
		c.RankRegionBytes = 64 << 20
	}
	return c
}

// Checkpointer streams sharded per-rank checkpoints through the
// mount's multi-queue write pipeline. One instance per rank; safe for
// use from one goroutine at a time (training loops checkpoint
// serially).
type Checkpointer struct {
	fs   *FS
	cfg  CheckpointConfig
	base int64 // this rank's region base on every target

	// nextSlot is the double-buffer slot (0 or 1) the next save commits
	// into; -1 until derived from the on-target manifests by the first
	// save. It only advances when a save commits, so a failed save
	// retries into the same slot rather than clobbering the good one.
	nextSlot int

	// noVec latches per target when it rejects opWriteVec with
	// statusBadOp (an old-opcode build during a rolling upgrade): later
	// saves use per-extent opWrite against it. Like the read path's
	// noAssembly latch, it is a capability fact — never a breaker or
	// retry event.
	noVec []atomic.Bool
}

// Checkpointer binds a checkpoint region above the mounted dataset.
// The region layout is deterministic from (BaseOffset, RankRegionBytes,
// rank), so a restarted rank — or a different process — finds its
// checkpoints without any directory state.
func (fs *FS) Checkpointer(cfg CheckpointConfig) (*Checkpointer, error) {
	cfg = cfg.withDefaults()
	if cfg.BaseOffset <= 0 {
		cfg.BaseOffset = (fs.dataHighWater() + (1 << 20)) &^ ((1 << 20) - 1)
	}
	if cfg.RankRegionBytes/2 <= ckptManifestReserve {
		return nil, fmt.Errorf("live: checkpoint slot of %d bytes below the manifest reserve", cfg.RankRegionBytes/2)
	}
	world := fs.world
	if world < 1 {
		world = 1
	}
	need := cfg.BaseOffset + int64(world)*cfg.RankRegionBytes
	for _, tg := range fs.targets {
		if c := tg.qp.Capacity(); c < need {
			return nil, fmt.Errorf("live: target %s capacity %d below checkpoint region end %d", tg.addr, c, need)
		}
	}
	return &Checkpointer{
		fs:       fs,
		cfg:      cfg,
		base:     cfg.BaseOffset + int64(fs.rank)*cfg.RankRegionBytes,
		nextSlot: -1,
		noVec:    make([]atomic.Bool, len(fs.targets)),
	}, nil
}

// dataHighWater reports one past the largest dataset byte offset in use
// on any target, recomputed from the deterministic placement.
func (fs *FS) dataHighWater() int64 {
	var hw int64
	for i, pl := range fs.placed {
		_ = fs.nodeOf[i] // placement is per target, but the max is what matters
		if end := pl.Offset + int64(pl.Len); end > hw {
			hw = end
		}
	}
	return hw
}

// slotBase returns the base offset of double-buffer slot idx (0 or 1).
func (c *Checkpointer) slotBase(idx int) int64 {
	return c.base + int64(idx)*(c.cfg.RankRegionBytes/2)
}

// saveSlot picks the slot the next save commits into: always the one
// NOT holding the newest committed checkpoint, so a crash mid-save can
// only tear the slot being replaced, never the one Load falls back to.
// Keying on the caller's step would break this — a same-parity cadence
// like Save(1000), Save(2000), Save(3000) would reuse one slot for
// every save and overwrite the only previous checkpoint before the new
// manifest commits. The first save of a Checkpointer's lifetime derives
// the slot from the on-target manifests, so a restarted rank — or a
// different process — resumes the alternation instead of blindly
// reusing slot 0.
func (c *Checkpointer) saveSlot() (int, error) {
	if c.nextSlot >= 0 {
		return c.nextSlot, nil
	}
	committed, newest := -1, uint64(0)
	for s := 0; s < 2; s++ {
		m, err := c.readManifest(c.slotBase(s))
		if err != nil {
			if errors.Is(err, ErrNoCheckpoint) {
				continue
			}
			return 0, err
		}
		if committed == -1 || m.step > newest {
			committed, newest = s, m.step
		}
	}
	if committed == 0 {
		return 1, nil
	}
	return 0, nil
}

// ckptLayout is the deterministic shard placement of one save: shard i
// goes to target i%T at dataBase + (i/T)*ShardBytes.
type ckptLayout struct {
	dataBase   int64
	shardBytes int
	targets    int
}

func (l ckptLayout) place(shard int) (tgt int, off int64) {
	return shard % l.targets, l.dataBase + int64(shard/l.targets)*int64(l.shardBytes)
}

// Save commits state as this rank's checkpoint for step. It returns
// once the data and its manifest are durable on the targets and — on
// cluster mounts — every rank has reached the same point.
func (c *Checkpointer) Save(step uint64, state []byte) error {
	if len(state) == 0 {
		return errors.New("live: empty checkpoint state")
	}
	start := time.Now()
	fs := c.fs
	slotIdx, err := c.saveSlot()
	if err != nil {
		return fmt.Errorf("live: deriving checkpoint slot: %w", err)
	}
	slot := c.slotBase(slotIdx)
	nT := len(fs.targets)
	shards := (len(state) + c.cfg.ShardBytes - 1) / c.cfg.ShardBytes
	perTarget := int64((shards+nT-1)/nT) * int64(c.cfg.ShardBytes)
	if ckptManifestReserve+perTarget > c.cfg.RankRegionBytes/2 {
		return fmt.Errorf("live: checkpoint of %d bytes (%d per target) exceeds the %d-byte slot",
			len(state), perTarget, c.cfg.RankRegionBytes/2)
	}
	layout := ckptLayout{dataBase: slot + ckptManifestReserve, shardBytes: c.cfg.ShardBytes, targets: nT}

	// The manifest's whole-state CRC is a full memory pass; computing it
	// while the shards are on the wire hides it behind the socket stalls
	// of the shipping phase instead of serialising it before the commit
	// record. The channel is buffered so an early error return cannot
	// strand the goroutine.
	//
	// Without the CRC, torn data under a stale manifest would be
	// undetectable, so the slot's commit record is voided up front —
	// written zero and flushed before any shard can land. From that
	// point until the new manifest commits, a crash leaves a slot Load
	// provably rejects.
	var crcCh chan uint32
	if c.cfg.NoDataCRC {
		if _, err := fs.targets[0].qp.WriteAt(make([]byte, ckptManifestSize), slot); err != nil {
			return fmt.Errorf("live: checkpoint manifest invalidate: %w", err)
		}
		if err := c.flushTarget(0); err != nil {
			return err
		}
	} else {
		crcCh = make(chan uint32, 1)
		go func() { crcCh <- crc32.Checksum(state, ckptCRCTable) }()
	}

	// Stripe the shards: per-target gathered commands posted in
	// parallel across targets, pipelined within each target.
	segsOf := make([][]nvmetcp.WSeg, nT)
	for s := 0; s < shards; s++ {
		lo := s * c.cfg.ShardBytes
		hi := min(lo+c.cfg.ShardBytes, len(state))
		tgt, off := layout.place(s)
		segsOf[tgt] = append(segsOf[tgt], nvmetcp.WSeg{Src: state[lo:hi], Off: off})
	}
	var wg sync.WaitGroup
	errs := make([]error, nT)
	for t := 0; t < nT; t++ {
		if len(segsOf[t]) == 0 {
			continue
		}
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			errs[t] = c.writeTarget(t, segsOf[t])
		}(t)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}

	// Durability barrier on every target that took shards — issued in
	// parallel, since each target's barrier only orders that target's own
	// writes — then the manifest as the commit record, written and
	// flushed only after the data it describes is stable everywhere.
	wg = sync.WaitGroup{}
	for t := 0; t < nT; t++ {
		if len(segsOf[t]) == 0 {
			continue
		}
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			errs[t] = c.flushTarget(t)
		}(t)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	man := make([]byte, ckptManifestSize)
	magic := uint32(ckptMagic)
	if c.cfg.NoDataCRC {
		magic = ckptMagicNoCRC
	}
	binary.LittleEndian.PutUint32(man[0:4], magic)
	binary.LittleEndian.PutUint64(man[4:12], step)
	binary.LittleEndian.PutUint64(man[12:20], uint64(len(state)))
	binary.LittleEndian.PutUint32(man[20:24], uint32(c.cfg.ShardBytes))
	binary.LittleEndian.PutUint32(man[24:28], uint32(shards))
	if crcCh != nil {
		binary.LittleEndian.PutUint32(man[28:32], <-crcCh)
	}
	binary.LittleEndian.PutUint32(man[32:36], crc32.ChecksumIEEE(man[:32]))
	if _, err := fs.targets[0].qp.WriteAt(man, slot); err != nil {
		return fmt.Errorf("live: checkpoint manifest: %w", err)
	}
	if err := c.flushTarget(0); err != nil {
		return err
	}
	// The manifest is durable: this slot now holds the newest committed
	// checkpoint, so the next save targets the other one. Flipping only
	// here means a failed save retries into the same slot.
	c.nextSlot = 1 - slotIdx

	// Epoch-consistent snapshot: on cluster mounts no rank's Save
	// returns until every rank committed, so a job restarting from step
	// N never mixes it with step N-1 state from a straggler.
	if fs.coord != nil {
		if err := fs.coord.Barrier(fmt.Sprintf("dlfs/ckpt/%d", step)); err != nil {
			return fmt.Errorf("live: checkpoint barrier: %w", err)
		}
	}
	fs.pipe.CkptSaves.Add(1)
	fs.pipe.CkptNanos.Add(int64(time.Since(start)))
	return nil
}

// writeTarget ships one target's shard set: gathered opWriteVec
// commands of up to SegsPerCmd extents, posted back-to-back and waited
// as a pipeline. A target that rejects the opcode is latched and served
// per-extent opWrite instead.
func (c *Checkpointer) writeTarget(t int, segs []nvmetcp.WSeg) error {
	fs := c.fs
	tg := fs.targets[t]
	if c.noVec[t].Load() {
		return c.writeTargetPlain(t, segs)
	}
	type flight struct {
		pd     *nvmetcp.RePending
		bytes  int64
		nsegs  int64
		posted time.Time
		err    error
	}
	// Post the gathered commands from a small fan of goroutines.
	// WriteVecAsync performs the vectored socket write in the caller, so
	// a single posting loop serialises the whole shard set behind one
	// send at a time; a fan keeps a send in flight on each of the
	// target's queue pairs and overlaps the client-side socket copies
	// with the target's ingest. Commands land at disjoint fixed offsets,
	// so posting order is irrelevant.
	nb := (len(segs) + c.cfg.SegsPerCmd - 1) / c.cfg.SegsPerCmd
	flights := make([]flight, nb)
	const postFan = 4
	sem := make(chan struct{}, postFan)
	var pwg sync.WaitGroup
	for bi := 0; bi < nb; bi++ {
		lo := bi * c.cfg.SegsPerCmd
		hi := min(lo+c.cfg.SegsPerCmd, len(segs))
		batch := segs[lo:hi]
		sem <- struct{}{}
		pwg.Add(1)
		go func(f *flight, batch []nvmetcp.WSeg) {
			defer pwg.Done()
			defer func() { <-sem }()
			for _, s := range batch {
				f.bytes += int64(len(s.Src))
			}
			f.nsegs, f.posted = int64(len(batch)), time.Now()
			f.pd, f.err = tg.qp.WriteVecAsync(batch)
		}(&flights[bi], batch)
	}
	pwg.Wait()
	var hardErr error
	downgrade := false
	for i := range flights {
		f := &flights[i]
		err := f.err
		if err == nil && f.pd != nil {
			_, err = f.pd.Wait()
		}
		if err != nil {
			var unsup *nvmetcp.UnsupportedOpError
			if errors.As(err, &unsup) {
				downgrade = true
			} else if hardErr == nil {
				hardErr = fmt.Errorf("live: checkpoint write to target %d: %w", t, err)
			}
			continue
		}
		fs.pipe.ObserveCkptWrite(f.bytes, f.nsegs, time.Since(f.posted))
	}
	if hardErr != nil {
		return hardErr
	}
	if downgrade {
		// Old-opcode target mid-rolling-upgrade: latch, then re-ship
		// this target's whole shard set per-extent — the writes are
		// idempotent fixed-offset, so extents that already landed are
		// simply rewritten with the same bytes.
		c.noVec[t].Store(true)
		fs.pipe.CkptDowngrades.Add(1)
		return c.writeTargetPlain(t, segs)
	}
	return nil
}

// writeTargetPlain is the downgrade path: one opWrite per shard,
// pipelined across the target's queue pairs.
func (c *Checkpointer) writeTargetPlain(t int, segs []nvmetcp.WSeg) error {
	fs := c.fs
	tg := fs.targets[t]
	type flight struct {
		pd     *nvmetcp.RePending
		bytes  int64
		posted time.Time
	}
	flights := make([]flight, 0, len(segs))
	for _, s := range segs {
		pd, err := tg.qp.WriteAsync(s.Src, s.Off)
		if err != nil {
			return fmt.Errorf("live: checkpoint write to target %d: %w", t, err)
		}
		flights = append(flights, flight{pd: pd, bytes: int64(len(s.Src)), posted: time.Now()})
	}
	for _, f := range flights {
		if _, err := f.pd.Wait(); err != nil {
			return fmt.Errorf("live: checkpoint write to target %d: %w", t, err)
		}
		fs.pipe.ObserveCkptWrite(f.bytes, 1, time.Since(f.posted))
	}
	return nil
}

// flushTarget runs the durability barrier on every queue pair of one
// target. A target that does not speak opFlush (rolling upgrade) has
// already applied each completed write synchronously, so the barrier
// degrades to the write completions themselves.
func (c *Checkpointer) flushTarget(t int) error {
	err := c.fs.targets[t].qp.Flush()
	var unsup *nvmetcp.UnsupportedOpError
	if errors.As(err, &unsup) {
		c.fs.pipe.CkptDowngrades.Add(1)
		return nil
	}
	if err != nil {
		return fmt.Errorf("live: checkpoint flush on target %d: %w", t, err)
	}
	c.fs.pipe.CkptFlushes.Add(1)
	return nil
}

// ckptManifest is one slot's decoded commit record.
type ckptManifest struct {
	step       uint64
	totalLen   int
	shardBytes int
	shards     int
	dataCRC    uint32
	hasCRC     bool
}

// readManifest fetches and verifies one slot's manifest. A slot that
// was never written, invalidated by an in-progress no-CRC save, or
// whose commit record is torn, fails the magic or header-CRC check and
// reports ErrNoCheckpoint.
func (c *Checkpointer) readManifest(slot int64) (ckptManifest, error) {
	man := make([]byte, ckptManifestSize)
	if _, rerr := c.fs.targets[0].qp.ReadAt(man, slot); rerr != nil {
		return ckptManifest{}, fmt.Errorf("live: reading manifest: %w", rerr)
	}
	magic := binary.LittleEndian.Uint32(man[0:4])
	if (magic != ckptMagic && magic != ckptMagicNoCRC) ||
		binary.LittleEndian.Uint32(man[32:36]) != crc32.ChecksumIEEE(man[:32]) {
		return ckptManifest{}, ErrNoCheckpoint
	}
	m := ckptManifest{
		step:       binary.LittleEndian.Uint64(man[4:12]),
		totalLen:   int(binary.LittleEndian.Uint64(man[12:20])),
		shardBytes: int(binary.LittleEndian.Uint32(man[20:24])),
		shards:     int(binary.LittleEndian.Uint32(man[24:28])),
		dataCRC:    binary.LittleEndian.Uint32(man[28:32]),
		hasCRC:     magic == ckptMagic,
	}
	if m.totalLen <= 0 || m.shardBytes <= 0 || m.shards != (m.totalLen+m.shardBytes-1)/m.shardBytes {
		return ckptManifest{}, ErrNoCheckpoint
	}
	return m, nil
}

// Load restores this rank's newest committed checkpoint: it orders the
// slots by committed step, re-reads the sharded data through the
// vectored read path, and verifies it byte-exact against the manifest
// CRC. A slot whose committed data fails that check — torn by a crash
// the manifest survived, or rotted at rest — is skipped in favour of
// the other slot's older but intact checkpoint; ErrCheckpointCorrupt
// is returned only when no committed slot verifies. The returned
// buffer comes from the mount's pool — hand it back with Recycle when
// done.
func (c *Checkpointer) Load() (state []byte, step uint64, err error) {
	type cand struct {
		slot int64
		ckptManifest
	}
	var cands []cand
	for s := 0; s < 2; s++ {
		slot := c.slotBase(s)
		m, merr := c.readManifest(slot)
		if merr != nil {
			if errors.Is(merr, ErrNoCheckpoint) {
				continue
			}
			return nil, 0, merr
		}
		cands = append(cands, cand{slot: slot, ckptManifest: m})
	}
	if len(cands) == 2 && cands[1].step > cands[0].step {
		cands[0], cands[1] = cands[1], cands[0]
	}
	var corrupt error
	for _, cd := range cands {
		buf, lerr := c.loadSlot(cd.slot, cd.ckptManifest)
		if lerr == nil {
			return buf, cd.step, nil
		}
		if errors.Is(lerr, ErrCheckpointCorrupt) {
			corrupt = lerr
			continue
		}
		return nil, 0, lerr
	}
	if corrupt != nil {
		return nil, 0, corrupt
	}
	return nil, 0, ErrNoCheckpoint
}

// loadSlot reads back one committed slot's sharded data and verifies it
// against the manifest's whole-state CRC (when the manifest carries
// one). The buffer is recycled on any failure.
func (c *Checkpointer) loadSlot(slot int64, m ckptManifest) ([]byte, error) {
	fs := c.fs
	nT := len(fs.targets)
	layout := ckptLayout{dataBase: slot + ckptManifestReserve, shardBytes: m.shardBytes, targets: nT}
	buf := fs.alloc(m.totalLen)
	segsOf := make([][]nvmetcp.Seg, nT)
	for s := 0; s < m.shards; s++ {
		lo := s * m.shardBytes
		hi := min(lo+m.shardBytes, m.totalLen)
		tgt, off := layout.place(s)
		segsOf[tgt] = append(segsOf[tgt], nvmetcp.Seg{Dst: buf[lo:hi], Off: off})
	}
	var wg sync.WaitGroup
	errs := make([]error, nT)
	for t := 0; t < nT; t++ {
		if len(segsOf[t]) == 0 {
			continue
		}
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			segs := segsOf[t]
			pds := make([]*nvmetcp.RePending, 0, (len(segs)+c.cfg.SegsPerCmd-1)/c.cfg.SegsPerCmd)
			for lo := 0; lo < len(segs); lo += c.cfg.SegsPerCmd {
				hi := min(lo+c.cfg.SegsPerCmd, len(segs))
				pd, perr := fs.targets[t].qp.ReadVecAsync(segs[lo:hi])
				if perr != nil {
					errs[t] = perr
					return
				}
				pds = append(pds, pd)
			}
			for _, pd := range pds {
				if _, perr := pd.Wait(); perr != nil {
					errs[t] = perr
					return
				}
			}
		}(t)
	}
	wg.Wait()
	for t, terr := range errs {
		if terr != nil {
			fs.Recycle(buf)
			return nil, fmt.Errorf("live: checkpoint read from target %d: %w", t, terr)
		}
	}
	if m.hasCRC && crc32.Checksum(buf, ckptCRCTable) != m.dataCRC {
		fs.Recycle(buf)
		return nil, fmt.Errorf("%w: step %d slot at %d", ErrCheckpointCorrupt, m.step, slot)
	}
	return buf, nil
}
