package live

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"dlfs/internal/chaos"
	"dlfs/internal/coord"
	"dlfs/internal/dataset"
)

// startReplicaSet stands up n coordinator replicas with fast elections.
func startReplicaSet(t *testing.T, n, world int) ([]*coord.ReplicatedServer, []string) {
	t.Helper()
	srvs, peers, err := coord.StartReplicaSet(n, world, coord.ReplicatedOptions{
		ElectionTimeout: 80 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		for _, s := range srvs {
			s.Close() //nolint:errcheck
		}
	})
	return srvs, peers
}

// waitReplicaLeader polls until one replica reports itself leader.
func waitReplicaLeader(t *testing.T, srvs []*coord.ReplicatedServer) *coord.ReplicatedServer {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		for _, s := range srvs {
			if l, _ := s.Leader(); l == s.Addr() {
				return s
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("replica set never elected a leader")
	return nil
}

// mountClusterPeers mounts every rank concurrently against a replica set.
func mountClusterPeers(t *testing.T, peers, addrs []string, ds *dataset.Dataset, cfg Config) []*FS {
	t.Helper()
	world := len(addrs)
	fss := make([]*FS, world)
	errs := make([]error, world)
	var wg sync.WaitGroup
	for r := 0; r < world; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			fss[r], errs[r] = MountClusterPeers(peers, r, world, addrs, ds, cfg)
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d mount: %v", r, err)
		}
	}
	for _, fs := range fss {
		fs := fs
		t.Cleanup(func() { fs.Close() }) //nolint:errcheck
	}
	return fss
}

// drainTally drains one epoch into per-sample delivery counts and
// content checksums.
func drainTally(ep *Epoch) (map[int]int, map[int]uint32, error) {
	items, err := ep.Drain()
	if err != nil {
		return nil, nil, err
	}
	counts := make(map[int]int)
	sums := make(map[int]uint32)
	for _, it := range items {
		counts[it.Index]++
		sums[it.Index] = dataset.ChecksumBytes(it.Data)
	}
	return counts, sums, nil
}

// checkExactlyOnce asserts the union of per-rank deliveries covers the
// dataset exactly once with verified content.
func checkExactlyOnce(t *testing.T, ds *dataset.Dataset, counts []map[int]int, sums []map[int]uint32) {
	t.Helper()
	union := make(map[int]int)
	for r := range counts {
		for idx, c := range counts[r] {
			union[idx] += c
			if sums[r][idx] != ds.Checksum(idx) {
				t.Fatalf("rank %d sample %d corrupt", r, idx)
			}
		}
	}
	if len(union) != ds.Len() {
		t.Fatalf("union covers %d of %d samples", len(union), ds.Len())
	}
	for idx, c := range union {
		if c != 1 {
			t.Fatalf("sample %d delivered %d times across ranks", idx, c)
		}
	}
}

// TestChaosClusterPeerDiesMidMountBarrier is the mount-barrier rank-death
// case: rank 2's coordinator connection runs through a chaos proxy and is
// hard-killed while ranks 0 and 1 are blocked inside the mount-start
// barrier. The survivors must get a typed *coord.PeerLostError naming
// rank 2 well inside CoordWaitTimeout — via the abort broadcast, not by
// waiting out the collective.
func TestChaosClusterPeerDiesMidMountBarrier(t *testing.T) {
	const world = 3
	addrs := startTargets(t, world)
	srv := coord.NewServer(world, coord.ServerOptions{})
	caddr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close() //nolint:errcheck

	doomed := chaos.NewProxy(caddr, chaos.Config{Seed: 7})
	daddr, err := doomed.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer doomed.Close() //nolint:errcheck

	// Rank 2 joins through the proxy but never reaches the barrier.
	ghost, err := coord.Join(daddr, 2, world, coord.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer ghost.Close() //nolint:errcheck

	ds := testDS(60, 1000)
	cfg := Config{CoordWaitTimeout: 10 * time.Second}
	var wg sync.WaitGroup
	errs := make([]error, 2)
	start := time.Now()
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			var fs *FS
			fs, errs[r] = MountCluster(caddr, r, world, addrs, ds, cfg)
			if fs != nil {
				fs.Close() //nolint:errcheck
			}
		}(r)
	}
	// Let the survivors get into the mount-start barrier, then sever the
	// ghost's connection without an orderly leave.
	time.Sleep(200 * time.Millisecond)
	if doomed.KillActive() == 0 {
		t.Fatal("chaos proxy found no live connection to kill")
	}

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("survivors wedged after mid-barrier rank death")
	}
	elapsed := time.Since(start)
	if elapsed >= cfg.CoordWaitTimeout {
		t.Fatalf("survivors took %v, not inside CoordWaitTimeout %v", elapsed, cfg.CoordWaitTimeout)
	}
	for r := 0; r < 2; r++ {
		var pl *coord.PeerLostError
		if !errors.As(errs[r], &pl) || !errors.Is(errs[r], coord.ErrPeerLost) {
			t.Fatalf("rank %d: want *PeerLostError, got %v", r, errs[r])
		}
		if pl.Rank != 2 {
			t.Fatalf("rank %d blames rank %d, want 2", r, pl.Rank)
		}
	}
}

// TestChaosFailoverLeaderKilledMidEpoch is the failover acceptance case:
// three ranks mount through a 3-replica coordinator set, the Raft leader
// is killed mid-epoch, and the job must elect a new leader, finish the
// epoch, and pass the post-epoch barrier — with every sample delivered
// exactly once and content checksums unchanged.
func TestChaosFailoverLeaderKilledMidEpoch(t *testing.T) {
	const world = 3
	addrs := startTargets(t, world)
	srvs, peers := startReplicaSet(t, 3, world)
	leader := waitReplicaLeader(t, srvs)

	ds := testDS(240, 3000)
	cfg := Config{ChunkSize: 16 << 10, CacheBytes: 2 << 20, CoordWaitTimeout: 30 * time.Second}
	fss := mountClusterPeers(t, peers, addrs, ds, cfg)

	before, err := fss[0].Coordinator().(*coord.ClusterClient).Status()
	if err != nil {
		t.Fatal(err)
	}

	const seed = 17
	counts := make([]map[int]int, world)
	sums := make([]map[int]uint32, world)
	errs := make([]error, world)
	var started, wg sync.WaitGroup
	killed := make(chan struct{})
	started.Add(world)
	for r, fs := range fss {
		wg.Add(1)
		go func(r int, fs *FS) {
			defer wg.Done()
			ep, err := fs.ClusterSequence(seed)
			if err != nil {
				started.Done()
				errs[r] = err
				return
			}
			items, ok, err := ep.NextBatch()
			started.Done()
			if err != nil {
				errs[r] = err
				return
			}
			// Hold mid-epoch until the leader is dead, then finish the
			// epoch and cross the post-epoch barrier through the failover.
			<-killed
			all := append([]Item(nil), items...)
			for ok {
				var batch []Item
				batch, ok, err = ep.NextBatch()
				if err != nil {
					errs[r] = fmt.Errorf("epoch after leader kill: %w", err)
					return
				}
				all = append(all, batch...)
			}
			counts[r] = make(map[int]int)
			sums[r] = make(map[int]uint32)
			for _, it := range all {
				counts[r][it.Index]++
				sums[r][it.Index] = dataset.ChecksumBytes(it.Data)
			}
			errs[r] = fs.Coordinator().Barrier("dlfs/epoch/17/done")
		}(r, fs)
	}
	started.Wait()
	if err := leader.Close(); err != nil {
		t.Fatalf("killing leader: %v", err)
	}
	close(killed)
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d across leader failover: %v", r, err)
		}
	}
	checkExactlyOnce(t, ds, counts, sums)

	after, err := fss[0].Coordinator().(*coord.ClusterClient).Status()
	if err != nil {
		t.Fatal(err)
	}
	if after.Leader == "" || after.Leader == leader.Addr() {
		t.Fatalf("leader after failover = %q (dead leader was %q)", after.Leader, leader.Addr())
	}
	if after.Term <= before.Term {
		t.Fatalf("term %d after failover, want above %d", after.Term, before.Term)
	}
}

// TestElasticDepartReshardMidEpoch is the elastic-membership acceptance
// case: three ranks consume the prefix [0, K) of the seeded unit order
// under the old assignment, rank 2 departs at the agreed cut K, and the
// two survivors reshard the unconsumed suffix [K, M) among themselves.
// The union across both phases must still be every sample exactly once.
func TestElasticDepartReshardMidEpoch(t *testing.T) {
	const world = 3
	addrs := startTargets(t, world)
	srvs, peers := startReplicaSet(t, 3, world)
	waitReplicaLeader(t, srvs)

	ds := testDS(240, 3000)
	cfg := Config{ChunkSize: 16 << 10, CacheBytes: 2 << 20, CoordWaitTimeout: 30 * time.Second}
	fss := mountClusterPeers(t, peers, addrs, ds, cfg)

	total, err := fss[0].EpochUnits()
	if err != nil {
		t.Fatal(err)
	}
	if total < world+2 {
		t.Fatalf("epoch has only %d units; dataset too small for a mid-epoch cut", total)
	}
	cut := total / 2

	// Phase 1: all three ranks drain their share of the prefix [0, cut)
	// under the full-world assignment.
	const seed = 41
	counts := make([]map[int]int, 0, world+2)
	sums := make([]map[int]uint32, 0, world+2)
	var mu sync.Mutex
	runPhase := func(fs *FS, rank, w, lo, hi int) error {
		ep, err := fs.SequenceRange(seed, rank, w, lo, hi)
		if err != nil {
			return err
		}
		c, s, err := drainTally(ep)
		if err != nil {
			return err
		}
		mu.Lock()
		counts = append(counts, c)
		sums = append(sums, s)
		mu.Unlock()
		return nil
	}
	var wg sync.WaitGroup
	errs := make([]error, world)
	for r, fs := range fss {
		wg.Add(1)
		go func(r int, fs *FS) {
			defer wg.Done()
			errs[r] = runPhase(fs, r, world, 0, cut)
		}(r, fs)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d prefix phase: %v", r, err)
		}
	}

	// Rank 2 departs at the agreed cut; the leader replicates the
	// membership change and bumps the placement epoch.
	stBefore, err := fss[0].Coordinator().(*coord.ClusterClient).Status()
	if err != nil {
		t.Fatal(err)
	}
	st, err := fss[2].Coordinator().(*coord.ClusterClient).Depart(uint64(cut))
	if err != nil {
		t.Fatalf("depart: %v", err)
	}
	if st.World != 2 || st.DepartRank != 2 || st.DepartCut != uint64(cut) {
		t.Fatalf("depart status = %+v", st)
	}
	if st.Epoch != stBefore.Epoch+1 {
		t.Fatalf("placement epoch %d after depart, want %d", st.Epoch, stBefore.Epoch+1)
	}
	if len(st.Members) != 2 || st.Members[0] != 0 || st.Members[1] != 1 {
		t.Fatalf("members after depart = %v", st.Members)
	}

	// Phase 2: the survivors reshard the suffix [cut, M) among themselves
	// via the replicated membership view, then cross a two-rank barrier.
	errs = errs[:2]
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int, fs *FS) {
			defer wg.Done()
			ep, err := fs.ReshardSequence(seed, -1) // cut from ClusterStatus.DepartCut
			if err != nil {
				errs[r] = err
				return
			}
			c, s, err := drainTally(ep)
			if err != nil {
				errs[r] = err
				return
			}
			mu.Lock()
			counts = append(counts, c)
			sums = append(sums, s)
			mu.Unlock()
			errs[r] = fs.Coordinator().Barrier("dlfs/reshard/done")
		}(r, fss[r])
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("survivor %d suffix phase: %v", r, err)
		}
	}
	checkExactlyOnce(t, ds, counts, sums)
}
