// Package live is the real-concurrency DLFS client: the same design as
// internal/core — hash-sharded upload, in-memory tree-based sample
// directory, chunk-level batched reads from a huge-page-style cache — but
// running on ordinary goroutines against real TCP NVMe-oF-style targets
// (internal/nvmetcp) instead of the discrete-event simulation.
//
// It demonstrates that the DLFS design is not simulation-bound: the
// directory, sample-entry and chunk-planning code is shared verbatim with
// the simulated file system, and the examples drive it end to end over
// localhost TCP.
package live

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"dlfs/internal/dataset"
	"dlfs/internal/directory"
	"dlfs/internal/hugepage"
	"dlfs/internal/nvmetcp"
	"dlfs/internal/plan"
	"dlfs/internal/sample"
)

// Config tunes the live client. Zero values take defaults.
type Config struct {
	ChunkSize      int   // sample cache chunk size (default 256 KiB)
	CacheBytes     int64 // sample cache size (default 64 MiB)
	BatchSize      int   // samples per NextBatch (default 32)
	Prefetchers    int   // concurrent chunk fetchers (default 4)
	Window         int   // resident units to randomise across (default 8)
	ReadCacheBytes int64 // ReadSample V-bit cache budget (default 8 MiB; <0 disables)
}

func (c Config) withDefaults() Config {
	if c.ChunkSize <= 0 {
		c.ChunkSize = 256 << 10
	}
	if c.CacheBytes <= 0 {
		c.CacheBytes = 64 << 20
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 32
	}
	if c.Prefetchers <= 0 {
		c.Prefetchers = 4
	}
	if c.Window <= 0 {
		c.Window = 8
	}
	if c.ReadCacheBytes == 0 {
		c.ReadCacheBytes = 8 << 20
	}
	return c
}

// FS is a live DLFS client bound to a set of TCP targets.
type FS struct {
	cfg    Config
	ds     *dataset.Dataset
	dir    *directory.Directory
	inits  []*nvmetcp.Initiator
	arena  *blockingArena
	placed []plan.Placed
	nodeOf []uint16
	keyIdx map[uint64]int
	closed bool

	// ReadSample V-bit cache: recently fetched samples kept in memory,
	// mirroring the simulated path's read cache. Guarded by cacheMu.
	cacheMu    sync.Mutex
	cache      map[int][]byte
	cacheOrder []int
	cacheBytes int64
	cacheHits  int64
}

// Errors.
var (
	ErrNotFound = errors.New("live: no such sample")
	ErrClosed   = errors.New("live: file system closed")
)

// Mount connects to the targets, uploads each target's hash-shard of the
// dataset, and builds the replicated directory — dlfs_mount over real
// sockets. The caller owns closing the returned FS.
func Mount(addrs []string, ds *dataset.Dataset, cfg Config) (*FS, error) {
	cfg = cfg.withDefaults()
	if len(addrs) == 0 {
		return nil, errors.New("live: no targets")
	}
	inits := make([]*nvmetcp.Initiator, len(addrs))
	for i, a := range addrs {
		in, err := nvmetcp.Connect(a)
		if err != nil {
			for _, prev := range inits[:i] {
				prev.Close() //nolint:errcheck
			}
			return nil, fmt.Errorf("live: target %s: %w", a, err)
		}
		inits[i] = in
	}

	n := len(addrs)
	parts := make([]*directory.Partition, n)
	for i := range parts {
		parts[i] = directory.NewPartition(uint16(i))
	}
	offs := make([]int64, n)
	placed := make([]plan.Placed, ds.Len())
	nodeOf := make([]uint16, ds.Len())
	keyIdx := make(map[uint64]int, ds.Len())
	for i := 0; i < ds.Len(); i++ {
		key := ds.Samples[i].Key()
		if _, dup := keyIdx[key]; dup {
			return nil, fmt.Errorf("live: key collision on sample %d", i)
		}
		keyIdx[key] = i
		nid := directory.HomeNode(key, n)
		content := ds.Content(i)
		if _, err := inits[nid].WriteAt(content, offs[nid]); err != nil {
			return nil, fmt.Errorf("live: uploading sample %d: %w", i, err)
		}
		e, err := sample.NewEntry(nid, key, offs[nid], int32(len(content)))
		if err != nil {
			return nil, err
		}
		if err := parts[nid].Add(e); err != nil {
			return nil, err
		}
		placed[i] = plan.Placed{Sample: i, Offset: offs[nid], Len: int32(len(content))}
		nodeOf[i] = nid
		offs[nid] += int64(len(content))
	}
	dir, err := directory.New(parts)
	if err != nil {
		return nil, err
	}
	arena, err := hugepage.NewArena(cfg.CacheBytes, cfg.ChunkSize)
	if err != nil {
		return nil, err
	}
	return &FS{
		cfg:    cfg,
		ds:     ds,
		dir:    dir,
		inits:  inits,
		arena:  newBlockingArena(arena),
		placed: placed,
		nodeOf: nodeOf,
		keyIdx: keyIdx,
		cache:  make(map[int][]byte),
	}, nil
}

// Directory exposes the sample directory.
func (fs *FS) Directory() *directory.Directory { return fs.dir }

// ReadSample reads one sample synchronously by dataset index (the
// dlfs_open/read/close path), serving repeats from the V-bit read cache.
func (fs *FS) ReadSample(idx int) ([]byte, error) {
	if fs.closed {
		return nil, ErrClosed
	}
	if idx < 0 || idx >= fs.ds.Len() {
		return nil, fmt.Errorf("%w: index %d", ErrNotFound, idx)
	}
	if hit := fs.cacheGet(idx); hit != nil {
		return hit, nil
	}
	pl := fs.placed[idx]
	buf := make([]byte, pl.Len)
	if _, err := fs.inits[fs.nodeOf[idx]].ReadAt(buf, pl.Offset); err != nil {
		return nil, err
	}
	fs.cachePut(idx, buf)
	return buf, nil
}

// CacheHits reports ReadSample requests served from the read cache.
func (fs *FS) CacheHits() int64 {
	fs.cacheMu.Lock()
	defer fs.cacheMu.Unlock()
	return fs.cacheHits
}

// cacheGet returns a copy of the cached sample, refreshing LRU order.
func (fs *FS) cacheGet(idx int) []byte {
	if fs.cfg.ReadCacheBytes < 0 {
		return nil
	}
	fs.cacheMu.Lock()
	defer fs.cacheMu.Unlock()
	data, ok := fs.cache[idx]
	if !ok {
		return nil
	}
	fs.cacheHits++
	for i, v := range fs.cacheOrder {
		if v == idx {
			fs.cacheOrder = append(fs.cacheOrder[:i], fs.cacheOrder[i+1:]...)
			break
		}
	}
	fs.cacheOrder = append(fs.cacheOrder, idx)
	out := make([]byte, len(data))
	copy(out, data)
	return out
}

// cachePut inserts a sample, evicting LRU entries past the byte budget
// and maintaining the directory's V bits to mirror cache state.
func (fs *FS) cachePut(idx int, data []byte) {
	if fs.cfg.ReadCacheBytes < 0 || int64(len(data)) > fs.cfg.ReadCacheBytes {
		return
	}
	fs.cacheMu.Lock()
	defer fs.cacheMu.Unlock()
	if _, dup := fs.cache[idx]; dup {
		return
	}
	kept := make([]byte, len(data))
	copy(kept, data)
	fs.cache[idx] = kept
	fs.cacheOrder = append(fs.cacheOrder, idx)
	fs.cacheBytes += int64(len(kept))
	fs.setV(idx, true)
	for fs.cacheBytes > fs.cfg.ReadCacheBytes && len(fs.cacheOrder) > 0 {
		victim := fs.cacheOrder[0]
		fs.cacheOrder = fs.cacheOrder[1:]
		fs.cacheBytes -= int64(len(fs.cache[victim]))
		delete(fs.cache, victim)
		fs.setV(victim, false)
	}
}

func (fs *FS) setV(idx int, v bool) {
	_, ref, _, ok := fs.dir.Lookup(fs.ds.Samples[idx].Key())
	if ok {
		fs.dir.SetV(ref, v)
	}
}

// ReadName resolves a sample name through the directory and reads it.
func (fs *FS) ReadName(name string, attrs ...string) ([]byte, error) {
	e, _, _, ok := fs.dir.LookupName(name, attrs...)
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	idx, ok := fs.keyIdx[e.Key()]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	return fs.ReadSample(idx)
}

// Close tears down the target connections.
func (fs *FS) Close() error {
	if fs.closed {
		return nil
	}
	fs.closed = true
	var err error
	for _, in := range fs.inits {
		if cerr := in.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// blockingArena wraps the huge-page arena with blocking allocation: a
// fetcher waits until enough chunks are free instead of failing.
type blockingArena struct {
	mu    sync.Mutex
	cond  *sync.Cond
	arena *hugepage.Arena
}

func newBlockingArena(a *hugepage.Arena) *blockingArena {
	b := &blockingArena{arena: a}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *blockingArena) allocN(n int) []*hugepage.Chunk {
	b.mu.Lock()
	defer b.mu.Unlock()
	for {
		chunks, err := b.arena.AllocN(n)
		if err == nil {
			return chunks
		}
		b.cond.Wait()
	}
}

func (b *blockingArena) free(chunks []*hugepage.Chunk) {
	b.mu.Lock()
	for _, c := range chunks {
		b.arena.Free(c) //nolint:errcheck
	}
	b.mu.Unlock()
	b.cond.Broadcast()
}

// Item is one delivered sample.
type Item struct {
	Index int
	Data  []byte
}

// unit mirrors the core package's fetch granule.
type unit struct {
	node    uint16
	offset  int64
	length  int32
	samples []plan.Placed
	chunks  []*hugepage.Chunk
	next    int
}

// Epoch is a chunk-batched pass over the dataset, driven by background
// prefetchers.
type Epoch struct {
	fs    *FS
	rng   *rand.Rand
	ready chan *unit
	errCh chan error

	resident []*unit
	total    int
	emitted  int
	failed   error
}

// Sequence starts an epoch with the given seed (dlfs_sequence +
// chunk-level batching). Background fetchers start immediately.
func (fs *FS) Sequence(seed int64) (*Epoch, error) {
	if fs.closed {
		return nil, ErrClosed
	}
	n := len(fs.inits)
	layout := &plan.Layout{NodeSamples: make([][]plan.Placed, n), ChunkSize: int64(fs.cfg.ChunkSize)}
	for idx, pl := range fs.placed {
		nid := fs.nodeOf[idx]
		layout.NodeSamples[nid] = append(layout.NodeSamples[nid], pl)
	}
	for nid := range layout.NodeSamples {
		s := layout.NodeSamples[nid]
		sort.Slice(s, func(i, j int) bool { return s[i].Offset < s[j].Offset })
	}
	cp, err := plan.BuildChunkPlan(layout)
	if err != nil {
		return nil, err
	}
	var units []*unit
	for _, c := range cp.Chunks {
		units = append(units, &unit{node: c.Node, offset: c.Offset, length: c.Length, samples: c.Samples})
	}
	for _, e := range cp.Edges {
		units = append(units, &unit{node: e.Node, offset: e.Placed.Offset, length: e.Placed.Len, samples: []plan.Placed{e.Placed}})
	}
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(units), func(i, j int) { units[i], units[j] = units[j], units[i] })

	ep := &Epoch{
		fs:    fs,
		rng:   rand.New(rand.NewSource(seed ^ 0x9E3779B9)),
		ready: make(chan *unit, fs.cfg.Window),
		errCh: make(chan error, 1),
		total: cp.NumSamples(),
	}
	// Fetch pipeline: a shared work queue drained by Prefetchers workers.
	work := make(chan *unit)
	var wg sync.WaitGroup
	for w := 0; w < fs.cfg.Prefetchers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for u := range work {
				if err := ep.fetch(u); err != nil {
					select {
					case ep.errCh <- err:
					default:
					}
					return
				}
				ep.ready <- u
			}
		}()
	}
	go func() {
		for _, u := range units {
			work <- u
		}
		close(work)
		wg.Wait()
		close(ep.ready)
	}()
	return ep, nil
}

// fetch brings one unit into cache chunks: one remote read per chunk-sized
// segment, issued asynchronously on the unit's queue pair.
func (ep *Epoch) fetch(u *unit) error {
	cs := ep.fs.cfg.ChunkSize
	nChunks := (int(u.length) + cs - 1) / cs
	u.chunks = ep.fs.arena.allocN(nChunks)
	in := ep.fs.inits[u.node]
	pendings := make([]*nvmetcp.Pending, nChunks)
	for i := 0; i < nChunks; i++ {
		segLen := cs
		if rem := int(u.length) - i*cs; rem < segLen {
			segLen = rem
		}
		pd, err := in.ReadAsync(u.chunks[i].Bytes()[:segLen], u.offset+int64(i*cs))
		if err != nil {
			// Queue full: fall back to a synchronous read for this segment.
			if _, serr := in.ReadAt(u.chunks[i].Bytes()[:segLen], u.offset+int64(i*cs)); serr != nil {
				return serr
			}
			continue
		}
		pendings[i] = pd
	}
	for _, pd := range pendings {
		if pd == nil {
			continue
		}
		if _, err := pd.Wait(); err != nil {
			return err
		}
	}
	return nil
}

// Total reports the number of samples the epoch will deliver.
func (ep *Epoch) Total() int { return ep.total }

// NextBatch returns the next mini-batch: random selection across the
// resident window of fetched chunks, sequential within each chunk — the
// copy-thread emission discipline of §III-D2. ok is false when the epoch
// is exhausted. An I/O failure surfaces as an error and ends the epoch.
func (ep *Epoch) NextBatch() ([]Item, bool, error) {
	if ep.failed != nil {
		return nil, false, ep.failed
	}
	if ep.emitted >= ep.total {
		return nil, false, nil
	}
	var items []Item
	for len(items) < ep.fs.cfg.BatchSize && ep.emitted < ep.total {
		// Refill the resident window.
		for len(ep.resident) < ep.fs.cfg.Window {
			select {
			case err := <-ep.errCh:
				ep.failed = err
				return items, false, err
			case u, ok := <-ep.ready:
				if !ok {
					goto emit
				}
				ep.resident = append(ep.resident, u)
				continue
			default:
			}
			break
		}
	emit:
		if len(ep.resident) == 0 {
			// Nothing resident: block for the next fetched unit.
			select {
			case err := <-ep.errCh:
				ep.failed = err
				return items, false, err
			case u, ok := <-ep.ready:
				if !ok {
					return items, len(items) > 0, nil
				}
				ep.resident = append(ep.resident, u)
			}
		}
		k := ep.rng.Intn(len(ep.resident))
		u := ep.resident[k]
		pl := u.samples[u.next]
		u.next++
		buf := make([]byte, pl.Len)
		copyFromChunks(u, pl, buf, ep.fs.cfg.ChunkSize)
		items = append(items, Item{Index: pl.Sample, Data: buf})
		ep.emitted++
		if u.next == len(u.samples) {
			ep.fs.arena.free(u.chunks)
			u.chunks = nil
			ep.resident = append(ep.resident[:k], ep.resident[k+1:]...)
		}
	}
	return items, len(items) > 0, nil
}

func copyFromChunks(u *unit, pl plan.Placed, dst []byte, chunkSize int) {
	off := pl.Offset - u.offset
	copied := 0
	for copied < int(pl.Len) {
		pos := off + int64(copied)
		ci := int(pos) / chunkSize
		within := int(pos) % chunkSize
		copied += copy(dst[copied:], u.chunks[ci].Bytes()[within:])
	}
}

// Drain consumes the whole epoch and returns all items.
func (ep *Epoch) Drain() ([]Item, error) {
	var all []Item
	for {
		items, ok, err := ep.NextBatch()
		all = append(all, items...)
		if err != nil {
			return all, err
		}
		if !ok {
			return all, nil
		}
	}
}
