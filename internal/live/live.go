// Package live is the real-concurrency DLFS client: the same design as
// internal/core — hash-sharded upload, in-memory tree-based sample
// directory, chunk-level batched reads from a huge-page-style cache — but
// running on ordinary goroutines against real TCP NVMe-oF-style targets
// (internal/nvmetcp) instead of the discrete-event simulation.
//
// The read path is a multi-queue zero-copy pipeline. Each target is
// driven through a QPGroup of several reconnecting connections with
// commands striped across them; prefetchers walk the seeded epoch order
// ahead of the consumer and coalesce adjacent same-target units into
// single vectored wire reads whose payloads land directly in huge-page
// cache chunks; sample emission and the ReadSample V-bit cache draw
// from a size-class buffer pool instead of allocating per call. Each
// stage (prep, post, poll, copy) is timed into a metrics.Pipeline.
//
// Unlike the simulation, the live path assumes the fabric misbehaves:
// every queue pair reconnects with per-command deadlines, and a
// per-target circuit breaker gates fetches. When a target is down and
// Config.AllowDegraded is set, prefetchers skip its chunks and the epoch
// keeps emitting samples from healthy nodes, finishing with a
// DegradedError instead of wedging the training loop.
package live

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"dlfs/internal/bufpool"
	"dlfs/internal/coord"
	"dlfs/internal/dataset"
	"dlfs/internal/directory"
	"dlfs/internal/hugepage"
	"dlfs/internal/metrics"
	"dlfs/internal/nvmetcp"
	"dlfs/internal/plan"
	"dlfs/internal/sample"
	"dlfs/internal/trace"
)

// Config tunes the live client. Zero values take defaults.
type Config struct {
	ChunkSize      int   // sample cache chunk size (default 256 KiB)
	CacheBytes     int64 // sample cache size (default 64 MiB)
	BatchSize      int   // samples per NextBatch (default 32)
	Prefetchers    int   // concurrent chunk fetchers (default 4)
	Window         int   // resident units to randomise across (default 8)
	ReadCacheBytes int64 // ReadSample V-bit cache budget (default 8 MiB; <0 disables)

	// Coordinator knobs (MountCluster only).
	CoordWaitTimeout time.Duration // collective wait bound (default 60s; <0 disables)

	// Pipeline knobs.
	QueuePairs    int   // connections per target, commands striped across them (default 2)
	PrefetchDepth int   // units of sequence lookahead for coalescing (default 2*Window)
	CoalesceBytes int64 // max bytes merged into one vectored wire read (default 1 MiB)
	NoCoalesce    bool  // issue one wire read per chunk (baseline mode)
	NoBufferPool  bool  // allocate per call instead of pooling (baseline mode)

	// Clairvoyant cross-epoch prefetch: once an epoch's dispatcher has
	// handed out all fetch groups, a background round fetches the *next*
	// epoch's predicted unit slice (the seeded order is deterministic)
	// into a bounded lookahead store, so the next epoch opens warm.
	CrossEpochPrefetch  bool                   // enable the lookahead round
	PrefetchBudgetBytes int64                  // lookahead store budget (default 16 MiB; <0 disables)
	NextEpochSeed       func(seed int64) int64 // predicts the next epoch's seed (default seed+1)

	// Near-data sample assembly (nvmetcp opReadSamples): fetch groups
	// are posted as offload commands whose responses carry exactly the
	// samples' post-transform bytes — the target assembles each record
	// from its extents, so chunk padding and edge-sample overfetch never
	// cross the NIC and offloaded units skip the client copy stage
	// entirely. A target that does not speak the opcode (rolling
	// upgrade) is downgraded per-target to the vectored chunk path.
	ServerAssembly        bool // offload sample extraction to the targets
	AssemblyTransform     int  // nvmetcp transform ID applied target-side (default 0 = none; <0 normalized to -1 = none)
	AssemblySamplesPerCmd int  // sample descriptors per offload command (default 512; <0 normalized to -1 = protocol max)

	// Cooperative peer cache (cluster mounts only): each rank hosts a
	// peercache service over its read cache; ReadSample misses ask the
	// owning peer before the origin target. Must be set identically on
	// every rank (the mount runs one extra allgather when enabled).
	PeerCache        bool          // enable the peer sample service + peer-first misses
	PeerCacheListen  string        // peer service listen address (default "127.0.0.1:0")
	PeerFetchTimeout time.Duration // peer dial + round-trip bound (default 500ms; <0 disables)

	// Observability knobs.
	StageHistograms bool                // record per-stage latency histograms (prep/post/poll/copy, ReadSample, mount phases)
	Trace           *trace.WallRecorder // wall-clock pipeline trace: post/complete/emit/free events (nil disables)

	// Multi-tenancy: the tenant id stamped on every command this mount
	// submits. Zero is the legacy/default tenant, so single-tenant
	// deployments need no configuration; ids above nvmetcp.MaxTenantID
	// are rejected at connect. A throttled command (tenant over its
	// target-side quota) is retried after the target's hint — it is
	// backpressure, not a failure, and never trips the circuit breaker.
	Tenant int // tenant id on the wire (default 0 = legacy tenant; negative normalized to 0)

	// Resilience knobs.
	DialTimeout      time.Duration // target dial + handshake bound (default 5s)
	RequestTimeout   time.Duration // per-command deadline (default 10s; <0 disables)
	MaxRetries       int           // transport retries per operation (default 4)
	RetryBaseDelay   time.Duration // backoff base (default 5ms)
	RetryMaxDelay    time.Duration // backoff cap (default 500ms)
	BreakerThreshold int           // consecutive failures to open a breaker (default 3)
	BreakerCooldown  time.Duration // open → half-open probe delay (default 500ms)
	AllowDegraded    bool          // skip down targets instead of failing the epoch
}

// withDefaults resolves zero values to defaults. A few knobs
// distinguish "unset" from "off": RequestTimeout, ReadCacheBytes,
// PrefetchBudgetBytes and PeerFetchTimeout (and the cluster-only
// CoordWaitTimeout) treat zero as "take the default" and any negative
// value as "disabled". Negative values are normalized to the canonical
// sentinel -1 so downstream comparisons (and tests) see one disabled
// representation regardless of which negative the caller passed. Every
// other knob treats all non-positive values as unset.
func (c Config) withDefaults() Config {
	if c.ChunkSize <= 0 {
		c.ChunkSize = 256 << 10
	}
	if c.CacheBytes <= 0 {
		c.CacheBytes = 64 << 20
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 32
	}
	if c.Prefetchers <= 0 {
		c.Prefetchers = 4
	}
	if c.Window <= 0 {
		c.Window = 8
	}
	if c.ReadCacheBytes == 0 {
		c.ReadCacheBytes = 8 << 20
	} else if c.ReadCacheBytes < 0 {
		c.ReadCacheBytes = -1
	}
	if c.CoordWaitTimeout == 0 {
		c.CoordWaitTimeout = 60 * time.Second
	} else if c.CoordWaitTimeout < 0 {
		c.CoordWaitTimeout = -1
	}
	if c.QueuePairs <= 0 {
		c.QueuePairs = 2
	}
	if c.PrefetchDepth <= 0 {
		c.PrefetchDepth = 2 * c.Window
	}
	if c.CoalesceBytes <= 0 {
		c.CoalesceBytes = 1 << 20
	}
	if c.PrefetchBudgetBytes == 0 {
		c.PrefetchBudgetBytes = 16 << 20
	} else if c.PrefetchBudgetBytes < 0 {
		c.PrefetchBudgetBytes = -1
	}
	if c.AssemblyTransform < 0 {
		c.AssemblyTransform = -1
	}
	if c.AssemblySamplesPerCmd == 0 {
		c.AssemblySamplesPerCmd = 512
	} else if c.AssemblySamplesPerCmd < 0 {
		c.AssemblySamplesPerCmd = -1
	}
	if c.PeerCacheListen == "" {
		c.PeerCacheListen = "127.0.0.1:0"
	}
	if c.PeerFetchTimeout == 0 {
		c.PeerFetchTimeout = 500 * time.Millisecond
	} else if c.PeerFetchTimeout < 0 {
		c.PeerFetchTimeout = -1
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = 5 * time.Second
	}
	if c.RequestTimeout == 0 {
		c.RequestTimeout = 10 * time.Second
	} else if c.RequestTimeout < 0 {
		c.RequestTimeout = -1
	}
	if c.MaxRetries <= 0 {
		c.MaxRetries = 4
	}
	if c.RetryBaseDelay <= 0 {
		c.RetryBaseDelay = 5 * time.Millisecond
	}
	if c.RetryMaxDelay <= 0 {
		c.RetryMaxDelay = 500 * time.Millisecond
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 3
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 500 * time.Millisecond
	}
	if c.Tenant < 0 {
		c.Tenant = 0
	}
	return c
}

// FS is a live DLFS client bound to a set of TCP targets.
type FS struct {
	cfg      Config
	ds       *dataset.Dataset
	dir      *directory.Directory
	targets  []*target
	counters *metrics.Resilience
	pipe     *metrics.Pipeline
	pool     *bufpool.Pool // nil when Config.NoBufferPool
	scache   *sampleCache  // nil when ReadCacheBytes < 0
	arena    *hugepage.Blocking
	placed   []plan.Placed
	nodeOf   []uint16
	keyIdx   map[uint64]int
	closed   atomic.Bool // atomic: the peer-cache server races remote requests against Close

	prefetchState // cross-epoch lookahead (Config.CrossEpochPrefetch)

	// Cluster state (zero/nil on a single-node Mount).
	rank   int
	world  int
	coord  coord.Session
	mstats *metrics.Mount
	peers  *peerSet // cooperative peer cache (Config.PeerCache)
}

// Errors.
var (
	ErrNotFound = errors.New("live: no such sample")
	ErrClosed   = errors.New("live: file system closed")
)

// Mount connects to the targets, uploads each target's hash-shard of the
// dataset, and builds the replicated directory — dlfs_mount over real
// sockets. Each target is dialled Config.QueuePairs times. The caller
// owns closing the returned FS.
func Mount(addrs []string, ds *dataset.Dataset, cfg Config) (*FS, error) {
	cfg = cfg.withDefaults()
	counters := &metrics.Resilience{}
	targets, err := dialTargets(addrs, cfg, counters)
	if err != nil {
		return nil, err
	}

	n := len(addrs)
	parts := make([]*directory.Partition, n)
	for i := range parts {
		parts[i] = directory.NewPartition(uint16(i))
	}
	offs := make([]int64, n)
	placed := make([]plan.Placed, ds.Len())
	nodeOf := make([]uint16, ds.Len())
	keyIdx := make(map[uint64]int, ds.Len())
	for i := 0; i < ds.Len(); i++ {
		key := ds.Samples[i].Key()
		if _, dup := keyIdx[key]; dup {
			return nil, fmt.Errorf("live: key collision on sample %d", i)
		}
		keyIdx[key] = i
		nid := directory.HomeNode(key, n)
		content := ds.Content(i)
		if _, err := targets[nid].qp.WriteAt(content, offs[nid]); err != nil {
			return nil, fmt.Errorf("live: uploading sample %d: %w", i, err)
		}
		e, err := sample.NewEntry(nid, key, offs[nid], int32(len(content)))
		if err != nil {
			return nil, err
		}
		if err := parts[nid].Add(e); err != nil {
			return nil, err
		}
		placed[i] = plan.Placed{Sample: i, Offset: offs[nid], Len: int32(len(content))}
		nodeOf[i] = nid
		offs[nid] += int64(len(content))
	}
	dir, err := directory.New(parts)
	if err != nil {
		return nil, err
	}
	arena, err := hugepage.NewArena(cfg.CacheBytes, cfg.ChunkSize)
	if err != nil {
		return nil, err
	}
	fs := &FS{
		cfg:      cfg,
		ds:       ds,
		dir:      dir,
		targets:  targets,
		counters: counters,
		pipe:     &metrics.Pipeline{},
		arena:    hugepage.NewBlocking(arena),
		placed:   placed,
		nodeOf:   nodeOf,
		keyIdx:   keyIdx,
		world:    1,
	}
	fs.finishSetup()
	return fs, nil
}

// dialTargets opens a queue-pair group per target address, closing any
// already-open groups on failure.
func dialTargets(addrs []string, cfg Config, counters *metrics.Resilience) ([]*target, error) {
	if len(addrs) == 0 {
		return nil, errors.New("live: no targets")
	}
	if cfg.ServerAssembly {
		if x := cfg.AssemblyTransform; x > 0 {
			if x > 255 || !nvmetcp.TransformValid(byte(x)) {
				return nil, fmt.Errorf("live: unknown assembly transform %d", x)
			}
			if nvmetcp.TransformOutLen(byte(x), 1) < 0 {
				return nil, fmt.Errorf("live: assembly transform %s has data-dependent output size; the epoch pipeline needs sized destinations",
					nvmetcp.TransformName(byte(x)))
			}
		}
	}
	opt := nvmetcp.Options{DialTimeout: cfg.DialTimeout, RequestTimeout: cfg.RequestTimeout, Tenant: cfg.Tenant}
	targets := make([]*target, len(addrs))
	for i, a := range addrs {
		qp, err := nvmetcp.NewQPGroup(a, cfg.QueuePairs, opt, nvmetcp.RetryPolicy{
			MaxRetries: cfg.MaxRetries,
			BaseDelay:  cfg.RetryBaseDelay,
			MaxDelay:   cfg.RetryMaxDelay,
			Seed:       int64(i) + 1,
		}, counters)
		if err != nil {
			for _, prev := range targets[:i] {
				prev.qp.Close() //nolint:errcheck
			}
			return nil, fmt.Errorf("live: target %s: %w", a, err)
		}
		targets[i] = &target{
			addr: a,
			qp:   qp,
			brk:  newBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown, counters),
		}
	}
	return targets, nil
}

// finishSetup attaches the stage histograms, buffer pool and read cache
// configured by cfg.
func (fs *FS) finishSetup() {
	if fs.cfg.StageHistograms {
		fs.pipe.Hist = &metrics.PipelineHist{}
	}
	if !fs.cfg.NoBufferPool {
		fs.pool = bufpool.New()
	}
	if fs.cfg.ReadCacheBytes > 0 {
		fs.scache = newSampleCache(fs.cfg.ReadCacheBytes, fs.pipe, fs.alloc, fs.Recycle, fs.setV)
	}
	if fs.cfg.CrossEpochPrefetch && fs.cfg.PrefetchBudgetBytes > 0 {
		fs.prefetch = newPrefetchStore(fs.cfg.PrefetchBudgetBytes, fs.pipe, fs.Recycle)
	}
	fs.prefetchStop = make(chan struct{})
}

// Directory exposes the sample directory.
func (fs *FS) Directory() *directory.Directory { return fs.dir }

// Pipeline exposes the per-stage pipeline counters.
func (fs *FS) Pipeline() *metrics.Pipeline { return fs.pipe }

// alloc takes a buffer of length n from the pool (or the heap in
// NoBufferPool mode).
func (fs *FS) alloc(n int) []byte {
	if fs.pool != nil {
		return fs.pool.Get(n)
	}
	return make([]byte, n)
}

// Recycle returns a buffer previously handed out by ReadSample,
// ReadName, or NextBatch to the pool. Optional: callers that drop
// buffers on the floor just pay the allocator again on the next read.
func (fs *FS) Recycle(b []byte) {
	if fs.pool != nil && b != nil {
		fs.pool.Put(b)
	}
}

// RecycleItems recycles every item's payload and nils the slices so a
// training loop can return a whole mini-batch in one call.
func (fs *FS) RecycleItems(items []Item) {
	for i := range items {
		fs.Recycle(items[i].Data)
		items[i].Data = nil
	}
}

// ReadSample reads one sample synchronously by dataset index (the
// dlfs_open/read/close path), serving repeats from the sharded V-bit
// read cache. The returned buffer is caller-owned; hand it back via
// Recycle to keep the hot path allocation-free. When the sample's
// target breaker is open the read fails fast with an error matching
// ErrDegraded.
func (fs *FS) ReadSample(idx int) ([]byte, error) {
	if fs.closed.Load() {
		return nil, ErrClosed
	}
	if idx < 0 || idx >= fs.ds.Len() {
		return nil, fmt.Errorf("%w: index %d", ErrNotFound, idx)
	}
	// Clock reads are gated on the histogram being enabled so the
	// disabled hot path stays exactly as cheap as before.
	var start time.Time
	hist := fs.pipe.Hist
	if hist != nil {
		start = time.Now()
	}
	if fs.scache != nil {
		if hit := fs.scache.get(idx); hit != nil {
			if hist != nil {
				hist.Read.Observe(time.Since(start))
			}
			return hit, nil
		}
	}
	pl := fs.placed[idx]
	// Cooperative peer cache: the sample's owner is the rank whose
	// target stores it, so a non-owner asks that peer before touching
	// the origin wire; any peer failure falls through to origin.
	if fs.peers != nil {
		if owner := int(fs.nodeOf[idx]); owner != fs.rank {
			if buf := fs.peerFetch(owner, idx, int(pl.Len)); buf != nil {
				if fs.scache != nil {
					fs.scache.put(idx, buf)
				}
				if hist != nil {
					hist.Read.Observe(time.Since(start))
				}
				return buf, nil
			}
		}
	}
	buf := fs.alloc(int(pl.Len))
	if err := fs.targets[fs.nodeOf[idx]].read(buf, pl.Offset); err != nil {
		fs.Recycle(buf)
		return nil, err
	}
	fs.pipe.OriginReads.Add(1)
	fs.pipe.OriginBytes.Add(int64(pl.Len))
	if fs.scache != nil {
		fs.scache.put(idx, buf)
	}
	if hist != nil {
		hist.Read.Observe(time.Since(start))
	}
	return buf, nil
}

// CacheHits reports ReadSample requests served from the read cache.
func (fs *FS) CacheHits() int64 { return fs.pipe.CacheHits.Load() }

func (fs *FS) setV(idx int, v bool) {
	_, ref, _, ok := fs.dir.Lookup(fs.ds.Samples[idx].Key())
	if ok {
		fs.dir.SetV(ref, v)
	}
}

// ReadName resolves a sample name through the directory and reads it.
func (fs *FS) ReadName(name string, attrs ...string) ([]byte, error) {
	e, _, _, ok := fs.dir.LookupName(name, attrs...)
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	idx, ok := fs.keyIdx[e.Key()]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	return fs.ReadSample(idx)
}

// Close tears down the target connections, stops the cross-epoch
// prefetcher and peer-cache service, and, on a cluster mount, departs
// the coordinator.
func (fs *FS) Close() error {
	if fs.closed.Swap(true) {
		return nil
	}
	if fs.prefetchStop != nil {
		close(fs.prefetchStop) // abort any in-flight lookahead round
	}
	var err error
	for _, tg := range fs.targets {
		if cerr := tg.qp.Close(); err == nil {
			err = cerr
		}
	}
	// Closed queue pairs fail any blocked prefetch read, so this wait is
	// bounded by one command completion.
	fs.prefetchWG.Wait()
	if fs.prefetch != nil {
		fs.prefetch.drain()
	}
	if fs.peers != nil {
		fs.peers.close()
	}
	if fs.coord != nil {
		if cerr := fs.coord.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// Item is one delivered sample.
type Item struct {
	Index int
	Data  []byte
}

// unit mirrors the core package's fetch granule.
type unit struct {
	seq     int // position in this epoch's (sliced) fetch order, for tracing
	node    uint16
	offset  int64
	length  int32
	samples []plan.Placed
	chunks  []*hugepage.Chunk
	next    int

	// assembled holds per-sample pool buffers (parallel to samples)
	// when the unit was fetched through server assembly: the target
	// extracted each record, so there are no chunks to copy from and
	// NextBatch hands the buffers out directly. Entries are nil'ed as
	// they are emitted; ownership of the remainder stays with the unit.
	assembled [][]byte
}

// chunkCount returns how many cache chunks the unit spans.
func (u *unit) chunkCount(cs int) int { return (int(u.length) + cs - 1) / cs }

// fetchGroup is a set of same-target units coalesced into one wire read.
type fetchGroup struct {
	node  uint16
	units []*unit
}

// Epoch is a chunk-batched pass over the dataset, driven by background
// prefetchers.
type Epoch struct {
	fs    *FS
	rng   *rand.Rand
	ready chan *unit
	errCh chan error

	abort     chan struct{}
	abortOnce sync.Once

	skipped  atomic.Int64 // samples skipped in degraded mode
	degMu    sync.Mutex
	degNodes map[int]struct{}

	resident    []*unit
	total       int
	emitted     int
	failed      error
	readyClosed bool
	finished    bool
}

// Sequence starts an epoch with the given seed (dlfs_sequence +
// chunk-level batching). The shuffled unit order is known up front, so
// the dispatcher looks PrefetchDepth units ahead and merges same-target
// neighbours into vectored fetch groups before handing them to the
// Prefetchers workers — sequence-driven prefetch with request
// coalescing. Background fetchers start immediately.
func (fs *FS) Sequence(seed int64) (*Epoch, error) {
	return fs.sequence(seed, 0, 1)
}

// sequence builds the seeded global unit order and starts the fetch
// pipeline over the rank-th of world disjoint slices (0/1 = the whole
// epoch). The unit plan and the shuffle derive only from the seed and
// the deterministic placement, so every rank of a cluster job computes
// the identical global order and unit i can be assigned to rank
// i % world with no coordination.
func (fs *FS) sequence(seed int64, rank, world int) (*Epoch, error) {
	return fs.sequenceRange(seed, rank, world, 0, -1)
}

// buildUnits constructs the deterministic (unshuffled) unit plan.
func (fs *FS) buildUnits() ([]*unit, error) {
	if fs.closed.Load() {
		return nil, ErrClosed
	}
	n := len(fs.targets)
	layout := &plan.Layout{NodeSamples: make([][]plan.Placed, n), ChunkSize: int64(fs.cfg.ChunkSize)}
	for idx, pl := range fs.placed {
		nid := fs.nodeOf[idx]
		layout.NodeSamples[nid] = append(layout.NodeSamples[nid], pl)
	}
	for nid := range layout.NodeSamples {
		s := layout.NodeSamples[nid]
		sort.Slice(s, func(i, j int) bool { return s[i].Offset < s[j].Offset })
	}
	cp, err := plan.BuildChunkPlan(layout)
	if err != nil {
		return nil, err
	}
	var units []*unit
	for _, c := range cp.Chunks {
		units = append(units, &unit{node: c.Node, offset: c.Offset, length: c.Length, samples: c.Samples})
	}
	for _, e := range cp.Edges {
		units = append(units, &unit{node: e.Node, offset: e.Placed.Offset, length: e.Placed.Len, samples: []plan.Placed{e.Placed}})
	}
	// Deterministic global order: sort by (node, offset) before the
	// seeded shuffle so the slice a rank consumes depends only on the
	// seed and the placement, never on plan-construction order.
	sort.Slice(units, func(i, j int) bool {
		if units[i].node != units[j].node {
			return units[i].node < units[j].node
		}
		if units[i].offset != units[j].offset {
			return units[i].offset < units[j].offset
		}
		// A chunk-aligned edge sample larger than the chunk size can
		// share (node, offset) with a chunk; length breaks the tie.
		return units[i].length < units[j].length
	})
	return units, nil
}

// sequenceRange builds the seeded global unit order, restricts it to
// units [lo, hi) (hi < 0 means the end), and starts the fetch pipeline
// over the rank-th of world slices of that range. Assignment within the
// range is cut-relative — unit i goes to rank (i-lo) % world — so after
// an elastic membership change the survivors can repartition exactly
// the unconsumed suffix among themselves (DESIGN.md §13).
func (fs *FS) sequenceRange(seed int64, rank, world, lo, hi int) (*Epoch, error) {
	// Cross-epoch prefetch only predicts full-range epochs: a mid-epoch
	// cut (reshard) changes the assignment rule, so lookahead for it
	// would be guessing.
	fullRange := lo == 0 && hi < 0
	units, err := fs.buildUnits()
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(units), func(i, j int) { units[i], units[j] = units[j], units[i] })
	if hi < 0 || hi > len(units) {
		hi = len(units)
	}
	if lo > hi {
		lo = hi
	}
	units = units[lo:hi]
	if world > 1 {
		slice := units[:0:0]
		for i := rank; i < len(units); i += world {
			slice = append(slice, units[i])
		}
		units = slice
	}
	total := 0
	for i, u := range units {
		u.seq = i
		total += len(u.samples)
	}

	ep := &Epoch{
		fs:       fs,
		rng:      rand.New(rand.NewSource(seed ^ 0x9E3779B9)),
		ready:    make(chan *unit, fs.cfg.Window),
		errCh:    make(chan error, 1),
		abort:    make(chan struct{}),
		degNodes: make(map[int]struct{}),
		total:    total,
	}
	// Fetch pipeline: the dispatcher below coalesces the shuffled unit
	// stream into groups drained by Prefetchers workers.
	work := make(chan *fetchGroup)
	var wg sync.WaitGroup
	for w := 0; w < fs.cfg.Prefetchers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for g := range work {
				err := ep.fetchGroup(g)
				if err == nil {
					for gi, u := range g.units {
						select {
						case ep.ready <- u:
						case <-ep.abort:
							for _, v := range g.units[gi:] {
								fs.freeUnit(v)
							}
							return
						}
					}
					continue
				}
				if fs.cfg.AllowDegraded && degradable(err) {
					for _, u := range g.units {
						ep.noteSkip(u)
					}
					continue
				}
				select {
				case ep.errCh <- err:
				default:
				}
				ep.abortOnce.Do(func() { close(ep.abort) })
				return
			}
		}()
	}
	go func() {
		ep.dispatch(units, work)
		close(work)
		// All of this epoch's groups are handed out: the queue pairs now
		// mostly idle between completions, which is the window the
		// clairvoyant prefetcher fills with next-epoch reads.
		if fs.prefetch != nil && fullRange {
			fs.maybePrefetch(fs.nextSeed(seed), rank, world)
		}
		wg.Wait()
		close(ep.ready)
	}()
	return ep, nil
}

// dispatch walks the shuffled unit order, merging each unit with
// not-yet-taken same-target units within the PrefetchDepth lookahead
// window, bounded by CoalesceBytes and half the arena (so blocking
// group allocations always complete). A unit too large for the caps
// still ships as its own group.
func (ep *Epoch) dispatch(units []*unit, work chan<- *fetchGroup) {
	fs := ep.fs
	cs := fs.cfg.ChunkSize
	maxChunks := fs.arena.Arena().NumChunks() / 2
	if maxChunks < 1 {
		maxChunks = 1
	}
	taken := make([]bool, len(units))
	for i := 0; i < len(units); i++ {
		if taken[i] {
			continue
		}
		taken[i] = true
		g := &fetchGroup{node: units[i].node, units: []*unit{units[i]}}
		if !fs.cfg.NoCoalesce {
			bytes := int64(units[i].length)
			chunks := units[i].chunkCount(cs)
			for j := i + 1; j < len(units) && j <= i+fs.cfg.PrefetchDepth; j++ {
				if taken[j] || units[j].node != g.node {
					continue
				}
				cb := int64(units[j].length)
				cc := units[j].chunkCount(cs)
				if bytes+cb > fs.cfg.CoalesceBytes || chunks+cc > maxChunks {
					continue
				}
				taken[j] = true
				g.units = append(g.units, units[j])
				bytes += cb
				chunks += cc
			}
			if len(g.units) > 1 {
				fs.pipe.CoalescedUnits.Add(int64(len(g.units) - 1))
			}
		}
		select {
		case work <- g:
		case <-ep.abort:
		}
	}
}

// noteSkip records a unit dropped in degraded mode.
func (ep *Epoch) noteSkip(u *unit) {
	ep.skipped.Add(int64(len(u.samples)))
	ep.fs.counters.DegradedSamples.Add(int64(len(u.samples)))
	ep.degMu.Lock()
	ep.degNodes[int(u.node)] = struct{}{}
	ep.degMu.Unlock()
}

// degradedNodes returns the sorted set of nodes skipped so far.
func (ep *Epoch) degradedNodes() []int {
	ep.degMu.Lock()
	nodes := make([]int, 0, len(ep.degNodes))
	for n := range ep.degNodes {
		nodes = append(nodes, n)
	}
	ep.degMu.Unlock()
	sort.Ints(nodes)
	return nodes
}

// fetchGroup brings a coalesced group into cache chunks: lookahead
// store hits are copied straight in (no wire), the remainder goes
// through the wire pipeline. A wire failure releases every chunk of
// the group — including store-served ones — before returning so
// degraded skips never leak arena memory.
func (ep *Epoch) fetchGroup(g *fetchGroup) error {
	fs := ep.fs
	misses := g.units
	if fs.prefetch != nil {
		misses = ep.serveFromStore(g)
		if len(misses) == 0 {
			return nil
		}
	}
	if err := ep.fetchWire(g.node, misses); err != nil {
		for _, u := range g.units {
			fs.freeUnit(u)
		}
		return err
	}
	return nil
}

// freeUnit releases whatever payload a unit holds — arena cache chunks
// and/or server-assembled sample buffers — after a failure or abort.
func (fs *FS) freeUnit(u *unit) {
	if u.chunks != nil {
		fs.arena.Free(u.chunks)
		u.chunks = nil
	}
	if u.assembled != nil {
		for _, b := range u.assembled {
			fs.Recycle(b)
		}
		u.assembled = nil
	}
}

// fetchWire is the wire half of fetchGroup. Prep stage: allocate every
// unit's chunks from the blocking arena and build the scatter list (one
// segment per chunk, each pointing into huge-page memory — the
// response payload lands there with no intermediate copy). Post stage:
// one vectored command on the target's next queue pair (or one command
// per chunk in NoCoalesce mode). Poll stage: wait for completion. The
// target's breaker gates the fetch; on failure the misses' chunks are
// freed and nil'ed before returning.
func (ep *Epoch) fetchWire(node uint16, units []*unit) error {
	fs := ep.fs
	tg := fs.targets[node]
	if !tg.brk.Allow() {
		return fmt.Errorf("%w: %s circuit open", ErrDegraded, tg.addr)
	}
	if fs.cfg.ServerAssembly && !tg.noAssembly.Load() {
		err := ep.fetchAssembled(tg, units)
		var ue *nvmetcp.UnsupportedOpError
		if !errors.As(err, &ue) {
			return err
		}
		// Old-opcode target (rolling upgrade): latch the capability,
		// count the downgrade, and fall through to the vectored chunk
		// path. The breaker already granted this fetch — no re-Allow.
		tg.noAssembly.Store(true)
		fs.pipe.OffloadDowngrades.Add(1)
	}
	prep := time.Now()
	cs := fs.cfg.ChunkSize
	total := 0
	for _, u := range units {
		total += u.chunkCount(cs)
	}
	all := fs.arena.AllocN(total)
	segs := make([]nvmetcp.Seg, 0, total)
	k := 0
	var bytes int64
	for _, u := range units {
		nc := u.chunkCount(cs)
		u.chunks = all[k : k+nc]
		k += nc
		for ci := 0; ci < nc; ci++ {
			segLen := cs
			if rem := int(u.length) - ci*cs; rem < segLen {
				segLen = rem
			}
			segs = append(segs, nvmetcp.Seg{Dst: u.chunks[ci].Bytes()[:segLen], Off: u.offset + int64(ci*cs)})
			bytes += int64(segLen)
		}
	}
	fs.pipe.ObservePrep(time.Since(prep))
	for _, u := range units {
		fs.cfg.Trace.Record(trace.KindPost, u.seq, u.node, int(u.length))
	}

	var ferr error
	post := time.Now()
	if fs.cfg.NoCoalesce {
		pendings := make([]*nvmetcp.RePending, 0, len(segs))
		for _, s := range segs {
			pd, err := tg.qp.ReadAsync(s.Dst, s.Off)
			if err != nil {
				ferr = err
				break
			}
			pendings = append(pendings, pd)
		}
		fs.pipe.ObservePost(time.Since(post))
		poll := time.Now()
		for _, pd := range pendings {
			if _, err := pd.Wait(); err != nil && ferr == nil {
				ferr = err
			}
		}
		fs.pipe.ObservePoll(time.Since(poll))
		if ferr == nil {
			fs.pipe.WireReads.Add(int64(len(pendings)))
			fs.pipe.WireSegments.Add(int64(len(pendings)))
		}
	} else {
		pd, err := tg.qp.ReadVecAsync(segs)
		fs.pipe.ObservePost(time.Since(post))
		poll := time.Now()
		if err == nil {
			_, err = pd.Wait()
		}
		fs.pipe.ObservePoll(time.Since(poll))
		ferr = err
		if ferr == nil {
			fs.pipe.WireReads.Add(1)
			fs.pipe.WireSegments.Add(int64(len(segs)))
		}
	}
	if ferr != nil {
		fs.arena.Free(all)
		for _, u := range units {
			u.chunks = nil
		}
		tg.noteFailure(ferr)
		return ferr
	}
	fs.pipe.WireBytes.Add(bytes)
	for _, u := range units {
		fs.cfg.Trace.Record(trace.KindComplete, u.seq, u.node, int(u.length))
	}
	tg.brk.Success()
	return nil
}

// assemblyTransform resolves the configured offload transform; the
// canonical negatives (-1) and zero both mean TransformNone.
func (fs *FS) assemblyTransform() byte {
	if fs.cfg.AssemblyTransform <= 0 {
		return nvmetcp.TransformNone
	}
	return byte(fs.cfg.AssemblyTransform)
}

// postSamples submits segs as one or more opReadSamples commands under
// the configured per-command descriptor cap, returning every in-flight
// pending. On a submission error the already-submitted pendings are
// still returned — the caller must Wait them before touching the
// destination buffers.
func (fs *FS) postSamples(tg *target, xform byte, segs []nvmetcp.SampleSeg) ([]*nvmetcp.RePending, error) {
	per := fs.cfg.AssemblySamplesPerCmd
	if per <= 0 || per > nvmetcp.MaxSampleDescs {
		per = nvmetcp.MaxSampleDescs
	}
	pendings := make([]*nvmetcp.RePending, 0, (len(segs)+per-1)/per)
	for lo := 0; lo < len(segs); lo += per {
		hi := lo + per
		if hi > len(segs) {
			hi = len(segs)
		}
		pd, err := tg.qp.ReadSamplesAsync(xform, segs[lo:hi], nil)
		if err != nil {
			return pendings, err
		}
		pendings = append(pendings, pd)
	}
	return pendings, nil
}

// verifyAssembled checks and strips each record's crc32c trailer in
// place when the epoch runs the crc transform. The stripped body
// aliases the pooled buffer, so recycling stays exact.
func verifyAssembled(xform byte, units []*unit) error {
	if xform != nvmetcp.TransformCRC32C {
		return nil
	}
	for _, u := range units {
		for si, b := range u.assembled {
			body, ok := nvmetcp.VerifyCRC32C(b)
			if !ok {
				return fmt.Errorf("live: crc32c mismatch on sample %d", u.samples[si].Sample)
			}
			u.assembled[si] = body
		}
	}
	return nil
}

// fetchAssembled is the near-data alternative to the chunked wire path:
// the group is posted as opReadSamples offload commands whose scatter
// destinations are per-sample pool buffers. The target assembles (and
// transforms) each record from its extents, so chunk padding and
// edge-sample overfetch never cross the NIC, and the units skip both
// arena staging and the client copy stage. An *UnsupportedOpError
// passes through untouched and without a breaker penalty so fetchWire
// can downgrade the target; every other failure releases the buffers
// and feeds the breaker exactly like the chunked path.
func (ep *Epoch) fetchAssembled(tg *target, units []*unit) error {
	fs := ep.fs
	xform := fs.assemblyTransform()
	prep := time.Now()
	nsamples := 0
	for _, u := range units {
		nsamples += len(u.samples)
	}
	segs := make([]nvmetcp.SampleSeg, 0, nsamples)
	var sampleBytes, unitBytes int64
	for _, u := range units {
		u.assembled = make([][]byte, len(u.samples))
		for si, pl := range u.samples {
			buf := fs.alloc(nvmetcp.TransformOutLen(xform, int(pl.Len)))
			u.assembled[si] = buf
			segs = append(segs, nvmetcp.SampleSeg{Dst: buf, Off: pl.Offset, N: int(pl.Len)})
			sampleBytes += int64(len(buf))
		}
		unitBytes += int64(u.length)
	}
	fs.pipe.ObservePrep(time.Since(prep))
	for _, u := range units {
		fs.cfg.Trace.Record(trace.KindPost, u.seq, u.node, int(u.length))
	}

	post := time.Now()
	pendings, ferr := fs.postSamples(tg, xform, segs)
	fs.pipe.ObservePost(time.Since(post))
	poll := time.Now()
	for _, pd := range pendings {
		if _, err := pd.Wait(); err != nil && ferr == nil {
			ferr = err
		}
	}
	fs.pipe.ObservePoll(time.Since(poll))
	if ferr == nil {
		ferr = verifyAssembled(xform, units)
	}
	if ferr != nil {
		for _, u := range units {
			fs.freeUnit(u)
		}
		var ue *nvmetcp.UnsupportedOpError
		if errors.As(ferr, &ue) {
			return ferr // capability miss, not a health failure
		}
		tg.noteFailure(ferr)
		return ferr
	}
	fs.pipe.WireReads.Add(int64(len(pendings)))
	fs.pipe.WireSegments.Add(int64(len(segs)))
	// Only the records themselves ride the response payload — WireBytes
	// counts exactly the post-transform sample bytes, never chunk
	// padding. The per-record length block is framing, like capsule
	// headers, and is excluded just as opReadVec excludes its header.
	fs.pipe.WireBytes.Add(sampleBytes)
	fs.pipe.OffloadCmds.Add(int64(len(pendings)))
	fs.pipe.OffloadSamples.Add(int64(len(segs)))
	if saved := unitBytes - sampleBytes; saved > 0 {
		fs.pipe.OffloadSavedBytes.Add(saved)
	}
	for _, u := range units {
		fs.cfg.Trace.Record(trace.KindComplete, u.seq, u.node, int(u.length))
	}
	tg.brk.Success()
	return nil
}

// Total reports the number of samples the epoch plans to deliver.
func (ep *Epoch) Total() int { return ep.total }

// Skipped reports the samples skipped so far in degraded mode.
func (ep *Epoch) Skipped() int { return int(ep.skipped.Load()) }

// NextBatch returns the next mini-batch: random selection across the
// resident window of fetched chunks, sequential within each chunk — the
// copy-thread emission discipline of §III-D2. Item buffers come from
// the FS buffer pool; hand them back with RecycleItems to keep epochs
// allocation-free. ok is false when the epoch is exhausted. A hard I/O
// failure surfaces as an error and ends the epoch; an epoch that
// skipped samples in degraded mode keeps emitting from healthy targets
// and reports a *DegradedError (matching ErrDegraded) on its final
// call.
func (ep *Epoch) NextBatch() ([]Item, bool, error) {
	if ep.failed != nil {
		return nil, false, ep.failed
	}
	if ep.finished {
		return nil, false, nil
	}
	var items []Item
	for len(items) < ep.fs.cfg.BatchSize {
		// Refill the resident window without blocking.
		for !ep.readyClosed && len(ep.resident) < ep.fs.cfg.Window {
			stop := false
			select {
			case err := <-ep.errCh:
				ep.failed = err
				return items, false, err
			case u, ok := <-ep.ready:
				if !ok {
					ep.readyClosed = true
				} else {
					ep.resident = append(ep.resident, u)
				}
			default:
				stop = true
			}
			if stop {
				break
			}
		}
		if len(ep.resident) == 0 {
			if ep.readyClosed {
				break // epoch exhausted
			}
			// Nothing resident: block for the next fetched unit.
			select {
			case err := <-ep.errCh:
				ep.failed = err
				return items, false, err
			case u, ok := <-ep.ready:
				if !ok {
					ep.readyClosed = true
					continue
				}
				ep.resident = append(ep.resident, u)
			}
		}
		k := ep.rng.Intn(len(ep.resident))
		u := ep.resident[k]
		idx := u.next
		pl := u.samples[idx]
		u.next++
		cstart := time.Now()
		var buf []byte
		if u.assembled != nil {
			// Server-assembled unit: the target already extracted the
			// record into a pool buffer — hand it out, no copy stage.
			buf = u.assembled[idx]
			u.assembled[idx] = nil
		} else {
			buf = ep.fs.alloc(int(pl.Len))
			copyFromChunks(u, pl, buf, ep.fs.cfg.ChunkSize)
		}
		ep.fs.pipe.ObserveCopy(time.Since(cstart))
		ep.fs.cfg.Trace.Record(trace.KindEmit, u.seq, u.node, int(pl.Len))
		items = append(items, Item{Index: pl.Sample, Data: buf})
		ep.emitted++
		if u.next == len(u.samples) {
			if u.chunks != nil {
				ep.fs.arena.Free(u.chunks)
				u.chunks = nil
			}
			u.assembled = nil // every entry already handed out
			ep.fs.cfg.Trace.Record(trace.KindFree, u.seq, u.node, 0)
			ep.resident = append(ep.resident[:k], ep.resident[k+1:]...)
		}
	}
	if len(items) == 0 {
		ep.finished = true
		if sk := ep.skipped.Load(); sk > 0 {
			ep.fs.counters.DegradedBatches.Add(1)
			return nil, false, &DegradedError{Samples: int(sk), Nodes: ep.degradedNodes()}
		}
		return nil, false, nil
	}
	if ep.skipped.Load() > 0 {
		ep.fs.counters.DegradedBatches.Add(1)
	}
	return items, true, nil
}

func copyFromChunks(u *unit, pl plan.Placed, dst []byte, chunkSize int) {
	off := pl.Offset - u.offset
	copied := 0
	for copied < int(pl.Len) {
		pos := off + int64(copied)
		ci := int(pos) / chunkSize
		within := int(pos) % chunkSize
		copied += copy(dst[copied:int(pl.Len)], u.chunks[ci].Bytes()[within:])
	}
}

// Drain consumes the whole epoch and returns all items. In degraded mode
// the returned error is a *DegradedError describing what was skipped;
// every returned item is still intact.
func (ep *Epoch) Drain() ([]Item, error) {
	var all []Item
	for {
		items, ok, err := ep.NextBatch()
		all = append(all, items...)
		if err != nil {
			return all, err
		}
		if !ok {
			return all, nil
		}
	}
}
