// Package live is the real-concurrency DLFS client: the same design as
// internal/core — hash-sharded upload, in-memory tree-based sample
// directory, chunk-level batched reads from a huge-page-style cache — but
// running on ordinary goroutines against real TCP NVMe-oF-style targets
// (internal/nvmetcp) instead of the discrete-event simulation.
//
// Unlike the simulation, the live path assumes the fabric misbehaves:
// every target is driven through a reconnecting transport with
// per-command deadlines and a per-target circuit breaker. When a target
// is down and Config.AllowDegraded is set, prefetchers skip its chunks
// and the epoch keeps emitting samples from healthy nodes, finishing
// with a DegradedError instead of wedging the training loop.
package live

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"dlfs/internal/dataset"
	"dlfs/internal/directory"
	"dlfs/internal/hugepage"
	"dlfs/internal/metrics"
	"dlfs/internal/nvmetcp"
	"dlfs/internal/plan"
	"dlfs/internal/sample"
)

// Config tunes the live client. Zero values take defaults.
type Config struct {
	ChunkSize      int   // sample cache chunk size (default 256 KiB)
	CacheBytes     int64 // sample cache size (default 64 MiB)
	BatchSize      int   // samples per NextBatch (default 32)
	Prefetchers    int   // concurrent chunk fetchers (default 4)
	Window         int   // resident units to randomise across (default 8)
	ReadCacheBytes int64 // ReadSample V-bit cache budget (default 8 MiB; <0 disables)

	// Resilience knobs.
	DialTimeout      time.Duration // target dial + handshake bound (default 5s)
	RequestTimeout   time.Duration // per-command deadline (default 10s; <0 disables)
	MaxRetries       int           // transport retries per operation (default 4)
	RetryBaseDelay   time.Duration // backoff base (default 5ms)
	RetryMaxDelay    time.Duration // backoff cap (default 500ms)
	BreakerThreshold int           // consecutive failures to open a breaker (default 3)
	BreakerCooldown  time.Duration // open → half-open probe delay (default 500ms)
	AllowDegraded    bool          // skip down targets instead of failing the epoch
}

func (c Config) withDefaults() Config {
	if c.ChunkSize <= 0 {
		c.ChunkSize = 256 << 10
	}
	if c.CacheBytes <= 0 {
		c.CacheBytes = 64 << 20
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 32
	}
	if c.Prefetchers <= 0 {
		c.Prefetchers = 4
	}
	if c.Window <= 0 {
		c.Window = 8
	}
	if c.ReadCacheBytes == 0 {
		c.ReadCacheBytes = 8 << 20
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = 5 * time.Second
	}
	if c.RequestTimeout == 0 {
		c.RequestTimeout = 10 * time.Second
	}
	if c.MaxRetries <= 0 {
		c.MaxRetries = 4
	}
	if c.RetryBaseDelay <= 0 {
		c.RetryBaseDelay = 5 * time.Millisecond
	}
	if c.RetryMaxDelay <= 0 {
		c.RetryMaxDelay = 500 * time.Millisecond
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 3
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 500 * time.Millisecond
	}
	return c
}

// FS is a live DLFS client bound to a set of TCP targets.
type FS struct {
	cfg      Config
	ds       *dataset.Dataset
	dir      *directory.Directory
	targets  []*target
	counters *metrics.Resilience
	arena    *blockingArena
	placed   []plan.Placed
	nodeOf   []uint16
	keyIdx   map[uint64]int
	closed   bool

	// ReadSample V-bit cache: recently fetched samples kept in memory,
	// mirroring the simulated path's read cache. Guarded by cacheMu.
	cacheMu    sync.Mutex
	cache      map[int][]byte
	cacheOrder []int
	cacheBytes int64
	cacheHits  int64
}

// Errors.
var (
	ErrNotFound = errors.New("live: no such sample")
	ErrClosed   = errors.New("live: file system closed")
)

// Mount connects to the targets, uploads each target's hash-shard of the
// dataset, and builds the replicated directory — dlfs_mount over real
// sockets. The caller owns closing the returned FS.
func Mount(addrs []string, ds *dataset.Dataset, cfg Config) (*FS, error) {
	cfg = cfg.withDefaults()
	if len(addrs) == 0 {
		return nil, errors.New("live: no targets")
	}
	counters := &metrics.Resilience{}
	opt := nvmetcp.Options{DialTimeout: cfg.DialTimeout, RequestTimeout: cfg.RequestTimeout}
	targets := make([]*target, len(addrs))
	for i, a := range addrs {
		rc, err := nvmetcp.NewReconnector(a, opt, nvmetcp.RetryPolicy{
			MaxRetries: cfg.MaxRetries,
			BaseDelay:  cfg.RetryBaseDelay,
			MaxDelay:   cfg.RetryMaxDelay,
			Seed:       int64(i) + 1,
		}, counters)
		if err != nil {
			for _, prev := range targets[:i] {
				prev.rc.Close() //nolint:errcheck
			}
			return nil, fmt.Errorf("live: target %s: %w", a, err)
		}
		targets[i] = &target{
			addr: a,
			rc:   rc,
			brk:  newBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown, counters),
		}
	}

	n := len(addrs)
	parts := make([]*directory.Partition, n)
	for i := range parts {
		parts[i] = directory.NewPartition(uint16(i))
	}
	offs := make([]int64, n)
	placed := make([]plan.Placed, ds.Len())
	nodeOf := make([]uint16, ds.Len())
	keyIdx := make(map[uint64]int, ds.Len())
	for i := 0; i < ds.Len(); i++ {
		key := ds.Samples[i].Key()
		if _, dup := keyIdx[key]; dup {
			return nil, fmt.Errorf("live: key collision on sample %d", i)
		}
		keyIdx[key] = i
		nid := directory.HomeNode(key, n)
		content := ds.Content(i)
		if _, err := targets[nid].rc.WriteAt(content, offs[nid]); err != nil {
			return nil, fmt.Errorf("live: uploading sample %d: %w", i, err)
		}
		e, err := sample.NewEntry(nid, key, offs[nid], int32(len(content)))
		if err != nil {
			return nil, err
		}
		if err := parts[nid].Add(e); err != nil {
			return nil, err
		}
		placed[i] = plan.Placed{Sample: i, Offset: offs[nid], Len: int32(len(content))}
		nodeOf[i] = nid
		offs[nid] += int64(len(content))
	}
	dir, err := directory.New(parts)
	if err != nil {
		return nil, err
	}
	arena, err := hugepage.NewArena(cfg.CacheBytes, cfg.ChunkSize)
	if err != nil {
		return nil, err
	}
	return &FS{
		cfg:      cfg,
		ds:       ds,
		dir:      dir,
		targets:  targets,
		counters: counters,
		arena:    newBlockingArena(arena),
		placed:   placed,
		nodeOf:   nodeOf,
		keyIdx:   keyIdx,
		cache:    make(map[int][]byte),
	}, nil
}

// Directory exposes the sample directory.
func (fs *FS) Directory() *directory.Directory { return fs.dir }

// ReadSample reads one sample synchronously by dataset index (the
// dlfs_open/read/close path), serving repeats from the V-bit read cache.
// When the sample's target breaker is open the read fails fast with an
// error matching ErrDegraded.
func (fs *FS) ReadSample(idx int) ([]byte, error) {
	if fs.closed {
		return nil, ErrClosed
	}
	if idx < 0 || idx >= fs.ds.Len() {
		return nil, fmt.Errorf("%w: index %d", ErrNotFound, idx)
	}
	if hit := fs.cacheGet(idx); hit != nil {
		return hit, nil
	}
	pl := fs.placed[idx]
	buf := make([]byte, pl.Len)
	if err := fs.targets[fs.nodeOf[idx]].read(buf, pl.Offset); err != nil {
		return nil, err
	}
	fs.cachePut(idx, buf)
	return buf, nil
}

// CacheHits reports ReadSample requests served from the read cache.
func (fs *FS) CacheHits() int64 {
	fs.cacheMu.Lock()
	defer fs.cacheMu.Unlock()
	return fs.cacheHits
}

// cacheGet returns a copy of the cached sample, refreshing LRU order.
func (fs *FS) cacheGet(idx int) []byte {
	if fs.cfg.ReadCacheBytes < 0 {
		return nil
	}
	fs.cacheMu.Lock()
	defer fs.cacheMu.Unlock()
	data, ok := fs.cache[idx]
	if !ok {
		return nil
	}
	fs.cacheHits++
	for i, v := range fs.cacheOrder {
		if v == idx {
			fs.cacheOrder = append(fs.cacheOrder[:i], fs.cacheOrder[i+1:]...)
			break
		}
	}
	fs.cacheOrder = append(fs.cacheOrder, idx)
	out := make([]byte, len(data))
	copy(out, data)
	return out
}

// cachePut inserts a sample, evicting LRU entries past the byte budget
// and maintaining the directory's V bits to mirror cache state.
func (fs *FS) cachePut(idx int, data []byte) {
	if fs.cfg.ReadCacheBytes < 0 || int64(len(data)) > fs.cfg.ReadCacheBytes {
		return
	}
	fs.cacheMu.Lock()
	defer fs.cacheMu.Unlock()
	if _, dup := fs.cache[idx]; dup {
		return
	}
	kept := make([]byte, len(data))
	copy(kept, data)
	fs.cache[idx] = kept
	fs.cacheOrder = append(fs.cacheOrder, idx)
	fs.cacheBytes += int64(len(kept))
	fs.setV(idx, true)
	for fs.cacheBytes > fs.cfg.ReadCacheBytes && len(fs.cacheOrder) > 0 {
		victim := fs.cacheOrder[0]
		fs.cacheOrder = fs.cacheOrder[1:]
		fs.cacheBytes -= int64(len(fs.cache[victim]))
		delete(fs.cache, victim)
		fs.setV(victim, false)
	}
}

func (fs *FS) setV(idx int, v bool) {
	_, ref, _, ok := fs.dir.Lookup(fs.ds.Samples[idx].Key())
	if ok {
		fs.dir.SetV(ref, v)
	}
}

// ReadName resolves a sample name through the directory and reads it.
func (fs *FS) ReadName(name string, attrs ...string) ([]byte, error) {
	e, _, _, ok := fs.dir.LookupName(name, attrs...)
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	idx, ok := fs.keyIdx[e.Key()]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	return fs.ReadSample(idx)
}

// Close tears down the target connections.
func (fs *FS) Close() error {
	if fs.closed {
		return nil
	}
	fs.closed = true
	var err error
	for _, tg := range fs.targets {
		if cerr := tg.rc.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// blockingArena wraps the huge-page arena with blocking allocation: a
// fetcher waits until enough chunks are free instead of failing.
type blockingArena struct {
	mu    sync.Mutex
	cond  *sync.Cond
	arena *hugepage.Arena
}

func newBlockingArena(a *hugepage.Arena) *blockingArena {
	b := &blockingArena{arena: a}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *blockingArena) allocN(n int) []*hugepage.Chunk {
	b.mu.Lock()
	defer b.mu.Unlock()
	for {
		chunks, err := b.arena.AllocN(n)
		if err == nil {
			return chunks
		}
		b.cond.Wait()
	}
}

func (b *blockingArena) free(chunks []*hugepage.Chunk) {
	b.mu.Lock()
	for _, c := range chunks {
		b.arena.Free(c) //nolint:errcheck
	}
	b.mu.Unlock()
	b.cond.Broadcast()
}

// Item is one delivered sample.
type Item struct {
	Index int
	Data  []byte
}

// unit mirrors the core package's fetch granule.
type unit struct {
	node    uint16
	offset  int64
	length  int32
	samples []plan.Placed
	chunks  []*hugepage.Chunk
	next    int
}

// Epoch is a chunk-batched pass over the dataset, driven by background
// prefetchers.
type Epoch struct {
	fs    *FS
	rng   *rand.Rand
	ready chan *unit
	errCh chan error

	abort     chan struct{}
	abortOnce sync.Once

	skipped  atomic.Int64 // samples skipped in degraded mode
	degMu    sync.Mutex
	degNodes map[int]struct{}

	resident    []*unit
	total       int
	emitted     int
	failed      error
	readyClosed bool
	finished    bool
}

// Sequence starts an epoch with the given seed (dlfs_sequence +
// chunk-level batching). Background fetchers start immediately.
func (fs *FS) Sequence(seed int64) (*Epoch, error) {
	if fs.closed {
		return nil, ErrClosed
	}
	n := len(fs.targets)
	layout := &plan.Layout{NodeSamples: make([][]plan.Placed, n), ChunkSize: int64(fs.cfg.ChunkSize)}
	for idx, pl := range fs.placed {
		nid := fs.nodeOf[idx]
		layout.NodeSamples[nid] = append(layout.NodeSamples[nid], pl)
	}
	for nid := range layout.NodeSamples {
		s := layout.NodeSamples[nid]
		sort.Slice(s, func(i, j int) bool { return s[i].Offset < s[j].Offset })
	}
	cp, err := plan.BuildChunkPlan(layout)
	if err != nil {
		return nil, err
	}
	var units []*unit
	for _, c := range cp.Chunks {
		units = append(units, &unit{node: c.Node, offset: c.Offset, length: c.Length, samples: c.Samples})
	}
	for _, e := range cp.Edges {
		units = append(units, &unit{node: e.Node, offset: e.Placed.Offset, length: e.Placed.Len, samples: []plan.Placed{e.Placed}})
	}
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(units), func(i, j int) { units[i], units[j] = units[j], units[i] })

	ep := &Epoch{
		fs:       fs,
		rng:      rand.New(rand.NewSource(seed ^ 0x9E3779B9)),
		ready:    make(chan *unit, fs.cfg.Window),
		errCh:    make(chan error, 1),
		abort:    make(chan struct{}),
		degNodes: make(map[int]struct{}),
		total:    cp.NumSamples(),
	}
	// Fetch pipeline: a shared work queue drained by Prefetchers workers.
	work := make(chan *unit)
	var wg sync.WaitGroup
	for w := 0; w < fs.cfg.Prefetchers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for u := range work {
				err := ep.fetch(u)
				if err == nil {
					select {
					case ep.ready <- u:
					case <-ep.abort:
						ep.fs.arena.free(u.chunks)
						u.chunks = nil
						return
					}
					continue
				}
				if fs.cfg.AllowDegraded && degradable(err) {
					ep.noteSkip(u)
					continue
				}
				select {
				case ep.errCh <- err:
				default:
				}
				ep.abortOnce.Do(func() { close(ep.abort) })
				return
			}
		}()
	}
	go func() {
		for _, u := range units {
			select {
			case work <- u:
			case <-ep.abort:
			}
		}
		close(work)
		wg.Wait()
		close(ep.ready)
	}()
	return ep, nil
}

// noteSkip records a unit dropped in degraded mode.
func (ep *Epoch) noteSkip(u *unit) {
	ep.skipped.Add(int64(len(u.samples)))
	ep.fs.counters.DegradedSamples.Add(int64(len(u.samples)))
	ep.degMu.Lock()
	ep.degNodes[int(u.node)] = struct{}{}
	ep.degMu.Unlock()
}

// degradedNodes returns the sorted set of nodes skipped so far.
func (ep *Epoch) degradedNodes() []int {
	ep.degMu.Lock()
	nodes := make([]int, 0, len(ep.degNodes))
	for n := range ep.degNodes {
		nodes = append(nodes, n)
	}
	ep.degMu.Unlock()
	sort.Ints(nodes)
	return nodes
}

// fetch brings one unit into cache chunks: one remote read per chunk-sized
// segment, issued asynchronously on the unit's reconnecting queue pair.
// The target's breaker gates the fetch, and a failure releases every
// chunk before returning so degraded skips never leak arena memory.
func (ep *Epoch) fetch(u *unit) error {
	tg := ep.fs.targets[u.node]
	if !tg.brk.Allow() {
		return fmt.Errorf("%w: %s circuit open", ErrDegraded, tg.addr)
	}
	cs := ep.fs.cfg.ChunkSize
	nChunks := (int(u.length) + cs - 1) / cs
	u.chunks = ep.fs.arena.allocN(nChunks)
	pendings := make([]*nvmetcp.RePending, 0, nChunks)
	var ferr error
	for i := 0; i < nChunks; i++ {
		segLen := cs
		if rem := int(u.length) - i*cs; rem < segLen {
			segLen = rem
		}
		pd, err := tg.rc.ReadAsync(u.chunks[i].Bytes()[:segLen], u.offset+int64(i*cs))
		if err != nil {
			ferr = err
			break
		}
		pendings = append(pendings, pd)
	}
	for _, pd := range pendings {
		if _, err := pd.Wait(); err != nil && ferr == nil {
			ferr = err
		}
	}
	if ferr != nil {
		ep.fs.arena.free(u.chunks)
		u.chunks = nil
		tg.brk.Failure()
		return ferr
	}
	tg.brk.Success()
	return nil
}

// Total reports the number of samples the epoch plans to deliver.
func (ep *Epoch) Total() int { return ep.total }

// Skipped reports the samples skipped so far in degraded mode.
func (ep *Epoch) Skipped() int { return int(ep.skipped.Load()) }

// NextBatch returns the next mini-batch: random selection across the
// resident window of fetched chunks, sequential within each chunk — the
// copy-thread emission discipline of §III-D2. ok is false when the epoch
// is exhausted. A hard I/O failure surfaces as an error and ends the
// epoch; an epoch that skipped samples in degraded mode keeps emitting
// from healthy targets and reports a *DegradedError (matching
// ErrDegraded) on its final call.
func (ep *Epoch) NextBatch() ([]Item, bool, error) {
	if ep.failed != nil {
		return nil, false, ep.failed
	}
	if ep.finished {
		return nil, false, nil
	}
	var items []Item
	for len(items) < ep.fs.cfg.BatchSize {
		// Refill the resident window without blocking.
		for !ep.readyClosed && len(ep.resident) < ep.fs.cfg.Window {
			stop := false
			select {
			case err := <-ep.errCh:
				ep.failed = err
				return items, false, err
			case u, ok := <-ep.ready:
				if !ok {
					ep.readyClosed = true
				} else {
					ep.resident = append(ep.resident, u)
				}
			default:
				stop = true
			}
			if stop {
				break
			}
		}
		if len(ep.resident) == 0 {
			if ep.readyClosed {
				break // epoch exhausted
			}
			// Nothing resident: block for the next fetched unit.
			select {
			case err := <-ep.errCh:
				ep.failed = err
				return items, false, err
			case u, ok := <-ep.ready:
				if !ok {
					ep.readyClosed = true
					continue
				}
				ep.resident = append(ep.resident, u)
			}
		}
		k := ep.rng.Intn(len(ep.resident))
		u := ep.resident[k]
		pl := u.samples[u.next]
		u.next++
		buf := make([]byte, pl.Len)
		copyFromChunks(u, pl, buf, ep.fs.cfg.ChunkSize)
		items = append(items, Item{Index: pl.Sample, Data: buf})
		ep.emitted++
		if u.next == len(u.samples) {
			ep.fs.arena.free(u.chunks)
			u.chunks = nil
			ep.resident = append(ep.resident[:k], ep.resident[k+1:]...)
		}
	}
	if len(items) == 0 {
		ep.finished = true
		if sk := ep.skipped.Load(); sk > 0 {
			ep.fs.counters.DegradedBatches.Add(1)
			return nil, false, &DegradedError{Samples: int(sk), Nodes: ep.degradedNodes()}
		}
		return nil, false, nil
	}
	if ep.skipped.Load() > 0 {
		ep.fs.counters.DegradedBatches.Add(1)
	}
	return items, true, nil
}

func copyFromChunks(u *unit, pl plan.Placed, dst []byte, chunkSize int) {
	off := pl.Offset - u.offset
	copied := 0
	for copied < int(pl.Len) {
		pos := off + int64(copied)
		ci := int(pos) / chunkSize
		within := int(pos) % chunkSize
		copied += copy(dst[copied:], u.chunks[ci].Bytes()[within:])
	}
}

// Drain consumes the whole epoch and returns all items. In degraded mode
// the returned error is a *DegradedError describing what was skipped;
// every returned item is still intact.
func (ep *Epoch) Drain() ([]Item, error) {
	var all []Item
	for {
		items, ok, err := ep.NextBatch()
		all = append(all, items...)
		if err != nil {
			return all, err
		}
		if !ok {
			return all, nil
		}
	}
}
