package live

import (
	"testing"

	"dlfs/internal/blockdev"
	"dlfs/internal/nvmetcp"
)

// benchTargets is startTargets without *testing.T plumbing so benchmarks
// can share it.
func benchTargets(b *testing.B, n int) []string {
	b.Helper()
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		tgt := nvmetcp.NewTarget(blockdev.New(512<<20), 64)
		addr, err := tgt.Listen("127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { tgt.Close() }) //nolint:errcheck
		addrs[i] = addr
	}
	return addrs
}

// BenchmarkLiveEpoch measures end-to-end epoch throughput (samples/sec
// and MB/s) across the pipeline feature matrix: queue-pair fan-out on
// and off, request coalescing on and off, buffer pooling on and off.
// The qp1/nocoalesce/nopool cell reproduces the old single-connection
// per-chunk path and is the baseline for the speedup acceptance bound.
func BenchmarkLiveEpoch(b *testing.B) {
	const (
		numSamples = 512
		sampleSize = 16 << 10
	)
	cases := []struct {
		name string
		cfg  Config
	}{
		{"qp1_nocoalesce_nopool", Config{QueuePairs: 1, NoCoalesce: true, NoBufferPool: true}},
		{"qp1_coalesce_pool", Config{QueuePairs: 1}},
		{"qp4_nocoalesce_pool", Config{QueuePairs: 4, NoCoalesce: true}},
		{"qp4_coalesce_nopool", Config{QueuePairs: 4, NoBufferPool: true}},
		{"qp4_coalesce_pool", Config{QueuePairs: 4}},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			addrs := benchTargets(b, 2)
			ds := testDS(numSamples, sampleSize)
			cfg := tc.cfg
			cfg.ChunkSize = 64 << 10
			cfg.CacheBytes = 16 << 20
			cfg.ReadCacheBytes = -1 // measure the wire path, not the V-bit cache
			fs, err := Mount(addrs, ds, cfg)
			if err != nil {
				b.Fatal(err)
			}
			defer fs.Close() //nolint:errcheck
			b.SetBytes(int64(numSamples * sampleSize))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ep, err := fs.Sequence(int64(i))
				if err != nil {
					b.Fatal(err)
				}
				delivered := 0
				for {
					items, ok, err := ep.NextBatch()
					if err != nil {
						b.Fatal(err)
					}
					delivered += len(items)
					fs.RecycleItems(items)
					if !ok {
						break
					}
				}
				if delivered != numSamples {
					b.Fatalf("delivered %d of %d", delivered, numSamples)
				}
			}
			b.StopTimer()
			st := fs.Stats()
			b.ReportMetric(float64(numSamples*b.N)/b.Elapsed().Seconds(), "samples/sec")
			if st.Pipeline.WireReads > 0 {
				b.ReportMetric(st.Pipeline.CoalesceRatio(), "segs/wire-read")
			}
		})
	}
}

// BenchmarkReadSample measures the dlfs_open/read/close hot path served
// from the sharded V-bit cache. The pooled hit path with histograms off
// is the allocs/op acceptance bound (≤1 alloc/op, pinned by
// TestReadSampleHitPathAllocs); the hist cells show the observability
// overhead — two clock reads and two atomic adds per hit.
func BenchmarkReadSample(b *testing.B) {
	cases := []struct {
		name       string
		pool, hist bool
	}{
		{"pool", true, false},
		{"nopool", false, false},
		{"pool_hist", true, true},
		{"nopool_hist", false, true},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			addrs := benchTargets(b, 1)
			ds := testDS(64, 4<<10)
			fs, err := Mount(addrs, ds, Config{NoBufferPool: !tc.pool, StageHistograms: tc.hist})
			if err != nil {
				b.Fatal(err)
			}
			defer fs.Close() //nolint:errcheck
			// Warm the cache: 64 * 4 KiB fits the default budget easily.
			for i := 0; i < ds.Len(); i++ {
				got, err := fs.ReadSample(i)
				if err != nil {
					b.Fatal(err)
				}
				fs.Recycle(got)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				got, err := fs.ReadSample(i % ds.Len())
				if err != nil {
					b.Fatal(err)
				}
				fs.Recycle(got)
			}
		})
	}
}

// BenchmarkReadSampleParallel drives the sharded cache from all procs —
// the contention case the per-shard mutexes exist for.
func BenchmarkReadSampleParallel(b *testing.B) {
	addrs := benchTargets(b, 1)
	ds := testDS(64, 4<<10)
	fs, err := Mount(addrs, ds, Config{})
	if err != nil {
		b.Fatal(err)
	}
	defer fs.Close() //nolint:errcheck
	for i := 0; i < ds.Len(); i++ {
		got, err := fs.ReadSample(i)
		if err != nil {
			b.Fatal(err)
		}
		fs.Recycle(got)
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			got, err := fs.ReadSample(i % ds.Len())
			if err != nil {
				b.Error(err)
				return
			}
			fs.Recycle(got)
			i++
		}
	})
}

// TestBenchmarkConfigsDeliver sanity-checks every benchmark cell once so
// `go test` catches a broken matrix without running `make bench`.
func TestBenchmarkConfigsDeliver(t *testing.T) {
	for _, cfg := range []Config{
		{QueuePairs: 1, NoCoalesce: true, NoBufferPool: true},
		{QueuePairs: 4},
	} {
		addrs := startTargets(t, 2)
		ds := testDS(96, 8<<10)
		cfg.ChunkSize = 32 << 10
		cfg.CacheBytes = 4 << 20
		fs, err := Mount(addrs, ds, cfg)
		if err != nil {
			t.Fatal(err)
		}
		items, err := fs.mustEpoch(t)
		if err != nil {
			t.Fatal(err)
		}
		if len(items) != 96 {
			t.Fatalf("cfg %+v delivered %d of 96", cfg, len(items))
		}
		fs.Close() //nolint:errcheck
	}
}

func (fs *FS) mustEpoch(t *testing.T) ([]Item, error) {
	t.Helper()
	ep, err := fs.Sequence(7)
	if err != nil {
		return nil, err
	}
	return ep.Drain()
}
