package live

import (
	"errors"
	"sync"
	"testing"
	"time"

	"dlfs/internal/blockdev"
	"dlfs/internal/chaos"
	"dlfs/internal/coord"
	"dlfs/internal/dataset"
	"dlfs/internal/nvmetcp"
)

// startChaosTargets stands up n real targets, each behind its own
// fault-injecting proxy, and returns the proxy addresses plus the
// proxies for mid-test manipulation.
func startChaosTargets(t *testing.T, n int, cfg func(i int) chaos.Config) ([]string, []*chaos.Proxy) {
	t.Helper()
	addrs := make([]string, n)
	proxies := make([]*chaos.Proxy, n)
	for i := 0; i < n; i++ {
		tgt := nvmetcp.NewTarget(blockdev.New(256<<20), 32)
		taddr, err := tgt.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { tgt.Close() }) //nolint:errcheck
		p := chaos.NewProxy(taddr, cfg(i))
		paddr, err := p.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { p.Close() }) //nolint:errcheck
		addrs[i] = paddr
		proxies[i] = p
	}
	return addrs, proxies
}

// TestChaosEpochSurvivesDropsAndDelays is the healthy-degradation
// acceptance case: a live run over 3 targets with seeded delays, seeded
// connection drops, and a deliberate mid-epoch kill of every live
// connection must still deliver every sample exactly once with verified
// content.
func TestChaosEpochSurvivesDropsAndDelays(t *testing.T) {
	addrs, proxies := startChaosTargets(t, 3, func(i int) chaos.Config {
		return chaos.Config{
			Seed:      int64(i) + 1,
			DelayProb: 0.05,
			Delay:     time.Millisecond,
			DropProb:  0.004,
		}
	})
	ds := testDS(300, 3000)
	fs, err := Mount(addrs, ds, Config{
		ChunkSize:        16 << 10,
		CacheBytes:       2 << 20,
		RequestTimeout:   2 * time.Second,
		DialTimeout:      2 * time.Second,
		MaxRetries:       8,
		RetryBaseDelay:   time.Millisecond,
		RetryMaxDelay:    20 * time.Millisecond,
		BreakerThreshold: 100, // drops here are transient; never trip
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close() //nolint:errcheck

	ep, err := fs.Sequence(11)
	if err != nil {
		t.Fatal(err)
	}
	var items []Item
	first, ok, err := ep.NextBatch()
	if err != nil {
		t.Fatal(err)
	}
	items = append(items, first...)
	// Sever every live connection mid-epoch: the client must re-dial
	// and re-issue without losing or corrupting a single sample.
	killed := 0
	for _, p := range proxies {
		killed += p.KillActive()
	}
	if killed == 0 {
		t.Fatal("mid-epoch kill found no live connections")
	}
	for ok {
		var batch []Item
		batch, ok, err = ep.NextBatch()
		if err != nil {
			t.Fatalf("epoch failed under chaos: %v", err)
		}
		items = append(items, batch...)
	}

	if len(items) != 300 {
		t.Fatalf("delivered %d of 300 under chaos", len(items))
	}
	seen := make([]bool, 300)
	for _, it := range items {
		if seen[it.Index] {
			t.Fatalf("sample %d delivered twice", it.Index)
		}
		seen[it.Index] = true
		if dataset.ChecksumBytes(it.Data) != ds.Checksum(it.Index) {
			t.Fatalf("sample %d corrupted under chaos", it.Index)
		}
	}
	st := fs.Stats()
	if st.Resilience.Reconnects < 1 {
		t.Fatalf("expected reconnects after kill, stats: %s", st.Resilience)
	}
	if st.Resilience.DegradedSamples != 0 {
		t.Fatalf("healthy-recovery run skipped samples: %s", st.Resilience)
	}
	t.Logf("chaos stats: %s", st.Resilience)
}

// TestChaosMultiQPSurvivesSingleConnectionKill is the multi-queue-pair
// acceptance case: with 3 queue pairs per target, repeatedly killing
// one of a target's connections mid-epoch must not lose, duplicate, or
// corrupt a single striped sample — the survivors keep draining the
// sequence while the killed pair re-dials.
func TestChaosMultiQPSurvivesSingleConnectionKill(t *testing.T) {
	addrs, proxies := startChaosTargets(t, 2, func(i int) chaos.Config {
		return chaos.Config{Seed: int64(i) + 30}
	})
	ds := testDS(240, 3000)
	fs, err := Mount(addrs, ds, Config{
		ChunkSize:        16 << 10,
		CacheBytes:       2 << 20,
		QueuePairs:       3,
		RequestTimeout:   2 * time.Second,
		DialTimeout:      2 * time.Second,
		MaxRetries:       8,
		RetryBaseDelay:   time.Millisecond,
		RetryMaxDelay:    20 * time.Millisecond,
		BreakerThreshold: 100, // kills here are transient; never trip
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close() //nolint:errcheck

	ep, err := fs.Sequence(31)
	if err != nil {
		t.Fatal(err)
	}
	var items []Item
	batch, ok, err := ep.NextBatch()
	if err != nil {
		t.Fatal(err)
	}
	items = append(items, batch...)
	// Kill exactly one of each target's queue-pair connections every few
	// batches; the other pairs must carry the epoch meanwhile.
	kills := 0
	for ok {
		if len(items)%64 < fs.cfg.BatchSize {
			for _, p := range proxies {
				if p.KillOne() {
					kills++
				}
			}
		}
		batch, ok, err = ep.NextBatch()
		if err != nil {
			t.Fatalf("epoch failed under single-QP kills: %v", err)
		}
		items = append(items, batch...)
	}
	if kills == 0 {
		t.Fatal("no connections were killed mid-epoch")
	}

	if len(items) != 240 {
		t.Fatalf("delivered %d of 240 under QP kills", len(items))
	}
	seen := make([]bool, 240)
	for _, it := range items {
		if seen[it.Index] {
			t.Fatalf("sample %d delivered twice", it.Index)
		}
		seen[it.Index] = true
		if dataset.ChecksumBytes(it.Data) != ds.Checksum(it.Index) {
			t.Fatalf("sample %d corrupted under QP kills", it.Index)
		}
	}
	st := fs.Stats()
	if st.Resilience.Reconnects < 1 {
		t.Fatalf("expected reconnects after QP kills, stats: %s", st.Resilience)
	}
	if st.Resilience.DegradedSamples != 0 {
		t.Fatalf("multi-QP run skipped samples: %s", st.Resilience)
	}
	t.Logf("killed %d single connections; stats: %s; pipeline: %s", kills, st.Resilience, st.Pipeline)
}

// TestChaosDegradedEpochWithDeadTarget is the hard-failure acceptance
// case: one of three targets permanently blackholed. The epoch must
// complete in degraded mode — every healthy-node sample delivered and
// verified, the dead node's samples skipped, the breaker open, and the
// retry/timeout/degraded counters accurate.
func TestChaosDegradedEpochWithDeadTarget(t *testing.T) {
	addrs, proxies := startChaosTargets(t, 3, func(i int) chaos.Config {
		return chaos.Config{Seed: int64(i) + 10}
	})
	ds := testDS(120, 2000)
	fs, err := Mount(addrs, ds, Config{
		ChunkSize:        8 << 10,
		RequestTimeout:   100 * time.Millisecond,
		DialTimeout:      150 * time.Millisecond,
		MaxRetries:       2,
		RetryBaseDelay:   time.Millisecond,
		RetryMaxDelay:    5 * time.Millisecond,
		BreakerThreshold: 2,
		BreakerCooldown:  time.Hour, // stays open for the whole test
		AllowDegraded:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close() //nolint:errcheck

	const dead = 1
	onDead := 0
	for i := 0; i < ds.Len(); i++ {
		if fs.nodeOf[i] == dead {
			onDead++
		}
	}
	if onDead == 0 {
		t.Fatal("no samples hashed to the dead target")
	}
	// Blackhole (do not sever): outstanding commands must hit their
	// deadlines, proving the timeout path, before reconnects start
	// timing out at the handshake.
	proxies[dead].SetBlackhole(true)

	ep, err := fs.Sequence(5)
	if err != nil {
		t.Fatal(err)
	}
	items, err := ep.Drain()
	var derr *DegradedError
	if !errors.As(err, &derr) {
		t.Fatalf("Drain error = %v, want *DegradedError", err)
	}
	if !errors.Is(err, ErrDegraded) {
		t.Fatal("DegradedError does not match ErrDegraded")
	}
	if derr.Samples != onDead {
		t.Fatalf("degraded error reports %d skipped, want %d", derr.Samples, onDead)
	}
	if len(derr.Nodes) != 1 || derr.Nodes[0] != dead {
		t.Fatalf("degraded nodes = %v, want [%d]", derr.Nodes, dead)
	}
	if ep.Skipped() != onDead {
		t.Fatalf("Skipped() = %d, want %d", ep.Skipped(), onDead)
	}
	if len(items) != ds.Len()-onDead {
		t.Fatalf("delivered %d, want all %d healthy samples", len(items), ds.Len()-onDead)
	}
	for _, it := range items {
		if fs.nodeOf[it.Index] == dead {
			t.Fatalf("sample %d from the dead target was delivered", it.Index)
		}
		if dataset.ChecksumBytes(it.Data) != ds.Checksum(it.Index) {
			t.Fatalf("sample %d corrupted in degraded run", it.Index)
		}
	}

	st := fs.Stats()
	if st.Targets[dead].State != "open" {
		t.Fatalf("dead target breaker state = %q, want open", st.Targets[dead].State)
	}
	if st.Resilience.Timeouts < 1 {
		t.Fatalf("no command timeouts recorded against a blackholed target: %s", st.Resilience)
	}
	if st.Resilience.Retries < 1 {
		t.Fatalf("no retries recorded: %s", st.Resilience)
	}
	if st.Resilience.BreakerTrips < 1 {
		t.Fatalf("breaker never tripped: %s", st.Resilience)
	}
	if st.Resilience.DegradedSamples != int64(onDead) {
		t.Fatalf("DegradedSamples = %d, want %d", st.Resilience.DegradedSamples, onDead)
	}
	if st.Resilience.DegradedBatches < 1 {
		t.Fatalf("no degraded batches counted: %s", st.Resilience)
	}
	// The epoch stays terminated.
	if _, ok, _ := ep.NextBatch(); ok {
		t.Fatal("NextBatch continued after degraded completion")
	}
	t.Logf("degraded stats: %s", st.Resilience)
}

// TestChaosBreakerRecoversHalfOpen proves the open → half-open → closed
// cycle: a blackholed target trips the breaker and fast-fails reads;
// once the fault lifts and the cooldown elapses, a single probe closes
// the breaker and reads flow again.
func TestChaosBreakerRecoversHalfOpen(t *testing.T) {
	addrs, proxies := startChaosTargets(t, 2, func(i int) chaos.Config {
		return chaos.Config{Seed: int64(i) + 20}
	})
	ds := testDS(30, 1024)
	fs, err := Mount(addrs, ds, Config{
		RequestTimeout:   60 * time.Millisecond,
		DialTimeout:      60 * time.Millisecond,
		MaxRetries:       1,
		RetryBaseDelay:   time.Millisecond,
		BreakerThreshold: 2,
		BreakerCooldown:  150 * time.Millisecond,
		ReadCacheBytes:   -1, // force every read onto the wire
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close() //nolint:errcheck

	const sick = 1
	idx := -1
	for i := 0; i < ds.Len(); i++ {
		if fs.nodeOf[i] == sick {
			idx = i
			break
		}
	}
	if idx < 0 {
		t.Fatal("no sample on target 1")
	}

	proxies[sick].SetBlackhole(true)
	for i := 0; i < 2; i++ {
		if _, err := fs.ReadSample(idx); err == nil {
			t.Fatal("read succeeded against a blackholed target")
		}
	}
	if st := fs.Stats(); st.Targets[sick].State != "open" {
		t.Fatalf("breaker state = %q after failures, want open", st.Targets[sick].State)
	}
	// While open (cooldown not yet elapsed), reads fast-fail.
	start := time.Now()
	if _, err := fs.ReadSample(idx); !errors.Is(err, ErrDegraded) {
		t.Fatalf("open-breaker read: %v, want ErrDegraded", err)
	}
	if elapsed := time.Since(start); elapsed > 50*time.Millisecond {
		t.Fatalf("open-breaker read took %v, want fast-fail", elapsed)
	}

	// Heal the fabric, let the cooldown pass: the next read is the
	// half-open probe and closes the breaker.
	proxies[sick].SetBlackhole(false)
	time.Sleep(200 * time.Millisecond)
	got, err := fs.ReadSample(idx)
	if err != nil {
		t.Fatalf("probe read after recovery: %v", err)
	}
	if dataset.ChecksumBytes(got) != ds.Checksum(idx) {
		t.Fatal("probe read corrupt")
	}
	st := fs.Stats()
	if st.Targets[sick].State != "closed" {
		t.Fatalf("breaker state = %q after probe, want closed", st.Targets[sick].State)
	}
	if st.Resilience.BreakerProbes < 1 {
		t.Fatalf("no probe counted: %s", st.Resilience)
	}
}

// TestChaosClusterPeerDiesMidAllgather is the multi-node fail-fast
// acceptance case: rank 2's coordinator connection runs through a chaos
// proxy whose byte budget kills it partway through sending the
// directory blob. The surviving ranks must fail their mount with a
// typed coord.PeerLostError naming rank 2 — fast, via the
// coordinator's abort broadcast, not by waiting out a timeout.
func TestChaosClusterPeerDiesMidAllgather(t *testing.T) {
	const world = 3
	addrs := startTargets(t, world)
	srv := coord.NewServer(world, coord.ServerOptions{})
	caddr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close() //nolint:errcheck

	// The doomed rank's control-plane path: budget enough for the join
	// handshake and the mount-start barrier, but not for the full
	// directory blob (80 samples / 3 ranks ≈ 26 entries ≈ 430 B), so
	// the connection dies mid-allgather by construction.
	doomed := chaos.NewProxy(caddr, chaos.Config{Seed: 1, MaxConnBytes: 220})
	daddr, err := doomed.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer doomed.Close() //nolint:errcheck

	ds := testDS(80, 2000)
	cfg := Config{CoordWaitTimeout: 10 * time.Second}
	var wg sync.WaitGroup
	errs := make([]error, world)
	start := time.Now()
	for r := 0; r < world; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			coordAddr := caddr
			if r == 2 {
				coordAddr = daddr
			}
			var fs *FS
			fs, errs[r] = MountCluster(coordAddr, r, world, addrs, ds, cfg)
			if fs != nil {
				fs.Close() //nolint:errcheck
			}
		}(r)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("cluster mount wedged after mid-allgather death")
	}
	if elapsed := time.Since(start); elapsed > cfg.withDefaults().DialTimeout {
		t.Fatalf("survivors took %v to fail, want under the %v dial timeout", elapsed, cfg.withDefaults().DialTimeout)
	}
	if errs[2] == nil {
		t.Fatal("doomed rank mounted through a killed connection")
	}
	for r := 0; r < 2; r++ {
		var pl *coord.PeerLostError
		if !errors.As(errs[r], &pl) || !errors.Is(errs[r], coord.ErrPeerLost) {
			t.Fatalf("rank %d: want PeerLostError, got %v", r, errs[r])
		}
		if pl.Rank != 2 {
			t.Fatalf("rank %d blames rank %d, want 2", r, pl.Rank)
		}
	}
	if k := doomed.Stats().Kills; k < 1 {
		t.Fatalf("chaos proxy recorded %d kills", k)
	}
}
