package live

import (
	"fmt"

	"dlfs/internal/coord"
	"dlfs/internal/peercache"
)

// Cooperative peer sample cache (Config.PeerCache, cluster mounts only).
//
// Every rank hosts a peercache.Server answering samples out of its own
// V-bit read cache (or, on a serve-side miss, its own local target).
// Ownership is consistent and coordination-free: the owner of sample i
// is rank nodeOf[i] — the same HomeNode placement that decided which
// target stores the bytes — so the owner's "origin" read is a local
// fetch and every rank independently agrees whom to ask. A ReadSample
// miss on a non-owner first asks the owner peer; only if the peer is
// dead, slow, or declines does the read fall back to the origin target
// directly. The effect is FanStore's: a sample crosses the storage wire
// once per cluster (the owner pulls it), then fans out over the cheap
// peer fabric instead of once per rank over the target wire.
//
// Degradation, never stalls: all peer failures are typed
// (peercache.ErrUnavailable / ErrMiss), counted as PeerFallbacks, and
// bounded by PeerFetchTimeout — a chaos-killed peer costs one deadline,
// after which the read completes from origin exactly as if the peer
// cache were off.

// peerSet is one rank's view of the cooperative cache: its own server
// plus a client per peer rank (nil at the self slot).
type peerSet struct {
	self    int
	addr    string // this rank's bound service address
	srv     *peercache.Server
	clients []*peercache.Client
}

func (ps *peerSet) close() {
	if ps.srv != nil {
		ps.srv.Close() //nolint:errcheck
	}
	for _, cl := range ps.clients {
		if cl != nil {
			cl.Close() //nolint:errcheck
		}
	}
}

// startPeerCache hosts this rank's share of the cooperative cache and
// exchanges service addresses with the other ranks (one extra allgather
// on the mount path). Called by mountWithSession after the FS is built.
func (fs *FS) startPeerCache(cl coord.Session) error {
	opt := peercache.Options{
		DialTimeout:    fs.cfg.PeerFetchTimeout,
		RequestTimeout: fs.cfg.PeerFetchTimeout,
		Release:        fs.Recycle,
	}
	srv := peercache.NewServer(fs.servePeer, opt)
	addr, err := srv.Listen(fs.cfg.PeerCacheListen)
	if err != nil {
		return err
	}
	addrs, err := cl.Allgather(gatherPeers, []byte(addr))
	if err != nil {
		srv.Close() //nolint:errcheck
		return err
	}
	ps := &peerSet{self: fs.rank, addr: addr, srv: srv, clients: make([]*peercache.Client, len(addrs))}
	for r, a := range addrs {
		if r == fs.rank {
			continue
		}
		ps.clients[r] = peercache.NewClient(string(a), opt)
	}
	fs.peers = ps
	return nil
}

// PeerAddr reports this rank's peer-cache service address ("" when the
// peer cache is off).
func (fs *FS) PeerAddr() string {
	if fs.peers == nil {
		return ""
	}
	return fs.peers.addr
}

// servePeer answers one peer request: this rank's read cache first,
// then this rank's own target. It never consults other peers — the
// requester already resolved ownership, so recursing would only add a
// hop (or a cycle). Returned buffers are pooled; the server recycles
// them after the write via Options.Release.
func (fs *FS) servePeer(idx int) ([]byte, error) {
	if fs.closed.Load() {
		return nil, ErrClosed
	}
	if idx < 0 || idx >= fs.ds.Len() {
		return nil, fmt.Errorf("%w: index %d", ErrNotFound, idx)
	}
	if fs.scache != nil {
		if hit := fs.scache.get(idx); hit != nil {
			fs.pipe.PeerServed.Add(1)
			return hit, nil
		}
	}
	pl := fs.placed[idx]
	buf := fs.alloc(int(pl.Len))
	if err := fs.targets[fs.nodeOf[idx]].read(buf, pl.Offset); err != nil {
		fs.Recycle(buf)
		return nil, err
	}
	fs.pipe.OriginReads.Add(1)
	fs.pipe.OriginBytes.Add(int64(pl.Len))
	if fs.scache != nil {
		fs.scache.put(idx, buf)
	}
	fs.pipe.PeerServed.Add(1)
	return buf, nil
}

// peerFetch tries the owning peer for sample idx. nil means the caller
// must read from origin; every failure is counted as a fallback and the
// sample's correctness never depends on the peer answering.
func (fs *FS) peerFetch(owner, idx, size int) []byte {
	cl := fs.peers.clients[owner]
	if cl == nil {
		return nil
	}
	data, err := cl.Fetch(idx, fs.alloc)
	if err != nil {
		fs.pipe.PeerFallbacks.Add(1)
		return nil
	}
	if len(data) != size {
		fs.Recycle(data)
		fs.pipe.PeerFallbacks.Add(1)
		return nil
	}
	fs.pipe.PeerHits.Add(1)
	fs.pipe.PeerBytes.Add(int64(len(data)))
	return data
}
