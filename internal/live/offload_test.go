package live

import (
	"errors"
	"testing"
	"time"

	"dlfs/internal/blockdev"
	"dlfs/internal/chaos"
	"dlfs/internal/dataset"
	"dlfs/internal/nvmetcp"
)

// startLegacyTargets stands up n targets that reject opReadSamples with
// statusBadOp — the pre-offload opcode set of a rolling upgrade.
func startLegacyTargets(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		tgt := nvmetcp.NewTargetConfig(blockdev.New(256<<20), nvmetcp.Config{Depth: 32, LegacyOps: true})
		addr, err := tgt.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { tgt.Close() }) //nolint:errcheck
		addrs[i] = addr
	}
	return addrs
}

// datasetBytes sums the post-extraction size of every sample.
func datasetBytes(ds *dataset.Dataset) int64 {
	var total int64
	for i := 0; i < ds.Len(); i++ {
		total += int64(len(ds.Content(i)))
	}
	return total
}

// drainEpoch mounts nothing new — it runs one full verified epoch at
// seed and returns the pipeline's wire-byte delta for that epoch.
func drainEpoch(t *testing.T, fs *FS, ds *dataset.Dataset, seed int64) int64 {
	t.Helper()
	before := fs.Pipeline().Snapshot().WireBytes
	ep, err := fs.Sequence(seed)
	if err != nil {
		t.Fatal(err)
	}
	if n := drainAndVerify(t, ep, ds); n != ds.Len() {
		t.Fatalf("delivered %d of %d", n, ds.Len())
	}
	return fs.Pipeline().Snapshot().WireBytes - before
}

// TestServerAssemblyWireExact is the tentpole acceptance test: with
// near-data assembly on and no transform, one cold epoch moves exactly
// the samples' bytes over the wire — no chunk padding, no edge-sample
// overfetch — and strictly less than the vectored chunk path moves for
// the identical dataset, chunk size, and seed. The eliminated padding
// is accounted, byte-exact, in OffloadSavedBytes.
func TestServerAssemblyWireExact(t *testing.T) {
	// 3000-byte samples on 4 KiB chunks: every chunk-path unit carries
	// padding, so the baseline always overfetches.
	ds := testDS(120, 3000)
	total := datasetBytes(ds)

	base, err := Mount(startTargets(t, 2), ds, Config{ChunkSize: 4 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer base.Close() //nolint:errcheck
	baseWire := drainEpoch(t, base, ds, 7)
	if baseWire <= total {
		t.Fatalf("chunk baseline moved %d bytes for %d sample bytes; the layout must overfetch", baseWire, total)
	}

	fs, err := Mount(startTargets(t, 2), ds, Config{ChunkSize: 4 << 10, ServerAssembly: true})
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close() //nolint:errcheck
	wire := drainEpoch(t, fs, ds, 7)

	if wire != total {
		t.Fatalf("assembled epoch moved %d wire bytes, want exactly the %d sample bytes", wire, total)
	}
	pl := fs.Pipeline().Snapshot()
	if pl.OffloadCmds == 0 {
		t.Fatal("no offload commands posted with ServerAssembly on")
	}
	if pl.OffloadSamples != int64(ds.Len()) {
		t.Fatalf("OffloadSamples = %d, want %d", pl.OffloadSamples, ds.Len())
	}
	if pl.OffloadDowngrades != 0 {
		t.Fatalf("capable targets were downgraded %d times", pl.OffloadDowngrades)
	}
	// The padding the baseline fetched is exactly what offload saved.
	if pl.OffloadSavedBytes != baseWire-total {
		t.Fatalf("OffloadSavedBytes = %d, want %d (baseline %d - samples %d)",
			pl.OffloadSavedBytes, baseWire-total, baseWire, total)
	}
}

// TestServerAssemblyCRC32CEpoch runs the end-to-end-verified transform:
// every record crosses the wire with a crc32c trailer the client strips
// after checking, so delivered bytes still checksum clean and the wire
// carries exactly 4 extra bytes per sample.
func TestServerAssemblyCRC32CEpoch(t *testing.T) {
	ds := testDS(90, 2500)
	fs, err := Mount(startTargets(t, 2), ds, Config{
		ChunkSize:         4 << 10,
		ServerAssembly:    true,
		AssemblyTransform: int(nvmetcp.TransformCRC32C),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close() //nolint:errcheck

	wire := drainEpoch(t, fs, ds, 9)
	want := datasetBytes(ds) + 4*int64(ds.Len())
	if wire != want {
		t.Fatalf("crc epoch moved %d wire bytes, want %d (samples + 4/record)", wire, want)
	}
	pl := fs.Pipeline().Snapshot()
	if pl.OffloadSamples != int64(ds.Len()) || pl.OffloadDowngrades != 0 {
		t.Fatalf("offload counters off: %+v", pl)
	}
}

// TestMountRejectsSizedlessTransform: flate's output size is data-
// dependent, so the epoch pipeline (which must pre-size scatter
// destinations) refuses it at mount, as does an out-of-range ID.
func TestMountRejectsSizedlessTransform(t *testing.T) {
	addrs := startTargets(t, 1)
	ds := testDS(10, 512)
	if _, err := Mount(addrs, ds, Config{ServerAssembly: true, AssemblyTransform: int(nvmetcp.TransformFlate)}); err == nil {
		t.Fatal("mount accepted the flate transform for the epoch pipeline")
	}
	if _, err := Mount(addrs, ds, Config{ServerAssembly: true, AssemblyTransform: 99}); err == nil {
		t.Fatal("mount accepted an unknown transform ID")
	}
}

// TestLegacyTargetDowngradeEpoch is the rolling-upgrade acceptance
// case: every target speaks only the old opcode set. The epoch must
// complete with verified content via per-target downgrade to the
// vectored chunk path — never fail — and the capability latch must
// stop re-probing on later epochs.
func TestLegacyTargetDowngradeEpoch(t *testing.T) {
	addrs := startLegacyTargets(t, 2)
	ds := testDS(100, 2000)
	fs, err := Mount(addrs, ds, Config{ChunkSize: 8 << 10, ServerAssembly: true})
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close() //nolint:errcheck

	drainEpoch(t, fs, ds, 3)
	pl := fs.Pipeline().Snapshot()
	if pl.OffloadDowngrades == 0 {
		t.Fatal("no downgrade recorded against legacy targets")
	}
	if pl.OffloadCmds != 0 || pl.OffloadSamples != 0 {
		t.Fatalf("offload commands succeeded against legacy targets: %+v", pl)
	}
	for i, tg := range fs.targets {
		if !tg.noAssembly.Load() {
			t.Fatalf("target %d capability latch not set after downgrade", i)
		}
	}

	// The latch is sticky: a second epoch re-probes nothing.
	drainEpoch(t, fs, ds, 4)
	if after := fs.Pipeline().Snapshot(); after.OffloadDowngrades != pl.OffloadDowngrades {
		t.Fatalf("downgrades grew from %d to %d across epochs: the latch must stop re-probing",
			pl.OffloadDowngrades, after.OffloadDowngrades)
	}
}

// TestServerAssemblyPrefetchWarmsNextEpoch: the clairvoyant prefetcher
// rides the offload path too — epoch N's tail assembles epoch N+1's
// units target-side into per-record store entries, and the warm epoch
// drains with zero additional wire reads, handing records straight to
// NextBatch with no chunk or copy stage.
func TestServerAssemblyPrefetchWarmsNextEpoch(t *testing.T) {
	ds := testDS(80, 2000)
	fs, err := Mount(startTargets(t, 2), ds, Config{
		ChunkSize:          8 << 10,
		CacheBytes:         1 << 20,
		ServerAssembly:     true,
		CrossEpochPrefetch: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close() //nolint:errcheck

	ep1, err := fs.Sequence(1)
	if err != nil {
		t.Fatal(err)
	}
	if n := drainAndVerify(t, ep1, ds); n != ds.Len() {
		t.Fatalf("epoch 1 delivered %d of %d", n, ds.Len())
	}
	fs.WaitPrefetch()
	cold := fs.Pipeline().Snapshot()
	if cold.PrefetchedUnits == 0 {
		t.Fatalf("no lookahead happened: %+v", cold)
	}
	if cold.OffloadCmds == 0 {
		t.Fatal("prefetch rounds never used the offload path")
	}

	ep2, err := fs.Sequence(2)
	if err != nil {
		t.Fatal(err)
	}
	if n := drainAndVerify(t, ep2, ds); n != ds.Len() {
		t.Fatalf("epoch 2 delivered %d of %d", n, ds.Len())
	}
	warm := fs.Pipeline().Snapshot()
	if warm.PrefetchHitUnits == 0 {
		t.Fatal("warm epoch never hit the lookahead store")
	}
	if got := warm.WireReads - cold.WireReads; got != 0 {
		t.Fatalf("warm epoch still issued %d wire reads", got)
	}
}

// TestClusterPrefetchConsultsPeersFirst: on a cluster mount the
// prefetcher asks the owning rank's cooperative sample cache before
// the storage wire — remotely-owned units park from peer pulls, and
// the warm epoch still delivers verified content.
func TestClusterPrefetchConsultsPeersFirst(t *testing.T) {
	const world = 2
	addrs := startTargets(t, world)
	caddr := startCoord(t, world)
	ds := testDS(60, 2000)
	cfg := Config{
		ChunkSize:          8 << 10,
		CacheBytes:         1 << 20,
		ReadCacheBytes:     32 << 20, // owners hold their full shard: peers always answer
		PeerCache:          true,
		ServerAssembly:     true,
		CrossEpochPrefetch: true,
	}
	fss := mountCluster(t, caddr, addrs, ds, cfg)

	// Warm every owner's read cache so the peer service has records to
	// serve (the service fronts the read cache, not the target).
	for _, fs := range fss {
		readAllVerify(t, fs, ds)
	}
	warmHits := fss[0].Pipeline().Snapshot().PeerHits

	ep1, err := fss[0].Sequence(5)
	if err != nil {
		t.Fatal(err)
	}
	if n := drainAndVerify(t, ep1, ds); n == 0 {
		t.Fatal("rank 0 epoch slice was empty")
	}
	fss[0].WaitPrefetch()
	cold := fss[0].Pipeline().Snapshot()
	if cold.PrefetchedUnits == 0 {
		t.Fatalf("no lookahead on the cluster mount: %+v", cold)
	}
	if cold.PeerHits <= warmHits {
		t.Fatalf("prefetcher never pulled from the peer cache (hits %d, was %d before the round)",
			cold.PeerHits, warmHits)
	}

	ep2, err := fss[0].Sequence(6)
	if err != nil {
		t.Fatal(err)
	}
	if n := drainAndVerify(t, ep2, ds); n == 0 {
		t.Fatal("rank 0 warm epoch was empty")
	}
	if after := fss[0].Pipeline().Snapshot(); after.PrefetchHitUnits == 0 {
		t.Fatal("warm epoch never hit the lookahead store")
	}
}

// TestChaosOffloadDeadTargetDegrades is the mid-offload failure
// acceptance case: one of three targets blackholed while the epoch
// runs with server assembly on. Offload command timeouts must feed the
// same circuit breaker as the chunk path — the epoch completes
// degraded with every healthy sample assembled and verified, and the
// fault is never misread as a capability downgrade.
func TestChaosOffloadDeadTargetDegrades(t *testing.T) {
	addrs, proxies := startChaosTargets(t, 3, func(i int) chaos.Config {
		return chaos.Config{Seed: int64(i) + 40}
	})
	ds := testDS(120, 2000)
	fs, err := Mount(addrs, ds, Config{
		ChunkSize:        8 << 10,
		ServerAssembly:   true,
		RequestTimeout:   100 * time.Millisecond,
		DialTimeout:      150 * time.Millisecond,
		MaxRetries:       2,
		RetryBaseDelay:   time.Millisecond,
		RetryMaxDelay:    5 * time.Millisecond,
		BreakerThreshold: 2,
		BreakerCooldown:  time.Hour, // stays open for the whole test
		AllowDegraded:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close() //nolint:errcheck

	const dead = 1
	onDead := 0
	for i := 0; i < ds.Len(); i++ {
		if fs.nodeOf[i] == dead {
			onDead++
		}
	}
	if onDead == 0 {
		t.Fatal("no samples hashed to the dead target")
	}
	proxies[dead].SetBlackhole(true)

	ep, err := fs.Sequence(5)
	if err != nil {
		t.Fatal(err)
	}
	items, err := ep.Drain()
	var derr *DegradedError
	if !errors.As(err, &derr) {
		t.Fatalf("Drain error = %v, want *DegradedError", err)
	}
	if derr.Samples != onDead {
		t.Fatalf("degraded error reports %d skipped, want %d", derr.Samples, onDead)
	}
	if len(items) != ds.Len()-onDead {
		t.Fatalf("delivered %d, want all %d healthy samples", len(items), ds.Len()-onDead)
	}
	for _, it := range items {
		if dataset.ChecksumBytes(it.Data) != ds.Checksum(it.Index) {
			t.Fatalf("sample %d corrupted in degraded offload run", it.Index)
		}
	}

	st := fs.Stats()
	if st.Targets[dead].State != "open" {
		t.Fatalf("dead target breaker state = %q, want open", st.Targets[dead].State)
	}
	if st.Resilience.BreakerTrips < 1 {
		t.Fatalf("offload timeouts never tripped the breaker: %s", st.Resilience)
	}
	pl := fs.Pipeline().Snapshot()
	// A dead fabric is a health failure, not a missing opcode: the
	// capability latch must stay clear on every target.
	if pl.OffloadDowngrades != 0 {
		t.Fatalf("fabric fault recorded as %d capability downgrades", pl.OffloadDowngrades)
	}
	for i, tg := range fs.targets {
		if tg.noAssembly.Load() {
			t.Fatalf("target %d latched no-assembly after a timeout", i)
		}
	}
	if pl.OffloadCmds == 0 {
		t.Fatal("healthy targets never served offload commands")
	}
}
