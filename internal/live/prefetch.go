package live

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"dlfs/internal/metrics"
	"dlfs/internal/nvmetcp"
	"dlfs/internal/trace"
)

// Clairvoyant cross-epoch prefetch (Config.CrossEpochPrefetch).
//
// The seeded epoch order is deterministic: every rank can compute the
// *next* epoch's shuffled unit slice before the current epoch finishes
// (the property clairvoyant prefetching exploits — the access sequence
// is known arbitrarily far ahead). Once the current epoch's dispatcher
// has handed out all of its fetch groups, the queue pairs spend the
// tail of the epoch mostly idle between completions; the prefetcher
// fills those gaps with coalesced reads for next-epoch units, parking
// the payloads in a bounded lookahead store. When the next epoch's
// fetchGroup finds its unit in the store it copies straight into cache
// chunks and skips the wire — a warm epoch opens with near-zero poll
// time.
//
// The store is bounded by Config.PrefetchBudgetBytes and best-effort
// throughout: a full budget stops the prefetcher (it never evicts what
// it just fetched), a down target skips that node's units via the same
// circuit breaker the demand path uses, and a consumer running a
// different seed than predicted simply misses and pays the wire as
// before. Entries are consumed at most once (take removes them), so a
// store buffer is owned by exactly one side at a time.

// unitKey identifies a fetch unit by placement. The unit plan is a pure
// function of the dataset placement, so the same key is derived by the
// prefetcher (from the predicted epoch) and the consumer (from the
// actual epoch) independently.
type unitKey struct {
	node   uint16
	offset int64
	length int32
}

// pfEntry is one parked unit payload. Exactly one form is set: data
// holds the unit's raw byte range (chunk-path prefetch), samples holds
// per-record pool buffers parallel to the unit's sample list
// (server-assembled or peer-served prefetch).
type pfEntry struct {
	data    []byte
	samples [][]byte
}

// size reports the entry's budget footprint.
func (e pfEntry) size() int64 {
	n := int64(len(e.data))
	for _, b := range e.samples {
		n += int64(len(b))
	}
	return n
}

// release recycles every buffer the entry owns.
func (e pfEntry) release(free func([]byte)) {
	if e.data != nil {
		free(e.data)
	}
	for _, b := range e.samples {
		if b != nil {
			free(b)
		}
	}
}

// prefetchStore is the bounded lookahead region: unit payloads fetched
// ahead of their epoch, keyed by placement identity. FIFO eviction only
// reclaims stale leftovers (entries predicted for a seed that was never
// consumed); within one prefetch round the budget check stops the
// producer before eviction would be needed.
type prefetchStore struct {
	budget int64
	pipe   *metrics.Pipeline
	free   func([]byte)

	mu      sync.Mutex
	entries map[unitKey]pfEntry
	order   []unitKey // insertion order; lazily compacted on eviction
	bytes   int64
}

func newPrefetchStore(budget int64, pipe *metrics.Pipeline, free func([]byte)) *prefetchStore {
	return &prefetchStore{
		budget:  budget,
		pipe:    pipe,
		free:    free,
		entries: make(map[unitKey]pfEntry),
	}
}

// put inserts a fetched payload, taking ownership of the entry's
// buffers. Entries already present keep the original; oversized inserts
// evict oldest-first until the budget holds.
func (s *prefetchStore) put(k unitKey, e pfEntry) {
	sz := e.size()
	if sz > s.budget {
		e.release(s.free) // can never fit: refuse before evicting anything
		return
	}
	s.mu.Lock()
	if _, dup := s.entries[k]; dup {
		s.mu.Unlock()
		e.release(s.free)
		return
	}
	for s.bytes+sz > s.budget && len(s.order) > 0 {
		victim := s.order[0]
		s.order = s.order[1:]
		old, ok := s.entries[victim]
		if !ok {
			continue // already consumed by take
		}
		delete(s.entries, victim)
		s.bytes -= old.size()
		old.release(s.free)
		s.pipe.PrefetchEvictions.Add(1)
	}
	if s.bytes+sz > s.budget {
		s.mu.Unlock()
		e.release(s.free)
		return
	}
	s.entries[k] = e
	s.order = append(s.order, k)
	s.bytes += sz
	s.mu.Unlock()
}

// take removes and returns the entry for k; ok is false on miss. The
// caller owns the returned buffers.
func (s *prefetchStore) take(k unitKey) (pfEntry, bool) {
	s.mu.Lock()
	e, ok := s.entries[k]
	if ok {
		delete(s.entries, k)
		s.bytes -= e.size()
	}
	s.mu.Unlock()
	return e, ok
}

// residentBytes reports the store footprint (tests assert it never
// exceeds the budget).
func (s *prefetchStore) residentBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bytes
}

// drain frees every entry (Close).
func (s *prefetchStore) drain() {
	s.mu.Lock()
	for k, e := range s.entries {
		delete(s.entries, k)
		e.release(s.free)
	}
	s.order = nil
	s.bytes = 0
	s.mu.Unlock()
}

// nextSeed predicts the next epoch's seed (Config.NextEpochSeed,
// default seed+1 — the conventional per-epoch reseed).
func (fs *FS) nextSeed(seed int64) int64 {
	if fs.cfg.NextEpochSeed != nil {
		return fs.cfg.NextEpochSeed(seed)
	}
	return seed + 1
}

// maybePrefetch launches one background prefetch round for the
// predicted epoch (seed, rank, world) unless a round is already
// running. Called by the dispatcher once the current epoch's groups are
// all handed out, i.e. when poll gaps start opening.
func (fs *FS) maybePrefetch(seed int64, rank, world int) {
	if fs.prefetch == nil || !fs.prefetchBusy.CompareAndSwap(false, true) {
		return
	}
	fs.prefetchWG.Add(1)
	go func() {
		defer fs.prefetchWG.Done()
		defer fs.prefetchBusy.Store(false)
		fs.runPrefetch(seed, rank, world)
	}()
}

// WaitPrefetch blocks until any in-flight prefetch round finishes —
// benchmarks and tests use it to draw a deterministic line between
// "epoch N done" and "epoch N+1 starts warm".
func (fs *FS) WaitPrefetch() { fs.prefetchWG.Wait() }

// runPrefetch computes the predicted epoch's unit slice for this rank
// and fetches it into the store, coalescing same-target neighbours into
// vectored reads bounded by CoalesceBytes, until the budget fills or
// the FS closes.
func (fs *FS) runPrefetch(seed int64, rank, world int) {
	units, err := fs.epochSlice(seed, rank, world)
	if err != nil {
		return
	}
	var group []*unit
	var groupBytes int64
	var round int64
	flush := func() {
		if len(group) == 0 {
			return
		}
		round += fs.fetchAhead(group, groupBytes)
		group = group[:0]
		groupBytes = 0
	}
	for _, u := range units {
		select {
		case <-fs.prefetchStop:
			return
		default:
		}
		if round+groupBytes+int64(u.length) > fs.cfg.PrefetchBudgetBytes {
			break // budget exhausted: never evict this round's own entries
		}
		if len(group) > 0 && (group[0].node != u.node || groupBytes+int64(u.length) > fs.cfg.CoalesceBytes) {
			flush()
		}
		group = append(group, u)
		groupBytes += int64(u.length)
	}
	flush()
}

// fetchAhead brings one coalesced group of predicted units into the
// store. The cooperative peer cache is consulted first (cluster mounts
// only) — units fully resident on the owning rank park without
// touching the storage wire; only the residual misses are fetched,
// through server assembly when the target offers it, else as one
// vectored read into pooled buffers. Best-effort: breaker refusals and
// transport errors drop the group (the next epoch pays the wire for
// those units as usual). Returns the bytes stored.
func (fs *FS) fetchAhead(group []*unit, groupBytes int64) int64 {
	group, stored := fs.prefetchFromPeers(group)
	if len(group) == 0 {
		return stored
	}
	tg := fs.targets[group[0].node]
	if !tg.brk.Allow() {
		return stored
	}
	if fs.cfg.ServerAssembly && !tg.noAssembly.Load() {
		n, err := fs.prefetchAssembled(tg, group)
		var ue *nvmetcp.UnsupportedOpError
		if !errors.As(err, &ue) {
			return stored + n
		}
		tg.noAssembly.Store(true)
		fs.pipe.OffloadDowngrades.Add(1)
	}
	bufs := make([][]byte, len(group))
	segs := make([]nvmetcp.Seg, len(group))
	var bytes int64
	for i, u := range group {
		bufs[i] = fs.alloc(int(u.length))
		segs[i] = nvmetcp.Seg{Dst: bufs[i], Off: u.offset}
		bytes += int64(u.length)
	}
	pd, err := tg.qp.ReadVecAsync(segs)
	if err == nil {
		_, err = pd.Wait()
	}
	if err != nil {
		for _, b := range bufs {
			fs.Recycle(b)
		}
		tg.noteFailure(err)
		return stored
	}
	tg.brk.Success()
	for i, u := range group {
		fs.prefetch.put(unitKey{node: u.node, offset: u.offset, length: u.length}, pfEntry{data: bufs[i]})
	}
	fs.pipe.PrefetchedUnits.Add(int64(len(group)))
	fs.pipe.PrefetchedBytes.Add(bytes)
	return stored + bytes
}

// prefetchFromPeers tries to satisfy predicted units from the
// cooperative peer sample cache before the storage wire (cluster
// mounts only). All-or-nothing per unit: a unit parks only when the
// owning rank answers every one of its samples — partial pulls are
// recycled and the unit stays a miss, so a store hit is always a
// complete unit. Peer hits, bytes, and fallbacks land on the same
// counters as the demand path. Skipped entirely when the epoch runs a
// lossy server transform (peers hold raw records). Returns the
// residual misses and the bytes parked.
func (fs *FS) prefetchFromPeers(group []*unit) ([]*unit, int64) {
	if fs.peers == nil {
		return group, 0
	}
	if x := fs.assemblyTransform(); fs.cfg.ServerAssembly &&
		x != nvmetcp.TransformNone && x != nvmetcp.TransformCRC32C {
		return group, 0
	}
	misses := group[:0:0]
	var stored int64
	for _, u := range group {
		owner := int(u.node)
		if owner == fs.rank || owner >= len(fs.peers.clients) || fs.peers.clients[owner] == nil {
			misses = append(misses, u)
			continue
		}
		samples := make([][]byte, len(u.samples))
		ok := true
		var sz int64
		for si, pl := range u.samples {
			buf := fs.peerFetch(owner, pl.Sample, int(pl.Len))
			if buf == nil {
				ok = false
				break
			}
			samples[si] = buf
			sz += int64(len(buf))
		}
		if !ok {
			for _, b := range samples {
				if b != nil {
					fs.Recycle(b)
				}
			}
			misses = append(misses, u)
			continue
		}
		fs.prefetch.put(unitKey{node: u.node, offset: u.offset, length: u.length}, pfEntry{samples: samples})
		fs.pipe.PrefetchedUnits.Add(1)
		fs.pipe.PrefetchedBytes.Add(sz)
		stored += sz
	}
	return misses, stored
}

// prefetchAssembled fetches the residual misses through opReadSamples
// and parks the per-record buffers. The caller already holds the
// breaker's Allow; an *UnsupportedOpError is returned for the caller's
// downgrade latch (no breaker penalty), any other failure recycles and
// feeds the breaker. Returns the bytes stored.
func (fs *FS) prefetchAssembled(tg *target, group []*unit) (int64, error) {
	xform := fs.assemblyTransform()
	entries := make([]pfEntry, len(group))
	var segs []nvmetcp.SampleSeg
	for i, u := range group {
		entries[i].samples = make([][]byte, len(u.samples))
		for si, pl := range u.samples {
			buf := fs.alloc(nvmetcp.TransformOutLen(xform, int(pl.Len)))
			entries[i].samples[si] = buf
			segs = append(segs, nvmetcp.SampleSeg{Dst: buf, Off: pl.Offset, N: int(pl.Len)})
		}
	}
	pendings, ferr := fs.postSamples(tg, xform, segs)
	for _, pd := range pendings {
		if _, err := pd.Wait(); err != nil && ferr == nil {
			ferr = err
		}
	}
	if ferr == nil && xform == nvmetcp.TransformCRC32C {
		for i := range entries {
			for si, b := range entries[i].samples {
				body, ok := nvmetcp.VerifyCRC32C(b)
				if !ok {
					ferr = fmt.Errorf("live: crc32c mismatch on prefetched sample %d", group[i].samples[si].Sample)
					break
				}
				entries[i].samples[si] = body
			}
			if ferr != nil {
				break
			}
		}
	}
	if ferr != nil {
		for _, e := range entries {
			e.release(fs.Recycle)
		}
		var ue *nvmetcp.UnsupportedOpError
		if errors.As(ferr, &ue) {
			return 0, ferr
		}
		tg.noteFailure(ferr)
		return 0, ferr
	}
	tg.brk.Success()
	var stored, unitBytes int64
	for i, u := range group {
		sz := entries[i].size()
		fs.prefetch.put(unitKey{node: u.node, offset: u.offset, length: u.length}, entries[i])
		stored += sz
		unitBytes += int64(u.length)
	}
	fs.pipe.PrefetchedUnits.Add(int64(len(group)))
	fs.pipe.PrefetchedBytes.Add(stored)
	fs.pipe.OffloadCmds.Add(int64(len(pendings)))
	fs.pipe.OffloadSamples.Add(int64(len(segs)))
	if saved := unitBytes - stored; saved > 0 {
		fs.pipe.OffloadSavedBytes.Add(saved)
	}
	return stored, nil
}

// epochSlice computes rank's 1/world slice of the seeded global unit
// order — the same derivation sequenceRange performs, without starting
// a pipeline.
func (fs *FS) epochSlice(seed int64, rank, world int) ([]*unit, error) {
	units, err := fs.buildUnits()
	if err != nil {
		return nil, err
	}
	// Must match sequenceRange's shuffle exactly, or the prediction is
	// systematically wrong.
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(units), func(i, j int) { units[i], units[j] = units[j], units[i] })
	if world > 1 {
		slice := units[:0:0]
		for i := rank; i < len(units); i += world {
			slice = append(slice, units[i])
		}
		units = slice
	}
	return units, nil
}

// serveFromStore satisfies as many of g's units as the lookahead store
// holds. A raw-range hit copies straight from the stored payload into
// freshly allocated cache chunks (prep-stage work, no wire); a
// per-sample hit (server-assembled or peer-served prefetch) hands the
// record buffers to the unit directly — no chunks, no copy stage.
// Returns the units that missed and must be fetched. Called by
// fetchGroup.
func (ep *Epoch) serveFromStore(g *fetchGroup) []*unit {
	fs := ep.fs
	cs := fs.cfg.ChunkSize
	misses := g.units[:0:0]
	var hit bool
	prep := time.Now()
	for _, u := range g.units {
		e, ok := fs.prefetch.take(unitKey{node: u.node, offset: u.offset, length: u.length})
		if !ok {
			misses = append(misses, u)
			continue
		}
		if e.samples != nil {
			if len(e.samples) == len(u.samples) {
				u.assembled = e.samples
			} else {
				// Predicted sample split diverged from the actual
				// epoch's (shouldn't happen — the plan is a pure
				// function of placement); drop rather than mis-emit.
				e.release(fs.Recycle)
				misses = append(misses, u)
				continue
			}
		} else {
			nc := u.chunkCount(cs)
			u.chunks = fs.arena.AllocN(nc)
			for ci := 0; ci < nc; ci++ {
				end := (ci + 1) * cs
				if end > int(u.length) {
					end = int(u.length)
				}
				copy(u.chunks[ci].Bytes(), e.data[ci*cs:end])
			}
			fs.Recycle(e.data)
		}
		fs.pipe.PrefetchHitUnits.Add(1)
		fs.pipe.PrefetchHitBytes.Add(int64(u.length))
		fs.cfg.Trace.Record(trace.KindComplete, u.seq, u.node, int(u.length))
		hit = true
	}
	if hit {
		fs.pipe.ObservePrep(time.Since(prep))
	}
	return misses
}

// prefetchState is the FS-side bookkeeping for the cross-epoch
// prefetcher, embedded in FS so single-node and cluster mounts share
// the wiring.
type prefetchState struct {
	prefetch     *prefetchStore // nil unless CrossEpochPrefetch is on
	prefetchStop chan struct{}  // closed by Close; aborts in-flight rounds
	prefetchBusy atomic.Bool    // at most one round in flight
	prefetchWG   sync.WaitGroup
}
