package live

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"dlfs/internal/metrics"
	"dlfs/internal/nvmetcp"
	"dlfs/internal/trace"
)

// Clairvoyant cross-epoch prefetch (Config.CrossEpochPrefetch).
//
// The seeded epoch order is deterministic: every rank can compute the
// *next* epoch's shuffled unit slice before the current epoch finishes
// (the property clairvoyant prefetching exploits — the access sequence
// is known arbitrarily far ahead). Once the current epoch's dispatcher
// has handed out all of its fetch groups, the queue pairs spend the
// tail of the epoch mostly idle between completions; the prefetcher
// fills those gaps with coalesced reads for next-epoch units, parking
// the payloads in a bounded lookahead store. When the next epoch's
// fetchGroup finds its unit in the store it copies straight into cache
// chunks and skips the wire — a warm epoch opens with near-zero poll
// time.
//
// The store is bounded by Config.PrefetchBudgetBytes and best-effort
// throughout: a full budget stops the prefetcher (it never evicts what
// it just fetched), a down target skips that node's units via the same
// circuit breaker the demand path uses, and a consumer running a
// different seed than predicted simply misses and pays the wire as
// before. Entries are consumed at most once (take removes them), so a
// store buffer is owned by exactly one side at a time.

// unitKey identifies a fetch unit by placement. The unit plan is a pure
// function of the dataset placement, so the same key is derived by the
// prefetcher (from the predicted epoch) and the consumer (from the
// actual epoch) independently.
type unitKey struct {
	node   uint16
	offset int64
	length int32
}

// prefetchStore is the bounded lookahead region: unit payloads fetched
// ahead of their epoch, keyed by placement identity. FIFO eviction only
// reclaims stale leftovers (entries predicted for a seed that was never
// consumed); within one prefetch round the budget check stops the
// producer before eviction would be needed.
type prefetchStore struct {
	budget int64
	pipe   *metrics.Pipeline
	free   func([]byte)

	mu      sync.Mutex
	entries map[unitKey][]byte
	order   []unitKey // insertion order; lazily compacted on eviction
	bytes   int64
}

func newPrefetchStore(budget int64, pipe *metrics.Pipeline, free func([]byte)) *prefetchStore {
	return &prefetchStore{
		budget:  budget,
		pipe:    pipe,
		free:    free,
		entries: make(map[unitKey][]byte),
	}
}

// put inserts a fetched payload, taking ownership of data. Entries
// already present keep the original buffer; oversized inserts evict
// oldest-first until the budget holds.
func (s *prefetchStore) put(k unitKey, data []byte) {
	if int64(len(data)) > s.budget {
		s.free(data) // can never fit: refuse before evicting anything
		return
	}
	s.mu.Lock()
	if _, dup := s.entries[k]; dup {
		s.mu.Unlock()
		s.free(data)
		return
	}
	for s.bytes+int64(len(data)) > s.budget && len(s.order) > 0 {
		victim := s.order[0]
		s.order = s.order[1:]
		old, ok := s.entries[victim]
		if !ok {
			continue // already consumed by take
		}
		delete(s.entries, victim)
		s.bytes -= int64(len(old))
		s.free(old)
		s.pipe.PrefetchEvictions.Add(1)
	}
	if s.bytes+int64(len(data)) > s.budget {
		s.mu.Unlock()
		s.free(data)
		return
	}
	s.entries[k] = data
	s.order = append(s.order, k)
	s.bytes += int64(len(data))
	s.mu.Unlock()
}

// take removes and returns the payload for k, or nil on miss. The
// caller owns the returned buffer.
func (s *prefetchStore) take(k unitKey) []byte {
	s.mu.Lock()
	data, ok := s.entries[k]
	if ok {
		delete(s.entries, k)
		s.bytes -= int64(len(data))
	}
	s.mu.Unlock()
	if !ok {
		return nil
	}
	return data
}

// residentBytes reports the store footprint (tests assert it never
// exceeds the budget).
func (s *prefetchStore) residentBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bytes
}

// drain frees every entry (Close).
func (s *prefetchStore) drain() {
	s.mu.Lock()
	for k, data := range s.entries {
		delete(s.entries, k)
		s.free(data)
	}
	s.order = nil
	s.bytes = 0
	s.mu.Unlock()
}

// nextSeed predicts the next epoch's seed (Config.NextEpochSeed,
// default seed+1 — the conventional per-epoch reseed).
func (fs *FS) nextSeed(seed int64) int64 {
	if fs.cfg.NextEpochSeed != nil {
		return fs.cfg.NextEpochSeed(seed)
	}
	return seed + 1
}

// maybePrefetch launches one background prefetch round for the
// predicted epoch (seed, rank, world) unless a round is already
// running. Called by the dispatcher once the current epoch's groups are
// all handed out, i.e. when poll gaps start opening.
func (fs *FS) maybePrefetch(seed int64, rank, world int) {
	if fs.prefetch == nil || !fs.prefetchBusy.CompareAndSwap(false, true) {
		return
	}
	fs.prefetchWG.Add(1)
	go func() {
		defer fs.prefetchWG.Done()
		defer fs.prefetchBusy.Store(false)
		fs.runPrefetch(seed, rank, world)
	}()
}

// WaitPrefetch blocks until any in-flight prefetch round finishes —
// benchmarks and tests use it to draw a deterministic line between
// "epoch N done" and "epoch N+1 starts warm".
func (fs *FS) WaitPrefetch() { fs.prefetchWG.Wait() }

// runPrefetch computes the predicted epoch's unit slice for this rank
// and fetches it into the store, coalescing same-target neighbours into
// vectored reads bounded by CoalesceBytes, until the budget fills or
// the FS closes.
func (fs *FS) runPrefetch(seed int64, rank, world int) {
	units, err := fs.epochSlice(seed, rank, world)
	if err != nil {
		return
	}
	var group []*unit
	var groupBytes int64
	var round int64
	flush := func() {
		if len(group) == 0 {
			return
		}
		round += fs.fetchAhead(group, groupBytes)
		group = group[:0]
		groupBytes = 0
	}
	for _, u := range units {
		select {
		case <-fs.prefetchStop:
			return
		default:
		}
		if round+groupBytes+int64(u.length) > fs.cfg.PrefetchBudgetBytes {
			break // budget exhausted: never evict this round's own entries
		}
		if len(group) > 0 && (group[0].node != u.node || groupBytes+int64(u.length) > fs.cfg.CoalesceBytes) {
			flush()
		}
		group = append(group, u)
		groupBytes += int64(u.length)
	}
	flush()
}

// fetchAhead reads one coalesced group of predicted units into pooled
// buffers and parks them in the store. Best-effort: breaker refusals
// and transport errors drop the group (the next epoch pays the wire for
// those units as usual). Returns the bytes stored.
func (fs *FS) fetchAhead(group []*unit, groupBytes int64) int64 {
	tg := fs.targets[group[0].node]
	if !tg.brk.Allow() {
		return 0
	}
	bufs := make([][]byte, len(group))
	segs := make([]nvmetcp.Seg, len(group))
	for i, u := range group {
		bufs[i] = fs.alloc(int(u.length))
		segs[i] = nvmetcp.Seg{Dst: bufs[i], Off: u.offset}
	}
	pd, err := tg.qp.ReadVecAsync(segs)
	if err == nil {
		_, err = pd.Wait()
	}
	if err != nil {
		for _, b := range bufs {
			fs.Recycle(b)
		}
		tg.brk.Failure()
		return 0
	}
	tg.brk.Success()
	for i, u := range group {
		fs.prefetch.put(unitKey{node: u.node, offset: u.offset, length: u.length}, bufs[i])
	}
	fs.pipe.PrefetchedUnits.Add(int64(len(group)))
	fs.pipe.PrefetchedBytes.Add(groupBytes)
	return groupBytes
}

// epochSlice computes rank's 1/world slice of the seeded global unit
// order — the same derivation sequenceRange performs, without starting
// a pipeline.
func (fs *FS) epochSlice(seed int64, rank, world int) ([]*unit, error) {
	units, err := fs.buildUnits()
	if err != nil {
		return nil, err
	}
	// Must match sequenceRange's shuffle exactly, or the prediction is
	// systematically wrong.
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(units), func(i, j int) { units[i], units[j] = units[j], units[i] })
	if world > 1 {
		slice := units[:0:0]
		for i := rank; i < len(units); i += world {
			slice = append(slice, units[i])
		}
		units = slice
	}
	return units, nil
}

// serveFromStore satisfies as many of g's units as the lookahead store
// holds: each hit copies straight from the stored payload into freshly
// allocated cache chunks (prep-stage work, no wire). Returns the units
// that missed and must be fetched. Called by fetchGroup.
func (ep *Epoch) serveFromStore(g *fetchGroup) []*unit {
	fs := ep.fs
	cs := fs.cfg.ChunkSize
	misses := g.units[:0:0]
	var hit bool
	prep := time.Now()
	for _, u := range g.units {
		data := fs.prefetch.take(unitKey{node: u.node, offset: u.offset, length: u.length})
		if data == nil {
			misses = append(misses, u)
			continue
		}
		nc := u.chunkCount(cs)
		u.chunks = fs.arena.AllocN(nc)
		for ci := 0; ci < nc; ci++ {
			end := (ci + 1) * cs
			if end > int(u.length) {
				end = int(u.length)
			}
			copy(u.chunks[ci].Bytes(), data[ci*cs:end])
		}
		fs.Recycle(data)
		fs.pipe.PrefetchHitUnits.Add(1)
		fs.pipe.PrefetchHitBytes.Add(int64(u.length))
		fs.cfg.Trace.Record(trace.KindComplete, u.seq, u.node, int(u.length))
		hit = true
	}
	if hit {
		fs.pipe.ObservePrep(time.Since(prep))
	}
	return misses
}

// prefetchState is the FS-side bookkeeping for the cross-epoch
// prefetcher, embedded in FS so single-node and cluster mounts share
// the wiring.
type prefetchState struct {
	prefetch     *prefetchStore // nil unless CrossEpochPrefetch is on
	prefetchStop chan struct{}  // closed by Close; aborts in-flight rounds
	prefetchBusy atomic.Bool    // at most one round in flight
	prefetchWG   sync.WaitGroup
}
