package live

import (
	"sync"
	"testing"

	"dlfs/internal/metrics"
)

// plainCache builds a sampleCache with heap alloc/free and no V-bit
// wiring, for unit-testing the sharding and eviction machinery alone.
func plainCache(budget int64) *sampleCache {
	return newSampleCache(budget, &metrics.Pipeline{},
		func(n int) []byte { return make([]byte, n) },
		func([]byte) {},
		func(int, bool) {})
}

func TestCacheShardCountAdapts(t *testing.T) {
	cases := []struct {
		budget int64
		shards int
	}{
		{8 << 10, 1}, // tiny test budgets stay single-shard
		{512 << 10, 1},
		{1 << 20, 2}, // every shard keeps at least minShardBytes
		{2 << 20, 4},
		{8 << 20, maxCacheShards}, // default ReadCacheBytes
		{1 << 30, maxCacheShards},
	}
	for _, tc := range cases {
		if got := plainCache(tc.budget).numShards(); got != tc.shards {
			t.Errorf("budget %d: %d shards, want %d", tc.budget, got, tc.shards)
		}
	}
}

func TestCacheHitMissAndClockSecondChance(t *testing.T) {
	pipe := &metrics.Pipeline{}
	c := newSampleCache(1<<20, pipe,
		func(n int) []byte { return make([]byte, n) },
		func([]byte) {}, func(int, bool) {})
	c.put(1, []byte("alpha"))
	if got := c.get(1); string(got) != "alpha" {
		t.Fatalf("get(1) = %q", got)
	}
	if c.get(2) != nil {
		t.Fatal("get(2) hit on empty slot")
	}
	s := pipe.Snapshot()
	if s.CacheHits != 1 || s.CacheMisses != 1 {
		t.Fatalf("hits/misses = %d/%d, want 1/1", s.CacheHits, s.CacheMisses)
	}
	// Mutating the returned copy must not corrupt the cached entry.
	got := c.get(1)
	got[0] = 'X'
	if again := c.get(1); string(again) != "alpha" {
		t.Fatalf("cached entry mutated through returned copy: %q", again)
	}
}

func TestCacheOversizedEntryNotCached(t *testing.T) {
	c := plainCache(1 << 10)
	c.put(0, make([]byte, 2<<10))
	if c.residentBytes() != 0 {
		t.Fatalf("oversized entry resident: %d bytes", c.residentBytes())
	}
}

// TestCacheEvictionHoldsBudgetUnderConcurrentReaders is the satellite
// acceptance test: many goroutines hammering a sharded cache with
// overlapping working sets must never push the resident footprint past
// the configured budget, and every hit must return intact bytes. Run
// with -race.
func TestCacheEvictionHoldsBudgetUnderConcurrentReaders(t *testing.T) {
	const budget = 2 << 20 // two shards
	pipe := &metrics.Pipeline{}
	c := newSampleCache(budget, pipe,
		func(n int) []byte { return make([]byte, n) },
		func([]byte) {}, func(int, bool) {})
	if c.numShards() < 2 {
		t.Fatalf("want a sharded cache, got %d shards", c.numShards())
	}

	pattern := func(idx, n int) []byte {
		b := make([]byte, n)
		for i := range b {
			b[i] = byte(idx*31 + i)
		}
		return b
	}
	const (
		readers = 8
		keys    = 512
		entry   = 8 << 10 // 512 keys * 8 KiB = 4 MiB working set, 2x budget
		rounds  = 400
	)
	stop := make(chan struct{})
	var over sync.Once
	var overBudget int64
	go func() { // budget watchdog sampling concurrently with the writers
		for {
			select {
			case <-stop:
				return
			default:
			}
			if rb := c.residentBytes(); rb > budget {
				over.Do(func() { overBudget = rb })
			}
		}
	}()

	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				idx := (r*131 + i*17) % keys
				if hit := c.get(idx); hit != nil {
					want := pattern(idx, entry)
					if len(hit) != entry || hit[0] != want[0] || hit[entry-1] != want[entry-1] {
						t.Errorf("reader %d: corrupt hit for key %d", r, idx)
						return
					}
					continue
				}
				c.put(idx, pattern(idx, entry))
			}
		}(r)
	}
	wg.Wait()
	close(stop)

	if overBudget != 0 {
		t.Fatalf("resident bytes %d exceeded budget %d", overBudget, budget)
	}
	if rb := c.residentBytes(); rb > budget {
		t.Fatalf("final resident bytes %d exceed budget %d", rb, budget)
	}
	s := pipe.Snapshot()
	if s.CacheEvictions == 0 {
		t.Fatal("working set 2x budget produced no evictions")
	}
	if s.CacheHits == 0 {
		t.Fatal("no cache hits under repeated access")
	}
	t.Logf("shards=%d hits=%d misses=%d evictions=%d resident=%d",
		c.numShards(), s.CacheHits, s.CacheMisses, s.CacheEvictions, c.residentBytes())
}
