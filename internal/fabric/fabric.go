// Package fabric models the interconnect of the paper's testbed — FDR
// InfiniBand with RDMA — and the SPDK NVMe-oF targets that disaggregate
// NVMe devices over it (paper §II-A, §III-C).
//
// The network model is intentionally simple and explicit: every node has
// one NIC with independent egress and ingress directions, each a FIFO
// bandwidth server. A transfer holds the sender's egress and the
// receiver's ingress simultaneously for size/bandwidth, after a one-way
// propagation latency. This reproduces the two phenomena the evaluation
// depends on: per-message latency floors (NVMe-oF adds ~10 µs per access)
// and the single-client NIC bottleneck of Fig 11.
//
// An NVMe-oF target couples a node's device to the network: remote queue
// pairs submit command capsules, the target spends CPU per command,
// performs the device I/O, and RDMA-writes the payload back.
package fabric

import (
	"fmt"

	"dlfs/internal/nvme"
	"dlfs/internal/sim"
)

// FDRBandwidth is the per-direction FDR InfiniBand data rate (56 Gb/s link,
// ~6.8 GB/s effective).
const FDRBandwidth = 6_800_000_000

// DefaultLatency is the one-way fabric propagation latency.
const DefaultLatency = sim.Duration(1500) // 1.5 µs

// Network is a set of nodes joined by a non-blocking switch; only the NICs
// constrain bandwidth, as on a fat-tree/fabric with full bisection.
type Network struct {
	eng     *sim.Engine
	latency sim.Duration
	nics    map[int]*NIC
}

// NIC is one node's network interface: independent egress/ingress lanes.
type NIC struct {
	node      int
	bandwidth int64
	egress    *sim.Server
	ingress   *sim.Server
}

// New creates an empty network with the given one-way latency.
func New(e *sim.Engine, latency sim.Duration) *Network {
	if latency <= 0 {
		latency = DefaultLatency
	}
	return &Network{eng: e, latency: latency, nics: make(map[int]*NIC)}
}

// AddNode registers node id with a NIC of the given per-direction
// bandwidth in bytes/sec.
func (n *Network) AddNode(id int, bandwidth int64) *NIC {
	if _, dup := n.nics[id]; dup {
		panic(fmt.Sprintf("fabric: duplicate node %d", id))
	}
	nic := &NIC{
		node:      id,
		bandwidth: bandwidth,
		egress:    sim.NewServer(n.eng, fmt.Sprintf("nic%d/eg", id), 1),
		ingress:   sim.NewServer(n.eng, fmt.Sprintf("nic%d/in", id), 1),
	}
	n.nics[id] = nic
	return nic
}

// Latency returns the one-way propagation latency.
func (n *Network) Latency() sim.Duration { return n.latency }

// NIC returns the NIC of node id, panicking on unknown nodes (a model
// wiring bug, not a runtime condition).
func (n *Network) NIC(id int) *NIC {
	nic, ok := n.nics[id]
	if !ok {
		panic(fmt.Sprintf("fabric: unknown node %d", id))
	}
	return nic
}

// Utilization reports the time-average ingress utilization of node id,
// the quantity that saturates first for a data-consuming client.
func (n *Network) Utilization(id int) float64 { return n.NIC(id).ingress.Utilization() }

// Transfer moves size bytes from node `from` to node `to`, holding both
// NIC directions for the serialization time after the propagation latency.
// A transfer within one node is free: the paper's local reads never touch
// the fabric.
func (n *Network) Transfer(p *sim.Proc, from, to int, size int64) {
	if from == to {
		return
	}
	src, dst := n.NIC(from), n.NIC(to)
	p.Sleep(n.latency)
	// Egress first, ingress second — a fixed global order, so no cycle of
	// waits can form between concurrent transfers.
	src.egress.Acquire(p)
	dst.ingress.Acquire(p)
	bw := src.bandwidth
	if dst.bandwidth < bw {
		bw = dst.bandwidth
	}
	if bw > 0 && size > 0 {
		p.Sleep(sim.Duration(size * 1e9 / bw))
	}
	dst.ingress.Release()
	src.egress.Release()
}

// Message delivers a small control message (command capsule, doorbell,
// completion): latency only, no bandwidth occupancy. RDMA verbs ride the
// same wire but 64-byte capsules are negligible against data payloads.
func (n *Network) Message(p *sim.Proc, from, to int) {
	if from == to {
		return
	}
	p.Sleep(n.latency)
}

// TargetSpec models the SPDK NVMe-oF target software.
type TargetSpec struct {
	PerCmdCPU sim.Duration // target-side processing per command
	Cores     int          // poller cores dedicated to the target
}

// DefaultTargetSpec matches the SPDK target's lightweight poller: ~1 µs of
// CPU per command on one dedicated core.
func DefaultTargetSpec() TargetSpec {
	return TargetSpec{PerCmdCPU: 1000, Cores: 1}
}

// Target is an SPDK NVMe-oF target exporting one device at a node.
type Target struct {
	net  *Network
	node int
	dev  *nvme.Device
	cpu  *sim.Server
	spec TargetSpec

	served int64
}

// NewTarget exports dev at node over net.
func NewTarget(net *Network, node int, dev *nvme.Device, spec TargetSpec) *Target {
	if spec.Cores <= 0 {
		spec.Cores = 1
	}
	return &Target{
		net:  net,
		node: node,
		dev:  dev,
		cpu:  sim.NewServer(net.eng, fmt.Sprintf("nvmf-tgt%d/cpu", node), spec.Cores),
		spec: spec,
	}
}

// Node returns the target's node id.
func (t *Target) Node() int { return t.node }

// Device returns the exported device.
func (t *Target) Device() *nvme.Device { return t.dev }

// Served reports the number of commands completed.
func (t *Target) Served() int64 { return t.served }

// CPUUtilization reports the target poller's time-average utilization.
func (t *Target) CPUUtilization() float64 { return t.cpu.Utilization() }

// RemoteQPair is the client side of an NVMe-oF I/O queue pair: it
// implements nvme.Queue with the fabric in the path. Commands traverse
// capsule → target CPU → device → RDMA data → completion capsule.
type RemoteQPair struct {
	target     *Target
	clientNode int
	depth      int
	inflight   int
	cq         []nvme.Completion
}

// Connect creates a remote queue pair from clientNode to the target.
func (t *Target) Connect(clientNode int, depth int) *RemoteQPair {
	if depth <= 0 {
		depth = 128
	}
	return &RemoteQPair{target: t, clientNode: clientNode, depth: depth}
}

// Depth implements nvme.Queue.
func (q *RemoteQPair) Depth() int { return q.depth }

// Inflight implements nvme.Queue.
func (q *RemoteQPair) Inflight() int { return q.inflight }

// Submit implements nvme.Queue.
func (q *RemoteQPair) Submit(cmd *nvme.Command) error {
	if q.inflight >= q.depth {
		return nvme.ErrQueueFull
	}
	q.inflight++
	t := q.target
	t.net.eng.Go("nvmf/"+cmd.Op.String(), func(p *sim.Proc) {
		// Command capsule to the target.
		t.net.Message(p, q.clientNode, t.node)
		// Target poller picks it up and spends CPU on it.
		t.cpu.Use(p, t.spec.PerCmdCPU)
		// Device I/O at the target (real bytes move here).
		err := t.dev.SyncIO(p, cmd)
		// Data returns by RDMA write (reads) or arrived with the capsule
		// (writes, which the paper only uses at mount time).
		if cmd.Op == nvme.OpRead {
			t.net.Transfer(p, t.node, q.clientNode, int64(len(cmd.Buf)))
		} else {
			t.net.Transfer(p, q.clientNode, t.node, int64(len(cmd.Buf)))
		}
		// Completion capsule back to the client.
		t.net.Message(p, t.node, q.clientNode)
		t.served++
		q.cq = append(q.cq, nvme.Completion{Cmd: cmd, Err: err, At: p.Now()})
		q.inflight--
	})
	return nil
}

// Poll implements nvme.Queue.
func (q *RemoteQPair) Poll(max int) []nvme.Completion {
	if max <= 0 || max > len(q.cq) {
		max = len(q.cq)
	}
	out := q.cq[:max]
	q.cq = append([]nvme.Completion(nil), q.cq[max:]...)
	return out
}

var _ nvme.Queue = (*RemoteQPair)(nil)

// RDMARead performs a one-sided RDMA read of size bytes from remote node
// memory into the caller's node: one request latency, then the transfer.
// Octopus' data path uses this.
func (n *Network) RDMARead(p *sim.Proc, local, remote int, size int64) {
	if local == remote {
		return
	}
	n.Message(p, local, remote) // request
	n.Transfer(p, remote, local, size)
}
