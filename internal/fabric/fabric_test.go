package fabric

import (
	"bytes"
	"testing"
	"time"

	"dlfs/internal/dataset"
	"dlfs/internal/nvme"
	"dlfs/internal/sim"
)

func testNet(e *sim.Engine, nodes int) *Network {
	n := New(e, DefaultLatency)
	for i := 0; i < nodes; i++ {
		n.AddNode(i, FDRBandwidth)
	}
	return n
}

func devSpec() nvme.Spec {
	return nvme.Spec{
		Name:          "em",
		Capacity:      1 << 30,
		ReadLatency:   sim.Duration(10 * time.Microsecond),
		WriteLatency:  sim.Duration(12 * time.Microsecond),
		ReadBandwidth: 2_400_000_000,
		CmdOverhead:   1600,
		Channels:      8,
		MediaBlock:    4096,
	}
}

func TestMessageLatency(t *testing.T) {
	e := sim.NewEngine()
	n := testNet(e, 2)
	e.Go("m", func(p *sim.Proc) {
		n.Message(p, 0, 1)
		if p.Now() != sim.Time(DefaultLatency) {
			t.Errorf("message took %v, want %v", p.Now(), DefaultLatency)
		}
		n.Message(p, 1, 1) // local: free
		if p.Now() != sim.Time(DefaultLatency) {
			t.Errorf("local message took time")
		}
	})
	e.RunAll()
}

func TestTransferTime(t *testing.T) {
	e := sim.NewEngine()
	n := testNet(e, 2)
	const size = 68_000_000 // 10 ms at 6.8 GB/s
	e.Go("x", func(p *sim.Proc) {
		n.Transfer(p, 0, 1, size)
		want := sim.Time(DefaultLatency) + sim.Time(10*time.Millisecond)
		if d := p.Now() - want; d < -1000 || d > 1000 {
			t.Errorf("transfer took %v, want ≈%v", p.Now(), want)
		}
	})
	e.RunAll()
}

func TestLocalTransferFree(t *testing.T) {
	e := sim.NewEngine()
	n := testNet(e, 1)
	e.Go("x", func(p *sim.Proc) {
		n.Transfer(p, 0, 0, 1<<30)
		if p.Now() != 0 {
			t.Errorf("local transfer took %v", p.Now())
		}
	})
	e.RunAll()
}

func TestIngressContention(t *testing.T) {
	// Two senders to one receiver: the receiver's ingress serializes, so
	// total time ≈ 2 transfers back to back.
	e := sim.NewEngine()
	n := testNet(e, 3)
	const size = 6_800_000 // 1 ms each
	var finish []sim.Time
	for src := 1; src <= 2; src++ {
		src := src
		e.Go("x", func(p *sim.Proc) {
			n.Transfer(p, src, 0, size)
			finish = append(finish, p.Now())
		})
	}
	e.RunAll()
	last := finish[len(finish)-1]
	want := sim.Time(DefaultLatency) + sim.Time(2*time.Millisecond)
	if d := last - want; d < -10000 || d > 10000 {
		t.Fatalf("contended finish %v, want ≈%v", last, want)
	}
}

func TestDistinctReceiversRunInParallel(t *testing.T) {
	e := sim.NewEngine()
	n := testNet(e, 4)
	const size = 6_800_000 // 1 ms
	var finish []sim.Time
	// 1→2 and 3→0: fully disjoint NICs, should overlap completely.
	pairs := [][2]int{{1, 2}, {3, 0}}
	for _, pr := range pairs {
		pr := pr
		e.Go("x", func(p *sim.Proc) {
			n.Transfer(p, pr[0], pr[1], size)
			finish = append(finish, p.Now())
		})
	}
	e.RunAll()
	want := sim.Time(DefaultLatency) + sim.Time(time.Millisecond)
	for _, f := range finish {
		if d := f - want; d < -10000 || d > 10000 {
			t.Fatalf("parallel transfer finished %v, want ≈%v", f, want)
		}
	}
}

func TestBidirectionalNoDeadlock(t *testing.T) {
	e := sim.NewEngine()
	n := testNet(e, 2)
	done := 0
	for i := 0; i < 50; i++ {
		i := i
		e.Go("x", func(p *sim.Proc) {
			if i%2 == 0 {
				n.Transfer(p, 0, 1, 100_000)
			} else {
				n.Transfer(p, 1, 0, 100_000)
			}
			done++
		})
	}
	e.RunAll()
	if done != 50 {
		t.Fatalf("done = %d", done)
	}
	if dl := e.Deadlocked(); dl != nil {
		t.Fatalf("deadlock: %v", dl)
	}
}

func TestDuplicateNodePanics(t *testing.T) {
	e := sim.NewEngine()
	n := New(e, 0)
	n.AddNode(0, FDRBandwidth)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	n.AddNode(0, FDRBandwidth)
}

func TestUnknownNodePanics(t *testing.T) {
	e := sim.NewEngine()
	n := New(e, 0)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	n.NIC(42)
}

func TestRemoteQPairDataIntegrity(t *testing.T) {
	e := sim.NewEngine()
	n := testNet(e, 2)
	dev := nvme.NewDevice(e, devSpec())
	tgt := NewTarget(n, 1, dev, DefaultTargetSpec())
	ds := dataset.Generate(dataset.Config{Label: "f", Seed: 4, NumSamples: 16, Dist: dataset.Fixed(5000)})

	e.Go("client", func(p *sim.Proc) {
		// Upload through the fabric path (writes).
		q := tgt.Connect(0, 32)
		var off int64
		offs := make([]int64, ds.Len())
		for i := 0; i < ds.Len(); i++ {
			offs[i] = off
			if err := q.Submit(&nvme.Command{Op: nvme.OpWrite, Offset: off, Buf: ds.Content(i), Ctx: i}); err != nil {
				t.Error(err)
			}
			off += int64(ds.Samples[i].Size)
		}
		done := 0
		for done < ds.Len() {
			done += len(q.Poll(0))
			p.Sleep(1000)
		}
		// Read back and verify.
		bufs := make([][]byte, ds.Len())
		for i := range bufs {
			bufs[i] = make([]byte, ds.Samples[i].Size)
			if err := q.Submit(&nvme.Command{Op: nvme.OpRead, Offset: offs[i], Buf: bufs[i], Ctx: i}); err != nil {
				t.Error(err)
			}
		}
		done = 0
		for done < ds.Len() {
			for _, c := range q.Poll(0) {
				if c.Err != nil {
					t.Errorf("completion error: %v", c.Err)
				}
				i := c.Cmd.Ctx.(int)
				if !bytes.Equal(bufs[i], ds.Content(i)) {
					t.Errorf("sample %d corrupt over fabric", i)
				}
				done++
			}
			p.Sleep(1000)
		}
	})
	e.RunAll()
	if tgt.Served() != 32 {
		t.Fatalf("target served %d commands, want 32", tgt.Served())
	}
}

func TestRemoteReadAddsFabricLatency(t *testing.T) {
	e := sim.NewEngine()
	n := testNet(e, 2)
	dev := nvme.NewDevice(e, devSpec())
	tgt := NewTarget(n, 1, dev, DefaultTargetSpec())
	var remoteTime sim.Time
	e.Go("client", func(p *sim.Proc) {
		q := tgt.Connect(0, 4)
		start := p.Now()
		buf := make([]byte, 4096)
		q.Submit(&nvme.Command{Op: nvme.OpRead, Offset: 0, Buf: buf}) //nolint:errcheck
		for len(q.Poll(1)) == 0 {
			p.Sleep(200)
		}
		remoteTime = p.Now() - start
	})
	e.RunAll()
	// Local 4K ≈ 13.3 µs; remote adds 3 capsules/latencies + transfer +
	// target CPU ≈ +6 µs. NVMe-oF promises "within 10 µs" added latency.
	if remoteTime < 17_000 || remoteTime > 27_000 {
		t.Fatalf("remote 4K read = %v, want local+~6µs (≈19-21µs)", remoteTime)
	}
}

func TestRemoteQPairDepth(t *testing.T) {
	e := sim.NewEngine()
	n := testNet(e, 2)
	dev := nvme.NewDevice(e, devSpec())
	tgt := NewTarget(n, 1, dev, DefaultTargetSpec())
	e.Go("client", func(p *sim.Proc) {
		q := tgt.Connect(0, 2)
		buf := make([]byte, 512)
		if q.Submit(&nvme.Command{Op: nvme.OpRead, Buf: buf}) != nil {
			t.Error("submit 1")
		}
		if q.Submit(&nvme.Command{Op: nvme.OpRead, Buf: buf}) != nil {
			t.Error("submit 2")
		}
		if err := q.Submit(&nvme.Command{Op: nvme.OpRead, Buf: buf}); err != nvme.ErrQueueFull {
			t.Errorf("submit 3: %v", err)
		}
		for q.Inflight() > 0 {
			q.Poll(0)
			p.Sleep(500)
		}
	})
	e.RunAll()
	if tgt.CPUUtilization() <= 0 {
		t.Fatal("target CPU never used")
	}
}

func TestRDMARead(t *testing.T) {
	e := sim.NewEngine()
	n := testNet(e, 2)
	e.Go("c", func(p *sim.Proc) {
		n.RDMARead(p, 0, 1, 6_800_000) // 1 ms payload
		want := sim.Time(2*DefaultLatency) + sim.Time(time.Millisecond)
		if d := p.Now() - want; d < -5000 || d > 5000 {
			t.Errorf("RDMARead took %v, want ≈%v", p.Now(), want)
		}
		before := p.Now()
		n.RDMARead(p, 1, 1, 1<<20) // local: free
		if p.Now() != before {
			t.Error("local RDMARead took time")
		}
	})
	e.RunAll()
}

func TestDefaultLatencyApplied(t *testing.T) {
	e := sim.NewEngine()
	n := New(e, 0)
	if n.Latency() != DefaultLatency {
		t.Fatalf("latency = %v", n.Latency())
	}
}
