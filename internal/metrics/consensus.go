package metrics

import (
	"fmt"
	"sync/atomic"
)

// Consensus aggregates one Raft replica's control-plane counters: the
// current term and role, election activity, and log progress. One
// instance belongs to one consensus.Node; snapshots feed the dlfsd
// stats line and the /metrics exposition. All fields are safe for
// concurrent use.
type Consensus struct {
	Term         atomic.Int64 // current Raft term (gauge)
	IsLeader     atomic.Int64 // 1 while this replica leads, else 0 (gauge)
	Elections    atomic.Int64 // elections this replica started (became candidate)
	LeaderWins   atomic.Int64 // elections this replica won
	LeaderLost   atomic.Int64 // times this replica stepped down from leading
	CommitIndex  atomic.Int64 // highest committed log index (gauge)
	AppliedIndex atomic.Int64 // highest log index applied to the FSM (gauge)
	LastIndex    atomic.Int64 // highest log index appended (gauge)
	Proposals    atomic.Int64 // commands proposed through this replica
	Snapshots    atomic.Int64 // snapshot compactions taken
	SnapshotsRx  atomic.Int64 // snapshots installed from a leader
}

// Snapshot returns a consistent-enough point-in-time copy for reporting.
func (c *Consensus) Snapshot() ConsensusSnapshot {
	s := ConsensusSnapshot{
		Term:         c.Term.Load(),
		IsLeader:     c.IsLeader.Load() != 0,
		Elections:    c.Elections.Load(),
		LeaderWins:   c.LeaderWins.Load(),
		LeaderLost:   c.LeaderLost.Load(),
		CommitIndex:  c.CommitIndex.Load(),
		AppliedIndex: c.AppliedIndex.Load(),
		LastIndex:    c.LastIndex.Load(),
		Proposals:    c.Proposals.Load(),
		Snapshots:    c.Snapshots.Load(),
		SnapshotsRx:  c.SnapshotsRx.Load(),
	}
	if lag := s.CommitIndex - s.AppliedIndex; lag > 0 {
		s.CommitLag = lag
	}
	return s
}

// ConsensusSnapshot is a plain-value copy of Consensus counters.
// CommitLag is derived: committed-but-not-yet-applied entries.
type ConsensusSnapshot struct {
	Term         int64
	IsLeader     bool
	Elections    int64
	LeaderWins   int64
	LeaderLost   int64
	CommitIndex  int64
	AppliedIndex int64
	LastIndex    int64
	CommitLag    int64
	Proposals    int64
	Snapshots    int64
	SnapshotsRx  int64
}

// String renders the snapshot as a single stats line.
func (s ConsensusSnapshot) String() string {
	role := "follower"
	if s.IsLeader {
		role = "leader"
	}
	return fmt.Sprintf("term=%d role=%s elections=%d wins=%d commit=%d applied=%d lag=%d proposals=%d snapshots=%d",
		s.Term, role, s.Elections, s.LeaderWins, s.CommitIndex, s.AppliedIndex, s.CommitLag, s.Proposals, s.Snapshots)
}
