package metrics

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"
)

// TestHistBucketBoundaries pins the log-linear bucket map on the exact
// boundary values: the first linear range, every octave edge around it,
// and the top of the int64 range.
func TestHistBucketBoundaries(t *testing.T) {
	cases := []struct {
		v    int64
		want int
	}{
		{0, 0},
		{1, 1},
		{7, 7},   // last unit-width bucket
		{8, 8},   // first octave group, still width 1
		{15, 15}, // last width-1 bucket of group 1
		{16, 16}, // group 2 starts, width 2
		{17, 16},
		{18, 17},
		{31, 23},
		{32, 24}, // group 3, width 4
		{35, 24},
		{36, 25},
		{63, 31},
		{64, 32},
		{1<<20 - 1, (20-histSubBits)*histSub + histSub - 1},
		{1 << 20, (21 - histSubBits) * histSub},
		{1<<62 + 1, (63 - histSubBits) * histSub},
		{1<<63 - 1, histBuckets - 1},
	}
	for _, tc := range cases {
		if got := histBucketIndex(tc.v); got != tc.want {
			t.Errorf("histBucketIndex(%d) = %d, want %d", tc.v, got, tc.want)
		}
		// Round-trip: the value must not exceed its bucket's upper bound,
		// and must exceed the previous bucket's upper bound.
		up := HistBucketUpper(tc.want)
		if tc.v > up {
			t.Errorf("value %d above upper bound %d of its bucket %d", tc.v, up, tc.want)
		}
		if tc.want > 0 && tc.v <= HistBucketUpper(tc.want-1) {
			t.Errorf("value %d within previous bucket %d (upper %d)", tc.v, tc.want-1, HistBucketUpper(tc.want-1))
		}
	}
}

// TestHistBucketUpperMonotone sweeps every bucket: upper bounds strictly
// increase and each bucket's upper bound maps back to the same bucket.
func TestHistBucketUpperMonotone(t *testing.T) {
	prev := int64(-1)
	for i := 0; i < histBuckets; i++ {
		up := HistBucketUpper(i)
		if up <= prev {
			t.Fatalf("bucket %d upper %d <= previous %d", i, up, prev)
		}
		if got := histBucketIndex(up); got != i {
			t.Fatalf("upper bound %d of bucket %d maps to bucket %d", up, i, got)
		}
		prev = up
	}
}

// TestHistQuantileAccuracy checks the documented relative-error bound
// against an exact sorted reference over several distributions: every
// quantile estimate must be >= the true order statistic and at most
// (1+HistRelError) times it.
func TestHistQuantileAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	dists := map[string]func() int64{
		"uniform":   func() int64 { return rng.Int63n(1_000_000) },
		"exp":       func() int64 { return int64(rng.ExpFloat64() * 50_000) },
		"bimodal":   func() int64 { return []int64{900, 1_200_000}[rng.Intn(2)] + rng.Int63n(100) },
		"heavytail": func() int64 { v := rng.ExpFloat64(); return int64(v * v * v * 10_000) },
	}
	for name, gen := range dists {
		t.Run(name, func(t *testing.T) {
			var h Hist
			vals := make([]int64, 20_000)
			for i := range vals {
				vals[i] = gen()
				h.Observe(time.Duration(vals[i]))
			}
			sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
			s := h.Snapshot()
			if s.Count != int64(len(vals)) {
				t.Fatalf("count %d, want %d", s.Count, len(vals))
			}
			for _, q := range []float64{0, 0.25, 0.5, 0.9, 0.99, 0.999, 1} {
				rank := int(q*float64(len(vals)) + 0.9999999)
				if rank < 1 {
					rank = 1
				}
				if rank > len(vals) {
					rank = len(vals)
				}
				truth := vals[rank-1]
				got := int64(s.Quantile(q))
				if got < truth {
					t.Errorf("q=%v: estimate %d below true order statistic %d", q, got, truth)
				}
				bound := int64(float64(truth)*(1+HistRelError)) + 1 // +1 absorbs unit-width rounding
				if got > bound {
					t.Errorf("q=%v: estimate %d above error bound %d (true %d)", q, got, bound, truth)
				}
			}
			if int64(s.Quantile(1)) != vals[len(vals)-1] && int64(s.Max) != vals[len(vals)-1] {
				t.Errorf("max: snapshot %d, want %d", s.Max, vals[len(vals)-1])
			}
		})
	}
}

// TestHistSnapshotMergeAssociative checks Merge is associative and
// commutative: (a+b)+c == a+(b+c) == (c+a)+b bucket-for-bucket, and a
// merged snapshot answers quantiles identically to one histogram fed
// every observation.
func TestHistSnapshotMergeAssociative(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var parts [3]Hist
	var whole Hist
	for i := 0; i < 9_000; i++ {
		v := time.Duration(rng.Int63n(5_000_000))
		parts[i%3].Observe(v)
		whole.Observe(v)
	}
	a, b, c := parts[0].Snapshot(), parts[1].Snapshot(), parts[2].Snapshot()
	m1 := a.Merge(b).Merge(c)
	m2 := a.Merge(b.Merge(c))
	m3 := c.Merge(a).Merge(b)
	ref := whole.Snapshot()
	for _, m := range []HistSnapshot{m1, m2, m3} {
		if m.Count != ref.Count || m.Sum != ref.Sum || m.Max != ref.Max {
			t.Fatalf("merged aggregates (%d,%d,%d) != whole (%d,%d,%d)",
				m.Count, m.Sum, m.Max, ref.Count, ref.Sum, ref.Max)
		}
		if len(m.Counts) != len(ref.Counts) {
			t.Fatalf("merged has %d buckets, whole has %d", len(m.Counts), len(ref.Counts))
		}
		for i := range m.Counts {
			if m.Counts[i] != ref.Counts[i] {
				t.Fatalf("bucket %d: merged %+v, whole %+v", i, m.Counts[i], ref.Counts[i])
			}
		}
		for _, q := range []float64{0.5, 0.9, 0.99} {
			if m.Quantile(q) != ref.Quantile(q) {
				t.Fatalf("q=%v: merged %v, whole %v", q, m.Quantile(q), ref.Quantile(q))
			}
		}
	}
}

// TestHistEmpty pins the zero-value behaviour every caller relies on.
func TestHistEmpty(t *testing.T) {
	var h Hist
	s := h.Snapshot()
	if s.Count != 0 || s.Quantile(0.5) != 0 || s.Mean() != 0 || len(s.Counts) != 0 {
		t.Fatalf("zero-value snapshot not empty: %+v", s)
	}
	merged := s.Merge(HistSnapshot{})
	if merged.Count != 0 || len(merged.Counts) != 0 {
		t.Fatalf("merge of empties not empty: %+v", merged)
	}
}

// TestHistConcurrentObserveSnapshot hammers Observe from many goroutines
// while snapshots are taken — run under -race this is the data-race
// proof; in any mode the final snapshot must account for every
// observation.
func TestHistConcurrentObserveSnapshot(t *testing.T) {
	var h Hist
	const (
		writers = 8
		perW    = 5_000
	)
	var writerWG sync.WaitGroup
	stop := make(chan struct{})
	readerDone := make(chan struct{})
	go func() { // concurrent reader
		defer close(readerDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := h.Snapshot()
			var inBuckets int64
			for _, b := range s.Counts {
				inBuckets += b.Count
			}
			// Buckets and count race individually but each only grows; a
			// mid-flight snapshot may see them differ, never shrink.
			if inBuckets < 0 || s.Count < 0 {
				t.Error("snapshot went negative")
				return
			}
			_ = s.Quantile(0.99)
		}
	}()
	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func(seed int64) {
			defer writerWG.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < perW; i++ {
				h.Observe(time.Duration(rng.Int63n(1_000_000)))
			}
		}(int64(w))
	}
	writerWG.Wait()
	close(stop)
	<-readerDone
	s := h.Snapshot()
	if s.Count != writers*perW {
		t.Fatalf("final count %d, want %d", s.Count, writers*perW)
	}
	var inBuckets int64
	for _, b := range s.Counts {
		inBuckets += b.Count
	}
	if inBuckets != writers*perW {
		t.Fatalf("final bucket sum %d, want %d", inBuckets, writers*perW)
	}
}
