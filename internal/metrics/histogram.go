package metrics

import (
	"fmt"
	"math/bits"
	"sync/atomic"
	"time"
)

// Hist is a lock-light log-linear latency histogram: a fixed array of
// atomic bucket counters, so Observe is a handful of atomic adds with no
// allocation and no mutex — safe to call from every pipeline stage
// concurrently with Snapshot.
//
// Bucket layout (the HDR-histogram scheme): each power of two of the
// nanosecond range is split into histSub linear sub-buckets, so bucket
// width never exceeds 1/histSub of the bucket's lower bound. Quantile
// estimates are reported as the upper bound of the matching bucket,
// which bounds the relative error at HistRelError (12.5%) above the
// true value; the error never moves an estimate below the true rank.
// Values 0..histSub-1 ns get exact unit-width buckets.
//
// The zero value is ready to use. Hist must not be copied after first
// use.
type Hist struct {
	counts [histBuckets]atomic.Int64
	count  atomic.Int64
	sum    atomic.Int64 // nanoseconds
	max    atomic.Int64 // nanoseconds
}

const (
	histSubBits = 3                // log2 of sub-buckets per power of two
	histSub     = 1 << histSubBits // 8 linear sub-buckets per octave
	// 64-bit nanosecond values need bits.Len64 up to 63 significant
	// bits; index (exp-histSubBits)*histSub+sub peaks at 487 for
	// exp=63, sub=7.
	histBuckets = (63-histSubBits)*histSub + histSub

	// HistRelError is the documented worst-case relative error of a
	// quantile estimate: bucket width / bucket lower bound = 1/histSub.
	HistRelError = 1.0 / histSub
)

// histBucketIndex maps a non-negative nanosecond value to its bucket.
func histBucketIndex(v int64) int {
	u := uint64(v)
	if u < histSub {
		return int(u)
	}
	exp := bits.Len64(u)                // 4..64 for u >= histSub
	top := u >> (exp - histSubBits - 1) // top histSubBits+1 bits, in [histSub, 2*histSub)
	return (exp-histSubBits)*histSub + int(top) - histSub
}

// HistBucketUpper returns the inclusive upper bound (in nanoseconds) of
// bucket i: the largest value that maps to it.
func HistBucketUpper(i int) int64 {
	if i < histSub {
		return int64(i)
	}
	g := i >> histSubBits    // octave group, >= 1
	pos := i & (histSub - 1) // linear position within the octave
	lower := uint64(histSub+pos) << (g - 1)
	width := uint64(1) << (g - 1)
	return int64(lower + width - 1)
}

// Observe records one latency. Negative durations clamp to zero.
func (h *Hist) Observe(d time.Duration) {
	v := int64(d)
	if v < 0 {
		v = 0
	}
	h.counts[histBucketIndex(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Snapshot copies the counters into a mergeable value. Concurrent
// Observes may straddle the copy, so a snapshot is a near-point-in-time
// view: bucket sums can momentarily disagree with Count by the handful
// of observations in flight; Quantile clamps accordingly.
func (h *Hist) Snapshot() HistSnapshot {
	s := HistSnapshot{
		Count: h.count.Load(),
		Sum:   h.sum.Load(),
		Max:   h.max.Load(),
	}
	for i := range h.counts {
		if c := h.counts[i].Load(); c != 0 {
			s.Counts = append(s.Counts, HistBucket{Index: i, Count: c})
		}
	}
	return s
}

// HistBucket is one non-empty bucket of a snapshot.
type HistBucket struct {
	Index int
	Count int64
}

// HistSnapshot is a plain-value copy of a Hist: the non-empty buckets in
// index order plus the scalar aggregates. The zero value is an empty
// histogram.
type HistSnapshot struct {
	Counts []HistBucket
	Count  int64
	Sum    int64 // nanoseconds
	Max    int64 // nanoseconds
}

// Merge combines two snapshots (e.g. the same stage across ranks or
// targets). Merging is commutative and associative.
func (s HistSnapshot) Merge(o HistSnapshot) HistSnapshot {
	out := HistSnapshot{
		Count: s.Count + o.Count,
		Sum:   s.Sum + o.Sum,
		Max:   s.Max,
	}
	if o.Max > out.Max {
		out.Max = o.Max
	}
	i, j := 0, 0
	for i < len(s.Counts) || j < len(o.Counts) {
		switch {
		case j >= len(o.Counts) || (i < len(s.Counts) && s.Counts[i].Index < o.Counts[j].Index):
			out.Counts = append(out.Counts, s.Counts[i])
			i++
		case i >= len(s.Counts) || o.Counts[j].Index < s.Counts[i].Index:
			out.Counts = append(out.Counts, o.Counts[j])
			j++
		default:
			out.Counts = append(out.Counts, HistBucket{Index: s.Counts[i].Index, Count: s.Counts[i].Count + o.Counts[j].Count})
			i++
			j++
		}
	}
	return out
}

// Sub returns the observations in s that are not in earlier, where
// earlier is a previous snapshot of the same histogram — the per-window
// delta used for epoch-over-epoch stage comparisons (cold vs warm poll
// quantiles). Counts and Sum subtract exactly; Max cannot be recovered
// for a window, so the delta conservatively keeps s.Max (the windowed
// quantiles still derive purely from the subtracted buckets). Buckets
// whose counts went backwards clamp to zero.
func (s HistSnapshot) Sub(earlier HistSnapshot) HistSnapshot {
	out := HistSnapshot{
		Count: s.Count - earlier.Count,
		Sum:   s.Sum - earlier.Sum,
		Max:   s.Max,
	}
	if out.Count < 0 {
		out.Count = 0
	}
	if out.Sum < 0 {
		out.Sum = 0
	}
	prev := make(map[int]int64, len(earlier.Counts))
	for _, b := range earlier.Counts {
		prev[b.Index] = b.Count
	}
	for _, b := range s.Counts {
		if d := b.Count - prev[b.Index]; d > 0 {
			out.Counts = append(out.Counts, HistBucket{Index: b.Index, Count: d})
		}
	}
	return out
}

// Quantile estimates the q-th quantile (0 <= q <= 1) as the upper bound
// of the bucket holding that rank, overestimating the true value by at
// most HistRelError. An empty snapshot reports 0.
func (s HistSnapshot) Quantile(q float64) time.Duration {
	var total int64
	for _, b := range s.Counts {
		total += b.Count
	}
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// Rank of the target observation, 1-based: ceil(q*total), at least 1.
	rank := int64(q*float64(total) + 0.9999999)
	if rank < 1 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	var seen int64
	for _, b := range s.Counts {
		seen += b.Count
		if seen >= rank {
			up := HistBucketUpper(b.Index)
			if s.Max < up && b.Index == s.Counts[len(s.Counts)-1].Index {
				return time.Duration(s.Max) // never report beyond the observed max
			}
			return time.Duration(up)
		}
	}
	return time.Duration(s.Max)
}

// Mean reports the arithmetic mean latency (exact, from the running sum).
func (s HistSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return time.Duration(s.Sum / s.Count)
}

// P50, P90 and P99 are the quantiles every stats line prints.
func (s HistSnapshot) P50() time.Duration { return s.Quantile(0.50) }
func (s HistSnapshot) P90() time.Duration { return s.Quantile(0.90) }
func (s HistSnapshot) P99() time.Duration { return s.Quantile(0.99) }

// String renders the canonical quantile line.
func (s HistSnapshot) String() string {
	return fmt.Sprintf("n=%d p50=%v p90=%v p99=%v max=%v mean=%v",
		s.Count, s.P50(), s.P90(), s.P99(), time.Duration(s.Max), s.Mean())
}
