package metrics

import (
	"strings"
	"testing"
)

func TestServerSnapshotRatios(t *testing.T) {
	var s Server
	if got := s.Snapshot().FlushBatch(); got != 0 {
		t.Fatalf("empty FlushBatch = %v", got)
	}
	if got := s.Snapshot().ZeroCopyShare(); got != 0 {
		t.Fatalf("empty ZeroCopyShare = %v", got)
	}
	s.Flushes.Store(4)
	s.FlushedCmds.Store(12)
	s.ZeroCopyBytes.Store(3 << 20)
	s.StagedBytes.Store(1 << 20)
	snap := s.Snapshot()
	if got := snap.FlushBatch(); got != 3 {
		t.Fatalf("FlushBatch = %v, want 3", got)
	}
	if got := snap.ZeroCopyShare(); got != 0.75 {
		t.Fatalf("ZeroCopyShare = %v, want 0.75", got)
	}
}

func TestServerSnapshotString(t *testing.T) {
	var s Server
	s.QueueWaitNanos.Store(1500)
	s.Flushes.Store(2)
	s.FlushedCmds.Store(5)
	s.ZeroCopyBytes.Store(2 << 20)
	line := s.Snapshot().String()
	for _, want := range []string{"qwait=", "service=", "flush=", "writevs=2", "batch=2.5", "zero-copy=", "restaged=0"} {
		if !strings.Contains(line, want) {
			t.Fatalf("stats line %q missing %q", line, want)
		}
	}
}
