package metrics

import (
	"strings"
	"testing"
	"time"
)

func TestPipelineSnapshotRatios(t *testing.T) {
	var p Pipeline
	p.WireReads.Store(10)
	p.WireSegments.Store(40)
	p.PoolHits.Store(3)
	p.PoolMisses.Store(1)
	s := p.Snapshot()
	if r := s.CoalesceRatio(); r != 4.0 {
		t.Fatalf("coalesce ratio = %v", r)
	}
	if r := s.PoolHitRate(); r != 0.75 {
		t.Fatalf("pool hit rate = %v", r)
	}
	if !strings.Contains(s.String(), "coalesce=4.00x") {
		t.Fatalf("string: %s", s)
	}
}

func TestPipelineZeroSafe(t *testing.T) {
	var s PipelineSnapshot
	if s.CoalesceRatio() != 0 || s.PoolHitRate() != 0 {
		t.Fatal("zero snapshot ratios must be 0")
	}
}

func TestAddStage(t *testing.T) {
	var p Pipeline
	AddStage(&p.PrepNanos, time.Now().Add(-time.Millisecond))
	if p.PrepNanos.Load() < int64(time.Millisecond) {
		t.Fatalf("AddStage recorded %d", p.PrepNanos.Load())
	}
}
