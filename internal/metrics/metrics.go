// Package metrics provides the statistics and table rendering used by the
// benchmark harness: summary statistics over samples, throughput
// computation in virtual or wall time, and a fixed-width table printer for
// the figure output that cmd/dlfsbench and bench_test.go emit.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"time"
)

// Sample accumulates float64 observations and answers summary queries.
// The zero value is ready to use.
type Sample struct {
	vals   []float64
	sorted bool
}

// Add records one observation.
func (s *Sample) Add(v float64) {
	s.vals = append(s.vals, v)
	s.sorted = false
}

// AddDuration records a duration observation in seconds.
func (s *Sample) AddDuration(d time.Duration) { s.Add(d.Seconds()) }

// N reports the number of observations.
func (s *Sample) N() int { return len(s.vals) }

// Sum returns the sum of observations.
func (s *Sample) Sum() float64 {
	sum := 0.0
	for _, v := range s.vals {
		sum += v
	}
	return sum
}

// Mean returns the arithmetic mean, or 0 for an empty sample.
func (s *Sample) Mean() float64 {
	if len(s.vals) == 0 {
		return 0
	}
	return s.Sum() / float64(len(s.vals))
}

// Var returns the unbiased sample variance (0 for n < 2).
func (s *Sample) Var() float64 {
	n := len(s.vals)
	if n < 2 {
		return 0
	}
	m := s.Mean()
	sum := 0.0
	for _, v := range s.vals {
		d := v - m
		sum += d * d
	}
	return sum / float64(n-1)
}

// Stddev returns the sample standard deviation.
func (s *Sample) Stddev() float64 { return math.Sqrt(s.Var()) }

// Min returns the minimum observation (0 for empty).
func (s *Sample) Min() float64 {
	if len(s.vals) == 0 {
		return 0
	}
	m := s.vals[0]
	for _, v := range s.vals[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// Max returns the maximum observation (0 for empty).
func (s *Sample) Max() float64 {
	if len(s.vals) == 0 {
		return 0
	}
	m := s.vals[0]
	for _, v := range s.vals[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

func (s *Sample) sortValues() {
	if !s.sorted {
		sort.Float64s(s.vals)
		s.sorted = true
	}
}

// Percentile returns the p-th percentile (0 <= p <= 100) by linear
// interpolation between closest ranks.
func (s *Sample) Percentile(p float64) float64 {
	n := len(s.vals)
	if n == 0 {
		return 0
	}
	s.sortValues()
	if p <= 0 {
		return s.vals[0]
	}
	if p >= 100 {
		return s.vals[n-1]
	}
	rank := p / 100 * float64(n-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s.vals[lo]
	}
	frac := rank - float64(lo)
	return s.vals[lo]*(1-frac) + s.vals[hi]*frac
}

// Median returns the 50th percentile.
func (s *Sample) Median() float64 { return s.Percentile(50) }

// Values returns a copy of the observations in insertion order is not
// guaranteed once percentile queries have run; callers should treat the
// result as an unordered multiset.
func (s *Sample) Values() []float64 { return append([]float64(nil), s.vals...) }

// Throughput expresses a count of items served over a span of time.
type Throughput struct {
	Items   float64
	Bytes   int64
	Elapsed time.Duration
}

// PerSec returns items per second (0 if Elapsed is 0).
func (t Throughput) PerSec() float64 {
	if t.Elapsed <= 0 {
		return 0
	}
	return t.Items / t.Elapsed.Seconds()
}

// BytesPerSec returns bytes per second.
func (t Throughput) BytesPerSec() float64 {
	if t.Elapsed <= 0 {
		return 0
	}
	return float64(t.Bytes) / t.Elapsed.Seconds()
}

// HumanRate renders an items/sec rate with an SI suffix, e.g. "1.23M/s".
func HumanRate(perSec float64) string {
	switch {
	case perSec >= 1e9:
		return fmt.Sprintf("%.2fG/s", perSec/1e9)
	case perSec >= 1e6:
		return fmt.Sprintf("%.2fM/s", perSec/1e6)
	case perSec >= 1e3:
		return fmt.Sprintf("%.2fK/s", perSec/1e3)
	default:
		return fmt.Sprintf("%.2f/s", perSec)
	}
}

// HumanBytes renders a byte count with a binary suffix, e.g. "256KiB".
func HumanBytes(n int64) string {
	const (
		kib = 1 << 10
		mib = 1 << 20
		gib = 1 << 30
	)
	switch {
	case n >= gib && n%gib == 0:
		return fmt.Sprintf("%dGiB", n/gib)
	case n >= mib && n%mib == 0:
		return fmt.Sprintf("%dMiB", n/mib)
	case n >= kib && n%kib == 0:
		return fmt.Sprintf("%dKiB", n/kib)
	case n >= gib:
		return fmt.Sprintf("%.1fGiB", float64(n)/gib)
	case n >= mib:
		return fmt.Sprintf("%.1fMiB", float64(n)/mib)
	case n >= kib:
		return fmt.Sprintf("%.1fKiB", float64(n)/kib)
	default:
		return fmt.Sprintf("%dB", n)
	}
}

// Table renders rows of figures as a fixed-width text table. Build it with
// a header, append rows, and write it out.
type Table struct {
	Title  string
	header []string
	rows   [][]string
}

// NewTable returns a table with the given title and column headers.
func NewTable(title string, header ...string) *Table {
	return &Table{Title: title, header: header}
}

// AddRow appends a row; each cell is rendered with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

func formatFloat(v float64) string {
	av := math.Abs(v)
	switch {
	case v == math.Trunc(v) && av < 1e9:
		return fmt.Sprintf("%.0f", v)
	case av >= 1e6 || (av < 1e-3 && av > 0):
		return fmt.Sprintf("%.3g", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

// NumRows reports the number of data rows added.
func (t *Table) NumRows() int { return len(t.rows) }

// Rows returns the rendered cells, one slice per row.
func (t *Table) Rows() [][]string { return t.rows }

// Header returns the column headers.
func (t *Table) Header() []string { return t.header }

// WriteTo renders the table. It always returns a nil error from the final
// fmt call's perspective; the signature matches io.WriterTo.
func (t *Table) WriteTo(w io.Writer) (int64, error) {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString(t.Title)
		sb.WriteByte('\n')
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(pad(c, widths[i]))
		}
		sb.WriteByte('\n')
	}
	line(t.header)
	total := 0
	for _, w := range widths {
		total += w
	}
	sb.WriteString(strings.Repeat("-", total+2*(len(widths)-1)))
	sb.WriteByte('\n')
	for _, row := range t.rows {
		line(row)
	}
	n, err := io.WriteString(w, sb.String())
	return int64(n), err
}

// String renders the table to a string.
func (t *Table) String() string {
	var sb strings.Builder
	t.WriteTo(&sb) //nolint:errcheck // strings.Builder never fails
	return sb.String()
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Speedup returns a/b guarding against division by zero.
func Speedup(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// GeoMean returns the geometric mean of positive values (0 if any value is
// non-positive or the slice is empty).
func GeoMean(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range vals {
		if v <= 0 {
			return 0
		}
		sum += math.Log(v)
	}
	return math.Exp(sum / float64(len(vals)))
}
