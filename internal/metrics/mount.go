package metrics

import (
	"fmt"
	"sync/atomic"
	"time"
)

// Mount aggregates the phase counters of a live multi-node mount — the
// index → serialize → allgather → assemble decomposition of the paper's
// §III-B2 directory construction, observed per rank. All fields are safe
// for concurrent use, though a mount writes them from one goroutine.
type Mount struct {
	IndexNanos     atomic.Int64 // building the home partition + uploading the shard
	SerializeNanos atomic.Int64 // encoding the partition blob
	AllgatherNanos atomic.Int64 // exchanging blobs through the coordinator
	AssembleNanos  atomic.Int64 // deserializing peers' blobs into the full directory
	BarrierNanos   atomic.Int64 // time spent waiting in mount barriers
	Barriers       atomic.Int64 // barrier rendezvous completed

	UploadBytes  atomic.Int64 // sample payload bytes this rank wrote to its target
	BlobBytesOut atomic.Int64 // serialized partition bytes this rank contributed
	BlobBytesIn  atomic.Int64 // serialized partition bytes received from peers

	LocalEntries atomic.Int64 // directory entries this rank indexed
	TotalEntries atomic.Int64 // entries in the assembled directory
}

// Snapshot returns a point-in-time copy for reporting.
func (m *Mount) Snapshot() MountSnapshot {
	return MountSnapshot{
		IndexNanos:     m.IndexNanos.Load(),
		SerializeNanos: m.SerializeNanos.Load(),
		AllgatherNanos: m.AllgatherNanos.Load(),
		AssembleNanos:  m.AssembleNanos.Load(),
		BarrierNanos:   m.BarrierNanos.Load(),
		Barriers:       m.Barriers.Load(),
		UploadBytes:    m.UploadBytes.Load(),
		BlobBytesOut:   m.BlobBytesOut.Load(),
		BlobBytesIn:    m.BlobBytesIn.Load(),
		LocalEntries:   m.LocalEntries.Load(),
		TotalEntries:   m.TotalEntries.Load(),
	}
}

// MountSnapshot is a plain-value copy of Mount counters.
type MountSnapshot struct {
	IndexNanos     int64
	SerializeNanos int64
	AllgatherNanos int64
	AssembleNanos  int64
	BarrierNanos   int64
	Barriers       int64
	UploadBytes    int64
	BlobBytesOut   int64
	BlobBytesIn    int64
	LocalEntries   int64
	TotalEntries   int64
}

// ReplicationFactor reports assembled entries per locally indexed entry —
// world size on a balanced job, the paper's full-replication invariant.
func (s MountSnapshot) ReplicationFactor() float64 {
	if s.LocalEntries == 0 {
		return 0
	}
	return float64(s.TotalEntries) / float64(s.LocalEntries)
}

// String renders the snapshot as a stats line: per-phase time, then the
// exchange volumes.
func (s MountSnapshot) String() string {
	return fmt.Sprintf(
		"index=%v serialize=%v allgather=%v assemble=%v barriers=%d/%v upload=%s blob_out=%s blob_in=%s entries=%d/%d",
		time.Duration(s.IndexNanos), time.Duration(s.SerializeNanos),
		time.Duration(s.AllgatherNanos), time.Duration(s.AssembleNanos),
		s.Barriers, time.Duration(s.BarrierNanos),
		HumanBytes(s.UploadBytes), HumanBytes(s.BlobBytesOut), HumanBytes(s.BlobBytesIn),
		s.LocalEntries, s.TotalEntries)
}
