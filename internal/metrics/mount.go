package metrics

import (
	"fmt"
	"sync/atomic"
	"time"
)

// Mount aggregates the phase counters of a live multi-node mount — the
// index → serialize → allgather → assemble decomposition of the paper's
// §III-B2 directory construction, observed per rank. All fields are safe
// for concurrent use, though a mount writes them from one goroutine.
type Mount struct {
	IndexNanos     atomic.Int64 // building the home partition + uploading the shard
	SerializeNanos atomic.Int64 // encoding the partition blob
	AllgatherNanos atomic.Int64 // exchanging blobs through the coordinator
	AssembleNanos  atomic.Int64 // deserializing peers' blobs into the full directory
	BarrierNanos   atomic.Int64 // time spent waiting in mount barriers
	Barriers       atomic.Int64 // barrier rendezvous completed

	UploadBytes  atomic.Int64 // sample payload bytes this rank wrote to its target
	BlobBytesOut atomic.Int64 // serialized partition bytes this rank contributed
	BlobBytesIn  atomic.Int64 // serialized partition bytes received from peers

	LocalEntries atomic.Int64 // directory entries this rank indexed
	TotalEntries atomic.Int64 // entries in the assembled directory

	// Hist, when non-nil, additionally records per-phase latency
	// distributions — one observation per phase per mount, so repeated
	// mounts (and the several barriers of one mount) build distributions.
	Hist *MountHist
}

// MountHist holds the per-phase latency distributions of cluster mounts.
// Enabled via live.Config.StageHistograms.
type MountHist struct {
	Index     Hist
	Serialize Hist
	Allgather Hist
	Assemble  Hist
	Barrier   Hist
}

// Snapshot copies all phase histograms.
func (h *MountHist) Snapshot() *MountHistSnapshot {
	return &MountHistSnapshot{
		Index:     h.Index.Snapshot(),
		Serialize: h.Serialize.Snapshot(),
		Allgather: h.Allgather.Snapshot(),
		Assemble:  h.Assemble.Snapshot(),
		Barrier:   h.Barrier.Snapshot(),
	}
}

// MountHistSnapshot is a plain-value copy of MountHist.
type MountHistSnapshot struct {
	Index, Serialize, Allgather, Assemble, Barrier HistSnapshot
}

// ObserveIndex accounts the index phase (home partition build + upload).
func (m *Mount) ObserveIndex(d time.Duration) {
	m.IndexNanos.Add(int64(d))
	if m.Hist != nil {
		m.Hist.Index.Observe(d)
	}
}

// ObserveSerialize accounts the partition-blob encoding phase.
func (m *Mount) ObserveSerialize(d time.Duration) {
	m.SerializeNanos.Add(int64(d))
	if m.Hist != nil {
		m.Hist.Serialize.Observe(d)
	}
}

// ObserveAllgather accounts the coordinator blob exchange.
func (m *Mount) ObserveAllgather(d time.Duration) {
	m.AllgatherNanos.Add(int64(d))
	if m.Hist != nil {
		m.Hist.Allgather.Observe(d)
	}
}

// ObserveAssemble accounts directory assembly from peer blobs.
func (m *Mount) ObserveAssemble(d time.Duration) {
	m.AssembleNanos.Add(int64(d))
	if m.Hist != nil {
		m.Hist.Assemble.Observe(d)
	}
}

// ObserveBarrier accounts one barrier wait.
func (m *Mount) ObserveBarrier(d time.Duration) {
	m.BarrierNanos.Add(int64(d))
	m.Barriers.Add(1)
	if m.Hist != nil {
		m.Hist.Barrier.Observe(d)
	}
}

// Snapshot returns a point-in-time copy for reporting. When phase
// histograms are enabled the snapshot carries them in Phases.
func (m *Mount) Snapshot() MountSnapshot {
	var phases *MountHistSnapshot
	if m.Hist != nil {
		phases = m.Hist.Snapshot()
	}
	return MountSnapshot{
		Phases:         phases,
		IndexNanos:     m.IndexNanos.Load(),
		SerializeNanos: m.SerializeNanos.Load(),
		AllgatherNanos: m.AllgatherNanos.Load(),
		AssembleNanos:  m.AssembleNanos.Load(),
		BarrierNanos:   m.BarrierNanos.Load(),
		Barriers:       m.Barriers.Load(),
		UploadBytes:    m.UploadBytes.Load(),
		BlobBytesOut:   m.BlobBytesOut.Load(),
		BlobBytesIn:    m.BlobBytesIn.Load(),
		LocalEntries:   m.LocalEntries.Load(),
		TotalEntries:   m.TotalEntries.Load(),
	}
}

// MountSnapshot is a plain-value copy of Mount counters. Phases is
// non-nil only when phase histograms were enabled.
type MountSnapshot struct {
	Phases         *MountHistSnapshot
	IndexNanos     int64
	SerializeNanos int64
	AllgatherNanos int64
	AssembleNanos  int64
	BarrierNanos   int64
	Barriers       int64
	UploadBytes    int64
	BlobBytesOut   int64
	BlobBytesIn    int64
	LocalEntries   int64
	TotalEntries   int64
}

// ReplicationFactor reports assembled entries per locally indexed entry —
// world size on a balanced job, the paper's full-replication invariant.
func (s MountSnapshot) ReplicationFactor() float64 {
	if s.LocalEntries == 0 {
		return 0
	}
	return float64(s.TotalEntries) / float64(s.LocalEntries)
}

// String renders the snapshot as a stats line: per-phase time, then the
// exchange volumes.
func (s MountSnapshot) String() string {
	return fmt.Sprintf(
		"index=%v serialize=%v allgather=%v assemble=%v barriers=%d/%v upload=%s blob_out=%s blob_in=%s entries=%d/%d",
		time.Duration(s.IndexNanos), time.Duration(s.SerializeNanos),
		time.Duration(s.AllgatherNanos), time.Duration(s.AssembleNanos),
		s.Barriers, time.Duration(s.BarrierNanos),
		HumanBytes(s.UploadBytes), HumanBytes(s.BlobBytesOut), HumanBytes(s.BlobBytesIn),
		s.LocalEntries, s.TotalEntries)
}
