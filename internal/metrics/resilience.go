package metrics

import (
	"fmt"
	"sync/atomic"
)

// Resilience aggregates the failure-handling counters of the live path:
// transport retries and reconnects, command deadline expirations, circuit
// breaker transitions, and degraded-mode deliveries. One instance is
// shared by every reconnector and breaker belonging to a client, so a
// single snapshot describes the whole mount. All fields are safe for
// concurrent use.
type Resilience struct {
	Retries         atomic.Int64 // operations re-attempted after a retryable transport error
	Reconnects      atomic.Int64 // successful re-dials of a lost queue pair
	Timeouts        atomic.Int64 // commands that hit their per-command deadline
	Throttles       atomic.Int64 // commands rejected by a tenant quota (retried on a healthy connection)
	BreakerTrips    atomic.Int64 // circuit breaker transitions to open
	BreakerProbes   atomic.Int64 // half-open probe attempts after a cooldown
	DegradedBatches atomic.Int64 // batch deliveries (and the terminal epoch report) observed while degraded
	DegradedSamples atomic.Int64 // samples skipped because their target was down
}

// Snapshot returns a consistent-enough point-in-time copy for reporting.
func (r *Resilience) Snapshot() ResilienceSnapshot {
	return ResilienceSnapshot{
		Retries:         r.Retries.Load(),
		Reconnects:      r.Reconnects.Load(),
		Timeouts:        r.Timeouts.Load(),
		Throttles:       r.Throttles.Load(),
		BreakerTrips:    r.BreakerTrips.Load(),
		BreakerProbes:   r.BreakerProbes.Load(),
		DegradedBatches: r.DegradedBatches.Load(),
		DegradedSamples: r.DegradedSamples.Load(),
	}
}

// ResilienceSnapshot is a plain-value copy of Resilience counters.
type ResilienceSnapshot struct {
	Retries         int64
	Reconnects      int64
	Timeouts        int64
	Throttles       int64
	BreakerTrips    int64
	BreakerProbes   int64
	DegradedBatches int64
	DegradedSamples int64
}

// String renders the snapshot as a single stats line.
func (s ResilienceSnapshot) String() string {
	return fmt.Sprintf("retries=%d reconnects=%d timeouts=%d throttles=%d breaker_trips=%d breaker_probes=%d degraded_batches=%d degraded_samples=%d",
		s.Retries, s.Reconnects, s.Timeouts, s.Throttles, s.BreakerTrips, s.BreakerProbes, s.DegradedBatches, s.DegradedSamples)
}

// Healthy reports whether the snapshot shows no degradation at all.
func (s ResilienceSnapshot) Healthy() bool {
	return s == ResilienceSnapshot{}
}
