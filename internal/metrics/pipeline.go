package metrics

import (
	"fmt"
	"sync/atomic"
	"time"
)

// Pipeline aggregates the per-stage counters of the live read pipeline —
// the prep→post→poll→copy decomposition of the paper's §III-C backend,
// observed on the Go client. One instance is shared by every prefetcher
// and the emission path of a mount, so a single snapshot describes the
// whole pipeline. All fields are safe for concurrent use.
type Pipeline struct {
	PrepNanos atomic.Int64 // building requests: chunk alloc + segment setup
	PostNanos atomic.Int64 // submitting commands onto queue pairs
	PollNanos atomic.Int64 // waiting for completions
	CopyNanos atomic.Int64 // copying samples out of cache chunks

	WireReads    atomic.Int64 // read commands put on the wire
	WireSegments atomic.Int64 // chunk segments carried by those commands
	WireBytes    atomic.Int64 // payload bytes fetched

	CoalescedUnits atomic.Int64 // plan units merged into a preceding wire read

	PoolHits   atomic.Int64 // sample buffers served from the pool
	PoolMisses atomic.Int64 // sample buffers freshly allocated

	CacheHits      atomic.Int64 // ReadSample served from the V-bit cache
	CacheMisses    atomic.Int64 // ReadSample that went to the wire
	CacheEvictions atomic.Int64 // V-bit cache CLOCK evictions

	// Cross-epoch clairvoyant prefetch (live.Config.CrossEpochPrefetch):
	// next-epoch units fetched into the lookahead store during the
	// current epoch's poll gaps, and epoch units later served from it
	// without touching the wire.
	PrefetchedUnits   atomic.Int64 // units fetched ahead into the lookahead store
	PrefetchedBytes   atomic.Int64 // bytes fetched ahead into the lookahead store
	PrefetchHitUnits  atomic.Int64 // epoch units served from the lookahead store
	PrefetchHitBytes  atomic.Int64 // epoch bytes served from the lookahead store
	PrefetchEvictions atomic.Int64 // lookahead entries evicted before use

	// Cooperative peer cache (live.Config.PeerCache): the ReadSample miss
	// path's hit/peer/origin breakdown. CacheHits above is the "hit" leg;
	// these counters split the miss leg between peers and origin targets.
	PeerHits      atomic.Int64 // samples served by a peer's cache
	PeerBytes     atomic.Int64 // bytes served by peers
	PeerFallbacks atomic.Int64 // peer fetches that failed over to origin
	PeerServed    atomic.Int64 // samples this rank served to its peers
	OriginReads   atomic.Int64 // ReadSample misses served from the origin target
	OriginBytes   atomic.Int64 // bytes ReadSample pulled from origin targets

	// Near-data sample assembly (live.Config.ServerAssembly): fetch
	// groups posted as opReadSamples offload commands whose responses
	// carry exactly the samples' post-transform bytes, skipping chunk
	// staging and the client copy stage.
	OffloadCmds       atomic.Int64 // opReadSamples commands posted
	OffloadSamples    atomic.Int64 // samples assembled target-side
	OffloadSavedBytes atomic.Int64 // chunk padding + edge overfetch kept off the wire
	OffloadDowngrades atomic.Int64 // targets downgraded to opReadVec (old opcode set)

	// Checkpoint write path (live.Checkpointer): sharded state streamed
	// through gathered writes with a durability barrier per save.
	CkptSaves      atomic.Int64 // Save calls completed
	CkptBytes      atomic.Int64 // checkpoint payload bytes shipped
	CkptWriteCmds  atomic.Int64 // write commands posted (vec or per-extent)
	CkptWriteSegs  atomic.Int64 // extents carried by those commands
	CkptFlushes    atomic.Int64 // per-target durability barriers issued
	CkptDowngrades atomic.Int64 // targets downgraded to per-extent opWrite
	CkptNanos      atomic.Int64 // wall time inside Save

	// Hist, when non-nil, additionally records every stage observation
	// into per-stage latency histograms. Left nil (the default), the
	// pipeline pays only the atomic counter adds above.
	Hist *PipelineHist
}

// PipelineHist holds the per-stage latency distributions of the client
// pipeline plus the synchronous ReadSample path. Enabled via
// live.Config.StageHistograms.
type PipelineHist struct {
	Prep Hist // building requests: chunk alloc + segment setup, per fetch group
	Post Hist // submitting commands onto queue pairs, per fetch group
	Poll Hist // waiting for completions, per fetch group
	Copy Hist // copying one sample out of cache chunks
	Read Hist // whole synchronous ReadSample calls (hit or miss)
	Ckpt Hist // one checkpoint write command, post to completion
}

// Snapshot copies all stage histograms.
func (h *PipelineHist) Snapshot() *PipelineHistSnapshot {
	return &PipelineHistSnapshot{
		Prep: h.Prep.Snapshot(),
		Post: h.Post.Snapshot(),
		Poll: h.Poll.Snapshot(),
		Copy: h.Copy.Snapshot(),
		Read: h.Read.Snapshot(),
		Ckpt: h.Ckpt.Snapshot(),
	}
}

// PipelineHistSnapshot is a plain-value copy of PipelineHist.
type PipelineHistSnapshot struct {
	Prep, Post, Poll, Copy, Read, Ckpt HistSnapshot
}

// Merge combines per-stage distributions across clients or ranks.
func (s *PipelineHistSnapshot) Merge(o *PipelineHistSnapshot) *PipelineHistSnapshot {
	if s == nil {
		return o
	}
	if o == nil {
		return s
	}
	return &PipelineHistSnapshot{
		Prep: s.Prep.Merge(o.Prep),
		Post: s.Post.Merge(o.Post),
		Poll: s.Poll.Merge(o.Poll),
		Copy: s.Copy.Merge(o.Copy),
		Read: s.Read.Merge(o.Read),
		Ckpt: s.Ckpt.Merge(o.Ckpt),
	}
}

// AddStage is a helper for timing a stage: it adds the elapsed time since
// start to the given stage counter.
func AddStage(c *atomic.Int64, start time.Time) { c.Add(int64(time.Since(start))) }

// ObservePrep accounts one prep-stage duration (counter + histogram).
func (p *Pipeline) ObservePrep(d time.Duration) {
	p.PrepNanos.Add(int64(d))
	if p.Hist != nil {
		p.Hist.Prep.Observe(d)
	}
}

// ObservePost accounts one post-stage duration.
func (p *Pipeline) ObservePost(d time.Duration) {
	p.PostNanos.Add(int64(d))
	if p.Hist != nil {
		p.Hist.Post.Observe(d)
	}
}

// ObservePoll accounts one poll-stage duration.
func (p *Pipeline) ObservePoll(d time.Duration) {
	p.PollNanos.Add(int64(d))
	if p.Hist != nil {
		p.Hist.Poll.Observe(d)
	}
}

// ObserveCopy accounts one copy-stage duration.
func (p *Pipeline) ObserveCopy(d time.Duration) {
	p.CopyNanos.Add(int64(d))
	if p.Hist != nil {
		p.Hist.Copy.Observe(d)
	}
}

// ObserveRead records one synchronous ReadSample latency. Histogram-only:
// callers gate the surrounding clock reads on Hist being enabled.
func (p *Pipeline) ObserveRead(d time.Duration) {
	if p.Hist != nil {
		p.Hist.Read.Observe(d)
	}
}

// ObserveCkptWrite accounts one checkpoint write command: its byte and
// segment payload plus its post-to-completion latency.
func (p *Pipeline) ObserveCkptWrite(bytes, segs int64, d time.Duration) {
	p.CkptBytes.Add(bytes)
	p.CkptWriteCmds.Add(1)
	p.CkptWriteSegs.Add(segs)
	if p.Hist != nil {
		p.Hist.Ckpt.Observe(d)
	}
}

// Snapshot returns a point-in-time copy for reporting. When stage
// histograms are enabled the snapshot carries them in Stages.
func (p *Pipeline) Snapshot() PipelineSnapshot {
	var stages *PipelineHistSnapshot
	if p.Hist != nil {
		stages = p.Hist.Snapshot()
	}
	return PipelineSnapshot{
		Stages:            stages,
		PrepNanos:         p.PrepNanos.Load(),
		PostNanos:         p.PostNanos.Load(),
		PollNanos:         p.PollNanos.Load(),
		CopyNanos:         p.CopyNanos.Load(),
		WireReads:         p.WireReads.Load(),
		WireSegments:      p.WireSegments.Load(),
		WireBytes:         p.WireBytes.Load(),
		CoalescedUnits:    p.CoalescedUnits.Load(),
		PoolHits:          p.PoolHits.Load(),
		PoolMisses:        p.PoolMisses.Load(),
		CacheHits:         p.CacheHits.Load(),
		CacheMisses:       p.CacheMisses.Load(),
		CacheEvictions:    p.CacheEvictions.Load(),
		PrefetchedUnits:   p.PrefetchedUnits.Load(),
		PrefetchedBytes:   p.PrefetchedBytes.Load(),
		PrefetchHitUnits:  p.PrefetchHitUnits.Load(),
		PrefetchHitBytes:  p.PrefetchHitBytes.Load(),
		PrefetchEvictions: p.PrefetchEvictions.Load(),
		PeerHits:          p.PeerHits.Load(),
		PeerBytes:         p.PeerBytes.Load(),
		PeerFallbacks:     p.PeerFallbacks.Load(),
		PeerServed:        p.PeerServed.Load(),
		OriginReads:       p.OriginReads.Load(),
		OriginBytes:       p.OriginBytes.Load(),
		OffloadCmds:       p.OffloadCmds.Load(),
		OffloadSamples:    p.OffloadSamples.Load(),
		OffloadSavedBytes: p.OffloadSavedBytes.Load(),
		OffloadDowngrades: p.OffloadDowngrades.Load(),
		CkptSaves:         p.CkptSaves.Load(),
		CkptBytes:         p.CkptBytes.Load(),
		CkptWriteCmds:     p.CkptWriteCmds.Load(),
		CkptWriteSegs:     p.CkptWriteSegs.Load(),
		CkptFlushes:       p.CkptFlushes.Load(),
		CkptDowngrades:    p.CkptDowngrades.Load(),
		CkptNanos:         p.CkptNanos.Load(),
	}
}

// PipelineSnapshot is a plain-value copy of Pipeline counters. Stages is
// non-nil only when stage histograms were enabled.
type PipelineSnapshot struct {
	Stages            *PipelineHistSnapshot
	PrepNanos         int64
	PostNanos         int64
	PollNanos         int64
	CopyNanos         int64
	WireReads         int64
	WireSegments      int64
	WireBytes         int64
	CoalescedUnits    int64
	PoolHits          int64
	PoolMisses        int64
	CacheHits         int64
	CacheMisses       int64
	CacheEvictions    int64
	PrefetchedUnits   int64
	PrefetchedBytes   int64
	PrefetchHitUnits  int64
	PrefetchHitBytes  int64
	PrefetchEvictions int64
	PeerHits          int64
	PeerBytes         int64
	PeerFallbacks     int64
	PeerServed        int64
	OriginReads       int64
	OriginBytes       int64
	OffloadCmds       int64
	OffloadSamples    int64
	OffloadSavedBytes int64
	OffloadDowngrades int64
	CkptSaves         int64
	CkptBytes         int64
	CkptWriteCmds     int64
	CkptWriteSegs     int64
	CkptFlushes       int64
	CkptDowngrades    int64
	CkptNanos         int64
}

// CoalesceRatio reports chunk segments per wire read — 1.0 means no
// coalescing, higher means adjacent reads were merged.
func (s PipelineSnapshot) CoalesceRatio() float64 {
	if s.WireReads == 0 {
		return 0
	}
	return float64(s.WireSegments) / float64(s.WireReads)
}

// PoolHitRate reports the fraction of sample buffers served from the
// pool.
func (s PipelineSnapshot) PoolHitRate() float64 {
	if s.PoolHits+s.PoolMisses == 0 {
		return 0
	}
	return float64(s.PoolHits) / float64(s.PoolHits+s.PoolMisses)
}

// PrefetchCoverage reports the fraction of fetched epoch units served
// from the cross-epoch lookahead store instead of the wire.
func (s PipelineSnapshot) PrefetchCoverage() float64 {
	fetched := s.PrefetchHitUnits + s.WireReads + s.CoalescedUnits
	if fetched == 0 {
		return 0
	}
	return float64(s.PrefetchHitUnits) / float64(fetched)
}

// String renders the snapshot as a stats line: per-stage time, then the
// wire, pool, cache, prefetch and peer efficiency figures.
func (s PipelineSnapshot) String() string {
	line := fmt.Sprintf(
		"prep=%v post=%v poll=%v copy=%v wire_reads=%d segments=%d bytes=%d coalesce=%.2fx merged_units=%d pool_hit=%.0f%% cache hit/miss/evict=%d/%d/%d",
		time.Duration(s.PrepNanos), time.Duration(s.PostNanos), time.Duration(s.PollNanos), time.Duration(s.CopyNanos),
		s.WireReads, s.WireSegments, s.WireBytes, s.CoalesceRatio(), s.CoalescedUnits,
		100*s.PoolHitRate(), s.CacheHits, s.CacheMisses, s.CacheEvictions)
	if s.PrefetchedUnits+s.PrefetchHitUnits > 0 {
		line += fmt.Sprintf(" prefetch ahead/hit/evict=%d/%d/%d coverage=%.0f%%",
			s.PrefetchedUnits, s.PrefetchHitUnits, s.PrefetchEvictions, 100*s.PrefetchCoverage())
	}
	if s.PeerHits+s.PeerFallbacks+s.PeerServed+s.OriginReads > 0 {
		line += fmt.Sprintf(" reads local/peer/origin=%d/%d/%d peer_fallbacks=%d peer_served=%d origin_bytes=%d",
			s.CacheHits, s.PeerHits, s.OriginReads, s.PeerFallbacks, s.PeerServed, s.OriginBytes)
	}
	if s.OffloadCmds+s.OffloadDowngrades > 0 {
		line += fmt.Sprintf(" offload cmds/samples=%d/%d saved_bytes=%d downgrades=%d",
			s.OffloadCmds, s.OffloadSamples, s.OffloadSavedBytes, s.OffloadDowngrades)
	}
	if s.CkptSaves > 0 {
		line += fmt.Sprintf(" ckpt saves=%d bytes=%d cmds/segs=%d/%d flushes=%d downgrades=%d time=%v",
			s.CkptSaves, s.CkptBytes, s.CkptWriteCmds, s.CkptWriteSegs, s.CkptFlushes,
			s.CkptDowngrades, time.Duration(s.CkptNanos))
	}
	return line
}
