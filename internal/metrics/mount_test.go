package metrics

import (
	"strings"
	"testing"
	"time"
)

func TestMountSnapshot(t *testing.T) {
	var m Mount
	m.IndexNanos.Store(int64(2 * time.Millisecond))
	m.SerializeNanos.Store(int64(time.Millisecond))
	m.AllgatherNanos.Store(int64(5 * time.Millisecond))
	m.AssembleNanos.Store(int64(3 * time.Millisecond))
	m.BarrierNanos.Store(int64(4 * time.Millisecond))
	m.Barriers.Store(2)
	m.UploadBytes.Store(1 << 20)
	m.BlobBytesOut.Store(16 * 100)
	m.BlobBytesIn.Store(16 * 200)
	m.LocalEntries.Store(100)
	m.TotalEntries.Store(300)

	s := m.Snapshot()
	if s.LocalEntries != 100 || s.TotalEntries != 300 || s.Barriers != 2 {
		t.Fatalf("snapshot: %+v", s)
	}
	if got := s.ReplicationFactor(); got != 3 {
		t.Fatalf("ReplicationFactor = %v, want 3", got)
	}
	line := s.String()
	for _, want := range []string{"allgather=5ms", "entries=100/300", "barriers=2/4ms", "upload=1MiB"} {
		if !strings.Contains(line, want) {
			t.Fatalf("stats line missing %q: %s", want, line)
		}
	}
}

func TestMountReplicationFactorEmpty(t *testing.T) {
	var m Mount
	if got := m.Snapshot().ReplicationFactor(); got != 0 {
		t.Fatalf("empty ReplicationFactor = %v", got)
	}
}
