package metrics

import (
	"strings"
	"sync"
	"testing"
)

func TestResilienceSnapshot(t *testing.T) {
	var r Resilience
	if !r.Snapshot().Healthy() {
		t.Fatal("zero counters not healthy")
	}
	r.Retries.Add(3)
	r.Reconnects.Add(1)
	r.Timeouts.Add(2)
	r.BreakerTrips.Add(1)
	r.DegradedSamples.Add(40)
	s := r.Snapshot()
	if s.Retries != 3 || s.Reconnects != 1 || s.Timeouts != 2 || s.BreakerTrips != 1 || s.DegradedSamples != 40 {
		t.Fatalf("snapshot %+v", s)
	}
	if s.Healthy() {
		t.Fatal("non-zero counters report healthy")
	}
	line := s.String()
	for _, want := range []string{"retries=3", "reconnects=1", "timeouts=2", "breaker_trips=1", "degraded_samples=40"} {
		if !strings.Contains(line, want) {
			t.Fatalf("stats line %q missing %q", line, want)
		}
	}
}

func TestResilienceConcurrent(t *testing.T) {
	var r Resilience
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Retries.Add(1)
			}
		}()
	}
	wg.Wait()
	if got := r.Snapshot().Retries; got != 8000 {
		t.Fatalf("retries = %d, want 8000", got)
	}
}
