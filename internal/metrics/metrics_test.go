package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestSampleBasics(t *testing.T) {
	var s Sample
	for _, v := range []float64{4, 2, 8, 6} {
		s.Add(v)
	}
	if s.N() != 4 {
		t.Fatalf("N = %d", s.N())
	}
	if !almost(s.Sum(), 20) || !almost(s.Mean(), 5) {
		t.Fatalf("sum=%v mean=%v", s.Sum(), s.Mean())
	}
	if !almost(s.Min(), 2) || !almost(s.Max(), 8) {
		t.Fatalf("min=%v max=%v", s.Min(), s.Max())
	}
	if !almost(s.Median(), 5) {
		t.Fatalf("median=%v", s.Median())
	}
	// Variance of {4,2,8,6}: mean 5, sq devs 1+9+9+1=20, /3.
	if !almost(s.Var(), 20.0/3) {
		t.Fatalf("var=%v", s.Var())
	}
	if !almost(s.Stddev(), math.Sqrt(20.0/3)) {
		t.Fatalf("stddev=%v", s.Stddev())
	}
}

func TestSampleEmpty(t *testing.T) {
	var s Sample
	if s.Mean() != 0 || s.Min() != 0 || s.Max() != 0 || s.Var() != 0 || s.Percentile(50) != 0 {
		t.Fatal("empty sample should report zeros")
	}
}

func TestPercentileEdges(t *testing.T) {
	var s Sample
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	if !almost(s.Percentile(0), 1) || !almost(s.Percentile(100), 100) {
		t.Fatalf("p0=%v p100=%v", s.Percentile(0), s.Percentile(100))
	}
	p75 := s.Percentile(75)
	if p75 < 74 || p75 > 77 {
		t.Fatalf("p75=%v", p75)
	}
}

func TestPercentileInterpolation(t *testing.T) {
	var s Sample
	s.Add(10)
	s.Add(20)
	if !almost(s.Percentile(50), 15) {
		t.Fatalf("p50 of {10,20} = %v, want 15", s.Percentile(50))
	}
}

func TestAddDuration(t *testing.T) {
	var s Sample
	s.AddDuration(500 * time.Millisecond)
	if !almost(s.Mean(), 0.5) {
		t.Fatalf("mean=%v", s.Mean())
	}
}

// Property: percentile is monotone in p and bounded by min/max.
func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(raw []int16, aRaw, bRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		var s Sample
		for _, v := range raw {
			s.Add(float64(v))
		}
		a := float64(aRaw) / 255 * 100
		b := float64(bRaw) / 255 * 100
		if a > b {
			a, b = b, a
		}
		pa, pb := s.Percentile(a), s.Percentile(b)
		return pa <= pb && pa >= s.Min() && pb <= s.Max()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestThroughput(t *testing.T) {
	tp := Throughput{Items: 1000, Bytes: 1 << 20, Elapsed: 2 * time.Second}
	if !almost(tp.PerSec(), 500) {
		t.Fatalf("PerSec=%v", tp.PerSec())
	}
	if !almost(tp.BytesPerSec(), float64(1<<19)) {
		t.Fatalf("BytesPerSec=%v", tp.BytesPerSec())
	}
	zero := Throughput{Items: 5}
	if zero.PerSec() != 0 || zero.BytesPerSec() != 0 {
		t.Fatal("zero elapsed should report 0 rate")
	}
}

func TestHumanRate(t *testing.T) {
	cases := map[float64]string{
		12:    "12.00/s",
		1500:  "1.50K/s",
		2.5e6: "2.50M/s",
		3.2e9: "3.20G/s",
	}
	for in, want := range cases {
		if got := HumanRate(in); got != want {
			t.Errorf("HumanRate(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestHumanBytes(t *testing.T) {
	cases := map[int64]string{
		512:         "512B",
		1 << 10:     "1KiB",
		256 << 10:   "256KiB",
		1 << 20:     "1MiB",
		3 << 30:     "3GiB",
		1536:        "1.5KiB",
		5<<20 + 100: "5.0MiB",
	}
	for in, want := range cases {
		if got := HumanBytes(in); got != want {
			t.Errorf("HumanBytes(%d) = %q, want %q", in, got, want)
		}
	}
}

func TestTableRendering(t *testing.T) {
	tab := NewTable("Fig X", "size", "dlfs", "ext4")
	tab.AddRow("512B", 1234.0, 56.0)
	tab.AddRow("4KiB", 2000.5, 70.25)
	out := tab.String()
	if !strings.Contains(out, "Fig X") || !strings.Contains(out, "size") {
		t.Fatalf("missing title/header:\n%s", out)
	}
	if !strings.Contains(out, "512B") || !strings.Contains(out, "2000.500") {
		t.Fatalf("missing cells:\n%s", out)
	}
	if tab.NumRows() != 2 || len(tab.Rows()) != 2 || len(tab.Header()) != 3 {
		t.Fatal("row/header accounting wrong")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
}

func TestTableIntegerFloatFormatting(t *testing.T) {
	tab := NewTable("", "v")
	tab.AddRow(16.0)
	if tab.Rows()[0][0] != "16" {
		t.Fatalf("integral float rendered as %q", tab.Rows()[0][0])
	}
}

func TestSpeedup(t *testing.T) {
	if !almost(Speedup(10, 2), 5) || Speedup(1, 0) != 0 {
		t.Fatal("Speedup wrong")
	}
}

func TestGeoMean(t *testing.T) {
	if !almost(GeoMean([]float64{1, 4}), 2) {
		t.Fatalf("GeoMean = %v", GeoMean([]float64{1, 4}))
	}
	if GeoMean(nil) != 0 || GeoMean([]float64{1, -1}) != 0 {
		t.Fatal("GeoMean edge cases wrong")
	}
}
