package metrics

import (
	"fmt"
	"sync/atomic"
	"time"
)

// Server aggregates the per-stage counters of the target-side RPQ/SCQ
// serving engine — the storage-node mirror of Pipeline. Commands wait on
// the request-posting queue, are serviced by a worker, and their
// completions are coalesced by a per-connection flusher into vectored
// socket writes; each stage is timed here. One instance lives in each
// nvmetcp.Target. All fields are safe for concurrent use.
type Server struct {
	QueueWaitNanos atomic.Int64 // RPQ residency: enqueue to worker pickup
	ServiceNanos   atomic.Int64 // command execution inside a worker
	FlushNanos     atomic.Int64 // building + writing completion batches

	Flushes     atomic.Int64 // writev calls issued by flushers
	FlushedCmds atomic.Int64 // completions carried by those writevs

	ZeroCopyBytes atomic.Int64 // read payload served as store views
	StagedBytes   atomic.Int64 // read payload copied through the pool
	Restaged      atomic.Int64 // views invalidated by a write epoch change

	// Near-data sample assembly (opReadSamples).
	SampleCmds       atomic.Int64 // offload commands served
	AssembledSamples atomic.Int64 // sample records assembled by them
	AssembledBytes   atomic.Int64 // post-transform record bytes flushed
	TransformNanos   atomic.Int64 // time inside the per-sample transform stage

	// Write path (opWrite / opWriteVec / opFlush): checkpoint ingest.
	WriteBytes     atomic.Int64 // payload bytes landed in the store
	VecWriteCmds   atomic.Int64 // gathered-write commands served
	VecWriteSegs   atomic.Int64 // extents carried by those commands
	FlushCmds      atomic.Int64 // durability barriers served
	FlushWaitNanos atomic.Int64 // time barriers waited for prior writes
	AdoptedExtents atomic.Int64 // extents landed zero-copy by buffer adoption

	// Hist, when non-nil, additionally records per-stage latency
	// distributions. Left nil (the default), the engine pays only the
	// atomic counter adds above.
	Hist *ServerHist
}

// ServerHist holds the per-stage latency distributions of the target
// engine. Enabled via nvmetcp.Config.StageHistograms.
type ServerHist struct {
	QueueWait Hist // per command: RPQ enqueue to worker pickup
	Service   Hist // per command: execution inside a worker
	Flush     Hist // per writev: building + writing one completion batch
	Write     Hist // per write command: store landing time
}

// Snapshot copies all stage histograms.
func (h *ServerHist) Snapshot() *ServerHistSnapshot {
	return &ServerHistSnapshot{
		QueueWait: h.QueueWait.Snapshot(),
		Service:   h.Service.Snapshot(),
		Flush:     h.Flush.Snapshot(),
		Write:     h.Write.Snapshot(),
	}
}

// ServerHistSnapshot is a plain-value copy of ServerHist.
type ServerHistSnapshot struct {
	QueueWait, Service, Flush, Write HistSnapshot
}

// Merge combines per-stage distributions across targets.
func (s *ServerHistSnapshot) Merge(o *ServerHistSnapshot) *ServerHistSnapshot {
	if s == nil {
		return o
	}
	if o == nil {
		return s
	}
	return &ServerHistSnapshot{
		QueueWait: s.QueueWait.Merge(o.QueueWait),
		Service:   s.Service.Merge(o.Service),
		Flush:     s.Flush.Merge(o.Flush),
		Write:     s.Write.Merge(o.Write),
	}
}

// ObserveQueueWait accounts one command's RPQ residency.
func (s *Server) ObserveQueueWait(d time.Duration) {
	s.QueueWaitNanos.Add(int64(d))
	if s.Hist != nil {
		s.Hist.QueueWait.Observe(d)
	}
}

// ObserveService accounts one command's execution time.
func (s *Server) ObserveService(d time.Duration) {
	s.ServiceNanos.Add(int64(d))
	if s.Hist != nil {
		s.Hist.Service.Observe(d)
	}
}

// ObserveFlush accounts one completion-batch flush.
func (s *Server) ObserveFlush(d time.Duration) {
	s.FlushNanos.Add(int64(d))
	if s.Hist != nil {
		s.Hist.Flush.Observe(d)
	}
}

// ObserveTransform accounts time spent in one command's per-sample
// transform stage (zero for TransformNone).
func (s *Server) ObserveTransform(d time.Duration) {
	if d > 0 {
		s.TransformNanos.Add(int64(d))
	}
}

// ObserveWrite accounts one write command's store landing: payload bytes
// plus the time spent inside the store write.
func (s *Server) ObserveWrite(bytes int64, d time.Duration) {
	s.WriteBytes.Add(bytes)
	if s.Hist != nil {
		s.Hist.Write.Observe(d)
	}
}

// ObserveFlushWait accounts the time one durability barrier spent
// waiting for the connection's prior writes to land before syncing.
func (s *Server) ObserveFlushWait(d time.Duration) {
	s.FlushWaitNanos.Add(int64(d))
}

// Snapshot returns a point-in-time copy for reporting. When stage
// histograms are enabled the snapshot carries them in Stages.
func (s *Server) Snapshot() ServerSnapshot {
	var stages *ServerHistSnapshot
	if s.Hist != nil {
		stages = s.Hist.Snapshot()
	}
	return ServerSnapshot{
		Stages:         stages,
		QueueWaitNanos: s.QueueWaitNanos.Load(),
		ServiceNanos:   s.ServiceNanos.Load(),
		FlushNanos:     s.FlushNanos.Load(),
		Flushes:        s.Flushes.Load(),
		FlushedCmds:    s.FlushedCmds.Load(),
		ZeroCopyBytes:  s.ZeroCopyBytes.Load(),
		StagedBytes:    s.StagedBytes.Load(),
		Restaged:       s.Restaged.Load(),

		SampleCmds:       s.SampleCmds.Load(),
		AssembledSamples: s.AssembledSamples.Load(),
		AssembledBytes:   s.AssembledBytes.Load(),
		TransformNanos:   s.TransformNanos.Load(),

		WriteBytes:     s.WriteBytes.Load(),
		VecWriteCmds:   s.VecWriteCmds.Load(),
		VecWriteSegs:   s.VecWriteSegs.Load(),
		FlushCmds:      s.FlushCmds.Load(),
		FlushWaitNanos: s.FlushWaitNanos.Load(),
		AdoptedExtents: s.AdoptedExtents.Load(),
	}
}

// ServerSnapshot is a plain-value copy of Server counters. Stages is
// non-nil only when stage histograms were enabled.
type ServerSnapshot struct {
	Stages         *ServerHistSnapshot
	QueueWaitNanos int64
	ServiceNanos   int64
	FlushNanos     int64
	Flushes        int64
	FlushedCmds    int64
	ZeroCopyBytes  int64
	StagedBytes    int64
	Restaged       int64

	SampleCmds       int64
	AssembledSamples int64
	AssembledBytes   int64
	TransformNanos   int64

	WriteBytes     int64
	VecWriteCmds   int64
	VecWriteSegs   int64
	FlushCmds      int64
	FlushWaitNanos int64
	AdoptedExtents int64
}

// FlushBatch reports completions per writev — 1.0 means no batching,
// higher means syscalls were amortised across queued completions.
func (s ServerSnapshot) FlushBatch() float64 {
	if s.Flushes == 0 {
		return 0
	}
	return float64(s.FlushedCmds) / float64(s.Flushes)
}

// ZeroCopyShare reports the fraction of read payload bytes that went out
// as store views rather than staged copies.
func (s ServerSnapshot) ZeroCopyShare() float64 {
	if s.ZeroCopyBytes+s.StagedBytes == 0 {
		return 0
	}
	return float64(s.ZeroCopyBytes) / float64(s.ZeroCopyBytes+s.StagedBytes)
}

// String renders the snapshot as a stats line: per-stage time, then the
// batching and zero-copy efficiency figures.
func (s ServerSnapshot) String() string {
	line := fmt.Sprintf(
		"qwait=%v service=%v flush=%v writevs=%d batch=%.1f cmds/flush zero-copy=%s staged=%s (%.0f%% zero-copy) restaged=%d",
		time.Duration(s.QueueWaitNanos), time.Duration(s.ServiceNanos), time.Duration(s.FlushNanos),
		s.Flushes, s.FlushBatch(),
		HumanBytes(s.ZeroCopyBytes), HumanBytes(s.StagedBytes), 100*s.ZeroCopyShare(), s.Restaged)
	if s.SampleCmds > 0 {
		line += fmt.Sprintf(" assembly cmds=%d samples=%d bytes=%s xform=%v",
			s.SampleCmds, s.AssembledSamples, HumanBytes(s.AssembledBytes), time.Duration(s.TransformNanos))
	}
	if s.WriteBytes > 0 || s.FlushCmds > 0 {
		line += fmt.Sprintf(" write=%s vec-cmds=%d vec-segs=%d adopted=%d syncs=%d sync-wait=%v",
			HumanBytes(s.WriteBytes), s.VecWriteCmds, s.VecWriteSegs, s.AdoptedExtents, s.FlushCmds, time.Duration(s.FlushWaitNanos))
	}
	return line
}
