package octopus

import (
	"errors"
	"fmt"
	"testing"

	"dlfs/internal/cluster"
	"dlfs/internal/dataset"
	"dlfs/internal/sim"
)

func newFS(e *sim.Engine, nodes int) (*FS, *cluster.Job) {
	job := cluster.NewJob(e, nodes, cluster.DefaultNodeSpec())
	return New(job, Costs{}), job
}

func TestPutAndReadBack(t *testing.T) {
	e := sim.NewEngine()
	fs, _ := newFS(e, 4)
	ds := dataset.Generate(dataset.Config{Label: "o", Seed: 2, NumSamples: 40, Dist: dataset.IMDBDist()})
	for i := 0; i < ds.Len(); i++ {
		if err := fs.Put(ds.Samples[i].Name, ds.Content(i)); err != nil {
			t.Fatal(err)
		}
	}
	if fs.NumFiles() != 40 {
		t.Fatal("file count")
	}
	e.Go("client", func(p *sim.Proc) {
		for i := 0; i < ds.Len(); i++ {
			buf := make([]byte, ds.Samples[i].Size)
			n, err := fs.ReadFile(p, 0, ds.Samples[i].Name, buf)
			if err != nil || n != ds.Samples[i].Size {
				t.Errorf("read %d: n=%d err=%v", i, n, err)
				return
			}
			if dataset.ChecksumBytes(buf) != ds.Checksum(i) {
				t.Errorf("sample %d corrupt through octopus", i)
			}
		}
	})
	e.RunAll()
	if e.Now() == 0 {
		t.Fatal("octopus reads cost no time")
	}
}

func TestDuplicatePut(t *testing.T) {
	e := sim.NewEngine()
	fs, _ := newFS(e, 2)
	fs.Put("a", []byte("x")) //nolint:errcheck
	if err := fs.Put("a", []byte("y")); err == nil {
		t.Fatal("duplicate accepted")
	}
}

func TestMissingFile(t *testing.T) {
	e := sim.NewEngine()
	fs, _ := newFS(e, 2)
	e.Go("c", func(p *sim.Proc) {
		if _, err := fs.ReadFile(p, 0, "nope", make([]byte, 8)); !errors.Is(err, ErrNotFound) {
			t.Errorf("missing: %v", err)
		}
	})
	e.RunAll()
}

func TestMetadataDistributedAcrossNodes(t *testing.T) {
	e := sim.NewEngine()
	fs, _ := newFS(e, 8)
	counts := make([]int, 8)
	for i := 0; i < 8000; i++ {
		counts[fs.ownerOf(fmt.Sprintf("dir/file%06d", i))]++
	}
	for n, c := range counts {
		if c < 500 || c > 1500 {
			t.Fatalf("node %d owns %d of 8000 (imbalanced hash)", n, c)
		}
	}
}

func TestRemoteLookupsDominate(t *testing.T) {
	// With N nodes, ~ (N-1)/N of lookups from one client are remote —
	// the cross-node metadata traffic the paper blames.
	e := sim.NewEngine()
	fs, _ := newFS(e, 8)
	for i := 0; i < 200; i++ {
		fs.Put(fmt.Sprintf("f%d", i), make([]byte, 64)) //nolint:errcheck
	}
	e.Go("c", func(p *sim.Proc) {
		for i := 0; i < 200; i++ {
			fs.Lookup(p, 0, fmt.Sprintf("f%d", i)) //nolint:errcheck
		}
	})
	e.RunAll()
	lookups, remote, _ := fs.Stats()
	if lookups != 200 {
		t.Fatalf("lookups = %d", lookups)
	}
	if float64(remote)/float64(lookups) < 0.70 {
		t.Fatalf("remote fraction = %d/%d, want ≳7/8", remote, lookups)
	}
}

func TestRemoteLookupSlowerThanLocal(t *testing.T) {
	e := sim.NewEngine()
	fs, _ := newFS(e, 4)
	// Find one local and one remote name for client 0.
	var local, remote string
	for i := 0; local == "" || remote == ""; i++ {
		name := fmt.Sprintf("probe%d", i)
		if fs.ownerOf(name) == 0 && local == "" {
			local = name
		}
		if fs.ownerOf(name) != 0 && remote == "" {
			remote = name
		}
	}
	fs.Put(local, []byte("x"))  //nolint:errcheck
	fs.Put(remote, []byte("x")) //nolint:errcheck
	var tLocal, tRemote sim.Time
	e.Go("c", func(p *sim.Proc) {
		start := p.Now()
		fs.Lookup(p, 0, local) //nolint:errcheck
		tLocal = p.Now() - start
		start = p.Now()
		fs.Lookup(p, 0, remote) //nolint:errcheck
		tRemote = p.Now() - start
	})
	e.RunAll()
	if tRemote <= tLocal {
		t.Fatalf("remote lookup (%v) not slower than local (%v)", tRemote, tLocal)
	}
	// Remote adds ~2 fabric latencies ≈ 3µs.
	if d := tRemote - tLocal; d < 2000 || d > 6000 {
		t.Fatalf("remote lookup penalty = %v, want ≈3µs", d)
	}
}

func TestPerSampleCostEnvelope(t *testing.T) {
	// One 512B read ≈ lookup RPC (≈4µs) + RDMA setup + device (≈12µs) +
	// transfer: ~17-25µs. Slower than DLFS, competitive with Ext4.
	e := sim.NewEngine()
	fs, _ := newFS(e, 4)
	var name string
	for i := 0; ; i++ {
		name = fmt.Sprintf("s%d", i)
		if fs.ownerOf(name) != 0 {
			break
		}
	}
	fs.Put(name, make([]byte, 512)) //nolint:errcheck
	var took sim.Time
	e.Go("c", func(p *sim.Proc) {
		buf := make([]byte, 512)
		start := p.Now()
		fs.ReadFile(p, 0, name, buf) //nolint:errcheck
		took = p.Now() - start
	})
	e.RunAll()
	if took < 15_000 || took > 30_000 {
		t.Fatalf("remote 512B read = %v, want 15-30µs", took)
	}
}

func TestServerCPUSerializesClients(t *testing.T) {
	// Many clients hammering one owner's metadata partition serialize on
	// that server's core.
	e := sim.NewEngine()
	fs, _ := newFS(e, 4)
	var name string
	for i := 0; ; i++ {
		name = fmt.Sprintf("hot%d", i)
		if fs.ownerOf(name) == 3 {
			break
		}
	}
	fs.Put(name, make([]byte, 64)) //nolint:errcheck
	const clients = 8
	const each = 50
	for c := 0; c < clients; c++ {
		e.Go("c", func(p *sim.Proc) {
			for i := 0; i < each; i++ {
				fs.Lookup(p, 0, name) //nolint:errcheck
			}
		})
	}
	e.RunAll()
	// 400 lookups × 0.6µs server CPU = 240µs lower bound on the owner.
	if e.Now() < 240_000 {
		t.Fatalf("finished in %v: server CPU not serializing", e.Now())
	}
}
