// Package octopus models the Octopus baseline (Lu et al., USENIX ATC'17):
// an RDMA-enabled distributed persistent-memory file system, which the
// paper runs with memory emulating backend NVMe devices (§IV).
//
// The model captures the properties the paper's analysis attributes to
// Octopus:
//
//   - Distributed metadata: file metadata is hash-partitioned across
//     server nodes, so nearly every sample lookup from a client is an RDMA
//     RPC to a remote node ("Octopus suffers from frequent inter-node
//     communication for sample lookup").
//   - RDMA data path: data is fetched with one-sided RDMA reads from the
//     owner's memory, with an injected delay emulating NVMe access, so it
//     avoids the kernel's copies (faster than Ext4 for small samples in
//     Fig 8).
//   - A general-purpose design: no client-side sample cache, no batching,
//     one synchronous operation per sample.
//
// All data is real: Put stores bytes on the owner node's device store and
// ReadFile returns them, so integrity is testable end to end.
package octopus

import (
	"errors"
	"fmt"

	"dlfs/internal/cluster"
	"dlfs/internal/nvme"
	"dlfs/internal/sim"
)

// Costs is Octopus' software cost model.
type Costs struct {
	ClientCPU     sim.Duration // client-side per-op bookkeeping
	ServerLookup  sim.Duration // metadata hash-table lookup at the owner
	ServerDataCPU sim.Duration // server-side work to expose the extent
	RDMASetup     sim.Duration // per RDMA verb post
}

// DefaultCosts reflects the ATC'17 numbers: sub-µs lookups once the RPC
// arrives, ~1 µs verb posting.
func DefaultCosts() Costs {
	return Costs{
		ClientCPU:     400,
		ServerLookup:  600,
		ServerDataCPU: 500,
		RDMASetup:     1200,
	}
}

type meta struct {
	name   string
	owner  int // node holding both the metadata partition entry and data
	offset int64
	size   int64
}

// FS is an Octopus instance spanning all nodes of a job.
type FS struct {
	job   *cluster.Job
	costs Costs
	files map[string]*meta
	next  []int64 // per-node allocation cursor

	serverCPU []*sim.Server // one metadata/data service core per node

	lookups, remoteLookups, reads int64
}

// New creates an Octopus spanning the job's nodes; every node is both
// client and server, as in the paper's runs.
func New(job *cluster.Job, costs Costs) *FS {
	if costs == (Costs{}) {
		costs = DefaultCosts()
	}
	fs := &FS{
		job:   job,
		costs: costs,
		files: make(map[string]*meta),
		next:  make([]int64, job.N()),
	}
	for i := 0; i < job.N(); i++ {
		fs.serverCPU = append(fs.serverCPU, sim.NewServer(job.Engine(), fmt.Sprintf("octopus%d/cpu", i), 1))
	}
	return fs
}

// Errors.
var ErrNotFound = errors.New("octopus: no such file")

// ownerOf hash-partitions names across nodes.
func (fs *FS) ownerOf(name string) int {
	h := uint64(14695981039346656037)
	for i := 0; i < len(name); i++ {
		h = (h ^ uint64(name[i])) * 1099511628211
	}
	return int((h ^ h>>29) % uint64(fs.job.N()))
}

// Put stores a file at population time (untimed, like ext4sim.CreateFile):
// data lands on the owner node's device store.
func (fs *FS) Put(name string, data []byte) error {
	if _, dup := fs.files[name]; dup {
		return fmt.Errorf("octopus: file exists: %s", name)
	}
	owner := fs.ownerOf(name)
	dev := fs.job.Node(owner).Device
	if dev == nil {
		return fmt.Errorf("octopus: node %d has no device", owner)
	}
	off := fs.next[owner]
	if _, err := dev.Store().WriteAt(data, off); err != nil {
		return err
	}
	fs.next[owner] += (int64(len(data)) + 4095) / 4096 * 4096
	fs.files[name] = &meta{name: name, owner: owner, offset: off, size: int64(len(data))}
	return nil
}

// NumFiles reports the stored file count.
func (fs *FS) NumFiles() int { return len(fs.files) }

// Lookup resolves a name from clientNode: an RDMA RPC to the metadata
// owner unless the client happens to own the partition. It returns the
// file size so callers can allocate.
func (fs *FS) Lookup(p *sim.Proc, clientNode int, name string) (int64, error) {
	fs.lookups++
	p.Sleep(fs.costs.ClientCPU)
	m, ok := fs.files[name]
	owner := fs.ownerOf(name)
	net := fs.job.Network()
	if owner != clientNode {
		fs.remoteLookups++
		net.Message(p, clientNode, owner) // RPC request
		fs.serverCPU[owner].Use(p, fs.costs.ServerLookup)
		net.Message(p, owner, clientNode) // RPC reply
	} else {
		fs.serverCPU[owner].Use(p, fs.costs.ServerLookup)
	}
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	return m.size, nil
}

// ReadFile performs a full sample read from clientNode: lookup RPC, then a
// one-sided RDMA read of the data with the NVMe emulation delay at the
// owner. Returns bytes read.
func (fs *FS) ReadFile(p *sim.Proc, clientNode int, name string, buf []byte) (int, error) {
	if _, err := fs.Lookup(p, clientNode, name); err != nil {
		return 0, err
	}
	m := fs.files[name]
	fs.reads++
	n := int64(len(buf))
	if n > m.size {
		n = m.size
	}
	dev := fs.job.Node(m.owner).Device
	net := fs.job.Network()

	// Post the RDMA read.
	p.Sleep(fs.costs.RDMASetup)
	fs.serverCPU[m.owner].Use(p, fs.costs.ServerDataCPU)
	// NVMe emulation delay + data access at the owner (real bytes).
	if err := dev.SyncIO(p, &nvme.Command{Op: nvme.OpRead, Offset: m.offset, Buf: buf[:n]}); err != nil {
		return 0, err
	}
	// The payload crosses the fabric to the client.
	net.Transfer(p, m.owner, clientNode, n)
	return int(n), nil
}

// Stats reports lookup/read counters.
func (fs *FS) Stats() (lookups, remoteLookups, reads int64) {
	return fs.lookups, fs.remoteLookups, fs.reads
}
