// Package spdk is the user-level driver facade DLFS is written against,
// mirroring the surface of Intel's Storage Performance Development Kit
// that the paper builds on (§III-C): environment initialisation with a
// huge-page pool, controller probe/attach for local (PCIe) and remote
// (NVMe-oF) devices, I/O queue pair allocation with a bounded depth, and
// busy-poll completion processing.
//
// Everything is user level by construction — no simulated kernel costs
// appear anywhere in this path; that asymmetry against ext4sim is the
// paper's core argument.
package spdk

import (
	"errors"
	"fmt"

	"dlfs/internal/fabric"
	"dlfs/internal/hugepage"
	"dlfs/internal/nvme"
	"dlfs/internal/sim"
)

// Env is the SPDK environment: the engine plus the huge-page pool that all
// I/O buffers must come from.
type Env struct {
	eng   *sim.Engine
	arena *hugepage.Arena
	ctrls map[string]Controller
}

// NewEnv initialises the environment with a huge-page arena of poolBytes
// split into chunkSize chunks (the DLFS sample-cache geometry).
func NewEnv(e *sim.Engine, poolBytes int64, chunkSize int) (*Env, error) {
	arena, err := hugepage.NewArena(poolBytes, chunkSize)
	if err != nil {
		return nil, err
	}
	return &Env{eng: e, arena: arena, ctrls: make(map[string]Controller)}, nil
}

// Engine returns the simulation engine.
func (v *Env) Engine() *sim.Engine { return v.eng }

// Arena returns the huge-page pool.
func (v *Env) Arena() *hugepage.Arena { return v.arena }

// Controller is an attached NVMe controller, local or remote.
type Controller interface {
	// Name returns the transport address, e.g. "pcie:0000:05:00.0" or
	// "rdma:node3".
	Name() string
	// AllocQPair allocates an I/O queue pair of the given depth.
	AllocQPair(depth int) nvme.Queue
	// Spec returns the underlying device's service model.
	Spec() nvme.Spec
	// Remote reports whether the controller sits across the fabric.
	Remote() bool
}

// ErrDuplicate reports attaching two controllers under one name.
var ErrDuplicate = errors.New("spdk: controller already attached")

// ErrNotAttached reports a lookup of an unknown controller.
var ErrNotAttached = errors.New("spdk: controller not attached")

// AttachLocal attaches a PCIe-local device. The paper notes the device
// must first be unbound from the kernel; in the model that is implicit —
// a device is either driven here or by ext4sim, never both.
func (v *Env) AttachLocal(addr string, dev *nvme.Device) (Controller, error) {
	name := "pcie:" + addr
	if _, dup := v.ctrls[name]; dup {
		return nil, fmt.Errorf("%w: %s", ErrDuplicate, name)
	}
	c := &localCtrl{name: name, dev: dev}
	v.ctrls[name] = c
	return c, nil
}

// AttachRemote attaches an NVMe-oF target reachable from clientNode.
func (v *Env) AttachRemote(addr string, tgt *fabric.Target, clientNode int) (Controller, error) {
	name := "rdma:" + addr
	if _, dup := v.ctrls[name]; dup {
		return nil, fmt.Errorf("%w: %s", ErrDuplicate, name)
	}
	c := &remoteCtrl{name: name, tgt: tgt, clientNode: clientNode}
	v.ctrls[name] = c
	return c, nil
}

// Controller returns an attached controller by name.
func (v *Env) Controller(name string) (Controller, error) {
	c, ok := v.ctrls[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotAttached, name)
	}
	return c, nil
}

// Controllers returns all attached controllers (order unspecified).
func (v *Env) Controllers() []Controller {
	out := make([]Controller, 0, len(v.ctrls))
	for _, c := range v.ctrls {
		out = append(out, c)
	}
	return out
}

type localCtrl struct {
	name string
	dev  *nvme.Device
}

func (c *localCtrl) Name() string                    { return c.name }
func (c *localCtrl) AllocQPair(depth int) nvme.Queue { return c.dev.AllocQPair(depth) }
func (c *localCtrl) Spec() nvme.Spec                 { return c.dev.Spec() }
func (c *localCtrl) Remote() bool                    { return false }

type remoteCtrl struct {
	name       string
	tgt        *fabric.Target
	clientNode int
}

func (c *remoteCtrl) Name() string                    { return c.name }
func (c *remoteCtrl) AllocQPair(depth int) nvme.Queue { return c.tgt.Connect(c.clientNode, depth) }
func (c *remoteCtrl) Spec() nvme.Spec                 { return c.tgt.Device().Spec() }
func (c *remoteCtrl) Remote() bool                    { return true }

// PollGroup polls completions across many queue pairs round-robin — the
// mechanism behind DLFS's shared completion queue (§III-C2): one poller
// balances progress across all I/O queue pairs.
type PollGroup struct {
	queues []nvme.Queue
	next   int
	polls  int64
	hits   int64
}

// NewPollGroup returns an empty group.
func NewPollGroup() *PollGroup { return &PollGroup{} }

// Add registers a queue pair with the group.
func (g *PollGroup) Add(q nvme.Queue) { g.queues = append(g.queues, q) }

// Len reports the number of registered queues.
func (g *PollGroup) Len() int { return len(g.queues) }

// Poll sweeps every queue once, starting after the last sweep's origin so
// no queue is systematically favoured, and returns all completions found.
func (g *PollGroup) Poll(maxPerQueue int) []nvme.Completion {
	if len(g.queues) == 0 {
		return nil
	}
	var out []nvme.Completion
	n := len(g.queues)
	for i := 0; i < n; i++ {
		q := g.queues[(g.next+i)%n]
		out = append(out, q.Poll(maxPerQueue)...)
	}
	g.next = (g.next + 1) % n
	g.polls++
	if len(out) > 0 {
		g.hits++
	}
	return out
}

// Inflight sums uncompleted commands across all queues.
func (g *PollGroup) Inflight() int {
	total := 0
	for _, q := range g.queues {
		total += q.Inflight()
	}
	return total
}

// Stats reports total sweeps and sweeps that found completions, for
// measuring busy-poll efficiency.
func (g *PollGroup) Stats() (polls, hits int64) { return g.polls, g.hits }
