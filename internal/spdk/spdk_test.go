package spdk

import (
	"errors"
	"testing"

	"dlfs/internal/fabric"
	"dlfs/internal/nvme"
	"dlfs/internal/sim"
)

func newEnv(t *testing.T, e *sim.Engine) *Env {
	t.Helper()
	v, err := NewEnv(e, 16<<20, 256<<10)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestEnvSetup(t *testing.T) {
	e := sim.NewEngine()
	v := newEnv(t, e)
	if v.Engine() != e {
		t.Fatal("engine")
	}
	if v.Arena().ChunkSize() != 256<<10 {
		t.Fatal("arena chunk size")
	}
	if _, err := NewEnv(e, 1<<20, 3000); err == nil {
		t.Fatal("bad chunk size accepted")
	}
}

func TestAttachLocalAndLookup(t *testing.T) {
	e := sim.NewEngine()
	v := newEnv(t, e)
	dev := nvme.NewDevice(e, nvme.OptaneSpec())
	c, err := v.AttachLocal("0000:05:00.0", dev)
	if err != nil {
		t.Fatal(err)
	}
	if c.Remote() || c.Name() != "pcie:0000:05:00.0" {
		t.Fatalf("ctrl %q remote=%v", c.Name(), c.Remote())
	}
	if c.Spec().Name != "optane-480g" {
		t.Fatal("spec passthrough")
	}
	got, err := v.Controller("pcie:0000:05:00.0")
	if err != nil || got != c {
		t.Fatalf("lookup: %v", err)
	}
	if _, err := v.AttachLocal("0000:05:00.0", dev); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("duplicate: %v", err)
	}
	if _, err := v.Controller("pcie:nope"); !errors.Is(err, ErrNotAttached) {
		t.Fatalf("missing: %v", err)
	}
	if len(v.Controllers()) != 1 {
		t.Fatal("controllers list")
	}
}

func TestAttachRemote(t *testing.T) {
	e := sim.NewEngine()
	v := newEnv(t, e)
	net := fabric.New(e, 0)
	net.AddNode(0, fabric.FDRBandwidth)
	net.AddNode(1, fabric.FDRBandwidth)
	dev := nvme.NewDevice(e, nvme.EmulatedSpec())
	tgt := fabric.NewTarget(net, 1, dev, fabric.DefaultTargetSpec())
	c, err := v.AttachRemote("node1", tgt, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !c.Remote() {
		t.Fatal("remote flag")
	}
	q := c.AllocQPair(8)
	if q.Depth() != 8 {
		t.Fatal("depth")
	}
	// A read through the remote controller works end to end.
	e.Go("c", func(p *sim.Proc) {
		buf := make([]byte, 4096)
		if err := q.Submit(&nvme.Command{Op: nvme.OpRead, Buf: buf}); err != nil {
			t.Error(err)
		}
		for len(q.Poll(0)) == 0 {
			p.Sleep(500)
		}
	})
	e.RunAll()
	if tgt.Served() != 1 {
		t.Fatal("target not used")
	}
}

func TestLocalQPairIO(t *testing.T) {
	e := sim.NewEngine()
	v := newEnv(t, e)
	dev := nvme.NewDevice(e, nvme.OptaneSpec())
	c, _ := v.AttachLocal("a", dev)
	q := c.AllocQPair(16)
	e.Go("c", func(p *sim.Proc) {
		chunk, err := v.Arena().Alloc()
		if err != nil {
			t.Error(err)
			return
		}
		// I/O into huge-page memory, as SPDK mandates.
		if err := q.Submit(&nvme.Command{Op: nvme.OpRead, Offset: 0, Buf: chunk.Bytes()}); err != nil {
			t.Error(err)
		}
		for q.Inflight() > 0 {
			q.Poll(0)
			p.Sleep(500)
		}
		v.Arena().Free(chunk) //nolint:errcheck
	})
	e.RunAll()
}

func TestPollGroupBalancesQueues(t *testing.T) {
	e := sim.NewEngine()
	dev1 := nvme.NewDevice(e, nvme.OptaneSpec())
	dev2 := nvme.NewDevice(e, nvme.OptaneSpec())
	g := NewPollGroup()
	q1 := dev1.AllocQPair(8)
	q2 := dev2.AllocQPair(8)
	g.Add(q1)
	g.Add(q2)
	if g.Len() != 2 {
		t.Fatal("len")
	}
	e.Go("c", func(p *sim.Proc) {
		buf := make([]byte, 4096)
		for i := 0; i < 4; i++ {
			q1.Submit(&nvme.Command{Op: nvme.OpRead, Buf: buf, Ctx: "d1"}) //nolint:errcheck
			q2.Submit(&nvme.Command{Op: nvme.OpRead, Buf: buf, Ctx: "d2"}) //nolint:errcheck
		}
		seen := map[string]int{}
		for seen["d1"]+seen["d2"] < 8 {
			for _, cpl := range g.Poll(0) {
				seen[cpl.Cmd.Ctx.(string)]++
			}
			p.Sleep(500)
		}
		if seen["d1"] != 4 || seen["d2"] != 4 {
			t.Errorf("completions per device: %v", seen)
		}
	})
	e.RunAll()
	polls, hits := g.Stats()
	if polls == 0 || hits == 0 || hits > polls {
		t.Fatalf("poll stats %d/%d", hits, polls)
	}
}

func TestPollGroupEmpty(t *testing.T) {
	g := NewPollGroup()
	if out := g.Poll(0); out != nil {
		t.Fatal("empty group returned completions")
	}
	if g.Inflight() != 0 {
		t.Fatal("inflight on empty group")
	}
}
