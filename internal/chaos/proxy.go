package chaos

import (
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Proxy is a fault-injecting TCP man-in-the-middle between initiators
// and one real target. Clients connect to the proxy's address; each
// accepted connection is paired with an upstream dial to the target and
// piped through a fault-injecting Conn, so drops, delays, throttling and
// corruption hit the live NVMe-oF byte stream exactly as a misbehaving
// fabric would.
//
// Blackhole mode simulates a hung (not crashed) target: accepted and
// existing connections stay open but forwarded bytes are silently
// discarded in both directions, so in-flight commands hit their
// deadlines and new handshakes time out.
type Proxy struct {
	target string
	cfg    Config
	st     *counters

	ln        net.Listener
	mu        sync.Mutex
	conns     map[net.Conn]struct{} // both sides of every live pipe
	closed    bool
	wg        sync.WaitGroup
	connSeq   atomic.Int64
	blackhole atomic.Bool

	// Asymmetric partition: each direction is dropped independently.
	dropToTarget atomic.Bool // client → target bytes discarded
	dropToClient atomic.Bool // target → client bytes discarded
}

// NewProxy returns a proxy forwarding to target with the given faults.
func NewProxy(target string, cfg Config) *Proxy {
	return &Proxy{target: target, cfg: cfg, st: &counters{}, conns: make(map[net.Conn]struct{})}
}

// Listen starts accepting on addr (e.g. "127.0.0.1:0") and returns the
// bound address clients should dial.
func (p *Proxy) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	p.ln = ln
	p.wg.Add(1)
	go p.acceptLoop()
	return ln.Addr().String(), nil
}

// Addr returns the proxy's bound address ("" before Listen).
func (p *Proxy) Addr() string {
	if p.ln == nil {
		return ""
	}
	return p.ln.Addr().String()
}

// Stats reports the faults injected so far.
func (p *Proxy) Stats() Stats { return p.st.snapshot() }

// SetBlackhole toggles blackhole mode for current and future
// connections.
func (p *Proxy) SetBlackhole(v bool) { p.blackhole.Store(v) }

// SetPartition configures an asymmetric partition on current and future
// connections: with toTarget set, bytes from clients toward the target
// are silently discarded; with toClient set, bytes from the target
// toward clients are. One-way loss is the nastiest fabric failure for a
// consensus protocol — a node that can send heartbeats but not hear
// responses (or vice versa) — and is exactly what symmetric blackhole
// mode cannot express. SetPartition(true, true) is equivalent to
// blackhole; SetPartition(false, false) heals.
func (p *Proxy) SetPartition(toTarget, toClient bool) {
	p.dropToTarget.Store(toTarget)
	p.dropToClient.Store(toClient)
}

// KillActive severs every live proxied connection (both sides) and
// returns how many client connections were dropped. New connections are
// still accepted.
func (p *Proxy) KillActive() int {
	p.mu.Lock()
	conns := make([]net.Conn, 0, len(p.conns))
	for c := range p.conns {
		conns = append(conns, c)
	}
	p.mu.Unlock()
	for _, c := range conns {
		c.Close() //nolint:errcheck
	}
	if n := len(conns) / 2; n > 0 {
		p.st.kills.Add(int64(n))
		return n
	}
	return 0
}

// KillOne severs a single live proxied connection pair and reports
// whether one was killed. Closing one side is enough: the handler's
// teardown closes its peer. Used to exercise multi-queue-pair clients,
// where losing one of a target's connections must not lose data striped
// onto the survivors.
func (p *Proxy) KillOne() bool {
	p.mu.Lock()
	var victim net.Conn
	for c := range p.conns {
		victim = c
		break
	}
	p.mu.Unlock()
	if victim == nil {
		return false
	}
	victim.Close() //nolint:errcheck
	p.st.kills.Add(1)
	return true
}

// Close stops the listener and severs all connections.
func (p *Proxy) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	p.mu.Unlock()
	var err error
	if p.ln != nil {
		err = p.ln.Close()
	}
	p.KillActive()
	p.wg.Wait()
	return err
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		client, err := p.ln.Accept()
		if err != nil {
			return // listener closed
		}
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			client.Close() //nolint:errcheck
			return
		}
		p.mu.Unlock()
		p.wg.Add(1)
		go p.handle(client)
	}
}

// track registers c for KillActive/Close teardown; untrack reverses it.
func (p *Proxy) track(c net.Conn) {
	p.mu.Lock()
	p.conns[c] = struct{}{}
	p.mu.Unlock()
}

func (p *Proxy) untrack(c net.Conn) {
	p.mu.Lock()
	delete(p.conns, c)
	p.mu.Unlock()
}

func (p *Proxy) handle(client net.Conn) {
	defer p.wg.Done()
	up, err := net.DialTimeout("tcp", p.target, 5*time.Second)
	if err != nil {
		client.Close() //nolint:errcheck
		return
	}
	p.st.conns.Add(1)
	p.track(client)
	p.track(up)
	defer func() {
		p.untrack(client)
		p.untrack(up)
		client.Close() //nolint:errcheck
		up.Close()     //nolint:errcheck
	}()

	// The upstream side carries the fault schedule: faults on Write hit
	// request capsules, faults on Read hit completion capsules.
	wrapped := Wrap(up, p.cfg, p.connSeq.Add(1))
	wrapped.st = p.st

	var pwg sync.WaitGroup
	pwg.Add(2)
	go func() { defer pwg.Done(); p.pipe(wrapped, client, &p.dropToTarget) }()
	go func() { defer pwg.Done(); p.pipe(client, wrapped, &p.dropToClient) }()
	pwg.Wait()
}

// pipe copies src to dst segment by segment, discarding instead of
// forwarding while blackhole mode or this direction's partition is on.
func (p *Proxy) pipe(dst io.Writer, src io.Reader, drop *atomic.Bool) {
	buf := make([]byte, 16<<10)
	for {
		n, err := src.Read(buf)
		if n > 0 && !p.blackhole.Load() && !drop.Load() {
			if _, werr := dst.Write(buf[:n]); werr != nil {
				return
			}
		}
		if err != nil {
			return
		}
	}
}
