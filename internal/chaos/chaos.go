// Package chaos provides seeded, deterministic fault injection for the
// live NVMe-oF TCP path. It wraps net.Conn and net.Listener with
// configurable faults — injected delay, connection kills, bandwidth
// throttling, byte corruption, and mid-capsule disconnects — and offers
// a man-in-the-middle Proxy that sits between initiators and a real
// target so tests can prove every recovery path without touching the
// production transport code.
//
// All randomness derives from Config.Seed plus a per-connection
// sequence number, so a given seed and traffic pattern replays the same
// fault schedule.
package chaos

import (
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Config tunes the injected faults. The zero value forwards traffic
// untouched. Probabilities are evaluated once per forwarded segment
// (one Read call's worth of bytes).
type Config struct {
	Seed        int64
	DropProb    float64       // probability of killing the connection
	DelayProb   float64       // probability of inserting Delay
	Delay       time.Duration // how long a delay fault stalls the segment
	CorruptProb float64       // probability of flipping one byte in the segment
	// ThrottleBytesPerSec caps forwarded bandwidth (0 = unlimited).
	ThrottleBytesPerSec int64
	// MaxConnBytes kills a connection after it has carried this many
	// bytes (0 = never): the disconnect lands mid-capsule by design.
	MaxConnBytes int64
}

// Stats counts the faults a Proxy or Listener actually injected.
type Stats struct {
	Conns          int64 // connections opened
	Kills          int64 // connections killed by a fault
	Delays         int64 // delay faults fired
	Corruptions    int64 // corruption faults fired
	BytesForwarded int64
}

// counters is the shared mutable backing for Stats.
type counters struct {
	conns, kills, delays, corruptions, bytes atomic.Int64
}

func (c *counters) snapshot() Stats {
	return Stats{
		Conns:          c.conns.Load(),
		Kills:          c.kills.Load(),
		Delays:         c.delays.Load(),
		Corruptions:    c.corruptions.Load(),
		BytesForwarded: c.bytes.Load(),
	}
}

// Conn wraps a net.Conn with fault injection on both Read and Write.
// Faults are drawn from a per-connection seeded source, so two runs with
// the same seed and traffic see the same schedule.
type Conn struct {
	net.Conn
	cfg  Config
	st   *counters
	mu   sync.Mutex // guards rng (Read and Write may race)
	rng  *rand.Rand
	left *int64 // remaining MaxConnBytes budget, shared across directions

	killOnce sync.Once
	killed   atomic.Bool
}

// Wrap returns a fault-injecting view of c. seq distinguishes
// connections sharing a Config (each gets an independent deterministic
// schedule).
func Wrap(c net.Conn, cfg Config, seq int64) *Conn {
	left := cfg.MaxConnBytes
	return &Conn{
		Conn: c,
		cfg:  cfg,
		st:   &counters{},
		rng:  rand.New(rand.NewSource(cfg.Seed*0x9E3779B9 + seq)),
		left: &left,
	}
}

// Stats reports the faults this connection injected.
func (c *Conn) Stats() Stats { return c.st.snapshot() }

// Killed reports whether a fault terminated the connection.
func (c *Conn) Killed() bool { return c.killed.Load() }

func (c *Conn) kill() {
	c.killOnce.Do(func() {
		c.killed.Store(true)
		c.st.kills.Add(1)
		c.Conn.Close() //nolint:errcheck
	})
}

// decide draws this segment's fault actions under the rng lock.
func (c *Conn) decide(n int) (delay bool, drop bool, corrupt int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cfg.DelayProb > 0 && c.rng.Float64() < c.cfg.DelayProb {
		delay = true
	}
	if c.cfg.DropProb > 0 && c.rng.Float64() < c.cfg.DropProb {
		drop = true
	}
	corrupt = -1
	if c.cfg.CorruptProb > 0 && n > 0 && c.rng.Float64() < c.cfg.CorruptProb {
		corrupt = c.rng.Intn(n)
	}
	return delay, drop, corrupt
}

// apply runs the fault schedule for a segment of n bytes whose data
// lives in buf[:n] (buf may be nil when the data is not mutable).
// It reports whether the connection survives the segment.
func (c *Conn) apply(buf []byte, n int) bool {
	delay, drop, corrupt := c.decide(n)
	if delay {
		c.st.delays.Add(1)
		time.Sleep(c.cfg.Delay)
	}
	if drop {
		c.kill()
		return false
	}
	if corrupt >= 0 && buf != nil {
		buf[corrupt] ^= 0x80
		c.st.corruptions.Add(1)
	}
	if c.cfg.ThrottleBytesPerSec > 0 && n > 0 {
		time.Sleep(time.Duration(float64(n) / float64(c.cfg.ThrottleBytesPerSec) * float64(time.Second)))
	}
	if c.cfg.MaxConnBytes > 0 {
		if atomic.AddInt64(c.left, -int64(n)) < 0 {
			c.kill()
			return false
		}
	}
	c.st.bytes.Add(int64(n))
	return true
}

// Read reads from the underlying connection, then applies the fault
// schedule to the received segment.
func (c *Conn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	if n > 0 && !c.apply(p[:n], n) {
		return 0, net.ErrClosed
	}
	return n, err
}

// Write applies the fault schedule to the outgoing segment, then writes
// it. A corruption fault mutates the caller's buffer in place (the
// wrapped transport would have put those bytes on the wire anyway).
func (c *Conn) Write(p []byte) (int, error) {
	if !c.apply(p, len(p)) {
		return 0, net.ErrClosed
	}
	return c.Conn.Write(p)
}

// Listener wraps a net.Listener so every accepted connection carries the
// fault config, each with its own deterministic schedule.
type Listener struct {
	net.Listener
	cfg Config
	seq atomic.Int64
	st  *counters
}

// WrapListener returns a fault-injecting view of ln.
func WrapListener(ln net.Listener, cfg Config) *Listener {
	return &Listener{Listener: ln, cfg: cfg, st: &counters{}}
}

// Accept wraps the next connection with a per-connection schedule.
func (l *Listener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	wc := Wrap(c, l.cfg, l.seq.Add(1))
	wc.st = l.st
	l.st.conns.Add(1)
	return wc, nil
}

// Stats aggregates fault counts across accepted connections.
func (l *Listener) Stats() Stats { return l.st.snapshot() }
