package chaos

import (
	"bytes"
	"io"
	"net"
	"testing"
	"time"
)

// echoServer accepts connections and echoes everything back.
func echoServer(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close() //nolint:errcheck
				io.Copy(c, c)   //nolint:errcheck
			}(c)
		}
	}()
	t.Cleanup(func() { ln.Close() }) //nolint:errcheck
	return ln.Addr().String()
}

func dialProxy(t *testing.T, target string, cfg Config) (*Proxy, net.Conn) {
	t.Helper()
	p := NewProxy(target, cfg)
	addr, err := p.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() }) //nolint:errcheck
	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() }) //nolint:errcheck
	return p, c
}

func TestProxyForwardsCleanly(t *testing.T) {
	_, c := dialProxy(t, echoServer(t), Config{})
	msg := []byte("through the healthy fabric")
	if _, err := c.Write(msg); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(c, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("proxied echo diverged: %q", got)
	}
}

func TestDropKillsConnection(t *testing.T) {
	p, c := dialProxy(t, echoServer(t), Config{Seed: 1, DropProb: 1})
	c.Write([]byte("doomed"))                          //nolint:errcheck
	c.SetReadDeadline(time.Now().Add(2 * time.Second)) //nolint:errcheck
	if _, err := io.ReadFull(c, make([]byte, 6)); err == nil {
		t.Fatal("read succeeded through DropProb=1 proxy")
	}
	if p.Stats().Kills < 1 {
		t.Fatalf("kills = %d", p.Stats().Kills)
	}
}

func TestDelayStallsSegments(t *testing.T) {
	_, c := dialProxy(t, echoServer(t), Config{Seed: 2, DelayProb: 1, Delay: 60 * time.Millisecond})
	start := time.Now()
	c.Write([]byte("slow")) //nolint:errcheck
	if _, err := io.ReadFull(c, make([]byte, 4)); err != nil {
		t.Fatal(err)
	}
	// Request and reply each cross the fault layer at least once.
	if elapsed := time.Since(start); elapsed < 60*time.Millisecond {
		t.Fatalf("round trip took %v, want >= one 60ms delay", elapsed)
	}
}

func TestCorruptionFlipsBytes(t *testing.T) {
	_, c := dialProxy(t, echoServer(t), Config{Seed: 3, CorruptProb: 1})
	msg := bytes.Repeat([]byte{0x00}, 32)
	if _, err := c.Write(msg); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 32)
	if _, err := io.ReadFull(c, got); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(got, msg) {
		t.Fatal("CorruptProb=1 stream arrived intact")
	}
}

func TestThrottleLimitsBandwidth(t *testing.T) {
	// 64 KiB at 256 KiB/s must take at least ~250ms one way.
	_, c := dialProxy(t, echoServer(t), Config{Seed: 4, ThrottleBytesPerSec: 256 << 10})
	payload := make([]byte, 64<<10)
	start := time.Now()
	go c.Write(payload) //nolint:errcheck
	if _, err := io.ReadFull(c, make([]byte, len(payload))); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 200*time.Millisecond {
		t.Fatalf("64KiB crossed a 256KiB/s throttle in %v", elapsed)
	}
}

func TestMaxConnBytesDisconnectsMidStream(t *testing.T) {
	_, c := dialProxy(t, echoServer(t), Config{Seed: 5, MaxConnBytes: 4 << 10})
	payload := make([]byte, 64<<10)
	c.Write(payload)                                   //nolint:errcheck
	c.SetReadDeadline(time.Now().Add(2 * time.Second)) //nolint:errcheck
	n, err := io.ReadFull(c, make([]byte, len(payload)))
	if err == nil || n >= len(payload) {
		t.Fatalf("read %d/%d bytes through a 4KiB-budget connection", n, len(payload))
	}
}

func TestBlackholeSwallowsTraffic(t *testing.T) {
	p, c := dialProxy(t, echoServer(t), Config{Seed: 6})
	// Healthy first.
	c.Write([]byte("ok")) //nolint:errcheck
	if _, err := io.ReadFull(c, make([]byte, 2)); err != nil {
		t.Fatal(err)
	}
	p.SetBlackhole(true)
	c.Write([]byte("void"))                                   //nolint:errcheck
	c.SetReadDeadline(time.Now().Add(100 * time.Millisecond)) //nolint:errcheck
	if _, err := io.ReadFull(c, make([]byte, 4)); err == nil {
		t.Fatal("read returned data through a blackholed proxy")
	}
	// Recovery: new traffic flows again once the blackhole lifts. The
	// "void" bytes were dropped forever, so use a fresh connection.
	p.SetBlackhole(false)
	c2, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()                                    //nolint:errcheck
	c2.Write([]byte("back"))                            //nolint:errcheck
	c2.SetReadDeadline(time.Now().Add(2 * time.Second)) //nolint:errcheck
	if _, err := io.ReadFull(c2, make([]byte, 4)); err != nil {
		t.Fatalf("traffic did not recover after blackhole lifted: %v", err)
	}
}

func TestAsymmetricPartitionDropsOneDirection(t *testing.T) {
	p, c := dialProxy(t, echoServer(t), Config{Seed: 8})
	// Healthy first.
	c.Write([]byte("ok")) //nolint:errcheck
	if _, err := io.ReadFull(c, make([]byte, 2)); err != nil {
		t.Fatal(err)
	}

	// Drop only the return path: the echo server hears us, but its
	// replies vanish — the classic "can send, cannot hear" failure.
	p.SetPartition(false, true)
	c.Write([]byte("deaf"))                                   //nolint:errcheck
	c.SetReadDeadline(time.Now().Add(100 * time.Millisecond)) //nolint:errcheck
	if _, err := io.ReadFull(c, make([]byte, 4)); err == nil {
		t.Fatal("read returned data across a dropped return path")
	}

	// Flip to dropping only the forward path on a fresh connection: our
	// bytes vanish before the server, so nothing comes back either.
	p.SetPartition(true, false)
	c2, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()                                           //nolint:errcheck
	c2.Write([]byte("mute"))                                   //nolint:errcheck
	c2.SetReadDeadline(time.Now().Add(100 * time.Millisecond)) //nolint:errcheck
	if _, err := io.ReadFull(c2, make([]byte, 4)); err == nil {
		t.Fatal("echo came back across a dropped forward path")
	}

	// Heal: a fresh connection round-trips again.
	p.SetPartition(false, false)
	c3, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c3.Close()                                    //nolint:errcheck
	c3.Write([]byte("back"))                            //nolint:errcheck
	c3.SetReadDeadline(time.Now().Add(2 * time.Second)) //nolint:errcheck
	if _, err := io.ReadFull(c3, make([]byte, 4)); err != nil {
		t.Fatalf("traffic did not recover after partition healed: %v", err)
	}
}

func TestDeterministicSchedule(t *testing.T) {
	// Two same-seed wrapped connections over in-memory pipes must make
	// identical fault decisions for the same traffic pattern.
	run := func(seed int64) Stats {
		a, b := net.Pipe()
		defer a.Close() //nolint:errcheck
		defer b.Close() //nolint:errcheck
		wc := Wrap(a, Config{Seed: seed, CorruptProb: 0.5, DelayProb: 0.3, Delay: time.Microsecond}, 1)
		done := make(chan struct{})
		go func() {
			defer close(done)
			buf := make([]byte, 256)
			for i := 0; i < 20; i++ {
				if _, err := io.ReadFull(b, buf); err != nil {
					return
				}
			}
		}()
		payload := make([]byte, 256)
		for i := 0; i < 20; i++ {
			if _, err := wc.Write(payload); err != nil {
				break
			}
		}
		<-done
		return wc.Stats()
	}
	s1, s2 := run(99), run(99)
	if s1 != s2 {
		t.Fatalf("same seed diverged: %+v vs %+v", s1, s2)
	}
	// Different seeds must eventually diverge (any single pair could
	// collide on aggregate counts, so scan a few).
	diverged := false
	for seed := int64(100); seed < 110; seed++ {
		if run(seed) != s1 {
			diverged = true
			break
		}
	}
	if !diverged {
		t.Fatalf("ten different seeds all produced schedule %+v", s1)
	}
}

func TestKillActiveSeversLiveConns(t *testing.T) {
	p, c := dialProxy(t, echoServer(t), Config{Seed: 7})
	c.Write([]byte("hi")) //nolint:errcheck
	if _, err := io.ReadFull(c, make([]byte, 2)); err != nil {
		t.Fatal(err)
	}
	if n := p.KillActive(); n != 1 {
		t.Fatalf("killed %d connections, want 1", n)
	}
	c.SetReadDeadline(time.Now().Add(time.Second)) //nolint:errcheck
	if _, err := c.Read(make([]byte, 1)); err == nil {
		t.Fatal("connection survived KillActive")
	}
}
