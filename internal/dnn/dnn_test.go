package dnn

import (
	"math"
	"testing"
	"testing/quick"
)

func split(d *Data, frac float64) (*Data, *Data) {
	cut := int(float64(d.Len()) * frac)
	train := &Data{X: d.X[:cut], Y: d.Y[:cut], Classes: d.Classes}
	val := &Data{X: d.X[cut:], Y: d.Y[cut:], Classes: d.Classes}
	return train, val
}

func TestSyntheticDeterministicAndLabeled(t *testing.T) {
	a := SyntheticClusters(1, 200, 8, 5, 0.5)
	b := SyntheticClusters(1, 200, 8, 5, 0.5)
	if a.Len() != 200 || a.Classes != 5 {
		t.Fatal("shape")
	}
	for i := range a.X {
		if a.Y[i] != b.Y[i] {
			t.Fatal("labels differ across identical seeds")
		}
		for j := range a.X[i] {
			if a.X[i][j] != b.X[i][j] {
				t.Fatal("features differ across identical seeds")
			}
		}
	}
	for _, y := range a.Y {
		if y < 0 || y >= 5 {
			t.Fatalf("label %d out of range", y)
		}
	}
}

func TestForwardProbsSumToOne(t *testing.T) {
	n := NewNet(2, 6, 8, 4)
	x := []float64{1, -2, 0.5, 3, -1, 2}
	_, probs := n.forward(x)
	var sum float64
	for _, p := range probs {
		if p < 0 || p > 1 {
			t.Fatalf("prob %v out of range", p)
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("probs sum to %v", sum)
	}
}

func TestTrainingLearnsSeparableTask(t *testing.T) {
	d := SyntheticClusters(7, 1200, 12, 6, 0.4)
	train, val := split(d, 0.8)
	accs := Train(train, val, FullRand{Seed: 3}, TrainConfig{Epochs: 30, BatchSize: 32, LR: 0.05, Hidden: 24, Seed: 1})
	final := accs[len(accs)-1]
	if final < 0.9 {
		t.Fatalf("final accuracy %.3f, want > 0.9 on a separable task", final)
	}
	// Training must improve over the start.
	if final <= accs[0] {
		t.Fatalf("no learning: first %.3f last %.3f", accs[0], final)
	}
}

func TestLossDecreases(t *testing.T) {
	d := SyntheticClusters(9, 600, 10, 4, 0.4)
	train, val := split(d, 0.8)
	net := NewNet(1, 10, 16, 4)
	before := net.Loss(val)
	order := FullRand{Seed: 2}.Order(0, train.Len())
	for ep := 0; ep < 10; ep++ {
		for lo := 0; lo+32 <= len(order); lo += 32 {
			net.TrainBatch(train, order[lo:lo+32], 0.05)
		}
	}
	after := net.Loss(val)
	if after >= before {
		t.Fatalf("loss did not decrease: %v -> %v", before, after)
	}
}

func TestShufflersAreValidPermutations(t *testing.T) {
	sizes := make([]int, 500)
	for i := range sizes {
		sizes[i] = 100 + i%900
	}
	dl, err := NewDLFSOrder(4, sizes, 4, 4096)
	if err != nil {
		t.Fatal(err)
	}
	shufflers := []Shuffler{FullRand{Seed: 1}, FixedOrder{}, dl}
	for _, sh := range shufflers {
		for ep := 0; ep < 3; ep++ {
			ord := sh.Order(ep, 500)
			seen := make([]bool, 500)
			for _, i := range ord {
				if i < 0 || i >= 500 || seen[i] {
					t.Fatalf("%s epoch %d: invalid permutation", sh.Name(), ep)
				}
				seen[i] = true
			}
		}
	}
	if dl.Name() != "DLFS" || (FullRand{}).Name() != "Full_Rand" || (FixedOrder{}).Name() != "Fixed" {
		t.Fatal("names")
	}
}

func TestDLFSOrderVariesAcrossEpochs(t *testing.T) {
	sizes := make([]int, 300)
	for i := range sizes {
		sizes[i] = 256
	}
	dl, err := NewDLFSOrder(1, sizes, 2, 2048)
	if err != nil {
		t.Fatal(err)
	}
	o1 := dl.Order(0, 300)
	o2 := dl.Order(1, 300)
	same := 0
	for i := range o1 {
		if o1[i] == o2[i] {
			same++
		}
	}
	if same > 100 {
		t.Fatalf("epochs 0 and 1 share %d/300 positions: order not re-randomised", same)
	}
}

// The Fig 13 claim, as a test: DLFS-determined order matches full
// randomisation within a small accuracy gap, while no shuffling at all is
// measurably worse or at best equal (it is the control).
func TestDLFSOrderMatchesFullRandAccuracy(t *testing.T) {
	d := SyntheticClusters(11, 1500, 16, 8, 0.6)
	train, val := split(d, 0.8)
	sizes := make([]int, train.Len())
	for i := range sizes {
		sizes[i] = 500 + (i*37)%2000
	}
	dl, err := NewDLFSOrder(5, sizes, 4, 8192)
	if err != nil {
		t.Fatal(err)
	}
	cfg := TrainConfig{Epochs: 40, BatchSize: 32, LR: 0.05, Hidden: 24, Seed: 2}
	full := Train(train, val, FullRand{Seed: 9}, cfg)
	dlfs := Train(train, val, dl, cfg)
	fFinal := mean(full[len(full)-5:])
	dFinal := mean(dlfs[len(dlfs)-5:])
	if math.Abs(fFinal-dFinal) > 0.05 {
		t.Fatalf("accuracy gap %.3f vs %.3f exceeds 5%%", fFinal, dFinal)
	}
	if dFinal < 0.85 {
		t.Fatalf("DLFS-order training failed to converge: %.3f", dFinal)
	}
}

func mean(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x
	}
	return s / float64(len(v))
}

// Property: TrainBatch keeps weights finite for arbitrary small batches.
func TestTrainBatchStaysFiniteProperty(t *testing.T) {
	d := SyntheticClusters(3, 100, 6, 3, 0.5)
	f := func(picks []uint8) bool {
		net := NewNet(4, 6, 8, 3)
		batch := make([]int, 0, len(picks))
		for _, p := range picks {
			batch = append(batch, int(p)%d.Len())
		}
		net.TrainBatch(d, batch, 0.1)
		for _, row := range net.w1 {
			for _, w := range row {
				if math.IsNaN(w) || math.IsInf(w, 0) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestEdgeCases(t *testing.T) {
	empty := &Data{Classes: 2}
	if got := Train(empty, empty, FullRand{}, DefaultTrainConfig()); got != nil {
		t.Fatal("training on empty data should return nil")
	}
	n := NewNet(1, 3, 4, 2)
	if n.Accuracy(empty) != 0 || n.Loss(empty) != 0 {
		t.Fatal("empty eval")
	}
	n.TrainBatch(empty, nil, 0.1) // must not panic
	if _, err := NewDLFSOrder(1, []int{0}, 1, 1024); err == nil {
		t.Fatal("zero-size sample accepted")
	}
}
