package dnn

import (
	"testing"
	"testing/quick"
)

func TestBufferShuffleIsPermutation(t *testing.T) {
	f := func(nRaw uint16, bufRaw uint8, seed int64) bool {
		n := int(nRaw % 3000)
		buf := int(bufRaw) + 1
		ord := BufferShuffle{Seed: seed, Buffer: buf}.Order(0, n)
		if len(ord) != n {
			return false
		}
		seen := make([]bool, n)
		for _, i := range ord {
			if i < 0 || i >= n || seen[i] {
				return false
			}
			seen[i] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestBufferOneIsSequential(t *testing.T) {
	ord := BufferShuffle{Seed: 1, Buffer: 1}.Order(0, 100)
	for i, v := range ord {
		if v != i {
			t.Fatalf("buffer=1 order not sequential at %d", i)
		}
	}
}

func TestDisplacementBoundedByBuffer(t *testing.T) {
	// A small buffer cannot pull samples forward more than ~buffer slots:
	// the emitted sample at position p always comes from stream positions
	// <= p + buffer.
	const n, buf = 5000, 64
	ord := BufferShuffle{Seed: 2, Buffer: buf}.Order(0, n)
	for pos, idx := range ord {
		if idx > pos+buf {
			t.Fatalf("position %d emitted stream index %d (> pos+buffer)", pos, idx)
		}
	}
	small := Displacement(ord)
	full := Displacement(FullRand{Seed: 2}.Order(0, n))
	if small*10 > full {
		t.Fatalf("buffer shuffle displacement %.0f not ≪ full shuffle %.0f", small, full)
	}
}

func TestDisplacementFullBufferMatchesFullShuffle(t *testing.T) {
	const n = 4000
	big := Displacement(BufferShuffle{Seed: 3, Buffer: n}.Order(0, n))
	full := Displacement(FullRand{Seed: 3}.Order(0, n))
	// Both should be near the n/3 expectation for a uniform permutation.
	lo, hi := float64(n)/3*0.8, float64(n)/3*1.2
	if big < lo || big > hi || full < lo || full > hi {
		t.Fatalf("displacements big=%.0f full=%.0f, want ≈%d", big, full, n/3)
	}
}

// The paper's §II-B claim as a test: with class-clustered data (the
// pathological but common case for batched formats), a small shuffle
// buffer trains measurably worse than full shuffling, while DLFS's
// chunk-randomised order keeps up with full shuffling.
func TestSmallShuffleBufferHurtsAccuracy(t *testing.T) {
	d := SyntheticClusters(41, 2000, 8, 10, 1.0)
	// Sort training data by class: TFRecord files are typically written
	// per class or per shard, so a sequential read is class-ordered.
	cut := 1600
	train := &Data{Classes: d.Classes}
	for c := 0; c < d.Classes; c++ {
		for i := 0; i < cut; i++ {
			if d.Y[i] == c {
				train.X = append(train.X, d.X[i])
				train.Y = append(train.Y, d.Y[i])
			}
		}
	}
	val := &Data{X: d.X[cut:], Y: d.Y[cut:], Classes: d.Classes}
	// High LR + few epochs: the regime where class-ordered batches cause
	// catastrophic forgetting before the learner can average it out.
	cfg := TrainConfig{Epochs: 10, BatchSize: 32, LR: 0.05, Hidden: 24, Seed: 6}

	full := Train(train, val, FullRand{Seed: 7}, cfg)
	tiny := Train(train, val, BufferShuffle{Seed: 7, Buffer: 32}, cfg)
	fullAcc := mean(full[len(full)-3:])
	tinyAcc := mean(tiny[len(tiny)-3:])
	if fullAcc-tinyAcc < 0.02 {
		t.Fatalf("32-sample shuffle buffer (%.3f) not measurably worse than full shuffle (%.3f) on class-ordered data", tinyAcc, fullAcc)
	}
}

func TestNameAndDisplacementEmpty(t *testing.T) {
	if (BufferShuffle{}).Name() != "TF-shuffle-buffer" {
		t.Fatal("name")
	}
	if Displacement(nil) != 0 {
		t.Fatal("empty displacement")
	}
}
