package dnn

import (
	"fmt"

	"dlfs/internal/plan"
)

// DLFSOrder is DLFS-driven randomisation: every epoch's order is the
// chunk-level emission order the DLFS copy threads produce (§III-D2) —
// random interleaving across data chunks, sequential within a chunk. It
// is exactly the order the core file system delivers, derived from the
// same planner.
type DLFSOrder struct {
	Plan *plan.ChunkPlan
	Seed int64
}

// NewDLFSOrder builds the chunk plan for a dataset whose samples have the
// given sizes, laid out across nodes as dlfs_mount would, and returns the
// shuffler.
func NewDLFSOrder(seed int64, sizes []int, nodes int, chunkSize int64) (DLFSOrder, error) {
	if nodes <= 0 {
		nodes = 1
	}
	layout := plan.SequentialLayout(sizes, func(i int) int { return i % nodes }, nodes, chunkSize)
	cp, err := plan.BuildChunkPlan(layout)
	if err != nil {
		return DLFSOrder{}, err
	}
	if cp.NumSamples() != len(sizes) {
		return DLFSOrder{}, fmt.Errorf("dnn: chunk plan covers %d of %d samples", cp.NumSamples(), len(sizes))
	}
	return DLFSOrder{Plan: cp, Seed: seed}, nil
}

// Order implements Shuffler.
func (d DLFSOrder) Order(epoch, n int) []int {
	ord := d.Plan.EmissionOrder(d.Seed + int64(epoch)*7_368_787)
	if len(ord) != n {
		panic(fmt.Sprintf("dnn: DLFS order covers %d of %d samples", len(ord), n))
	}
	return ord
}

// Name implements Shuffler.
func (DLFSOrder) Name() string { return "DLFS" }
