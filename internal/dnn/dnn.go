// Package dnn implements a small feed-forward neural network trained with
// mini-batch SGD, used to reproduce the paper's training-accuracy
// experiment (Fig 13): does letting DLFS determine the sample order — the
// chunk-randomised order of §III-D2 — change the accuracy trajectory
// compared to application-driven full randomisation?
//
// The paper trains AlexNet on ImageNet/CIFAR10; that is a GPU-cluster
// workload. The claim under test, though, is purely about the *order* of
// SGD samples, so a real learner on a synthetic classification task
// exercises it faithfully: both runs see exactly the same model, data and
// hyperparameters and differ only in the per-epoch sample order.
package dnn

import (
	"fmt"
	"math"
	"math/rand"
)

// Data is a labelled dataset for the learner.
type Data struct {
	X       [][]float64
	Y       []int
	Classes int
}

// Len returns the number of examples.
func (d *Data) Len() int { return len(d.X) }

// SyntheticClusters generates a k-class Gaussian-cluster classification
// problem in dim dimensions: class c's examples are drawn around a random
// center with unit-ish noise. Deterministic per seed.
func SyntheticClusters(seed int64, n, dim, k int, noise float64) *Data {
	rng := rand.New(rand.NewSource(seed))
	centers := make([][]float64, k)
	for c := range centers {
		centers[c] = make([]float64, dim)
		for j := range centers[c] {
			centers[c][j] = rng.NormFloat64() * 2
		}
	}
	d := &Data{Classes: k}
	for i := 0; i < n; i++ {
		c := rng.Intn(k)
		x := make([]float64, dim)
		for j := range x {
			x[j] = centers[c][j] + rng.NormFloat64()*noise
		}
		d.X = append(d.X, x)
		d.Y = append(d.Y, c)
	}
	return d
}

// Net is a two-layer perceptron: in → hidden (ReLU) → classes (softmax).
type Net struct {
	in, hidden, out int
	w1              [][]float64 // hidden × in
	b1              []float64
	w2              [][]float64 // out × hidden
	b2              []float64
}

// NewNet initialises a network with seeded Xavier-style weights.
func NewNet(seed int64, in, hidden, out int) *Net {
	rng := rand.New(rand.NewSource(seed))
	n := &Net{in: in, hidden: hidden, out: out}
	scale1 := math.Sqrt(2.0 / float64(in))
	scale2 := math.Sqrt(2.0 / float64(hidden))
	n.w1 = randMat(rng, hidden, in, scale1)
	n.b1 = make([]float64, hidden)
	n.w2 = randMat(rng, out, hidden, scale2)
	n.b2 = make([]float64, out)
	return n
}

func randMat(rng *rand.Rand, rows, cols int, scale float64) [][]float64 {
	m := make([][]float64, rows)
	for i := range m {
		m[i] = make([]float64, cols)
		for j := range m[i] {
			m[i][j] = rng.NormFloat64() * scale
		}
	}
	return m
}

// forward computes hidden activations and output probabilities.
func (n *Net) forward(x []float64) (h, probs []float64) {
	h = make([]float64, n.hidden)
	for i := range h {
		s := n.b1[i]
		for j, xj := range x {
			s += n.w1[i][j] * xj
		}
		if s > 0 {
			h[i] = s
		}
	}
	logits := make([]float64, n.out)
	maxL := math.Inf(-1)
	for i := range logits {
		s := n.b2[i]
		for j, hj := range h {
			s += n.w2[i][j] * hj
		}
		logits[i] = s
		if s > maxL {
			maxL = s
		}
	}
	probs = make([]float64, n.out)
	var sum float64
	for i, l := range logits {
		probs[i] = math.Exp(l - maxL)
		sum += probs[i]
	}
	for i := range probs {
		probs[i] /= sum
	}
	return h, probs
}

// Predict returns the argmax class for x.
func (n *Net) Predict(x []float64) int {
	_, probs := n.forward(x)
	best := 0
	for i, p := range probs {
		if p > probs[best] {
			best = i
		}
	}
	return best
}

// Accuracy evaluates classification accuracy on d.
func (n *Net) Accuracy(d *Data) float64 {
	if d.Len() == 0 {
		return 0
	}
	correct := 0
	for i := range d.X {
		if n.Predict(d.X[i]) == d.Y[i] {
			correct++
		}
	}
	return float64(correct) / float64(d.Len())
}

// Loss evaluates mean cross-entropy on d.
func (n *Net) Loss(d *Data) float64 {
	if d.Len() == 0 {
		return 0
	}
	var total float64
	for i := range d.X {
		_, probs := n.forward(d.X[i])
		p := probs[d.Y[i]]
		if p < 1e-12 {
			p = 1e-12
		}
		total += -math.Log(p)
	}
	return total / float64(d.Len())
}

// TrainBatch performs one SGD step on the given examples of d with
// learning rate lr (gradients averaged across the batch).
func (n *Net) TrainBatch(d *Data, batch []int, lr float64) {
	if len(batch) == 0 {
		return
	}
	gw1 := zeros(n.hidden, n.in)
	gb1 := make([]float64, n.hidden)
	gw2 := zeros(n.out, n.hidden)
	gb2 := make([]float64, n.out)
	for _, idx := range batch {
		x := d.X[idx]
		h, probs := n.forward(x)
		// dL/dlogit = p - onehot
		dlogit := make([]float64, n.out)
		copy(dlogit, probs)
		dlogit[d.Y[idx]] -= 1
		for i := 0; i < n.out; i++ {
			gb2[i] += dlogit[i]
			for j := 0; j < n.hidden; j++ {
				gw2[i][j] += dlogit[i] * h[j]
			}
		}
		// Backprop into hidden (ReLU mask).
		for j := 0; j < n.hidden; j++ {
			if h[j] <= 0 {
				continue
			}
			var dh float64
			for i := 0; i < n.out; i++ {
				dh += dlogit[i] * n.w2[i][j]
			}
			gb1[j] += dh
			for k2 := 0; k2 < n.in; k2++ {
				gw1[j][k2] += dh * x[k2]
			}
		}
	}
	scale := lr / float64(len(batch))
	for i := range n.w1 {
		n.b1[i] -= scale * gb1[i]
		for j := range n.w1[i] {
			n.w1[i][j] -= scale * gw1[i][j]
		}
	}
	for i := range n.w2 {
		n.b2[i] -= scale * gb2[i]
		for j := range n.w2[i] {
			n.w2[i][j] -= scale * gw2[i][j]
		}
	}
}

func zeros(rows, cols int) [][]float64 {
	m := make([][]float64, rows)
	for i := range m {
		m[i] = make([]float64, cols)
	}
	return m
}

// Shuffler produces the per-epoch sample order — the quantity Fig 13
// varies between application-driven and DLFS-driven randomisation.
type Shuffler interface {
	Order(epoch int, n int) []int
	Name() string
}

// FullRand is application-driven full randomisation: an independent
// uniform permutation every epoch.
type FullRand struct{ Seed int64 }

// Order implements Shuffler.
func (f FullRand) Order(epoch, n int) []int {
	return rand.New(rand.NewSource(f.Seed + int64(epoch)*1_000_003)).Perm(n)
}

// Name implements Shuffler.
func (FullRand) Name() string { return "Full_Rand" }

// FixedOrder replays the identity order every epoch: the degenerate
// no-shuffling case, included as the ablation that *should* hurt.
type FixedOrder struct{}

// Order implements Shuffler.
func (FixedOrder) Order(_, n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// Name implements Shuffler.
func (FixedOrder) Name() string { return "Fixed" }

// TrainConfig parameterises Train.
type TrainConfig struct {
	Epochs    int
	BatchSize int
	LR        float64
	Hidden    int
	Seed      int64 // network init seed (identical across compared runs)
}

// DefaultTrainConfig returns a configuration that converges on the
// synthetic task in a few dozen epochs.
func DefaultTrainConfig() TrainConfig {
	return TrainConfig{Epochs: 50, BatchSize: 32, LR: 0.05, Hidden: 32, Seed: 1}
}

// Train runs SGD on train, evaluating on val after every epoch, with the
// sample order of each epoch supplied by sh. It returns per-epoch
// validation accuracies.
func Train(train, val *Data, sh Shuffler, cfg TrainConfig) []float64 {
	if train.Len() == 0 {
		return nil
	}
	net := NewNet(cfg.Seed, len(train.X[0]), cfg.Hidden, train.Classes)
	accs := make([]float64, 0, cfg.Epochs)
	for ep := 0; ep < cfg.Epochs; ep++ {
		order := sh.Order(ep, train.Len())
		if len(order) != train.Len() {
			panic(fmt.Sprintf("dnn: shuffler %s returned %d of %d indices", sh.Name(), len(order), train.Len()))
		}
		for lo := 0; lo < len(order); lo += cfg.BatchSize {
			hi := lo + cfg.BatchSize
			if hi > len(order) {
				hi = len(order)
			}
			net.TrainBatch(train, order[lo:hi], cfg.LR)
		}
		accs = append(accs, net.Accuracy(val))
	}
	return accs
}
