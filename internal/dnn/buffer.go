package dnn

import "math/rand"

// BufferShuffle reproduces TensorFlow's bounded shuffle buffer over a
// sequentially read TFRecord stream — the scheme the paper's motivation
// (§II-B) criticises: "if the size of the shuffle buffer is not large
// enough, the learner only obtains partially shuffled samples, which
// reduces the training accuracy."
//
// Semantics follow tf.data.Dataset.shuffle(buffer_size): the buffer is
// filled from the sequential stream; each emission picks a uniformly
// random element of the buffer and refills from the stream. With
// Buffer >= n it degenerates to a full shuffle; with Buffer == 1 it is no
// shuffle at all.
type BufferShuffle struct {
	Seed   int64
	Buffer int
}

// Order implements Shuffler.
func (b BufferShuffle) Order(epoch, n int) []int {
	size := b.Buffer
	if size < 1 {
		size = 1
	}
	rng := rand.New(rand.NewSource(b.Seed + int64(epoch)*2_654_435_761))
	buf := make([]int, 0, size)
	next := 0
	out := make([]int, 0, n)
	for next < n && len(buf) < size {
		buf = append(buf, next)
		next++
	}
	for len(buf) > 0 {
		k := rng.Intn(len(buf))
		out = append(out, buf[k])
		if next < n {
			buf[k] = next
			next++
		} else {
			buf[k] = buf[len(buf)-1]
			buf = buf[:len(buf)-1]
		}
	}
	return out
}

// Name implements Shuffler.
func (BufferShuffle) Name() string { return "TF-shuffle-buffer" }

// Displacement measures how far, on average, each emitted position is
// from the sample's position in the sequential stream — a direct measure
// of shuffling quality. A full shuffle of n samples averages ≈ n/3; a
// buffer of size k cannot displace a sample forward by more than ~k.
func Displacement(order []int) float64 {
	if len(order) == 0 {
		return 0
	}
	var total float64
	for pos, idx := range order {
		d := pos - idx
		if d < 0 {
			d = -d
		}
		total += float64(d)
	}
	return total / float64(len(order))
}
