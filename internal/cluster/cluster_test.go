package cluster

import (
	"fmt"
	"testing"

	"dlfs/internal/nvme"
	"dlfs/internal/sim"
)

func TestJobConstruction(t *testing.T) {
	e := sim.NewEngine()
	j := NewJob(e, 4, DefaultNodeSpec())
	if j.N() != 4 || len(j.Nodes()) != 4 {
		t.Fatal("node count")
	}
	for i, n := range j.Nodes() {
		if n.ID != i {
			t.Fatalf("node %d has ID %d", i, n.ID)
		}
		if n.Device == nil || n.Target == nil {
			t.Fatalf("node %d missing device/target", i)
		}
		if n.Target.Node() != i {
			t.Fatalf("target at wrong node")
		}
		if n.Job() != j {
			t.Fatal("job backref")
		}
	}
	if j.Engine() != e || j.Network() == nil {
		t.Fatal("accessors")
	}
}

func TestDisklessNodes(t *testing.T) {
	e := sim.NewEngine()
	j := NewJob(e, 2, NodeSpec{Cores: 4, NICBandwidth: 1 << 30})
	if j.Node(0).Device != nil || j.Node(0).Target != nil {
		t.Fatal("diskless node has a device")
	}
}

func TestZeroNodesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewJob(sim.NewEngine(), 0, DefaultNodeSpec())
}

func TestComputeOccupiesCore(t *testing.T) {
	e := sim.NewEngine()
	j := NewJob(e, 1, NodeSpec{Cores: 1, NICBandwidth: 1 << 30})
	n := j.Node(0)
	var t1, t2 sim.Time
	e.Go("a", func(p *sim.Proc) { n.Compute(p, 1000); t1 = p.Now() })
	e.Go("b", func(p *sim.Proc) { n.Compute(p, 1000); t2 = p.Now() })
	e.RunAll()
	if t1 != 1000 || t2 != 2000 {
		t.Fatalf("single core did not serialize: %v %v", t1, t2)
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	e := sim.NewEngine()
	j := NewJob(e, 4, DefaultNodeSpec())
	var release []sim.Time
	for i := 0; i < 4; i++ {
		i := i
		e.Go(fmt.Sprintf("n%d", i), func(p *sim.Proc) {
			p.Sleep(sim.Duration(i * 1000)) // staggered arrival
			j.Barrier(p, "b")
			release = append(release, p.Now())
		})
	}
	e.RunAll()
	if len(release) != 4 {
		t.Fatalf("released %d", len(release))
	}
	for _, r := range release {
		if r < 3000 {
			t.Fatalf("node released at %v before last arrival", r)
		}
	}
}

func TestBarrierReusable(t *testing.T) {
	e := sim.NewEngine()
	j := NewJob(e, 2, DefaultNodeSpec())
	rounds := make([]int, 2)
	for i := 0; i < 2; i++ {
		i := i
		e.Go("n", func(p *sim.Proc) {
			for r := 0; r < 3; r++ {
				p.Sleep(sim.Duration((i + 1) * 100))
				j.Barrier(p, "loop")
				rounds[i]++
			}
		})
	}
	e.RunAll()
	if rounds[0] != 3 || rounds[1] != 3 {
		t.Fatalf("rounds = %v", rounds)
	}
	if dl := e.Deadlocked(); dl != nil {
		t.Fatalf("deadlock: %v", dl)
	}
}

func TestAllgatherDeliversAllBlobs(t *testing.T) {
	e := sim.NewEngine()
	j := NewJob(e, 4, DefaultNodeSpec())
	results := make([][][]byte, 4)
	for i := 0; i < 4; i++ {
		i := i
		e.Go(fmt.Sprintf("n%d", i), func(p *sim.Proc) {
			blob := []byte(fmt.Sprintf("tree-from-%d", i))
			results[i] = j.Allgather(p, "dir", i, blob)
		})
	}
	e.RunAll()
	for i, res := range results {
		if len(res) != 4 {
			t.Fatalf("node %d got %d blobs", i, len(res))
		}
		for src, b := range res {
			want := fmt.Sprintf("tree-from-%d", src)
			if string(b) != want {
				t.Fatalf("node %d blob[%d] = %q, want %q", i, src, b, want)
			}
		}
	}
	if e.Now() == 0 {
		t.Fatal("allgather cost no time")
	}
}

func TestAllgatherTimeScalesWithBlobSize(t *testing.T) {
	run := func(blobSize int) sim.Time {
		e := sim.NewEngine()
		j := NewJob(e, 4, DefaultNodeSpec())
		for i := 0; i < 4; i++ {
			i := i
			e.Go("n", func(p *sim.Proc) {
				j.Allgather(p, "dir", i, make([]byte, blobSize))
			})
		}
		return e.RunAll()
	}
	small := run(1 << 10)
	large := run(16 << 20)
	if large <= small*10 {
		t.Fatalf("16MiB allgather (%v) not much slower than 1KiB (%v)", large, small)
	}
}

func TestAllgatherDoubleContributePanics(t *testing.T) {
	e := sim.NewEngine()
	j := NewJob(e, 2, DefaultNodeSpec())
	e.Go("bad", func(p *sim.Proc) {
		defer func() {
			if recover() == nil {
				t.Error("expected panic")
			}
			// Unblock the collective so the engine can drain: the other
			// participant never arrives in this test.
		}()
		j.Allgather(p, "g", 0, []byte("x"))
		j.Allgather(p, "g", 0, []byte("y"))
	})
	e.Run(sim.Time(1e9))
}

func TestDeviceReachableThroughTarget(t *testing.T) {
	e := sim.NewEngine()
	j := NewJob(e, 2, DefaultNodeSpec())
	// Node 0 reads from node 1's device over the fabric.
	e.Go("c", func(p *sim.Proc) {
		q := j.Node(1).Target.Connect(0, 8)
		buf := make([]byte, 4096)
		if err := q.Submit(&nvme.Command{Op: nvme.OpRead, Buf: buf}); err != nil {
			t.Error(err)
		}
		for len(q.Poll(0)) == 0 {
			p.Sleep(500)
		}
	})
	e.RunAll()
	if j.Node(1).Target.Served() != 1 {
		t.Fatal("remote read did not reach target")
	}
}

func TestNewJobMixed(t *testing.T) {
	e := sim.NewEngine()
	spec := DefaultNodeSpec()
	diskless := NodeSpec{Cores: 8, NICBandwidth: spec.NICBandwidth}
	j := NewJobMixed(e, []NodeSpec{spec, diskless, spec})
	if j.N() != 3 {
		t.Fatal("node count")
	}
	if j.Node(0).Device == nil || j.Node(2).Device == nil {
		t.Fatal("storage nodes missing devices")
	}
	if j.Node(1).Device != nil {
		t.Fatal("diskless node has a device")
	}
	if j.Node(1).CPU.Capacity() != 8 {
		t.Fatal("per-spec cores not applied")
	}
}
