// Package cluster assembles simulated compute nodes into a training job:
// each node has CPU cores, a NIC on the shared fabric, and (optionally) an
// NVMe device exported through an NVMe-oF target. It also provides the
// collective operations DLFS mount needs — a barrier and the allgather
// that replicates every node's AVL directory partition to all nodes
// (paper §III-B2).
package cluster

import (
	"fmt"

	"dlfs/internal/fabric"
	"dlfs/internal/nvme"
	"dlfs/internal/sim"
)

// NodeSpec configures one node.
type NodeSpec struct {
	Cores        int        // CPU cores (paper testbed: dual-socket E5-2650)
	NICBandwidth int64      // bytes/sec per direction
	Device       *nvme.Spec // nil for diskless client nodes
}

// DefaultNodeSpec mirrors the paper's testbed nodes with an emulated NVMe
// device each.
func DefaultNodeSpec() NodeSpec {
	d := nvme.EmulatedSpec()
	return NodeSpec{Cores: 20, NICBandwidth: fabric.FDRBandwidth, Device: &d}
}

// Node is one simulated machine in the job.
type Node struct {
	ID     int
	CPU    *sim.Server    // capacity = cores; hold a unit to run on a core
	Device *nvme.Device   // nil if diskless
	Target *fabric.Target // NVMe-oF export of Device, nil if diskless
	job    *Job
}

// Job is a set of nodes on one fabric.
type Job struct {
	eng      *sim.Engine
	net      *fabric.Network
	nodes    []*Node
	barriers map[string]*barrierState
	gathers  map[string]*gatherState
}

// NewJob builds n identical nodes from spec on a fresh fabric.
func NewJob(e *sim.Engine, n int, spec NodeSpec) *Job {
	if n <= 0 {
		panic("cluster: job needs at least one node")
	}
	specs := make([]NodeSpec, n)
	for i := range specs {
		specs[i] = spec
	}
	return NewJobMixed(e, specs)
}

// NewJobMixed builds one node per spec, allowing heterogeneous jobs —
// e.g. diskless training clients next to storage-only nodes for the
// disaggregation experiments.
func NewJobMixed(e *sim.Engine, specs []NodeSpec) *Job {
	return NewJobMixedNet(e, specs, fabric.DefaultLatency)
}

// NewJobMixedNet additionally sets the fabric's one-way latency, for
// sensitivity studies over the interconnect model.
func NewJobMixedNet(e *sim.Engine, specs []NodeSpec, latency sim.Duration) *Job {
	if len(specs) == 0 {
		panic("cluster: job needs at least one node")
	}
	j := &Job{
		eng:      e,
		net:      fabric.New(e, latency),
		barriers: make(map[string]*barrierState),
		gathers:  make(map[string]*gatherState),
	}
	for i, spec := range specs {
		if spec.Cores <= 0 {
			spec.Cores = 1
		}
		j.net.AddNode(i, spec.NICBandwidth)
		node := &Node{
			ID:  i,
			CPU: sim.NewServer(e, fmt.Sprintf("node%d/cpu", i), spec.Cores),
			job: j,
		}
		if spec.Device != nil {
			ds := *spec.Device
			ds.Name = fmt.Sprintf("%s@node%d", ds.Name, i)
			node.Device = nvme.NewDevice(e, ds)
			node.Target = fabric.NewTarget(j.net, i, node.Device, fabric.DefaultTargetSpec())
		}
		j.nodes = append(j.nodes, node)
	}
	return j
}

// Engine returns the simulation engine.
func (j *Job) Engine() *sim.Engine { return j.eng }

// Network returns the job's fabric.
func (j *Job) Network() *fabric.Network { return j.net }

// N returns the number of nodes.
func (j *Job) N() int { return len(j.nodes) }

// Node returns node i.
func (j *Job) Node(i int) *Node { return j.nodes[i] }

// Nodes returns all nodes in id order.
func (j *Job) Nodes() []*Node { return j.nodes }

// Job returns the job this node belongs to.
func (n *Node) Job() *Job { return n.job }

// Compute occupies one of the node's cores for d: the model of "the
// application computes for d".
func (n *Node) Compute(p *sim.Proc, d sim.Duration) { n.CPU.Use(p, d) }

type barrierState struct {
	arrived int
	gen     int
	sig     *sim.Signal
}

// Barrier blocks the calling node's process until all N nodes have called
// Barrier with the same name for the current generation. Names let a
// program use several independent barriers.
func (j *Job) Barrier(p *sim.Proc, name string) {
	b := j.barriers[name]
	if b == nil {
		b = &barrierState{sig: sim.NewSignal(j.eng)}
		j.barriers[name] = b
	}
	b.arrived++
	if b.arrived == len(j.nodes) {
		b.arrived = 0
		b.gen++
		b.sig.Broadcast()
		// A barrier rendezvous costs one fabric round trip of control
		// traffic for the non-trivial case.
		if len(j.nodes) > 1 {
			p.Sleep(2 * j.net.Latency())
		}
		return
	}
	gen := b.gen
	for b.gen == gen {
		b.sig.Wait(p)
	}
}

type gatherState struct {
	blobs   map[int][]byte
	sig     *sim.Signal
	results map[int][][]byte
	gen     int
}

// Allgather is a collective: every node contributes a blob; once all have
// arrived, each node pulls every other node's blob across the fabric
// (modelled as pairwise transfers into its NIC) and receives the blobs
// indexed by node ID. Blob 0..N-1 ordering is preserved for determinism.
//
// This is the mount-time directory exchange of §III-B2: "all nodes then
// invoke a collective communication to gather all AVL trees, forming an
// identical copy of the in-memory sample directory at every node."
func (j *Job) Allgather(p *sim.Proc, name string, node int, blob []byte) [][]byte {
	g := j.gathers[name]
	if g == nil {
		g = &gatherState{blobs: make(map[int][]byte), sig: sim.NewSignal(j.eng), results: make(map[int][][]byte)}
		j.gathers[name] = g
	}
	if _, dup := g.blobs[node]; dup {
		panic(fmt.Sprintf("cluster: node %d contributed twice to allgather %q", node, name))
	}
	g.blobs[node] = blob
	gen := g.gen
	if len(g.blobs) < len(j.nodes) {
		for g.gen == gen {
			g.sig.Wait(p)
		}
	} else {
		// Last arriver releases everyone.
		for id := range j.nodes {
			out := make([][]byte, len(j.nodes))
			for src, b := range g.blobs {
				out[src] = b
			}
			g.results[id] = out
		}
		g.blobs = make(map[int][]byte)
		g.gen++
		g.sig.Broadcast()
	}
	// Each node pays to pull the other nodes' blobs over the fabric.
	res := g.results[node]
	for src, b := range res {
		if src != node && len(b) > 0 {
			j.net.Transfer(p, src, node, int64(len(b)))
		}
	}
	return res
}
