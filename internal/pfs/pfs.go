// Package pfs models the HPC backend persistent parallel file system
// (Lustre/GPFS-class) that burst buffers stage datasets from: the paper's
// DL jobs "load the training datasets into the burst buffers at the
// beginning of their execution from the persistent file system" (§III).
//
// The model captures the two properties that dominate stage-in of DL
// datasets:
//
//   - per-file metadata cost: every open is a round trip to the metadata
//     server, which is what makes staging millions of small files slow;
//   - bandwidth: each client stream is capped, and the object-store
//     aggregate is shared across all concurrent streams.
package pfs

import (
	"dlfs/internal/sim"
)

// Spec is the PFS performance envelope.
type Spec struct {
	AggregateBandwidth int64        // across all OSTs, bytes/sec
	PerClientBandwidth int64        // one client stream, bytes/sec
	OpenLatency        sim.Duration // metadata RTT + MDS service per open
}

// DefaultSpec resembles a mid-size Lustre installation: 40 GB/s aggregate,
// 3 GB/s per client stream, ~200 µs per file open under load.
func DefaultSpec() Spec {
	return Spec{
		AggregateBandwidth: 40_000_000_000,
		PerClientBandwidth: 3_000_000_000,
		OpenLatency:        200_000,
	}
}

// System is a shared PFS instance.
type System struct {
	spec    Spec
	streams *sim.Server // concurrent full-rate client streams
	mds     *sim.Server // metadata server

	opens int64
	bytes int64
}

// New creates a PFS on the engine.
func New(e *sim.Engine, spec Spec) *System {
	if spec.PerClientBandwidth <= 0 {
		spec.PerClientBandwidth = 1
	}
	slots := int(spec.AggregateBandwidth / spec.PerClientBandwidth)
	if slots < 1 {
		slots = 1
	}
	return &System{
		spec:    spec,
		streams: sim.NewServer(e, "pfs/streams", slots),
		mds:     sim.NewServer(e, "pfs/mds", 1),
	}
}

// Spec returns the performance envelope.
func (s *System) Spec() Spec { return s.spec }

// Stats reports opens served and bytes delivered.
func (s *System) Stats() (opens, bytes int64) { return s.opens, s.bytes }

// ReadFile charges one file stage-in: an open round trip at the metadata
// server, then a streaming read at the per-client rate (throttled by the
// aggregate when many streams run). No data moves — the caller already
// has the bytes; this prices the time.
func (s *System) ReadFile(p *sim.Proc, size int64) {
	// MDS: opens serialize at the metadata server under load.
	s.mds.Use(p, s.spec.OpenLatency)
	s.opens++
	if size <= 0 {
		return
	}
	s.streams.Acquire(p)
	p.Sleep(sim.Duration(size * 1e9 / s.spec.PerClientBandwidth))
	s.streams.Release()
	s.bytes += size
}

// StageInTime estimates, analytically, one client staging `files` files of
// mean size `meanSize` back to back: the quantity the stage-in ablation
// sweeps. Exposed for cross-checking the simulated numbers.
func (s *System) StageInTime(files int, meanSize int64) sim.Duration {
	per := sim.Duration(meanSize * 1e9 / s.spec.PerClientBandwidth)
	return sim.Duration(files) * (s.spec.OpenLatency + per)
}
