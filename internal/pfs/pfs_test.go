package pfs

import (
	"testing"

	"dlfs/internal/sim"
)

func TestSingleFileTime(t *testing.T) {
	e := sim.NewEngine()
	s := New(e, DefaultSpec())
	var took sim.Time
	e.Go("c", func(p *sim.Proc) {
		start := p.Now()
		s.ReadFile(p, 3_000_000_000) // 1 s at 3 GB/s
		took = p.Now() - start
	})
	e.RunAll()
	want := sim.Time(200_000) + sim.Time(1e9)
	if d := took - want; d < -1e6 || d > 1e6 {
		t.Fatalf("stage-in took %v, want ≈%v", took, want)
	}
	opens, bytes := s.Stats()
	if opens != 1 || bytes != 3_000_000_000 {
		t.Fatalf("stats %d %d", opens, bytes)
	}
}

func TestMetadataDominatesSmallFiles(t *testing.T) {
	e := sim.NewEngine()
	s := New(e, DefaultSpec())
	const files = 1000
	e.Go("c", func(p *sim.Proc) {
		for i := 0; i < files; i++ {
			s.ReadFile(p, 4096) // ~1.4 µs of data each
		}
	})
	total := e.RunAll()
	// 1000 opens × 200 µs = 200 ms floor.
	if total < sim.Time(files)*200_000 {
		t.Fatalf("total %v below the metadata floor", total)
	}
	// Data time is negligible: the whole run is ≈ the open cost.
	if total > sim.Time(files)*220_000 {
		t.Fatalf("total %v: data time should be negligible for 4K files", total)
	}
}

func TestAggregateBandwidthThrottlesManyStreams(t *testing.T) {
	e := sim.NewEngine()
	// Aggregate = 4 streams' worth; run 16 concurrent clients.
	s := New(e, Spec{AggregateBandwidth: 12_000_000_000, PerClientBandwidth: 3_000_000_000, OpenLatency: 0})
	const size = 3_000_000_000 // 1 s per stream at full rate
	for c := 0; c < 16; c++ {
		e.Go("c", func(p *sim.Proc) { s.ReadFile(p, size) })
	}
	total := e.RunAll()
	// 16 streams / 4 slots → 4 sequential waves ≈ 4 s.
	if total < sim.Time(3.8e9) || total > sim.Time(4.3e9) {
		t.Fatalf("16 contended streams took %v, want ≈4s", total)
	}
}

func TestStageInTimeMatchesSimulation(t *testing.T) {
	e := sim.NewEngine()
	s := New(e, DefaultSpec())
	const files, size = 200, 1 << 20
	e.Go("c", func(p *sim.Proc) {
		for i := 0; i < files; i++ {
			s.ReadFile(p, size)
		}
	})
	total := e.RunAll()
	est := s.StageInTime(files, size)
	ratio := float64(total) / float64(est)
	if ratio < 0.95 || ratio > 1.05 {
		t.Fatalf("simulated %v vs analytic %v", total, est)
	}
}

func TestZeroSizeIsMetadataOnly(t *testing.T) {
	e := sim.NewEngine()
	s := New(e, DefaultSpec())
	e.Go("c", func(p *sim.Proc) { s.ReadFile(p, 0) })
	total := e.RunAll()
	if total != sim.Time(200_000) {
		t.Fatalf("zero-size stage-in took %v", total)
	}
}
