// Package peercache is the cooperative client-side sample cache wire
// protocol: every rank of a cluster mount hosts a tiny framed TCP
// service ("DLPC") that serves samples out of its local read cache, so
// a sample crosses the storage-target wire once per *cluster* instead
// of once per rank (the FanStore idea, reproduced at user level).
//
// Cache ownership is placed consistently across ranks (the live client
// derives the owner from the same hash placement the directory uses),
// so for any sample every rank agrees on which peer to ask. The
// protocol is deliberately minimal — one synchronous request per
// round-trip — because the fallback path matters more than raw
// fan-out: a dead or slow peer must degrade a read to the origin
// target, never stall it. All client failures surface as typed errors
// matching ErrUnavailable (transport) or ErrMiss (peer answered but
// declined), so callers can count fallbacks precisely.
//
// Framing (all integers little-endian):
//
//	frame := magic(u32 "DLPC") | op(u8) | seq(u32) | length(u32) | payload
//
// opGet carries an 8-byte sample index; opData answers with the sample
// bytes; opMiss answers that the peer declined to serve (shutting down,
// index unknown); opErr carries a reason string. seq echoes the request
// so a client can detect protocol desync. Length prefixes are capped
// per opcode — a corrupt control frame cannot demand a data-sized
// allocation.
package peercache

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Magic guards against cross-protocol connections ("DLPC").
const Magic = 0x444C5043

// Opcodes.
const (
	opGet byte = iota + 1
	opData
	opMiss
	opErr
)

// Limits: a data frame carries one sample (64 MiB covers any sample the
// client pipeline handles); every other opcode is a small control frame.
const (
	maxDataPayload    = 64 << 20
	maxControlPayload = 64 << 10
	getPayloadSize    = 8
)

// payloadLimit returns the largest payload an opcode may carry. Unknown
// opcodes are treated as control frames so they cannot trigger a large
// allocation before being rejected.
func payloadLimit(op byte) uint32 {
	if op == opData {
		return maxDataPayload
	}
	return maxControlPayload
}

// Errors.
var (
	// ErrUnavailable marks a peer fetch that failed at the transport:
	// dial refused, connection lost, deadline exceeded. Match with
	// errors.Is; the concrete error is a *PeerError.
	ErrUnavailable = errors.New("peercache: peer unavailable")
	// ErrMiss marks a peer that answered but declined to serve the
	// sample. Match with errors.Is; the concrete error is a *PeerError.
	ErrMiss = errors.New("peercache: peer miss")
	// ErrProtocol reports a malformed or unexpected frame.
	ErrProtocol = errors.New("peercache: protocol error")
	// ErrFrameTooLarge marks a frame whose length prefix exceeds the
	// opcode's payload cap. Match with errors.Is; the concrete error is
	// a *FrameSizeError.
	ErrFrameTooLarge = errors.New("peercache: frame exceeds size limit")
	// ErrClosed reports use of a closed client or server.
	ErrClosed = errors.New("peercache: closed")
)

// FrameSizeError reports an oversized frame: which opcode, the claimed
// payload length, and the cap it broke. It unwraps to both
// ErrFrameTooLarge and ErrProtocol.
type FrameSizeError struct {
	Op    byte
	Size  uint32
	Limit uint32
}

func (e *FrameSizeError) Error() string {
	return fmt.Sprintf("peercache: opcode %d payload %d exceeds limit %d", e.Op, e.Size, e.Limit)
}

// Unwrap lets both errors.Is(err, ErrFrameTooLarge) and
// errors.Is(err, ErrProtocol) match.
func (e *FrameSizeError) Unwrap() []error { return []error{ErrFrameTooLarge, ErrProtocol} }

// PeerError reports a failed fetch against one peer. It unwraps to
// ErrUnavailable or ErrMiss depending on the failure class, so the
// caller's fallback accounting can distinguish dead peers from declines.
type PeerError struct {
	Addr string // the peer's service address
	Kind error  // ErrUnavailable or ErrMiss
	Err  error  // underlying transport/protocol error (may be nil)
}

func (e *PeerError) Error() string {
	if e.Err != nil {
		return fmt.Sprintf("peercache: peer %s: %v: %v", e.Addr, e.Kind, e.Err)
	}
	return fmt.Sprintf("peercache: peer %s: %v", e.Addr, e.Kind)
}

// Unwrap lets errors.Is match the failure class (and any wrapped
// transport error).
func (e *PeerError) Unwrap() []error {
	if e.Err != nil {
		return []error{e.Kind, e.Err}
	}
	return []error{e.Kind}
}

// frame is one wire message in either direction.
type frame struct {
	op      byte
	seq     uint32
	payload []byte
}

const frameHeaderSize = 4 + 1 + 4 + 4

// writeFrame emits one frame.
func writeFrame(w io.Writer, f *frame) error {
	hdr := make([]byte, frameHeaderSize)
	binary.LittleEndian.PutUint32(hdr[0:4], Magic)
	hdr[4] = f.op
	binary.LittleEndian.PutUint32(hdr[5:9], f.seq)
	binary.LittleEndian.PutUint32(hdr[9:13], uint32(len(f.payload)))
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	if len(f.payload) > 0 {
		if _, err := w.Write(f.payload); err != nil {
			return err
		}
	}
	return nil
}

// readFrame parses one frame. alloc, when non-nil, supplies the payload
// buffer (the client passes its buffer pool so sample payloads land in
// pooled memory); nil allocates. A corrupt length prefix on a
// near-empty connection costs at most one chunk of allocation before
// the short read surfaces.
func readFrame(r io.Reader, alloc func(int) []byte) (*frame, error) {
	hdr := make([]byte, frameHeaderSize)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, err
	}
	if binary.LittleEndian.Uint32(hdr[0:4]) != Magic {
		return nil, fmt.Errorf("%w: bad magic", ErrProtocol)
	}
	f := &frame{op: hdr[4], seq: binary.LittleEndian.Uint32(hdr[5:9])}
	n := binary.LittleEndian.Uint32(hdr[9:13])
	if limit := payloadLimit(f.op); n > limit {
		return nil, &FrameSizeError{Op: f.op, Size: n, Limit: limit}
	}
	if n > 0 {
		buf, err := readPayload(r, int(n), alloc)
		if err != nil {
			return nil, err
		}
		f.payload = buf
	}
	return f, nil
}

// readPayload reads exactly n bytes. Large claims are read chunk by
// chunk into plain memory first when no allocator is supplied, so a
// bogus in-cap length prefix cannot force the full claimed allocation
// before the short read surfaces; with an allocator (the trusted client
// data path) the buffer comes from the pool up front.
func readPayload(r io.Reader, n int, alloc func(int) []byte) ([]byte, error) {
	if alloc != nil {
		buf := alloc(n)
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, err
		}
		return buf, nil
	}
	const chunk = 1 << 20
	if n <= chunk {
		buf := make([]byte, n)
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, err
		}
		return buf, nil
	}
	buf := make([]byte, 0, chunk)
	for len(buf) < n {
		step := n - len(buf)
		if step > chunk {
			step = chunk
		}
		off := len(buf)
		buf = append(buf, make([]byte, step)...)
		if _, err := io.ReadFull(r, buf[off:]); err != nil {
			return nil, err
		}
	}
	return buf, nil
}

// Handler serves one sample by dataset index. The returned buffer is
// written to the wire and then handed to Options.Release (when set), so
// implementations can return pooled memory. An error answers the peer
// with opMiss — the requester falls back to origin; the handler's error
// text travels in an opErr only for non-recoverable protocol abuse.
type Handler func(idx int) ([]byte, error)

// Options tunes a Server or Client.
type Options struct {
	// DialTimeout bounds a client's connection establishment (default 2s).
	DialTimeout time.Duration
	// RequestTimeout bounds one fetch round-trip on the client and one
	// response write on the server (default 2s; <0 disables).
	RequestTimeout time.Duration
	// Release, on a server, receives each served buffer after it is
	// written so pooled memory can be recycled (nil drops buffers).
	Release func([]byte)
}

func (o Options) withDefaults() Options {
	if o.DialTimeout <= 0 {
		o.DialTimeout = 2 * time.Second
	}
	if o.RequestTimeout == 0 {
		o.RequestTimeout = 2 * time.Second
	} else if o.RequestTimeout < 0 {
		o.RequestTimeout = -1
	}
	return o
}

// Server hosts one rank's share of the cooperative cache.
type Server struct {
	handler Handler
	opt     Options

	served atomic.Int64 // samples answered with opData
	missed atomic.Int64 // requests answered with opMiss

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// NewServer returns a server answering opGet through handler.
func NewServer(h Handler, opt Options) *Server {
	return &Server{handler: h, opt: opt.withDefaults(), conns: make(map[net.Conn]struct{})}
}

// Listen starts serving on addr and returns the bound address.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close() //nolint:errcheck
		return "", ErrClosed
	}
	s.ln = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			s.mu.Lock()
			if s.closed {
				s.mu.Unlock()
				c.Close() //nolint:errcheck
				return
			}
			s.conns[c] = struct{}{}
			s.mu.Unlock()
			s.wg.Add(1)
			go func() {
				defer s.wg.Done()
				s.serveConn(c)
			}()
		}
	}()
	return ln.Addr().String(), nil
}

// Stats reports samples served to peers and requests answered with a
// miss.
func (s *Server) Stats() (served, missed int64) {
	return s.served.Load(), s.missed.Load()
}

// Close stops the listener and severs every peer connection.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.ln
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	for _, c := range conns {
		c.Close() //nolint:errcheck
	}
	s.wg.Wait()
	return err
}

// serveConn answers one peer's requests until its connection drops or a
// malformed frame arrives.
func (s *Server) serveConn(c net.Conn) {
	defer func() {
		c.Close() //nolint:errcheck
		s.mu.Lock()
		delete(s.conns, c)
		s.mu.Unlock()
	}()
	for {
		f, err := readFrame(c, nil)
		if err != nil {
			return
		}
		if f.op != opGet || len(f.payload) != getPayloadSize {
			s.answer(c, &frame{op: opErr, seq: f.seq, payload: []byte("expected get")}) //nolint:errcheck
			return
		}
		idx := int(int64(binary.LittleEndian.Uint64(f.payload)))
		buf, herr := s.handler(idx)
		if herr != nil || buf == nil {
			s.missed.Add(1)
			if s.answer(c, &frame{op: opMiss, seq: f.seq}) != nil {
				return
			}
			continue
		}
		werr := s.answer(c, &frame{op: opData, seq: f.seq, payload: buf})
		if s.opt.Release != nil {
			s.opt.Release(buf)
		}
		if werr != nil {
			return
		}
		s.served.Add(1)
	}
}

// answer writes one response under the request deadline.
func (s *Server) answer(c net.Conn, f *frame) error {
	if s.opt.RequestTimeout > 0 {
		c.SetWriteDeadline(time.Now().Add(s.opt.RequestTimeout)) //nolint:errcheck
	}
	return writeFrame(c, f)
}

// Client fetches samples from one peer's server. It dials lazily,
// serialises requests on one connection, and drops the connection on
// any failure so the next fetch re-dials — a dead peer costs one
// deadline per fetch attempt, never a wedge.
type Client struct {
	addr string
	opt  Options

	mu     sync.Mutex
	conn   net.Conn
	seq    uint32
	closed bool
}

// NewClient returns a client for the peer service at addr.
func NewClient(addr string, opt Options) *Client {
	return &Client{addr: addr, opt: opt.withDefaults()}
}

// Addr reports the peer's service address.
func (c *Client) Addr() string { return c.addr }

// Fetch requests one sample by dataset index. alloc, when non-nil,
// supplies the payload buffer (pass a buffer pool's Get). Failures are
// typed: transport problems match ErrUnavailable, a peer that answered
// but declined matches ErrMiss.
func (c *Client) Fetch(idx int, alloc func(int) []byte) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, &PeerError{Addr: c.addr, Kind: ErrUnavailable, Err: ErrClosed}
	}
	if c.conn == nil {
		conn, err := net.DialTimeout("tcp", c.addr, c.opt.DialTimeout)
		if err != nil {
			return nil, &PeerError{Addr: c.addr, Kind: ErrUnavailable, Err: err}
		}
		c.conn = conn
	}
	if c.opt.RequestTimeout > 0 {
		c.conn.SetDeadline(time.Now().Add(c.opt.RequestTimeout)) //nolint:errcheck
	}
	c.seq++
	seq := c.seq
	var req [getPayloadSize]byte
	binary.LittleEndian.PutUint64(req[:], uint64(idx))
	if err := writeFrame(c.conn, &frame{op: opGet, seq: seq, payload: req[:]}); err != nil {
		return nil, c.fail(err)
	}
	f, err := readFrame(c.conn, alloc)
	if err != nil {
		return nil, c.fail(err)
	}
	if f.seq != seq {
		return nil, c.fail(fmt.Errorf("%w: response seq %d for request %d", ErrProtocol, f.seq, seq))
	}
	switch f.op {
	case opData:
		return f.payload, nil
	case opMiss:
		return nil, &PeerError{Addr: c.addr, Kind: ErrMiss}
	case opErr:
		return nil, c.fail(fmt.Errorf("%w: peer error: %s", ErrProtocol, f.payload))
	default:
		return nil, c.fail(fmt.Errorf("%w: unexpected opcode %d", ErrProtocol, f.op))
	}
}

// fail drops the connection (so the next Fetch re-dials) and wraps the
// error as unavailable. Called with the client lock held.
func (c *Client) fail(err error) error {
	if c.conn != nil {
		c.conn.Close() //nolint:errcheck
		c.conn = nil
	}
	return &PeerError{Addr: c.addr, Kind: ErrUnavailable, Err: err}
}

// Close drops the connection; subsequent fetches fail typed.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	if c.conn != nil {
		err := c.conn.Close()
		c.conn = nil
		return err
	}
	return nil
}
