package peercache

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync/atomic"
	"testing"
	"time"
)

// echoHandler serves a deterministic payload derived from the index, or
// a miss for negative indices.
func echoHandler(idx int) ([]byte, error) {
	if idx < 0 {
		return nil, errors.New("no such sample")
	}
	buf := make([]byte, 64)
	for i := range buf {
		buf[i] = byte(idx + i)
	}
	return buf, nil
}

func startServer(t *testing.T, h Handler, opt Options) (*Server, string) {
	t.Helper()
	srv := NewServer(h, opt)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() }) //nolint:errcheck
	return srv, addr
}

func TestFetchRoundTrip(t *testing.T) {
	srv, addr := startServer(t, echoHandler, Options{})
	cl := NewClient(addr, Options{})
	defer cl.Close() //nolint:errcheck

	for _, idx := range []int{0, 7, 1 << 20} {
		got, err := cl.Fetch(idx, nil)
		if err != nil {
			t.Fatalf("fetch %d: %v", idx, err)
		}
		want, _ := echoHandler(idx)
		if !bytes.Equal(got, want) {
			t.Fatalf("fetch %d returned wrong payload", idx)
		}
	}
	if served, missed := srv.Stats(); served != 3 || missed != 0 {
		t.Fatalf("server stats served=%d missed=%d", served, missed)
	}
}

// TestFetchAllocUsesPool asserts the payload buffer comes from the
// caller's allocator (how the live client lands peer samples in pooled
// memory).
func TestFetchAllocUsesPool(t *testing.T) {
	_, addr := startServer(t, echoHandler, Options{})
	cl := NewClient(addr, Options{})
	defer cl.Close() //nolint:errcheck

	var allocs atomic.Int64
	alloc := func(n int) []byte {
		allocs.Add(1)
		return make([]byte, n)
	}
	if _, err := cl.Fetch(3, alloc); err != nil {
		t.Fatal(err)
	}
	if allocs.Load() != 1 {
		t.Fatalf("allocator called %d times, want 1", allocs.Load())
	}
}

// TestFetchMissTyped: a handler error answers opMiss, surfacing as a
// typed ErrMiss so the caller can fall back to origin.
func TestFetchMissTyped(t *testing.T) {
	srv, addr := startServer(t, echoHandler, Options{})
	cl := NewClient(addr, Options{})
	defer cl.Close() //nolint:errcheck

	_, err := cl.Fetch(-1, nil)
	if !errors.Is(err, ErrMiss) {
		t.Fatalf("want ErrMiss, got %v", err)
	}
	if errors.Is(err, ErrUnavailable) {
		t.Fatalf("a miss must not look unavailable: %v", err)
	}
	// The connection survives a miss: the next fetch works.
	if _, err := cl.Fetch(1, nil); err != nil {
		t.Fatalf("fetch after miss: %v", err)
	}
	if _, missed := srv.Stats(); missed != 1 {
		t.Fatalf("missed=%d, want 1", missed)
	}
}

// TestFetchUnavailableTyped: transport failures (nothing listening, dead
// server) surface as ErrUnavailable with the peer address attached.
func TestFetchUnavailableTyped(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close() //nolint:errcheck

	cl := NewClient(addr, Options{DialTimeout: 200 * time.Millisecond})
	defer cl.Close() //nolint:errcheck
	_, err = cl.Fetch(0, nil)
	if !errors.Is(err, ErrUnavailable) {
		t.Fatalf("want ErrUnavailable, got %v", err)
	}
	var pe *PeerError
	if !errors.As(err, &pe) || pe.Addr != addr {
		t.Fatalf("want *PeerError carrying %s, got %v", addr, err)
	}
}

// TestServerCloseSeversClients: closing the server mid-session fails the
// next fetch typed (unavailable), and the client re-dials cleanly when a
// new server appears on the same handler.
func TestServerCloseSeversClients(t *testing.T) {
	srv, addr := startServer(t, echoHandler, Options{})
	cl := NewClient(addr, Options{RequestTimeout: 500 * time.Millisecond})
	defer cl.Close() //nolint:errcheck
	if _, err := cl.Fetch(1, nil); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Fetch(2, nil); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("fetch against closed server: want ErrUnavailable, got %v", err)
	}
}

// TestReleaseRecyclesServedBuffers: the server hands every served buffer
// to Options.Release after writing it.
func TestReleaseRecyclesServedBuffers(t *testing.T) {
	var released atomic.Int64
	opt := Options{Release: func(b []byte) { released.Add(int64(len(b))) }}
	_, addr := startServer(t, echoHandler, opt)
	cl := NewClient(addr, Options{})
	defer cl.Close() //nolint:errcheck
	got, err := cl.Fetch(5, nil)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for released.Load() != int64(len(got)) {
		if time.Now().After(deadline) {
			t.Fatalf("released %d bytes, want %d", released.Load(), len(got))
		}
		time.Sleep(time.Millisecond)
	}
}

// TestFrameSizeError: a length prefix past the opcode's cap is rejected
// typed, before any allocation of the claimed size.
func TestFrameSizeError(t *testing.T) {
	var raw bytes.Buffer
	hdr := make([]byte, frameHeaderSize)
	binary.LittleEndian.PutUint32(hdr[0:4], Magic)
	hdr[4] = opGet
	binary.LittleEndian.PutUint32(hdr[9:13], maxControlPayload+1)
	raw.Write(hdr)
	_, err := readFrame(&raw, nil)
	if !errors.Is(err, ErrFrameTooLarge) || !errors.Is(err, ErrProtocol) {
		t.Fatalf("want ErrFrameTooLarge and ErrProtocol, got %v", err)
	}
	var fse *FrameSizeError
	if !errors.As(err, &fse) || fse.Op != opGet || fse.Size != maxControlPayload+1 {
		t.Fatalf("FrameSizeError fields wrong: %+v", fse)
	}
}

// TestBadMagicRejected: a cross-protocol connection fails on the first
// frame without panicking.
func TestBadMagicRejected(t *testing.T) {
	raw := bytes.NewReader(append([]byte("GET / HTTP/1.1\r\n"), make([]byte, 32)...))
	if _, err := readFrame(raw, nil); !errors.Is(err, ErrProtocol) {
		t.Fatalf("want ErrProtocol, got %v", err)
	}
}

// TestServerRejectsMalformedGet: a get with a wrong-sized payload gets an
// opErr answer and the connection is dropped — peers cannot wedge a
// server with garbage.
func TestServerRejectsMalformedGet(t *testing.T) {
	_, addr := startServer(t, echoHandler, Options{})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close() //nolint:errcheck
	if err := writeFrame(conn, &frame{op: opGet, seq: 1, payload: []byte{1, 2, 3}}); err != nil {
		t.Fatal(err)
	}
	f, err := readFrame(conn, nil)
	if err != nil {
		t.Fatal(err)
	}
	if f.op != opErr {
		t.Fatalf("want opErr answer, got opcode %d", f.op)
	}
	if _, err := readFrame(conn, nil); err != io.EOF {
		t.Fatalf("connection should be dropped after protocol abuse, got %v", err)
	}
}

// TestConcurrentFetches: many goroutines sharing one client serialise
// correctly (seq echo catches any interleaving bug).
func TestConcurrentFetches(t *testing.T) {
	_, addr := startServer(t, echoHandler, Options{})
	cl := NewClient(addr, Options{})
	defer cl.Close() //nolint:errcheck

	errc := make(chan error, 16)
	for g := 0; g < 16; g++ {
		go func(g int) {
			for i := 0; i < 25; i++ {
				idx := g*100 + i
				got, err := cl.Fetch(idx, nil)
				if err != nil {
					errc <- err
					return
				}
				want, _ := echoHandler(idx)
				if !bytes.Equal(got, want) {
					errc <- fmt.Errorf("fetch %d returned wrong payload", idx)
					return
				}
			}
			errc <- nil
		}(g)
	}
	for g := 0; g < 16; g++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
}
