package peercache

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"
)

// fuzzFrame builds a wire frame for the corpus.
func fuzzFrame(op byte, seq uint32, payload []byte) []byte {
	var buf bytes.Buffer
	writeFrame(&buf, &frame{op: op, seq: seq, payload: payload}) //nolint:errcheck
	return buf.Bytes()
}

// FuzzPeerFrame drives readFrame with arbitrary bytes (the coord
// FuzzCoordFrame pattern applied to the DLPC protocol): it must never
// panic, reject oversized claims typed before allocating them, and
// round-trip every frame that parses. The seed corpus covers the
// interesting shapes — a valid get, a data answer, a miss, a corrupt
// length prefix far past the cap, an in-cap bogus data length with no
// body behind it, a truncated header, and a bad magic.
func FuzzPeerFrame(f *testing.F) {
	get := make([]byte, getPayloadSize)
	binary.LittleEndian.PutUint64(get, 42)
	f.Add(fuzzFrame(opGet, 1, get))
	f.Add(fuzzFrame(opData, 1, bytes.Repeat([]byte{0xAB}, 1024)))
	f.Add(fuzzFrame(opMiss, 2, nil))
	f.Add(fuzzFrame(opErr, 3, []byte("expected get")))

	// Corrupt length prefix on a control frame: claims far past the cap.
	corrupt := fuzzFrame(opGet, 0, get)
	binary.LittleEndian.PutUint32(corrupt[9:13], 0xFFFFFFFF)
	f.Add(corrupt)

	// In-cap but bogus data length with no payload behind it.
	hugeData := fuzzFrame(opData, 0, nil)
	binary.LittleEndian.PutUint32(hugeData[9:13], maxDataPayload)
	f.Add(hugeData)

	// Truncated header and bad magic.
	f.Add(fuzzFrame(opGet, 1, get)[:7])
	bad := fuzzFrame(opMiss, 0, nil)
	binary.LittleEndian.PutUint32(bad[0:4], 0xDEADBEEF)
	f.Add(bad)

	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := readFrame(bytes.NewReader(data), nil)
		if err != nil {
			// Errors must be the typed protocol/size classes or plain
			// short-read transport errors — never a panic, and an
			// oversized claim must carry its opcode and limit.
			var fse *FrameSizeError
			if errors.As(err, &fse) {
				if fse.Size <= fse.Limit {
					t.Fatalf("FrameSizeError with in-cap size: %+v", fse)
				}
				if !errors.Is(err, ErrFrameTooLarge) || !errors.Is(err, ErrProtocol) {
					t.Fatalf("FrameSizeError not matching its sentinels: %v", err)
				}
			}
			return
		}
		if uint32(len(fr.payload)) > payloadLimit(fr.op) {
			t.Fatalf("parsed frame exceeds its opcode cap: op=%d len=%d", fr.op, len(fr.payload))
		}
		// A frame that parsed must round-trip byte-identically.
		var buf bytes.Buffer
		if err := writeFrame(&buf, fr); err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		if got := buf.Bytes(); !bytes.Equal(got, data[:len(got)]) {
			t.Fatalf("round trip mismatch: %x != %x", got, data[:len(got)])
		}
	})
}
