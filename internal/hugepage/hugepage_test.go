package hugepage

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestArenaLayout(t *testing.T) {
	a, err := NewArena(10<<20, 256<<10)
	if err != nil {
		t.Fatal(err)
	}
	if a.ChunkSize() != 256<<10 {
		t.Fatal("chunk size")
	}
	if a.NumChunks() != 40 { // 10 MiB / 256 KiB
		t.Fatalf("NumChunks = %d", a.NumChunks())
	}
	if a.FreeChunks() != 40 || a.InUse() != 0 {
		t.Fatal("fresh arena accounting")
	}
}

func TestArenaRoundsUpToHugePages(t *testing.T) {
	a, err := NewArena(1, 256<<10)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumChunks() != HugePageSize/(256<<10) {
		t.Fatalf("NumChunks = %d", a.NumChunks())
	}
}

func TestBadParams(t *testing.T) {
	if _, err := NewArena(1<<20, 0); err == nil {
		t.Fatal("zero chunk size accepted")
	}
	if _, err := NewArena(0, 4096); err == nil {
		t.Fatal("zero arena accepted")
	}
	if _, err := NewArena(4<<20, 3000); err == nil {
		t.Fatal("non-tiling chunk size accepted")
	}
	// Multiple of huge page size is allowed.
	if _, err := NewArena(8<<20, 4<<20); err != nil {
		t.Fatalf("4MiB chunks rejected: %v", err)
	}
}

func TestAllocFreeCycle(t *testing.T) {
	a, _ := NewArena(2<<20, 64<<10)
	n := a.NumChunks()
	var got []*Chunk
	for i := 0; i < n; i++ {
		c, err := a.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, c)
	}
	if _, err := a.Alloc(); !errors.Is(err, ErrExhausted) {
		t.Fatalf("over-alloc: %v", err)
	}
	if a.PeakInUse() != n {
		t.Fatalf("peak %d", a.PeakInUse())
	}
	for _, c := range got {
		if err := a.Free(c); err != nil {
			t.Fatal(err)
		}
	}
	if a.FreeChunks() != n {
		t.Fatal("not all freed")
	}
}

func TestChunksDisjointAndWritable(t *testing.T) {
	a, _ := NewArena(2<<20, 128<<10)
	c1, _ := a.Alloc()
	c2, _ := a.Alloc()
	if c1.Index() == c2.Index() {
		t.Fatal("same chunk allocated twice")
	}
	for i := range c1.Bytes() {
		c1.Bytes()[i] = 0xAA
	}
	for _, b := range c2.Bytes() {
		if b == 0xAA {
			t.Fatal("chunks share memory")
		}
	}
	if c1.Cap() != 128<<10 {
		t.Fatalf("cap %d", c1.Cap())
	}
}

func TestChunkAppendCannotGrowIntoNeighbor(t *testing.T) {
	a, _ := NewArena(2<<20, 64<<10)
	c, _ := a.Alloc()
	buf := c.Bytes()
	if cap(buf) != len(buf) {
		t.Fatalf("chunk slice capacity %d exceeds length %d (three-index slicing lost)", cap(buf), len(buf))
	}
}

func TestDoubleFree(t *testing.T) {
	a, _ := NewArena(2<<20, 64<<10)
	c, _ := a.Alloc()
	if err := a.Free(c); err != nil {
		t.Fatal(err)
	}
	if err := a.Free(c); !errors.Is(err, ErrDoubleFree) {
		t.Fatalf("double free: %v", err)
	}
}

func TestForeignFree(t *testing.T) {
	a, _ := NewArena(2<<20, 64<<10)
	b, _ := NewArena(2<<20, 64<<10)
	c, _ := b.Alloc()
	if err := a.Free(c); !errors.Is(err, ErrForeign) {
		t.Fatalf("foreign free: %v", err)
	}
	if err := a.Free(nil); !errors.Is(err, ErrForeign) {
		t.Fatalf("nil free: %v", err)
	}
}

func TestAllocN(t *testing.T) {
	a, _ := NewArena(2<<20, 256<<10) // 8 chunks
	cs, err := a.AllocN(5)
	if err != nil || len(cs) != 5 {
		t.Fatalf("AllocN: %v, %d", err, len(cs))
	}
	if _, err := a.AllocN(4); !errors.Is(err, ErrExhausted) {
		t.Fatalf("partial AllocN should fail atomically: %v", err)
	}
	if a.InUse() != 5 {
		t.Fatalf("failed AllocN leaked: inUse=%d", a.InUse())
	}
}

func TestReset(t *testing.T) {
	a, _ := NewArena(2<<20, 256<<10)
	a.Alloc() //nolint:errcheck
	a.Alloc() //nolint:errcheck
	a.Reset()
	if a.InUse() != 0 || a.FreeChunks() != a.NumChunks() {
		t.Fatal("reset did not restore arena")
	}
	// And alloc after reset works.
	if _, err := a.Alloc(); err != nil {
		t.Fatal(err)
	}
}

// Property: under random alloc/free sequences the arena never hands out
// the same chunk twice and accounting stays exact.
func TestArenaNeverDoubleAllocatesProperty(t *testing.T) {
	f := func(ops []bool, seed int64) bool {
		a, err := NewArena(2<<20, 64<<10)
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		held := map[int]*Chunk{}
		for _, alloc := range ops {
			if alloc {
				c, err := a.Alloc()
				if errors.Is(err, ErrExhausted) {
					continue
				}
				if err != nil {
					return false
				}
				if _, dup := held[c.Index()]; dup {
					return false
				}
				held[c.Index()] = c
			} else if len(held) > 0 {
				// free a random held chunk
				keys := make([]int, 0, len(held))
				for k := range held {
					keys = append(keys, k)
				}
				k := keys[rng.Intn(len(keys))]
				if a.Free(held[k]) != nil {
					return false
				}
				delete(held, k)
			}
			if a.InUse() != len(held) || a.FreeChunks() != a.NumChunks()-len(held) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestBlockingAllocWaitsForFrees proves the blocking wrapper's contract:
// an AllocN larger than the current free count parks until a Free makes
// room, and the wait is counted.
func TestBlockingAllocWaitsForFrees(t *testing.T) {
	a, err := NewArena(2<<20, 256<<10) // 8 chunks
	if err != nil {
		t.Fatal(err)
	}
	b := NewBlocking(a)
	if b.Arena() != a {
		t.Fatal("Arena() identity")
	}
	first := b.AllocN(6)
	if len(first) != 6 || b.Waits() != 0 {
		t.Fatalf("eager alloc: %d chunks, waits=%d", len(first), b.Waits())
	}
	done := make(chan []*Chunk)
	go func() { done <- b.AllocN(4) }() // needs 4, only 2 free: must block
	select {
	case <-done:
		t.Fatal("oversubscribed AllocN returned before a Free")
	case <-time.After(50 * time.Millisecond):
	}
	b.Free(first[:2]) // now 4 free
	select {
	case got := <-done:
		if len(got) != 4 {
			t.Fatalf("blocked alloc returned %d chunks", len(got))
		}
	case <-time.After(2 * time.Second):
		t.Fatal("AllocN still blocked after enough frees")
	}
	if b.Waits() != 1 {
		t.Fatalf("Waits() = %d, want 1", b.Waits())
	}
}
