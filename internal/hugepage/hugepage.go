// Package hugepage implements the huge-page arena backing the DLFS sample
// cache. SPDK requires I/O buffers to live on pinned huge pages (paper
// §III-C1); DLFS therefore allocates its sample cache there and divides it
// into fixed-size chunks.
//
// The arena reproduces that discipline: one contiguous backing slice carved
// into aligned, equally sized chunks handed out through a free list. Chunk
// memory is real — reads land in it and copies out of it are real copies —
// so the zero-copy-into-cache property of the design is observable in
// tests.
package hugepage

import (
	"errors"
	"fmt"
	"sync"
)

// HugePageSize mirrors the 2 MiB x86 huge page. Arena sizes round up to it.
const HugePageSize = 2 << 20

// Chunk is one cache chunk: a fixed-capacity aligned buffer.
type Chunk struct {
	idx   int
	buf   []byte // full capacity; len == chunk size
	arena *Arena
}

// Index returns the chunk's position in the arena.
func (c *Chunk) Index() int { return c.idx }

// Bytes returns the chunk's full backing buffer.
func (c *Chunk) Bytes() []byte { return c.buf }

// Cap returns the chunk capacity in bytes.
func (c *Chunk) Cap() int { return len(c.buf) }

// Arena is a pool of fixed-size chunks carved from one backing allocation.
type Arena struct {
	mu        sync.Mutex
	backing   []byte
	chunkSize int
	chunks    []Chunk
	free      []int  // LIFO free list of chunk indices
	isFree    []bool // per-chunk free flag, guards double frees in O(1)
	inUse     int
	peakInUse int
}

// Errors returned by the arena.
var (
	ErrExhausted  = errors.New("hugepage: arena exhausted")
	ErrForeign    = errors.New("hugepage: chunk does not belong to this arena")
	ErrDoubleFree = errors.New("hugepage: chunk already free")
)

// NewArena creates an arena of totalBytes (rounded up to whole huge pages)
// divided into chunkSize chunks. chunkSize must divide HugePageSize or be a
// multiple of it, keeping every chunk huge-page aligned or page-interior
// without straddling an allocation boundary.
func NewArena(totalBytes int64, chunkSize int) (*Arena, error) {
	if chunkSize <= 0 {
		return nil, fmt.Errorf("hugepage: invalid chunk size %d", chunkSize)
	}
	if HugePageSize%chunkSize != 0 && chunkSize%HugePageSize != 0 {
		return nil, fmt.Errorf("hugepage: chunk size %d does not tile huge pages", chunkSize)
	}
	if totalBytes <= 0 {
		return nil, fmt.Errorf("hugepage: invalid arena size %d", totalBytes)
	}
	pages := (totalBytes + HugePageSize - 1) / HugePageSize
	size := pages * HugePageSize
	n := int(size) / chunkSize
	a := &Arena{
		backing:   make([]byte, size),
		chunkSize: chunkSize,
		chunks:    make([]Chunk, n),
		free:      make([]int, n),
		isFree:    make([]bool, n),
	}
	for i := 0; i < n; i++ {
		off := i * chunkSize
		a.chunks[i] = Chunk{idx: i, buf: a.backing[off : off+chunkSize : off+chunkSize], arena: a}
		a.free[i] = n - 1 - i // so chunk 0 pops first
		a.isFree[i] = true
	}
	return a, nil
}

// ChunkSize returns the configured chunk size.
func (a *Arena) ChunkSize() int { return a.chunkSize }

// NumChunks returns the total number of chunks.
func (a *Arena) NumChunks() int { return len(a.chunks) }

// FreeChunks returns how many chunks are currently available.
func (a *Arena) FreeChunks() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.free)
}

// InUse returns how many chunks are currently allocated.
func (a *Arena) InUse() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.inUse
}

// PeakInUse returns the maximum simultaneous allocation observed.
func (a *Arena) PeakInUse() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.peakInUse
}

// Alloc takes one chunk from the free list.
func (a *Arena) Alloc() (*Chunk, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if len(a.free) == 0 {
		return nil, ErrExhausted
	}
	idx := a.free[len(a.free)-1]
	a.free = a.free[:len(a.free)-1]
	a.isFree[idx] = false
	a.inUse++
	if a.inUse > a.peakInUse {
		a.peakInUse = a.inUse
	}
	return &a.chunks[idx], nil
}

// AllocN takes n chunks, or none if fewer than n are free.
func (a *Arena) AllocN(n int) ([]*Chunk, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if len(a.free) < n {
		return nil, ErrExhausted
	}
	out := make([]*Chunk, n)
	for i := 0; i < n; i++ {
		idx := a.free[len(a.free)-1]
		a.free = a.free[:len(a.free)-1]
		a.isFree[idx] = false
		out[i] = &a.chunks[idx]
	}
	a.inUse += n
	if a.inUse > a.peakInUse {
		a.peakInUse = a.inUse
	}
	return out, nil
}

// Free returns a chunk to the arena.
func (a *Arena) Free(c *Chunk) error {
	if c == nil || c.arena != a {
		return ErrForeign
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.isFree[c.idx] {
		return ErrDoubleFree
	}
	a.isFree[c.idx] = true
	a.free = append(a.free, c.idx)
	a.inUse--
	return nil
}

// Reset returns every chunk to the free list, invalidating outstanding
// handles. Used between epochs when the whole cache is recycled.
func (a *Arena) Reset() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.free = a.free[:0]
	n := len(a.chunks)
	for i := 0; i < n; i++ {
		a.free = append(a.free, n-1-i)
		a.isFree[i] = true
	}
	a.inUse = 0
}

// Blocking wraps an arena with blocking batch allocation: a caller asking
// for chunks waits until enough are free instead of failing — the pooled
// free-list discipline the prefetch pipeline runs against (fetchers stall
// on cache pressure, emission frees recycle chunks and wake them).
type Blocking struct {
	mu    sync.Mutex
	cond  *sync.Cond
	arena *Arena
	waits int64 // AllocN calls that had to wait at least once
}

// NewBlocking wraps a.
func NewBlocking(a *Arena) *Blocking {
	b := &Blocking{arena: a}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// Arena exposes the wrapped arena.
func (b *Blocking) Arena() *Arena { return b.arena }

// AllocN takes n chunks, blocking until the arena can serve all of them
// atomically. A request larger than the arena can ever serve blocks
// forever; callers bound their batch sizes against Arena.NumChunks.
func (b *Blocking) AllocN(n int) []*Chunk {
	b.mu.Lock()
	defer b.mu.Unlock()
	waited := false
	for {
		chunks, err := b.arena.AllocN(n)
		if err == nil {
			return chunks
		}
		if !waited {
			waited = true
			b.waits++
		}
		b.cond.Wait()
	}
}

// Free returns chunks to the arena and wakes blocked allocators.
func (b *Blocking) Free(chunks []*Chunk) {
	b.mu.Lock()
	for _, c := range chunks {
		b.arena.Free(c) //nolint:errcheck
	}
	b.mu.Unlock()
	b.cond.Broadcast()
}

// Waits reports how many allocations had to block on cache pressure.
func (b *Blocking) Waits() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.waits
}
