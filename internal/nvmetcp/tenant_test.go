package nvmetcp

import (
	"errors"
	"testing"
	"time"

	"dlfs/internal/blockdev"
	"dlfs/internal/metrics"
)

// startTenantTarget starts a target with the given tenant provisioning
// and quotas.
func startTenantTarget(t *testing.T, cfg Config) (*Target, string) {
	t.Helper()
	tgt := NewTargetConfig(blockdev.New(1<<26), cfg)
	addr, err := tgt.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { tgt.Close() }) //nolint:errcheck
	return tgt, addr
}

// TestLegacyTenantZeroUnchanged: a default-options initiator (tenant 0
// on the wire — byte-identical frames to the pre-tenant protocol) runs
// a write/read round trip against a multi-tenant, quota-enabled target
// with no rejects and correct data.
func TestLegacyTenantZeroUnchanged(t *testing.T) {
	tgt, addr := startTenantTarget(t, Config{Depth: 8, MaxTenants: 4, TenantBytesPerSec: 1 << 30})
	in, err := Connect(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close() //nolint:errcheck

	want := []byte("legacy tenant zero payload")
	if _, err := in.WriteAt(want, 4096); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(want))
	if _, err := in.ReadAt(got, 4096); err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatalf("round trip: got %q want %q", got, want)
	}
	if rej := tgt.TenantRejects(); rej != 0 {
		t.Fatalf("legacy client caused %d tenant rejects", rej)
	}
	found := false
	for _, ts := range tgt.TenantStats() {
		if ts.ID == 0 && ts.Cmds >= 2 {
			found = true
		}
	}
	if !found {
		t.Fatalf("tenant 0 accounting missing: %+v", tgt.TenantStats())
	}
}

// TestTenantQuotaThrottleTyped: a tenant over its IOPS quota gets a
// typed *ThrottledError carrying a positive retry-after, matching both
// ErrThrottled and the retryable class, and the command succeeds once
// the bucket refills.
func TestTenantQuotaThrottleTyped(t *testing.T) {
	// Burst allowance = one second of rate = 2 commands; the third
	// command inside the same second must throttle.
	_, addr := startTenantTarget(t, Config{Depth: 8, MaxTenants: 4, TenantIOPS: 2})
	in, err := ConnectOptions(addr, Options{Tenant: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close() //nolint:errcheck

	buf := make([]byte, 512)
	var te *ThrottledError
	throttledAt := -1
	for i := 0; i < 5; i++ {
		if _, err := in.ReadAt(buf, 0); err != nil {
			if !errors.As(err, &te) {
				t.Fatalf("read %d: %v, want *ThrottledError", i, err)
			}
			throttledAt = i
			break
		}
	}
	if throttledAt < 0 {
		t.Fatal("five immediate commands never hit the 2 IOPS quota")
	}
	if te.Tenant != 1 || te.RetryAfter <= 0 {
		t.Fatalf("throttle error fields: %+v", te)
	}
	if !errors.Is(te, ErrThrottled) {
		t.Fatal("ThrottledError does not unwrap to ErrThrottled")
	}
	if !IsRetryable(te) {
		t.Fatal("throttle not classified retryable")
	}
	// Waiting out the hint (the bucket debt) must clear the command.
	time.Sleep(te.RetryAfter)
	if _, err := in.ReadAt(buf, 0); err != nil {
		t.Fatalf("read after retry-after: %v", err)
	}
}

// TestReconnectorThrottleKeepsConnection: a throttled command must ride
// the retry ladder on the SAME connection — no invalidation, no
// re-dial — and succeed once the quota refills, counted under
// Throttles, never as a breaker-feeding transport failure.
func TestReconnectorThrottleKeepsConnection(t *testing.T) {
	tgt, addr := startTenantTarget(t, Config{Depth: 8, MaxTenants: 4, TenantIOPS: 10})
	counters := &metrics.Resilience{}
	r, err := NewReconnector(addr, Options{Tenant: 2}, RetryPolicy{MaxRetries: 6, Seed: 1}, counters)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close() //nolint:errcheck

	// Burn the 10-command burst, then keep going: the reconnector must
	// absorb the throttles by waiting, not by re-dialing.
	buf := make([]byte, 256)
	for i := 0; i < 14; i++ {
		if _, err := r.ReadAt(buf, 0); err != nil {
			t.Fatalf("read %d through reconnector: %v", i, err)
		}
	}
	if got := counters.Throttles.Load(); got == 0 {
		t.Fatal("no throttles recorded; quota never engaged")
	}
	if got := counters.Reconnects.Load(); got != 0 {
		t.Fatalf("throttling caused %d reconnects; must be zero", got)
	}
	accepted, _, _ := tgt.ConnStats()
	if accepted != 1 {
		t.Fatalf("target accepted %d connections, want the original 1", accepted)
	}
}

// TestUnprovisionedTenantRejected: a tenant id that is protocol-valid
// but beyond the target's MaxTenants fails with a remote (permanent,
// non-retryable) error; the connection survives and the reject is
// counted.
func TestUnprovisionedTenantRejected(t *testing.T) {
	tgt, addr := startTenantTarget(t, Config{Depth: 8, MaxTenants: 2})
	in, err := ConnectOptions(addr, Options{Tenant: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close() //nolint:errcheck

	buf := make([]byte, 64)
	_, rerr := in.ReadAt(buf, 0)
	if rerr == nil {
		t.Fatal("unprovisioned tenant 3 read succeeded on a MaxTenants=2 target")
	}
	if !errors.Is(rerr, ErrRemote) {
		t.Fatalf("want ErrRemote, got %v", rerr)
	}
	if IsRetryable(rerr) {
		t.Fatalf("tenant rejection must be permanent, got retryable %v", rerr)
	}
	if rej := tgt.TenantRejects(); rej == 0 {
		t.Fatal("reject not counted")
	}
	// The connection is still healthy for... nothing (every command from
	// this tenant is refused), but the refusal must be per-command, not
	// a connection teardown.
	if _, rerr := in.ReadAt(buf, 0); rerr == nil || !errors.Is(rerr, ErrRemote) {
		t.Fatalf("second command: %v, want ErrRemote again", rerr)
	}
}

// TestConnectRejectsMalformedTenantID: ids above MaxTenantID never
// reach the wire; negatives normalize to the legacy tenant.
func TestConnectRejectsMalformedTenantID(t *testing.T) {
	_, addr := startTenantTarget(t, Config{Depth: 8})
	if _, err := ConnectOptions(addr, Options{Tenant: MaxTenantID + 1}); err == nil {
		t.Fatalf("tenant %d accepted at connect", MaxTenantID+1)
	}
	in, err := ConnectOptions(addr, Options{Tenant: -5})
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close() //nolint:errcheck
	buf := make([]byte, 64)
	if _, err := in.ReadAt(buf, 0); err != nil {
		t.Fatalf("negative tenant (normalized to 0): %v", err)
	}
}

// TestTenantAccountingSplit: two tenants' traffic lands in their own
// TenantStats rows and sums to the target-wide counters.
func TestTenantAccountingSplit(t *testing.T) {
	tgt, addr := startTenantTarget(t, Config{Depth: 8, MaxTenants: 4})
	buf := make([]byte, 1024)
	for _, tenant := range []int{1, 2} {
		in, err := ConnectOptions(addr, Options{Tenant: tenant})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 3*tenant; i++ { // 3 cmds for tenant 1, 6 for tenant 2
			if _, err := in.ReadAt(buf, 0); err != nil {
				t.Fatal(err)
			}
		}
		in.Close() //nolint:errcheck
	}
	var perTenant [4]int64
	var sum int64
	for _, ts := range tgt.TenantStats() {
		perTenant[ts.ID] = ts.Cmds
		sum += ts.Cmds
	}
	if perTenant[1] != 3 || perTenant[2] != 6 {
		t.Fatalf("per-tenant cmds: %v, want tenant1=3 tenant2=6", perTenant)
	}
	cmds, _ := tgt.Served()
	if sum != cmds {
		t.Fatalf("tenant cmds sum %d != target served %d", sum, cmds)
	}
}

// TestDRRSchedulerInterleaves drives the scheduler directly: a small
// command from a second tenant, enqueued behind a deep backlog of
// megabyte commands from the first, must be handed to a worker on the
// very next scheduling round — the deficit-round-robin guarantee the
// single FIFO could not give. Each 1 MiB head command needs four
// 256 KiB quanta, so the ring rotates to the small tenant (one quantum
// covers its 512-byte cost) before the bulk head ever becomes
// affordable.
func TestDRRSchedulerInterleaves(t *testing.T) {
	s := newDRRSched(Config{MaxTenants: 4}.withDefaults())
	bulk, small := s.tenants[1], s.tenants[2]
	const backlog = 10
	for i := 0; i < backlog; i++ {
		if !s.enqueue(bulk, rpqItem{ts: bulk, cost: 1 << 20}) {
			t.Fatal("enqueue on open scheduler returned false")
		}
	}
	if !s.enqueue(small, rpqItem{ts: small, cost: 512}) {
		t.Fatal("enqueue on open scheduler returned false")
	}
	var order []int
	for i := 0; i < backlog+1; i++ {
		it, ok := s.next()
		if !ok {
			t.Fatal("scheduler reported closed with items pending")
		}
		order = append(order, it.ts.id)
	}
	if order[0] != small.id {
		t.Fatalf("small tenant's command scheduled at %v, want first", order)
	}
	for i, id := range order[1:] {
		if id != bulk.id {
			t.Fatalf("pop %d came from tenant %d, want the bulk backlog: %v", i+1, id, order)
		}
	}
	if got := bulk.queued() + small.queued(); got != 0 {
		t.Fatalf("%d items left queued after full drain", got)
	}
}

// TestDRRSchedulerFairShare: two tenants with equal-cost backlogs are
// served in strict alternation — neither can run ahead by more than the
// quantum allows.
func TestDRRSchedulerFairShare(t *testing.T) {
	s := newDRRSched(Config{MaxTenants: 4}.withDefaults())
	a, b := s.tenants[1], s.tenants[2]
	const each = 8
	for i := 0; i < each; i++ {
		if !s.enqueue(a, rpqItem{ts: a, cost: drrQuantum}) || !s.enqueue(b, rpqItem{ts: b, cost: drrQuantum}) {
			t.Fatal("enqueue on open scheduler returned false")
		}
	}
	lead := map[int]int{}
	maxLead := 0
	for i := 0; i < 2*each; i++ {
		it, ok := s.next()
		if !ok {
			t.Fatal("scheduler reported closed with items pending")
		}
		lead[it.ts.id]++
		if d := lead[a.id] - lead[b.id]; d > maxLead {
			maxLead = d
		} else if -d > maxLead {
			maxLead = -d
		}
	}
	if lead[a.id] != each || lead[b.id] != each {
		t.Fatalf("drain mismatch: %v", lead)
	}
	if maxLead > 1 {
		t.Fatalf("one tenant ran %d commands ahead; quantum-cost items must alternate", maxLead)
	}
}

// TestThrottleOverBurstCharge is the regression test for the quota-
// evasion bug: a command whose byte cost exceeds the token-bucket burst
// (one second of rate) used to be charged only one burst, so a tenant
// issuing burst-dwarfing commands back to back — each admitted as soon
// as the bucket refilled to positive, about once a second — sustained
// cost/burst times its provisioned rate. The full cost is charged now
// and the retry-after hint reports the true refill time, so an
// over-burst command is paced at the provisioned byte rate like any
// other and a client honouring the hint is admitted on its next try.
func TestThrottleOverBurstCharge(t *testing.T) {
	const rate = 1 << 20
	s := newDRRSched(Config{MaxTenants: 4, TenantBytesPerSec: rate}.withDefaults())
	ts := s.tenants[1]

	// A command 10x the burst admits off the initial burst allowance
	// (debt model: a positive bucket admits)...
	if d := s.admit(ts, 10*rate); d != 0 {
		t.Fatalf("first command throttled for %v; debt model must admit on a positive bucket", d)
	}
	// ...and is charged in full, sinking the bucket ~9 bursts deep.
	if ts.byteTokens > -8*float64(rate) {
		t.Fatalf("bucket at %v tokens after a 10x-burst command; full cost must be charged", ts.byteTokens)
	}

	// One burst window later — the point where the old clamp had the
	// bucket positive again — the next oversized command must still be
	// throttled, or the tenant runs at 10x its quota.
	ts.lastRefill = ts.lastRefill.Add(-time.Second)
	d := s.admit(ts, 10*rate)
	if d <= 0 {
		t.Fatal("second oversized command admitted one burst window after the first: quota evaded")
	}
	// The hint is honest: the ~8 remaining seconds of debt, far past the
	// one-second cap the hints used to carry.
	if d < 7*time.Second || d > 9*time.Second {
		t.Fatalf("retry-after %v, want the true ~8s refill time", d)
	}

	// A client that sleeps out the hint is admitted on its next attempt:
	// rewind the refill clock by the hinted wait and retry.
	ts.lastRefill = ts.lastRefill.Add(-d - 10*time.Millisecond)
	if d2 := s.admit(ts, 512); d2 != 0 {
		t.Fatalf("command throttled for %v after honouring the %v hint", d2, d)
	}
}
