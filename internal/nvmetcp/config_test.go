package nvmetcp

import "testing"

// TestConfigWithDefaults pins the Config normalization rules, in
// particular the tenant knobs: zero takes the documented default,
// any negative collapses to the canonical -1 sentinel, and the legacy
// QueueDepth seeds the per-tenant bound so old configurations keep an
// equivalent backpressure point.
func TestConfigWithDefaults(t *testing.T) {
	cases := []struct {
		name  string
		in    Config
		check func(t *testing.T, c Config)
	}{
		{
			name: "zero takes defaults",
			in:   Config{},
			check: func(t *testing.T, c Config) {
				if c.Depth != 64 || c.Workers != 4 || c.QueueDepth != 256 {
					t.Fatalf("engine defaults: %+v", c)
				}
				if c.MaxTenants != 8 {
					t.Fatalf("MaxTenants = %d, want 8", c.MaxTenants)
				}
				if c.TenantQueueDepth != 64 {
					t.Fatalf("TenantQueueDepth = %d, want QueueDepth/4 = 64", c.TenantQueueDepth)
				}
				if c.TenantBytesPerSec != -1 || c.TenantIOPS != -1 {
					t.Fatalf("quotas not canonically off: bps=%d iops=%d", c.TenantBytesPerSec, c.TenantIOPS)
				}
			},
		},
		{
			name: "legacy QueueDepth seeds the tenant bound",
			in:   Config{QueueDepth: 1024},
			check: func(t *testing.T, c Config) {
				if c.TenantQueueDepth != 256 {
					t.Fatalf("TenantQueueDepth = %d, want 1024/4 = 256", c.TenantQueueDepth)
				}
			},
		},
		{
			name: "tenant bound floors at 64",
			in:   Config{QueueDepth: 100},
			check: func(t *testing.T, c Config) {
				if c.TenantQueueDepth != 64 {
					t.Fatalf("TenantQueueDepth = %d, want floor 64", c.TenantQueueDepth)
				}
			},
		},
		{
			name: "explicit tenant bound kept",
			in:   Config{TenantQueueDepth: 17},
			check: func(t *testing.T, c Config) {
				if c.TenantQueueDepth != 17 {
					t.Fatalf("TenantQueueDepth = %d, want 17", c.TenantQueueDepth)
				}
			},
		},
		{
			name: "any negative TenantQueueDepth is canonical -1",
			in:   Config{TenantQueueDepth: -7},
			check: func(t *testing.T, c Config) {
				if c.TenantQueueDepth != -1 {
					t.Fatalf("TenantQueueDepth = %d, want -1", c.TenantQueueDepth)
				}
			},
		},
		{
			name: "any negative TenantBytesPerSec is canonical -1",
			in:   Config{TenantBytesPerSec: -1 << 30},
			check: func(t *testing.T, c Config) {
				if c.TenantBytesPerSec != -1 {
					t.Fatalf("TenantBytesPerSec = %d, want -1", c.TenantBytesPerSec)
				}
			},
		},
		{
			name: "any negative TenantIOPS is canonical -1",
			in:   Config{TenantIOPS: -9},
			check: func(t *testing.T, c Config) {
				if c.TenantIOPS != -1 {
					t.Fatalf("TenantIOPS = %d, want -1", c.TenantIOPS)
				}
			},
		},
		{
			name: "positive quotas preserved",
			in:   Config{TenantBytesPerSec: 1 << 20, TenantIOPS: 500},
			check: func(t *testing.T, c Config) {
				if c.TenantBytesPerSec != 1<<20 || c.TenantIOPS != 500 {
					t.Fatalf("quotas rewritten: bps=%d iops=%d", c.TenantBytesPerSec, c.TenantIOPS)
				}
			},
		},
		{
			name: "MaxTenants capped at the protocol id space",
			in:   Config{MaxTenants: 1000},
			check: func(t *testing.T, c Config) {
				if c.MaxTenants != MaxTenantID+1 {
					t.Fatalf("MaxTenants = %d, want %d", c.MaxTenants, MaxTenantID+1)
				}
			},
		},
		{
			name: "negative MaxTenants takes the default",
			in:   Config{MaxTenants: -3},
			check: func(t *testing.T, c Config) {
				if c.MaxTenants != 8 {
					t.Fatalf("MaxTenants = %d, want 8", c.MaxTenants)
				}
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) { tc.check(t, tc.in.withDefaults()) })
	}
}
