package nvmetcp

import (
	"bytes"
	"errors"
	"sync"
	"testing"

	"dlfs/internal/blockdev"
	"dlfs/internal/dataset"
)

func startTarget(t *testing.T, capacity int64, depth int) (*Target, string) {
	t.Helper()
	tgt := NewTarget(blockdev.New(capacity), depth)
	addr, err := tgt.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { tgt.Close() }) //nolint:errcheck
	return tgt, addr
}

func TestHandshake(t *testing.T) {
	_, addr := startTarget(t, 8<<20, 16)
	in, err := Connect(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close() //nolint:errcheck
	if in.Depth() != 16 {
		t.Fatalf("depth = %d", in.Depth())
	}
	if in.Capacity() != 8<<20 {
		t.Fatalf("capacity = %d", in.Capacity())
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	tgt, addr := startTarget(t, 8<<20, 16)
	in, err := Connect(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close() //nolint:errcheck
	data := []byte("remote nvme over tcp")
	if _, err := in.WriteAt(data, 4096); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if _, err := in.ReadAt(got, 4096); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("got %q", got)
	}
	cmds, by := tgt.Served()
	if cmds != 2 || by != int64(2*len(data)) {
		t.Fatalf("served %d cmds %d bytes", cmds, by)
	}
}

func TestOutOfRange(t *testing.T) {
	_, addr := startTarget(t, 4096, 4)
	in, _ := Connect(addr)
	defer in.Close() //nolint:errcheck
	if _, err := in.WriteAt(make([]byte, 100), 4090); !errors.Is(err, ErrRemote) {
		t.Fatalf("write past end: %v", err)
	}
	if _, err := in.ReadAt(make([]byte, 100), 4090); !errors.Is(err, ErrRemote) {
		t.Fatalf("read past end: %v", err)
	}
	// Connection still usable after an error completion.
	if _, err := in.ReadAt(make([]byte, 16), 0); err != nil {
		t.Fatalf("read after error: %v", err)
	}
}

func TestAsyncOutOfOrderCompletion(t *testing.T) {
	_, addr := startTarget(t, 8<<20, 32)
	in, _ := Connect(addr)
	defer in.Close() //nolint:errcheck
	// Seed data.
	for i := 0; i < 8; i++ {
		buf := bytes.Repeat([]byte{byte(i + 1)}, 1024)
		if _, err := in.WriteAt(buf, int64(i)*1024); err != nil {
			t.Fatal(err)
		}
	}
	pendings := make([]*Pending, 8)
	bufs := make([][]byte, 8)
	for i := range pendings {
		bufs[i] = make([]byte, 1024)
		pd, err := in.ReadAsync(bufs[i], int64(i)*1024)
		if err != nil {
			t.Fatal(err)
		}
		pendings[i] = pd
	}
	for i, pd := range pendings {
		if _, err := pd.Wait(); err != nil {
			t.Fatalf("pending %d: %v", i, err)
		}
		for _, b := range bufs[i] {
			if b != byte(i+1) {
				t.Fatalf("pending %d corrupt", i)
			}
		}
	}
}

func TestQueueDepthEnforced(t *testing.T) {
	_, addr := startTarget(t, 8<<20, 2)
	in, _ := Connect(addr)
	defer in.Close() //nolint:errcheck
	p1, err := in.ReadAsync(make([]byte, 8), 0)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := in.ReadAsync(make([]byte, 8), 0)
	if err != nil {
		t.Fatal(err)
	}
	// Third submit may race with completions; retry logic belongs to the
	// caller, so just assert the error type when it fires.
	if _, err := in.ReadAsync(make([]byte, 8), 0); err != nil && !errors.Is(err, ErrDepthLimit) {
		t.Fatalf("unexpected error: %v", err)
	}
	p1.Wait() //nolint:errcheck
	p2.Wait() //nolint:errcheck
}

func TestConcurrentClients(t *testing.T) {
	tgt, addr := startTarget(t, 64<<20, 32)
	ds := dataset.Generate(dataset.Config{Label: "tcp", Seed: 8, NumSamples: 32, Dist: dataset.Fixed(3000)})
	// Upload through one connection.
	up, err := Connect(addr)
	if err != nil {
		t.Fatal(err)
	}
	offs := make([]int64, ds.Len())
	var off int64
	for i := 0; i < ds.Len(); i++ {
		offs[i] = off
		if _, err := up.WriteAt(ds.Content(i), off); err != nil {
			t.Fatal(err)
		}
		off += 3000
	}
	up.Close() //nolint:errcheck

	var wg sync.WaitGroup
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			in, err := Connect(addr)
			if err != nil {
				t.Error(err)
				return
			}
			defer in.Close() //nolint:errcheck
			buf := make([]byte, 3000)
			for i := 0; i < ds.Len(); i++ {
				if _, err := in.ReadAt(buf, offs[i]); err != nil {
					t.Error(err)
					return
				}
				if dataset.ChecksumBytes(buf) != ds.Checksum(i) {
					t.Errorf("sample %d corrupt over TCP", i)
					return
				}
			}
		}()
	}
	wg.Wait()
	cmds, _ := tgt.Served()
	if cmds < int64(32+4*32) {
		t.Fatalf("served %d commands", cmds)
	}
}

func TestSubmitAfterClose(t *testing.T) {
	_, addr := startTarget(t, 1<<20, 4)
	in, _ := Connect(addr)
	in.Close() //nolint:errcheck
	if _, err := in.ReadAt(make([]byte, 8), 0); !errors.Is(err, ErrClosed) {
		t.Fatalf("read after close: %v", err)
	}
	if err := in.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

func TestTargetCloseUnblocksClients(t *testing.T) {
	tgt, addr := startTarget(t, 1<<20, 4)
	in, _ := Connect(addr)
	defer in.Close() //nolint:errcheck
	tgt.Close()      //nolint:errcheck
	if _, err := in.ReadAt(make([]byte, 8), 0); err == nil {
		t.Fatal("read succeeded after target close")
	}
}

func TestCapsuleRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	c := &capsule{cmdID: 42, opcode: opWrite, status: statusOK, offset: 1 << 33, payload: []byte("hi")}
	if err := writeCapsule(&buf, c); err != nil {
		t.Fatal(err)
	}
	got, err := readCapsule(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.cmdID != 42 || got.opcode != opWrite || got.offset != 1<<33 || string(got.payload) != "hi" {
		t.Fatalf("round trip: %+v", got)
	}
}

func TestBadMagicRejected(t *testing.T) {
	bad := make([]byte, capsuleHeaderSize)
	if _, err := readCapsule(bytes.NewReader(bad)); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("bad magic: %v", err)
	}
}
