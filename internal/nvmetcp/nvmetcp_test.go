package nvmetcp

import (
	"bytes"
	"encoding/binary"
	"errors"
	"sync"
	"testing"

	"dlfs/internal/blockdev"
	"dlfs/internal/dataset"
)

func startTarget(t *testing.T, capacity int64, depth int) (*Target, string) {
	t.Helper()
	tgt := NewTarget(blockdev.New(capacity), depth)
	addr, err := tgt.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { tgt.Close() }) //nolint:errcheck
	return tgt, addr
}

func TestHandshake(t *testing.T) {
	_, addr := startTarget(t, 8<<20, 16)
	in, err := Connect(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close() //nolint:errcheck
	if in.Depth() != 16 {
		t.Fatalf("depth = %d", in.Depth())
	}
	if in.Capacity() != 8<<20 {
		t.Fatalf("capacity = %d", in.Capacity())
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	tgt, addr := startTarget(t, 8<<20, 16)
	in, err := Connect(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close() //nolint:errcheck
	data := []byte("remote nvme over tcp")
	if _, err := in.WriteAt(data, 4096); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if _, err := in.ReadAt(got, 4096); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("got %q", got)
	}
	cmds, by := tgt.Served()
	if cmds != 2 || by != int64(2*len(data)) {
		t.Fatalf("served %d cmds %d bytes", cmds, by)
	}
}

func TestOutOfRange(t *testing.T) {
	_, addr := startTarget(t, 4096, 4)
	in, _ := Connect(addr)
	defer in.Close() //nolint:errcheck
	if _, err := in.WriteAt(make([]byte, 100), 4090); !errors.Is(err, ErrRemote) {
		t.Fatalf("write past end: %v", err)
	}
	if _, err := in.ReadAt(make([]byte, 100), 4090); !errors.Is(err, ErrRemote) {
		t.Fatalf("read past end: %v", err)
	}
	// Connection still usable after an error completion.
	if _, err := in.ReadAt(make([]byte, 16), 0); err != nil {
		t.Fatalf("read after error: %v", err)
	}
}

func TestAsyncOutOfOrderCompletion(t *testing.T) {
	_, addr := startTarget(t, 8<<20, 32)
	in, _ := Connect(addr)
	defer in.Close() //nolint:errcheck
	// Seed data.
	for i := 0; i < 8; i++ {
		buf := bytes.Repeat([]byte{byte(i + 1)}, 1024)
		if _, err := in.WriteAt(buf, int64(i)*1024); err != nil {
			t.Fatal(err)
		}
	}
	pendings := make([]*Pending, 8)
	bufs := make([][]byte, 8)
	for i := range pendings {
		bufs[i] = make([]byte, 1024)
		pd, err := in.ReadAsync(bufs[i], int64(i)*1024)
		if err != nil {
			t.Fatal(err)
		}
		pendings[i] = pd
	}
	for i, pd := range pendings {
		if _, err := pd.Wait(); err != nil {
			t.Fatalf("pending %d: %v", i, err)
		}
		for _, b := range bufs[i] {
			if b != byte(i+1) {
				t.Fatalf("pending %d corrupt", i)
			}
		}
	}
}

func TestQueueDepthEnforced(t *testing.T) {
	_, addr := startTarget(t, 8<<20, 2)
	in, _ := Connect(addr)
	defer in.Close() //nolint:errcheck
	p1, err := in.ReadAsync(make([]byte, 8), 0)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := in.ReadAsync(make([]byte, 8), 0)
	if err != nil {
		t.Fatal(err)
	}
	// Third submit may race with completions; retry logic belongs to the
	// caller, so just assert the error type when it fires.
	if _, err := in.ReadAsync(make([]byte, 8), 0); err != nil && !errors.Is(err, ErrDepthLimit) {
		t.Fatalf("unexpected error: %v", err)
	}
	p1.Wait() //nolint:errcheck
	p2.Wait() //nolint:errcheck
}

func TestConcurrentClients(t *testing.T) {
	tgt, addr := startTarget(t, 64<<20, 32)
	ds := dataset.Generate(dataset.Config{Label: "tcp", Seed: 8, NumSamples: 32, Dist: dataset.Fixed(3000)})
	// Upload through one connection.
	up, err := Connect(addr)
	if err != nil {
		t.Fatal(err)
	}
	offs := make([]int64, ds.Len())
	var off int64
	for i := 0; i < ds.Len(); i++ {
		offs[i] = off
		if _, err := up.WriteAt(ds.Content(i), off); err != nil {
			t.Fatal(err)
		}
		off += 3000
	}
	up.Close() //nolint:errcheck

	var wg sync.WaitGroup
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			in, err := Connect(addr)
			if err != nil {
				t.Error(err)
				return
			}
			defer in.Close() //nolint:errcheck
			buf := make([]byte, 3000)
			for i := 0; i < ds.Len(); i++ {
				if _, err := in.ReadAt(buf, offs[i]); err != nil {
					t.Error(err)
					return
				}
				if dataset.ChecksumBytes(buf) != ds.Checksum(i) {
					t.Errorf("sample %d corrupt over TCP", i)
					return
				}
			}
		}()
	}
	wg.Wait()
	cmds, _ := tgt.Served()
	if cmds < int64(32+4*32) {
		t.Fatalf("served %d commands", cmds)
	}
}

func TestSubmitAfterClose(t *testing.T) {
	_, addr := startTarget(t, 1<<20, 4)
	in, _ := Connect(addr)
	in.Close() //nolint:errcheck
	if _, err := in.ReadAt(make([]byte, 8), 0); !errors.Is(err, ErrClosed) {
		t.Fatalf("read after close: %v", err)
	}
	if err := in.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

func TestTargetCloseUnblocksClients(t *testing.T) {
	tgt, addr := startTarget(t, 1<<20, 4)
	in, _ := Connect(addr)
	defer in.Close() //nolint:errcheck
	tgt.Close()      //nolint:errcheck
	if _, err := in.ReadAt(make([]byte, 8), 0); err == nil {
		t.Fatal("read succeeded after target close")
	}
}

// TestReadZeroLengthRejected is the regression test for the strict
// command-length check: a read asking for zero bytes (or a length that
// truncates negative) is a protocol violation and must complete with a
// bad-op status, not an empty success or a huge allocation.
func TestReadZeroLengthRejected(t *testing.T) {
	_, addr := startTarget(t, 1<<20, 8)
	in, err := Connect(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close() //nolint:errcheck
	for _, want := range []uint32{0, 0x80000000, 0xFFFFFFFF} {
		var lenBuf [4]byte
		binary.LittleEndian.PutUint32(lenBuf[:], want)
		pc := getPending()
		id, err := in.submit(&capsule{opcode: opRead, offset: 0, payload: lenBuf[:]}, pc)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := in.await(pc, id); !errors.Is(err, ErrRemote) {
			t.Fatalf("read length %#x: %v, want ErrRemote", want, err)
		}
	}
	// The connection survives the rejected commands.
	if _, err := in.ReadAt(make([]byte, 8), 0); err != nil {
		t.Fatalf("read after rejected lengths: %v", err)
	}
}

// TestTargetServesReadsZeroCopy guards the acceptance bound that the
// default engine performs zero payload memcpys on the read hot path:
// every read byte must be accounted zero-copy, none staged.
func TestTargetServesReadsZeroCopy(t *testing.T) {
	data := patterned(256 << 10)
	tgt, addr := startVecTarget(t, data)
	in, err := Connect(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close() //nolint:errcheck

	buf := make([]byte, 4096)
	for i := 0; i < 16; i++ {
		off := int64(i * 4096)
		if _, err := in.ReadAt(buf, off); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf, data[off:off+4096]) {
			t.Fatalf("zero-copy read %d corrupt", i)
		}
	}
	segs := []Seg{
		{Dst: make([]byte, 1000), Off: 100},
		{Dst: make([]byte, 9000), Off: 128 << 10},
	}
	if _, err := in.ReadVec(segs); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(segs[0].Dst, data[100:1100]) || !bytes.Equal(segs[1].Dst, data[128<<10:128<<10+9000]) {
		t.Fatal("zero-copy vec read corrupt")
	}

	st := tgt.ServerStats()
	wantBytes := int64(16*4096 + 1000 + 9000)
	if st.StagedBytes != 0 {
		t.Fatalf("read hot path staged %d bytes, want 0", st.StagedBytes)
	}
	if st.ZeroCopyBytes != wantBytes {
		t.Fatalf("zero-copy bytes = %d, want %d", st.ZeroCopyBytes, wantBytes)
	}
	if st.Flushes == 0 || st.FlushedCmds < 17 {
		t.Fatalf("flusher stats writevs=%d cmds=%d", st.Flushes, st.FlushedCmds)
	}
}

// TestTargetStagedModeMatches drives the same traffic with zero-copy off
// and checks both the payloads and the staged accounting.
func TestTargetStagedModeMatches(t *testing.T) {
	data := patterned(64 << 10)
	store := blockdev.New(int64(len(data)))
	if _, err := store.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}
	tgt := NewTargetConfig(store, Config{Depth: 16, NoZeroCopy: true})
	addr, err := tgt.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { tgt.Close() }) //nolint:errcheck
	in, err := Connect(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close() //nolint:errcheck
	buf := make([]byte, 8192)
	if _, err := in.ReadAt(buf, 4096); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, data[4096:4096+8192]) {
		t.Fatal("staged read corrupt")
	}
	st := tgt.ServerStats()
	if st.ZeroCopyBytes != 0 || st.StagedBytes != 8192 {
		t.Fatalf("staged mode accounting zero-copy=%d staged=%d", st.ZeroCopyBytes, st.StagedBytes)
	}
}

// TestRestageAfterWriteEpochChange exercises the seqlock fallback
// directly: a completion whose view was captured before an overwrite
// must be re-staged into a consistent copy of the *current* contents.
func TestRestageAfterWriteEpochChange(t *testing.T) {
	store := blockdev.New(1 << 20)
	if _, err := store.WriteAt(bytes.Repeat([]byte{0xAA}, 4096), 0); err != nil {
		t.Fatal(err)
	}
	tgt := NewTargetConfig(store, Config{})
	defer tgt.Close() //nolint:errcheck

	comp := tgt.execute(&capsule{opcode: opRead, payload: []byte{0, 16, 0, 0}}, true) // 4096 bytes at 0
	if comp.view == nil {
		t.Fatal("execute did not build a view")
	}
	if _, err := store.WriteAt(bytes.Repeat([]byte{0xBB}, 4096), 0); err != nil {
		t.Fatal(err)
	}
	if store.WriteEpoch() == comp.epoch {
		t.Fatal("write did not advance the epoch")
	}
	tgt.restage(&comp)
	if comp.view != nil || len(comp.staged) != 4096 {
		t.Fatalf("restage left view=%v staged=%d", comp.view != nil, len(comp.staged))
	}
	for i, b := range comp.staged {
		if b != 0xBB {
			t.Fatalf("restaged byte %d = %#x, want current contents", i, b)
		}
	}
	if tgt.ServerStats().Restaged != 1 {
		t.Fatalf("restaged counter = %d", tgt.ServerStats().Restaged)
	}
}

// TestLegacyEngineRoundTrip keeps the per-command-goroutine baseline
// path working (it anchors BenchmarkTargetServe).
func TestLegacyEngineRoundTrip(t *testing.T) {
	store := blockdev.New(1 << 20)
	tgt := NewTargetConfig(store, Config{Depth: 8, PerCmdGoroutines: true})
	addr, err := tgt.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { tgt.Close() }) //nolint:errcheck
	in, err := Connect(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close() //nolint:errcheck
	data := []byte("legacy data path")
	if _, err := in.WriteAt(data, 512); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if _, err := in.ReadAt(got, 512); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("legacy round trip: %q", got)
	}
	if st := tgt.ServerStats(); st.ZeroCopyBytes != 0 || st.StagedBytes != int64(len(data)) {
		t.Fatalf("legacy accounting zero-copy=%d staged=%d", st.ZeroCopyBytes, st.StagedBytes)
	}
}

func TestCapsuleRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	c := &capsule{cmdID: 42, opcode: opWrite, status: statusOK, offset: 1 << 33, payload: []byte("hi")}
	if err := writeCapsule(&buf, c); err != nil {
		t.Fatal(err)
	}
	got, err := readCapsule(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.cmdID != 42 || got.opcode != opWrite || got.offset != 1<<33 || string(got.payload) != "hi" {
		t.Fatalf("round trip: %+v", got)
	}
}

func TestBadMagicRejected(t *testing.T) {
	bad := make([]byte, capsuleHeaderSize)
	if _, err := readCapsule(bytes.NewReader(bad)); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("bad magic: %v", err)
	}
}
