package nvmetcp

import (
	"bytes"
	"encoding/binary"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"dlfs/internal/blockdev"
	"dlfs/internal/chaos"
	"dlfs/internal/metrics"
)

// startStallServer runs a fake target that completes the hello handshake
// and then swallows every command without replying — the hung-target
// case deadlines and close-notification must handle.
func startStallServer(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	conns := make(map[net.Conn]struct{})
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			mu.Lock()
			conns[c] = struct{}{}
			mu.Unlock()
			go func(c net.Conn) {
				hello, err := readCapsule(c)
				if err != nil || hello.opcode != opHello {
					c.Close() //nolint:errcheck
					return
				}
				writeCapsule(c, &capsule{opcode: opHello, offset: 16, cmdID: 1 << 20}) //nolint:errcheck
				for {
					if _, err := readCapsule(c); err != nil {
						return // swallow commands until the peer goes away
					}
				}
			}(c)
		}
	}()
	t.Cleanup(func() {
		ln.Close() //nolint:errcheck
		mu.Lock()
		for c := range conns {
			c.Close() //nolint:errcheck
		}
		mu.Unlock()
	})
	return ln.Addr().String()
}

func TestHandshakeWrongOpcodeReported(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close() //nolint:errcheck
	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		defer c.Close() //nolint:errcheck
		readCapsule(c)  //nolint:errcheck
		// Reply with a non-hello opcode: the client must name it.
		writeCapsule(c, &capsule{opcode: opRead, offset: 8}) //nolint:errcheck
	}()
	_, err = Connect(ln.Addr().String())
	if !errors.Is(err, ErrHandshake) {
		t.Fatalf("want ErrHandshake, got %v", err)
	}
	want := "unexpected opcode 1"
	if err == nil || !bytes.Contains([]byte(err.Error()), []byte(want)) {
		t.Fatalf("error %q does not report the unexpected opcode", err)
	}
}

func TestConnectBlackholedTargetTimesOut(t *testing.T) {
	// A listener that accepts and never replies: Connect must not hang.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close() //nolint:errcheck
	go func() {
		for {
			if _, err := ln.Accept(); err != nil {
				return
			}
		}
	}()
	start := time.Now()
	_, err = ConnectOptions(ln.Addr().String(), Options{DialTimeout: 100 * time.Millisecond})
	if !errors.Is(err, ErrHandshake) {
		t.Fatalf("want ErrHandshake, got %v", err)
	}
	if !IsRetryable(err) {
		t.Fatalf("handshake timeout should be retryable: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("Connect blocked %v despite 100ms dial timeout", elapsed)
	}
}

func TestRequestTimeout(t *testing.T) {
	addr := startStallServer(t)
	in, err := ConnectOptions(addr, Options{RequestTimeout: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close() //nolint:errcheck
	start := time.Now()
	_, err = in.ReadAt(make([]byte, 64), 0)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("want ErrTimeout, got %v", err)
	}
	if !IsRetryable(err) {
		t.Fatal("timeout must be retryable")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("ReadAt blocked %v despite 50ms deadline", elapsed)
	}
	// The timed-out command's pending entry was withdrawn.
	in.mu.Lock()
	n := len(in.pending)
	in.mu.Unlock()
	if n != 0 {
		t.Fatalf("%d pending entries leaked after timeout", n)
	}
}

func TestCloseMidRequestUnblocksAwait(t *testing.T) {
	// Deadlines disabled: only the close notification can release the
	// waiter. Run with -race to catch ordering bugs between Close and
	// receiveLoop.
	addr := startStallServer(t)
	in, err := ConnectOptions(addr, Options{RequestTimeout: -1})
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() {
		_, err := in.ReadAt(make([]byte, 64), 0)
		errc <- err
	}()
	time.Sleep(20 * time.Millisecond) // let the read reach await
	if err := in.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	select {
	case err := <-errc:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("in-flight read after Close: %v, want ErrClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("in-flight read still blocked 2s after Close")
	}
	// Subsequent submits fail fast too.
	if _, err := in.ReadAt(make([]byte, 8), 0); !errors.Is(err, ErrClosed) {
		t.Fatalf("read after close: %v", err)
	}
}

func TestConnLossFailsPendingTyped(t *testing.T) {
	tgt, addr := startTarget(t, 1<<20, 8)
	in, err := ConnectOptions(addr, Options{RequestTimeout: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close() //nolint:errcheck
	errc := make(chan error, 1)
	go func() {
		_, err := in.ReadAt(make([]byte, 8), 0)
		errc <- err
	}()
	time.Sleep(10 * time.Millisecond)
	tgt.Close() //nolint:errcheck
	select {
	case err := <-errc:
		// The read may have completed before the teardown; if it failed,
		// the failure must be the typed, retryable connection-loss error.
		if err != nil && !errors.Is(err, ErrConnLost) {
			t.Fatalf("pending failed with %v, want ErrConnLost", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("pending read not released by connection loss")
	}
	// Every later command observes the loss as a typed error.
	if _, err := in.ReadAt(make([]byte, 8), 0); !errors.Is(err, ErrConnLost) || !IsRetryable(err) {
		t.Fatalf("read on lost connection: %v", err)
	}
}

func TestIsRetryableClassification(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{nil, false},
		{ErrTimeout, true},
		{ErrConnLost, true},
		{ErrDepthLimit, true},
		{ErrClosed, false},
		{ErrRemote, false},
		{errors.New("unrelated"), false},
	}
	for _, c := range cases {
		if got := IsRetryable(c.err); got != c.want {
			t.Errorf("IsRetryable(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}

func TestReconnectorRecoversFromConnKill(t *testing.T) {
	_, addr := startTarget(t, 8<<20, 16)
	proxy := chaos.NewProxy(addr, chaos.Config{})
	paddr, err := proxy.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close() //nolint:errcheck

	ctr := &metrics.Resilience{}
	rc, err := NewReconnector(paddr,
		Options{DialTimeout: time.Second, RequestTimeout: time.Second},
		RetryPolicy{MaxRetries: 6, BaseDelay: time.Millisecond, MaxDelay: 20 * time.Millisecond},
		ctr)
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close() //nolint:errcheck

	data := []byte("survives a dropped fabric connection")
	if _, err := rc.WriteAt(data, 4096); err != nil {
		t.Fatal(err)
	}
	if proxy.KillActive() == 0 {
		t.Fatal("no live connection to kill")
	}
	got := make([]byte, len(data))
	if _, err := rc.ReadAt(got, 4096); err != nil {
		t.Fatalf("read after connection kill: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("corrupt read after reconnect: %q", got)
	}
	if ctr.Reconnects.Load() < 1 {
		t.Fatalf("reconnects = %d, want >= 1", ctr.Reconnects.Load())
	}
	if ctr.Retries.Load() < 1 {
		t.Fatalf("retries = %d, want >= 1", ctr.Retries.Load())
	}
}

func TestReconnectorRetryBudgetExhausted(t *testing.T) {
	tgt, addr := startTarget(t, 1<<20, 8)
	ctr := &metrics.Resilience{}
	rc, err := NewReconnector(addr,
		Options{DialTimeout: 200 * time.Millisecond, RequestTimeout: 200 * time.Millisecond},
		RetryPolicy{MaxRetries: 3, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond},
		ctr)
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close() //nolint:errcheck
	tgt.Close()      //nolint:errcheck

	start := time.Now()
	_, err = rc.ReadAt(make([]byte, 8), 0)
	if err == nil {
		t.Fatal("read against dead target succeeded")
	}
	if !IsRetryable(err) {
		t.Fatalf("exhausted-budget error should stay classified retryable: %v", err)
	}
	if got := ctr.Retries.Load(); got != 3 {
		t.Fatalf("retries = %d, want exactly the budget of 3", got)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("budget exhaustion took %v", elapsed)
	}
}

func TestReconnectorDoesNotRetryRemoteErrors(t *testing.T) {
	_, addr := startTarget(t, 4096, 8)
	ctr := &metrics.Resilience{}
	rc, err := NewReconnector(addr, Options{}, RetryPolicy{}, ctr)
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close() //nolint:errcheck
	if _, err := rc.ReadAt(make([]byte, 100), 4090); !errors.Is(err, ErrRemote) {
		t.Fatalf("out-of-range read: %v, want ErrRemote", err)
	}
	if got := ctr.Retries.Load(); got != 0 {
		t.Fatalf("remote error consumed %d retries", got)
	}
}

func TestReconnectorBackoffCappedAndJittered(t *testing.T) {
	_, addr := startTarget(t, 1<<20, 8)
	rc, err := NewReconnector(addr, Options{},
		RetryPolicy{BaseDelay: 10 * time.Millisecond, MaxDelay: 80 * time.Millisecond, Seed: 42}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close() //nolint:errcheck
	for attempt := 0; attempt < 12; attempt++ {
		d := rc.backoff(attempt)
		if d <= 0 || d > 80*time.Millisecond {
			t.Fatalf("backoff(%d) = %v outside (0, 80ms]", attempt, d)
		}
	}
	// Same seed replays the same jitter schedule.
	a, _ := NewReconnector(addr, Options{}, RetryPolicy{Seed: 7}, nil)
	b, _ := NewReconnector(addr, Options{}, RetryPolicy{Seed: 7}, nil)
	defer a.Close() //nolint:errcheck
	defer b.Close() //nolint:errcheck
	for i := 0; i < 8; i++ {
		if da, db := a.backoff(i), b.backoff(i); da != db {
			t.Fatalf("seeded backoff diverged at %d: %v vs %v", i, da, db)
		}
	}
}

// TestServeConnMalformedCapsules drives the target with the chaos
// corruption corpus over raw sockets: every malformed stream must drop
// only its own connection, leave the target serving, and bump the
// malformed counter for frames with bad magic or oversized lengths.
func TestServeConnMalformedCapsules(t *testing.T) {
	tgt, addr := startTarget(t, 1<<20, 8)

	sendRaw := func(raw []byte, afterHandshake bool) {
		c, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close() //nolint:errcheck
		if afterHandshake {
			if err := writeCapsule(c, &capsule{opcode: opHello}); err != nil {
				t.Fatal(err)
			}
			if _, err := readCapsule(c); err != nil {
				t.Fatal(err)
			}
		}
		c.Write(raw) //nolint:errcheck
		// Wait for the server to drop us (read returns when it closes).
		c.SetReadDeadline(time.Now().Add(2 * time.Second)) //nolint:errcheck
		buf := make([]byte, 1)
		for {
			if _, err := c.Read(buf); err != nil {
				return
			}
		}
	}

	for _, seed := range corruptSeeds() {
		sendRaw(seed, false) // malformed handshake
		sendRaw(seed, true)  // malformed command after a clean handshake
	}

	// Bad-magic and oversized frames are counted; truncated frames are
	// indistinguishable from teardown mid-frame and only drop the conn.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, malformed, _ := tgt.ConnStats(); malformed >= 4 {
			break
		}
		if time.Now().After(deadline) {
			_, malformed, _ := tgt.ConnStats()
			t.Fatalf("malformed = %d, want >= 4", malformed)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The target survived all of it: a clean client still works.
	in, err := Connect(addr)
	if err != nil {
		t.Fatalf("target died after malformed streams: %v", err)
	}
	defer in.Close() //nolint:errcheck
	if _, err := in.WriteAt([]byte("still alive"), 0); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 11)
	if _, err := in.ReadAt(got, 0); err != nil || string(got) != "still alive" {
		t.Fatalf("read after chaos: %q, %v", got, err)
	}
}

// TestWriteErrorAbortsPending reproduces the lost-write-error bug: a
// client that submits a burst of large reads and then vanishes without
// consuming responses must not leave sibling commands executing silently
// against the dead connection. The flusher's write deadline trips, the
// connection is aborted, and the undeliverable completions are counted.
func TestWriteErrorAbortsPending(t *testing.T) {
	store := blockdev.New(64 << 20)
	if _, err := store.WriteAt(make([]byte, 32<<20), 0); err != nil {
		t.Fatal(err)
	}
	tgt := NewTargetConfig(store, Config{Depth: 64, WriteTimeout: 150 * time.Millisecond})
	addr, err := tgt.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { tgt.Close() }) //nolint:errcheck

	// Raw client: handshake, then post reads big enough to overrun the
	// socket buffers while never reading a single response byte.
	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close() //nolint:errcheck
	if err := writeCapsule(c, &capsule{opcode: opHello}); err != nil {
		t.Fatal(err)
	}
	if _, err := readCapsule(c); err != nil {
		t.Fatal(err)
	}
	var lenBuf [4]byte
	binary.LittleEndian.PutUint32(lenBuf[:], 1<<20)
	for i := 0; i < 64; i++ {
		if err := writeCapsule(c, &capsule{cmdID: uint64(i), opcode: opRead, offset: uint64(i) << 20, payload: lenBuf[:]}); err != nil {
			break // submission path may already be backpressured; fine
		}
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, _, aborted := tgt.ConnStats(); aborted > 0 {
			break
		}
		if time.Now().After(deadline) {
			_, _, aborted := tgt.ConnStats()
			t.Fatalf("aborted = %d after write stall, want > 0", aborted)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The target survived the abort: a clean client still round-trips,
	// and the worker pool is not wedged.
	in, err := Connect(addr)
	if err != nil {
		t.Fatalf("connect after aborted conn: %v", err)
	}
	defer in.Close() //nolint:errcheck
	if _, err := in.ReadAt(make([]byte, 4096), 0); err != nil {
		t.Fatalf("read after aborted conn: %v", err)
	}
}

// TestTargetCloseRacesVectoredReads closes the target while a stream of
// vectored reads is in flight across several connections: every pending
// command must resolve (success or typed error), Close must return, and
// under -race the RPQ workers, flushers and readers must tear down
// cleanly.
func TestTargetCloseRacesVectoredReads(t *testing.T) {
	data := make([]byte, 8<<20)
	for i := range data {
		data[i] = byte(i * 13)
	}
	store := blockdev.New(int64(len(data)))
	if _, err := store.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}
	tgt := NewTargetConfig(store, Config{Depth: 32, Workers: 4, QueueDepth: 64})
	addr, err := tgt.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 3; g++ {
		in, err := Connect(addr)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(in *Initiator, g int) {
			defer wg.Done()
			defer in.Close() //nolint:errcheck
			bufs := make([]byte, 3*4096)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				base := int64(((g*1000 + i) * 4096) % (7 << 20))
				segs := []Seg{
					{Dst: bufs[:4096], Off: base},
					{Dst: bufs[4096:8192], Off: base + 4096},
					{Dst: bufs[8192:], Off: base + 8192},
				}
				if _, err := in.ReadVec(segs); err != nil {
					return // teardown error is the expected exit
				}
				if !bytes.Equal(bufs[:4096], data[base:base+4096]) {
					t.Errorf("reader %d corrupt at %d", g, base)
					return
				}
			}
		}(in, g)
	}

	time.Sleep(50 * time.Millisecond) // let reads pile onto the RPQ
	done := make(chan error, 1)
	go func() { done <- tgt.Close() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("close: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Target.Close did not drain the engine")
	}
	close(stop)
	wg.Wait()
}

// TestWorkerPoolDrainsCleanly hammers a small worker pool through a full
// load/close cycle twice, checking the engine restarts nothing and drops
// nothing: all served commands are accounted and a second Close is a
// no-op.
func TestWorkerPoolDrainsCleanly(t *testing.T) {
	store := blockdev.New(4 << 20)
	if _, err := store.WriteAt(make([]byte, 4<<20), 0); err != nil {
		t.Fatal(err)
	}
	tgt := NewTargetConfig(store, Config{Depth: 16, Workers: 2, QueueDepth: 8})
	addr, err := tgt.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	const clients, perClient = 4, 200
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			in, err := Connect(addr)
			if err != nil {
				t.Error(err)
				return
			}
			defer in.Close() //nolint:errcheck
			buf := make([]byte, 2048)
			for i := 0; i < perClient; i++ {
				if _, err := in.ReadAt(buf, int64((g*perClient+i)*2048)%(3<<20)); err != nil {
					t.Errorf("client %d read %d: %v", g, i, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	cmds, _ := tgt.Served()
	if cmds < clients*perClient {
		t.Fatalf("served %d commands, want >= %d", cmds, clients*perClient)
	}
	st := tgt.ServerStats()
	if st.FlushedCmds < clients*perClient {
		t.Fatalf("flushed %d completions, want >= %d", st.FlushedCmds, clients*perClient)
	}
	if _, _, aborted := tgt.ConnStats(); aborted != 0 {
		t.Fatalf("clean run aborted %d completions", aborted)
	}
	if err := tgt.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if err := tgt.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

// TestServeConnOversizedReadLength exercises the command-level length
// check (a read asking for more than maxPayload) rather than the frame
// parser: it must fail with a range status, not kill the target.
func TestServeConnOversizedReadLength(t *testing.T) {
	_, addr := startTarget(t, 1<<20, 8)
	in, err := Connect(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close() //nolint:errcheck
	var lenBuf [4]byte
	binary.LittleEndian.PutUint32(lenBuf[:], uint32(maxPayload+1))
	pc := getPending()
	id, err := in.submit(&capsule{opcode: opRead, offset: 0, payload: lenBuf[:]}, pc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := in.await(pc, id); !errors.Is(err, ErrRemote) {
		t.Fatalf("oversized read length: %v, want ErrRemote", err)
	}
}
