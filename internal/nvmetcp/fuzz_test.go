package nvmetcp

import (
	"bytes"
	"testing"
)

// FuzzReadCapsule throws arbitrary bytes at the frame parser: it must
// never panic and never allocate beyond the payload bound.
func FuzzReadCapsule(f *testing.F) {
	var seed bytes.Buffer
	writeCapsule(&seed, &capsule{cmdID: 7, opcode: opRead, offset: 4096, payload: []byte{16, 0, 0, 0}}) //nolint:errcheck
	f.Add(seed.Bytes())
	f.Add([]byte{})
	f.Add(make([]byte, capsuleHeaderSize))
	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := readCapsule(bytes.NewReader(data))
		if err != nil {
			return
		}
		// A successfully parsed capsule must round-trip.
		var buf bytes.Buffer
		if err := writeCapsule(&buf, c); err != nil {
			t.Fatal(err)
		}
		again, err := readCapsule(&buf)
		if err != nil || again.cmdID != c.cmdID || !bytes.Equal(again.payload, c.payload) {
			t.Fatalf("round trip diverged: %v", err)
		}
	})
}
