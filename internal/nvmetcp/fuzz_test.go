package nvmetcp

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// corruptSeeds builds the chaos-style corruption corpus: valid frames
// with a byte flipped in the magic, an oversized length field, a
// truncated payload, and a frame cut mid-header — the shapes a faulty
// fabric actually produces (see internal/chaos).
func corruptSeeds() [][]byte {
	var good bytes.Buffer
	writeCapsule(&good, &capsule{cmdID: 9, opcode: opWrite, offset: 512, payload: []byte("payload bytes")}) //nolint:errcheck

	flipped := append([]byte(nil), good.Bytes()...)
	flipped[0] ^= 0x80 // corrupt the magic

	oversized := append([]byte(nil), good.Bytes()...)
	binary.LittleEndian.PutUint32(oversized[22:26], maxPayload+1)

	truncated := append([]byte(nil), good.Bytes()...)
	truncated = truncated[:len(truncated)-4] // payload cut mid-capsule

	midHeader := append([]byte(nil), good.Bytes()[:capsuleHeaderSize/2]...)

	hugeLen := append([]byte(nil), good.Bytes()[:capsuleHeaderSize]...)
	binary.LittleEndian.PutUint32(hugeLen[22:26], 0xFFFFFFFF)

	return [][]byte{flipped, oversized, truncated, midHeader, hugeLen}
}

// FuzzReadCapsule throws arbitrary bytes at the frame parser: it must
// never panic and never allocate beyond the payload bound.
func FuzzReadCapsule(f *testing.F) {
	var seed bytes.Buffer
	writeCapsule(&seed, &capsule{cmdID: 7, opcode: opRead, offset: 4096, payload: []byte{16, 0, 0, 0}}) //nolint:errcheck
	f.Add(seed.Bytes())
	f.Add([]byte{})
	f.Add(make([]byte, capsuleHeaderSize))
	for _, s := range corruptSeeds() {
		f.Add(s)
	}
	// Command-level length pathologies (regression corpus for readLen):
	// a read asking for zero bytes and one whose length truncates
	// negative through a 32-bit int.
	var zeroRead, negRead bytes.Buffer
	writeCapsule(&zeroRead, &capsule{cmdID: 11, opcode: opRead, offset: 4096, payload: []byte{0, 0, 0, 0}})   //nolint:errcheck
	writeCapsule(&negRead, &capsule{cmdID: 12, opcode: opRead, offset: 4096, payload: []byte{0, 0, 0, 0x80}}) //nolint:errcheck
	f.Add(zeroRead.Bytes())
	f.Add(negRead.Bytes())
	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := readCapsule(bytes.NewReader(data))
		if err != nil {
			return
		}
		// A successfully parsed capsule must round-trip.
		var buf bytes.Buffer
		if err := writeCapsule(&buf, c); err != nil {
			t.Fatal(err)
		}
		again, err := readCapsule(&buf)
		if err != nil || again.cmdID != c.cmdID || !bytes.Equal(again.payload, c.payload) {
			t.Fatalf("round trip diverged: %v", err)
		}
	})
}
