package nvmetcp

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// corruptSeeds builds the chaos-style corruption corpus: valid frames
// with a byte flipped in the magic, an oversized length field, a
// truncated payload, and a frame cut mid-header — the shapes a faulty
// fabric actually produces (see internal/chaos).
func corruptSeeds() [][]byte {
	var good bytes.Buffer
	writeCapsule(&good, &capsule{cmdID: 9, opcode: opWrite, offset: 512, payload: []byte("payload bytes")}) //nolint:errcheck

	flipped := append([]byte(nil), good.Bytes()...)
	flipped[0] ^= 0x80 // corrupt the magic

	oversized := append([]byte(nil), good.Bytes()...)
	binary.LittleEndian.PutUint32(oversized[22:26], maxPayload+1)

	truncated := append([]byte(nil), good.Bytes()...)
	truncated = truncated[:len(truncated)-4] // payload cut mid-capsule

	midHeader := append([]byte(nil), good.Bytes()[:capsuleHeaderSize/2]...)

	hugeLen := append([]byte(nil), good.Bytes()[:capsuleHeaderSize]...)
	binary.LittleEndian.PutUint32(hugeLen[22:26], 0xFFFFFFFF)

	return [][]byte{flipped, oversized, truncated, midHeader, hugeLen}
}

// FuzzReadCapsule throws arbitrary bytes at the frame parser: it must
// never panic and never allocate beyond the payload bound.
func FuzzReadCapsule(f *testing.F) {
	var seed bytes.Buffer
	writeCapsule(&seed, &capsule{cmdID: 7, opcode: opRead, offset: 4096, payload: []byte{16, 0, 0, 0}}) //nolint:errcheck
	f.Add(seed.Bytes())
	f.Add([]byte{})
	f.Add(make([]byte, capsuleHeaderSize))
	for _, s := range corruptSeeds() {
		f.Add(s)
	}
	// Command-level length pathologies (regression corpus for readLen):
	// a read asking for zero bytes and one whose length truncates
	// negative through a 32-bit int.
	var zeroRead, negRead bytes.Buffer
	writeCapsule(&zeroRead, &capsule{cmdID: 11, opcode: opRead, offset: 4096, payload: []byte{0, 0, 0, 0}})   //nolint:errcheck
	writeCapsule(&negRead, &capsule{cmdID: 12, opcode: opRead, offset: 4096, payload: []byte{0, 0, 0, 0x80}}) //nolint:errcheck
	f.Add(zeroRead.Bytes())
	f.Add(negRead.Bytes())
	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := readCapsule(bytes.NewReader(data))
		if err != nil {
			return
		}
		// A successfully parsed capsule must round-trip.
		var buf bytes.Buffer
		if err := writeCapsule(&buf, c); err != nil {
			t.Fatal(err)
		}
		again, err := readCapsule(&buf)
		if err != nil || again.cmdID != c.cmdID || !bytes.Equal(again.payload, c.payload) {
			t.Fatalf("round trip diverged: %v", err)
		}
	})
}

// FuzzSampleListFrame throws arbitrary bytes at the opReadSamples
// request decoder: it must never panic, never allocate past the
// descriptor cap, and anything it accepts must satisfy every invariant
// it promises (valid transform, bounded count, positive lengths,
// response under the payload cap) and re-encode byte-identically.
func FuzzSampleListFrame(f *testing.F) {
	good := make([]byte, sampleHdrSize+2*sampleDescSize)
	encodeSampleList(good, TransformCRC32C, []vecSeg{{off: 0, n: 4096}, {off: 1 << 20, n: 40 << 10}})
	f.Add(good)
	f.Add([]byte{})
	f.Add([]byte{TransformNone, 1, 0, 0, 0})          // count promises a desc the frame lacks
	f.Add(append([]byte(nil), good[:len(good)-3]...)) // truncated mid-descriptor

	overCount := append([]byte(nil), good...)
	binary.LittleEndian.PutUint32(overCount[1:5], 0xFFFFFFFF) // count would wrap the alloc
	f.Add(overCount)

	zeroLen := append([]byte(nil), good...)
	binary.LittleEndian.PutUint32(zeroLen[sampleHdrSize+8:], 0) // zero-length record
	f.Add(zeroLen)

	negLen := append([]byte(nil), good...)
	binary.LittleEndian.PutUint32(negLen[sampleHdrSize+8:], 0x80000000) // int32-negative record
	f.Add(negLen)

	badXform := append([]byte(nil), good...)
	badXform[0] = numTransforms
	f.Add(badXform)

	huge := make([]byte, sampleHdrSize+2*sampleDescSize)
	encodeSampleList(huge, TransformNone, []vecSeg{
		{off: 0, n: uint32(maxPayload/2 + 1)}, {off: 0, n: uint32(maxPayload/2 + 1)},
	}) // total past the payload cap
	f.Add(huge)

	f.Fuzz(func(t *testing.T, data []byte) {
		xform, segs, total, err := decodeSampleList(data)
		if err != nil {
			return
		}
		if !TransformValid(xform) {
			t.Fatalf("accepted transform %d", xform)
		}
		if len(segs) == 0 || len(segs) > MaxSampleDescs {
			t.Fatalf("accepted %d descriptors", len(segs))
		}
		sum := 0
		for i, s := range segs {
			if s.n == 0 || int32(s.n) < 0 {
				t.Fatalf("accepted record %d length %d", i, int32(s.n))
			}
			sum += int(s.n)
		}
		if sum != total || total+4*len(segs) > maxPayload {
			t.Fatalf("total %d (sum %d) escapes the payload cap", total, sum)
		}
		// Accepted frames must re-encode byte-identically.
		again := make([]byte, sampleHdrSize+len(segs)*sampleDescSize)
		if n := encodeSampleList(again, xform, segs); !bytes.Equal(again[:n], data) {
			t.Fatal("re-encode diverged from accepted frame")
		}
	})
}

// FuzzTenantFrame throws arbitrary request frames at the target's
// tenant-ingestion path — the classifier and the cost estimator that
// run on every command before any queue or quota state is touched.
// Invariants: both are cap-enforced before allocation and never panic
// on malformed payloads; classifyTenant accepts exactly the ids the
// target provisions (and nothing carrying the reserved high bits); and
// cmdCost always lands in [1, maxPayload] so a corrupt descriptor block
// cannot mint a zero- or negative-cost command that slips past the DRR
// accounting, nor an unbounded one that stalls its tenant forever.
func FuzzTenantFrame(f *testing.F) {
	// A legacy frame (tenant slot zero), every boundary id, the reserved
	// high bits, and tenant ids riding each opcode's payload shape.
	mk := func(tenant byte, opcode byte, payload []byte) []byte {
		var b bytes.Buffer
		writeCapsuleHdr(&b, &capsule{cmdID: 21, opcode: opcode, status: tenant, offset: 0, payload: payload}, make([]byte, capsuleHeaderSize)) //nolint:errcheck
		return b.Bytes()
	}
	f.Add(mk(0, opRead, []byte{0, 16, 0, 0}))
	f.Add(mk(1, opWrite, []byte("tenant one write")))
	f.Add(mk(MaxTenantID, opRead, []byte{0, 16, 0, 0}))
	f.Add(mk(MaxTenantID+1, opRead, []byte{0, 16, 0, 0}))
	f.Add(mk(0x80, opRead, []byte{0, 16, 0, 0})) // reserved high bit set
	f.Add(mk(0xFF, opWrite, nil))
	vec := make([]byte, 4+2*vecSegSize)
	binary.LittleEndian.PutUint32(vec[0:4], 2)
	binary.LittleEndian.PutUint32(vec[4+8:], 4096)
	binary.LittleEndian.PutUint32(vec[4+vecSegSize+8:], 1<<20)
	f.Add(mk(3, opReadVec, vec))
	smp := make([]byte, sampleHdrSize+sampleDescSize)
	encodeSampleList(smp, TransformNone, []vecSeg{{off: 0, n: 40 << 10}})
	f.Add(mk(5, opReadSamples, smp))
	// Malformed descriptor blocks: count promising more than the frame
	// holds, and a count that would overflow the cost loop.
	badVec := append([]byte(nil), vec...)
	binary.LittleEndian.PutUint32(badVec[0:4], 0xFFFFFFFF)
	f.Add(mk(2, opReadVec, badVec))
	f.Add(mk(2, opReadVec, vec[:7]))
	for _, s := range corruptSeeds() {
		f.Add(s)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := readCapsule(bytes.NewReader(data))
		if err != nil {
			return
		}
		for _, maxTenants := range []int{1, 8, MaxTenantID + 1} {
			st := classifyTenant(req.status, maxTenants)
			inRange := req.status <= MaxTenantID && int(req.status) < maxTenants
			if inRange && st != statusOK {
				t.Fatalf("tenant %d rejected by a %d-tenant target", req.status, maxTenants)
			}
			if !inRange && st != statusTenant {
				t.Fatalf("tenant %d accepted by a %d-tenant target (status %d)", req.status, maxTenants, st)
			}
		}
		// Reserved high bits are never silently truncated into another
		// tenant's id space.
		if req.status > MaxTenantID && classifyTenant(req.status, MaxTenantID+1) != statusTenant {
			t.Fatalf("reserved-bit tenant %#x accepted", req.status)
		}
		cost := cmdCost(req)
		if cost < 1 || cost > maxPayload {
			t.Fatalf("cmdCost(%d, %d payload bytes) = %d escapes [1, maxPayload]", req.opcode, len(req.payload), cost)
		}
	})
}

// FuzzWriteFrame throws arbitrary opWriteVec request frames at the
// gathered-write decoder — the caps-before-alloc gate between the wire
// and the store's write path. Invariants: the decoder never panics and
// never allocates descriptors past maxVecSegs; anything it accepts has a
// positive in-cap count, nonzero int32-positive extent lengths, a
// descriptor sum exactly matching the trailing data bytes, and
// re-encodes byte-identically; and reserved tenant bits on the frame are
// still rejected before any write-side state is touched.
func FuzzWriteFrame(f *testing.F) {
	mk := func(tenant byte, payload []byte) []byte {
		var b bytes.Buffer
		writeCapsuleHdr(&b, &capsule{cmdID: 33, opcode: opWriteVec, status: tenant, offset: 0, payload: payload}, make([]byte, capsuleHeaderSize)) //nolint:errcheck
		return b.Bytes()
	}
	vecPayload := func(segs []vecSeg, data []byte) []byte {
		p := make([]byte, writeVecHdrSize+len(segs)*vecSegSize+len(data))
		n := encodeWriteVec(p, segs)
		copy(p[n:], data)
		return p
	}

	good := vecPayload([]vecSeg{{off: 0, n: 512}, {off: 1 << 20, n: 512}}, make([]byte, 1024))
	f.Add(mk(0, good))
	f.Add(mk(MaxTenantID, good))
	f.Add(mk(0x80, good)) // reserved tenant bit set
	f.Add(mk(0xFF, good))

	zeroLen := vecPayload([]vecSeg{{off: 0, n: 0}}, nil) // zero-length extent
	f.Add(mk(1, zeroLen))
	negLen := vecPayload([]vecSeg{{off: 0, n: 0x80000000}}, nil) // int32-negative extent
	f.Add(mk(1, negLen))

	overCount := append([]byte(nil), good...) // count overflows the descriptor cap
	binary.LittleEndian.PutUint32(overCount[0:4], 0xFFFFFFFF)
	f.Add(mk(1, overCount))
	zeroCount := append([]byte(nil), good...)
	binary.LittleEndian.PutUint32(zeroCount[0:4], 0)
	f.Add(mk(1, zeroCount))

	short := vecPayload([]vecSeg{{off: 0, n: 1024}}, make([]byte, 512)) // descriptors promise more data than shipped
	f.Add(mk(1, short))
	long := vecPayload([]vecSeg{{off: 0, n: 512}}, make([]byte, 1024)) // trailing bytes no descriptor claims
	f.Add(mk(1, long))
	f.Add(mk(1, good[:writeVecHdrSize+vecSegSize/2])) // truncated mid-descriptor
	f.Add(mk(1, nil))
	for _, s := range corruptSeeds() {
		f.Add(s)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := readCapsule(bytes.NewReader(data))
		if err != nil {
			return
		}
		if req.status > MaxTenantID && classifyTenant(req.status, MaxTenantID+1) != statusTenant {
			t.Fatalf("reserved-bit tenant %#x reached the write path", req.status)
		}
		if req.opcode != opWriteVec {
			return
		}
		segs, body, derr := decodeWriteVec(req.payload)
		if derr != nil {
			return
		}
		if len(segs) == 0 || len(segs) > maxVecSegs {
			t.Fatalf("accepted %d descriptors", len(segs))
		}
		sum := 0
		for i, s := range segs {
			if s.n == 0 || int32(s.n) < 0 {
				t.Fatalf("accepted extent %d length %d", i, int32(s.n))
			}
			sum += int(s.n)
		}
		if sum != len(body) {
			t.Fatalf("descriptor sum %d != %d gathered bytes", sum, len(body))
		}
		// Accepted frames must re-encode byte-identically.
		again := make([]byte, writeVecHdrSize+len(segs)*vecSegSize)
		if n := encodeWriteVec(again, segs); !bytes.Equal(again[:n], req.payload[:n]) {
			t.Fatal("re-encode diverged from accepted frame")
		}
	})
}
