package nvmetcp

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"dlfs/internal/metrics"
)

// RetryPolicy bounds the Reconnector's recovery behaviour. Zero values
// take defaults.
type RetryPolicy struct {
	MaxRetries int           // retryable re-attempts beyond the first try (default 4)
	BaseDelay  time.Duration // first backoff step (default 5ms)
	MaxDelay   time.Duration // backoff cap (default 500ms)
	Seed       int64         // jitter source; a fixed seed replays the same schedule
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxRetries <= 0 {
		p.MaxRetries = 4
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 5 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 500 * time.Millisecond
	}
	return p
}

// Reconnector wraps one target address with transparent recovery: when a
// command fails with a retryable transport error (timeout, lost
// connection, dial failure) it retires the queue pair, re-dials with
// capped exponential backoff plus jitter, and re-issues the command, up
// to a bounded retry budget. Non-retryable errors (remote status errors,
// deliberate close) are returned immediately. It is safe for concurrent
// use; a single re-dial serves all waiting operations.
type Reconnector struct {
	addr     string
	opt      Options
	policy   RetryPolicy
	counters *metrics.Resilience

	mu     sync.Mutex
	in     *Initiator
	rng    *rand.Rand
	closed bool

	depth    int
	capacity int64
}

// NewReconnector dials addr eagerly (so a misconfigured address fails
// fast) and returns the wrapper. A nil counters gets a private set;
// passing a shared *metrics.Resilience aggregates stats across targets.
func NewReconnector(addr string, opt Options, policy RetryPolicy, counters *metrics.Resilience) (*Reconnector, error) {
	if counters == nil {
		counters = &metrics.Resilience{}
	}
	policy = policy.withDefaults()
	r := &Reconnector{
		addr:     addr,
		opt:      opt,
		policy:   policy,
		counters: counters,
		rng:      rand.New(rand.NewSource(policy.Seed ^ 0x5DEECE66D)),
	}
	in, err := ConnectOptions(addr, opt)
	if err != nil {
		return nil, err
	}
	r.in = in
	r.depth = in.Depth()
	r.capacity = in.Capacity()
	return r, nil
}

// Addr returns the target address.
func (r *Reconnector) Addr() string { return r.addr }

// Depth returns the queue depth negotiated at first connect.
func (r *Reconnector) Depth() int { return r.depth }

// Capacity returns the capacity negotiated at first connect.
func (r *Reconnector) Capacity() int64 { return r.capacity }

// Counters exposes the shared resilience counters.
func (r *Reconnector) Counters() *metrics.Resilience { return r.counters }

// initiator returns the live queue pair, re-dialing if the previous one
// was retired.
func (r *Reconnector) initiator() (*Initiator, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil, ErrClosed
	}
	if r.in != nil {
		return r.in, nil
	}
	in, err := ConnectOptions(r.addr, r.opt)
	if err != nil {
		return nil, err
	}
	r.counters.Reconnects.Add(1)
	r.in = in
	return in, nil
}

// invalidate retires in if it is still the current queue pair. The
// failed initiator is aborted (not Closed) so concurrent waiters on it
// observe a retryable ErrConnLost rather than ErrClosed.
func (r *Reconnector) invalidate(in *Initiator) {
	if in == nil {
		return
	}
	r.mu.Lock()
	current := r.in == in
	if current {
		r.in = nil
	}
	r.mu.Unlock()
	if current {
		in.abort()
	}
}

// backoff computes the delay before retry number attempt (0-based):
// BaseDelay doubled per attempt, capped at MaxDelay, scaled by a jitter
// factor in [0.5, 1.0) drawn from the seeded source.
func (r *Reconnector) backoff(attempt int) time.Duration {
	d := r.policy.BaseDelay
	for i := 0; i < attempt && d < r.policy.MaxDelay; i++ {
		d *= 2
	}
	if d > r.policy.MaxDelay {
		d = r.policy.MaxDelay
	}
	r.mu.Lock()
	j := 0.5 + 0.5*r.rng.Float64()
	r.mu.Unlock()
	return time.Duration(float64(d) * j)
}

// noteFailure records counters for err and retires the queue pair when
// the error indicates the connection itself is suspect — everything
// retryable except pure queue-depth pressure and tenant throttling,
// which are healthy connections saying "not now".
func (r *Reconnector) noteFailure(in *Initiator, err error) {
	if errors.Is(err, ErrTimeout) {
		r.counters.Timeouts.Add(1)
	}
	if errors.Is(err, ErrThrottled) {
		r.counters.Throttles.Add(1)
	}
	if !errors.Is(err, ErrDepthLimit) && !errors.Is(err, ErrThrottled) {
		r.invalidate(in)
	}
}

// do runs op against the current queue pair, retrying per policy. A
// throttled command waits out the larger of the backoff step and the
// target's retry-after hint, so the retry lands after the tenant's
// token bucket has refilled instead of burning attempts against it.
func (r *Reconnector) do(op func(*Initiator) error) error {
	for attempt := 0; ; attempt++ {
		in, err := r.initiator()
		if err == nil {
			err = op(in)
			if err == nil {
				return nil
			}
		}
		if !IsRetryable(err) {
			return err
		}
		if attempt >= r.policy.MaxRetries {
			return fmt.Errorf("nvmetcp: %s: %d attempts exhausted: %w", r.addr, attempt+1, err)
		}
		r.noteFailure(in, err)
		r.counters.Retries.Add(1)
		d := r.backoff(attempt)
		var te *ThrottledError
		if errors.As(err, &te) && te.RetryAfter > d {
			d = te.RetryAfter
		}
		time.Sleep(d)
	}
}

// ReadAt reads len(p) bytes at off, retrying per policy.
func (r *Reconnector) ReadAt(p []byte, off int64) (int, error) {
	var n int
	err := r.do(func(in *Initiator) error {
		var e error
		n, e = in.ReadAt(p, off)
		return e
	})
	return n, err
}

// WriteAt writes p at off, retrying per policy. Writes are idempotent at
// fixed offsets, so re-issuing after a lost connection is safe.
func (r *Reconnector) WriteAt(p []byte, off int64) (int, error) {
	var n int
	err := r.do(func(in *Initiator) error {
		var e error
		n, e = in.WriteAt(p, off)
		return e
	})
	return n, err
}

// WriteVec performs a synchronous gathered write, retrying per policy.
// Like WriteAt, every extent lands at a fixed offset, so re-issuing the
// whole vector after a lost connection is idempotent. An
// *UnsupportedOpError is not retryable and returns immediately — the
// caller's downgrade signal to per-extent WriteAt.
func (r *Reconnector) WriteVec(segs []WSeg) (int, error) {
	var n int
	err := r.do(func(in *Initiator) error {
		var e error
		n, e = in.WriteVec(segs)
		return e
	})
	return n, err
}

// Flush issues a durability barrier, retrying per policy. A barrier
// re-issued on a fresh connection still covers the caller's prior
// writes: writes that completed before Flush was called have already
// been applied by the target (their completions prove it), so the
// fresh connection's barrier — trivially past its own zero admitted
// writes — syncs the store they landed in.
func (r *Reconnector) Flush() error {
	return r.do(func(in *Initiator) error { return in.Flush() })
}

// ReadVec performs a synchronous vectored read, retrying per policy. The
// whole vector is re-issued on a fresh connection after a retryable
// failure; segment reads are stateless, so re-landing bytes in the same
// destination buffers is safe.
func (r *Reconnector) ReadVec(segs []Seg) (int, error) {
	var n int
	err := r.do(func(in *Initiator) error {
		var e error
		n, e = in.ReadVec(segs)
		return e
	})
	return n, err
}

// ReadSamples performs a synchronous server-assembled read
// (opReadSamples), retrying per policy. Record reads are stateless, so
// re-landing transformed output in the same destinations is safe. An
// *UnsupportedOpError is not retryable and returns immediately — the
// caller's downgrade signal.
func (r *Reconnector) ReadSamples(xform byte, segs []SampleSeg, lens []int) (int, error) {
	var n int
	err := r.do(func(in *Initiator) error {
		var e error
		n, e = in.ReadSamples(xform, segs, lens)
		return e
	})
	return n, err
}

// RePending is an in-flight asynchronous read through a Reconnector.
// Wait falls back to the retrying synchronous path when the pipelined
// submission failed or its completion is lost.
type RePending struct {
	r     *Reconnector
	in    *Initiator
	pd    *Pending
	dst   []byte
	off   int64
	segs  []Seg       // non-nil for vectored reads
	smp   []SampleSeg // non-nil for server-assembled reads
	lens  []int
	xform byte
	wsrc  []byte // non-nil for single writes (recovery re-sends from it)
	wsegs []WSeg // non-nil for gathered writes
}

// ReadAsync submits a pipelined read. A retryable submission failure is
// deferred: the returned RePending recovers in Wait via the retrying
// ReadAt. Non-retryable failures return immediately.
func (r *Reconnector) ReadAsync(dst []byte, off int64) (*RePending, error) {
	rp := &RePending{r: r, dst: dst, off: off}
	return r.startAsync(rp, func(in *Initiator) (*Pending, error) { return in.ReadAsync(dst, off) })
}

// ReadVecAsync submits a pipelined vectored read covering every segment.
// Retryable failures recover in Wait via the reconnecting ReadVec.
func (r *Reconnector) ReadVecAsync(segs []Seg) (*RePending, error) {
	rp := &RePending{r: r, segs: segs}
	return r.startAsync(rp, func(in *Initiator) (*Pending, error) { return in.ReadVecAsync(segs) })
}

// ReadSamplesAsync submits a pipelined server-assembled read. Retryable
// failures recover in Wait via the reconnecting ReadSamples.
func (r *Reconnector) ReadSamplesAsync(xform byte, segs []SampleSeg, lens []int) (*RePending, error) {
	rp := &RePending{r: r, smp: segs, lens: lens, xform: xform}
	return r.startAsync(rp, func(in *Initiator) (*Pending, error) { return in.ReadSamplesAsync(xform, segs, lens) })
}

// WriteAsync submits a pipelined write. Recovery in Wait re-sends from
// p, so the caller must keep p intact until Wait returns — the price of
// idempotent resubmission after a mid-write connection loss.
func (r *Reconnector) WriteAsync(p []byte, off int64) (*RePending, error) {
	rp := &RePending{r: r, wsrc: p, off: off}
	return r.startAsync(rp, func(in *Initiator) (*Pending, error) { return in.WriteAsync(p, off) })
}

// WriteVecAsync submits a pipelined gathered write. Recovery in Wait
// re-sends the whole vector from the segments' Src buffers, so they
// must stay intact until Wait returns.
func (r *Reconnector) WriteVecAsync(segs []WSeg) (*RePending, error) {
	rp := &RePending{r: r, wsegs: segs}
	return r.startAsync(rp, func(in *Initiator) (*Pending, error) { return in.WriteVecAsync(segs) })
}

func (r *Reconnector) startAsync(rp *RePending, start func(*Initiator) (*Pending, error)) (*RePending, error) {
	in, err := r.initiator()
	if err == nil {
		pd, aerr := start(in)
		if aerr == nil {
			rp.in, rp.pd = in, pd
			return rp, nil
		}
		err = aerr
	}
	if !IsRetryable(err) {
		return nil, err
	}
	r.noteFailure(in, err)
	return rp, nil
}

// Wait completes the read, recovering retryable failures through the
// reconnecting synchronous path.
func (rp *RePending) Wait() (int, error) {
	if rp.pd != nil {
		n, err := rp.pd.Wait()
		if err == nil {
			return n, nil
		}
		if !IsRetryable(err) {
			return 0, err
		}
		rp.r.noteFailure(rp.in, err)
		rp.pd = nil
	}
	rp.r.counters.Retries.Add(1)
	if rp.smp != nil {
		return rp.r.ReadSamples(rp.xform, rp.smp, rp.lens)
	}
	if rp.segs != nil {
		return rp.r.ReadVec(rp.segs)
	}
	if rp.wsegs != nil {
		return rp.r.WriteVec(rp.wsegs)
	}
	if rp.wsrc != nil {
		return rp.r.WriteAt(rp.wsrc, rp.off)
	}
	return rp.r.ReadAt(rp.dst, rp.off)
}

// Close retires the wrapper; subsequent operations fail with ErrClosed.
func (r *Reconnector) Close() error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.closed = true
	in := r.in
	r.in = nil
	r.mu.Unlock()
	if in != nil {
		return in.Close()
	}
	return nil
}
