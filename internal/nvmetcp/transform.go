package nvmetcp

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
)

// Transform registry for opReadSamples: the per-sample stage the target
// runs between extent extraction and flush, so clients receive
// training-ready bytes and the NIC carries less. IDs are wire-stable.
//
//   - TransformNone: the stored record as-is. The only transform served
//     from zero-copy extent views; the others read through the store's
//     seqlock so their staged output is torn-write free by construction.
//   - TransformCRC32C: record + 4-byte Castagnoli CRC trailer, giving
//     end-to-end integrity over wire and assembly. Verify client-side
//     with VerifyCRC32C.
//   - TransformFlate: the stored record is DEFLATE-compressed; the
//     target decompresses so only the client-ready expansion crosses
//     the RPQ/SCQ engine once, not the client CPU. Output size is
//     data-dependent (TransformOutLen returns -1).
//   - TransformStride: every strideStep-th byte of the record —
//     the paper-adjacent "sample-skip" subsampling filter, halving
//     wire bytes for workloads that train on decimated records.
const (
	TransformNone byte = iota
	TransformCRC32C
	TransformFlate
	TransformStride

	numTransforms
)

// strideStep is TransformStride's decimation factor.
const strideStep = 2

// crc32cTable is the Castagnoli polynomial table shared by the target
// append and the client verify.
var crc32cTable = crc32.MakeTable(crc32.Castagnoli)

// TransformValid reports whether x names a registered transform.
func TransformValid(x byte) bool { return x < numTransforms }

// TransformName returns the human-readable transform name.
func TransformName(x byte) string {
	switch x {
	case TransformNone:
		return "none"
	case TransformCRC32C:
		return "crc32c"
	case TransformFlate:
		return "flate"
	case TransformStride:
		return "stride"
	default:
		return fmt.Sprintf("transform(%d)", x)
	}
}

// TransformOutLen returns the post-transform size of an n-byte record,
// or -1 when the size is data-dependent (TransformFlate). Clients use
// it to size destination buffers before posting an offload command.
func TransformOutLen(x byte, n int) int {
	switch x {
	case TransformNone:
		return n
	case TransformCRC32C:
		return n + 4
	case TransformStride:
		return (n + strideStep - 1) / strideStep
	default:
		return -1
	}
}

// VerifyCRC32C checks a TransformCRC32C record's trailing Castagnoli
// CRC and returns the record body with the 4-byte trailer stripped.
// The body aliases buf, so pooled buffers recycle unchanged.
func VerifyCRC32C(buf []byte) ([]byte, bool) {
	if len(buf) < 4 {
		return nil, false
	}
	body := buf[:len(buf)-4]
	want := binary.LittleEndian.Uint32(buf[len(buf)-4:])
	return body, crc32.Checksum(body, crc32cTable) == want
}

// transformInto applies a fixed-output-size transform of src into dst,
// where len(dst) == TransformOutLen(x, len(src)).
func transformInto(x byte, src, dst []byte) error {
	switch x {
	case TransformCRC32C:
		n := copy(dst, src)
		binary.LittleEndian.PutUint32(dst[n:], crc32.Checksum(src, crc32cTable))
		return nil
	case TransformStride:
		j := 0
		for i := 0; i < len(src); i += strideStep {
			dst[j] = src[i]
			j++
		}
		return nil
	default:
		return fmt.Errorf("nvmetcp: transform %s has no fixed-size path", TransformName(x))
	}
}

// transformAlloc applies a data-dependent-size transform (flate) to
// src, returning output allocated via alloc (a pool Get). limit bounds
// the decompressed size so a record cannot expand past the remaining
// response budget.
func transformAlloc(x byte, src []byte, limit int, alloc func(int) []byte) ([]byte, error) {
	if x != TransformFlate {
		return nil, fmt.Errorf("nvmetcp: transform %s has no variable-size path", TransformName(x))
	}
	fr := flate.NewReader(bytes.NewReader(src))
	defer fr.Close() //nolint:errcheck
	var out bytes.Buffer
	n, err := io.Copy(&out, io.LimitReader(fr, int64(limit)+1))
	if err != nil {
		return nil, fmt.Errorf("nvmetcp: flate: %w", err)
	}
	if n > int64(limit) {
		return nil, fmt.Errorf("%w: flate expansion past %d bytes", ErrTooLarge, limit)
	}
	buf := alloc(int(n))
	copy(buf, out.Bytes())
	return buf, nil
}
