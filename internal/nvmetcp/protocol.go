// Package nvmetcp implements a real NVMe-over-Fabrics-style block service
// over TCP, using only the standard library. It is the live-path
// counterpart of the simulated fabric: a Target exports an in-memory block
// store; an Initiator connects, negotiates a queue depth, and submits
// read/write commands that complete asynchronously — the same
// submit/poll contract the SPDK queue pairs expose, with the network in
// between.
//
// Framing (all integers little-endian):
//
//	capsule := magic(u32) | cmdID(u64) | opcode(u8) | status(u8) |
//	           offset(u64) | length(u32) | payload(length bytes)
//
// Requests carry a payload only for writes; responses only for successful
// reads. The connection handshake exchanges a hello capsule whose offset
// field carries the queue depth and whose length carries the capacity's
// low 32 bits (capacity also echoed in cmdID for full 64-bit range).
package nvmetcp

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Magic guards against cross-protocol connections.
const Magic = 0x444C4653 // "DLFS"

// Opcodes.
const (
	opHello byte = iota
	opRead
	opWrite
	opFlushStats
)

// Status codes.
const (
	statusOK byte = iota
	statusRange
	statusBadOp
)

// capsuleHeaderSize is the fixed frame header length.
const capsuleHeaderSize = 4 + 8 + 1 + 1 + 8 + 4

// maxPayload bounds a single capsule's payload (defense against corrupt
// length fields).
const maxPayload = 64 << 20

// capsule is one frame in either direction.
type capsule struct {
	cmdID   uint64
	opcode  byte
	status  byte
	offset  uint64
	payload []byte
}

// Errors.
var (
	ErrBadMagic   = errors.New("nvmetcp: bad magic")
	ErrTooLarge   = errors.New("nvmetcp: payload exceeds limit")
	ErrShortFrame = errors.New("nvmetcp: short frame")
)

// writeCapsule frames and writes c to w.
func writeCapsule(w io.Writer, c *capsule) error {
	hdr := make([]byte, capsuleHeaderSize)
	binary.LittleEndian.PutUint32(hdr[0:4], Magic)
	binary.LittleEndian.PutUint64(hdr[4:12], c.cmdID)
	hdr[12] = c.opcode
	hdr[13] = c.status
	binary.LittleEndian.PutUint64(hdr[14:22], c.offset)
	binary.LittleEndian.PutUint32(hdr[22:26], uint32(len(c.payload)))
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	if len(c.payload) > 0 {
		if _, err := w.Write(c.payload); err != nil {
			return err
		}
	}
	return nil
}

// readCapsule reads one frame from r.
func readCapsule(r io.Reader) (*capsule, error) {
	hdr := make([]byte, capsuleHeaderSize)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, err
	}
	if binary.LittleEndian.Uint32(hdr[0:4]) != Magic {
		return nil, ErrBadMagic
	}
	c := &capsule{
		cmdID:  binary.LittleEndian.Uint64(hdr[4:12]),
		opcode: hdr[12],
		status: hdr[13],
		offset: binary.LittleEndian.Uint64(hdr[14:22]),
	}
	n := binary.LittleEndian.Uint32(hdr[22:26])
	if n > maxPayload {
		return nil, fmt.Errorf("%w: %d bytes", ErrTooLarge, n)
	}
	if n > 0 {
		c.payload = make([]byte, n)
		if _, err := io.ReadFull(r, c.payload); err != nil {
			return nil, err
		}
	}
	return c, nil
}
