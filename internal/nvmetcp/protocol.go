// Package nvmetcp implements a real NVMe-over-Fabrics-style block service
// over TCP, using only the standard library. It is the live-path
// counterpart of the simulated fabric: a Target exports an in-memory block
// store; an Initiator connects, negotiates a queue depth, and submits
// read/write commands that complete asynchronously — the same
// submit/poll contract the SPDK queue pairs expose, with the network in
// between.
//
// Framing (all integers little-endian):
//
//	capsule := magic(u32) | cmdID(u64) | opcode(u8) | status(u8) |
//	           offset(u64) | length(u32) | payload(length bytes)
//
// Requests carry a payload only for writes; responses only for successful
// reads. On request capsules the status slot carries the submitting
// tenant's id (zero = legacy/default tenant); on responses it carries the
// completion status. The connection handshake exchanges a hello capsule
// whose offset field carries the queue depth and whose length carries the
// capacity's low 32 bits (capacity also echoed in cmdID for full 64-bit
// range).
package nvmetcp

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
)

// Magic guards against cross-protocol connections.
const Magic = 0x444C4653 // "DLFS"

// Opcodes.
const (
	opHello byte = iota
	opRead
	opWrite
	opFlushStats
	opReadVec
	opReadSamples
	opWriteVec // gathered multi-extent write (checkpoint ingest)
	opFlush    // durability barrier over this connection's prior writes
)

// Status codes. statusBadOp is reserved for "opcode unknown to this
// target" so a new client can detect an old target and downgrade;
// malformed opReadSamples payloads are statusRange and transform
// failures are statusXform. statusThrottled rejects a command that
// exceeded its tenant's byte/IOPS quota — the response's offset field
// carries a retry-after hint in nanoseconds — and statusTenant rejects
// a command whose tenant id is malformed or not provisioned on the
// target.
const (
	statusOK byte = iota
	statusRange
	statusBadOp
	statusXform
	statusThrottled
	statusTenant
)

// Tenant identity. Request capsules never used their status slot (it
// was always zero on the wire), so that byte now carries the submitting
// tenant's id: zero is the legacy/default tenant, which keeps every
// old initiator working unchanged against a multi-tenant target.
// MaxTenantID bounds the id space; the two bits above it are reserved,
// and a request carrying them is rejected as malformed (statusTenant),
// never silently truncated into another tenant's budget.
const MaxTenantID = 63

// classifyTenant maps a request capsule's tenant slot to an admission
// status for a target provisioned with maxTenants tenants (ids
// 0..maxTenants-1). It allocates nothing: the check runs on every
// ingested command before any queue or quota state is touched.
func classifyTenant(id byte, maxTenants int) byte {
	if id > MaxTenantID || int(id) >= maxTenants {
		return statusTenant
	}
	return statusOK
}

// capsuleHeaderSize is the fixed frame header length.
const capsuleHeaderSize = 4 + 8 + 1 + 1 + 8 + 4

// maxPayload bounds a single capsule's payload (defense against corrupt
// length fields).
const maxPayload = 64 << 20

// capsule is one frame in either direction. A request whose payload is
// scattered across caller buffers sets gather instead of payload: the
// segments go to the socket in one vectored write, so the client never
// stages a gathered command's data into a contiguous frame.
type capsule struct {
	cmdID   uint64
	opcode  byte
	status  byte
	offset  uint64
	payload []byte
	gather  net.Buffers

	// Server-side gathered ingest (engine path only): an opWriteVec
	// frame's payload is validated descriptor-first and read as one
	// pooled buffer per segment, so vsegs/vecs carry the command instead
	// of payload and aligned segments can be adopted by the store with
	// no copy. vecStatus, when non-zero, is the completion status an
	// ingest-time validation failure deferred to the worker (the frame
	// was drained to keep the stream aligned).
	vsegs     []vecSeg
	vecs      [][]byte
	vecStatus byte
}

// Errors.
var (
	ErrBadMagic   = errors.New("nvmetcp: bad magic")
	ErrTooLarge   = errors.New("nvmetcp: payload exceeds limit")
	ErrShortFrame = errors.New("nvmetcp: short frame")
)

// writeCapsule frames and writes c to w, allocating a scratch header.
// Hot paths hold a reusable header and call writeCapsuleHdr instead.
func writeCapsule(w io.Writer, c *capsule) error {
	return writeCapsuleHdr(w, c, make([]byte, capsuleHeaderSize))
}

// encodeHdr frames a capsule header into hdr (len >= capsuleHeaderSize):
// the payload itself travels separately, so completion paths can encode
// once and gather header + payload segments into a single vectored write.
func encodeHdr(hdr []byte, cmdID uint64, opcode, status byte, offset uint64, payloadLen int) {
	binary.LittleEndian.PutUint32(hdr[0:4], Magic)
	binary.LittleEndian.PutUint64(hdr[4:12], cmdID)
	hdr[12] = opcode
	hdr[13] = status
	binary.LittleEndian.PutUint64(hdr[14:22], offset)
	binary.LittleEndian.PutUint32(hdr[22:26], uint32(payloadLen))
}

// writeCapsuleHdr frames and writes c using the caller's header scratch
// (len >= capsuleHeaderSize). The caller must serialise access to both w
// and hdr.
func writeCapsuleHdr(w io.Writer, c *capsule, hdr []byte) error {
	hdr = hdr[:capsuleHeaderSize]
	if c.gather != nil {
		total := 0
		for _, s := range c.gather {
			total += len(s)
		}
		encodeHdr(hdr, c.cmdID, c.opcode, c.status, c.offset, total)
		// One writev covering header, descriptor block and every data
		// segment: the payload goes from the caller's buffers to the
		// socket without a staging copy. WriteTo consumes the slice, so
		// build the iovec fresh each send.
		bufs := make(net.Buffers, 0, len(c.gather)+1)
		bufs = append(bufs, hdr)
		bufs = append(bufs, c.gather...)
		_, err := bufs.WriteTo(w)
		return err
	}
	encodeHdr(hdr, c.cmdID, c.opcode, c.status, c.offset, len(c.payload))
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	if len(c.payload) > 0 {
		if _, err := w.Write(c.payload); err != nil {
			return err
		}
	}
	return nil
}

// readCapsule reads one frame from r, allocating scratch and payload.
// Hot paths reuse a header and pool payloads through readCapsuleHdr.
func readCapsule(r io.Reader) (*capsule, error) {
	return readCapsuleHdr(r, make([]byte, capsuleHeaderSize), func(n int) []byte { return make([]byte, n) })
}

// readCapsuleHdr reads one frame using the caller's header scratch and
// payload allocator (e.g. a bufpool Get). The caller owns returning
// pooled payloads once the capsule is consumed.
func readCapsuleHdr(r io.Reader, hdr []byte, alloc func(int) []byte) (*capsule, error) {
	hdr = hdr[:capsuleHeaderSize]
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, err
	}
	if binary.LittleEndian.Uint32(hdr[0:4]) != Magic {
		return nil, ErrBadMagic
	}
	c := &capsule{
		cmdID:  binary.LittleEndian.Uint64(hdr[4:12]),
		opcode: hdr[12],
		status: hdr[13],
		offset: binary.LittleEndian.Uint64(hdr[14:22]),
	}
	n := binary.LittleEndian.Uint32(hdr[22:26])
	if n > maxPayload {
		return nil, fmt.Errorf("%w: %d bytes", ErrTooLarge, n)
	}
	if n > 0 {
		c.payload = alloc(int(n))
		if _, err := io.ReadFull(r, c.payload); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// Vectored read encoding. An opReadVec request payload is
//
//	count(u32) | count × (offset(u64) | length(u32))
//
// and a successful response carries the segments' data concatenated in
// request order. Segments adjacent on the device are thereby coalesced
// into a single wire command — the chunk-level batching of §III-D2
// applied to the fabric.

// vecSegSize is the wire size of one (offset, length) pair.
const vecSegSize = 12

// maxVecSegs bounds segments per vectored command (defence against
// corrupt counts; generous for any sane coalescing window).
const maxVecSegs = 4096

// vecSeg is one decoded segment of a vectored read request.
type vecSeg struct {
	off uint64
	n   uint32
}

// decodeVec parses an opReadVec request payload, bounding both segment
// count and total response size.
func decodeVec(payload []byte) ([]vecSeg, int, error) {
	if len(payload) < 4 {
		return nil, 0, ErrShortFrame
	}
	n := int(binary.LittleEndian.Uint32(payload[0:4]))
	if n <= 0 || n > maxVecSegs || len(payload) != 4+n*vecSegSize {
		return nil, 0, fmt.Errorf("%w: vec count %d payload %d", ErrShortFrame, n, len(payload))
	}
	segs := make([]vecSeg, n)
	total := 0
	p := 4
	for i := 0; i < n; i++ {
		segs[i] = vecSeg{
			off: binary.LittleEndian.Uint64(payload[p : p+8]),
			n:   binary.LittleEndian.Uint32(payload[p+8 : p+12]),
		}
		total += int(segs[i].n)
		if total > maxPayload {
			return nil, 0, fmt.Errorf("%w: vec response %d bytes", ErrTooLarge, total)
		}
		p += vecSegSize
	}
	return segs, total, nil
}

// Sample-list encoding (opReadSamples, the near-data assembly opcode).
// A request payload is
//
//	transform(u8) | count(u32) | count × (offset(u64) | length(u32))
//
// where each descriptor names one stored sample record and the
// transform ID selects the per-sample server-side stage (TransformNone,
// TransformCRC32C, ...). A successful response payload is
//
//	count × outLen(u32) | records
//
// — a length block giving every record's post-transform size in request
// order, followed by the transformed records concatenated in the same
// order. The length block lets size-changing transforms
// (flate-decompress, stride-subsample) stay self-describing while the
// target still flushes the whole response as one vectored write: the
// pooled length block plus zero-copy extent views.

// sampleHdrSize is the fixed request prefix before the descriptors.
const sampleHdrSize = 5

// sampleDescSize is the wire size of one (offset, length) descriptor.
const sampleDescSize = 12

// MaxSampleDescs bounds descriptors per opReadSamples command, enforced
// before any allocation on the target. Clients split larger fetch
// groups across commands.
const MaxSampleDescs = 4096

// encodeSampleList frames a request payload into dst
// (len >= sampleHdrSize + len(segs)*sampleDescSize) and returns the
// encoded length.
func encodeSampleList(dst []byte, xform byte, segs []vecSeg) int {
	dst[0] = xform
	binary.LittleEndian.PutUint32(dst[1:5], uint32(len(segs)))
	p := sampleHdrSize
	for _, s := range segs {
		binary.LittleEndian.PutUint64(dst[p:p+8], s.off)
		binary.LittleEndian.PutUint32(dst[p+8:p+12], s.n)
		p += sampleDescSize
	}
	return p
}

// decodeSampleList parses an opReadSamples request payload. Every bound
// — descriptor count, per-record length, total stored bytes plus the
// response length block — is enforced before the descriptor slice is
// allocated, so a corrupt count cannot drive a huge allocation.
func decodeSampleList(payload []byte) (xform byte, segs []vecSeg, total int, err error) {
	if len(payload) < sampleHdrSize {
		return 0, nil, 0, ErrShortFrame
	}
	xform = payload[0]
	if xform >= numTransforms {
		return 0, nil, 0, fmt.Errorf("nvmetcp: unknown transform %d", xform)
	}
	n := int(binary.LittleEndian.Uint32(payload[1:5]))
	if n <= 0 || n > MaxSampleDescs || len(payload) != sampleHdrSize+n*sampleDescSize {
		return 0, nil, 0, fmt.Errorf("%w: sample count %d payload %d", ErrShortFrame, n, len(payload))
	}
	segs = make([]vecSeg, n)
	p := sampleHdrSize
	for i := 0; i < n; i++ {
		segs[i] = vecSeg{
			off: binary.LittleEndian.Uint64(payload[p : p+8]),
			n:   binary.LittleEndian.Uint32(payload[p+8 : p+12]),
		}
		ln := segs[i].n
		if ln == 0 || int32(ln) < 0 {
			return 0, nil, 0, fmt.Errorf("%w: sample %d length %d", ErrShortFrame, i, int32(ln))
		}
		total += int(ln)
		if total+4*n > maxPayload {
			return 0, nil, 0, fmt.Errorf("%w: sample response %d bytes", ErrTooLarge, total+4*n)
		}
		p += sampleDescSize
	}
	return xform, segs, total, nil
}

// Gathered-write encoding (opWriteVec, the checkpoint-ingest opcode). A
// request payload is
//
//	count(u32) | count × (offset(u64) | length(u32)) | data
//
// where data is every extent's bytes concatenated in descriptor order,
// so one wire command lands a whole sharded checkpoint stripe. A
// successful response is header-only. The durability barrier opFlush
// carries no payload at all: it completes only once every write
// admitted before it on the same connection has been applied to the
// store.

// writeVecHdrSize is the fixed request prefix before the descriptors.
const writeVecHdrSize = 4

// encodeWriteVec frames the descriptor block of a gathered write into
// dst (len >= writeVecHdrSize + len(segs)*vecSegSize) and returns the
// encoded length; the caller appends the gathered data after it.
func encodeWriteVec(dst []byte, segs []vecSeg) int {
	binary.LittleEndian.PutUint32(dst[0:4], uint32(len(segs)))
	p := writeVecHdrSize
	for _, s := range segs {
		binary.LittleEndian.PutUint64(dst[p:p+8], s.off)
		binary.LittleEndian.PutUint32(dst[p+8:p+12], s.n)
		p += vecSegSize
	}
	return p
}

// decodeWriteVec parses an opWriteVec request payload and returns the
// descriptors plus the gathered data bytes that follow them. Mirroring
// decodeSampleList, every bound — descriptor count, per-extent length,
// and the exact match between the descriptor total and the trailing
// data — is enforced before the descriptor slice is allocated, so a
// corrupt count cannot drive a huge allocation and a short payload can
// never alias bytes outside the frame.
func decodeWriteVec(payload []byte) (segs []vecSeg, data []byte, err error) {
	if len(payload) < writeVecHdrSize {
		return nil, nil, ErrShortFrame
	}
	n := int(binary.LittleEndian.Uint32(payload[0:4]))
	if n <= 0 || n > maxVecSegs || len(payload) < writeVecHdrSize+n*vecSegSize {
		return nil, nil, fmt.Errorf("%w: write-vec count %d payload %d", ErrShortFrame, n, len(payload))
	}
	descEnd := writeVecHdrSize + n*vecSegSize
	want := len(payload) - descEnd // gathered data bytes the frame actually carries
	segs = make([]vecSeg, n)
	total := 0
	p := writeVecHdrSize
	for i := 0; i < n; i++ {
		segs[i] = vecSeg{
			off: binary.LittleEndian.Uint64(payload[p : p+8]),
			n:   binary.LittleEndian.Uint32(payload[p+8 : p+12]),
		}
		ln := segs[i].n
		if ln == 0 || int32(ln) < 0 {
			return nil, nil, fmt.Errorf("%w: write-vec extent %d length %d", ErrShortFrame, i, int32(ln))
		}
		total += int(ln)
		if total > want {
			return nil, nil, fmt.Errorf("%w: write-vec total %d exceeds %d data bytes", ErrShortFrame, total, want)
		}
		p += vecSegSize
	}
	if total != want {
		return nil, nil, fmt.Errorf("%w: write-vec total %d != %d data bytes", ErrShortFrame, total, want)
	}
	return segs, payload[descEnd:], nil
}
