package nvmetcp

// End-to-end race battery for the write path: gathered writes racing
// zero-copy reads across the wire, writers racing connection teardown,
// and the flush barrier racing the completion flusher's drain. Writers
// stamp whole stripes with one generation byte so any mixed-generation
// read is a torn extent. Run under -race.

import (
	"bytes"
	"errors"
	"sync"
	"testing"
)

// TestRaceGatheredWriteVsVecReads drives a two-extent generation stripe
// through opWriteVec while a second connection reads the same extents
// through the zero-copy vectored read path. The server applies the
// stripe under one epoch bump and the flusher pins/restages views, so
// every read must observe a single generation across both extents.
func TestRaceGatheredWriteVsVecReads(t *testing.T) {
	_, addr := startTarget(t, 32<<20, 32)
	wr, err := Connect(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer wr.Close() //nolint:errcheck
	rd, err := Connect(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer rd.Close() //nolint:errcheck

	const segLen = 128 << 10
	offs := []int64{0, 1 << 20} // distinct store extents
	seed := bytes.Repeat([]byte{1}, 2*segLen)
	if _, err := wr.WriteVec([]WSeg{{Src: seed[:segLen], Off: offs[0]}, {Src: seed[segLen:], Off: offs[1]}}); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		gen := byte(2)
		buf := make([]byte, 2*segLen)
		for {
			select {
			case <-stop:
				return
			default:
			}
			for i := range buf {
				buf[i] = gen
			}
			segs := []WSeg{{Src: buf[:segLen], Off: offs[0]}, {Src: buf[segLen:], Off: offs[1]}}
			if _, err := wr.WriteVec(segs); err != nil {
				t.Error(err)
				return
			}
			gen++
			if gen == 0 {
				gen = 2
			}
		}
	}()

	got := make([]byte, 2*segLen)
	for iter := 0; iter < 400; iter++ {
		segs := []Seg{{Dst: got[:segLen], Off: offs[0]}, {Dst: got[segLen:], Off: offs[1]}}
		pd, err := rd.ReadVecAsync(segs)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := pd.Wait(); err != nil {
			t.Fatal(err)
		}
		first := got[0]
		for i, b := range got {
			if b != first {
				t.Fatalf("torn stripe at byte %d: generation %d vs %d (iter %d)", i, b, first, iter)
			}
		}
	}
	close(stop)
	wg.Wait()
}

// TestRaceWriterVsClose slams pipelined writes into a connection that is
// concurrently torn down. Every outcome is acceptable except a hang,
// panic, or race-detector report; pendings must resolve.
func TestRaceWriterVsClose(t *testing.T) {
	for round := 0; round < 10; round++ {
		_, addr := startTarget(t, 8<<20, 16)
		in, err := Connect(addr)
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := bytes.Repeat([]byte{7}, 8192)
			var pds []*Pending
			for i := 0; i < 64; i++ {
				pd, werr := in.WriteAsync(buf, int64(i)*8192)
				if werr != nil {
					break // closed or depth-limited mid-teardown: fine
				}
				pds = append(pds, pd)
			}
			for _, pd := range pds {
				pd.Wait() //nolint:errcheck // errors expected after Close
			}
		}()
		in.Close() //nolint:errcheck
		wg.Wait()
	}
}

// TestRaceWritersVsFlushBarrier runs several writer goroutines against a
// shared connection while another goroutine spins durability barriers.
// The flush handoff must never wedge the worker pool, every barrier must
// complete, and the final state must hold each writer's last stripe.
func TestRaceWritersVsFlushBarrier(t *testing.T) {
	_, addr := startTarget(t, 32<<20, 64)
	in, err := Connect(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close() //nolint:errcheck

	const writers = 4
	const iters = 100
	var writerWG, flusherWG sync.WaitGroup
	for w := 0; w < writers; w++ {
		w := w
		writerWG.Add(1)
		go func() {
			defer writerWG.Done()
			region := int64(w) * (1 << 20)
			buf := make([]byte, 16<<10)
			for i := 0; i < iters; i++ {
				for j := range buf {
					buf[j] = byte(w + 1)
				}
				if _, werr := in.WriteAt(buf, region); werr != nil {
					t.Error(werr)
					return
				}
			}
		}()
	}
	stop := make(chan struct{})
	flusherWG.Add(1)
	go func() {
		defer flusherWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if ferr := in.Flush(); ferr != nil {
				t.Error(ferr)
				return
			}
		}
	}()
	writerWG.Wait()
	close(stop)
	flusherWG.Wait()

	if err := in.Flush(); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 16<<10)
	for w := 0; w < writers; w++ {
		if _, err := in.ReadAt(got, int64(w)*(1<<20)); err != nil {
			t.Fatal(err)
		}
		for i, b := range got {
			if b != byte(w+1) {
				t.Fatalf("writer %d region byte %d = %d after barrier", w, i, b)
			}
		}
	}
}

// TestRaceWritersVsTargetDrain tears the target down while gathered
// writes are in flight: the SCQ flusher drains, the flush-barrier
// goroutines unwind, and the client surfaces errors instead of hanging.
func TestRaceWritersVsTargetDrain(t *testing.T) {
	for round := 0; round < 5; round++ {
		tgt, addr := startTarget(t, 16<<20, 32)
		in, err := Connect(addr)
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			buf := bytes.Repeat([]byte{9}, 64<<10)
			for i := 0; ; i++ {
				segs := []WSeg{
					{Src: buf[:32<<10], Off: int64(i%8) * (1 << 20)},
					{Src: buf[32<<10:], Off: int64(i%8)*(1<<20) + (512 << 10)},
				}
				if _, werr := in.WriteVec(segs); werr != nil {
					return // target gone: expected
				}
			}
		}()
		go func() {
			defer wg.Done()
			for {
				if ferr := in.Flush(); ferr != nil {
					return
				}
			}
		}()
		tgt.Close() //nolint:errcheck
		wg.Wait()
		if err := in.Close(); err != nil && !errors.Is(err, ErrClosed) {
			t.Logf("close after target drain: %v", err)
		}
	}
}
