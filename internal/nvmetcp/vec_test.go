package nvmetcp

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"time"

	"dlfs/internal/blockdev"
	"dlfs/internal/metrics"
)

func startVecTarget(t testing.TB, fill []byte) (*Target, string) {
	t.Helper()
	store := blockdev.New(int64(len(fill)))
	if _, err := store.WriteAt(fill, 0); err != nil {
		t.Fatal(err)
	}
	tgt := NewTarget(store, 32)
	addr, err := tgt.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { tgt.Close() }) //nolint:errcheck
	return tgt, addr
}

func patterned(n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i*7 + i>>8)
	}
	return b
}

func TestReadVecScattersSegments(t *testing.T) {
	data := patterned(1 << 20)
	tgt, addr := startVecTarget(t, data)
	in, err := Connect(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close() //nolint:errcheck

	// Three segments: adjacent pair plus a distant one.
	bufs := [][]byte{make([]byte, 4096), make([]byte, 100), make([]byte, 8192)}
	segs := []Seg{
		{Dst: bufs[0], Off: 16384},
		{Dst: bufs[1], Off: 16384 + 4096},
		{Dst: bufs[2], Off: 700000},
	}
	n, err := in.ReadVec(segs)
	if err != nil {
		t.Fatal(err)
	}
	if n != 4096+100+8192 {
		t.Fatalf("landed %d bytes", n)
	}
	if !bytes.Equal(bufs[0], data[16384:16384+4096]) ||
		!bytes.Equal(bufs[1], data[16384+4096:16384+4096+100]) ||
		!bytes.Equal(bufs[2], data[700000:700000+8192]) {
		t.Fatal("vectored read scattered wrong bytes")
	}
	reads, _, vecReads, vecSegs := tgt.OpStats()
	if reads != 0 || vecReads != 1 || vecSegs != 3 {
		t.Fatalf("op stats reads=%d vec=%d segs=%d", reads, vecReads, vecSegs)
	}
}

func TestReadVecAsyncPipelined(t *testing.T) {
	data := patterned(256 << 10)
	_, addr := startVecTarget(t, data)
	in, err := Connect(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close() //nolint:errcheck

	const k = 8
	pds := make([]*Pending, k)
	got := make([][]byte, k)
	for i := 0; i < k; i++ {
		got[i] = make([]byte, 1000)
		pd, err := in.ReadVecAsync([]Seg{
			{Dst: got[i][:500], Off: int64(i * 1000)},
			{Dst: got[i][500:], Off: int64(i*1000 + 500)},
		})
		if err != nil {
			t.Fatal(err)
		}
		pds[i] = pd
	}
	for i, pd := range pds {
		if _, err := pd.Wait(); err != nil {
			t.Fatalf("vec %d: %v", i, err)
		}
		if !bytes.Equal(got[i], data[i*1000:(i+1)*1000]) {
			t.Fatalf("vec %d corrupt", i)
		}
	}
}

func TestReadVecOutOfRange(t *testing.T) {
	_, addr := startVecTarget(t, patterned(4096))
	in, err := Connect(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close() //nolint:errcheck
	if _, err := in.ReadVec([]Seg{{Dst: make([]byte, 64), Off: 1 << 30}}); !errors.Is(err, ErrRemote) {
		t.Fatalf("out-of-range vec read: %v, want ErrRemote", err)
	}
	// The connection must survive a failed command.
	buf := make([]byte, 16)
	if _, err := in.ReadAt(buf, 0); err != nil {
		t.Fatalf("read after failed vec: %v", err)
	}
}

func TestReadVecEmptyRejected(t *testing.T) {
	_, addr := startVecTarget(t, patterned(4096))
	in, err := Connect(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close() //nolint:errcheck
	if _, err := in.ReadVec(nil); err == nil {
		t.Fatal("empty vectored read accepted")
	}
}

func TestDecodeVecBounds(t *testing.T) {
	if _, _, err := decodeVec([]byte{1, 2}); err == nil {
		t.Fatal("short payload accepted")
	}
	// Count mismatch with payload length.
	bad := make([]byte, 4+vecSegSize)
	bad[0] = 2
	if _, _, err := decodeVec(bad); err == nil {
		t.Fatal("count/length mismatch accepted")
	}
	// Total over maxPayload.
	huge := make([]byte, 4+2*vecSegSize)
	huge[0] = 2
	for i := 0; i < 2; i++ {
		p := 4 + i*vecSegSize + 8
		huge[p] = 0xFF
		huge[p+1] = 0xFF
		huge[p+2] = 0xFF
		huge[p+3] = 0x7F
	}
	if _, _, err := decodeVec(huge); err == nil {
		t.Fatal("oversized vec total accepted")
	}
}

func TestQPGroupStripesAndRecovers(t *testing.T) {
	data := patterned(128 << 10)
	tgt, addr := startVecTarget(t, data)
	counters := &metrics.Resilience{}
	g, err := NewQPGroup(addr, 3, Options{}, RetryPolicy{Seed: 9}, counters)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close() //nolint:errcheck
	if g.NumQPs() != 3 {
		t.Fatalf("NumQPs = %d", g.NumQPs())
	}
	if accepted, _, _ := tgt.ConnStats(); accepted != 3 {
		t.Fatalf("accepted %d connections, want 3", accepted)
	}

	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			buf := make([]byte, 512)
			for i := 0; i < 50; i++ {
				off := int64(((w*50 + i) * 512) % (127 << 10))
				if _, err := g.ReadAt(buf, off); err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
				if !bytes.Equal(buf, data[off:off+512]) {
					t.Errorf("worker %d: corrupt read at %d", w, off)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

func TestQPGroupSingleFallback(t *testing.T) {
	_, addr := startVecTarget(t, patterned(4096))
	g, err := NewQPGroup(addr, 0, Options{}, RetryPolicy{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close() //nolint:errcheck
	if g.NumQPs() != 1 {
		t.Fatalf("NumQPs = %d, want clamp to 1", g.NumQPs())
	}
	buf := make([]byte, 64)
	if _, err := g.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
}

func TestQPGroupDialFailureCleansUp(t *testing.T) {
	if _, err := NewQPGroup("127.0.0.1:1", 2, Options{DialTimeout: 200 * time.Millisecond}, RetryPolicy{}, nil); err == nil {
		t.Fatal("dial to dead address succeeded")
	}
}
