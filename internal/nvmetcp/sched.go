package nvmetcp

import (
	"encoding/binary"
	"sync"
	"sync/atomic"
	"time"

	"dlfs/internal/metrics"
)

// This file is the multi-tenant request scheduler that replaced the
// target's single FIFO request-posting queue. Connection readers admit
// each command against its tenant's token-bucket quotas, then enqueue it
// on the tenant's bounded queue; the shared worker pool drains the
// queues through a deficit-round-robin scan, so a tenant blasting
// megabyte reads cannot park a paced tenant's commands behind its
// backlog. Per-tenant stage counters (and histograms when enabled) make
// the isolation measurable: the qwait distribution of each tenant is
// exactly what the DRR protects.

// drrQuantum is the deficit added to a tenant's budget per scheduler
// round — the classic DRR quantum, in payload bytes. One quantum covers
// a typical coalesced chunk read, so well-behaved tenants usually clear
// their head command in a single visit.
const drrQuantum = 256 << 10

// tenantState is one tenant's scheduling and accounting state. Queue
// and quota fields are guarded by the owning drrSched's mutex; the
// metrics are atomics, safe to read while the engine runs.
type tenantState struct {
	id int

	// srv mirrors the target-wide engine counters for this tenant alone
	// (queue wait and service time; flushes are per-connection, not
	// per-tenant). Hist is attached when Config.StageHistograms is set.
	srv metrics.Server

	cmds      atomic.Int64
	bytes     atomic.Int64
	throttled atomic.Int64

	// FIFO command queue: items[head:] are pending. The slice is
	// compacted when the dead prefix outgrows the live tail.
	items []rpqItem
	head  int

	// deficit is the DRR byte budget accumulated across scheduler
	// rounds. It is spent on dequeue and reset when the queue drains,
	// so an idle tenant cannot bank credit.
	deficit int64
	active  bool // tenant is on the scheduler's active ring

	// Token buckets, refilled lazily on admission. Debt model: a command
	// is admitted whenever its bucket is positive and may overdraw it,
	// so one command larger than the burst allowance still eventually
	// passes instead of starving forever.
	byteTokens float64
	iopsTokens float64
	lastRefill time.Time

	notFull sync.Cond // enqueue backpressure, one waiter set per tenant
}

// queued reports the tenant's pending command count (sched.mu held).
func (ts *tenantState) queued() int { return len(ts.items) - ts.head }

// drrSched multiplexes per-tenant bounded queues onto the worker pool
// with deficit round robin. All scheduling state hangs off one mutex:
// the critical sections are a few comparisons and slice ops, far below
// the cost of the socket reads and store copies around them.
type drrSched struct {
	mu       sync.Mutex
	notEmpty sync.Cond

	tenants []*tenantState // index = tenant id, fixed at construction
	ring    []int          // active tenant ids in round-robin order

	queueDepth  int     // per-tenant queue bound (<0 = unbounded)
	bytesPerSec float64 // per-tenant byte quota (<=0 = off)
	iops        float64 // per-tenant command quota (<=0 = off)

	closed bool
}

func newDRRSched(cfg Config) *drrSched {
	s := &drrSched{
		tenants:     make([]*tenantState, cfg.MaxTenants),
		queueDepth:  cfg.TenantQueueDepth,
		bytesPerSec: float64(cfg.TenantBytesPerSec),
		iops:        float64(cfg.TenantIOPS),
	}
	s.notEmpty.L = &s.mu
	now := time.Now()
	for i := range s.tenants {
		ts := &tenantState{id: i, lastRefill: now}
		// Buckets open with one burst allowance so a tenant's first
		// commands are never throttled by an empty bucket.
		ts.byteTokens = s.bytesPerSec
		ts.iopsTokens = s.iops
		ts.notFull.L = &s.mu
		if cfg.StageHistograms {
			ts.srv.Hist = &metrics.ServerHist{}
		}
		s.tenants[i] = ts
	}
	return s
}

// refill tops up ts's buckets for the time elapsed since the last
// admission, capped at one second of rate (the burst allowance).
// Caller holds s.mu.
func (s *drrSched) refill(ts *tenantState, now time.Time) {
	dt := now.Sub(ts.lastRefill).Seconds()
	if dt <= 0 {
		return
	}
	ts.lastRefill = now
	if s.bytesPerSec > 0 {
		ts.byteTokens += dt * s.bytesPerSec
		if ts.byteTokens > s.bytesPerSec {
			ts.byteTokens = s.bytesPerSec
		}
	}
	if s.iops > 0 {
		ts.iopsTokens += dt * s.iops
		if ts.iopsTokens > s.iops {
			ts.iopsTokens = s.iops
		}
	}
}

// admit charges one command of the given byte cost against ts's quotas.
// It returns zero when the command may proceed, or a positive
// retry-after hint when the tenant is over budget. Admission never
// blocks: throttling is reported to the client, which owns the backoff.
func (s *drrSched) admit(ts *tenantState, cost int64) time.Duration {
	if s.bytesPerSec <= 0 && s.iops <= 0 {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.refill(ts, time.Now())
	if s.iops > 0 && ts.iopsTokens <= 0 {
		return retryAfter(-ts.iopsTokens+1, s.iops)
	}
	if s.bytesPerSec > 0 && ts.byteTokens <= 0 {
		return retryAfter(-ts.byteTokens+1, s.bytesPerSec)
	}
	if s.iops > 0 {
		ts.iopsTokens--
	}
	if s.bytesPerSec > 0 {
		// Charge the full cost, even past the burst allowance. The debt
		// model admits any command while the bucket is positive, so an
		// over-burst command still lands — but it sinks the bucket
		// cost/rate seconds deep, and nothing else admits until the whole
		// debt refills. Clamping the charge at one burst looked friendlier
		// but gutted the quota: each oversized command cost one burst no
		// matter its size, so a tenant issuing burst-dwarfing commands
		// back to back ran at cost/burst times its provisioned rate. The
		// honest charge keeps sustained oversized commands paced at
		// bytesPerSec, and the retry-after hint reports the true refill
		// time so the client sleeps the debt out in one wait.
		ts.byteTokens -= float64(cost)
	}
	return 0
}

// retryAfter converts a token debt at a refill rate into a positive
// duration hint: the time until the bucket climbs back above zero. The
// hint is honest even for the multi-second debts an admitted over-burst
// command leaves behind — a capped hint would send a client that
// honours it back while the bucket is still underwater, burning its
// retry budget round-trip by round-trip against a wait whose true
// length the target knew all along.
func retryAfter(debt, rate float64) time.Duration {
	d := time.Duration(debt / rate * float64(time.Second))
	if d <= 0 {
		d = time.Millisecond
	}
	return d
}

// enqueue appends it to ts's queue, blocking while the queue is at its
// bound (backpressure lands on the tenant's own connections via the TCP
// window, exactly like the old single RPQ — but now per tenant). It
// returns false only if the scheduler closed while waiting.
func (s *drrSched) enqueue(ts *tenantState, it rpqItem) bool {
	s.mu.Lock()
	for s.queueDepth > 0 && ts.queued() >= s.queueDepth && !s.closed {
		ts.notFull.Wait()
	}
	if s.closed {
		s.mu.Unlock()
		return false
	}
	if ts.head > 0 && ts.head*2 >= len(ts.items) {
		n := copy(ts.items, ts.items[ts.head:])
		for i := n; i < len(ts.items); i++ {
			ts.items[i] = rpqItem{} // release payload references
		}
		ts.items = ts.items[:n]
		ts.head = 0
	}
	ts.items = append(ts.items, it)
	if !ts.active {
		ts.active = true
		ts.deficit = 0
		s.ring = append(s.ring, ts.id)
	}
	s.mu.Unlock()
	s.notEmpty.Signal()
	return true
}

// next hands one command to a worker, scanning the active ring with
// deficit round robin: the head tenant earns a quantum when its deficit
// does not cover its head command's cost, serves one command when it
// does, and rotates to the ring tail either way — so a tenant can never
// hold the head across calls and bank unlimited quanta while others
// wait. Leftover deficit carries across rotations (a tenant of small
// commands amortises one quantum over many of them) but is forfeited
// when the queue drains, so an idle tenant cannot save up credit. next
// blocks while every queue is empty and returns false once the
// scheduler is closed and fully drained — workers never abandon
// admitted commands.
func (s *drrSched) next() (rpqItem, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		for len(s.ring) > 0 {
			ts := s.tenants[s.ring[0]]
			it := ts.items[ts.head]
			if ts.deficit < it.cost {
				ts.deficit += drrQuantum
				if ts.deficit < it.cost {
					// Not yet affordable: rotate and let the other tenants
					// run. With a single active tenant this loop just
					// accumulates quanta until the command clears.
					s.ring = append(s.ring[1:], s.ring[0])
					continue
				}
			}
			ts.deficit -= it.cost
			ts.items[ts.head] = rpqItem{}
			ts.head++
			if ts.queued() == 0 {
				ts.items = ts.items[:0]
				ts.head = 0
				ts.active = false
				ts.deficit = 0
				s.ring = s.ring[1:]
			} else {
				s.ring = append(s.ring[1:], s.ring[0])
			}
			ts.notFull.Signal()
			return it, true
		}
		if s.closed {
			return rpqItem{}, false
		}
		s.notEmpty.Wait()
	}
}

// close wakes every blocked worker and enqueuer. Pending items remain
// dequeueable so the worker pool drains admitted work before exiting.
func (s *drrSched) close() {
	s.mu.Lock()
	s.closed = true
	for _, ts := range s.tenants {
		ts.notFull.Broadcast()
	}
	s.mu.Unlock()
	s.notEmpty.Broadcast()
}

// cmdCost estimates one command's payload byte cost for DRR accounting
// and byte quotas — response bytes for reads, request bytes for writes.
// It parses descriptor lengths in place without allocating, tolerates
// malformed payloads (execute rejects those later; cost just needs a
// floor), and never returns less than 1 so zero-byte commands still
// consume scheduling budget.
func cmdCost(req *capsule) int64 {
	var cost int64
	switch req.opcode {
	case opRead:
		if len(req.payload) == 4 {
			cost = int64(int32(binary.LittleEndian.Uint32(req.payload)))
		}
	case opWrite, opWriteVec:
		// Writes are charged by request payload bytes; for opWriteVec
		// that covers descriptors plus gathered data, a faithful upper
		// bound on the store work without re-parsing the frame here.
		// Engine-ingested gathered writes carry per-segment buffers
		// instead of one payload; charge their sum.
		cost = int64(len(req.payload))
		for _, v := range req.vecs {
			cost += int64(len(v))
		}
	case opFlush:
		cost = 1 // barrier: no data moved, minimum scheduling cost
	case opReadVec:
		if len(req.payload) >= 4 {
			n := int(binary.LittleEndian.Uint32(req.payload[0:4]))
			if n > 0 && n <= maxVecSegs && len(req.payload) == 4+n*vecSegSize {
				for i := 0; i < n; i++ {
					cost += int64(binary.LittleEndian.Uint32(req.payload[4+i*vecSegSize+8:]))
				}
			}
		}
	case opReadSamples:
		if len(req.payload) >= sampleHdrSize {
			n := int(binary.LittleEndian.Uint32(req.payload[1:5]))
			if n > 0 && n <= MaxSampleDescs && len(req.payload) == sampleHdrSize+n*sampleDescSize {
				for i := 0; i < n; i++ {
					cost += int64(binary.LittleEndian.Uint32(req.payload[sampleHdrSize+i*sampleDescSize+8:]))
				}
			}
		}
	}
	if cost < 1 || cost > maxPayload {
		if cost > maxPayload {
			return maxPayload
		}
		return 1
	}
	return cost
}
