package nvmetcp

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
)

// Initiator is the client side of one queue pair: a TCP connection to a
// Target with asynchronous submit and out-of-order completion delivery.
// It is safe for concurrent use.
type Initiator struct {
	conn     net.Conn
	depth    int
	capacity int64

	mu      sync.Mutex
	nextID  uint64
	pending map[uint64]chan *capsule
	sendMu  sync.Mutex
	closed  bool
	readErr error
	done    chan struct{}
}

// Errors.
var (
	ErrClosed     = errors.New("nvmetcp: initiator closed")
	ErrRemote     = errors.New("nvmetcp: remote error")
	ErrHandshake  = errors.New("nvmetcp: handshake failed")
	ErrDepthLimit = errors.New("nvmetcp: queue depth exceeded")
)

// Connect dials a target and performs the hello handshake.
func Connect(addr string) (*Initiator, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	if err := writeCapsule(conn, &capsule{opcode: opHello}); err != nil {
		conn.Close() //nolint:errcheck
		return nil, fmt.Errorf("%w: %v", ErrHandshake, err)
	}
	hello, err := readCapsule(conn)
	if err != nil || hello.opcode != opHello {
		conn.Close() //nolint:errcheck
		return nil, fmt.Errorf("%w: %v", ErrHandshake, err)
	}
	in := &Initiator{
		conn:     conn,
		depth:    int(hello.offset),
		capacity: int64(hello.cmdID),
		pending:  make(map[uint64]chan *capsule),
		done:     make(chan struct{}),
	}
	go in.receiveLoop()
	return in, nil
}

// Depth returns the negotiated queue depth.
func (in *Initiator) Depth() int { return in.depth }

// Capacity returns the target device's capacity in bytes.
func (in *Initiator) Capacity() int64 { return in.capacity }

func (in *Initiator) receiveLoop() {
	defer close(in.done)
	for {
		resp, err := readCapsule(in.conn)
		if err != nil {
			in.mu.Lock()
			in.readErr = err
			for id, ch := range in.pending {
				close(ch)
				delete(in.pending, id)
			}
			in.mu.Unlock()
			return
		}
		in.mu.Lock()
		ch, ok := in.pending[resp.cmdID]
		if ok {
			delete(in.pending, resp.cmdID)
		}
		in.mu.Unlock()
		if ok {
			ch <- resp
		}
	}
}

// submit sends a request and returns the channel its completion will
// arrive on.
func (in *Initiator) submit(req *capsule) (chan *capsule, error) {
	in.mu.Lock()
	if in.closed {
		in.mu.Unlock()
		return nil, ErrClosed
	}
	if len(in.pending) >= in.depth {
		in.mu.Unlock()
		return nil, ErrDepthLimit
	}
	in.nextID++
	req.cmdID = in.nextID
	ch := make(chan *capsule, 1)
	in.pending[req.cmdID] = ch
	in.mu.Unlock()

	in.sendMu.Lock()
	err := writeCapsule(in.conn, req)
	in.sendMu.Unlock()
	if err != nil {
		in.mu.Lock()
		delete(in.pending, req.cmdID)
		in.mu.Unlock()
		return nil, err
	}
	return ch, nil
}

func (in *Initiator) await(ch chan *capsule) (*capsule, error) {
	resp, ok := <-ch
	if !ok {
		in.mu.Lock()
		err := in.readErr
		in.mu.Unlock()
		if err == nil {
			err = ErrClosed
		}
		return nil, err
	}
	if resp.status != statusOK {
		return nil, fmt.Errorf("%w: status %d", ErrRemote, resp.status)
	}
	return resp, nil
}

// ReadAt reads len(p) bytes at off from the remote store.
func (in *Initiator) ReadAt(p []byte, off int64) (int, error) {
	var lenBuf [4]byte
	binary.LittleEndian.PutUint32(lenBuf[:], uint32(len(p)))
	ch, err := in.submit(&capsule{opcode: opRead, offset: uint64(off), payload: lenBuf[:]})
	if err != nil {
		return 0, err
	}
	resp, err := in.await(ch)
	if err != nil {
		return 0, err
	}
	return copy(p, resp.payload), nil
}

// WriteAt writes p at off on the remote store.
func (in *Initiator) WriteAt(p []byte, off int64) (int, error) {
	ch, err := in.submit(&capsule{opcode: opWrite, offset: uint64(off), payload: p})
	if err != nil {
		return 0, err
	}
	if _, err := in.await(ch); err != nil {
		return 0, err
	}
	return len(p), nil
}

// Pending is an in-flight asynchronous read.
type Pending struct {
	in  *Initiator
	ch  chan *capsule
	dst []byte
}

// ReadAsync submits a read without waiting. Wait() completes it.
func (in *Initiator) ReadAsync(dst []byte, off int64) (*Pending, error) {
	var lenBuf [4]byte
	binary.LittleEndian.PutUint32(lenBuf[:], uint32(len(dst)))
	ch, err := in.submit(&capsule{opcode: opRead, offset: uint64(off), payload: lenBuf[:]})
	if err != nil {
		return nil, err
	}
	return &Pending{in: in, ch: ch, dst: dst}, nil
}

// Wait blocks until the read completes and fills the destination buffer.
func (pd *Pending) Wait() (int, error) {
	resp, err := pd.in.await(pd.ch)
	if err != nil {
		return 0, err
	}
	return copy(pd.dst, resp.payload), nil
}

// Close tears the connection down; outstanding commands fail.
func (in *Initiator) Close() error {
	in.mu.Lock()
	if in.closed {
		in.mu.Unlock()
		return nil
	}
	in.closed = true
	in.mu.Unlock()
	err := in.conn.Close()
	<-in.done
	return err
}
