package nvmetcp

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"syscall"
	"time"

	"dlfs/internal/bufpool"
)

// Options tunes an initiator's failure behaviour. The zero value takes
// defaults; pass a negative RequestTimeout to disable per-command
// deadlines entirely (every blocking wait is still released by Close or
// by connection loss).
type Options struct {
	DialTimeout    time.Duration // dial + handshake bound (default 10s)
	RequestTimeout time.Duration // per-command deadline (default 30s; <0 disables)

	// Tenant stamps every command with this tenant id (0..MaxTenantID).
	// Zero — the default — is the legacy tenant, giving old callers the
	// exact wire frames they always sent. Negative values are treated as
	// zero; ids above MaxTenantID fail the connect.
	Tenant int
}

func (o Options) withDefaults() Options {
	if o.DialTimeout <= 0 {
		o.DialTimeout = 10 * time.Second
	}
	if o.RequestTimeout == 0 {
		o.RequestTimeout = 30 * time.Second
	}
	if o.Tenant < 0 {
		o.Tenant = 0
	}
	return o
}

// Seg is one scatter segment of a vectored read: len(Dst) bytes fetched
// from Off land directly in Dst.
type Seg struct {
	Dst []byte
	Off int64
}

// compl is a command completion delivered from the receive loop.
type compl struct {
	status byte
	n      int    // payload bytes landed in the destination buffers
	ra     uint64 // retry-after hint in nanoseconds (statusThrottled only)
	err    error  // connection-level failure while receiving the payload
}

// pendingCmd tracks one in-flight command: its completion channel and the
// destination memory the response payload scatters into. Destinations are
// written by the receive loop directly off the socket — the zero-copy
// contract of the paper's pipeline: payloads land in their cache chunks,
// never in a transient allocation.
type pendingCmd struct {
	ch   chan compl
	dst  []byte      // single-read destination
	vec  []Seg       // vectored-read destinations, scattered in order
	smp  []SampleSeg // sample-mode destinations (opReadSamples)
	lens []int       // caller-owned per-record landed lengths (may be nil)
	op   byte        // opcode, for typed remote-status mapping
}

// pcPool recycles pendingCmds (and their 1-buffered channels) so the
// per-command hot path performs no allocation. A pendingCmd is returned
// to the pool only after its completion was consumed on a clean path;
// error paths abandon it to the GC, which keeps closed or contended
// channels out of the pool.
var pcPool = sync.Pool{New: func() any { return &pendingCmd{ch: make(chan compl, 1)} }}

func getPending() *pendingCmd { return pcPool.Get().(*pendingCmd) }

func putPending(pc *pendingCmd) {
	pc.dst, pc.vec, pc.smp, pc.lens, pc.op = nil, nil, nil, nil, 0
	pcPool.Put(pc)
}

// Initiator is the client side of one queue pair: a TCP connection to a
// Target with asynchronous submit and out-of-order completion delivery.
// It is safe for concurrent use.
type Initiator struct {
	conn     net.Conn
	opt      Options
	depth    int
	capacity int64

	mu      sync.Mutex
	nextID  uint64
	pending map[uint64]*pendingCmd
	sendMu  sync.Mutex
	sendHdr []byte // frame header scratch, guarded by sendMu
	closed  bool
	readErr error
	done    chan struct{}
}

// Errors.
var (
	ErrClosed     = errors.New("nvmetcp: initiator closed")
	ErrRemote     = errors.New("nvmetcp: remote error")
	ErrHandshake  = errors.New("nvmetcp: handshake failed")
	ErrDepthLimit = errors.New("nvmetcp: queue depth exceeded")
	ErrTimeout    = errors.New("nvmetcp: command deadline exceeded")
	ErrConnLost   = errors.New("nvmetcp: connection lost")
	ErrThrottled  = errors.New("nvmetcp: tenant quota exceeded")
)

// IsRetryable classifies an error from this package (or from dialing) as
// a transient transport condition worth retrying on a fresh connection,
// as opposed to a deliberate close or a remote semantic error. Timeouts,
// lost connections, queue-depth pressure, tenant throttling and
// network-level failures are retryable; ErrClosed and ErrRemote are not.
func IsRetryable(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, ErrTimeout) || errors.Is(err, ErrConnLost) ||
		errors.Is(err, ErrDepthLimit) || errors.Is(err, ErrThrottled) {
		return true
	}
	if errors.Is(err, ErrClosed) || errors.Is(err, ErrRemote) {
		return false
	}
	var ne net.Error
	if errors.As(err, &ne) {
		return true
	}
	return errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) ||
		errors.Is(err, syscall.ECONNREFUSED) || errors.Is(err, syscall.ECONNRESET) ||
		errors.Is(err, syscall.EPIPE)
}

// Connect dials a target and performs the hello handshake with default
// Options.
func Connect(addr string) (*Initiator, error) {
	return ConnectOptions(addr, Options{})
}

// ConnectOptions dials a target with explicit failure options. The
// handshake is bounded by DialTimeout, so a black-holed target cannot
// hang the caller.
func ConnectOptions(addr string, opt Options) (*Initiator, error) {
	opt = opt.withDefaults()
	if opt.Tenant > MaxTenantID {
		return nil, fmt.Errorf("nvmetcp: tenant %d above protocol maximum %d", opt.Tenant, MaxTenantID)
	}
	conn, err := net.DialTimeout("tcp", addr, opt.DialTimeout)
	if err != nil {
		return nil, err
	}
	conn.SetDeadline(time.Now().Add(opt.DialTimeout)) //nolint:errcheck
	if err := writeCapsule(conn, &capsule{opcode: opHello}); err != nil {
		conn.Close() //nolint:errcheck
		return nil, fmt.Errorf("%w: %w", ErrHandshake, err)
	}
	hello, err := readCapsule(conn)
	if err != nil {
		conn.Close() //nolint:errcheck
		return nil, fmt.Errorf("%w: %w", ErrHandshake, err)
	}
	if hello.opcode != opHello {
		conn.Close() //nolint:errcheck
		return nil, fmt.Errorf("%w: unexpected opcode %d in hello reply", ErrHandshake, hello.opcode)
	}
	conn.SetDeadline(time.Time{}) //nolint:errcheck
	in := &Initiator{
		conn:     conn,
		opt:      opt,
		depth:    int(hello.offset),
		capacity: int64(hello.cmdID),
		pending:  make(map[uint64]*pendingCmd),
		sendHdr:  make([]byte, capsuleHeaderSize),
		done:     make(chan struct{}),
	}
	go in.receiveLoop()
	return in, nil
}

// Depth returns the negotiated queue depth.
func (in *Initiator) Depth() int { return in.depth }

// Capacity returns the target device's capacity in bytes.
func (in *Initiator) Capacity() int64 { return in.capacity }

// failPending records why the connection died, releases every waiter, and
// delivers the cause to an already-claimed command (whose channel is no
// longer in the map).
func (in *Initiator) failPending(claimed *pendingCmd, cause error) {
	in.mu.Lock()
	if in.closed {
		in.readErr = ErrClosed
	} else {
		in.readErr = fmt.Errorf("%w: %v", ErrConnLost, cause)
	}
	err := in.readErr
	for id, pc := range in.pending {
		close(pc.ch)
		delete(in.pending, id)
	}
	in.mu.Unlock()
	if claimed != nil {
		claimed.ch <- compl{err: err}
	}
}

// receiveLoop reads completions and scatters their payloads directly into
// the waiting commands' destination buffers — no per-response allocation
// and no intermediate copy. Payloads for withdrawn (timed-out) commands
// are drained through a pooled scratch buffer to keep the stream framed.
func (in *Initiator) receiveLoop() {
	defer close(in.done)
	hdr := make([]byte, capsuleHeaderSize)
	var scratch []byte
	defer func() { bufpool.Shared.Put(scratch) }()
	for {
		if _, err := io.ReadFull(in.conn, hdr); err != nil {
			in.failPending(nil, err)
			return
		}
		if binary.LittleEndian.Uint32(hdr[0:4]) != Magic {
			in.conn.Close() //nolint:errcheck
			in.failPending(nil, ErrBadMagic)
			return
		}
		cmdID := binary.LittleEndian.Uint64(hdr[4:12])
		status := hdr[13]
		// The offset field of a throttled completion carries the target's
		// retry-after hint; on every other status it is unused.
		var ra uint64
		if status == statusThrottled {
			ra = binary.LittleEndian.Uint64(hdr[14:22])
		}
		n := int(binary.LittleEndian.Uint32(hdr[22:26]))
		if n > maxPayload {
			in.conn.Close() //nolint:errcheck
			in.failPending(nil, ErrTooLarge)
			return
		}

		in.mu.Lock()
		pc, ok := in.pending[cmdID]
		if ok {
			delete(in.pending, cmdID)
		}
		in.mu.Unlock()

		if n > 0 && in.opt.RequestTimeout > 0 {
			// Bound the payload body so a peer stalling mid-frame cannot
			// wedge a claimed command past its deadline.
			in.conn.SetReadDeadline(time.Now().Add(in.opt.RequestTimeout)) //nolint:errcheck
		}
		remaining := n
		landed := 0
		var rerr error
		var serr error // semantic sample-frame violation; stream stays framed
		if ok && status == statusOK {
			switch {
			case pc.dst != nil:
				k := min(len(pc.dst), remaining)
				if k > 0 {
					_, rerr = io.ReadFull(in.conn, pc.dst[:k])
					landed += k
					remaining -= k
				}
			case pc.smp != nil:
				// Sample-mode response: a count×u32 length block, then the
				// transformed records in request order. A record length
				// exceeding its destination (or the frame) is a semantic
				// error — scattering stops and the remainder drains through
				// scratch below, so the connection survives the bad frame.
				cnt := len(pc.smp)
				lb := 4 * cnt
				if remaining < lb {
					serr = fmt.Errorf("%w: sample response %d bytes before %d-record length block",
						ErrRemote, remaining, cnt)
					break
				}
				lbuf := bufpool.Shared.Get(lb)
				if _, rerr = io.ReadFull(in.conn, lbuf); rerr != nil {
					bufpool.Shared.Put(lbuf)
					break
				}
				remaining -= lb
				for i := 0; i < cnt && rerr == nil; i++ {
					l := int(binary.LittleEndian.Uint32(lbuf[4*i:]))
					if l > len(pc.smp[i].Dst) || l > remaining {
						serr = fmt.Errorf("%w: record %d length %d (dst %d, frame %d)",
							ErrRemote, i, l, len(pc.smp[i].Dst), remaining)
						break
					}
					if pc.lens != nil {
						pc.lens[i] = l
					}
					if l > 0 {
						_, rerr = io.ReadFull(in.conn, pc.smp[i].Dst[:l])
						landed += l
						remaining -= l
					}
				}
				if serr == nil && rerr == nil && remaining != 0 {
					serr = fmt.Errorf("%w: %d stray bytes after %d records", ErrRemote, remaining, cnt)
				}
				bufpool.Shared.Put(lbuf)
			default:
				for i := 0; i < len(pc.vec) && remaining > 0 && rerr == nil; i++ {
					d := pc.vec[i].Dst
					k := min(len(d), remaining)
					_, rerr = io.ReadFull(in.conn, d[:k])
					landed += k
					remaining -= k
				}
			}
		}
		for rerr == nil && remaining > 0 {
			if scratch == nil {
				scratch = bufpool.Shared.Get(32 << 10)
			}
			k := min(len(scratch), remaining)
			_, rerr = io.ReadFull(in.conn, scratch[:k])
			remaining -= k
		}
		if n > 0 && in.opt.RequestTimeout > 0 {
			in.conn.SetReadDeadline(time.Time{}) //nolint:errcheck
		}
		if rerr != nil {
			in.failPending(pc, rerr)
			return
		}
		if ok {
			pc.ch <- compl{status: status, n: landed, ra: ra, err: serr}
		}
	}
}

// submit registers pc and sends a request, returning the command ID for
// deadline cancellation. On error the registration is withdrawn; the
// caller must not reuse pc afterwards (its channel may be owned by a
// concurrent connection-failure sweep).
func (in *Initiator) submit(req *capsule, pc *pendingCmd) (uint64, error) {
	in.mu.Lock()
	if in.closed {
		in.mu.Unlock()
		return 0, ErrClosed
	}
	if in.readErr != nil {
		err := in.readErr
		in.mu.Unlock()
		return 0, err
	}
	if len(in.pending) >= in.depth {
		in.mu.Unlock()
		return 0, ErrDepthLimit
	}
	in.nextID++
	req.cmdID = in.nextID
	// Request capsules carry the tenant id in the status slot; zero is
	// the legacy default, so tenant-0 frames are byte-identical to the
	// pre-tenant protocol.
	req.status = byte(in.opt.Tenant)
	pc.op = req.opcode
	in.pending[req.cmdID] = pc
	in.mu.Unlock()

	in.sendMu.Lock()
	if in.opt.RequestTimeout > 0 {
		in.conn.SetWriteDeadline(time.Now().Add(in.opt.RequestTimeout)) //nolint:errcheck
	}
	err := writeCapsuleHdr(in.conn, req, in.sendHdr)
	if in.opt.RequestTimeout > 0 {
		in.conn.SetWriteDeadline(time.Time{}) //nolint:errcheck
	}
	in.sendMu.Unlock()
	if err != nil {
		in.mu.Lock()
		delete(in.pending, req.cmdID)
		closed := in.closed
		in.mu.Unlock()
		if closed {
			return 0, ErrClosed
		}
		return 0, fmt.Errorf("%w: %v", ErrConnLost, err)
	}
	return req.cmdID, nil
}

// await blocks for the completion of command id, bounded by the
// per-command deadline. On timeout the pending entry is withdrawn so a
// late completion is drained instead of leaking; if the receive loop has
// already claimed the command, await waits it out — the payload is
// actively landing in the caller's buffers and they must not be reused
// while the socket writes them.
func (in *Initiator) await(pc *pendingCmd, id uint64) (int, error) {
	var timeout <-chan time.Time
	if in.opt.RequestTimeout > 0 {
		t := time.NewTimer(in.opt.RequestTimeout)
		defer t.Stop()
		timeout = t.C
	}
	select {
	case c, ok := <-pc.ch:
		return in.finish(c, ok, pc, id)
	case <-timeout:
		in.mu.Lock()
		_, still := in.pending[id]
		if still {
			delete(in.pending, id)
		}
		in.mu.Unlock()
		if !still {
			// Claimed by the receive loop: completion is imminent (the
			// payload read is itself deadline-bounded).
			c, ok := <-pc.ch
			return in.finish(c, ok, pc, id)
		}
		putPending(pc)
		return 0, fmt.Errorf("%w: command %d after %v", ErrTimeout, id, in.opt.RequestTimeout)
	}
}

// finish interprets a completion delivery and recycles pc on clean paths.
func (in *Initiator) finish(c compl, ok bool, pc *pendingCmd, id uint64) (int, error) {
	if !ok {
		in.mu.Lock()
		err := in.readErr
		in.mu.Unlock()
		if err == nil {
			err = ErrClosed
		}
		return 0, err
	}
	if c.err != nil {
		return 0, c.err
	}
	if c.status != statusOK {
		op := pc.op
		putPending(pc)
		if c.status == statusBadOp && (op == opReadSamples || op == opWriteVec || op == opFlush) {
			// statusBadOp on these opcodes can only mean a target that does
			// not speak them: surface the typed downgrade signal.
			return 0, &UnsupportedOpError{Opcode: op}
		}
		if c.status == statusThrottled {
			// Admission control, not failure: typed, retryable, and
			// carrying the target's backoff hint. Never a breaker event.
			return 0, &ThrottledError{Tenant: in.opt.Tenant, RetryAfter: time.Duration(c.ra)}
		}
		if c.status == statusTenant {
			return 0, fmt.Errorf("%w: tenant %d rejected by target (command %d)", ErrRemote, in.opt.Tenant, id)
		}
		return 0, fmt.Errorf("%w: status %d for command %d", ErrRemote, c.status, id)
	}
	n := c.n
	putPending(pc)
	return n, nil
}

// ReadAt reads len(p) bytes at off from the remote store. The payload is
// received directly into p.
func (in *Initiator) ReadAt(p []byte, off int64) (int, error) {
	pd, err := in.ReadAsync(p, off)
	if err != nil {
		return 0, err
	}
	return pd.Wait()
}

// WriteAt writes p at off on the remote store.
func (in *Initiator) WriteAt(p []byte, off int64) (int, error) {
	pd, err := in.WriteAsync(p, off)
	if err != nil {
		return 0, err
	}
	if _, err := pd.Wait(); err != nil {
		return 0, err
	}
	return len(p), nil
}

// WriteAsync submits a write of p at off without waiting. The payload
// is fully on the wire when WriteAsync returns, so the caller may reuse
// p immediately; Wait() confirms the store landing.
func (in *Initiator) WriteAsync(p []byte, off int64) (*Pending, error) {
	pc := getPending()
	id, err := in.submit(&capsule{opcode: opWrite, offset: uint64(off), payload: p}, pc)
	if err != nil {
		return nil, err
	}
	return &Pending{in: in, pc: pc, id: id}, nil
}

// WSeg is one gather segment of a vectored write: len(Src) bytes
// destined for byte offset Off on the remote store.
type WSeg struct {
	Src []byte
	Off int64
}

// WriteVecAsync submits one gathered write covering every segment — a
// single wire command whose payload carries the extents' descriptors
// and bytes, landed by the target under a single seqlock epoch so a
// multi-extent checkpoint stripe becomes visible atomically. Only the
// descriptor block is staged; the data segments are gathered straight
// from the caller's buffers into a single vectored socket write, so no
// client-side copy of the payload is made. The payload is fully on the
// wire when WriteVecAsync returns, so source buffers are free for
// immediate reuse. A target that does not speak the opcode completes
// with *UnsupportedOpError; callers downgrade to per-extent WriteAt.
func (in *Initiator) WriteVecAsync(segs []WSeg) (*Pending, error) {
	if len(segs) == 0 || len(segs) > maxVecSegs {
		return nil, fmt.Errorf("nvmetcp: vectored write of %d segments", len(segs))
	}
	total := 0
	for i, s := range segs {
		if len(s.Src) == 0 {
			return nil, fmt.Errorf("nvmetcp: vectored write segment %d is empty", i)
		}
		total += len(s.Src)
	}
	framed := writeVecHdrSize + vecSegSize*len(segs) + total
	if framed > maxPayload {
		return nil, fmt.Errorf("%w: vectored write of %d bytes", ErrTooLarge, framed)
	}
	vsegs := make([]vecSeg, len(segs))
	for i, s := range segs {
		vsegs[i] = vecSeg{off: uint64(s.Off), n: uint32(len(s.Src))}
	}
	desc := bufpool.Shared.Get(writeVecHdrSize + vecSegSize*len(segs))
	n := encodeWriteVec(desc, vsegs)
	gather := make(net.Buffers, 0, len(segs)+1)
	gather = append(gather, desc[:n])
	for _, s := range segs {
		gather = append(gather, s.Src)
	}
	pc := getPending()
	id, err := in.submit(&capsule{opcode: opWriteVec, gather: gather}, pc)
	bufpool.Shared.Put(desc) // descriptors on the wire (or failed) by now
	if err != nil {
		return nil, err
	}
	return &Pending{in: in, pc: pc, id: id}, nil
}

// WriteVec performs a synchronous gathered write, returning the total
// data bytes written.
func (in *Initiator) WriteVec(segs []WSeg) (int, error) {
	pd, err := in.WriteVecAsync(segs)
	if err != nil {
		return 0, err
	}
	if _, err := pd.Wait(); err != nil {
		return 0, err
	}
	n := 0
	for _, s := range segs {
		n += len(s.Src)
	}
	return n, nil
}

// FlushAsync submits a durability barrier: it completes only once
// every write submitted on this connection before it has been applied
// and the store synced. A target that does not speak the opcode
// completes with *UnsupportedOpError.
func (in *Initiator) FlushAsync() (*Pending, error) {
	pc := getPending()
	id, err := in.submit(&capsule{opcode: opFlush}, pc)
	if err != nil {
		return nil, err
	}
	return &Pending{in: in, pc: pc, id: id}, nil
}

// Flush performs a synchronous durability barrier.
func (in *Initiator) Flush() error {
	pd, err := in.FlushAsync()
	if err != nil {
		return err
	}
	_, err = pd.Wait()
	return err
}

// Pending is an in-flight asynchronous read.
type Pending struct {
	in *Initiator
	pc *pendingCmd
	id uint64
}

// ReadAsync submits a read without waiting. Wait() completes it.
func (in *Initiator) ReadAsync(dst []byte, off int64) (*Pending, error) {
	var lenBuf [4]byte
	binary.LittleEndian.PutUint32(lenBuf[:], uint32(len(dst)))
	pc := getPending()
	pc.dst = dst
	id, err := in.submit(&capsule{opcode: opRead, offset: uint64(off), payload: lenBuf[:]}, pc)
	if err != nil {
		return nil, err
	}
	return &Pending{in: in, pc: pc, id: id}, nil
}

// ReadVecAsync submits one vectored read covering every segment: a single
// wire command whose response scatters into the segments' buffers in
// order. Adjacent chunk reads coalesce into one roundtrip this way.
func (in *Initiator) ReadVecAsync(segs []Seg) (*Pending, error) {
	if len(segs) == 0 || len(segs) > maxVecSegs {
		return nil, fmt.Errorf("nvmetcp: vectored read of %d segments", len(segs))
	}
	pay := bufpool.Shared.Get(4 + vecSegSize*len(segs))
	binary.LittleEndian.PutUint32(pay[0:4], uint32(len(segs)))
	p := 4
	for _, s := range segs {
		binary.LittleEndian.PutUint64(pay[p:p+8], uint64(s.Off))
		binary.LittleEndian.PutUint32(pay[p+8:p+12], uint32(len(s.Dst)))
		p += vecSegSize
	}
	pc := getPending()
	pc.vec = segs
	id, err := in.submit(&capsule{opcode: opReadVec, payload: pay[:p]}, pc)
	bufpool.Shared.Put(pay) // frame fully written (or failed) by now
	if err != nil {
		return nil, err
	}
	return &Pending{in: in, pc: pc, id: id}, nil
}

// ReadVec performs a synchronous vectored read.
func (in *Initiator) ReadVec(segs []Seg) (int, error) {
	pd, err := in.ReadVecAsync(segs)
	if err != nil {
		return 0, err
	}
	return pd.Wait()
}

// ThrottledError reports a command rejected by the target's per-tenant
// admission control: the tenant is over its byte or IOPS quota, and the
// target suggests retrying after RetryAfter. It unwraps to ErrThrottled,
// which IsRetryable accepts, so the Reconnector's ordinary retry ladder
// absorbs throttling — without retiring the (healthy) connection and
// without the client's circuit breaker ever seeing it.
type ThrottledError struct {
	Tenant     int
	RetryAfter time.Duration
}

func (e *ThrottledError) Error() string {
	return fmt.Sprintf("nvmetcp: tenant %d throttled, retry after %v", e.Tenant, e.RetryAfter)
}

func (e *ThrottledError) Unwrap() error { return ErrThrottled }

// UnsupportedOpError reports a target that rejected a capsule opcode
// with statusBadOp — an old target behind a new client during a rolling
// upgrade. It unwraps to ErrRemote so it is never retried; callers
// downgrade to an older opcode instead.
type UnsupportedOpError struct{ Opcode byte }

func (e *UnsupportedOpError) Error() string {
	return fmt.Sprintf("nvmetcp: opcode %d unsupported by target", e.Opcode)
}

func (e *UnsupportedOpError) Unwrap() error { return ErrRemote }

// SampleSeg describes one record of a server-assembled read
// (opReadSamples): N stored bytes at Off, transformed target-side, its
// output landing in Dst. Dst must hold TransformOutLen(xform, N) bytes
// for fixed-size transforms, or the expansion bound for TransformFlate.
type SampleSeg struct {
	Dst []byte
	Off int64
	N   int
}

// ReadSamplesAsync submits one opReadSamples offload command: the
// target assembles every described record from its extents, applies the
// transform, and responds with exactly the post-transform bytes, which
// scatter directly into the segments' Dst buffers. lens, when non-nil,
// must have len(segs) entries; the receive loop fills it with each
// record's landed length (needed by size-changing transforms). A target
// that does not speak the opcode completes with *UnsupportedOpError.
func (in *Initiator) ReadSamplesAsync(xform byte, segs []SampleSeg, lens []int) (*Pending, error) {
	if len(segs) == 0 || len(segs) > MaxSampleDescs {
		return nil, fmt.Errorf("nvmetcp: sample read of %d records", len(segs))
	}
	if !TransformValid(xform) {
		return nil, fmt.Errorf("nvmetcp: unknown transform %d", xform)
	}
	if lens != nil && len(lens) != len(segs) {
		return nil, fmt.Errorf("nvmetcp: lens holds %d of %d records", len(lens), len(segs))
	}
	pay := bufpool.Shared.Get(sampleHdrSize + sampleDescSize*len(segs))
	pay[0] = xform
	binary.LittleEndian.PutUint32(pay[1:5], uint32(len(segs)))
	p := sampleHdrSize
	for _, s := range segs {
		binary.LittleEndian.PutUint64(pay[p:p+8], uint64(s.Off))
		binary.LittleEndian.PutUint32(pay[p+8:p+12], uint32(s.N))
		p += sampleDescSize
	}
	pc := getPending()
	pc.smp = segs
	pc.lens = lens
	id, err := in.submit(&capsule{opcode: opReadSamples, payload: pay[:p]}, pc)
	bufpool.Shared.Put(pay) // frame fully written (or failed) by now
	if err != nil {
		return nil, err
	}
	return &Pending{in: in, pc: pc, id: id}, nil
}

// ReadSamples performs a synchronous server-assembled read, returning
// the total payload bytes landed.
func (in *Initiator) ReadSamples(xform byte, segs []SampleSeg, lens []int) (int, error) {
	pd, err := in.ReadSamplesAsync(xform, segs, lens)
	if err != nil {
		return 0, err
	}
	return pd.Wait()
}

// Wait blocks until the read completes; the payload has then landed in
// the destination buffer(s).
func (pd *Pending) Wait() (int, error) {
	return pd.in.await(pd.pc, pd.id)
}

// Close tears the connection down; outstanding commands fail promptly
// with ErrClosed (the closed flag is set before the socket is torn down,
// so the receive loop can tell a deliberate close from a lost peer).
func (in *Initiator) Close() error {
	in.mu.Lock()
	if in.closed {
		in.mu.Unlock()
		return nil
	}
	in.closed = true
	in.mu.Unlock()
	err := in.conn.Close()
	<-in.done
	return err
}

// abort tears the connection down without marking a deliberate close:
// in-flight and future callers observe a retryable ErrConnLost instead
// of ErrClosed. Used by the Reconnector to retire a failed queue pair
// while other goroutines still hold pendings on it.
func (in *Initiator) abort() {
	in.conn.Close() //nolint:errcheck
	<-in.done
}
