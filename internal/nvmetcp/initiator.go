package nvmetcp

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"syscall"
	"time"
)

// Options tunes an initiator's failure behaviour. The zero value takes
// defaults; pass a negative RequestTimeout to disable per-command
// deadlines entirely (every blocking wait is still released by Close or
// by connection loss).
type Options struct {
	DialTimeout    time.Duration // dial + handshake bound (default 10s)
	RequestTimeout time.Duration // per-command deadline (default 30s; <0 disables)
}

func (o Options) withDefaults() Options {
	if o.DialTimeout <= 0 {
		o.DialTimeout = 10 * time.Second
	}
	if o.RequestTimeout == 0 {
		o.RequestTimeout = 30 * time.Second
	}
	return o
}

// Initiator is the client side of one queue pair: a TCP connection to a
// Target with asynchronous submit and out-of-order completion delivery.
// It is safe for concurrent use.
type Initiator struct {
	conn     net.Conn
	opt      Options
	depth    int
	capacity int64

	mu      sync.Mutex
	nextID  uint64
	pending map[uint64]chan *capsule
	sendMu  sync.Mutex
	closed  bool
	readErr error
	done    chan struct{}
}

// Errors.
var (
	ErrClosed     = errors.New("nvmetcp: initiator closed")
	ErrRemote     = errors.New("nvmetcp: remote error")
	ErrHandshake  = errors.New("nvmetcp: handshake failed")
	ErrDepthLimit = errors.New("nvmetcp: queue depth exceeded")
	ErrTimeout    = errors.New("nvmetcp: command deadline exceeded")
	ErrConnLost   = errors.New("nvmetcp: connection lost")
)

// IsRetryable classifies an error from this package (or from dialing) as
// a transient transport condition worth retrying on a fresh connection,
// as opposed to a deliberate close or a remote semantic error. Timeouts,
// lost connections, queue-depth pressure and network-level failures are
// retryable; ErrClosed and ErrRemote are not.
func IsRetryable(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, ErrTimeout) || errors.Is(err, ErrConnLost) || errors.Is(err, ErrDepthLimit) {
		return true
	}
	if errors.Is(err, ErrClosed) || errors.Is(err, ErrRemote) {
		return false
	}
	var ne net.Error
	if errors.As(err, &ne) {
		return true
	}
	return errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) ||
		errors.Is(err, syscall.ECONNREFUSED) || errors.Is(err, syscall.ECONNRESET) ||
		errors.Is(err, syscall.EPIPE)
}

// Connect dials a target and performs the hello handshake with default
// Options.
func Connect(addr string) (*Initiator, error) {
	return ConnectOptions(addr, Options{})
}

// ConnectOptions dials a target with explicit failure options. The
// handshake is bounded by DialTimeout, so a black-holed target cannot
// hang the caller.
func ConnectOptions(addr string, opt Options) (*Initiator, error) {
	opt = opt.withDefaults()
	conn, err := net.DialTimeout("tcp", addr, opt.DialTimeout)
	if err != nil {
		return nil, err
	}
	conn.SetDeadline(time.Now().Add(opt.DialTimeout)) //nolint:errcheck
	if err := writeCapsule(conn, &capsule{opcode: opHello}); err != nil {
		conn.Close() //nolint:errcheck
		return nil, fmt.Errorf("%w: %w", ErrHandshake, err)
	}
	hello, err := readCapsule(conn)
	if err != nil {
		conn.Close() //nolint:errcheck
		return nil, fmt.Errorf("%w: %w", ErrHandshake, err)
	}
	if hello.opcode != opHello {
		conn.Close() //nolint:errcheck
		return nil, fmt.Errorf("%w: unexpected opcode %d in hello reply", ErrHandshake, hello.opcode)
	}
	conn.SetDeadline(time.Time{}) //nolint:errcheck
	in := &Initiator{
		conn:     conn,
		opt:      opt,
		depth:    int(hello.offset),
		capacity: int64(hello.cmdID),
		pending:  make(map[uint64]chan *capsule),
		done:     make(chan struct{}),
	}
	go in.receiveLoop()
	return in, nil
}

// Depth returns the negotiated queue depth.
func (in *Initiator) Depth() int { return in.depth }

// Capacity returns the target device's capacity in bytes.
func (in *Initiator) Capacity() int64 { return in.capacity }

func (in *Initiator) receiveLoop() {
	defer close(in.done)
	for {
		resp, err := readCapsule(in.conn)
		if err != nil {
			// Record why the connection died before releasing waiters:
			// a deliberate Close surfaces as ErrClosed, anything else as
			// a retryable ErrConnLost carrying the underlying cause.
			in.mu.Lock()
			if in.closed {
				in.readErr = ErrClosed
			} else {
				in.readErr = fmt.Errorf("%w: %v", ErrConnLost, err)
			}
			for id, ch := range in.pending {
				close(ch)
				delete(in.pending, id)
			}
			in.mu.Unlock()
			return
		}
		in.mu.Lock()
		ch, ok := in.pending[resp.cmdID]
		if ok {
			delete(in.pending, resp.cmdID)
		}
		in.mu.Unlock()
		if ok {
			ch <- resp
		}
	}
}

// submit sends a request and returns the channel its completion will
// arrive on, plus the command ID for deadline cancellation.
func (in *Initiator) submit(req *capsule) (chan *capsule, uint64, error) {
	in.mu.Lock()
	if in.closed {
		in.mu.Unlock()
		return nil, 0, ErrClosed
	}
	if in.readErr != nil {
		err := in.readErr
		in.mu.Unlock()
		return nil, 0, err
	}
	if len(in.pending) >= in.depth {
		in.mu.Unlock()
		return nil, 0, ErrDepthLimit
	}
	in.nextID++
	req.cmdID = in.nextID
	ch := make(chan *capsule, 1)
	in.pending[req.cmdID] = ch
	in.mu.Unlock()

	in.sendMu.Lock()
	if in.opt.RequestTimeout > 0 {
		in.conn.SetWriteDeadline(time.Now().Add(in.opt.RequestTimeout)) //nolint:errcheck
	}
	err := writeCapsule(in.conn, req)
	if in.opt.RequestTimeout > 0 {
		in.conn.SetWriteDeadline(time.Time{}) //nolint:errcheck
	}
	in.sendMu.Unlock()
	if err != nil {
		in.mu.Lock()
		delete(in.pending, req.cmdID)
		closed := in.closed
		in.mu.Unlock()
		if closed {
			return nil, 0, ErrClosed
		}
		return nil, 0, fmt.Errorf("%w: %v", ErrConnLost, err)
	}
	return ch, req.cmdID, nil
}

// await blocks for the completion of command id, bounded by the
// per-command deadline. On timeout the pending entry is withdrawn so a
// late completion is dropped instead of leaking.
func (in *Initiator) await(ch chan *capsule, id uint64) (*capsule, error) {
	var timeout <-chan time.Time
	if in.opt.RequestTimeout > 0 {
		t := time.NewTimer(in.opt.RequestTimeout)
		defer t.Stop()
		timeout = t.C
	}
	select {
	case resp, ok := <-ch:
		if !ok {
			in.mu.Lock()
			err := in.readErr
			in.mu.Unlock()
			if err == nil {
				err = ErrClosed
			}
			return nil, err
		}
		if resp.status != statusOK {
			return nil, fmt.Errorf("%w: status %d", ErrRemote, resp.status)
		}
		return resp, nil
	case <-timeout:
		in.mu.Lock()
		delete(in.pending, id)
		in.mu.Unlock()
		return nil, fmt.Errorf("%w: command %d after %v", ErrTimeout, id, in.opt.RequestTimeout)
	}
}

// ReadAt reads len(p) bytes at off from the remote store.
func (in *Initiator) ReadAt(p []byte, off int64) (int, error) {
	var lenBuf [4]byte
	binary.LittleEndian.PutUint32(lenBuf[:], uint32(len(p)))
	ch, id, err := in.submit(&capsule{opcode: opRead, offset: uint64(off), payload: lenBuf[:]})
	if err != nil {
		return 0, err
	}
	resp, err := in.await(ch, id)
	if err != nil {
		return 0, err
	}
	return copy(p, resp.payload), nil
}

// WriteAt writes p at off on the remote store.
func (in *Initiator) WriteAt(p []byte, off int64) (int, error) {
	ch, id, err := in.submit(&capsule{opcode: opWrite, offset: uint64(off), payload: p})
	if err != nil {
		return 0, err
	}
	if _, err := in.await(ch, id); err != nil {
		return 0, err
	}
	return len(p), nil
}

// Pending is an in-flight asynchronous read.
type Pending struct {
	in  *Initiator
	ch  chan *capsule
	id  uint64
	dst []byte
}

// ReadAsync submits a read without waiting. Wait() completes it.
func (in *Initiator) ReadAsync(dst []byte, off int64) (*Pending, error) {
	var lenBuf [4]byte
	binary.LittleEndian.PutUint32(lenBuf[:], uint32(len(dst)))
	ch, id, err := in.submit(&capsule{opcode: opRead, offset: uint64(off), payload: lenBuf[:]})
	if err != nil {
		return nil, err
	}
	return &Pending{in: in, ch: ch, id: id, dst: dst}, nil
}

// Wait blocks until the read completes and fills the destination buffer.
func (pd *Pending) Wait() (int, error) {
	resp, err := pd.in.await(pd.ch, pd.id)
	if err != nil {
		return 0, err
	}
	return copy(pd.dst, resp.payload), nil
}

// Close tears the connection down; outstanding commands fail promptly
// with ErrClosed (the closed flag is set before the socket is torn down,
// so the receive loop can tell a deliberate close from a lost peer).
func (in *Initiator) Close() error {
	in.mu.Lock()
	if in.closed {
		in.mu.Unlock()
		return nil
	}
	in.closed = true
	in.mu.Unlock()
	err := in.conn.Close()
	<-in.done
	return err
}

// abort tears the connection down without marking a deliberate close:
// in-flight and future callers observe a retryable ErrConnLost instead
// of ErrClosed. Used by the Reconnector to retire a failed queue pair
// while other goroutines still hold pendings on it.
func (in *Initiator) abort() {
	in.conn.Close() //nolint:errcheck
	<-in.done
}
