package nvmetcp

import (
	"fmt"
	"sync/atomic"

	"dlfs/internal/metrics"
)

// QPGroup drives one target through several reconnecting queue pairs —
// the per-device I/O queue pair fan-out of the paper's §III-C backend
// mapped onto TCP. Commands are striped round-robin across the pairs, so
// one slow or reconnecting connection no longer serialises the target's
// whole chunk stream; each pair recovers independently (its own backoff
// schedule, shared resilience counters). It is safe for concurrent use.
type QPGroup struct {
	addr string
	qps  []*Reconnector
	next atomic.Uint64
}

// NewQPGroup dials n queue pairs to addr (n < 1 is treated as 1). Each
// pair gets a distinct jitter seed derived from policy.Seed so their
// backoff schedules do not synchronise. All pairs share counters.
func NewQPGroup(addr string, n int, opt Options, policy RetryPolicy, counters *metrics.Resilience) (*QPGroup, error) {
	if n < 1 {
		n = 1
	}
	g := &QPGroup{addr: addr, qps: make([]*Reconnector, n)}
	for i := 0; i < n; i++ {
		p := policy
		p.Seed = policy.Seed*31 + int64(i)*0x9E3779B9 + 1
		rc, err := NewReconnector(addr, opt, p, counters)
		if err != nil {
			for _, prev := range g.qps[:i] {
				prev.Close() //nolint:errcheck
			}
			return nil, fmt.Errorf("nvmetcp: qp %d/%d to %s: %w", i+1, n, addr, err)
		}
		g.qps[i] = rc
	}
	return g, nil
}

// Addr returns the target address.
func (g *QPGroup) Addr() string { return g.addr }

// NumQPs returns the number of queue pairs in the group.
func (g *QPGroup) NumQPs() int { return len(g.qps) }

// Capacity returns the capacity negotiated at first connect.
func (g *QPGroup) Capacity() int64 { return g.qps[0].Capacity() }

// pick stripes commands across the pairs round-robin.
func (g *QPGroup) pick() *Reconnector {
	if len(g.qps) == 1 {
		return g.qps[0]
	}
	return g.qps[g.next.Add(1)%uint64(len(g.qps))]
}

// ReadAt reads len(p) bytes at off on the next queue pair in the stripe.
func (g *QPGroup) ReadAt(p []byte, off int64) (int, error) { return g.pick().ReadAt(p, off) }

// WriteAt writes p at off on the next queue pair in the stripe.
func (g *QPGroup) WriteAt(p []byte, off int64) (int, error) { return g.pick().WriteAt(p, off) }

// ReadAsync submits a pipelined read on the next queue pair.
func (g *QPGroup) ReadAsync(dst []byte, off int64) (*RePending, error) {
	return g.pick().ReadAsync(dst, off)
}

// ReadVecAsync submits a pipelined vectored read on the next queue pair.
func (g *QPGroup) ReadVecAsync(segs []Seg) (*RePending, error) {
	return g.pick().ReadVecAsync(segs)
}

// ReadSamplesAsync submits a pipelined server-assembled read on the
// next queue pair.
func (g *QPGroup) ReadSamplesAsync(xform byte, segs []SampleSeg, lens []int) (*RePending, error) {
	return g.pick().ReadSamplesAsync(xform, segs, lens)
}

// WriteAsync submits a pipelined write on the next queue pair.
func (g *QPGroup) WriteAsync(p []byte, off int64) (*RePending, error) {
	return g.pick().WriteAsync(p, off)
}

// WriteVecAsync submits a pipelined gathered write on the next queue
// pair.
func (g *QPGroup) WriteVecAsync(segs []WSeg) (*RePending, error) {
	return g.pick().WriteVecAsync(segs)
}

// Flush issues a durability barrier on every queue pair in the group —
// writes stripe across the pairs, so only the full fan-out covers them
// all. The first error wins but every pair is still flushed.
func (g *QPGroup) Flush() error {
	var err error
	for _, rc := range g.qps {
		if ferr := rc.Flush(); err == nil {
			err = ferr
		}
	}
	return err
}

// Close tears down every queue pair, returning the first error.
func (g *QPGroup) Close() error {
	var err error
	for _, rc := range g.qps {
		if cerr := rc.Close(); err == nil {
			err = cerr
		}
	}
	return err
}
