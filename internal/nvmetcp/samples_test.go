package nvmetcp

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"errors"
	"strings"
	"sync"
	"testing"

	"dlfs/internal/blockdev"
)

// sampleListPayload frames a raw opReadSamples request for rejection
// tests that need malformed counts/lengths encodeSampleList refuses to
// produce.
func sampleListPayload(xform byte, descs [][2]uint64) []byte {
	p := make([]byte, sampleHdrSize+len(descs)*sampleDescSize)
	p[0] = xform
	binary.LittleEndian.PutUint32(p[1:5], uint32(len(descs)))
	at := sampleHdrSize
	for _, d := range descs {
		binary.LittleEndian.PutUint64(p[at:at+8], d[0])
		binary.LittleEndian.PutUint32(p[at+8:at+12], uint32(d[1]))
		at += sampleDescSize
	}
	return p
}

func TestSampleListCodecRoundTrip(t *testing.T) {
	segs := []vecSeg{{off: 0, n: 512}, {off: 1 << 30, n: 1}, {off: 4096, n: 40 << 10}}
	dst := make([]byte, sampleHdrSize+len(segs)*sampleDescSize)
	n := encodeSampleList(dst, TransformCRC32C, segs)
	if n != len(dst) {
		t.Fatalf("encoded %d bytes, want %d", n, len(dst))
	}
	xform, got, total, err := decodeSampleList(dst[:n])
	if err != nil {
		t.Fatal(err)
	}
	if xform != TransformCRC32C {
		t.Fatalf("transform %d", xform)
	}
	if len(got) != len(segs) {
		t.Fatalf("decoded %d descs", len(got))
	}
	for i := range segs {
		if got[i] != segs[i] {
			t.Fatalf("desc %d: %+v != %+v", i, got[i], segs[i])
		}
	}
	if want := 512 + 1 + 40<<10; total != want {
		t.Fatalf("total %d, want %d", total, want)
	}
}

// TestSampleListDecodeRejects is the bounds table: every cap is
// enforced before the descriptor slice is allocated, zero and negative
// record lengths are refused, and the transform byte is validated.
func TestSampleListDecodeRejects(t *testing.T) {
	overCount := sampleListPayload(TransformNone, make([][2]uint64, 3))
	binary.LittleEndian.PutUint32(overCount[1:5], MaxSampleDescs+1)
	hugeCount := sampleListPayload(TransformNone, [][2]uint64{{0, 64}})
	binary.LittleEndian.PutUint32(hugeCount[1:5], 0xFFFFFFFF)
	cases := []struct {
		name    string
		payload []byte
	}{
		{"empty", nil},
		{"short-header", []byte{0, 1, 0}},
		{"bad-transform", sampleListPayload(numTransforms, [][2]uint64{{0, 64}})},
		{"zero-count", sampleListPayload(TransformNone, nil)},
		{"count-over-cap", overCount},
		{"count-wraps-alloc", hugeCount},
		{"count-payload-mismatch", sampleListPayload(TransformNone, [][2]uint64{{0, 64}})[:sampleHdrSize+6]},
		{"zero-length-record", sampleListPayload(TransformNone, [][2]uint64{{0, 64}, {128, 0}})},
		{"negative-length-record", sampleListPayload(TransformNone, [][2]uint64{{0, 0x80000000}})},
		{"total-over-payload-cap", sampleListPayload(TransformNone, [][2]uint64{
			{0, uint64(maxPayload/2 + 1)}, {0, uint64(maxPayload/2 + 1)},
		})},
	}
	for _, tc := range cases {
		if _, _, _, err := decodeSampleList(tc.payload); err == nil {
			t.Errorf("%s: decode accepted a malformed frame", tc.name)
		}
	}
}

// TestReadSamplesTransforms drives every fixed-size transform end to
// end over the real TCP engine and checks both the payload and the
// target's assembly accounting.
func TestReadSamplesTransforms(t *testing.T) {
	data := patterned(256 << 10)
	tgt, addr := startVecTarget(t, data)
	in, err := Connect(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close() //nolint:errcheck

	records := []struct {
		off int64
		n   int
	}{{100, 1000}, {64 << 10, 40 << 10}, {200 << 10, 1}}
	mkSegs := func(xform byte) []SampleSeg {
		segs := make([]SampleSeg, len(records))
		for i, r := range records {
			segs[i] = SampleSeg{Dst: make([]byte, TransformOutLen(xform, r.n)), Off: r.off, N: r.n}
		}
		return segs
	}

	t.Run("none", func(t *testing.T) {
		segs := mkSegs(TransformNone)
		lens := make([]int, len(segs))
		n, err := in.ReadSamples(TransformNone, segs, lens)
		if err != nil {
			t.Fatal(err)
		}
		want := 0
		for i, r := range records {
			if !bytes.Equal(segs[i].Dst, data[r.off:r.off+int64(r.n)]) {
				t.Fatalf("record %d corrupt", i)
			}
			if lens[i] != r.n {
				t.Fatalf("record %d landed %d bytes, want %d", i, lens[i], r.n)
			}
			want += r.n
		}
		if n != want {
			t.Fatalf("landed %d bytes, want %d", n, want)
		}
	})
	t.Run("crc32c", func(t *testing.T) {
		segs := mkSegs(TransformCRC32C)
		if _, err := in.ReadSamples(TransformCRC32C, segs, nil); err != nil {
			t.Fatal(err)
		}
		for i, r := range records {
			body, ok := VerifyCRC32C(segs[i].Dst)
			if !ok {
				t.Fatalf("record %d failed crc verification", i)
			}
			if !bytes.Equal(body, data[r.off:r.off+int64(r.n)]) {
				t.Fatalf("record %d corrupt after strip", i)
			}
		}
	})
	t.Run("stride", func(t *testing.T) {
		segs := mkSegs(TransformStride)
		if _, err := in.ReadSamples(TransformStride, segs, nil); err != nil {
			t.Fatal(err)
		}
		for i, r := range records {
			src := data[r.off : r.off+int64(r.n)]
			for j := range segs[i].Dst {
				if segs[i].Dst[j] != src[j*strideStep] {
					t.Fatalf("record %d byte %d not the strided source", i, j)
				}
			}
		}
	})

	st := tgt.ServerStats()
	if st.SampleCmds != 3 || st.AssembledSamples != int64(3*len(records)) {
		t.Fatalf("assembly accounting cmds=%d samples=%d", st.SampleCmds, st.AssembledSamples)
	}
	if st.TransformNanos == 0 {
		t.Fatal("transform time not observed")
	}
}

// TestReadSamplesFlate stores DEFLATE-compressed records and reads them
// back decompressed — the target pays the inflation, the client
// receives training-ready bytes with per-record lengths from the
// response length block.
func TestReadSamplesFlate(t *testing.T) {
	_, addr := startTarget(t, 1<<20, 16)
	in, err := Connect(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close() //nolint:errcheck

	plains := [][]byte{
		bytes.Repeat([]byte("deep learning sample "), 100),
		bytes.Repeat([]byte{0x42}, 4096),
	}
	var offs []int64
	var lens32 []int
	off := int64(0)
	for _, p := range plains {
		var zb bytes.Buffer
		zw, _ := flate.NewWriter(&zb, flate.BestSpeed)
		zw.Write(p) //nolint:errcheck
		zw.Close()  //nolint:errcheck
		if _, err := in.WriteAt(zb.Bytes(), off); err != nil {
			t.Fatal(err)
		}
		offs = append(offs, off)
		lens32 = append(lens32, zb.Len())
		off += int64(zb.Len() + 512)
	}
	segs := make([]SampleSeg, len(plains))
	for i := range plains {
		segs[i] = SampleSeg{Dst: make([]byte, len(plains[i])+64), Off: offs[i], N: lens32[i]}
	}
	lens := make([]int, len(segs))
	if _, err := in.ReadSamples(TransformFlate, segs, lens); err != nil {
		t.Fatal(err)
	}
	for i, p := range plains {
		if lens[i] != len(p) {
			t.Fatalf("record %d inflated to %d bytes, want %d", i, lens[i], len(p))
		}
		if !bytes.Equal(segs[i].Dst[:lens[i]], p) {
			t.Fatalf("record %d corrupt after inflate", i)
		}
	}
}

// TestReadSamplesStatusMapping checks the status taxonomy: out-of-range
// descriptors and invalid transforms are remote command errors on a
// connection that stays usable, and only statusBadOp maps to the typed
// downgrade error.
func TestReadSamplesStatusMapping(t *testing.T) {
	_, addr := startTarget(t, 4096, 8)
	in, err := Connect(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close() //nolint:errcheck

	var ue *UnsupportedOpError
	if _, err := in.ReadSamples(TransformNone, []SampleSeg{{Dst: make([]byte, 64), Off: 8000, N: 64}}, nil); !errors.Is(err, ErrRemote) || errors.As(err, &ue) {
		t.Fatalf("out-of-range sample: %v", err)
	}
	// The connection survives the error completion.
	if _, err := in.ReadSamples(TransformNone, []SampleSeg{{Dst: make([]byte, 64), Off: 0, N: 64}}, nil); err != nil {
		t.Fatalf("read after error: %v", err)
	}
}

// TestLegacyTargetDowngrade pairs a new client with an old-opcode
// target (Config.LegacyOps): opReadSamples must complete with the typed
// *UnsupportedOpError — non-retryable, so the Reconnector returns it
// immediately — while the legacy opcodes keep working on the same
// connection. This is the rolling-upgrade downgrade contract.
func TestLegacyTargetDowngrade(t *testing.T) {
	store := blockdev.New(1 << 20)
	data := patterned(8 << 10)
	if _, err := store.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}
	tgt := NewTargetConfig(store, Config{Depth: 8, LegacyOps: true})
	addr, err := tgt.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { tgt.Close() }) //nolint:errcheck

	segs := []SampleSeg{{Dst: make([]byte, 512), Off: 0, N: 512}}
	t.Run("initiator", func(t *testing.T) {
		in, err := Connect(addr)
		if err != nil {
			t.Fatal(err)
		}
		defer in.Close() //nolint:errcheck
		_, err = in.ReadSamples(TransformNone, segs, nil)
		var ue *UnsupportedOpError
		if !errors.As(err, &ue) || ue.Opcode != opReadSamples {
			t.Fatalf("want *UnsupportedOpError{opReadSamples}, got %v", err)
		}
		if IsRetryable(err) {
			t.Fatal("downgrade signal must not be retryable")
		}
		if !strings.Contains(err.Error(), "unsupported") {
			t.Fatalf("unhelpful error text: %v", err)
		}
		// Old opcodes still work on the very same connection.
		buf := make([]byte, 512)
		if _, err := in.ReadAt(buf, 0); err != nil || !bytes.Equal(buf, data[:512]) {
			t.Fatalf("legacy read after downgrade: %v", err)
		}
		if _, err := in.ReadVec([]Seg{{Dst: buf, Off: 1024}}); err != nil {
			t.Fatalf("legacy vec read after downgrade: %v", err)
		}
	})
	t.Run("reconnector", func(t *testing.T) {
		rc, err := NewReconnector(addr, Options{}, RetryPolicy{MaxRetries: 3}, nil)
		if err != nil {
			t.Fatal(err)
		}
		defer rc.Close() //nolint:errcheck
		_, err = rc.ReadSamples(TransformNone, segs, nil)
		var ue *UnsupportedOpError
		if !errors.As(err, &ue) {
			t.Fatalf("want *UnsupportedOpError through reconnector, got %v", err)
		}
		if got := rc.Counters().Retries.Load(); got != 0 {
			t.Fatalf("downgrade burned %d retries", got)
		}
	})
	t.Run("async-wait-fallback", func(t *testing.T) {
		rc, err := NewReconnector(addr, Options{}, RetryPolicy{MaxRetries: 1}, nil)
		if err != nil {
			t.Fatal(err)
		}
		defer rc.Close() //nolint:errcheck
		rp, err := rc.ReadSamplesAsync(TransformNone, segs, nil)
		if err != nil {
			t.Fatal(err)
		}
		var ue *UnsupportedOpError
		if _, err := rp.Wait(); !errors.As(err, &ue) {
			t.Fatalf("async downgrade: %v", err)
		}
	})
}

// TestReadSamplesConcurrentWrites races sample assembly against whole-
// record overwrites. The crc32c transform runs on the staged path: each
// record is snapshotted under the store's read lock before the checksum
// is computed, so every delivered record must verify and be internally
// consistent — one fill value, never a torn mix. TransformNone reads
// ride along to drive the zero-copy restage path under the race
// detector (its flush tolerates in-writev tears by design, so only
// completion is asserted there).
func TestReadSamplesConcurrentWrites(t *testing.T) {
	const recLen = 4096
	const nRec = 8
	store := blockdev.New(1 << 20)
	for i := 0; i < nRec; i++ {
		if _, err := store.WriteAt(bytes.Repeat([]byte{1}, recLen), int64(i*recLen)); err != nil {
			t.Fatal(err)
		}
	}
	tgt := NewTargetConfig(store, Config{Depth: 32})
	addr, err := tgt.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { tgt.Close() }) //nolint:errcheck
	in, err := Connect(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close() //nolint:errcheck

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		w, err := Connect(addr)
		if err != nil {
			return
		}
		defer w.Close() //nolint:errcheck
		fill := byte(2)
		for {
			select {
			case <-stop:
				return
			default:
			}
			for i := 0; i < nRec; i++ {
				if _, err := w.WriteAt(bytes.Repeat([]byte{fill}, recLen), int64(i*recLen)); err != nil {
					return
				}
			}
			fill++
			if fill == 0 {
				fill = 1
			}
		}
	}()
	crcSegs := make([]SampleSeg, nRec)
	rawSegs := make([]SampleSeg, nRec)
	for i := range crcSegs {
		off := int64(i * recLen)
		crcSegs[i] = SampleSeg{Dst: make([]byte, recLen+4), Off: off, N: recLen}
		rawSegs[i] = SampleSeg{Dst: make([]byte, recLen), Off: off, N: recLen}
	}
	for round := 0; round < 50; round++ {
		if _, err := in.ReadSamples(TransformCRC32C, crcSegs, nil); err != nil {
			t.Fatal(err)
		}
		for i, s := range crcSegs {
			body, ok := VerifyCRC32C(s.Dst)
			if !ok {
				t.Fatalf("round %d record %d failed crc under concurrent writes", round, i)
			}
			first := body[0]
			for j, b := range body {
				if b != first {
					t.Fatalf("round %d record %d torn at byte %d: %#x vs %#x", round, i, j, b, first)
				}
			}
		}
		if _, err := in.ReadSamples(TransformNone, rawSegs, nil); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}
