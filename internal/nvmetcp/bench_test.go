package nvmetcp

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"testing"

	"dlfs/internal/blockdev"
)

// BenchmarkReadAt measures the single-command round trip. With pooled
// pending commands, reusable capsule headers, and zero-copy receive into
// the caller's buffer, the steady-state client side allocates nothing
// per read beyond goroutine scheduling noise (see -benchmem).
func BenchmarkReadAt(b *testing.B) {
	data := patterned(1 << 20)
	_, addr := startVecTarget(b, data)
	in, err := Connect(addr)
	if err != nil {
		b.Fatal(err)
	}
	defer in.Close() //nolint:errcheck
	buf := make([]byte, 64<<10)
	b.SetBytes(int64(len(buf)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := in.ReadAt(buf, int64(i%8)*(64<<10)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTargetServe measures server-side serving throughput across
// the engine matrix: the legacy per-command-goroutine staged baseline
// against the RPQ/SCQ worker-pool engine with staged and zero-copy
// payloads, at increasing client queue depths. The acceptance bound is
// zero-copy + writev >= 2x the legacy baseline in served bytes/sec at
// depth >= 64.
func BenchmarkTargetServe(b *testing.B) {
	engines := []struct {
		name string
		cfg  Config
	}{
		{"legacy_goroutine_staged", Config{PerCmdGoroutines: true}},
		{"pool_w4_staged", Config{Workers: 4, NoZeroCopy: true}},
		{"pool_w1_zerocopy", Config{Workers: 1}},
		{"pool_w4_zerocopy", Config{Workers: 4}},
		{"pool_w8_zerocopy", Config{Workers: 8}},
	}
	for _, eng := range engines {
		for _, depth := range []int{16, 64, 256} {
			cfg := eng.cfg
			cfg.Depth = depth
			b.Run(fmt.Sprintf("%s/depth%d", eng.name, depth), func(b *testing.B) {
				benchTargetServe(b, cfg, depth)
			})
		}
	}
}

// benchTargetServe drives one target with `depth` total outstanding
// sample-sized reads spread over several queue pairs. The driver speaks
// the wire format directly — batched submissions, buffered receive that
// discards payloads — so the server engine, not client-side machinery,
// is the measured bottleneck.
func benchTargetServe(b *testing.B, cfg Config, depth int) {
	const readSize = 4 << 10
	nconns := 8
	if depth < nconns {
		nconns = depth
	}
	perDepth := depth / nconns
	data := patterned(16 << 20)
	store := blockdev.New(int64(len(data)))
	if _, err := store.WriteAt(data, 0); err != nil {
		b.Fatal(err)
	}
	tgt := NewTargetConfig(store, cfg)
	addr, err := tgt.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer tgt.Close() //nolint:errcheck

	conns := make([]net.Conn, nconns)
	for i := range conns {
		c, err := net.Dial("tcp", addr)
		if err != nil {
			b.Fatal(err)
		}
		defer c.Close() //nolint:errcheck
		if err := writeCapsule(c, &capsule{opcode: opHello}); err != nil {
			b.Fatal(err)
		}
		if _, err := readCapsule(c); err != nil {
			b.Fatal(err)
		}
		conns[i] = c
	}

	b.SetBytes(readSize)
	b.ReportAllocs()
	b.ResetTimer()
	var next atomic.Int64
	var done atomic.Bool
	var wg, rwg sync.WaitGroup
	for _, conn := range conns {
		tokens := make(chan struct{}, perDepth)
		rwg.Add(1)
		go func(conn net.Conn) { // receiver: count completions, discard payloads
			defer rwg.Done()
			br := bufio.NewReaderSize(conn, 64<<10)
			hdr := make([]byte, capsuleHeaderSize)
			for {
				if _, err := io.ReadFull(br, hdr); err != nil {
					if !done.Load() {
						b.Error(err)
					}
					return
				}
				if hdr[13] != statusOK {
					b.Errorf("status %d", hdr[13])
					return
				}
				if _, err := br.Discard(int(binary.LittleEndian.Uint32(hdr[22:26]))); err != nil {
					b.Error(err)
					return
				}
				<-tokens
			}
		}(conn)
		wg.Add(1)
		go func(conn net.Conn) { // submitter: pipeline reads up to perDepth deep
			defer wg.Done()
			bw := bufio.NewWriterSize(conn, 32<<10)
			hdr := make([]byte, capsuleHeaderSize)
			lenb := make([]byte, 4)
			binary.LittleEndian.PutUint32(lenb, readSize)
			for {
				i := next.Add(1) - 1
				if i >= int64(b.N) {
					break
				}
				select {
				case tokens <- struct{}{}:
				default: // window full: push the batch, then wait
					if err := bw.Flush(); err != nil {
						b.Error(err)
						return
					}
					tokens <- struct{}{}
				}
				off := (i * readSize) % (int64(len(data)) - readSize)
				encodeHdr(hdr, uint64(i), opRead, 0, uint64(off), 4)
				bw.Write(hdr)  //nolint:errcheck
				bw.Write(lenb) //nolint:errcheck
			}
			if err := bw.Flush(); err != nil {
				b.Error(err)
				return
			}
			for j := 0; j < perDepth; j++ { // drain: wait for every completion
				tokens <- struct{}{}
			}
		}(conn)
	}
	wg.Wait()
	b.StopTimer()
	done.Store(true)
	for _, c := range conns {
		c.Close() //nolint:errcheck
	}
	rwg.Wait()
}

// BenchmarkReadVec measures a coalesced 8-segment command against the
// same total byte count as eight BenchmarkReadAt calls would move.
func BenchmarkReadVec(b *testing.B) {
	data := patterned(1 << 20)
	_, addr := startVecTarget(b, data)
	in, err := Connect(addr)
	if err != nil {
		b.Fatal(err)
	}
	defer in.Close() //nolint:errcheck
	const segN = 8
	bufs := make([]byte, segN*(8<<10))
	segs := make([]Seg, segN)
	for i := range segs {
		segs[i] = Seg{Dst: bufs[i*(8<<10) : (i+1)*(8<<10)], Off: int64(i * (100 << 10))}
	}
	b.SetBytes(int64(len(bufs)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := in.ReadVec(segs); err != nil {
			b.Fatal(err)
		}
	}
}
