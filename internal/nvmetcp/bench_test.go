package nvmetcp

import (
	"testing"
)

// BenchmarkReadAt measures the single-command round trip. With pooled
// pending commands, reusable capsule headers, and zero-copy receive into
// the caller's buffer, the steady-state client side allocates nothing
// per read beyond goroutine scheduling noise (see -benchmem).
func BenchmarkReadAt(b *testing.B) {
	data := patterned(1 << 20)
	_, addr := startVecTarget(b, data)
	in, err := Connect(addr)
	if err != nil {
		b.Fatal(err)
	}
	defer in.Close() //nolint:errcheck
	buf := make([]byte, 64<<10)
	b.SetBytes(int64(len(buf)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := in.ReadAt(buf, int64(i%8)*(64<<10)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReadVec measures a coalesced 8-segment command against the
// same total byte count as eight BenchmarkReadAt calls would move.
func BenchmarkReadVec(b *testing.B) {
	data := patterned(1 << 20)
	_, addr := startVecTarget(b, data)
	in, err := Connect(addr)
	if err != nil {
		b.Fatal(err)
	}
	defer in.Close() //nolint:errcheck
	const segN = 8
	bufs := make([]byte, segN*(8<<10))
	segs := make([]Seg, segN)
	for i := range segs {
		segs[i] = Seg{Dst: bufs[i*(8<<10) : (i+1)*(8<<10)], Off: int64(i * (100 << 10))}
	}
	b.SetBytes(int64(len(bufs)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := in.ReadVec(segs); err != nil {
			b.Fatal(err)
		}
	}
}
