package nvmetcp

import (
	"errors"
	"log"
	"net"
	"sync"
	"sync/atomic"

	"dlfs/internal/blockdev"
	"dlfs/internal/bufpool"
)

// Target exports one block store to TCP initiators. Each accepted
// connection is an independent queue pair: commands on it are served
// concurrently up to the negotiated depth, and completions return in
// completion order (not submission order), as on real NVMe.
type Target struct {
	store *blockdev.Store
	depth int

	ln     net.Listener
	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup

	served    atomic.Int64
	bytes     atomic.Int64
	accepted  atomic.Int64
	malformed atomic.Int64

	reads    atomic.Int64 // single-segment read commands served
	writes   atomic.Int64 // write commands served
	vecReads atomic.Int64 // vectored read commands served
	vecSegs  atomic.Int64 // segments carried by those vectored reads
}

// NewTarget wraps a store; depth bounds per-connection concurrency
// (default 64).
func NewTarget(store *blockdev.Store, depth int) *Target {
	if depth <= 0 {
		depth = 64
	}
	return &Target{store: store, depth: depth, conns: make(map[net.Conn]struct{})}
}

// Store returns the exported store.
func (t *Target) Store() *blockdev.Store { return t.store }

// Served reports commands completed and payload bytes moved.
func (t *Target) Served() (cmds, bytes int64) { return t.served.Load(), t.bytes.Load() }

// ConnStats reports connections accepted and connections dropped because
// of a malformed frame (bad magic or an oversized length field).
func (t *Target) ConnStats() (accepted, malformed int64) {
	return t.accepted.Load(), t.malformed.Load()
}

// OpStats reports per-opcode service counts: plain reads, writes,
// vectored read commands and the total segments those carried. The
// segments/vecReads ratio is the coalescing factor observed server-side.
func (t *Target) OpStats() (reads, writes, vecReads, vecSegments int64) {
	return t.reads.Load(), t.writes.Load(), t.vecReads.Load(), t.vecSegs.Load()
}

// Listen starts serving on addr (e.g. "127.0.0.1:0") and returns the
// bound address. Serving proceeds on background goroutines until Close.
func (t *Target) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	t.ln = ln
	t.wg.Add(1)
	go t.acceptLoop()
	return ln.Addr().String(), nil
}

func (t *Target) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			return // listener closed
		}
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			conn.Close() //nolint:errcheck
			return
		}
		t.conns[conn] = struct{}{}
		t.mu.Unlock()
		t.accepted.Add(1)
		t.wg.Add(1)
		go t.serveConn(conn)
	}
}

func (t *Target) serveConn(conn net.Conn) {
	defer t.wg.Done()
	defer func() {
		t.mu.Lock()
		delete(t.conns, conn)
		t.mu.Unlock()
		conn.Close() //nolint:errcheck
	}()

	// Handshake: hello in, hello out with depth and capacity.
	hello, err := readCapsule(conn)
	if err != nil || hello.opcode != opHello {
		if errors.Is(err, ErrBadMagic) || errors.Is(err, ErrTooLarge) {
			t.malformed.Add(1)
		}
		return
	}
	var wmu sync.Mutex // serialises response frames; also guards whdr
	whdr := make([]byte, capsuleHeaderSize)
	reply := &capsule{
		cmdID:   uint64(t.store.Capacity()),
		opcode:  opHello,
		offset:  uint64(t.depth),
		payload: nil,
	}
	if err := writeCapsule(conn, reply); err != nil {
		return
	}

	sem := make(chan struct{}, t.depth)
	rhdr := make([]byte, capsuleHeaderSize)
	var cwg sync.WaitGroup
	defer cwg.Wait()
	for {
		// Request payloads (write data, vec descriptors) come from the
		// shared pool and go back once the command is served.
		req, err := readCapsuleHdr(conn, rhdr, bufpool.Shared.Get)
		if err != nil {
			// io.EOF and closed connections are normal teardown; only a
			// malformed frame is worth a log line.
			if errors.Is(err, ErrBadMagic) || errors.Is(err, ErrTooLarge) {
				t.malformed.Add(1)
				log.Printf("nvmetcp: dropping connection: %v", err)
			}
			return
		}
		sem <- struct{}{}
		cwg.Add(1)
		go func(req *capsule) {
			defer cwg.Done()
			defer func() { <-sem }()
			resp, pooled := t.execute(req)
			bufpool.Shared.Put(req.payload)
			wmu.Lock()
			err := writeCapsuleHdr(conn, resp, whdr)
			wmu.Unlock()
			bufpool.Shared.Put(pooled)
			if err != nil {
				conn.Close() //nolint:errcheck
			}
		}(req)
	}
}

// execute serves one command. The second return value is a pooled buffer
// backing resp.payload (nil if none) that the caller recycles after the
// response frame is written.
func (t *Target) execute(req *capsule) (*capsule, []byte) {
	resp := &capsule{cmdID: req.cmdID, opcode: req.opcode}
	switch req.opcode {
	case opRead:
		// A read request's 4-byte payload is the little-endian length to
		// read from req.offset.
		if len(req.payload) != 4 {
			resp.status = statusBadOp
			return resp, nil
		}
		want := int(uint32(req.payload[0]) | uint32(req.payload[1])<<8 | uint32(req.payload[2])<<16 | uint32(req.payload[3])<<24)
		if want > maxPayload {
			resp.status = statusRange
			return resp, nil
		}
		buf := bufpool.Shared.Get(want)
		if _, err := t.store.ReadAt(buf, int64(req.offset)); err != nil {
			bufpool.Shared.Put(buf)
			resp.status = statusRange
			return resp, nil
		}
		resp.payload = buf
		t.bytes.Add(int64(want))
		t.reads.Add(1)
	case opReadVec:
		segs, total, err := decodeVec(req.payload)
		if err != nil {
			resp.status = statusBadOp
			return resp, nil
		}
		buf := bufpool.Shared.Get(total)
		pos := 0
		for _, s := range segs {
			if _, err := t.store.ReadAt(buf[pos:pos+int(s.n)], int64(s.off)); err != nil {
				bufpool.Shared.Put(buf)
				resp.status = statusRange
				return resp, nil
			}
			pos += int(s.n)
		}
		resp.payload = buf
		t.bytes.Add(int64(total))
		t.vecReads.Add(1)
		t.vecSegs.Add(int64(len(segs)))
	case opWrite:
		if _, err := t.store.WriteAt(req.payload, int64(req.offset)); err != nil {
			resp.status = statusRange
			return resp, nil
		}
		t.bytes.Add(int64(len(req.payload)))
		t.writes.Add(1)
	default:
		resp.status = statusBadOp
	}
	t.served.Add(1)
	return resp, resp.payload
}

// Close stops the listener and all connections, waiting for handlers.
func (t *Target) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	conns := make([]net.Conn, 0, len(t.conns))
	for c := range t.conns {
		conns = append(conns, c)
	}
	t.mu.Unlock()
	var err error
	if t.ln != nil {
		err = t.ln.Close()
	}
	for _, c := range conns {
		c.Close() //nolint:errcheck
	}
	t.wg.Wait()
	return err
}
