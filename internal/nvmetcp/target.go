package nvmetcp

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"dlfs/internal/blockdev"
	"dlfs/internal/bufpool"
	"dlfs/internal/metrics"
)

// Config tunes the target's serving engine. The zero value selects the
// defaults; NewTarget(store, depth) remains the one-knob constructor.
type Config struct {
	// Depth bounds per-connection outstanding commands. It is advertised
	// to the initiator at handshake and sizes each connection's
	// completion queue. Default 64.
	Depth int

	// Workers sizes the request-posting-queue worker pool shared by all
	// connections on this target — the per-store RPQ drain of the
	// paper's §III-C backend. Default 4.
	Workers int

	// QueueDepth bounds the request-posting queue. When it fills,
	// connection readers block instead of spawning goroutines, so
	// overload pushes back on the TCP window rather than on the Go
	// scheduler. Default 256.
	//
	// Deprecated-in-spirit: with the per-tenant scheduler the engine
	// bound is TenantQueueDepth per tenant; QueueDepth is kept as the
	// legacy single-queue knob and seeds TenantQueueDepth when that is
	// unset, so existing configurations keep their backpressure point.
	QueueDepth int

	// MaxTenants is the number of tenant ids this target provisions:
	// commands carrying tenant 0..MaxTenants-1 are accepted, anything
	// above (or above the protocol's MaxTenantID) is rejected with
	// statusTenant. Default 8; capped at MaxTenantID+1.
	MaxTenants int

	// TenantQueueDepth bounds each tenant's request queue. When a
	// tenant's queue fills, only that tenant's connection readers block
	// — its overload pushes back on its own TCP windows while other
	// tenants keep posting. Zero takes QueueDepth/4 (min 64) so legacy
	// QueueDepth configurations keep an equivalent aggregate bound;
	// negative disables the bound (normalized to the canonical -1).
	TenantQueueDepth int

	// TenantBytesPerSec is the per-tenant payload byte quota enforced at
	// admission by a token bucket with a one-second burst allowance.
	// Commands over budget are rejected with statusThrottled and a
	// retry-after hint rather than queued. Zero or negative disables
	// (normalized to the canonical -1).
	TenantBytesPerSec int64

	// TenantIOPS is the per-tenant command-rate quota, enforced like
	// TenantBytesPerSec. Zero or negative disables (normalized to the
	// canonical -1).
	TenantIOPS int64

	// WriteTimeout bounds one completion flush to a connection. A peer
	// that stops reading long enough to trip it has its connection
	// aborted, so a stuck client cannot wedge the shared worker pool.
	// Default 30s; negative disables.
	WriteTimeout time.Duration

	// NoZeroCopy stages read payloads through the buffer pool instead of
	// serving store views — the A/B switch for the zero-copy read path.
	NoZeroCopy bool

	// StageHistograms records per-stage latency distributions
	// (qwait/service/flush) into metrics.ServerHist in addition to the
	// always-on counters. Off by default: the disabled path adds nothing
	// beyond the existing counter arithmetic.
	StageHistograms bool

	// PerCmdGoroutines restores the pre-engine data path: one goroutine
	// per command, staged payloads, one mutex-serialised socket write
	// per completion. Kept as the benchmark baseline only.
	PerCmdGoroutines bool

	// LegacyOps rejects opReadSamples, opWriteVec and opFlush with
	// statusBadOp, emulating an older target in rolling-upgrade tests: a
	// new client must downgrade (to opReadVec / per-extent opWrite),
	// never fail.
	LegacyOps bool
}

func (c Config) withDefaults() Config {
	if c.Depth <= 0 {
		c.Depth = 64
	}
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.WriteTimeout == 0 {
		c.WriteTimeout = 30 * time.Second
	}
	if c.MaxTenants <= 0 {
		c.MaxTenants = 8
	}
	if c.MaxTenants > MaxTenantID+1 {
		c.MaxTenants = MaxTenantID + 1
	}
	if c.TenantQueueDepth == 0 {
		c.TenantQueueDepth = c.QueueDepth / 4
		if c.TenantQueueDepth < 64 {
			c.TenantQueueDepth = 64
		}
	} else if c.TenantQueueDepth < 0 {
		c.TenantQueueDepth = -1
	}
	if c.TenantBytesPerSec <= 0 {
		c.TenantBytesPerSec = -1
	}
	if c.TenantIOPS <= 0 {
		c.TenantIOPS = -1
	}
	return c
}

// Target exports one block store to TCP initiators. Each accepted
// connection is an independent queue pair: commands on it are served
// concurrently up to the negotiated depth, and completions return in
// completion order (not submission order), as on real NVMe.
//
// Internally the data path is a request-posting queue / completion queue
// engine: connection readers admit decoded commands against their
// tenant's quotas and post them onto the tenant's bounded queue; a fixed
// worker pool drains the queues through a deficit-round-robin scheduler,
// executes against the store and hands completions — header plus
// zero-copy store-view segments for reads — to the connection's
// completion queue, which a dedicated flusher drains into coalesced
// vectored writes.
type Target struct {
	store *blockdev.Store
	cfg   Config

	ln     net.Listener
	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool

	connWG   sync.WaitGroup // accept loop, readers, flushers, closers
	workerWG sync.WaitGroup
	sched    *drrSched

	srv metrics.Server

	served    atomic.Int64
	bytes     atomic.Int64
	accepted  atomic.Int64
	malformed atomic.Int64
	aborted   atomic.Int64 // completions dropped because their conn died

	reads    atomic.Int64 // single-segment read commands served
	writes   atomic.Int64 // write commands served
	vecReads atomic.Int64 // vectored read commands served
	vecSegs  atomic.Int64 // segments carried by those vectored reads

	tenantRejects atomic.Int64 // commands with malformed/unprovisioned tenant ids
}

// rpqItem is one command posted on a tenant's request queue.
type rpqItem struct {
	tc      *targetConn
	ts      *tenantState
	req     *capsule
	cost    int64 // estimated payload bytes, the DRR/quota currency
	barrier int64 // opFlush: writes admitted on the connection before it
	enq     time.Time
}

// completion is one finished command on a connection's completion queue:
// a pooled header frame plus at most one payload representation — either
// zero-copy store-view segments or a pooled staged buffer.
type completion struct {
	hdr    []byte
	view   [][]byte // segments aliasing store memory (reads, zero-copy)
	staged []byte   // pooled copy (writes staged mode / view fallback)
	aux    []byte   // pooled length block leading view (opReadSamples)
	epoch  uint64   // store write epoch when view was captured
	off    uint64   // request offset, for view re-staging
	vsegs  []vecSeg // vectored request segments, for view re-staging
	n      int      // payload byte count
}

// targetConn is the per-connection engine state.
type targetConn struct {
	conn     net.Conn
	scq      chan completion
	inflight sync.WaitGroup

	// Durability-barrier bookkeeping. wAdmitted counts write commands
	// (opWrite/opWriteVec) the connection's reader has posted onto the
	// scheduler; it is touched only by the reader goroutine, so a flush
	// command's barrier — the admitted count at its own admission — is a
	// plain read. wApplied counts those writes the workers have finished
	// executing against the store (success or failure; a rejected write
	// must not wedge a barrier). An opFlush completes only once
	// wApplied has caught up with its barrier, i.e. once every write
	// submitted before it on this connection has landed.
	wAdmitted int64
	wMu       sync.Mutex
	wCond     sync.Cond // signals wApplied advancing
	wApplied  int64
}

// writeApplied records one admitted write finishing execution and wakes
// any barrier waiting on it.
func (tc *targetConn) writeApplied() {
	tc.wMu.Lock()
	tc.wApplied++
	tc.wMu.Unlock()
	tc.wCond.Broadcast()
}

// awaitWrites blocks until the connection's applied-write count reaches
// barrier, returning how long it waited. Admitted writes are always
// executed — the scheduler drains its queues even through shutdown — so
// the wait terminates.
func (tc *targetConn) awaitWrites(barrier int64) time.Duration {
	start := time.Now()
	tc.wMu.Lock()
	for tc.wApplied < barrier {
		tc.wCond.Wait()
	}
	tc.wMu.Unlock()
	return time.Since(start)
}

// hdrPool recycles completion header frames.
var hdrPool = sync.Pool{New: func() any { return make([]byte, capsuleHeaderSize) }}

// NewTarget wraps a store; depth bounds per-connection concurrency
// (default 64). Engine knobs take their defaults; use NewTargetConfig to
// set them.
func NewTarget(store *blockdev.Store, depth int) *Target {
	return NewTargetConfig(store, Config{Depth: depth})
}

// NewTargetConfig wraps a store with explicit engine configuration and
// starts the worker pool.
func NewTargetConfig(store *blockdev.Store, cfg Config) *Target {
	cfg = cfg.withDefaults()
	t := &Target{
		store: store,
		cfg:   cfg,
		conns: make(map[net.Conn]struct{}),
		sched: newDRRSched(cfg),
	}
	if cfg.StageHistograms {
		t.srv.Hist = &metrics.ServerHist{}
	}
	for i := 0; i < cfg.Workers; i++ {
		t.workerWG.Add(1)
		go t.worker()
	}
	return t
}

// Store returns the exported store.
func (t *Target) Store() *blockdev.Store { return t.store }

// Served reports commands completed and payload bytes moved.
func (t *Target) Served() (cmds, bytes int64) { return t.served.Load(), t.bytes.Load() }

// ConnStats reports connections accepted, connections dropped because of
// a malformed frame (bad magic or an oversized length field), and
// completions aborted because their connection's write path failed while
// sibling commands were still in flight.
func (t *Target) ConnStats() (accepted, malformed, aborted int64) {
	return t.accepted.Load(), t.malformed.Load(), t.aborted.Load()
}

// OpStats reports per-opcode service counts: plain reads, writes,
// vectored read commands and the total segments those carried. The
// segments/vecReads ratio is the coalescing factor observed server-side.
func (t *Target) OpStats() (reads, writes, vecReads, vecSegments int64) {
	return t.reads.Load(), t.writes.Load(), t.vecReads.Load(), t.vecSegs.Load()
}

// ServerStats reports the engine's per-stage counters: queue wait,
// service and flush time, writev batching, and the zero-copy/staged
// payload split.
func (t *Target) ServerStats() metrics.ServerSnapshot { return t.srv.Snapshot() }

// Listen starts serving on addr (e.g. "127.0.0.1:0") and returns the
// bound address. Serving proceeds on background goroutines until Close.
func (t *Target) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	t.ln = ln
	t.connWG.Add(1)
	go t.acceptLoop()
	return ln.Addr().String(), nil
}

func (t *Target) acceptLoop() {
	defer t.connWG.Done()
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			return // listener closed
		}
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			conn.Close() //nolint:errcheck
			return
		}
		t.conns[conn] = struct{}{}
		t.mu.Unlock()
		t.accepted.Add(1)
		t.connWG.Add(1)
		go t.serveConn(conn)
	}
}

func (t *Target) serveConn(conn net.Conn) {
	defer t.connWG.Done()
	cleanup := func() {
		t.mu.Lock()
		delete(t.conns, conn)
		t.mu.Unlock()
		conn.Close() //nolint:errcheck
	}

	// Handshake: hello in, hello out with depth and capacity.
	hello, err := readCapsule(conn)
	if err != nil || hello.opcode != opHello {
		if errors.Is(err, ErrBadMagic) || errors.Is(err, ErrTooLarge) {
			t.malformed.Add(1)
		}
		cleanup()
		return
	}
	reply := &capsule{
		cmdID:   uint64(t.store.Capacity()),
		opcode:  opHello,
		offset:  uint64(t.cfg.Depth),
		payload: nil,
	}
	if err := writeCapsule(conn, reply); err != nil {
		cleanup()
		return
	}

	if t.cfg.PerCmdGoroutines {
		defer cleanup()
		t.serveLegacy(conn)
		return
	}

	tc := &targetConn{conn: conn, scq: make(chan completion, t.cfg.Depth)}
	tc.wCond.L = &tc.wMu
	t.connWG.Add(1)
	go func() {
		defer t.connWG.Done()
		t.flushLoop(tc)
		cleanup()
	}()

	// Buffered ingestion: a read capsule is 30 bytes, so pulling commands
	// straight off the socket costs two recv syscalls per command. The
	// buffered reader lets one recv ingest every capsule the initiator
	// has queued — the ingestion-side mirror of the flusher's coalesced
	// writev. (Payloads larger than the buffer bypass it, so writes are
	// not double-copied.)
	br := bufio.NewReaderSize(conn, 64<<10)
	rhdr := make([]byte, capsuleHeaderSize)
	for {
		// Request payloads (write data, vec descriptors) come from the
		// shared pool and go back once the command is served.
		req, err := t.readRequest(br, rhdr)
		if err != nil {
			// io.EOF and closed connections are normal teardown; only a
			// malformed frame is worth a log line.
			if errors.Is(err, ErrBadMagic) || errors.Is(err, ErrTooLarge) {
				t.malformed.Add(1)
				log.Printf("nvmetcp: dropping connection: %v", err)
			}
			break
		}
		// Tenant admission runs here on the reader, before any queue or
		// worker state is touched: a rejected command costs one header
		// frame on the completion queue and nothing else. The reader is
		// alive, so tc.scq cannot close under these sends.
		if st := classifyTenant(req.status, t.cfg.MaxTenants); st != statusOK {
			t.tenantRejects.Add(1)
			releaseRequest(req)
			tc.reject(req.cmdID, req.opcode, st, 0)
			continue
		}
		ts := t.sched.tenants[req.status]
		cost := cmdCost(req)
		if ra := t.sched.admit(ts, cost); ra > 0 {
			// Over quota: reject with a retry-after hint in the offset
			// field instead of queueing — admission control keeps the
			// worker pool for tenants inside their budget.
			ts.throttled.Add(1)
			releaseRequest(req)
			tc.reject(req.cmdID, req.opcode, statusThrottled, uint64(ra))
			continue
		}
		tc.inflight.Add(1)
		// A flush's barrier snapshots the writes admitted on this
		// connection so far; it is stamped here, on the reader, so the
		// ordering it promises is exactly the client's submission order.
		it := rpqItem{tc: tc, ts: ts, req: req, cost: cost, enq: time.Now()}
		if req.opcode == opFlush {
			it.barrier = tc.wAdmitted
		}
		if !t.sched.enqueue(ts, it) {
			// Scheduler closed mid-enqueue (target shutdown).
			releaseRequest(req)
			tc.inflight.Done()
			break
		}
		if req.opcode == opWrite || req.opcode == opWriteVec {
			tc.wAdmitted++
		}
	}
	// No more submissions can arrive. Once in-flight commands drain,
	// close the completion queue so the flusher exits and tears the
	// connection down.
	t.connWG.Add(1)
	go func() {
		defer t.connWG.Done()
		tc.inflight.Wait()
		close(tc.scq)
	}()
}

// readRequest reads one request frame for the engine path. Most opcodes
// land contiguously through the pool; an opWriteVec frame's payload is
// instead ingested descriptor-first as one pooled buffer per segment
// (readWriteVec), so aligned segments can be adopted by the store with
// no landing copy.
func (t *Target) readRequest(r io.Reader, hdr []byte) (*capsule, error) {
	hdr = hdr[:capsuleHeaderSize]
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, err
	}
	if binary.LittleEndian.Uint32(hdr[0:4]) != Magic {
		return nil, ErrBadMagic
	}
	c := &capsule{
		cmdID:  binary.LittleEndian.Uint64(hdr[4:12]),
		opcode: hdr[12],
		status: hdr[13],
		offset: binary.LittleEndian.Uint64(hdr[14:22]),
	}
	n := binary.LittleEndian.Uint32(hdr[22:26])
	if n > maxPayload {
		return nil, fmt.Errorf("%w: %d bytes", ErrTooLarge, n)
	}
	if c.opcode == opWriteVec && n > 0 && !t.cfg.LegacyOps {
		if err := t.readWriteVec(r, c, int(n)); err != nil {
			return nil, err
		}
		return c, nil
	}
	if n > 0 {
		c.payload = bufpool.Shared.Get(int(n))
		if _, err := io.ReadFull(r, c.payload); err != nil {
			bufpool.Shared.Put(c.payload)
			return nil, err
		}
	}
	return c, nil
}

// readWriteVec ingests one gathered-write payload of n bytes: caps
// before alloc — the descriptor count, every per-extent length, the
// exact match between descriptor totals and trailing data, and the
// device range are all validated before any segment buffer is
// allocated, so a corrupt frame can neither drive a huge allocation
// nor land a byte. A frame that fails validation is drained to keep the
// stream aligned and completes from the worker with the deferred
// status in c.vecStatus. Each valid segment then lands in its own
// pooled buffer, sized so whole-extent segments are adopted by the
// store as backing arrays instead of being copied.
func (t *Target) readWriteVec(r io.Reader, c *capsule, n int) error {
	bad := func(st byte, consumed int) error {
		c.vecStatus = st
		_, err := io.CopyN(io.Discard, r, int64(n-consumed))
		return err
	}
	if n < writeVecHdrSize {
		return bad(statusBadOp, 0)
	}
	var hb [writeVecHdrSize]byte
	if _, err := io.ReadFull(r, hb[:]); err != nil {
		return err
	}
	consumed := writeVecHdrSize
	count := int(binary.LittleEndian.Uint32(hb[0:4]))
	if count <= 0 || count > maxVecSegs || n < writeVecHdrSize+count*vecSegSize {
		return bad(statusBadOp, consumed)
	}
	desc := bufpool.Shared.Get(count * vecSegSize)
	defer bufpool.Shared.Put(desc)
	if _, err := io.ReadFull(r, desc); err != nil {
		return err
	}
	consumed += len(desc)
	want := n - consumed
	segs := make([]vecSeg, count)
	capacity := t.store.Capacity()
	total := 0
	for i := range segs {
		p := i * vecSegSize
		segs[i] = vecSeg{
			off: binary.LittleEndian.Uint64(desc[p : p+8]),
			n:   binary.LittleEndian.Uint32(desc[p+8 : p+12]),
		}
		ln := segs[i].n
		if ln == 0 || int32(ln) < 0 {
			return bad(statusBadOp, consumed)
		}
		if off := int64(segs[i].off); off < 0 || off+int64(ln) > capacity {
			return bad(statusRange, consumed)
		}
		total += int(ln)
		if total > want {
			return bad(statusBadOp, consumed)
		}
	}
	if total != want {
		return bad(statusBadOp, consumed)
	}
	c.vsegs = segs
	c.vecs = make([][]byte, count)
	for i, sg := range segs {
		buf := bufpool.Shared.Get(int(sg.n))
		if _, err := io.ReadFull(r, buf); err != nil {
			bufpool.Shared.Put(buf)
			releaseRequest(c)
			return err
		}
		c.vecs[i] = buf
	}
	return nil
}

// releaseRequest returns a request's pooled buffers once the command is
// served or rejected. Buffers the store adopted were cleared from the
// capsule by execute and stay out of the pool.
func releaseRequest(req *capsule) {
	bufpool.Shared.Put(req.payload)
	for _, b := range req.vecs {
		bufpool.Shared.Put(b)
	}
	req.payload, req.vecs = nil, nil
}

// worker drains the tenant queues through the DRR scheduler: execute
// against the store, then hand the completion to the owning connection's
// queue. The flusher always consumes the queue until it is closed, so
// this send cannot deadlock even when the connection is dead. Stage
// times are observed twice — into the target-wide engine counters and
// into the command's tenant — so per-tenant qwait is first-class.
func (t *Target) worker() {
	defer t.workerWG.Done()
	for {
		it, ok := t.sched.next()
		if !ok {
			return
		}
		qwait := time.Since(it.enq)
		t.srv.ObserveQueueWait(qwait)
		it.ts.srv.ObserveQueueWait(qwait)
		if it.req.opcode == opFlush && !t.cfg.LegacyOps {
			// Durability barriers park off-pool: the barrier's writes may
			// still be queued behind other tenants, and a worker blocked
			// here could be the one meant to apply them. The goroutine is
			// bounded by the connection's command depth and covered by
			// tc.inflight, so teardown still waits for it.
			go t.completeFlush(it)
			continue
		}
		start := time.Now()
		comp := t.execute(it.req, !t.cfg.NoZeroCopy)
		releaseRequest(it.req)
		service := time.Since(start)
		t.srv.ObserveService(service)
		it.ts.srv.ObserveService(service)
		it.ts.cmds.Add(1)
		it.ts.bytes.Add(int64(comp.n))
		if it.req.opcode == opWrite || it.req.opcode == opWriteVec {
			it.tc.writeApplied()
		}
		it.tc.scq <- comp
		it.tc.inflight.Done()
	}
}

// completeFlush serves one durability barrier: wait for the
// connection's prior writes to apply, sync the store, and complete.
// Runs on its own goroutine so barrier waits never occupy the worker
// pool (see worker).
func (t *Target) completeFlush(it rpqItem) {
	waited := it.tc.awaitWrites(it.barrier)
	t.srv.ObserveFlushWait(waited)
	start := time.Now()
	comp := t.execute(it.req, false)
	releaseRequest(it.req)
	service := time.Since(start)
	t.srv.ObserveService(service)
	it.ts.srv.ObserveService(service)
	it.ts.cmds.Add(1)
	it.tc.scq <- comp
	it.tc.inflight.Done()
}

// reject synthesizes a payload-free error completion straight onto the
// connection's completion queue, bypassing the scheduler. Only the
// connection's reader calls this, so the queue is guaranteed open; the
// offset field carries the retry-after hint for statusThrottled.
func (tc *targetConn) reject(cmdID uint64, opcode, status byte, offset uint64) {
	hdr := hdrPool.Get().([]byte)
	encodeHdr(hdr, cmdID, opcode, status, offset, 0)
	tc.scq <- completion{hdr: hdr}
}

// flushLoop drains one connection's completion queue, coalescing every
// immediately-available completion into a single vectored write so
// syscalls amortise across the queue depth. On a write error it aborts:
// the connection is closed (stopping the reader) and every remaining
// completion is drained, recycled and counted, rather than left to
// execute silently against a dead connection.
func (t *Target) flushLoop(tc *targetConn) {
	batch := make([]completion, 0, t.cfg.Depth)
	var scratch net.Buffers
	failed := false
	for comp := range tc.scq {
		if failed {
			t.abort(comp)
			continue
		}
		batch = append(batch[:0], comp)
	coalesce:
		for len(batch) < cap(batch) {
			select {
			case more, ok := <-tc.scq:
				if !ok {
					break coalesce // closed; outer range will exit
				}
				batch = append(batch, more)
			default:
				break coalesce
			}
		}
		start := time.Now()
		scratch = scratch[:0]
		pinned := false
		for i := range batch {
			c := &batch[i]
			if c.view != nil && !pinned {
				// Pin before the epoch check: from here until Unpin,
				// writers go copy-on-write instead of mutating extents
				// these views may alias. Seq-cst ordering over the two
				// atomics makes the race two-sided safe — a writer that
				// slipped past our epoch check below must have seen the
				// pin (and cloned), and a writer we miss pinning against
				// must have bumped the epoch first (and we restage).
				pinned = true
				t.store.PinViews()
			}
			// Seqlock check: a write epoch change since view capture
			// means the segments may no longer carry the bytes the
			// command read — re-stage them under the store lock.
			if c.view != nil && t.store.WriteEpoch() != c.epoch {
				t.restage(c)
			}
			scratch = append(scratch, c.hdr)
			if c.staged != nil {
				scratch = append(scratch, c.staged)
			} else {
				scratch = append(scratch, c.view...)
			}
		}
		if t.cfg.WriteTimeout > 0 {
			tc.conn.SetWriteDeadline(time.Now().Add(t.cfg.WriteTimeout)) //nolint:errcheck
		}
		v := scratch // WriteTo consumes its receiver; keep scratch's header
		_, err := v.WriteTo(tc.conn)
		if pinned {
			t.store.UnpinViews()
		}
		t.srv.ObserveFlush(time.Since(start))
		t.srv.Flushes.Add(1)
		t.srv.FlushedCmds.Add(int64(len(batch)))
		for i := range batch {
			recycleCompletion(&batch[i])
		}
		if err != nil {
			// Count this batch as aborted delivery and stop the reader;
			// keep draining so in-flight workers never block.
			t.aborted.Add(int64(len(batch)))
			failed = true
			tc.conn.Close() //nolint:errcheck
		}
	}
}

// abort recycles a completion that can no longer be delivered.
func (t *Target) abort(comp completion) {
	t.aborted.Add(1)
	recycleCompletion(&comp)
}

func recycleCompletion(c *completion) {
	hdrPool.Put(c.hdr) //nolint:staticcheck
	if c.staged != nil {
		bufpool.Shared.Put(c.staged)
	}
	if c.aux != nil {
		bufpool.Shared.Put(c.aux)
	}
	c.hdr, c.staged, c.view, c.aux = nil, nil, nil, nil
}

// restage replaces a completion's zero-copy view with a pooled copy read
// under the store lock, guaranteeing an untorn payload after a write
// epoch change. Offsets were validated when the view was built, so the
// locked re-read cannot fail.
func (t *Target) restage(c *completion) {
	buf := bufpool.Shared.Get(c.n)
	if c.vsegs != nil {
		pos := 0
		// Sample-mode views lead with a pooled length block; it carries
		// request-derived sizes, not store bytes, so it copies verbatim.
		if c.aux != nil {
			pos = copy(buf, c.aux)
		}
		for _, s := range c.vsegs {
			t.store.ReadAt(buf[pos:pos+int(s.n)], int64(s.off)) //nolint:errcheck
			pos += int(s.n)
		}
	} else {
		t.store.ReadAt(buf, int64(c.off)) //nolint:errcheck
	}
	c.view = nil
	c.staged = buf
	t.srv.Restaged.Add(1)
}

// assembleStaged builds an opReadSamples response — length block plus
// transformed records — in one pooled staged buffer. Records are read
// through the store's seqlock (ReadAt), so transformed output cannot
// tear and never needs re-staging. Returns the buffer, its byte count,
// and a status.
func (t *Target) assembleStaged(xform byte, segs []vecSeg) ([]byte, int, byte) {
	lb := 4 * len(segs)
	var xt time.Duration
	if TransformOutLen(xform, 0) >= 0 {
		// Fixed output size: transform straight into the response buffer.
		outTotal := 0
		for _, s := range segs {
			outTotal += TransformOutLen(xform, int(s.n))
		}
		if lb+outTotal > maxPayload {
			return nil, 0, statusRange
		}
		buf := bufpool.Shared.Get(lb + outTotal)
		pos := lb
		for i, s := range segs {
			n := int(s.n)
			outn := n
			if xform == TransformNone {
				if _, err := t.store.ReadAt(buf[pos:pos+n], int64(s.off)); err != nil {
					bufpool.Shared.Put(buf)
					return nil, 0, statusRange
				}
			} else {
				src := bufpool.Shared.Get(n)
				if _, err := t.store.ReadAt(src, int64(s.off)); err != nil {
					bufpool.Shared.Put(src)
					bufpool.Shared.Put(buf)
					return nil, 0, statusRange
				}
				outn = TransformOutLen(xform, n)
				start := time.Now()
				err := transformInto(xform, src, buf[pos:pos+outn])
				xt += time.Since(start)
				bufpool.Shared.Put(src)
				if err != nil {
					bufpool.Shared.Put(buf)
					return nil, 0, statusXform
				}
			}
			binary.LittleEndian.PutUint32(buf[4*i:], uint32(outn))
			pos += outn
		}
		t.srv.ObserveTransform(xt)
		return buf, pos, statusOK
	}
	// Data-dependent output (flate): transform each record into pooled
	// scratch first, then gather into the response buffer.
	outs := make([][]byte, 0, len(segs))
	free := func() {
		for _, o := range outs {
			bufpool.Shared.Put(o)
		}
	}
	outTotal := 0
	for _, s := range segs {
		n := int(s.n)
		src := bufpool.Shared.Get(n)
		if _, err := t.store.ReadAt(src, int64(s.off)); err != nil {
			bufpool.Shared.Put(src)
			free()
			return nil, 0, statusRange
		}
		start := time.Now()
		out, err := transformAlloc(xform, src, maxPayload-lb-outTotal, bufpool.Shared.Get)
		xt += time.Since(start)
		bufpool.Shared.Put(src)
		if err != nil {
			free()
			return nil, 0, statusXform
		}
		outs = append(outs, out)
		outTotal += len(out)
	}
	t.srv.ObserveTransform(xt)
	buf := bufpool.Shared.Get(lb + outTotal)
	pos := lb
	for i, out := range outs {
		binary.LittleEndian.PutUint32(buf[4*i:], uint32(len(out)))
		pos += copy(buf[pos:], out)
	}
	free()
	return buf, pos, statusOK
}

// readLen decodes a read command's 4-byte little-endian length payload,
// enforcing 0 < want <= maxPayload. The signed cast rejects lengths that
// would truncate negative on 32-bit platforms; a zero-length read is a
// protocol violation, not a no-op.
func readLen(p []byte) (int, byte) {
	if len(p) != 4 {
		return 0, statusBadOp
	}
	want := int(int32(uint32(p[0]) | uint32(p[1])<<8 | uint32(p[2])<<16 | uint32(p[3])<<24))
	if want <= 0 {
		return 0, statusBadOp
	}
	if want > maxPayload {
		return 0, statusRange
	}
	return want, statusOK
}

// execute serves one command and returns its completion, with read
// payloads as zero-copy store views when zeroCopy is set and pooled
// staged copies otherwise.
func (t *Target) execute(req *capsule, zeroCopy bool) completion {
	comp := completion{hdr: hdrPool.Get().([]byte)}
	status := statusOK
	switch req.opcode {
	case opRead:
		want, st := readLen(req.payload)
		if st != statusOK {
			status = st
			break
		}
		if zeroCopy {
			view, epoch, err := t.store.View(int64(req.offset), want, nil)
			if err != nil {
				status = statusRange
				break
			}
			comp.view, comp.epoch, comp.off = view, epoch, req.offset
			t.srv.ZeroCopyBytes.Add(int64(want))
		} else {
			buf := bufpool.Shared.Get(want)
			if _, err := t.store.ReadAt(buf, int64(req.offset)); err != nil {
				bufpool.Shared.Put(buf)
				status = statusRange
				break
			}
			comp.staged = buf
			t.srv.StagedBytes.Add(int64(want))
		}
		comp.n = want
		t.bytes.Add(int64(want))
		t.reads.Add(1)
	case opReadVec:
		segs, total, err := decodeVec(req.payload)
		if err != nil {
			status = statusBadOp
			break
		}
		if zeroCopy {
			// One epoch for the whole scatter list: any write between
			// here and the flush re-stages every segment.
			epoch := t.store.WriteEpoch()
			var view [][]byte
			for _, s := range segs {
				if view, _, err = t.store.View(int64(s.off), int(s.n), view); err != nil {
					status = statusRange
					break
				}
			}
			if status != statusOK {
				break
			}
			comp.view, comp.epoch, comp.vsegs = view, epoch, segs
			t.srv.ZeroCopyBytes.Add(int64(total))
		} else {
			buf := bufpool.Shared.Get(total)
			pos := 0
			for _, s := range segs {
				if _, err := t.store.ReadAt(buf[pos:pos+int(s.n)], int64(s.off)); err != nil {
					bufpool.Shared.Put(buf)
					status = statusRange
					break
				}
				pos += int(s.n)
			}
			if status != statusOK {
				break
			}
			comp.staged = buf
			t.srv.StagedBytes.Add(int64(total))
		}
		comp.n = total
		t.bytes.Add(int64(total))
		t.vecReads.Add(1)
		t.vecSegs.Add(int64(len(segs)))
	case opReadSamples:
		if t.cfg.LegacyOps {
			// Emulated pre-offload target: the opcode is unknown here.
			status = statusBadOp
			break
		}
		xform, segs, total, err := decodeSampleList(req.payload)
		if err != nil {
			if len(req.payload) >= sampleHdrSize && !TransformValid(req.payload[0]) {
				status = statusXform
			} else {
				status = statusRange
			}
			break
		}
		count := len(segs)
		lb := 4 * count
		if xform == TransformNone && zeroCopy {
			// Assemble straight from seqlock extent views: the length
			// block is the only copied byte in the whole response.
			aux := bufpool.Shared.Get(lb)
			epoch := t.store.WriteEpoch()
			view := [][]byte{aux}
			for i, s := range segs {
				binary.LittleEndian.PutUint32(aux[4*i:], s.n)
				if view, _, err = t.store.View(int64(s.off), int(s.n), view); err != nil {
					status = statusRange
					break
				}
			}
			if status != statusOK {
				bufpool.Shared.Put(aux)
				break
			}
			comp.view, comp.epoch, comp.vsegs, comp.aux = view, epoch, segs, aux
			comp.n = lb + total
			t.srv.ZeroCopyBytes.Add(int64(total))
		} else {
			out, n, st := t.assembleStaged(xform, segs)
			if st != statusOK {
				status = st
				break
			}
			comp.staged = out
			comp.n = n
			t.srv.StagedBytes.Add(int64(n))
		}
		t.srv.SampleCmds.Add(1)
		t.srv.AssembledSamples.Add(int64(count))
		t.srv.AssembledBytes.Add(int64(comp.n - lb))
		t.bytes.Add(int64(comp.n))
	case opWrite:
		start := time.Now()
		if _, err := t.store.WriteAt(req.payload, int64(req.offset)); err != nil {
			status = statusRange
			break
		}
		t.srv.ObserveWrite(int64(len(req.payload)), time.Since(start))
		t.bytes.Add(int64(len(req.payload)))
		t.writes.Add(1)
	case opWriteVec:
		if t.cfg.LegacyOps {
			// Emulated pre-write-path target: the opcode is unknown here
			// and the client downgrades to per-extent opWrite.
			status = statusBadOp
			break
		}
		if req.vecStatus != 0 {
			// Ingest-time validation failed; the frame was drained and
			// the deferred status completes here.
			status = req.vecStatus
			break
		}
		var total, nsegs, adopted int
		start := time.Now()
		if req.vecs != nil {
			// Engine ingest: per-segment pooled buffers. Aligned segments
			// are adopted as extent backing — no landing copy — and the
			// store hands back every buffer it did not keep (copied
			// inputs, displaced extents) for recycling.
			offs := make([]int64, len(req.vsegs))
			for i, s := range req.vsegs {
				offs[i] = int64(s.off)
			}
			n, ad, recycle, err := t.store.WriteVecAdoptSegs(req.vecs, offs)
			if err != nil {
				status = statusRange
				break
			}
			req.vecs = nil // ownership resolved: adopted by store or recycled here
			for _, b := range recycle {
				bufpool.Shared.Put(b)
			}
			total, nsegs, adopted = n, len(req.vsegs), ad
		} else {
			// Legacy per-command-goroutine path: one contiguous payload.
			segs, data, err := decodeWriteVec(req.payload)
			if err != nil {
				status = statusBadOp
				break
			}
			offs := make([]int64, len(segs))
			lens := make([]int, len(segs))
			for i, s := range segs {
				offs[i] = int64(s.off)
				lens[i] = int(s.n)
			}
			n, ad, err := t.store.WriteVecAdopt(data, offs, lens)
			if err != nil {
				status = statusRange
				break
			}
			if ad > 0 {
				// Sub-slices of this payload are now extent backing: the
				// buffer is transferred and must never return to the pool.
				req.payload = nil
			}
			total, nsegs, adopted = n, len(segs), ad
		}
		t.srv.ObserveWrite(int64(total), time.Since(start))
		t.srv.VecWriteCmds.Add(1)
		t.srv.VecWriteSegs.Add(int64(nsegs))
		t.srv.AdoptedExtents.Add(int64(adopted))
		t.bytes.Add(int64(total))
		t.writes.Add(1)
	case opFlush:
		if t.cfg.LegacyOps {
			status = statusBadOp
			break
		}
		// The barrier wait over the connection's prior writes already
		// happened (completeFlush); what remains is the media sync.
		if err := t.store.Sync(); err != nil {
			status = statusRange
			break
		}
		t.srv.FlushCmds.Add(1)
	default:
		status = statusBadOp
	}
	if status != statusOK {
		comp.view, comp.staged, comp.n = nil, nil, 0
	}
	encodeHdr(comp.hdr, req.cmdID, req.opcode, status, 0, comp.n)
	t.served.Add(1)
	return comp
}

// serveLegacy is the pre-engine data path — goroutine per command,
// staged payloads, one serialised write per completion — retained as the
// benchmark baseline for the RPQ/SCQ engine.
func (t *Target) serveLegacy(conn net.Conn) {
	var wmu sync.Mutex // serialises response frames
	sem := make(chan struct{}, t.cfg.Depth)
	rhdr := make([]byte, capsuleHeaderSize)
	var cwg sync.WaitGroup
	defer cwg.Wait()
	dead := &atomic.Bool{}
	for {
		req, err := readCapsuleHdr(conn, rhdr, bufpool.Shared.Get)
		if err != nil {
			if errors.Is(err, ErrBadMagic) || errors.Is(err, ErrTooLarge) {
				t.malformed.Add(1)
				log.Printf("nvmetcp: dropping connection: %v", err)
			}
			return
		}
		sem <- struct{}{}
		cwg.Add(1)
		go func(req *capsule) {
			defer cwg.Done()
			defer func() { <-sem }()
			comp := t.execute(req, false)
			releaseRequest(req)
			wmu.Lock()
			var err error
			if dead.Load() {
				err = net.ErrClosed // sibling saw the write fail; don't write to a dead conn
			} else {
				// Old wire shape: header and payload as separate writes.
				if _, err = conn.Write(comp.hdr); err == nil && comp.staged != nil {
					_, err = conn.Write(comp.staged)
				}
				if err != nil {
					dead.Store(true)
				}
			}
			wmu.Unlock()
			recycleCompletion(&comp)
			if err != nil {
				t.aborted.Add(1)
				conn.Close() //nolint:errcheck
			}
		}(req)
	}
}

// Close stops the listener and all connections, waiting for readers and
// flushers, then drains and stops the worker pool.
func (t *Target) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	conns := make([]net.Conn, 0, len(t.conns))
	for c := range t.conns {
		conns = append(conns, c)
	}
	t.mu.Unlock()
	var err error
	if t.ln != nil {
		err = t.ln.Close()
	}
	for _, c := range conns {
		c.Close() //nolint:errcheck
	}
	t.connWG.Wait()
	t.sched.close()
	t.workerWG.Wait()
	return err
}

// TenantStats is one tenant's serving account: commands and payload
// bytes executed, commands rejected at admission for being over quota,
// the current queue backlog, and the tenant's own engine stage counters
// (queue wait and service; histograms when the target runs with
// Config.StageHistograms).
type TenantStats struct {
	ID        int
	Cmds      int64
	Bytes     int64
	Throttled int64
	Queued    int
	Server    metrics.ServerSnapshot
}

// TenantStats reports per-tenant accounting for every tenant that has
// seen traffic (executed, queued, or throttled commands), in tenant-id
// order. Idle provisioned tenants are omitted so exports stay compact.
func (t *Target) TenantStats() []TenantStats {
	var out []TenantStats
	for _, ts := range t.sched.tenants {
		t.sched.mu.Lock()
		queued := ts.queued()
		t.sched.mu.Unlock()
		st := TenantStats{
			ID:        ts.id,
			Cmds:      ts.cmds.Load(),
			Bytes:     ts.bytes.Load(),
			Throttled: ts.throttled.Load(),
			Queued:    queued,
		}
		if st.Cmds == 0 && st.Throttled == 0 && st.Queued == 0 {
			continue
		}
		st.Server = ts.srv.Snapshot()
		out = append(out, st)
	}
	return out
}

// TenantRejects reports commands refused at ingestion because their
// tenant id was malformed (above MaxTenantID) or not provisioned on
// this target.
func (t *Target) TenantRejects() int64 { return t.tenantRejects.Load() }
