// Package figures reproduces every figure of the paper's evaluation
// (§IV). Each FigN function runs the corresponding experiment under the
// simulation and returns a metrics.Table whose rows carry the same series
// the paper plots, so cmd/dlfsbench and bench_test.go regenerate the
// evaluation with one call per figure.
//
// Every function takes a scale factor: 1.0 runs the default measurement
// volume; smaller values shrink sample counts proportionally for quick
// smoke runs (the shapes survive scaling; absolute noise grows).
package figures

import (
	"fmt"

	"dlfs/internal/core"
	"dlfs/internal/dataset"
	"dlfs/internal/ext4sim"
	"dlfs/internal/metrics"
	"dlfs/internal/sim"
	"dlfs/internal/workload"
)

// sampleSizes is the sweep the single-node and 16-node throughput figures
// use: 512 B to 1 MB, as in Figs 6 and 8.
var sampleSizes = []int{512, 4 << 10, 16 << 10, 64 << 10, 128 << 10, 512 << 10, 1 << 20}

func scaled(base int, scale float64) int {
	n := int(float64(base) * scale)
	if n < 32 {
		n = 32
	}
	return n
}

// samplesFor bounds the dataset so large-sample sweeps stay tractable:
// roughly 64 MiB of data per point, at least 128 and at most 4096 samples.
func samplesFor(size int, scale float64) int {
	n := (64 << 20) / size
	if n > 4096 {
		n = 4096
	}
	if n < 128 {
		n = 128
	}
	return scaled(n, scale)
}

func fixedDataset(seed int64, n, size int) *dataset.Dataset {
	return dataset.Generate(dataset.Config{
		Label:      fmt.Sprintf("bench-%d", size),
		Seed:       seed,
		NumSamples: n,
		Dist:       dataset.Fixed(size),
	})
}

// Fig1 regenerates the sample-size CDFs of the ImageNet and IMDB datasets
// (Fig 1): percentile → size rows for both calibrated generators.
func Fig1(scale float64) *metrics.Table {
	t := metrics.NewTable("Fig 1: sample size distribution",
		"percentile", "imagenet", "imdb")
	n := scaled(40000, scale)
	img := dataset.Generate(dataset.Config{Label: "imagenet", Seed: 1, NumSamples: n, Dist: dataset.ImageNetDist()})
	imdb := dataset.Generate(dataset.Config{Label: "imdb", Seed: 2, NumSamples: n, Dist: dataset.IMDBDist()})
	ps := []float64{10, 25, 50, 75, 90, 95, 99}
	imgCDF := img.SizeCDF(ps)
	imdbCDF := imdb.SizeCDF(ps)
	for i, p := range ps {
		t.AddRow(fmt.Sprintf("p%.0f", p),
			metrics.HumanBytes(int64(imgCDF[i].SizeBytes)),
			metrics.HumanBytes(int64(imdbCDF[i].SizeBytes)))
	}
	return t
}

// fig6Point measures one (system, size) cell of Fig 6 on a fresh
// single-node Optane testbed and returns samples/sec.
func fig6Point(system string, size int, scale float64) float64 {
	n := samplesFor(size, scale)
	ds := fixedDataset(601, n, size)
	e := sim.NewEngine()
	defer e.Shutdown()
	job := workload.NewJob(e, 1, 20, true)
	switch system {
	case "ext4-base", "ext4-mc":
		fss, shards, err := workload.Ext4PerNode(e, job, ds, ext4sim.Config{})
		if err != nil {
			panic(err)
		}
		threads := 1
		if system == "ext4-mc" {
			threads = 8
		}
		per := n - n%threads
		return workload.RunExt4(e, job, ds, fss, shards, threads, per, 1).PerSec()
	case "dlfs-base":
		fss, err := workload.MountDLFS(e, job, ds, core.Config{})
		if err != nil {
			panic(err)
		}
		return workload.RunDLFSBase(e, job, ds, fss, n, 1).PerSec()
	case "dlfs":
		fss, err := workload.MountDLFS(e, job, ds, core.Config{})
		if err != nil {
			panic(err)
		}
		return workload.RunDLFSEpoch(e, fss, 1).PerSec()
	default:
		panic("unknown system " + system)
	}
}

// Fig6 reproduces the single-node random-read sample throughput sweep
// (Fig 6): sample size × {Ext4-Base, Ext4-MC, DLFS-Base, DLFS} on the
// Optane device model, in samples/sec.
func Fig6(scale float64) *metrics.Table {
	t := metrics.NewTable("Fig 6: single-node random read sample throughput (samples/s)",
		"size", "ext4-base", "ext4-mc", "dlfs-base", "dlfs")
	for _, size := range sampleSizes {
		t.AddRow(metrics.HumanBytes(int64(size)),
			fig6Point("ext4-base", size, scale),
			fig6Point("ext4-mc", size, scale),
			fig6Point("dlfs-base", size, scale),
			fig6Point("dlfs", size, scale))
	}
	return t
}

// Fig7a reproduces the core-count saturation experiment (Fig 7a): total
// read bandwidth (GB/s) by core count for DLFS and Ext4 at representative
// sample sizes. DLFS reaches device bandwidth with one core; Ext4 needs
// several because the kernel path burns CPU per read.
func Fig7a(scale float64) *metrics.Table {
	t := metrics.NewTable("Fig 7a: bandwidth (GB/s) vs cores to saturate the SSD",
		"cores", "dlfs-4K", "dlfs-128K", "ext4-4K", "ext4-128K")
	for _, cores := range []int{1, 2, 3, 4, 6, 8} {
		row := []any{cores}
		for _, size := range []int{4 << 10, 128 << 10} {
			n := samplesFor(size, scale)
			ds := fixedDataset(701, n, size)
			e := sim.NewEngine()
			job := workload.NewJob(e, 1, cores, true)
			fss, err := workload.MountDLFS(e, job, ds, core.Config{})
			if err != nil {
				panic(err)
			}
			res := workload.RunDLFSEpoch(e, fss, 2)
			row = append(row, res.BytesPerSec()/1e9)
			e.Shutdown()
		}
		for _, size := range []int{4 << 10, 128 << 10} {
			n := samplesFor(size, scale)
			ds := fixedDataset(702, n, size)
			e := sim.NewEngine()
			job := workload.NewJob(e, 1, cores, true)
			fss, shards, err := workload.Ext4PerNode(e, job, ds, ext4sim.Config{})
			if err != nil {
				panic(err)
			}
			per := n - n%cores
			res := workload.RunExt4(e, job, ds, fss, shards, cores, per, 2)
			row = append(row, res.BytesPerSec()/1e9)
			e.Shutdown()
		}
		t.AddRow(row...)
	}
	return t
}

// Fig7b reproduces the poll-loop compute overlap experiment (Fig 7b):
// sample throughput as application computation is injected into each
// batch's polling window. Throughput holds until the compute exceeds the
// batch's I/O service time, then degrades.
func Fig7b(scale float64) *metrics.Table {
	t := metrics.NewTable("Fig 7b: throughput (samples/s) vs compute added to the poll loop",
		"compute", "512B", "16KiB", "128KiB")
	computes := []sim.Duration{0, 100_000, 250_000, 500_000, 1_000_000, 1_500_000, 2_000_000, 3_000_000, 4_000_000}
	sizes := []int{512, 16 << 10, 128 << 10}
	for _, comp := range computes {
		row := []any{fmt.Sprintf("%.2fms", float64(comp)/1e6)}
		for _, size := range sizes {
			n := samplesFor(size, scale)
			ds := fixedDataset(703, n, size)
			e := sim.NewEngine()
			job := workload.NewJob(e, 1, 20, true)
			fss, err := workload.MountDLFS(e, job, ds, core.Config{OverlapCompute: comp})
			if err != nil {
				panic(err)
			}
			row = append(row, workload.RunDLFSEpoch(e, fss, 3).PerSec())
			e.Shutdown()
		}
		t.AddRow(row...)
	}
	return t
}
