package figures

import "testing"

func TestAblationBatchingMonotone(t *testing.T) {
	tab := AblationBatching(quickScale)
	base := cell(t, tab, 0, "throughput")   // sync-base
	sample := cell(t, tab, 1, "throughput") // sample-level
	chunk := cell(t, tab, 2, "throughput")  // chunk-batched
	if !(base < sample && sample < chunk) {
		t.Fatalf("ablation not monotone: %.0f, %.0f, %.0f", base, sample, chunk)
	}
	// Each optimisation should be worth at least 3×.
	if sample < 3*base || chunk < 3*sample {
		t.Fatalf("optimisations too weak: %.0f -> %.0f -> %.0f", base, sample, chunk)
	}
}

func TestAblationChunkSizeTradeoff(t *testing.T) {
	tab := AblationChunkSize(quickScale)
	// Larger chunks → strictly fewer commands.
	prev := cell(t, tab, 0, "commands")
	for r := 1; r < tab.NumRows(); r++ {
		cur := cell(t, tab, r, "commands")
		if cur > prev {
			t.Fatalf("commands rose with chunk size at row %d: %.0f > %.0f", r, cur, prev)
		}
		prev = cur
	}
	// 256K (row 2) should be at or near the best throughput.
	best := 0.0
	for r := 0; r < tab.NumRows(); r++ {
		if v := cell(t, tab, r, "throughput"); v > best {
			best = v
		}
	}
	if v := cell(t, tab, 2, "throughput"); v < 0.8*best {
		t.Fatalf("default 256K chunk (%.0f) well below best (%.0f)", v, best)
	}
}

func TestAblationQueueDepthSaturates(t *testing.T) {
	tab := AblationQueueDepth(quickScale)
	qd1 := cell(t, tab, 0, "throughput")
	qd128 := cell(t, tab, tab.NumRows()-1, "throughput")
	if qd128 < 2*qd1 {
		t.Fatalf("deep queue (%.0f) not ≫ QD=1 (%.0f)", qd128, qd1)
	}
	// QD=32 (row 5) already within 10% of QD=128: saturation.
	if v := cell(t, tab, 5, "throughput"); v < 0.9*qd128 {
		t.Fatalf("QD=32 (%.0f) far below QD=128 (%.0f): no saturation", v, qd128)
	}
}

func TestAblationCopyThreadsHelpWhenCopyBound(t *testing.T) {
	tab := AblationCopyThreads(quickScale)
	one := cell(t, tab, 0, "throughput")
	four := cell(t, tab, 2, "throughput")
	if four <= one {
		t.Fatalf("4 copy threads (%.0f) not faster than 1 (%.0f) at 3GB/s memcpy", four, one)
	}
}

func TestAblationAccessPattern(t *testing.T) {
	tab := AblationAccessPattern(quickScale)
	extSeq := cell(t, tab, 0, "ext4")
	extRand := cell(t, tab, 1, "ext4")
	dlfsRand := cell(t, tab, 1, "dlfs")
	if extSeq < 5*extRand {
		t.Fatalf("ext4 sequential (%.2f GB/s) not ≫ random (%.2f): readahead model broken", extSeq, extRand)
	}
	if dlfsRand < 1.5 {
		t.Fatalf("dlfs random bandwidth %.2f GB/s, want ≈2.4 (loose at quick scale)", dlfsRand)
	}
	// The paper's point: the kernel stack is fine sequentially (same
	// order of magnitude as DLFS) and collapses on random samples.
	if extSeq < dlfsRand/4 {
		t.Fatalf("ext4 sequential (%.2f) unrealistically far below device bound", extSeq)
	}
}

func TestAblationStageIn(t *testing.T) {
	tab := AblationStageIn(quickScale)
	perFile := cell(t, tab, 0, "stage-in")
	packed := cell(t, tab, 1, "stage-in")
	if perFile < 10*packed {
		t.Fatalf("containers (%.3fs) not ≫ faster than per-file (%.3fs)", packed, perFile)
	}
	if opens := cell(t, tab, 1, "pfs-opens"); opens >= cell(t, tab, 0, "pfs-opens") {
		t.Fatalf("containers did not reduce PFS opens: %v", opens)
	}
}

func TestMountTimeScalesWithNodes(t *testing.T) {
	tab := MountTime(quickScale)
	one := cell(t, tab, 0, "mount-time")
	sixteen := cell(t, tab, tab.NumRows()-1, "mount-time")
	// Distributed build must beat a single node clearly (§III-B2), while
	// the rebuild floor keeps it sublinear.
	if one < 3*sixteen {
		t.Fatalf("16-node mount (%.1fms) not ≫ faster than 1-node (%.1fms)", sixteen, one)
	}
	if one > 16*sixteen {
		t.Fatalf("mount scaled superlinearly: %.1f vs %.1f", one, sixteen)
	}
}

func TestSensitivityBandwidthBound(t *testing.T) {
	tab := Sensitivity(quickScale)
	base := cell(t, tab, 0, "samples/s")
	halfBW := cell(t, tab, 3, "samples/s")
	// Halving device bandwidth must halve throughput (bandwidth bound)...
	if r := halfBW / base; r < 0.45 || r > 0.55 {
		t.Fatalf("device-bandwidth/2 gave %.2fx, want ≈0.5x", r)
	}
	// ...while 4x fabric/device latency barely moves it (pipeline hides it).
	for _, row := range []int{1, 2} {
		v := cell(t, tab, row, "samples/s")
		if v < 0.9*base {
			t.Fatalf("row %d dropped to %.0f of %.0f: latency should be hidden", row, v, base)
		}
	}
}

func TestMemoryCapacityCrossover(t *testing.T) {
	tab := MemoryCapacity(quickScale)
	fits := cell(t, tab, 0, "deepio")   // 0.5x: dataset well inside RAM
	spills := cell(t, tab, 3, "deepio") // 4x: mostly on the PFS
	dlfs := cell(t, tab, 0, "dlfs")
	if fits < dlfs {
		t.Fatalf("in-memory DeepIO (%.0f) should beat NVMe DLFS (%.0f) while the dataset fits", fits, dlfs)
	}
	if spills*3 > dlfs {
		t.Fatalf("spilled DeepIO (%.0f) should collapse well below DLFS (%.0f)", spills, dlfs)
	}
	if rf := cell(t, tab, 3, "deepio-resident"); rf > 0.3 {
		t.Fatalf("resident fraction at 4x = %.2f, want ≈0.25", rf)
	}
}
