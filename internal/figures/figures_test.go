package figures

import (
	"strconv"
	"testing"
)

// quickScale keeps the smoke tests fast; shape assertions tolerate the
// added noise.
const quickScale = 0.08

func cell(t *testing.T, tab interface {
	Rows() [][]string
	Header() []string
}, row int, col string) float64 {
	t.Helper()
	ci := -1
	for i, h := range tab.Header() {
		if h == col {
			ci = i
		}
	}
	if ci < 0 {
		t.Fatalf("column %q not found in %v", col, tab.Header())
	}
	v, err := strconv.ParseFloat(tab.Rows()[row][ci], 64)
	if err != nil {
		t.Fatalf("cell [%d,%s] = %q: %v", row, col, tab.Rows()[row][ci], err)
	}
	return v
}

func TestFig1Quantiles(t *testing.T) {
	tab := Fig1(0.5)
	if tab.NumRows() != 7 {
		t.Fatalf("rows = %d", tab.NumRows())
	}
	// p75 row: imagenet near 147KB, imdb near 1.6KB (rendered as strings).
	p75 := tab.Rows()[3]
	if p75[0] != "p75" {
		t.Fatalf("row 3 = %v", p75)
	}
}

func TestFig6Shape(t *testing.T) {
	tab := Fig6(quickScale)
	if tab.NumRows() != len(sampleSizes) {
		t.Fatalf("rows = %d", tab.NumRows())
	}
	// Paper shape targets at 512B (row 0):
	// DLFS-Base ≥ 1.82× Ext4-Base for small samples.
	if r := cell(t, tab, 0, "dlfs-base") / cell(t, tab, 0, "ext4-base"); r < 1.82 {
		t.Errorf("512B dlfs-base/ext4-base = %.2f, want ≥ 1.82", r)
	}
	// DLFS ≫ Ext4-MC for small samples (paper: 3.35×).
	if r := cell(t, tab, 0, "dlfs") / cell(t, tab, 0, "ext4-mc"); r < 2 {
		t.Errorf("512B dlfs/ext4-mc = %.2f, want ≥ 2", r)
	}
	// At 1MB everything is bandwidth-bound: spread within ~3×.
	last := tab.NumRows() - 1
	hi := cell(t, tab, last, "dlfs")
	lo := cell(t, tab, last, "ext4-base")
	if hi/lo > 3 {
		t.Errorf("1MB spread %.2f, want < 3 (bandwidth bound)", hi/lo)
	}
	// Throughput decreases with sample size for every system.
	for _, col := range []string{"ext4-base", "dlfs-base", "dlfs"} {
		prev := cell(t, tab, 0, col)
		for r := 1; r < tab.NumRows(); r++ {
			cur := cell(t, tab, r, col)
			if cur > prev*1.15 {
				t.Errorf("%s not monotone: row %d %.0f > %.0f", col, r, cur, prev)
			}
			prev = cur
		}
	}
}

func TestFig7aShape(t *testing.T) {
	tab := Fig7a(quickScale)
	// DLFS saturates with one core: 1-core bandwidth within 10% of 8-core.
	one := cell(t, tab, 0, "dlfs-128K")
	eight := cell(t, tab, tab.NumRows()-1, "dlfs-128K")
	if one < eight*0.9 {
		t.Errorf("dlfs 1-core %.2f GB/s vs 8-core %.2f: should saturate at 1", one, eight)
	}
	// Near device bandwidth (2.4 GB/s).
	if one < 2.0 {
		t.Errorf("dlfs 1-core bandwidth %.2f GB/s, want ≈2.4", one)
	}
	// Ext4 needs ≥3 cores: its 1-core bandwidth is well below its 3-core.
	e1 := cell(t, tab, 0, "ext4-128K")
	e3 := cell(t, tab, 2, "ext4-128K")
	if e1 > e3*0.7 {
		t.Errorf("ext4 1-core %.2f vs 3-core %.2f: kernel path too cheap", e1, e3)
	}
}

func TestFig7bShape(t *testing.T) {
	tab := Fig7b(quickScale)
	// 128K: flat through 0.5 ms (within 5%), clearly degraded by 4 ms.
	base := cell(t, tab, 0, "128KiB")
	at05 := cell(t, tab, 3, "128KiB")
	at4 := cell(t, tab, tab.NumRows()-1, "128KiB")
	if at05 < base*0.95 {
		t.Errorf("128K throughput dropped already at 0.5ms: %.0f vs %.0f", at05, base)
	}
	if at4 > base*0.7 {
		t.Errorf("128K throughput at 4ms = %.0f, want clearly below %.0f", at4, base)
	}
}

func TestFig8Shape(t *testing.T) {
	tab := Fig8(quickScale)
	// Small samples: DLFS ≫ Ext4 and ≫ Octopus; Octopus > Ext4.
	dlfs := cell(t, tab, 0, "dlfs")
	oct := cell(t, tab, 0, "octopus")
	ext := cell(t, tab, 0, "ext4")
	if dlfs < 5*ext {
		t.Errorf("512B dlfs/ext4 = %.1f, want ≫ (paper 9.72×)", dlfs/ext)
	}
	if dlfs < 3*oct {
		t.Errorf("512B dlfs/octopus = %.1f, want ≫ (paper 6.05×)", dlfs/oct)
	}
	if oct < ext {
		t.Errorf("512B octopus (%.0f) below ext4 (%.0f); paper has octopus ahead", oct, ext)
	}
	// Large samples: DLFS still ahead but by a modest factor.
	last := tab.NumRows() - 1
	if r := cell(t, tab, last, "dlfs") / cell(t, tab, last, "ext4"); r < 1.05 || r > 3 {
		t.Errorf("1MB dlfs/ext4 = %.2f, want modest lead (paper 1.31×)", r)
	}
}

func TestFig9Shape(t *testing.T) {
	tab := Fig9(quickScale)
	// DLFS 512B scales near-linearly 2 → 16 nodes (8× ideal; accept ≥5×).
	d2 := cell(t, tab, 0, "dlfs-512B")
	d16 := cell(t, tab, 3, "dlfs-512B")
	if d16 < 5*d2 {
		t.Errorf("dlfs 512B scaling 2→16 nodes = %.1fx, want ≥5x", d16/d2)
	}
	// At 16 nodes DLFS leads both baselines at both sizes.
	if cell(t, tab, 3, "dlfs-512B") <= cell(t, tab, 3, "ext4-512B") {
		t.Error("dlfs not ahead of ext4 at 512B/16 nodes")
	}
	if cell(t, tab, 3, "dlfs-128K") <= cell(t, tab, 3, "octopus-128K") {
		t.Error("dlfs not ahead of octopus at 128K/16 nodes")
	}
}

func TestFig10Shape(t *testing.T) {
	tab := Fig10(quickScale)
	// Ext4 open ≫ DLFS lookup (paper: two orders of magnitude).
	d2 := cell(t, tab, 0, "dlfs")
	e2 := cell(t, tab, 0, "ext4-open")
	o2 := cell(t, tab, 0, "octopus")
	if e2 < 30*d2 {
		t.Errorf("ext4/dlfs lookup ratio %.0f, want ≳ 50-100x", e2/d2)
	}
	if o2 < d2 || o2 > e2 {
		t.Errorf("octopus (%.3f) should sit between dlfs (%.3f) and ext4 (%.3f)", o2, d2, e2)
	}
	// DLFS total decreases roughly linearly with nodes.
	d16 := cell(t, tab, 3, "dlfs")
	if d2/d16 < 5 {
		t.Errorf("dlfs lookup 2→16 nodes shrank only %.1fx, want ≈8x", d2/d16)
	}
	// The crail extension column: once the namenode saturates the
	// per-node time stops shrinking — flat from 8 to 16 nodes — while
	// DLFS keeps halving.
	c8 := cell(t, tab, 2, "crail")
	c16 := cell(t, tab, 3, "crail")
	if c8/c16 > 1.2 {
		t.Errorf("crail lookup time still shrinking 8→16 nodes (%.2fx); the namenode should bottleneck", c8/c16)
	}
	dlfs8 := cell(t, tab, 2, "dlfs")
	if dlfs8/d16 < 1.5 {
		t.Errorf("dlfs should keep scaling where crail flattens")
	}
}

func TestFig11Shape(t *testing.T) {
	tab := Fig11(quickScale)
	// One client reaches a high fraction of its NIC-capped ideal at 2
	// devices (paper: 93.4% overall).
	got := cell(t, tab, 0, "dlfs-1c")
	ideal := cell(t, tab, 0, "nvme-1c-ideal")
	if got < 0.75*ideal {
		t.Errorf("dlfs-1c at 2 devices = %.0f of ideal %.0f (%.0f%%)", got, ideal, 100*got/ideal)
	}
	// 16 clients keep scaling with devices: 16-device throughput well
	// above 2-device.
	c2 := cell(t, tab, 0, "dlfs-16c")
	c16 := cell(t, tab, tab.NumRows()-1, "dlfs-16c")
	if c16 < 3*c2 {
		t.Errorf("dlfs-16c scaling 2→16 devices = %.1fx, want ≥3x", c16/c2)
	}
}

func TestFig12Shape(t *testing.T) {
	tab := Fig12(quickScale)
	// Ordering at 16 nodes, 512B: DLFS > Octopus > Ext4 (paper Fig 12a).
	d := cell(t, tab, 3, "dlfs-tf-512B")
	o := cell(t, tab, 3, "octopus-tf-512B")
	x := cell(t, tab, 3, "ext4-tf-512B")
	if !(d > o && o > x) {
		t.Errorf("512B ordering dlfs=%.0f octopus=%.0f ext4=%.0f, want dlfs>octopus>ext4", d, o, x)
	}
	// 128K: DLFS leads (paper: 1.25× over Octopus, 61% over Ext4).
	if cell(t, tab, 3, "dlfs-tf-128K") <= cell(t, tab, 3, "octopus-tf-128K") {
		t.Error("dlfs-tf not ahead at 128K")
	}
}

func TestFig13Shape(t *testing.T) {
	tab := Fig13(0.4) // 40 epochs keeps the learner honest but quick
	last := tab.NumRows() - 1
	full := cell(t, tab, last, "Full_Rand")
	dlfs := cell(t, tab, last, "DLFS")
	if full < 0.65 || dlfs < 0.65 {
		t.Fatalf("training failed to converge: full=%.3f dlfs=%.3f", full, dlfs)
	}
	if diff := full - dlfs; diff > 0.06 || diff < -0.06 {
		t.Errorf("accuracy gap %.3f between Full_Rand and DLFS, want ≈0 (paper: indistinguishable)", diff)
	}
}
