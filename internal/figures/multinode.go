package figures

import (
	"fmt"

	"dlfs/internal/cluster"
	"dlfs/internal/core"
	"dlfs/internal/crail"
	"dlfs/internal/dataset"
	"dlfs/internal/directory"
	"dlfs/internal/ext4sim"
	"dlfs/internal/fabric"
	"dlfs/internal/metrics"
	"dlfs/internal/nvme"
	"dlfs/internal/octopus"
	"dlfs/internal/sample"
	"dlfs/internal/sim"
	"dlfs/internal/workload"
)

// multiNodePoint measures aggregate samples/sec for one (system, nodes,
// size) cell on emulated NVMe devices, the §IV-B setup.
func multiNodePoint(system string, nodes, size int, scale float64) float64 {
	// Bound the workload: per node, up to 64 MiB / at most 1024 samples.
	perNode := (48 << 20) / size
	if perNode > 1024 {
		perNode = 1024
	}
	if perNode < 64 {
		perNode = 64
	}
	perNode = scaled(perNode, scale)
	total := perNode * nodes
	ds := fixedDataset(int64(800+size%97), total, size)
	e := sim.NewEngine()
	defer e.Shutdown()
	job := workload.NewJob(e, nodes, 20, false)
	switch system {
	case "ext4":
		fss, shards, err := workload.Ext4PerNode(e, job, ds, ext4sim.Config{})
		if err != nil {
			panic(err)
		}
		return workload.RunExt4(e, job, ds, fss, shards, 1, perNode, 4).PerSec()
	case "octopus":
		fs, err := workload.BuildOctopus(job, ds)
		if err != nil {
			panic(err)
		}
		return workload.RunOctopus(e, job, ds, fs, perNode, 4).PerSec()
	case "dlfs":
		fss, err := workload.MountDLFS(e, job, ds, core.Config{})
		if err != nil {
			panic(err)
		}
		return workload.RunDLFSEpoch(e, fss, 4).PerSec()
	default:
		panic("unknown system " + system)
	}
}

// Fig8 reproduces the aggregated random-read throughput over 16 nodes
// versus sample size (Fig 8): DLFS, Octopus, Ext4 in samples/sec.
func Fig8(scale float64) *metrics.Table {
	t := metrics.NewTable("Fig 8: aggregated read throughput over 16 nodes (samples/s)",
		"size", "dlfs", "octopus", "ext4")
	for _, size := range sampleSizes {
		t.AddRow(metrics.HumanBytes(int64(size)),
			multiNodePoint("dlfs", 16, size, scale),
			multiNodePoint("octopus", 16, size, scale),
			multiNodePoint("ext4", 16, size, scale))
	}
	return t
}

// Fig9 reproduces the scalability sweep (Fig 9): aggregate throughput over
// 2–16 nodes for 512 B (a) and 128 KB (b) samples.
func Fig9(scale float64) *metrics.Table {
	t := metrics.NewTable("Fig 9: aggregated throughput vs node count (samples/s)",
		"nodes", "dlfs-512B", "octopus-512B", "ext4-512B", "dlfs-128K", "octopus-128K", "ext4-128K")
	for _, nodes := range []int{2, 4, 8, 16} {
		t.AddRow(nodes,
			multiNodePoint("dlfs", nodes, 512, scale),
			multiNodePoint("octopus", nodes, 512, scale),
			multiNodePoint("ext4", nodes, 512, scale),
			multiNodePoint("dlfs", nodes, 128<<10, scale),
			multiNodePoint("octopus", nodes, 128<<10, scale),
			multiNodePoint("ext4", nodes, 128<<10, scale))
	}
	return t
}

// fig10TotalSamples is the directory population of the lookup experiment.
const fig10TotalSamples = 1_000_000

// fig10DLFS measures DLFS's mean per-lookup cost against a real
// partitioned directory of 1M samples and scales it to the per-node share
// (1M/N lookups per node), returning seconds.
func fig10DLFS(nodes int, probes int) float64 {
	// Build the 1M-entry directory the cheap way: entries only.
	parts := make([]*directory.Partition, nodes)
	for i := range parts {
		parts[i] = directory.NewPartition(uint16(i))
	}
	keys := make([]uint64, 0, fig10TotalSamples)
	for i := 0; len(keys) < fig10TotalSamples; i++ {
		k := sample.KeyOf(fmt.Sprintf("imagenet/train/%08d", i))
		nid := directory.HomeNode(k, nodes)
		e, err := sample.NewEntry(nid, k, int64(i%1000)*4096, 4096)
		if err != nil {
			panic(err)
		}
		if parts[nid].Add(e) != nil {
			continue // rare key collision
		}
		keys = append(keys, k)
	}
	dir, err := directory.New(parts)
	if err != nil {
		panic(err)
	}
	visitCPU := core.DefaultConfig().LookupVisitCPU
	totalDepth := 0
	for i := 0; i < probes; i++ {
		_, _, depth, ok := dir.Lookup(keys[(i*7919)%len(keys)])
		if !ok {
			panic("fig10: lost key")
		}
		totalDepth += depth
	}
	perLookup := float64(totalDepth) / float64(probes) * float64(visitCPU) // ns
	return perLookup * float64(fig10TotalSamples/nodes) / 1e9
}

// fig10Ext4 measures Ext4's mean open() cost with a cold inode cache
// (the paper uses open time as Ext4's lookup equivalent) and scales to
// the per-node share, returning seconds.
func fig10Ext4(nodes, probes, size int) float64 {
	e := sim.NewEngine()
	defer e.Shutdown()
	dev := nvme.NewDevice(e, nvme.EmulatedSpec())
	// Small inode cache against many files: opens miss, as they would
	// with 1M inodes against a bounded slab cache.
	fs := ext4sim.New(e, dev, ext4sim.Config{ICacheEntries: 64})
	nFiles := probes * 2
	for i := 0; i < nFiles; i++ {
		if err := fs.CreateFile(fmt.Sprintf("train/%08d", i), make([]byte, size)); err != nil {
			panic(err)
		}
	}
	cpu := sim.NewServer(e, "cpu", 1)
	var total sim.Duration
	e.Go("opens", func(p *sim.Proc) {
		for i := 0; i < probes; i++ {
			start := p.Now()
			f, err := fs.Open(p, cpu, fmt.Sprintf("train/%08d", (i*13)%nFiles))
			if err != nil {
				panic(err)
			}
			total += sim.Duration(p.Now() - start)
			fs.Close(p, cpu, f) //nolint:errcheck
		}
	})
	e.RunAll()
	perOpen := float64(total) / float64(probes)
	return perOpen * float64(fig10TotalSamples/nodes) / 1e9
}

// fig10Octopus measures Octopus's mean lookup RPC cost from a client in an
// N-node job and scales to the per-node share, returning seconds.
func fig10Octopus(nodes, probes int) float64 {
	e := sim.NewEngine()
	defer e.Shutdown()
	job := cluster.NewJob(e, nodes, cluster.DefaultNodeSpec())
	fs := octopus.New(job, octopus.Costs{})
	for i := 0; i < probes; i++ {
		if err := fs.Put(fmt.Sprintf("train/%08d", i), []byte("x")); err != nil {
			panic(err)
		}
	}
	var total sim.Duration
	e.Go("lookups", func(p *sim.Proc) {
		for i := 0; i < probes; i++ {
			start := p.Now()
			if _, err := fs.Lookup(p, 0, fmt.Sprintf("train/%08d", i)); err != nil {
				panic(err)
			}
			total += sim.Duration(p.Now() - start)
		}
	})
	e.RunAll()
	perLookup := float64(total) / float64(probes)
	return perLookup * float64(fig10TotalSamples/nodes) / 1e9
}

// fig10Crail measures the centralized-metadata extension baseline: all
// nodes look up concurrently, every request serialising at the namenode.
// The makespan is scaled to the per-node share of 1M lookups; because the
// single namenode serves N×probes requests, the scaled per-node time
// stays flat as nodes grow — the bottleneck DLFS's replicated directory
// avoids.
func fig10Crail(nodes, probes int) float64 {
	e := sim.NewEngine()
	defer e.Shutdown()
	job := cluster.NewJob(e, nodes, cluster.DefaultNodeSpec())
	fs := crail.New(job, crail.Costs{})
	const files = 512
	for i := 0; i < files; i++ {
		if err := fs.Put(fmt.Sprintf("train/%08d", i), []byte("x")); err != nil {
			panic(err)
		}
	}
	for c := 0; c < nodes; c++ {
		c := c
		e.Go("lookups", func(p *sim.Proc) {
			for i := 0; i < probes; i++ {
				if _, err := fs.Lookup(p, c, fmt.Sprintf("train/%08d", (i*13+c)%files)); err != nil {
					panic(err)
				}
			}
		})
	}
	makespan := e.RunAll()
	perLookupWall := float64(makespan) / float64(probes) // per client wave
	return perLookupWall * float64(fig10TotalSamples/nodes) / 1e9
}

// Fig10 reproduces the sample-lookup-time experiment (Fig 10): total time
// for each node to resolve its share of 1 million samples, by node count.
// Lookup is metadata-only, so the 512 B and 128 KB plots coincide in the
// model; Ext4's open path touches the inode block, so its cost is the one
// that includes a device read. The crail column is an extension: the
// centralized-metadata design the paper's related work contrasts DLFS
// against.
func Fig10(scale float64) *metrics.Table {
	t := metrics.NewTable("Fig 10: per-node lookup time for 1M samples (seconds)",
		"nodes", "dlfs", "octopus", "ext4-open", "crail")
	probes := scaled(2000, scale)
	for _, nodes := range []int{2, 4, 8, 16} {
		t.AddRow(nodes,
			fig10DLFS(nodes, probes),
			fig10Octopus(nodes, probes),
			fig10Ext4(nodes, probes, 4096),
			fig10Crail(nodes, probes))
	}
	return t
}

// fig11Topology builds a job of `devices` storage nodes followed by
// `clients` diskless client nodes and mounts DLFS on every node.
func fig11Topology(e *sim.Engine, devices, clients, size, perClient int) ([]*core.FS, *dataset.Dataset) {
	specs := make([]cluster.NodeSpec, 0, devices+clients)
	storageSpec := cluster.DefaultNodeSpec()
	diskless := cluster.NodeSpec{Cores: 20, NICBandwidth: fabric.FDRBandwidth}
	for i := 0; i < devices; i++ {
		specs = append(specs, storageSpec)
	}
	for i := 0; i < clients; i++ {
		specs = append(specs, diskless)
	}
	job := cluster.NewJobMixed(e, specs)
	storage := make([]int, devices)
	readers := make([]int, clients)
	for i := range storage {
		storage[i] = i
	}
	for i := range readers {
		readers[i] = devices + i
	}
	ds := fixedDataset(int64(1100+devices), perClient*clients, size)
	cfg := core.Config{StorageNodes: storage, ReaderNodes: readers}
	fss := make([]*core.FS, job.N())
	errs := make([]error, job.N())
	for i := 0; i < job.N(); i++ {
		i := i
		e.Go(fmt.Sprintf("mount%d", i), func(p *sim.Proc) {
			fss[i], errs[i] = core.Mount(p, job, i, ds, cfg)
		})
	}
	e.RunAll()
	for _, err := range errs {
		if err != nil {
			panic(err)
		}
	}
	// Only the reader instances drive epochs.
	return fss[devices:], ds
}

// Fig11 reproduces the disaggregation-effectiveness experiment (Fig 11):
// 128 KB sample throughput of 1 and 16 DLFS clients over a growing pool of
// NVMe-oF devices, against the analytic ideal (device bandwidth, capped by
// the single client's NIC in the 1-client case).
func Fig11(scale float64) *metrics.Table {
	t := metrics.NewTable("Fig 11: effective throughput on disaggregated NVMe devices (samples/s)",
		"devices", "dlfs-1c", "nvme-1c-ideal", "dlfs-16c", "nvme-16c-ideal")
	const size = 128 << 10
	devBW := float64(nvme.EmulatedSpec().ReadBandwidth)
	nicBW := float64(fabric.FDRBandwidth)
	for _, devices := range []int{2, 4, 8, 12, 16} {
		perClient := scaled(512, scale)

		e1 := sim.NewEngine()
		readers1, _ := fig11Topology(e1, devices, 1, size, perClient)
		r1 := workload.RunDLFSEpoch(e1, readers1, 11)
		e1.Shutdown()

		e16 := sim.NewEngine()
		readers16, _ := fig11Topology(e16, devices, 16, size, perClient/4)
		r16 := workload.RunDLFSEpoch(e16, readers16, 11)
		e16.Shutdown()

		ideal1 := float64(devices) * devBW
		if ideal1 > nicBW {
			ideal1 = nicBW
		}
		ideal16 := float64(devices) * devBW
		t.AddRow(devices,
			r1.PerSec(), ideal1/size,
			r16.PerSec(), ideal16/size)
	}
	return t
}
