package figures

import (
	"fmt"

	"dlfs/internal/cluster"
	"dlfs/internal/core"
	"dlfs/internal/deepio"
	"dlfs/internal/ext4sim"
	"dlfs/internal/fabric"
	"dlfs/internal/metrics"
	"dlfs/internal/nvme"
	"dlfs/internal/pfs"
	"dlfs/internal/sim"
	"dlfs/internal/workload"
)

// AblationPoint measures single-node 512 B sample throughput for one DLFS
// configuration, isolating the contribution of each batching optimisation
// (§III-D): the full chunk-batched pipeline, sample-level batching alone,
// and the synchronous dlfs_read base path.
func AblationPoint(mode string, scale float64) float64 {
	const size = 512
	n := samplesFor(size, scale)
	ds := fixedDataset(1501, n, size)
	e := sim.NewEngine()
	defer e.Shutdown()
	job := workload.NewJob(e, 1, 20, true)
	switch mode {
	case "chunk-batched":
		fss, err := workload.MountDLFS(e, job, ds, core.Config{})
		if err != nil {
			panic(err)
		}
		return workload.RunDLFSEpoch(e, fss, 5).PerSec()
	case "sample-level":
		fss, err := workload.MountDLFS(e, job, ds, core.Config{DisableChunkBatching: true})
		if err != nil {
			panic(err)
		}
		return workload.RunDLFSEpoch(e, fss, 5).PerSec()
	case "sync-base":
		fss, err := workload.MountDLFS(e, job, ds, core.Config{})
		if err != nil {
			panic(err)
		}
		return workload.RunDLFSBase(e, job, ds, fss, n, 5).PerSec()
	default:
		panic("unknown ablation mode " + mode)
	}
}

// AblationBatching renders the three-mode comparison as a table.
func AblationBatching(scale float64) *metrics.Table {
	t := metrics.NewTable("Ablation: batching optimisations at 512B (samples/s)",
		"mode", "throughput")
	for _, mode := range []string{"sync-base", "sample-level", "chunk-batched"} {
		t.AddRow(mode, AblationPoint(mode, scale))
	}
	return t
}

// AblationChunkSize sweeps the data-chunk size (the paper fixes 256 KB but
// calls it configurable): small chunks raise command counts, huge chunks
// waste cache space and fetch granularity.
func AblationChunkSize(scale float64) *metrics.Table {
	t := metrics.NewTable("Ablation: chunk size at 4KiB samples (samples/s)",
		"chunk", "throughput", "commands")
	const size = 4 << 10
	n := samplesFor(size, scale)
	for _, chunk := range []int{16 << 10, 64 << 10, 256 << 10, 1 << 20} {
		ds := fixedDataset(1502, n, size)
		e := sim.NewEngine()
		job := workload.NewJob(e, 1, 20, true)
		fss, err := workload.MountDLFS(e, job, ds, core.Config{ChunkSize: chunk})
		if err != nil {
			panic(err)
		}
		res := workload.RunDLFSEpoch(e, fss, 6)
		t.AddRow(metrics.HumanBytes(int64(chunk)), res.PerSec(), float64(fss[0].Stats().Commands))
		e.Shutdown()
	}
	return t
}

// AblationQueueDepth sweeps the SPDK queue depth on a latency-sensitive
// configuration — sample-level requests (no chunk batching) of 16 KiB,
// where per-command latency dominates: shallow queues starve the device;
// deep queues stop helping once the pipeline covers the bandwidth-delay
// product. (With chunk batching and a local device, even QD=1 keeps the
// data path ~90 % busy — transfers dwarf the latency — which is itself an
// argument for the chunk design.)
func AblationQueueDepth(scale float64) *metrics.Table {
	t := metrics.NewTable("Ablation: queue depth, sample-level 16KiB requests (samples/s)",
		"depth", "throughput")
	const size = 16 << 10
	n := samplesFor(size, scale)
	for _, depth := range []int{1, 2, 4, 8, 16, 32, 128} {
		ds := fixedDataset(1503, n, size)
		e := sim.NewEngine()
		job := workload.NewJob(e, 1, 20, true)
		fss, err := workload.MountDLFS(e, job, ds, core.Config{QueueDepth: depth, DisableChunkBatching: true})
		if err != nil {
			panic(err)
		}
		t.AddRow(depth, workload.RunDLFSEpoch(e, fss, 7).PerSec())
		e.Shutdown()
	}
	return t
}

// AblationCopyThreads sweeps the copy-thread pool size at a copy-heavy
// configuration (large samples, reduced copy bandwidth).
func AblationCopyThreads(scale float64) *metrics.Table {
	t := metrics.NewTable("Ablation: copy threads at 128KiB samples, 3GB/s memcpy (samples/s)",
		"threads", "throughput")
	const size = 128 << 10
	n := samplesFor(size, scale)
	for _, threads := range []int{1, 2, 4, 8} {
		ds := fixedDataset(1504, n, size)
		e := sim.NewEngine()
		job := workload.NewJob(e, 1, 20, true)
		fss, err := workload.MountDLFS(e, job, ds, core.Config{
			CopyThreads:   threads,
			CopyBandwidth: 3_000_000_000,
		})
		if err != nil {
			panic(err)
		}
		t.AddRow(threads, workload.RunDLFSEpoch(e, fss, 8).PerSec())
		e.Shutdown()
	}
	return t
}

// AblationAccessPattern quantifies the paper's motivating observation
// (§II-B): the kernel stack is competitive for large sequential I/O — the
// pattern it was designed for — and collapses on many small random
// samples, which is exactly the gap DLFS fills.
func AblationAccessPattern(scale float64) *metrics.Table {
	t := metrics.NewTable("Ablation: access pattern (GB/s effective)",
		"workload", "ext4", "dlfs")

	// Large sequential: one big file read front to back in 1 MiB slices.
	seqBytes := int64(scaled(64, scale)) << 20
	e := sim.NewEngine()
	job := workload.NewJob(e, 1, 20, true)
	efs := ext4sim.New(e, job.Node(0).Device, ext4sim.Config{})
	if err := efs.CreateFile("big", make([]byte, seqBytes)); err != nil {
		panic(err)
	}
	var seqTime sim.Time
	e.Go("seq", func(p *sim.Proc) {
		f, err := efs.Open(p, job.Node(0).CPU, "big")
		if err != nil {
			panic(err)
		}
		buf := make([]byte, 1<<20)
		start := p.Now()
		for off := int64(0); off < seqBytes; off += 1 << 20 {
			if _, err := efs.Read(p, job.Node(0).CPU, f, buf, off); err != nil {
				panic(err)
			}
		}
		seqTime = p.Now() - start
	})
	e.RunAll()
	e.Shutdown()
	ext4Seq := float64(seqBytes) / (float64(seqTime) / 1e9) / 1e9

	// Random small (4 KiB samples).
	const size = 4 << 10
	n := samplesFor(size, scale)
	ds := fixedDataset(1505, n, size)
	e2 := sim.NewEngine()
	job2 := workload.NewJob(e2, 1, 20, true)
	efs2, shards, err := workload.Ext4PerNode(e2, job2, ds, ext4sim.Config{})
	if err != nil {
		panic(err)
	}
	ext4Rand := workload.RunExt4(e2, job2, ds, efs2, shards, 1, n, 9).BytesPerSec() / 1e9
	e2.Shutdown()

	e3 := sim.NewEngine()
	job3 := workload.NewJob(e3, 1, 20, true)
	fss, err := workload.MountDLFS(e3, job3, ds, core.Config{})
	if err != nil {
		panic(err)
	}
	dlfsRand := workload.RunDLFSEpoch(e3, fss, 9).BytesPerSec() / 1e9
	e3.Shutdown()

	// DLFS sequential equals its random path (no seek penalty in either
	// model); report the device-bound epoch number for both rows.
	t.AddRow("sequential 1MiB slices", ext4Seq, dlfsRand)
	t.AddRow("random 4KiB samples", ext4Rand, dlfsRand)
	return t
}

// AblationStageIn prices mount-time dataset staging from the backend
// parallel file system (internal/pfs): per-file stage-in pays one
// metadata round trip per sample, while TFRecord-style containers
// amortise it — the reason batched formats exist, and the reason DLFS
// indexes samples *inside* them (§III-B1) instead of giving up random
// access.
func AblationStageIn(scale float64) *metrics.Table {
	t := metrics.NewTable("Ablation: dataset stage-in from the backend PFS (seconds, 4 nodes)",
		"format", "stage-in", "pfs-opens")
	n := scaled(20000, scale)
	ds := fixedDataset(1506, n, 16<<10)

	run := func(containers bool) (float64, int64) {
		e := sim.NewEngine()
		defer e.Shutdown()
		job := workload.NewJob(e, 4, 20, false)
		backend := pfs.New(e, pfs.DefaultSpec())
		cfg := core.Config{StageIn: backend}
		errs := make([]error, job.N())
		for i := 0; i < job.N(); i++ {
			i := i
			e.Go("mount", func(p *sim.Proc) {
				if containers {
					_, errs[i] = core.MountContainers(p, job, i, ds, 400, cfg)
				} else {
					_, errs[i] = core.Mount(p, job, i, ds, cfg)
				}
			})
		}
		e.RunAll()
		for _, err := range errs {
			if err != nil {
				panic(err)
			}
		}
		opens, _ := backend.Stats()
		return float64(e.Now()) / 1e9, opens
	}

	perFile, opensA := run(false)
	packed, opensB := run(true)
	t.AddRow("one file per sample", perFile, float64(opensA))
	t.AddRow("TFRecord-style containers", packed, float64(opensB))
	return t
}

// StageBreakdown reports how one epoch's CPU time divides across the
// Fig 4 pipeline stages (prep → post → poll → copy) for a representative
// workload: where the user-level stack actually spends its cycles.
func StageBreakdown(scale float64) *metrics.Table {
	t := metrics.NewTable("Stage breakdown: CPU time per epoch (ms)",
		"size", "prep", "post", "poll", "copy", "samples")
	for _, size := range []int{512, 16 << 10, 128 << 10} {
		n := samplesFor(size, scale)
		ds := fixedDataset(1507, n, size)
		e := sim.NewEngine()
		job := workload.NewJob(e, 1, 20, true)
		fss, err := workload.MountDLFS(e, job, ds, core.Config{})
		if err != nil {
			panic(err)
		}
		workload.RunDLFSEpoch(e, fss, 10)
		st := fss[0].Stats()
		t.AddRow(metrics.HumanBytes(int64(size)),
			float64(st.PrepTime)/1e6, float64(st.PostTime)/1e6,
			float64(st.PollTime)/1e6, float64(st.CopyTime)/1e6,
			float64(st.SamplesRead))
		e.Shutdown()
	}
	return t
}

// MountTime measures the collective dlfs_mount — per-node AVL build plus
// the directory allgather — against node count, testing §III-B2's claim
// that "this distributed generation of AVL trees speeds up the creation
// of the in-memory sample directory". The local-build share shrinks with
// nodes; the rebuild-from-blobs share does not, so the curve flattens
// toward the replication floor.
func MountTime(scale float64) *metrics.Table {
	t := metrics.NewTable("Mount: directory build + allgather vs nodes (ms)",
		"nodes", "mount-time", "entries")
	n := scaled(200_000, scale)
	ds := fixedDataset(1508, n, 64)
	for _, nodes := range []int{1, 2, 4, 8, 16} {
		e := sim.NewEngine()
		job := workload.NewJob(e, nodes, 20, false)
		errs := make([]error, nodes)
		for i := 0; i < nodes; i++ {
			i := i
			e.Go("mount", func(p *sim.Proc) {
				_, errs[i] = core.Mount(p, job, i, ds, core.Config{})
			})
		}
		total := e.RunAll()
		for _, err := range errs {
			if err != nil {
				panic(err)
			}
		}
		t.AddRow(nodes, float64(total)/1e6, float64(n))
		e.Shutdown()
	}
	return t
}

// Sensitivity perturbs one model parameter at a time and reports the
// impact on the headline 16-node 128 KiB DLFS throughput: which
// calibration constants the reproduced shapes actually hinge on.
func Sensitivity(scale float64) *metrics.Table {
	t := metrics.NewTable("Sensitivity: 16-node 128KiB DLFS throughput under parameter perturbation",
		"variant", "samples/s", "delta")
	const size = 128 << 10
	perNode := scaled(256, scale)

	run := func(mutate func(*nvme.Spec, *sim.Duration, *core.Config)) float64 {
		spec := nvme.EmulatedSpec()
		latency := fabric.DefaultLatency
		cfg := core.Config{}
		mutate(&spec, &latency, &cfg)
		e := sim.NewEngine()
		defer e.Shutdown()
		specs := make([]cluster.NodeSpec, 16)
		for i := range specs {
			d := spec
			specs[i] = cluster.NodeSpec{Cores: 20, NICBandwidth: fabric.FDRBandwidth, Device: &d}
		}
		job := cluster.NewJobMixedNet(e, specs, latency)
		ds := fixedDataset(1509, perNode*16, size)
		fss, err := workload.MountDLFS(e, job, ds, cfg)
		if err != nil {
			panic(err)
		}
		return workload.RunDLFSEpoch(e, fss, 14).PerSec()
	}

	base := run(func(*nvme.Spec, *sim.Duration, *core.Config) {})
	variants := []struct {
		name string
		fn   func(*nvme.Spec, *sim.Duration, *core.Config)
	}{
		{"baseline", func(*nvme.Spec, *sim.Duration, *core.Config) {}},
		{"fabric latency x4", func(_ *nvme.Spec, l *sim.Duration, _ *core.Config) { *l *= 4 }},
		{"device latency x4", func(s *nvme.Spec, _ *sim.Duration, _ *core.Config) { s.ReadLatency *= 4 }},
		{"device bandwidth /2", func(s *nvme.Spec, _ *sim.Duration, _ *core.Config) { s.ReadBandwidth /= 2 }},
		{"copy bandwidth /4", func(_ *nvme.Spec, _ *sim.Duration, c *core.Config) { c.CopyBandwidth = 3_000_000_000 }},
		{"queue depth 4", func(_ *nvme.Spec, _ *sim.Duration, c *core.Config) { c.QueueDepth = 4 }},
	}
	for _, v := range variants {
		got := run(v.fn)
		t.AddRow(v.name, got, fmt.Sprintf("%+.1f%%", 100*(got-base)/base))
	}
	return t
}

// MemoryCapacity sweeps the dataset-to-RAM ratio for the DeepIO-style
// memory-preload baseline against DLFS on NVMe: while the dataset fits in
// aggregate memory DeepIO serves at memory speed; once it spills, every
// non-resident sample pays a backend-PFS round trip and throughput
// collapses — "its performance is limited by the total available memory"
// (§V). DLFS is indifferent: burst-buffer NVMe holds the whole dataset at
// any of these scales.
func MemoryCapacity(scale float64) *metrics.Table {
	t := metrics.NewTable("Capacity: DeepIO (RAM preload) vs DLFS (NVMe) by dataset/memory ratio (samples/s, 4 nodes, 128KiB)",
		"dataset/mem", "deepio", "deepio-resident", "dlfs")
	const size = 128 << 10
	const nodes = 4
	perNode := scaled(192, scale)
	total := perNode * nodes
	memPerNode := int64(total) * size / nodes // ratio 1.0 exactly fills RAM

	dlfsRate := func() float64 {
		ds := fixedDataset(1510, total, size)
		e := sim.NewEngine()
		defer e.Shutdown()
		job := workload.NewJob(e, nodes, 20, false)
		fss, err := workload.MountDLFS(e, job, ds, core.Config{})
		if err != nil {
			panic(err)
		}
		return workload.RunDLFSEpoch(e, fss, 15).PerSec()
	}()

	for _, ratio := range []float64{0.5, 1.0, 2.0, 4.0} {
		n := int(float64(total) * ratio)
		ds := fixedDataset(1511, n, size)
		e := sim.NewEngine()
		job := workload.NewJob(e, nodes, 20, false)
		backend := pfs.New(e, pfs.DefaultSpec())
		dio, err := deepio.Mount(job, ds, memPerNode, backend, deepio.Costs{})
		if err != nil {
			panic(err)
		}
		var reads int
		var start, end sim.Time
		for c := 0; c < nodes; c++ {
			c := c
			e.Go("c", func(p *sim.Proc) {
				if start == 0 {
					start = p.Now()
				}
				buf := make([]byte, size)
				order := workload.RandomOrder(int64(c)+21, workload.Seq(ds.Len()), perNode)
				for _, idx := range order {
					if _, err := dio.ReadSample(p, c, idx, buf); err != nil {
						panic(err)
					}
					reads++
				}
				if p.Now() > end {
					end = p.Now()
				}
			})
		}
		e.RunAll()
		rate := 0.0
		if end > start {
			rate = float64(reads) / (float64(end-start) / 1e9)
		}
		t.AddRow(fmt.Sprintf("%.1fx", ratio), rate, dio.ResidentFraction(), dlfsRate)
		e.Shutdown()
	}
	return t
}
