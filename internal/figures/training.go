package figures

import (
	"fmt"

	"dlfs/internal/core"
	"dlfs/internal/dnn"
	"dlfs/internal/ext4sim"
	"dlfs/internal/metrics"
	"dlfs/internal/sim"
	"dlfs/internal/tfio"
	"dlfs/internal/workload"
)

// fig12Point measures aggregate TensorFlow-import throughput (samples/s)
// for one (system, nodes, size) cell: every node runs one import pipeline
// over its share of the dataset, with the framework decode cost on top of
// the file system.
func fig12Point(system string, nodes, size int, scale float64) float64 {
	perNode := (32 << 20) / size
	if perNode > 768 {
		perNode = 768
	}
	if perNode < 64 {
		perNode = 64
	}
	perNode = scaled(perNode, scale)
	total := perNode * nodes
	ds := fixedDataset(int64(1200+size%89), total, size)
	e := sim.NewEngine()
	defer e.Shutdown()
	job := workload.NewJob(e, nodes, 20, false)

	var start, end sim.Time
	imported := 0
	runClients := func(mk func(client int) *tfio.Pipeline) {
		for c := 0; c < nodes; c++ {
			c := c
			e.Go(fmt.Sprintf("tf%d", c), func(p *sim.Proc) {
				pl := mk(c)
				if start == 0 {
					start = p.Now()
				}
				imported += pl.Drain(p)
				if p.Now() > end {
					end = p.Now()
				}
			})
		}
		e.RunAll()
	}

	switch system {
	case "dlfs":
		fss, err := workload.MountDLFS(e, job, ds, core.Config{})
		if err != nil {
			panic(err)
		}
		runClients(func(c int) *tfio.Pipeline {
			return tfio.NewPipeline(tfio.NewDLFSSource(fss[c].Sequence(12)), job.Node(c), tfio.Costs{}, 32)
		})
	case "ext4":
		fss, shards, err := workload.Ext4PerNode(e, job, ds, ext4sim.Config{})
		if err != nil {
			panic(err)
		}
		runClients(func(c int) *tfio.Pipeline {
			order := workload.RandomOrder(int64(c)+77, shards[c], len(shards[c]))
			return tfio.NewPipeline(tfio.NewExt4Source(fss[c], job.Node(c), ds, order), job.Node(c), tfio.Costs{}, 32)
		})
	case "octopus":
		ofs, err := workload.BuildOctopus(job, ds)
		if err != nil {
			panic(err)
		}
		global := workload.RandomOrder(77, workload.Seq(ds.Len()), ds.Len())
		runClients(func(c int) *tfio.Pipeline {
			lo := len(global) * c / nodes
			hi := len(global) * (c + 1) / nodes
			return tfio.NewPipeline(tfio.NewOctopusSource(ofs, c, ds, global[lo:hi]), job.Node(c), tfio.Costs{}, 32)
		})
	default:
		panic("unknown system " + system)
	}
	if end <= start {
		return 0
	}
	return float64(imported) / (float64(end-start) / 1e9)
}

// Fig12 reproduces the TensorFlow data-import throughput experiment
// (Fig 12): aggregate imported samples/sec through the framework pipeline
// on top of DLFS, Octopus and Ext4, for 512 B (a) and 128 KB (b) samples
// across 2–16 nodes.
func Fig12(scale float64) *metrics.Table {
	t := metrics.NewTable("Fig 12: TensorFlow import throughput (samples/s)",
		"nodes", "dlfs-tf-512B", "octopus-tf-512B", "ext4-tf-512B", "dlfs-tf-128K", "octopus-tf-128K", "ext4-tf-128K")
	for _, nodes := range []int{2, 4, 8, 16} {
		t.AddRow(nodes,
			fig12Point("dlfs", nodes, 512, scale),
			fig12Point("octopus", nodes, 512, scale),
			fig12Point("ext4", nodes, 512, scale),
			fig12Point("dlfs", nodes, 128<<10, scale),
			fig12Point("octopus", nodes, 128<<10, scale),
			fig12Point("ext4", nodes, 128<<10, scale))
	}
	return t
}

// Fig13 reproduces the training-accuracy experiment (Fig 13): per-epoch
// validation accuracy under application-driven full randomisation versus
// the DLFS-determined chunk order, on a real SGD learner over a synthetic
// classification task (see internal/dnn for the substitution rationale).
// A no-shuffle control is included as the ablation the paper's concern
// implies.
func Fig13(scale float64) *metrics.Table {
	t := metrics.NewTable("Fig 13: validation accuracy by epoch",
		"epoch", "Full_Rand", "DLFS", "no-shuffle")
	epochs := scaled(100, scale)
	if epochs > 100 {
		epochs = 100
	}
	n := scaled(2000, scale)
	// dim 8 / noise 2.2 gives a task hard enough that the accuracy
	// trajectory is informative (≈0.5 after one epoch, ≈0.8 converged)
	// rather than saturating instantly.
	data := dnn.SyntheticClusters(131, n, 8, 10, 2.2)
	cut := n * 4 / 5
	train := &dnn.Data{X: data.X[:cut], Y: data.Y[:cut], Classes: data.Classes}
	val := &dnn.Data{X: data.X[cut:], Y: data.Y[cut:], Classes: data.Classes}

	sizes := make([]int, train.Len())
	for i := range sizes {
		sizes[i] = 500 + (i*131)%3000 // synthetic byte sizes for the layout
	}
	dl, err := dnn.NewDLFSOrder(13, sizes, 4, 8192)
	if err != nil {
		panic(err)
	}
	cfg := dnn.TrainConfig{Epochs: epochs, BatchSize: 32, LR: 0.015, Hidden: 24, Seed: 3}
	full := dnn.Train(train, val, dnn.FullRand{Seed: 31}, cfg)
	dlfs := dnn.Train(train, val, dl, cfg)
	fixed := dnn.Train(train, val, dnn.FixedOrder{}, cfg)
	step := epochs / 20
	if step < 1 {
		step = 1
	}
	for ep := 0; ep < epochs; ep += step {
		t.AddRow(ep+1, full[ep], dlfs[ep], fixed[ep])
	}
	t.AddRow(epochs, full[epochs-1], dlfs[epochs-1], fixed[epochs-1])
	return t
}
