// Package sample implements the 128-bit sample entry of the DLFS in-memory
// sample directory (paper §III-B, Fig 3b).
//
// An entry packs into two 64-bit words:
//
//	word0: [ NID:16 | key:48 ]
//	word1: [ V:1 | offset:40 | len:23 ]
//
// NID identifies the storage node holding the sample; key is a 48-bit hash
// of the sample name (and attributes such as its class); offset/len locate
// the sample on that node's NVMe device; V tracks whether a copy of the
// sample is currently present in the local sample cache.
package sample

import (
	"errors"
	"fmt"
	"hash/fnv"
)

// Field widths and limits of the packed entry layout.
const (
	NIDBits    = 16
	KeyBits    = 48
	VBits      = 1
	OffsetBits = 40
	LenBits    = 23

	MaxNID    = 1<<NIDBits - 1
	MaxKey    = 1<<KeyBits - 1
	MaxOffset = 1<<OffsetBits - 1 // 1 TiB addressable per device
	MaxLen    = 1<<LenBits - 1    // 8 MiB - 1 max sample size
)

// Errors returned by NewEntry for out-of-range fields.
var (
	ErrNIDRange    = errors.New("sample: node ID exceeds 16 bits")
	ErrKeyRange    = errors.New("sample: key exceeds 48 bits")
	ErrOffsetRange = errors.New("sample: offset exceeds 40 bits")
	ErrLenRange    = errors.New("sample: length exceeds 23 bits")
)

// Entry is a packed 128-bit sample directory entry.
type Entry struct {
	W0, W1 uint64
}

// NewEntry packs the fields, validating ranges. V starts clear.
func NewEntry(nid uint16, key uint64, offset int64, length int32) (Entry, error) {
	if key > MaxKey {
		return Entry{}, ErrKeyRange
	}
	if offset < 0 || offset > MaxOffset {
		return Entry{}, ErrOffsetRange
	}
	if length < 0 || length > MaxLen {
		return Entry{}, ErrLenRange
	}
	return Entry{
		W0: uint64(nid)<<KeyBits | key,
		W1: uint64(offset)<<LenBits | uint64(length),
	}, nil
}

// MustEntry is NewEntry panicking on range errors; for tests and literals.
func MustEntry(nid uint16, key uint64, offset int64, length int32) Entry {
	e, err := NewEntry(nid, key, offset, length)
	if err != nil {
		panic(err)
	}
	return e
}

// NID returns the 16-bit storage node ID.
func (e Entry) NID() uint16 { return uint16(e.W0 >> KeyBits) }

// Key returns the 48-bit sample key.
func (e Entry) Key() uint64 { return e.W0 & MaxKey }

// Offset returns the 40-bit byte offset of the sample on its device.
func (e Entry) Offset() int64 { return int64(e.W1 >> LenBits & MaxOffset) }

// Len returns the 23-bit sample length in bytes.
func (e Entry) Len() int32 { return int32(e.W1 & MaxLen) }

// V reports whether the local-cache-copy bit is set.
func (e Entry) V() bool { return e.W1>>(OffsetBits+LenBits)&1 == 1 }

// WithV returns the entry with the V bit set or cleared.
func (e Entry) WithV(v bool) Entry {
	const bit = uint64(1) << (OffsetBits + LenBits)
	if v {
		e.W1 |= bit
	} else {
		e.W1 &^= bit
	}
	return e
}

// End returns Offset()+Len(): one past the last byte of the sample.
func (e Entry) End() int64 { return e.Offset() + int64(e.Len()) }

// String renders the entry for diagnostics.
func (e Entry) String() string {
	return fmt.Sprintf("sample{nid=%d key=%#x off=%d len=%d v=%t}",
		e.NID(), e.Key(), e.Offset(), e.Len(), e.V())
}

// KeyOf hashes a sample name (plus optional attributes, e.g. its class
// label) into the 48-bit key space, as the paper's directory does.
func KeyOf(name string, attrs ...string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(name)) //nolint:errcheck // fnv never fails
	for _, a := range attrs {
		h.Write([]byte{0}) //nolint:errcheck
		h.Write([]byte(a)) //nolint:errcheck
	}
	return h.Sum64() & MaxKey
}

// ID globally identifies a sample as (node, key); two samples on different
// nodes may share a 48-bit key without colliding in the directory.
type ID struct {
	NID uint16
	Key uint64
}

// IDOf returns the ID packed in e.
func IDOf(e Entry) ID { return ID{NID: e.NID(), Key: e.Key()} }

// String renders the ID.
func (id ID) String() string { return fmt.Sprintf("%d/%#x", id.NID, id.Key) }
