package sample

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestPackUnpackRoundTrip(t *testing.T) {
	e, err := NewEntry(7, 0xABCDEF012345, 1<<30, 123456)
	if err != nil {
		t.Fatal(err)
	}
	if e.NID() != 7 || e.Key() != 0xABCDEF012345 || e.Offset() != 1<<30 || e.Len() != 123456 {
		t.Fatalf("round trip failed: %v", e)
	}
	if e.V() {
		t.Fatal("fresh entry has V set")
	}
	if e.End() != 1<<30+123456 {
		t.Fatalf("End = %d", e.End())
	}
}

func TestExtremes(t *testing.T) {
	e, err := NewEntry(MaxNID, MaxKey, MaxOffset, MaxLen)
	if err != nil {
		t.Fatal(err)
	}
	if e.NID() != MaxNID || e.Key() != MaxKey || e.Offset() != MaxOffset || e.Len() != MaxLen {
		t.Fatalf("extremes: %v", e)
	}
	z, err := NewEntry(0, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if z.NID() != 0 || z.Key() != 0 || z.Offset() != 0 || z.Len() != 0 || z.V() {
		t.Fatalf("zero entry: %v", z)
	}
}

func TestRangeErrors(t *testing.T) {
	if _, err := NewEntry(0, MaxKey+1, 0, 0); err != ErrKeyRange {
		t.Fatalf("key range: %v", err)
	}
	if _, err := NewEntry(0, 0, MaxOffset+1, 0); err != ErrOffsetRange {
		t.Fatalf("offset range: %v", err)
	}
	if _, err := NewEntry(0, 0, -1, 0); err != ErrOffsetRange {
		t.Fatalf("negative offset: %v", err)
	}
	if _, err := NewEntry(0, 0, 0, MaxLen+1); err != ErrLenRange {
		t.Fatalf("len range: %v", err)
	}
	if _, err := NewEntry(0, 0, 0, -1); err != ErrLenRange {
		t.Fatalf("negative len: %v", err)
	}
}

func TestMustEntryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustEntry should panic on bad input")
		}
	}()
	MustEntry(0, MaxKey+1, 0, 0)
}

func TestVBit(t *testing.T) {
	e := MustEntry(3, 42, 4096, 512)
	ev := e.WithV(true)
	if !ev.V() {
		t.Fatal("V not set")
	}
	// Setting V must not disturb the other fields.
	if ev.NID() != 3 || ev.Key() != 42 || ev.Offset() != 4096 || ev.Len() != 512 {
		t.Fatalf("V corrupted fields: %v", ev)
	}
	if ev.WithV(false).V() {
		t.Fatal("V not cleared")
	}
	// Idempotence.
	if !ev.WithV(true).V() {
		t.Fatal("double set lost V")
	}
}

// Property: encode∘decode is the identity for all in-range values.
func TestRoundTripProperty(t *testing.T) {
	f := func(nid uint16, keyRaw, offRaw uint64, lenRaw uint32, v bool) bool {
		key := keyRaw & MaxKey
		off := int64(offRaw & MaxOffset)
		ln := int32(lenRaw & MaxLen)
		e, err := NewEntry(nid, key, off, ln)
		if err != nil {
			return false
		}
		e = e.WithV(v)
		return e.NID() == nid && e.Key() == key && e.Offset() == off && e.Len() == ln && e.V() == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestEntryIs128Bits(t *testing.T) {
	// The paper's memory-budget argument (0.8 GB for 50M samples) relies on
	// 16 bytes per entry.
	var e Entry
	if got := int(16); got != 16 || len([]uint64{e.W0, e.W1}) != 2 {
		t.Fatal("entry is not two 64-bit words")
	}
}

func TestKeyOf(t *testing.T) {
	k1 := KeyOf("train/img_000001.jpg")
	k2 := KeyOf("train/img_000002.jpg")
	if k1 == k2 {
		t.Fatal("distinct names hashed equal (suspicious)")
	}
	if k1 > MaxKey || k2 > MaxKey {
		t.Fatal("key exceeds 48 bits")
	}
	// Attributes must influence the key.
	if KeyOf("a", "class0") == KeyOf("a", "class1") {
		t.Fatal("attrs ignored")
	}
	// Deterministic.
	if KeyOf("a", "b") != KeyOf("a", "b") {
		t.Fatal("KeyOf not deterministic")
	}
	// Attribute boundary: ("ab","c") must differ from ("a","bc").
	if KeyOf("ab", "c") == KeyOf("a", "bc") {
		t.Fatal("attribute boundary not separated")
	}
}

func TestKeyCollisionRate(t *testing.T) {
	// 100k distinct names in a 2^48 space: expected collisions ~ 2e-5.
	// Any collision at this scale would indicate a broken hash fold.
	seen := make(map[uint64]bool, 100000)
	collisions := 0
	for i := 0; i < 100000; i++ {
		k := KeyOf("sample_" + strings.Repeat("x", i%7) + "_" + itoa(i))
		if seen[k] {
			collisions++
		}
		seen[k] = true
	}
	if collisions > 1 {
		t.Fatalf("%d collisions in 100k keys", collisions)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

func TestIDOfAndStrings(t *testing.T) {
	e := MustEntry(9, 0x123, 0, 1)
	id := IDOf(e)
	if id.NID != 9 || id.Key != 0x123 {
		t.Fatalf("IDOf = %v", id)
	}
	if !strings.Contains(e.String(), "nid=9") || !strings.Contains(id.String(), "9/") {
		t.Fatalf("String() malformed: %q %q", e.String(), id.String())
	}
}
