package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"dlfs/internal/sim"
)

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	r.Record(0, KindPost, 1, 0, 100) // must not panic
	if r.Len() != 0 || r.Events() != nil {
		t.Fatal("nil recorder recorded")
	}
}

func TestRecordAndSummarize(t *testing.T) {
	r := New(0)
	r.Record(100, KindPost, 1, 0, 1000)
	r.Record(150, KindPost, 2, 1, 2000)
	r.Record(300, KindComplete, 1, 0, 1000)
	r.Record(500, KindComplete, 2, 1, 2000)
	r.Record(510, KindEmit, 1, 0, 512)
	r.Record(600, KindFree, 1, 0, 1000)
	if r.Len() != 6 {
		t.Fatalf("len %d", r.Len())
	}
	s := r.Summarize()
	if s.Counts[KindPost] != 2 || s.Counts[KindEmit] != 1 {
		t.Fatalf("counts %v", s.Counts)
	}
	// Fetch latencies: 200 and 350 → p50 is the upper median (350).
	if s.FetchP50 != 350 || s.FetchMax != 350 {
		t.Fatalf("fetch p50=%v max=%v", s.FetchP50, s.FetchMax)
	}
	// Unit 1 resident from 300 to 600.
	if s.UnitsResident != 300 {
		t.Fatalf("resident %v", s.UnitsResident)
	}
}

func TestBoundEnforced(t *testing.T) {
	r := New(3)
	for i := 0; i < 10; i++ {
		r.Record(sim.Time(i), KindEmit, i, 0, 1)
	}
	if r.Len() != 3 {
		t.Fatalf("bound not enforced: %d", r.Len())
	}
}

func TestChromeJSON(t *testing.T) {
	r := New(0)
	r.Record(1000, KindPost, 7, 2, 4096)
	r.Record(11000, KindComplete, 7, 2, 4096)
	r.Record(12000, KindEmit, 7, 2, 512)
	var buf bytes.Buffer
	if err := r.WriteChromeJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 {
		t.Fatalf("chrome events: %d", len(events))
	}
	fetch := events[0]
	if fetch["ph"] != "X" || fetch["dur"].(float64) != 10 { // 10 µs
		t.Fatalf("fetch event %v", fetch)
	}
	if !strings.Contains(fetch["name"].(string), "unit 7") {
		t.Fatalf("name %v", fetch["name"])
	}
	if events[1]["ph"] != "i" {
		t.Fatalf("emit event %v", events[1])
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := New(0).Summarize()
	if len(s.Counts) != 0 || s.FetchMax != 0 {
		t.Fatal("empty summary not zero")
	}
}
