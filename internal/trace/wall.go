package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// WallEvent is one live-pipeline occurrence, stamped with the wall-clock
// offset from the recorder's start. Offsets come from Go's monotonic
// clock, so they never run backwards across events recorded by one
// goroutine.
type WallEvent struct {
	Nanos int64 // offset from recorder start
	Kind  Kind
	Unit  int    // fetch-unit sequence number (-1 when not applicable)
	Node  uint16 // storage node involved
	Bytes int
}

// WallRecorder accumulates wall-clock events from the live pipeline —
// the real-time counterpart of Recorder, which only understands
// simulated time. It is safe for concurrent use: prefetchers record
// post/complete while the consumer records emit/free. A nil recorder
// records nothing, so the disabled pipeline pays one nil check per
// would-be event.
type WallRecorder struct {
	start time.Time

	mu      sync.Mutex
	events  []WallEvent
	limit   int
	dropped int64
}

// NewWall returns a wall-clock recorder bounded to limit events
// (0 = 1<<20); events past the bound are counted but dropped.
func NewWall(limit int) *WallRecorder {
	if limit <= 0 {
		limit = 1 << 20
	}
	return &WallRecorder{start: time.Now(), limit: limit}
}

// Record appends an event stamped now.
func (r *WallRecorder) Record(kind Kind, unit int, node uint16, bytes int) {
	if r == nil {
		return
	}
	r.RecordAt(int64(time.Since(r.start)), kind, unit, node, bytes)
}

// RecordAt appends an event at an explicit nanosecond offset. The live
// pipeline uses Record; tests and deterministic exports use RecordAt.
func (r *WallRecorder) RecordAt(nanos int64, kind Kind, unit int, node uint16, bytes int) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if len(r.events) >= r.limit {
		r.dropped++
	} else {
		r.events = append(r.events, WallEvent{Nanos: nanos, Kind: kind, Unit: unit, Node: node, Bytes: bytes})
	}
	r.mu.Unlock()
}

// Len reports recorded events.
func (r *WallRecorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.events)
}

// Dropped reports events lost to the bound.
func (r *WallRecorder) Dropped() int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// Events returns a copy of the recorded events in record order.
func (r *WallRecorder) Events() []WallEvent {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]WallEvent(nil), r.events...)
}

// WallSummary aggregates a wall trace: per-kind counts and the fetch
// (post → complete) latency distribution.
type WallSummary struct {
	Counts   map[Kind]int
	FetchP50 time.Duration
	FetchP99 time.Duration
	FetchMax time.Duration
}

// Summarize computes a WallSummary.
func (r *WallRecorder) Summarize() WallSummary {
	s := WallSummary{Counts: make(map[Kind]int)}
	posted := map[int]int64{}
	var fetches []time.Duration
	for _, ev := range r.Events() {
		s.Counts[ev.Kind]++
		switch ev.Kind {
		case KindPost:
			posted[ev.Unit] = ev.Nanos
		case KindComplete:
			if t0, ok := posted[ev.Unit]; ok {
				fetches = append(fetches, time.Duration(ev.Nanos-t0))
			}
		}
	}
	if len(fetches) > 0 {
		sort.Slice(fetches, func(i, j int) bool { return fetches[i] < fetches[j] })
		s.FetchP50 = fetches[len(fetches)/2]
		s.FetchP99 = fetches[len(fetches)*99/100]
		s.FetchMax = fetches[len(fetches)-1]
	}
	return s
}

// WriteChromeJSON renders the trace as a Chrome trace-event array with
// deterministic output: fetches become duration slices on per-node
// tracks (pid 1), emissions and frees become instant events on the
// application track (pid 2). Events are ordered by (ts, name) and field
// order within an event is fixed by the chromeEvent struct, so the same
// event set always serializes to the same bytes — the property the
// golden-file test pins.
func (r *WallRecorder) WriteChromeJSON(w io.Writer) error {
	posted := map[int]WallEvent{}
	out := []chromeEvent{}
	for _, ev := range r.Events() {
		switch ev.Kind {
		case KindPost:
			posted[ev.Unit] = ev
		case KindComplete:
			if p, ok := posted[ev.Unit]; ok {
				out = append(out, chromeEvent{
					Name: fmt.Sprintf("fetch unit %d (%d B)", ev.Unit, p.Bytes),
					Ph:   "X",
					Ts:   float64(p.Nanos) / 1e3,
					Dur:  float64(ev.Nanos-p.Nanos) / 1e3,
					Pid:  1,
					Tid:  int(ev.Node) + 1,
				})
			}
		case KindEmit:
			out = append(out, chromeEvent{
				Name: "emit sample",
				Ph:   "i",
				Ts:   float64(ev.Nanos) / 1e3,
				Pid:  2,
				Tid:  1,
				S:    "t",
			})
		case KindFree:
			out = append(out, chromeEvent{
				Name: fmt.Sprintf("free unit %d", ev.Unit),
				Ph:   "i",
				Ts:   float64(ev.Nanos) / 1e3,
				Pid:  2,
				Tid:  1,
				S:    "t",
			})
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Ts != out[j].Ts {
			return out[i].Ts < out[j].Ts
		}
		return out[i].Name < out[j].Name
	})
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}
