package trace

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite golden files")

// syntheticEpoch feeds the recorder a small deterministic live epoch:
// three units across two nodes, each unit posted, completed, its samples
// emitted, then freed — the post→complete→emit→free lifecycle in the
// order the pipeline produces it.
func syntheticEpoch(r *WallRecorder) {
	r.RecordAt(1_000, KindPost, 0, 0, 65536)
	r.RecordAt(2_000, KindPost, 1, 1, 65536)
	r.RecordAt(151_000, KindComplete, 0, 0, 65536)
	r.RecordAt(180_500, KindComplete, 1, 1, 65536)
	r.RecordAt(200_000, KindEmit, 0, 0, 4096)
	r.RecordAt(210_000, KindEmit, 1, 1, 4096)
	r.RecordAt(215_000, KindPost, 2, 0, 32768)
	r.RecordAt(230_000, KindEmit, 0, 0, 4096)
	r.RecordAt(240_000, KindFree, 0, 0, 0)
	r.RecordAt(302_000, KindComplete, 2, 0, 32768)
	r.RecordAt(310_000, KindEmit, 2, 0, 4096)
	r.RecordAt(315_000, KindFree, 2, 0, 0)
	r.RecordAt(320_000, KindEmit, 1, 1, 4096)
	r.RecordAt(330_000, KindFree, 1, 1, 0)
}

// TestWallChromeGolden pins the Chrome trace-event export byte-for-byte:
// stable field ordering inside each event, events sorted by timestamp,
// fetch slices paired from post/complete. Regenerate with -update after
// an intentional format change.
func TestWallChromeGolden(t *testing.T) {
	r := NewWall(0)
	syntheticEpoch(r)
	var buf bytes.Buffer
	if err := r.WriteChromeJSON(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "wall_epoch.golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("export drifted from golden file\ngot:  %s\nwant: %s", buf.Bytes(), want)
	}

	// The export must also be what it claims: a JSON array of events with
	// monotone non-decreasing timestamps and non-negative durations.
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if len(events) == 0 {
		t.Fatal("export is empty")
	}
	prev := -1.0
	slices := 0
	for _, ev := range events {
		ts := ev["ts"].(float64)
		if ts < prev {
			t.Fatalf("timestamps not monotone: %v after %v", ts, prev)
		}
		prev = ts
		if ev["ph"] == "X" {
			slices++
			if dur, ok := ev["dur"].(float64); !ok || dur < 0 {
				t.Fatalf("slice with bad duration: %v", ev)
			}
		}
	}
	if slices != 3 {
		t.Fatalf("expected 3 fetch slices (one per completed unit), got %d", slices)
	}
}

// TestWallSummarize checks fetch pairing math on the synthetic epoch.
func TestWallSummarize(t *testing.T) {
	r := NewWall(0)
	syntheticEpoch(r)
	s := r.Summarize()
	if s.Counts[KindPost] != 3 || s.Counts[KindComplete] != 3 || s.Counts[KindEmit] != 5 || s.Counts[KindFree] != 3 {
		t.Fatalf("counts wrong: %+v", s.Counts)
	}
	// Fetch latencies: 150µs, 178.5µs, 87µs.
	if s.FetchMax != 178500*time.Nanosecond {
		t.Fatalf("FetchMax = %v, want 178.5µs", s.FetchMax)
	}
	if s.FetchP50 != 150*time.Microsecond {
		t.Fatalf("FetchP50 = %v, want 150µs", s.FetchP50)
	}
}

// TestWallRecorderBound checks the event cap drops rather than grows.
func TestWallRecorderBound(t *testing.T) {
	r := NewWall(4)
	for i := 0; i < 10; i++ {
		r.RecordAt(int64(i), KindEmit, -1, 0, 0)
	}
	if r.Len() != 4 {
		t.Fatalf("Len = %d, want 4", r.Len())
	}
	if r.Dropped() != 6 {
		t.Fatalf("Dropped = %d, want 6", r.Dropped())
	}
}

// TestWallRecorderNil checks the nil recorder is a no-op on every method.
func TestWallRecorderNil(t *testing.T) {
	var r *WallRecorder
	r.Record(KindPost, 0, 0, 0)
	r.RecordAt(0, KindPost, 0, 0, 0)
	if r.Len() != 0 || r.Dropped() != 0 || r.Events() != nil {
		t.Fatal("nil recorder recorded something")
	}
}

// TestWallRecorderConcurrent hammers Record from several goroutines (the
// -race proof that prefetchers and the consumer can share one recorder).
func TestWallRecorderConcurrent(t *testing.T) {
	r := NewWall(0)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Record(KindPost, g*1000+i, uint16(g), i)
			}
		}(g)
	}
	wg.Wait()
	if r.Len() != 8000 {
		t.Fatalf("Len = %d, want 8000", r.Len())
	}
}
