// Package trace records per-request timelines from the DLFS pipeline —
// when each fetch unit was posted, completed, and drained, and when each
// sample was emitted — and renders them as text summaries or Chrome
// trace-event JSON (load chrome://tracing or Perfetto on the output).
//
// Tracing is opt-in (core.Config.Trace); with a nil recorder the pipeline
// pays nothing.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"dlfs/internal/sim"
)

// Kind labels a recorded event.
type Kind string

// Event kinds emitted by the DLFS pipeline.
const (
	KindPost     Kind = "post"     // fetch unit posted to a queue pair
	KindComplete Kind = "complete" // all device commands of the unit landed
	KindEmit     Kind = "emit"     // a sample was delivered to the application
	KindFree     Kind = "free"     // the unit's cache chunks were recycled
)

// Event is one pipeline occurrence.
type Event struct {
	At    sim.Time
	Kind  Kind
	Unit  int    // fetch-unit sequence number (-1 when not applicable)
	Node  uint16 // storage node involved
	Bytes int
}

// Recorder accumulates events. The zero value records nothing; use New.
type Recorder struct {
	events []Event
	limit  int
}

// New returns a recorder bounded to limit events (0 = 1<<20); the bound
// guards against tracing an unexpectedly long run into OOM.
func New(limit int) *Recorder {
	if limit <= 0 {
		limit = 1 << 20
	}
	return &Recorder{limit: limit}
}

// Record appends an event if the recorder is non-nil and under its bound.
func (r *Recorder) Record(at sim.Time, kind Kind, unit int, node uint16, bytes int) {
	if r == nil || len(r.events) >= r.limit {
		return
	}
	r.events = append(r.events, Event{At: at, Kind: kind, Unit: unit, Node: node, Bytes: bytes})
}

// Len reports recorded events.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	return len(r.events)
}

// Events returns the recorded events in order.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	return r.events
}

// Summary aggregates the trace: per-kind counts and, for units that both
// posted and completed, the fetch-latency distribution.
type Summary struct {
	Counts        map[Kind]int
	FetchP50      sim.Duration
	FetchP99      sim.Duration
	FetchMax      sim.Duration
	UnitsResident sim.Duration // mean time from complete to free
}

// Summarize computes a Summary.
func (r *Recorder) Summarize() Summary {
	s := Summary{Counts: make(map[Kind]int)}
	posted := map[int]sim.Time{}
	completed := map[int]sim.Time{}
	var fetches []sim.Duration
	var residents []sim.Duration
	for _, ev := range r.Events() {
		s.Counts[ev.Kind]++
		switch ev.Kind {
		case KindPost:
			posted[ev.Unit] = ev.At
		case KindComplete:
			completed[ev.Unit] = ev.At
			if t0, ok := posted[ev.Unit]; ok {
				fetches = append(fetches, sim.Duration(ev.At-t0))
			}
		case KindFree:
			if t0, ok := completed[ev.Unit]; ok {
				residents = append(residents, sim.Duration(ev.At-t0))
			}
		}
	}
	if len(fetches) > 0 {
		sort.Slice(fetches, func(i, j int) bool { return fetches[i] < fetches[j] })
		s.FetchP50 = fetches[len(fetches)/2]
		s.FetchP99 = fetches[len(fetches)*99/100]
		s.FetchMax = fetches[len(fetches)-1]
	}
	if len(residents) > 0 {
		var total sim.Duration
		for _, d := range residents {
			total += d
		}
		s.UnitsResident = total / sim.Duration(len(residents))
	}
	return s
}

// chromeEvent is the Chrome trace-event format (the "X" complete-event and
// "i" instant-event phases).
type chromeEvent struct {
	Name string  `json:"name"`
	Ph   string  `json:"ph"`
	Ts   float64 `json:"ts"` // microseconds
	Dur  float64 `json:"dur,omitempty"`
	Pid  int     `json:"pid"`
	Tid  int     `json:"tid"`
	S    string  `json:"s,omitempty"`
}

// WriteChromeJSON renders the trace as a Chrome trace-event array:
// fetches become duration slices on per-storage-node tracks; emissions
// become instant events on the application track.
func (r *Recorder) WriteChromeJSON(w io.Writer) error {
	posted := map[int]Event{}
	var out []chromeEvent
	for _, ev := range r.Events() {
		switch ev.Kind {
		case KindPost:
			posted[ev.Unit] = ev
		case KindComplete:
			if p, ok := posted[ev.Unit]; ok {
				out = append(out, chromeEvent{
					Name: fmt.Sprintf("fetch unit %d (%d B)", ev.Unit, p.Bytes),
					Ph:   "X",
					Ts:   float64(p.At) / 1e3,
					Dur:  float64(ev.At-p.At) / 1e3,
					Pid:  1,
					Tid:  int(ev.Node) + 1,
				})
			}
		case KindEmit:
			out = append(out, chromeEvent{
				Name: "emit sample",
				Ph:   "i",
				Ts:   float64(ev.At) / 1e3,
				Pid:  2,
				Tid:  1,
				S:    "t",
			})
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}
