package coord

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// fuzzFrame builds a wire frame for the corpus.
func fuzzFrame(op byte, rank uint32, payload []byte) []byte {
	var buf bytes.Buffer
	writeFrame(&buf, &frame{op: op, rank: rank, payload: payload}) //nolint:errcheck
	return buf.Bytes()
}

// FuzzCoordFrame drives readFrame with arbitrary bytes: it must never
// panic and never allocate anywhere near a corrupt length prefix's
// claim. The seed corpus covers the interesting shapes — valid control
// and blob frames, an oversized control frame, a huge claimed gather
// payload with no body behind it, and a bad magic.
func FuzzCoordFrame(f *testing.F) {
	f.Add(fuzzFrame(opBarrier, 0, packName("dlfs/mount/start", nil)))
	f.Add(fuzzFrame(opGather, 2, packName("dlfs/mount/dir", []byte("blob"))))
	f.Add(fuzzFrame(opJoin, 1, []byte{3, 0, 0, 0}))
	f.Add(fuzzFrame(opAbort, 0, abortPayload(noRank, "reason")))

	// Corrupt length prefix on a control frame: claims far past the cap.
	corrupt := fuzzFrame(opBarrier, 0, nil)
	binary.LittleEndian.PutUint32(corrupt[9:13], 0xFFFFFFFF)
	f.Add(corrupt)

	// In-cap but bogus gather length with no payload behind it.
	hugeGather := fuzzFrame(opGather, 0, nil)
	binary.LittleEndian.PutUint32(hugeGather[9:13], maxPayload)
	f.Add(hugeGather)

	// Bad magic.
	bad := fuzzFrame(opBarrier, 0, nil)
	binary.LittleEndian.PutUint32(bad[0:4], 0xDEADBEEF)
	f.Add(bad)

	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := readFrame(bytes.NewReader(data))
		if err != nil {
			return
		}
		// A frame that parsed must round-trip byte-identically.
		var buf bytes.Buffer
		if err := writeFrame(&buf, fr); err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		if got := buf.Bytes(); !bytes.Equal(got, data[:len(got)]) {
			t.Fatalf("round trip mismatch: %x != %x", got, data[:len(got)])
		}
	})
}
