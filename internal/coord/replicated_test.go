package coord

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"
)

// startSet stands up a replica set with fast, test-friendly timings.
func startSet(t *testing.T, n, world int, grace time.Duration) ([]*ReplicatedServer, []string) {
	t.Helper()
	if grace <= 0 {
		grace = 2 * time.Second
	}
	srvs, addrs, err := StartReplicaSet(n, world, ReplicatedOptions{
		ElectionTimeout: 80 * time.Millisecond,
		RankGrace:       grace,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		for _, s := range srvs {
			s.Close() //nolint:errcheck
		}
	})
	return srvs, addrs
}

func testOptions() Options {
	return Options{
		DialTimeout:    2 * time.Second,
		WaitTimeout:    15 * time.Second,
		ResolveTimeout: 15 * time.Second,
	}
}

// waitSetLeader polls until one replica reports itself leader.
func waitSetLeader(t *testing.T, srvs []*ReplicatedServer) *ReplicatedServer {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		for _, s := range srvs {
			if l, _ := s.Leader(); l == s.Addr() {
				return s
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("replica set never elected a leader")
	return nil
}

func TestReplicatedBarrierAndGather(t *testing.T) {
	_, addrs := startSet(t, 3, 3, 0)
	var wg sync.WaitGroup
	errs := make([]error, 3)
	blobs := make([][][]byte, 3)
	for rank := 0; rank < 3; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			c, err := JoinCluster(addrs, rank, 3, testOptions())
			if err != nil {
				errs[rank] = err
				return
			}
			defer c.Close() //nolint:errcheck
			if err := c.Barrier("start"); err != nil {
				errs[rank] = err
				return
			}
			blobs[rank], errs[rank] = c.Allgather("dir", []byte(fmt.Sprintf("blob-%d", rank)))
		}(rank)
	}
	wg.Wait()
	for rank, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", rank, err)
		}
	}
	for rank := 0; rank < 3; rank++ {
		if len(blobs[rank]) != 3 {
			t.Fatalf("rank %d got %d blobs", rank, len(blobs[rank]))
		}
		for r := 0; r < 3; r++ {
			want := fmt.Sprintf("blob-%d", r)
			if string(blobs[rank][r]) != want {
				t.Fatalf("rank %d blob[%d] = %q, want %q", rank, r, blobs[rank][r], want)
			}
		}
	}
}

func TestReplicatedLeaderFailoverMidCollective(t *testing.T) {
	srvs, addrs := startSet(t, 3, 3, 0)
	leader := waitSetLeader(t, srvs)

	clients := make([]*ClusterClient, 3)
	for rank := 0; rank < 3; rank++ {
		c, err := JoinCluster(addrs, rank, 3, testOptions())
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close() //nolint:errcheck
		clients[rank] = c
	}

	// Ranks 0 and 1 enter the barrier and block on rank 2; then the
	// leader dies mid-collective. Their connections drop, they re-resolve
	// to the new leader and resubmit; rank 2 arrives there and everyone
	// is released.
	var wg sync.WaitGroup
	errs := make([]error, 3)
	for _, rank := range []int{0, 1} {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			errs[rank] = clients[rank].Barrier("epoch")
		}(rank)
	}
	time.Sleep(300 * time.Millisecond) // let 0 and 1 get their arrivals in
	if err := leader.Close(); err != nil {
		t.Fatalf("killing leader: %v", err)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		errs[2] = clients[2].Barrier("epoch")
	}()
	wg.Wait()
	for rank, err := range errs {
		if err != nil {
			t.Fatalf("rank %d barrier across failover: %v", rank, err)
		}
	}

	// A new leader must be visible, at a higher term.
	st, err := clients[0].Status()
	if err != nil {
		t.Fatal(err)
	}
	if st.Leader == "" || st.Leader == leader.Addr() {
		t.Fatalf("leader after failover = %q (dead leader was %q)", st.Leader, leader.Addr())
	}
}

func TestReplicatedDepartBumpsEpochAndReshards(t *testing.T) {
	srvs, addrs := startSet(t, 3, 3, 0)
	waitSetLeader(t, srvs)

	clients := make([]*ClusterClient, 3)
	for rank := 0; rank < 3; rank++ {
		c, err := JoinCluster(addrs, rank, 3, testOptions())
		if err != nil {
			t.Fatal(err)
		}
		clients[rank] = c
	}
	defer clients[0].Close() //nolint:errcheck
	defer clients[1].Close() //nolint:errcheck

	before, err := clients[0].Status()
	if err != nil {
		t.Fatal(err)
	}

	st, err := clients[2].Depart(7)
	if err != nil {
		t.Fatalf("depart: %v", err)
	}
	if st.World != 2 || st.DepartRank != 2 || st.DepartCut != 7 {
		t.Fatalf("depart status = %+v", st)
	}
	if st.Epoch != before.Epoch+1 {
		t.Fatalf("epoch %d after depart, want %d", st.Epoch, before.Epoch+1)
	}
	if len(st.Members) != 2 || st.Members[0] != 0 || st.Members[1] != 1 {
		t.Fatalf("members after depart = %v", st.Members)
	}

	// Collectives now need only the two survivors.
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for rank := 0; rank < 2; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			errs[rank] = clients[rank].Barrier("post-depart")
		}(rank)
	}
	wg.Wait()
	for rank, err := range errs {
		if err != nil {
			t.Fatalf("survivor %d barrier: %v", rank, err)
		}
	}
}

func TestReplicatedRankDeathDuringBarrierPoisons(t *testing.T) {
	srvs, addrs := startSet(t, 3, 3, 150*time.Millisecond)
	leader := waitSetLeader(t, srvs)

	// Rank 2 joins raw and dies without a trace.
	conn, err := net.Dial("tcp", leader.Addr())
	if err != nil {
		t.Fatal(err)
	}
	var worldw [4]byte
	binary.LittleEndian.PutUint32(worldw[:], 3)
	if err := writeFrame(conn, &frame{op: opJoin, rank: 2, payload: worldw[:]}); err != nil {
		t.Fatal(err)
	}
	if f, err := readFrame(conn); err != nil || f.op != opJoinOK {
		t.Fatalf("raw join: op=%v err=%v", f, err)
	}

	c0, err := JoinCluster(addrs, 0, 3, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer c0.Close() //nolint:errcheck
	c1, err := JoinCluster(addrs, 1, 3, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close() //nolint:errcheck

	var wg sync.WaitGroup
	errs := make([]error, 2)
	start := time.Now()
	wg.Add(2)
	go func() { defer wg.Done(); errs[0] = c0.Barrier("doomed") }()
	go func() { defer wg.Done(); errs[1] = c1.Barrier("doomed") }()
	time.Sleep(100 * time.Millisecond)
	conn.Close() //nolint:errcheck — rank 2 dies mid-barrier
	wg.Wait()
	elapsed := time.Since(start)

	for rank, err := range errs {
		var pl *PeerLostError
		if !errors.As(err, &pl) {
			t.Fatalf("rank %d got %v, want *PeerLostError", rank, err)
		}
		if pl.Rank != 2 {
			t.Fatalf("rank %d blamed rank %d, want 2", rank, pl.Rank)
		}
		if !errors.Is(err, ErrPeerLost) {
			t.Fatalf("rank %d error does not match ErrPeerLost", rank)
		}
	}
	if elapsed >= testOptions().WaitTimeout {
		t.Fatalf("survivors took %v, not inside WaitTimeout %v", elapsed, testOptions().WaitTimeout)
	}
}

func TestReplicatedStatusFromFollower(t *testing.T) {
	srvs, _ := startSet(t, 3, 3, 0)
	leader := waitSetLeader(t, srvs)
	for _, s := range srvs {
		if s == leader {
			continue
		}
		st, err := FetchStatus(s.Addr(), 2*time.Second)
		if err != nil {
			t.Fatalf("status from follower %s: %v", s.Addr(), err)
		}
		if st.Leader != leader.Addr() {
			t.Fatalf("follower %s reports leader %q, want %q", s.Addr(), st.Leader, leader.Addr())
		}
		if st.World != 3 || st.Epoch == 0 {
			t.Fatalf("follower status = %+v", st)
		}
	}
}

func TestFrameSizeLimits(t *testing.T) {
	// A control frame claiming a huge payload must fail with the typed
	// error before any large allocation.
	mk := func(op byte, n uint32) []byte {
		hdr := make([]byte, frameHeaderSize)
		binary.LittleEndian.PutUint32(hdr[0:4], Magic)
		hdr[4] = op
		binary.LittleEndian.PutUint32(hdr[5:9], 0)
		binary.LittleEndian.PutUint32(hdr[9:13], n)
		return hdr
	}
	_, err := readFrame(bytes.NewReader(mk(opBarrier, maxControlPayload+1)))
	var fse *FrameSizeError
	if !errors.As(err, &fse) {
		t.Fatalf("got %v, want *FrameSizeError", err)
	}
	if fse.Op != opBarrier || fse.Limit != maxControlPayload {
		t.Fatalf("frame size error = %+v", fse)
	}
	if !errors.Is(err, ErrFrameTooLarge) || !errors.Is(err, ErrProtocol) {
		t.Fatal("FrameSizeError must match both ErrFrameTooLarge and ErrProtocol")
	}

	// Gather frames get the big cap: the same length is fine there (the
	// read then fails on the missing payload, not the cap).
	_, err = readFrame(bytes.NewReader(mk(opGather, maxControlPayload+1)))
	if errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("gather frame rejected by control cap: %v", err)
	}

	// A corrupt in-cap length on a truncated stream must not allocate
	// the claimed size before failing (chunked read surfaces EOF first).
	_, err = readFrame(bytes.NewReader(mk(opGather, maxPayload)))
	if err == nil || errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("truncated gather read err = %v", err)
	}
}
