package coord

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// startServer spins up a coordinator for world ranks on a loopback port.
func startServer(t *testing.T, world int) (*Server, string) {
	t.Helper()
	srv := NewServer(world, ServerOptions{})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() }) //nolint:errcheck
	return srv, addr
}

// joinAll joins world clients and registers cleanup.
func joinAll(t *testing.T, addr string, world int) []*Client {
	t.Helper()
	cls := make([]*Client, world)
	for r := 0; r < world; r++ {
		cl, err := Join(addr, r, world, Options{DialTimeout: 2 * time.Second, WaitTimeout: 5 * time.Second})
		if err != nil {
			t.Fatalf("join rank %d: %v", r, err)
		}
		t.Cleanup(func() { cl.Close() }) //nolint:errcheck
		cls[r] = cl
	}
	return cls
}

func TestAllgatherDeliversRankOrderedBlobs(t *testing.T) {
	const world = 4
	_, addr := startServer(t, world)
	cls := joinAll(t, addr, world)

	var wg sync.WaitGroup
	results := make([][][]byte, world)
	errs := make([]error, world)
	for r := 0; r < world; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			blob := bytes.Repeat([]byte{byte(r + 1)}, (r+1)*100)
			results[r], errs[r] = cls[r].Allgather("dir", blob)
		}(r)
	}
	wg.Wait()
	for r := 0; r < world; r++ {
		if errs[r] != nil {
			t.Fatalf("rank %d: %v", r, errs[r])
		}
		if len(results[r]) != world {
			t.Fatalf("rank %d got %d blobs", r, len(results[r]))
		}
		for src, b := range results[r] {
			want := bytes.Repeat([]byte{byte(src + 1)}, (src+1)*100)
			if !bytes.Equal(b, want) {
				t.Fatalf("rank %d blob %d mismatch: %d bytes", r, src, len(b))
			}
		}
	}
}

func TestBarrierBlocksUntilAllArrive(t *testing.T) {
	const world = 3
	_, addr := startServer(t, world)
	cls := joinAll(t, addr, world)

	released := make(chan int, world)
	var wg sync.WaitGroup
	for r := 0; r < world-1; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			if err := cls[r].Barrier("b"); err != nil {
				t.Errorf("rank %d: %v", r, err)
			}
			released <- r
		}(r)
	}
	select {
	case r := <-released:
		t.Fatalf("rank %d released before all arrived", r)
	case <-time.After(100 * time.Millisecond):
	}
	if err := cls[world-1].Barrier("b"); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if len(released) != world-1 {
		t.Fatalf("only %d ranks released", len(released))
	}
}

func TestRepeatedCollectivesOnOneConnection(t *testing.T) {
	const world = 2
	_, addr := startServer(t, world)
	cls := joinAll(t, addr, world)
	for round := 0; round < 3; round++ {
		var wg sync.WaitGroup
		for r := 0; r < world; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				name := fmt.Sprintf("round-%d", round)
				if err := cls[r].Barrier(name); err != nil {
					t.Errorf("barrier %s rank %d: %v", name, r, err)
					return
				}
				got, err := cls[r].Allgather(name, []byte{byte(r), byte(round)})
				if err != nil {
					t.Errorf("gather %s rank %d: %v", name, r, err)
					return
				}
				for src := 0; src < world; src++ {
					if !bytes.Equal(got[src], []byte{byte(src), byte(round)}) {
						t.Errorf("round %d rank %d: bad blob from %d", round, r, src)
					}
				}
			}(r)
		}
		wg.Wait()
	}
}

func TestJoinValidation(t *testing.T) {
	_, addr := startServer(t, 2)
	if _, err := Join(addr, 0, 3, Options{DialTimeout: time.Second}); err == nil {
		t.Fatal("world mismatch accepted")
	}
	if _, err := Join(addr, 5, 2, Options{DialTimeout: time.Second}); err == nil {
		t.Fatal("out-of-range rank accepted")
	}
	cl, err := Join(addr, 0, 2, Options{DialTimeout: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close() //nolint:errcheck
	if _, err := Join(addr, 0, 2, Options{DialTimeout: time.Second}); err == nil {
		t.Fatal("duplicate rank accepted")
	}
}

// TestPeerDeathAbortsSurvivors is the fail-fast contract: a rank whose
// connection dies mid-allgather must surface as a typed *PeerLostError
// on every survivor well before their wait timeout.
func TestPeerDeathAbortsSurvivors(t *testing.T) {
	const world = 3
	_, addr := startServer(t, world)
	cls := joinAll(t, addr, world)

	var wg sync.WaitGroup
	errs := make([]error, 2)
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			_, errs[r] = cls[r].Allgather("doomed", []byte{byte(r)})
		}(r)
	}
	// Rank 2 dies without contributing: hard connection drop.
	time.Sleep(50 * time.Millisecond)
	cls[2].conn.Close() //nolint:errcheck

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("survivors wedged after peer death")
	}
	for r := 0; r < 2; r++ {
		var pl *PeerLostError
		if !errors.As(errs[r], &pl) || !errors.Is(errs[r], ErrPeerLost) {
			t.Fatalf("rank %d: want PeerLostError, got %v", r, errs[r])
		}
		if pl.Rank != 2 {
			t.Fatalf("rank %d: lost rank = %d, want 2", r, pl.Rank)
		}
	}
	// The job is poisoned: later collectives fail fast too.
	if err := cls[0].Barrier("after"); !errors.Is(err, ErrPeerLost) {
		t.Fatalf("post-failure barrier: %v", err)
	}
}

// TestGracefulLeaveOutsideCollectiveDoesNotAbort checks an orderly Close
// between collectives leaves the survivors' job healthy... until they
// next need the departed rank, which correctly aborts.
func TestGracefulLeaveOutsideCollective(t *testing.T) {
	const world = 2
	_, addr := startServer(t, world)
	cls := joinAll(t, addr, world)
	var wg sync.WaitGroup
	for r := 0; r < world; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			if err := cls[r].Barrier("sync"); err != nil {
				t.Errorf("rank %d: %v", r, err)
			}
		}(r)
	}
	wg.Wait()
	if err := cls[1].Close(); err != nil {
		t.Fatal(err)
	}
	// Client-side reuse after Close is refused locally.
	if err := cls[1].Barrier("x"); !errors.Is(err, ErrClosed) {
		t.Fatalf("closed client barrier: %v", err)
	}
}

func TestWaitTimeout(t *testing.T) {
	const world = 2
	_, addr := startServer(t, world)
	cl, err := Join(addr, 0, world, Options{DialTimeout: time.Second, WaitTimeout: 150 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close() //nolint:errcheck
	// Rank 1 never joins, so the barrier cannot complete.
	start := time.Now()
	err = cl.Barrier("lonely")
	if !errors.Is(err, ErrWaitTimeout) {
		t.Fatalf("want ErrWaitTimeout, got %v", err)
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("timeout took too long")
	}
}

func TestUnpackBlobsRejectsCorruptSets(t *testing.T) {
	if _, err := unpackBlobs([]byte{1, 0, 0}, 1); err == nil {
		t.Fatal("short length accepted")
	}
	if _, err := unpackBlobs([]byte{5, 0, 0, 0, 'a'}, 1); err == nil {
		t.Fatal("truncated blob accepted")
	}
	if _, err := unpackBlobs([]byte{1, 0, 0, 0, 'a', 'x'}, 1); err == nil {
		t.Fatal("trailing bytes accepted")
	}
	got, err := unpackBlobs([]byte{1, 0, 0, 0, 'a', 0, 0, 0, 0}, 2)
	if err != nil || string(got[0]) != "a" || len(got[1]) != 0 {
		t.Fatalf("valid set rejected: %v %q", err, got)
	}
}
