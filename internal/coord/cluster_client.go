package coord

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// Session conformance: live mounts take either client.
var (
	_ Session = (*Client)(nil)
	_ Session = (*ClusterClient)(nil)
)

// ClusterClient is one rank's failover-aware connection to a
// coordinator replica set. It discovers the Raft leader by following
// redirects, and when the leader dies mid-collective it re-resolves
// with backoff and resubmits — the replicated FSM makes resubmission
// idempotent, so a collective survives any failover that finishes
// inside Options.WaitTimeout.
type ClusterClient struct {
	peers []string
	rank  int
	world int
	opt   Options

	mu     sync.Mutex // one collective in flight at a time
	conn   net.Conn
	leader string // last known leader address
	closed bool
}

// JoinCluster resolves the replica set's leader and registers as rank
// of world. peers lists every replica address; order does not matter.
func JoinCluster(peers []string, rank, world int, opt Options) (*ClusterClient, error) {
	if len(peers) == 0 {
		return nil, fmt.Errorf("%w: empty peer list", ErrNoLeader)
	}
	opt = opt.withDefaults()
	c := &ClusterClient{peers: append([]string(nil), peers...), rank: rank, world: world, opt: opt}
	if err := c.rejoin(time.Now().Add(opt.ResolveTimeout)); err != nil {
		return nil, err
	}
	return c, nil
}

// Rank reports the client's rank.
func (c *ClusterClient) Rank() int { return c.rank }

// World reports the job size the client joined with.
func (c *ClusterClient) World() int { return c.world }

// Leader reports the last leader address this client joined through.
func (c *ClusterClient) Leader() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.leader
}

// rejoin (re)establishes a joined connection to the current leader,
// following redirects and sweeping the peer list with backoff until
// deadline. Callers hold no lock or c.mu; it touches conn/leader only
// through the pointer fields, so callers must hold c.mu.
func (c *ClusterClient) rejoin(deadline time.Time) error {
	if c.conn != nil {
		c.conn.Close() //nolint:errcheck
		c.conn = nil
	}
	backoff := 50 * time.Millisecond
	var lastErr error
	for {
		// Try the last known leader first, then sweep the peer list.
		candidates := make([]string, 0, len(c.peers)+1)
		if c.leader != "" {
			candidates = append(candidates, c.leader)
		}
		for _, p := range c.peers {
			if p != c.leader {
				candidates = append(candidates, p)
			}
		}
		for _, addr := range candidates {
			conn, err := c.tryJoin(addr)
			if err == nil {
				c.conn = conn
				c.leader = addr
				return nil
			}
			lastErr = err
			var pl *PeerLostError
			if errors.As(err, &pl) {
				return err // poison is permanent; no point retrying
			}
			if time.Now().After(deadline) {
				return fmt.Errorf("%w: %v", ErrNoLeader, lastErr)
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("%w: %v", ErrNoLeader, lastErr)
		}
		time.Sleep(backoff)
		if backoff *= 2; backoff > 500*time.Millisecond {
			backoff = 500 * time.Millisecond
		}
	}
}

// tryJoin attempts the join handshake against one replica, following a
// single redirect hop (the next sweep retries from the hinted leader).
func (c *ClusterClient) tryJoin(addr string) (net.Conn, error) {
	for hop := 0; hop < 2; hop++ {
		conn, err := net.DialTimeout("tcp", addr, c.opt.DialTimeout)
		if err != nil {
			return nil, err
		}
		var worldw [4]byte
		binary.LittleEndian.PutUint32(worldw[:], uint32(c.world))
		conn.SetDeadline(time.Now().Add(c.opt.DialTimeout)) //nolint:errcheck
		if err := writeFrame(conn, &frame{op: opJoin, rank: uint32(c.rank), payload: worldw[:]}); err != nil {
			conn.Close() //nolint:errcheck
			return nil, err
		}
		f, err := readFrame(conn)
		if err != nil {
			conn.Close() //nolint:errcheck
			return nil, err
		}
		switch f.op {
		case opJoinOK:
			conn.SetDeadline(time.Time{}) //nolint:errcheck
			return conn, nil
		case opRedirect:
			conn.Close() //nolint:errcheck
			hint := string(f.payload)
			if hint == "" || hint == addr {
				return nil, fmt.Errorf("%w: %s is not the leader", ErrNoLeader, addr)
			}
			c.leader = hint
			addr = hint
		case opAbort:
			conn.Close() //nolint:errcheck
			return nil, abortError(f.payload)
		default:
			conn.Close() //nolint:errcheck
			return nil, fmt.Errorf("%w: unexpected join reply opcode %d", ErrProtocol, f.op)
		}
	}
	return nil, fmt.Errorf("%w: redirect loop", ErrNoLeader)
}

// Barrier blocks until every current member has called Barrier with the
// same name, surviving coordinator failovers inside WaitTimeout.
func (c *ClusterClient) Barrier(name string) error {
	_, err := c.collective(opBarrier, name, nil)
	return err
}

// Allgather contributes blob under name and blocks until every current
// member has contributed. The result is indexed by rank; ranks that are
// no longer members have nil entries.
func (c *ClusterClient) Allgather(name string, blob []byte) ([][]byte, error) {
	return c.collective(opGather, name, blob)
}

// collective submits one collective and waits it out, re-resolving the
// leader and resubmitting on redirect or connection loss.
func (c *ClusterClient) collective(op byte, name string, blob []byte) ([][]byte, error) {
	if len(name) == 0 || len(name) > maxName {
		return nil, fmt.Errorf("%w: bad collective name %q", ErrProtocol, name)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, ErrClosed
	}
	deadline := time.Now().Add(c.opt.WaitTimeout)
	noDeadline := c.opt.WaitTimeout <= 0
	for {
		if c.conn == nil {
			d := deadline
			if noDeadline {
				d = time.Now().Add(c.opt.ResolveTimeout)
			}
			if err := c.rejoin(d); err != nil {
				return nil, err
			}
		}
		blobs, retry, err := c.attempt(op, name, blob, deadline, noDeadline)
		if !retry {
			return blobs, err
		}
		c.conn.Close() //nolint:errcheck
		c.conn = nil
		if !noDeadline && time.Now().After(deadline) {
			return nil, fmt.Errorf("%w: %q after %v", ErrWaitTimeout, name, c.opt.WaitTimeout)
		}
	}
}

// attempt runs one submit/wait round trip on the current connection.
// retry=true means the connection is no longer usable but the
// collective may still succeed elsewhere.
func (c *ClusterClient) attempt(op byte, name string, blob []byte, deadline time.Time, noDeadline bool) (blobs [][]byte, retry bool, err error) {
	if err := writeFrame(c.conn, &frame{op: op, rank: uint32(c.rank), payload: packName(name, blob)}); err != nil {
		return nil, true, nil
	}
	if !noDeadline {
		c.conn.SetReadDeadline(deadline)          //nolint:errcheck
		defer c.conn.SetReadDeadline(time.Time{}) //nolint:errcheck
	}
	f, err := readFrame(c.conn)
	if err != nil {
		if ne, ok := err.(net.Error); ok && ne.Timeout() {
			return nil, false, fmt.Errorf("%w: %q after %v", ErrWaitTimeout, name, c.opt.WaitTimeout)
		}
		return nil, true, nil // conn lost; re-resolve and resubmit
	}
	switch f.op {
	case opAbort:
		return nil, false, abortError(f.payload)
	case opRedirect:
		if hint := string(f.payload); hint != "" {
			c.leader = hint
		} else {
			c.leader = ""
		}
		return nil, true, nil
	case opRelease:
		got, _, err := unpackName(f.payload)
		if err != nil {
			return nil, false, err
		}
		if op != opBarrier || got != name {
			return nil, false, fmt.Errorf("%w: release for %q while waiting on %q", ErrProtocol, got, name)
		}
		return nil, false, nil
	case opBlobs:
		got, body, err := unpackName(f.payload)
		if err != nil {
			return nil, false, err
		}
		if op != opGather || got != name {
			return nil, false, fmt.Errorf("%w: blobs for %q while waiting on %q", ErrProtocol, got, name)
		}
		out, err := unpackRankBlobs(body, c.world)
		return out, false, err
	default:
		return nil, false, fmt.Errorf("%w: unexpected opcode %d", ErrProtocol, f.op)
	}
}

// unpackRankBlobs decodes the replicated blob set
// (u32 count | count × (u32 rank | u32 len | blob)) into a slice
// indexed by rank, at least world entries long.
func unpackRankBlobs(body []byte, world int) ([][]byte, error) {
	if len(body) < 4 {
		return nil, fmt.Errorf("%w: truncated blob set", ErrProtocol)
	}
	count := int(binary.LittleEndian.Uint32(body[0:4]))
	body = body[4:]
	out := make([][]byte, world)
	for i := 0; i < count; i++ {
		if len(body) < 8 {
			return nil, fmt.Errorf("%w: truncated blob entry %d", ErrProtocol, i)
		}
		rank := int(binary.LittleEndian.Uint32(body[0:4]))
		n := int(binary.LittleEndian.Uint32(body[4:8]))
		body = body[8:]
		if rank < 0 || n < 0 || len(body) < n {
			return nil, fmt.Errorf("%w: truncated blob for rank %d", ErrProtocol, rank)
		}
		for rank >= len(out) {
			out = append(out, nil)
		}
		out[rank] = body[:n:n]
		body = body[n:]
	}
	if len(body) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes after blob set", ErrProtocol, len(body))
	}
	return out, nil
}

// Status asks a replica (the known leader first, then any reachable
// peer) for the control-plane view: leader, term, placement epoch, and
// membership.
func (c *ClusterClient) Status() (ClusterStatus, error) {
	c.mu.Lock()
	leader := c.leader
	c.mu.Unlock()
	candidates := make([]string, 0, len(c.peers)+1)
	if leader != "" {
		candidates = append(candidates, leader)
	}
	for _, p := range c.peers {
		if p != leader {
			candidates = append(candidates, p)
		}
	}
	var lastErr error
	for _, addr := range candidates {
		st, err := FetchStatus(addr, c.opt.DialTimeout)
		if err == nil {
			return st, nil
		}
		lastErr = err
	}
	return ClusterStatus{}, fmt.Errorf("coord: status: %w", lastErr)
}

// FetchStatus asks one replica for its control-plane view over a
// short-lived connection.
func FetchStatus(addr string, timeout time.Duration) (ClusterStatus, error) {
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return ClusterStatus{}, err
	}
	defer conn.Close()                        //nolint:errcheck
	conn.SetDeadline(time.Now().Add(timeout)) //nolint:errcheck
	if err := writeFrame(conn, &frame{op: opStatus, rank: noRank}); err != nil {
		return ClusterStatus{}, err
	}
	f, err := readFrame(conn)
	if err != nil {
		return ClusterStatus{}, err
	}
	if f.op != opStatusOK {
		return ClusterStatus{}, fmt.Errorf("%w: unexpected status reply opcode %d", ErrProtocol, f.op)
	}
	var st ClusterStatus
	if err := gob.NewDecoder(bytes.NewReader(f.payload)).Decode(&st); err != nil {
		return ClusterStatus{}, fmt.Errorf("%w: bad status payload: %v", ErrProtocol, err)
	}
	return st, nil
}

// Depart leaves the job mid-training at the declared cut: the leader
// replicates a membership change, bumps the placement epoch, and the
// survivors reshard the unconsumed suffix from cut. The returned status
// reflects the post-departure membership. The client is closed either
// way.
func (c *ClusterClient) Depart(cut uint64) (ClusterStatus, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ClusterStatus{}, ErrClosed
	}
	c.closed = true
	defer func() {
		if c.conn != nil {
			c.conn.Close() //nolint:errcheck
			c.conn = nil
		}
	}()
	deadline := time.Now().Add(c.opt.ResolveTimeout)
	var payload [8]byte
	binary.LittleEndian.PutUint64(payload[:], cut)
	for {
		if c.conn == nil {
			if err := c.rejoin(deadline); err != nil {
				return ClusterStatus{}, err
			}
		}
		c.conn.SetDeadline(time.Now().Add(c.opt.DialTimeout)) //nolint:errcheck
		werr := writeFrame(c.conn, &frame{op: opDepart, rank: uint32(c.rank), payload: payload[:]})
		var f *frame
		var rerr error
		if werr == nil {
			f, rerr = readFrame(c.conn)
		}
		if werr != nil || rerr != nil {
			c.conn.Close() //nolint:errcheck
			c.conn = nil
			if time.Now().After(deadline) {
				return ClusterStatus{}, fmt.Errorf("%w: depart", ErrWaitTimeout)
			}
			continue
		}
		switch f.op {
		case opStatusOK:
			var st ClusterStatus
			if err := gob.NewDecoder(bytes.NewReader(f.payload)).Decode(&st); err != nil {
				return ClusterStatus{}, fmt.Errorf("%w: bad depart ack: %v", ErrProtocol, err)
			}
			return st, nil
		case opRedirect:
			c.leader = string(f.payload)
			c.conn.Close() //nolint:errcheck
			c.conn = nil
		case opAbort:
			return ClusterStatus{}, abortError(f.payload)
		default:
			return ClusterStatus{}, fmt.Errorf("%w: unexpected depart reply opcode %d", ErrProtocol, f.op)
		}
		if time.Now().After(deadline) {
			return ClusterStatus{}, fmt.Errorf("%w: depart", ErrWaitTimeout)
		}
	}
}

// Close departs the connection (not the membership): an orderly leave
// with no pending collectives keeps the rank a member so it can rejoin
// after a process restart. Use Depart to shrink the job.
func (c *ClusterClient) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	if c.conn == nil {
		return nil
	}
	c.conn.SetWriteDeadline(time.Now().Add(time.Second))          //nolint:errcheck
	writeFrame(c.conn, &frame{op: opLeave, rank: uint32(c.rank)}) //nolint:errcheck
	err := c.conn.Close()
	c.conn = nil
	return err
}
