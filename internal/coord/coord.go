// Package coord is the live-path control plane for multi-node DLFS
// mounts: a small TCP coordinator giving N ranks the two collectives the
// paper's mount needs — a barrier and the allgather that replicates
// every node's serialized AVL directory partition to all nodes
// (§III-B2). It is the real-socket counterpart of the simulated
// cluster.Job collectives.
//
// One process hosts a Server sized for the job's world; every rank
// (including one in the hosting process) dials it with Join. Collectives
// are named, so a program can run several independent barriers and
// gathers over one connection. The client is synchronous: one collective
// in flight per rank, which matches mount's phase structure.
//
// Failure model: the coordinator watches every member connection. When a
// rank dies — its TCP connection drops, mid-frame or between frames —
// the server broadcasts an abort naming the lost rank, and every
// surviving rank's pending (and future) collective fails fast with a
// *PeerLostError instead of wedging the job. Clients additionally bound
// each wait with Options.WaitTimeout so a dead coordinator cannot wedge
// them either.
//
// Framing (all integers little-endian):
//
//	frame := magic(u32) | opcode(u8) | rank(u32) | length(u32) | payload
//
// Join carries the world size; Barrier and Gather carry a 16-bit
// name-length-prefixed collective name (Gather followed by the blob);
// the Blobs response carries the name then world length-prefixed blobs
// in rank order; Abort carries the lost rank (0xFFFFFFFF when the fault
// is not attributable) and a reason string.
package coord

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// Magic guards against cross-protocol connections ("DLCO").
const Magic = 0x444C434F

// Opcodes. The first eight are the classic single-server protocol; the
// rest exist only on the replicated coordinator (redirect-based leader
// discovery, cluster status, and elastic departure).
const (
	opJoin byte = iota + 1
	opJoinOK
	opBarrier
	opRelease
	opGather
	opBlobs
	opLeave
	opAbort
	opDepart   // client → leader: leave the job at a declared cut
	opRedirect // server → client: not the leader; payload is the leader addr
	opStatus   // client → any replica: report leader/term/epoch/members
	opStatusOK // server → client: gob-encoded ClusterStatus
)

// Limits: a directory partition blob is 16 B per sample, so 1 GiB covers
// 67 M samples per node — far past the paper's 50 M-sample budget. Every
// other opcode is a small control frame (names are ≤255 B, status is a
// gob struct with one entry per rank), so those get a much tighter cap:
// a corrupt length prefix on a control frame must not be able to demand
// a gigabyte.
const (
	maxPayload        = 1 << 30
	maxControlPayload = 64 << 10
	maxName           = 255
)

// payloadLimit returns the largest payload an opcode may carry. Only the
// two blob-bearing opcodes get the big cap; unknown opcodes are treated
// as control frames (they will be rejected by the dispatcher anyway, but
// must not be able to trigger a huge allocation first).
func payloadLimit(op byte) uint32 {
	switch op {
	case opGather, opBlobs:
		return maxPayload
	default:
		return maxControlPayload
	}
}

// noRank is the abort payload's rank when the fault is not attributable
// to a specific member.
const noRank = ^uint32(0)

// Errors.
var (
	// ErrPeerLost marks a collective aborted because a member rank died.
	// Match with errors.Is; the concrete error is a *PeerLostError.
	ErrPeerLost = errors.New("coord: peer lost")
	// ErrWaitTimeout marks a collective that outlived Options.WaitTimeout.
	ErrWaitTimeout = errors.New("coord: collective wait timed out")
	// ErrClosed reports use of a closed client or server.
	ErrClosed = errors.New("coord: closed")
	// ErrProtocol reports a malformed or unexpected frame.
	ErrProtocol = errors.New("coord: protocol error")
	// ErrFrameTooLarge marks a frame whose length prefix exceeds the
	// opcode's payload cap. Match with errors.Is; the concrete error is a
	// *FrameSizeError.
	ErrFrameTooLarge = errors.New("coord: frame exceeds size limit")
	// ErrNoLeader reports that no coordinator replica could be resolved
	// to a leader within the client's budget.
	ErrNoLeader = errors.New("coord: no leader")
)

// FrameSizeError reports an oversized frame: which opcode, the claimed
// payload length, and the cap it broke. It unwraps to both
// ErrFrameTooLarge and ErrProtocol.
type FrameSizeError struct {
	Op    byte
	Size  uint32
	Limit uint32
}

func (e *FrameSizeError) Error() string {
	return fmt.Sprintf("coord: opcode %d payload %d exceeds limit %d", e.Op, e.Size, e.Limit)
}

// Unwrap lets both errors.Is(err, ErrFrameTooLarge) and
// errors.Is(err, ErrProtocol) match.
func (e *FrameSizeError) Unwrap() []error { return []error{ErrFrameTooLarge, ErrProtocol} }

// PeerLostError reports which rank died and what the survivors were
// waiting on. It unwraps to ErrPeerLost.
type PeerLostError struct {
	Rank   int    // lost rank, -1 when not attributable
	Reason string // coordinator-side detail
}

func (e *PeerLostError) Error() string {
	if e.Rank < 0 {
		return fmt.Sprintf("coord: peer lost (%s)", e.Reason)
	}
	return fmt.Sprintf("coord: rank %d lost (%s)", e.Rank, e.Reason)
}

// Unwrap lets errors.Is(err, ErrPeerLost) match.
func (e *PeerLostError) Unwrap() error { return ErrPeerLost }

// frame is one wire message in either direction.
type frame struct {
	op      byte
	rank    uint32
	payload []byte
}

const frameHeaderSize = 4 + 1 + 4 + 4

func writeFrame(w io.Writer, f *frame) error {
	hdr := make([]byte, frameHeaderSize)
	binary.LittleEndian.PutUint32(hdr[0:4], Magic)
	hdr[4] = f.op
	binary.LittleEndian.PutUint32(hdr[5:9], f.rank)
	binary.LittleEndian.PutUint32(hdr[9:13], uint32(len(f.payload)))
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	if len(f.payload) > 0 {
		if _, err := w.Write(f.payload); err != nil {
			return err
		}
	}
	return nil
}

func readFrame(r io.Reader) (*frame, error) {
	hdr := make([]byte, frameHeaderSize)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, err
	}
	if binary.LittleEndian.Uint32(hdr[0:4]) != Magic {
		return nil, fmt.Errorf("%w: bad magic", ErrProtocol)
	}
	f := &frame{op: hdr[4], rank: binary.LittleEndian.Uint32(hdr[5:9])}
	n := binary.LittleEndian.Uint32(hdr[9:13])
	if limit := payloadLimit(f.op); n > limit {
		return nil, &FrameSizeError{Op: f.op, Size: n, Limit: limit}
	}
	if n > 0 {
		var err error
		if f.payload, err = readPayload(r, int(n)); err != nil {
			return nil, err
		}
	}
	return f, nil
}

// readPayload reads exactly n bytes, growing the buffer chunk by chunk
// so a corrupt (but in-cap) length prefix on a near-empty connection
// costs at most one chunk of allocation before the short read surfaces —
// never the full claimed size.
func readPayload(r io.Reader, n int) ([]byte, error) {
	const chunk = 1 << 20
	if n <= chunk {
		buf := make([]byte, n)
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, err
		}
		return buf, nil
	}
	buf := make([]byte, 0, chunk)
	for len(buf) < n {
		step := n - len(buf)
		if step > chunk {
			step = chunk
		}
		off := len(buf)
		buf = append(buf, make([]byte, step)...)
		if _, err := io.ReadFull(r, buf[off:]); err != nil {
			return nil, err
		}
	}
	return buf, nil
}

// packName prefixes name with its 16-bit length.
func packName(name string, rest []byte) []byte {
	out := make([]byte, 2+len(name)+len(rest))
	binary.LittleEndian.PutUint16(out[0:2], uint16(len(name)))
	copy(out[2:], name)
	copy(out[2+len(name):], rest)
	return out
}

// unpackName splits a 16-bit length-prefixed name from its payload.
func unpackName(p []byte) (string, []byte, error) {
	if len(p) < 2 {
		return "", nil, fmt.Errorf("%w: short name", ErrProtocol)
	}
	n := int(binary.LittleEndian.Uint16(p[0:2]))
	if n > maxName || len(p) < 2+n {
		return "", nil, fmt.Errorf("%w: bad name length", ErrProtocol)
	}
	return string(p[2 : 2+n]), p[2+n:], nil
}

// abortPayload packs the lost rank and reason for an opAbort frame.
func abortPayload(rank uint32, reason string) []byte {
	out := make([]byte, 4+len(reason))
	binary.LittleEndian.PutUint32(out[0:4], rank)
	copy(out[4:], reason)
	return out
}

// abortError decodes an opAbort payload into the typed error.
func abortError(p []byte) error {
	if len(p) < 4 {
		return &PeerLostError{Rank: -1, Reason: "unspecified"}
	}
	r := binary.LittleEndian.Uint32(p[0:4])
	e := &PeerLostError{Rank: -1, Reason: string(p[4:])}
	if r != noRank {
		e.Rank = int(r)
	}
	return e
}

// member is one joined rank on the server side.
type member struct {
	rank int
	conn net.Conn
	wmu  sync.Mutex // serialises writes (releases and aborts race)
}

func (m *member) send(f *frame, timeout time.Duration) error {
	m.wmu.Lock()
	defer m.wmu.Unlock()
	if timeout > 0 {
		m.conn.SetWriteDeadline(time.Now().Add(timeout)) //nolint:errcheck
	}
	return writeFrame(m.conn, f)
}

// barrierColl tracks one named barrier's arrivals.
type barrierColl struct {
	arrived map[int]bool
}

// gatherColl tracks one named allgather's contributions.
type gatherColl struct {
	blobs map[int][]byte
}

// ServerOptions tunes the coordinator.
type ServerOptions struct {
	// WriteTimeout bounds each response write so one stalled member
	// cannot wedge the release of the others (default 30s).
	WriteTimeout time.Duration
}

func (o ServerOptions) withDefaults() ServerOptions {
	if o.WriteTimeout <= 0 {
		o.WriteTimeout = 30 * time.Second
	}
	return o
}

// Server is the coordinator: it accepts exactly world ranks and runs
// their named barriers and allgathers until the job finishes or a
// member dies.
type Server struct {
	world int
	opt   ServerOptions

	mu       sync.Mutex
	ln       net.Listener
	members  map[int]*member
	barriers map[string]*barrierColl
	gathers  map[string]*gatherColl
	failed   error // first peer loss, poisons all later collectives
	closed   bool
	wg       sync.WaitGroup
}

// NewServer returns a coordinator for a job of world ranks.
func NewServer(world int, opt ServerOptions) *Server {
	if world <= 0 {
		panic("coord: non-positive world size")
	}
	return &Server{
		world:    world,
		opt:      opt.withDefaults(),
		members:  make(map[int]*member),
		barriers: make(map[string]*barrierColl),
		gathers:  make(map[string]*gatherColl),
	}
}

// World reports the job size the server was built for.
func (s *Server) World() int { return s.world }

// Listen starts accepting ranks on addr and returns the bound address.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			s.wg.Add(1)
			go func() {
				defer s.wg.Done()
				s.serveConn(c)
			}()
		}
	}()
	return ln.Addr().String(), nil
}

// Close stops the coordinator and disconnects all members.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.ln
	conns := make([]net.Conn, 0, len(s.members))
	for _, m := range s.members {
		conns = append(conns, m.conn)
	}
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	for _, c := range conns {
		c.Close() //nolint:errcheck
	}
	s.wg.Wait()
	return err
}

// serveConn handles one member from join to departure.
func (s *Server) serveConn(c net.Conn) {
	hello, err := readFrame(c)
	if err != nil || hello.op != opJoin || len(hello.payload) != 4 {
		c.Close() //nolint:errcheck
		return
	}
	rank := int(hello.rank)
	world := int(binary.LittleEndian.Uint32(hello.payload))
	m := &member{rank: rank, conn: c}
	if err := s.admit(m, world); err != nil {
		m.send(&frame{op: opAbort, payload: abortPayload(noRank, err.Error())}, s.opt.WriteTimeout) //nolint:errcheck
		c.Close()                                                                                   //nolint:errcheck
		return
	}
	if err := m.send(&frame{op: opJoinOK, rank: uint32(rank)}, s.opt.WriteTimeout); err != nil {
		s.drop(m, "join ack failed")
		return
	}
	for {
		f, err := readFrame(c)
		if err != nil {
			s.drop(m, "connection lost: "+err.Error())
			return
		}
		switch f.op {
		case opBarrier:
			name, _, err := unpackName(f.payload)
			if err != nil {
				s.drop(m, err.Error())
				return
			}
			s.barrier(m, name)
		case opGather:
			name, blob, err := unpackName(f.payload)
			if err != nil {
				s.drop(m, err.Error())
				return
			}
			s.gather(m, name, blob)
		case opLeave:
			s.leave(m)
			c.Close() //nolint:errcheck
			return
		default:
			s.drop(m, fmt.Sprintf("unexpected opcode %d", f.op))
			return
		}
	}
}

// admit registers a joining member, validating rank and world.
func (s *Server) admit(m *member, world int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if s.failed != nil {
		return s.failed
	}
	if world != s.world {
		return fmt.Errorf("world mismatch: rank %d joined with world %d, coordinator has %d", m.rank, world, s.world)
	}
	if m.rank < 0 || m.rank >= s.world {
		return fmt.Errorf("rank %d out of range for world %d", m.rank, s.world)
	}
	if _, dup := s.members[m.rank]; dup {
		return fmt.Errorf("rank %d already joined", m.rank)
	}
	s.members[m.rank] = m
	return nil
}

// drop handles a dead member: every pending and future collective is
// poisoned and all survivors are told which rank died so they fail fast
// instead of waiting out their timeout.
func (s *Server) drop(m *member, reason string) {
	m.conn.Close() //nolint:errcheck
	s.mu.Lock()
	if s.closed || s.members[m.rank] != m {
		s.mu.Unlock()
		return
	}
	delete(s.members, m.rank)
	if s.failed == nil {
		s.failed = &PeerLostError{Rank: m.rank, Reason: reason}
	}
	s.barriers = make(map[string]*barrierColl)
	s.gathers = make(map[string]*gatherColl)
	survivors := s.survivorsLocked()
	s.mu.Unlock()
	s.broadcastAbort(survivors, uint32(m.rank), reason)
}

// leave handles an orderly departure (client Close): no abort unless a
// collective was mid-flight, in which case the waiters must not wedge.
func (s *Server) leave(m *member) {
	s.mu.Lock()
	if s.closed || s.members[m.rank] != m {
		s.mu.Unlock()
		return
	}
	delete(s.members, m.rank)
	pending := len(s.barriers) > 0 || len(s.gathers) > 0
	if pending && s.failed == nil {
		s.failed = &PeerLostError{Rank: m.rank, Reason: "left during a collective"}
		s.barriers = make(map[string]*barrierColl)
		s.gathers = make(map[string]*gatherColl)
	}
	var survivors []*member
	if pending {
		survivors = s.survivorsLocked()
	}
	s.mu.Unlock()
	if pending {
		s.broadcastAbort(survivors, uint32(m.rank), "left during a collective")
	}
}

func (s *Server) survivorsLocked() []*member {
	out := make([]*member, 0, len(s.members))
	for _, sm := range s.members {
		out = append(out, sm)
	}
	return out
}

func (s *Server) broadcastAbort(members []*member, rank uint32, reason string) {
	for _, sm := range members {
		sm.send(&frame{op: opAbort, payload: abortPayload(rank, reason)}, s.opt.WriteTimeout) //nolint:errcheck
	}
}

// barrier records an arrival; the world-th arrival releases everyone.
func (s *Server) barrier(m *member, name string) {
	s.mu.Lock()
	if s.failed != nil {
		f := s.failed
		s.mu.Unlock()
		s.sendAbort(m, f)
		return
	}
	b := s.barriers[name]
	if b == nil {
		b = &barrierColl{arrived: make(map[int]bool)}
		s.barriers[name] = b
	}
	b.arrived[m.rank] = true
	if len(b.arrived) < s.world {
		s.mu.Unlock()
		return
	}
	delete(s.barriers, name)
	waiters := s.survivorsLocked()
	s.mu.Unlock()
	release := &frame{op: opRelease, payload: packName(name, nil)}
	for _, w := range waiters {
		w.send(release, s.opt.WriteTimeout) //nolint:errcheck
	}
}

// gather records a contribution; the world-th contribution assembles the
// rank-ordered blob set and sends it to every member.
func (s *Server) gather(m *member, name string, blob []byte) {
	s.mu.Lock()
	if s.failed != nil {
		f := s.failed
		s.mu.Unlock()
		s.sendAbort(m, f)
		return
	}
	g := s.gathers[name]
	if g == nil {
		g = &gatherColl{blobs: make(map[int][]byte)}
		s.gathers[name] = g
	}
	if _, dup := g.blobs[m.rank]; dup {
		s.mu.Unlock()
		s.drop(m, fmt.Sprintf("rank %d contributed twice to allgather %q", m.rank, name))
		return
	}
	g.blobs[m.rank] = append([]byte(nil), blob...)
	if len(g.blobs) < s.world {
		s.mu.Unlock()
		return
	}
	delete(s.gathers, name)
	waiters := s.survivorsLocked()
	// Assemble once: name, then world length-prefixed blobs in rank order.
	size := 0
	for _, b := range g.blobs {
		size += 4 + len(b)
	}
	body := make([]byte, 0, size)
	var lenw [4]byte
	for r := 0; r < s.world; r++ {
		b := g.blobs[r]
		binary.LittleEndian.PutUint32(lenw[:], uint32(len(b)))
		body = append(body, lenw[:]...)
		body = append(body, b...)
	}
	s.mu.Unlock()
	resp := &frame{op: opBlobs, payload: packName(name, body)}
	for _, w := range waiters {
		w.send(resp, s.opt.WriteTimeout) //nolint:errcheck
	}
}

func (s *Server) sendAbort(m *member, failure error) {
	rank := noRank
	reason := failure.Error()
	var pl *PeerLostError
	if errors.As(failure, &pl) && pl.Rank >= 0 {
		rank = uint32(pl.Rank)
		reason = pl.Reason
	}
	m.send(&frame{op: opAbort, payload: abortPayload(rank, reason)}, s.opt.WriteTimeout) //nolint:errcheck
}

// Options tunes a client.
type Options struct {
	DialTimeout time.Duration // dial + join handshake bound (default 10s)
	// WaitTimeout bounds each collective wait (default 60s; <0 disables).
	// It is the client-side backstop for a dead coordinator; a dead peer
	// is reported much faster by the coordinator's abort broadcast.
	WaitTimeout time.Duration
	// ResolveTimeout bounds a ClusterClient's leader search — the total
	// budget for sweeping the replica set with backoff until one answers
	// as leader (default 30s). Ignored by the classic single-server
	// client.
	ResolveTimeout time.Duration
}

func (o Options) withDefaults() Options {
	if o.DialTimeout <= 0 {
		o.DialTimeout = 10 * time.Second
	}
	if o.WaitTimeout == 0 {
		o.WaitTimeout = 60 * time.Second
	}
	if o.ResolveTimeout <= 0 {
		o.ResolveTimeout = 30 * time.Second
	}
	return o
}

// Session is the collective surface a live mount consumes: both the
// classic single-coordinator *Client and the replica-set *ClusterClient
// satisfy it, so live.MountCluster works unchanged against either
// control plane.
type Session interface {
	Rank() int
	World() int
	Barrier(name string) error
	Allgather(name string, blob []byte) ([][]byte, error)
	Close() error
}

// Client is one rank's synchronous connection to the coordinator.
type Client struct {
	conn  net.Conn
	rank  int
	world int
	opt   Options

	mu     sync.Mutex // one collective in flight at a time
	closed bool
}

// Join dials the coordinator and registers as rank of world.
func Join(addr string, rank, world int, opt Options) (*Client, error) {
	opt = opt.withDefaults()
	conn, err := net.DialTimeout("tcp", addr, opt.DialTimeout)
	if err != nil {
		return nil, fmt.Errorf("coord: dial %s: %w", addr, err)
	}
	c := &Client{conn: conn, rank: rank, world: world, opt: opt}
	var worldw [4]byte
	binary.LittleEndian.PutUint32(worldw[:], uint32(world))
	conn.SetDeadline(time.Now().Add(opt.DialTimeout)) //nolint:errcheck
	if err := writeFrame(conn, &frame{op: opJoin, rank: uint32(rank), payload: worldw[:]}); err != nil {
		conn.Close() //nolint:errcheck
		return nil, fmt.Errorf("coord: join: %w", err)
	}
	f, err := readFrame(conn)
	if err != nil {
		conn.Close() //nolint:errcheck
		return nil, fmt.Errorf("coord: join: %w", err)
	}
	conn.SetDeadline(time.Time{}) //nolint:errcheck
	switch f.op {
	case opJoinOK:
		return c, nil
	case opAbort:
		conn.Close() //nolint:errcheck
		return nil, fmt.Errorf("coord: join rejected: %w", abortError(f.payload))
	default:
		conn.Close() //nolint:errcheck
		return nil, fmt.Errorf("%w: unexpected join reply opcode %d", ErrProtocol, f.op)
	}
}

// Rank reports the client's rank.
func (c *Client) Rank() int { return c.rank }

// World reports the job size.
func (c *Client) World() int { return c.world }

// Barrier blocks until every rank has called Barrier with the same name.
func (c *Client) Barrier(name string) error {
	_, err := c.collective(opBarrier, name, nil)
	return err
}

// Allgather contributes blob under name and blocks until every rank has
// contributed, returning all blobs indexed by rank (this rank's own blob
// included, so blobs[i] is rank i's contribution).
func (c *Client) Allgather(name string, blob []byte) ([][]byte, error) {
	return c.collective(opGather, name, blob)
}

// collective runs one synchronous request/response exchange.
func (c *Client) collective(op byte, name string, blob []byte) ([][]byte, error) {
	if len(name) == 0 || len(name) > maxName {
		return nil, fmt.Errorf("%w: bad collective name %q", ErrProtocol, name)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, ErrClosed
	}
	if err := writeFrame(c.conn, &frame{op: op, rank: uint32(c.rank), payload: packName(name, blob)}); err != nil {
		return nil, fmt.Errorf("coord: send %q: %w", name, err)
	}
	if c.opt.WaitTimeout > 0 {
		c.conn.SetReadDeadline(time.Now().Add(c.opt.WaitTimeout)) //nolint:errcheck
		defer c.conn.SetReadDeadline(time.Time{})                 //nolint:errcheck
	}
	f, err := readFrame(c.conn)
	if err != nil {
		if ne, ok := err.(net.Error); ok && ne.Timeout() {
			return nil, fmt.Errorf("%w: %q after %v", ErrWaitTimeout, name, c.opt.WaitTimeout)
		}
		return nil, fmt.Errorf("coord: wait %q: %w", name, err)
	}
	switch f.op {
	case opAbort:
		return nil, abortError(f.payload)
	case opRelease:
		got, _, err := unpackName(f.payload)
		if err != nil {
			return nil, err
		}
		if op != opBarrier || got != name {
			return nil, fmt.Errorf("%w: release for %q while waiting on %q", ErrProtocol, got, name)
		}
		return nil, nil
	case opBlobs:
		got, body, err := unpackName(f.payload)
		if err != nil {
			return nil, err
		}
		if op != opGather || got != name {
			return nil, fmt.Errorf("%w: blobs for %q while waiting on %q", ErrProtocol, got, name)
		}
		return unpackBlobs(body, c.world)
	default:
		return nil, fmt.Errorf("%w: unexpected opcode %d", ErrProtocol, f.op)
	}
}

// unpackBlobs splits the rank-ordered length-prefixed blob set.
func unpackBlobs(body []byte, world int) ([][]byte, error) {
	out := make([][]byte, world)
	for r := 0; r < world; r++ {
		if len(body) < 4 {
			return nil, fmt.Errorf("%w: truncated blob set at rank %d", ErrProtocol, r)
		}
		n := int(binary.LittleEndian.Uint32(body[0:4]))
		body = body[4:]
		if len(body) < n {
			return nil, fmt.Errorf("%w: truncated blob for rank %d", ErrProtocol, r)
		}
		out[r] = body[:n:n]
		body = body[n:]
	}
	if len(body) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes after blob set", ErrProtocol, len(body))
	}
	return out, nil
}

// Close departs the job. A Close while peers are inside a collective
// aborts them (a rank cannot silently leave mid-allgather).
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	c.conn.SetWriteDeadline(time.Now().Add(time.Second))          //nolint:errcheck
	writeFrame(c.conn, &frame{op: opLeave, rank: uint32(c.rank)}) //nolint:errcheck
	return c.conn.Close()
}
